//go:build race

package itpsim

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation invalidates wall-clock perf budgets.
const raceEnabled = true
