//go:build race

package itpsim

import "testing"

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation invalidates wall-clock perf budgets.
const raceEnabled = true

// TestRaceTagPlumbing pins the race arm of the build-tag pair: this file
// is only compiled under -race, so if the test runs at all the constant
// must say so. Together with its !race twin it catches a mis-edited
// constant or a broken //go:build line in either file — `go test -race`
// exercises this arm (make check, CI race-matrix), plain `go test` the
// other.
func TestRaceTagPlumbing(t *testing.T) {
	if !raceEnabled {
		t.Fatal("built with -race but raceEnabled = false; build-tag plumbing is broken")
	}
}
