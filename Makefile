# itpsim build/test/benchmark targets. Everything is plain `go` — the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test vet bench bench-figures results quick-results clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Microbenchmarks + ablations + one pass of every figure bench.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x .

bench-figures:
	$(GO) test -bench 'Fig' -benchtime 1x .

# Regenerate every paper figure at full default scale (minutes).
results:
	$(GO) run ./cmd/itpbench -fig all | tee results_full.txt

# Smoke-scale pass over every figure (~a minute).
quick-results:
	$(GO) run ./cmd/itpbench -fig all -scale quick

clean:
	$(GO) clean ./...
