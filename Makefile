# itpsim build/test/benchmark targets. Everything is plain `go` — the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test vet lint staticcheck govulncheck check cover-check fuzz-smoke race-matrix chaos equiv sample-equiv bench bench-figures bench-baseline bench-compare bench-check results quick-results clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# itpvet: the repo's own analysis suite (internal/lint). Runs both drive
# paths so neither rots: the standalone loader and the `go vet -vettool`
# unitchecker protocol. The standalone pass prints per-analyzer wall time
# and fails over LINT_BUDGET, so the interprocedural passes (call graph,
# fact propagation) cannot silently bloat `make check`; CI pins the same
# budget.
LINT_BUDGET ?= 120s

lint:
	$(GO) build -o bin/itpvet ./cmd/itpvet
	./bin/itpvet -timing -budget $(LINT_BUDGET) ./...
	$(GO) vet -vettool=$(CURDIR)/bin/itpvet ./...

# Pinned third-party analyzer versions; CI installs these exact versions.
# Locally the targets are no-ops when the tool is not on PATH (this repo
# builds offline), so `make check` works in a network-less sandbox.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.4

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not on PATH; skipping (CI pins $(STATICCHECK_VERSION))" ; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... ; \
	else \
		echo "govulncheck not on PATH; skipping (CI pins $(GOVULNCHECK_VERSION))" ; \
	fi

# Full gate: vet + itpvet + optional third-party analyzers + the whole
# suite under the race detector. The race suite includes the chaos,
# equiv, and sample-equiv batteries at CI scale; their dedicated
# targets below rerun them at full scale.
check: lint staticcheck govulncheck
	$(GO) vet ./...
	$(GO) test -race ./...

# Per-package coverage floors (scripts/coverage_floors.tsv).
cover-check:
	sh scripts/check_coverage.sh

# Race-detector matrix over the concurrent surface the machineown/
# goroutinelife/lockscope analyzers guard statically: sharded runs, the
# sampling pre-pass, the supervisor, the decode-ahead ring, and the
# metrics registry. -count=2 reruns each test so per-run state (pools,
# rings, checkpoints) is exercised twice under the detector.
race-matrix:
	$(GO) test -race -count=2 ./internal/shard ./internal/sample ./internal/harness ./internal/workload ./internal/metrics

# Short fuzz pass over the parsers that read untrusted bytes — the trace
# decoder and the checkpoint-journal recovery path — plus the stream
# split/clone equivalence property that sharding rests on (CI smoke).
fuzz-smoke:
	$(GO) test -run FuzzReader -fuzz FuzzReader -fuzztime 10s ./internal/trace
	$(GO) test -run FuzzCheckpointReader -fuzz FuzzCheckpointReader -fuzztime 10s ./internal/harness
	$(GO) test -run FuzzSplitEquivalence -fuzz FuzzSplitEquivalence -fuzztime 10s ./internal/workload

# Fault-injection battery: every chaos fault class driven through the real
# simulator and supervision stack under the race detector. Each scenario
# must recover with the fault-free beacon chain or fail with a structured
# error naming the injected fault.
chaos:
	$(GO) test -race -count=1 -run TestBattery ./internal/chaos

# Differential-equivalence battery at the issue's full scale: 8-shard
# 2M-instruction runs across all four policy quadrants, checked against
# the serial reference within the declared bounds (DESIGN.md §12), plus
# the beacon-chain-exact 1-shard degenerate case — all under the race
# detector.
equiv:
	ITPSIM_EQUIV_SCALE=full $(GO) test -race -count=1 -run 'TestDifferentialEquivalence|TestOneShardExact' ./internal/shard

# Sampled-run equivalence battery at full scale: 8-phase 2M-instruction
# sampled runs with functional warmup across all four policy quadrants,
# checked against the serial reference within the declared error bounds
# (DESIGN.md §14), plus the zero-skip K=1 degenerate case which must be
# beacon-chain-exact — all under the race detector.
sample-equiv:
	ITPSIM_SAMPLE_SCALE=full $(GO) test -race -count=1 -run 'TestSampledEquivalence|TestOnePhaseExact' ./internal/sample

# Benchmark baseline file: BENCH_<date>.json unless overridden.
BENCH_BASELINE ?= BENCH_$(shell date +%Y%m%d).json

# Microbenchmarks + ablations + one pass of every figure bench; the
# parsed results are recorded as a dated JSON baseline via benchguard.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x . | $(GO) run ./cmd/benchguard -record $(BENCH_BASELINE)

# Stable micro-benchmarks only, for regression comparison (3 iterations
# to damp timer noise), plus the steady-state hot-loop benches whose
# allocs/op feed benchguard's allocation gate (many iterations: each op is
# a single simulated instruction). SerialRun/ShardedRun/SampledRun feed the
# parallel-speedup metric gates; the speedup metrics are reported only on
# hosts with enough cores.
bench-baseline:
	{ $(GO) test -bench 'SimulatorThroughput|CacheAccess|STLBLookup|WorkloadGeneration|SerialRun|ShardedRun|SampledRun|MultiCoreRun' -benchmem -benchtime 3x -run '^$$' . ; \
	  $(GO) test -bench 'SteadyState' -benchmem -benchtime 20000x -run '^$$' ./internal/sim ; } \
		| $(GO) run ./cmd/benchguard -record $(BENCH_BASELINE)

# Fail on >10% ns/op or allocs/op growth between two baselines, or on any
# steady-state benchmark that is no longer allocation-free:
#   make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
# Override THRESHOLD when the baselines come from different hosts (CI's
# cache-miss fallback compares against the checked-in dated baseline,
# where only the alloc/metric gates are host-independent).
THRESHOLD ?= 0.10
bench-compare:
	$(GO) run ./cmd/benchguard -compare $(OLD),$(NEW) -threshold $(THRESHOLD) -alloc-gate '^BenchmarkSteadyState'

# Single-baseline gates only (zero-alloc steady state, instrumentation
# overhead) — what CI runs when no previous baseline is cached:
#   make bench-check NEW=BENCH_a.json
bench-check:
	$(GO) run ./cmd/benchguard -check $(NEW) -alloc-gate '^BenchmarkSteadyState'

bench-figures:
	$(GO) test -bench 'Fig' -benchtime 1x .

# Regenerate every paper figure at full default scale (minutes).
results:
	$(GO) run ./cmd/itpbench -fig all | tee results_full.txt

# Smoke-scale pass over every figure (~a minute).
quick-results:
	$(GO) run ./cmd/itpbench -fig all -scale quick

clean:
	$(GO) clean ./...
