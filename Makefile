# itpsim build/test/benchmark targets. Everything is plain `go` — the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test vet check cover-check fuzz-smoke bench bench-figures bench-baseline bench-compare bench-check results quick-results clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full gate: vet + the whole suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Per-package coverage floors (scripts/coverage_floors.tsv).
cover-check:
	sh scripts/check_coverage.sh

# Short fuzz pass over the trace decoder (CI smoke).
fuzz-smoke:
	$(GO) test -run FuzzReader -fuzz FuzzReader -fuzztime 10s ./internal/trace

# Benchmark baseline file: BENCH_<date>.json unless overridden.
BENCH_BASELINE ?= BENCH_$(shell date +%Y%m%d).json

# Microbenchmarks + ablations + one pass of every figure bench; the
# parsed results are recorded as a dated JSON baseline via benchguard.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x . | $(GO) run ./cmd/benchguard -record $(BENCH_BASELINE)

# Stable micro-benchmarks only, for regression comparison (3 iterations
# to damp timer noise), plus the steady-state hot-loop benches whose
# allocs/op feed benchguard's allocation gate (many iterations: each op is
# a single simulated instruction).
bench-baseline:
	{ $(GO) test -bench 'SimulatorThroughput|CacheAccess|STLBLookup|WorkloadGeneration' -benchmem -benchtime 3x -run '^$$' . ; \
	  $(GO) test -bench 'SteadyState' -benchmem -benchtime 20000x -run '^$$' ./internal/sim ; } \
		| $(GO) run ./cmd/benchguard -record $(BENCH_BASELINE)

# Fail on >10% ns/op or allocs/op growth between two baselines, or on any
# steady-state benchmark that is no longer allocation-free:
#   make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
bench-compare:
	$(GO) run ./cmd/benchguard -compare $(OLD),$(NEW) -threshold 0.10 -alloc-gate '^BenchmarkSteadyState'

# Single-baseline gates only (zero-alloc steady state, instrumentation
# overhead) — what CI runs when no previous baseline is cached:
#   make bench-check NEW=BENCH_a.json
bench-check:
	$(GO) run ./cmd/benchguard -check $(NEW) -alloc-gate '^BenchmarkSteadyState'

bench-figures:
	$(GO) test -bench 'Fig' -benchtime 1x .

# Regenerate every paper figure at full default scale (minutes).
results:
	$(GO) run ./cmd/itpbench -fig all | tee results_full.txt

# Smoke-scale pass over every figure (~a minute).
quick-results:
	$(GO) run ./cmd/itpbench -fig all -scale quick

clean:
	$(GO) clean ./...
