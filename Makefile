# itpsim build/test/benchmark targets. Everything is plain `go` — the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test vet check fuzz-smoke bench bench-figures results quick-results clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full gate: vet + the whole suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short fuzz pass over the trace decoder (CI smoke).
fuzz-smoke:
	$(GO) test -run FuzzReader -fuzz FuzzReader -fuzztime 10s ./internal/trace

# Microbenchmarks + ablations + one pass of every figure bench.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x .

bench-figures:
	$(GO) test -bench 'Fig' -benchtime 1x .

# Regenerate every paper figure at full default scale (minutes).
results:
	$(GO) run ./cmd/itpbench -fig all | tee results_full.txt

# Smoke-scale pass over every figure (~a minute).
quick-results:
	$(GO) run ./cmd/itpbench -fig all -scale quick

clean:
	$(GO) clean ./...
