// Command itpvet runs the itpsim static-analysis suite (internal/lint).
//
// It works two ways:
//
//	itpvet [-timing] [-budget <dur>] [packages]   # standalone: defaults to ./...
//	go vet -vettool=$(which itpvet) ./...         # unitchecker mode
//
// In standalone mode it loads the named packages (plus in-module
// dependencies for facts) with `go list -export` and prints diagnostics,
// exiting 1 if there are any. -timing prints per-analyzer wall time to
// stderr; -budget fails the run (exit 1) when the analyzers' combined
// wall time exceeds the duration, so interprocedural passes cannot
// silently bloat `make check`. In vettool mode the go command drives it
// per package through the unitchecker protocol (-V=full, -flags, then a
// single *.cfg argument); diagnostics go to stderr and findings exit 2,
// matching `go vet` conventions.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"itpsim/internal/lint"
	"itpsim/internal/lint/lintcore"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := lint.All()

	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			// The go command fingerprints vet tools for its build cache.
			return printVersion()
		case args[0] == "-flags":
			// No tool-specific flags are exposed to `go vet`.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			diags, err := lintcore.RunUnitchecker(args[0], analyzers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "itpvet:", err)
				return 1
			}
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
			}
			if len(diags) > 0 {
				return 2
			}
			return 0
		}
	}

	var timing bool
	var budget time.Duration
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		arg := args[0]
		args = args[1:]
		switch {
		case arg == "-help" || arg == "--help" || arg == "-h":
			usage(analyzers)
			return 0
		case arg == "-timing":
			timing = true
		case arg == "-budget" && len(args) > 0:
			arg, args = "-budget="+args[0], args[1:]
			fallthrough
		case strings.HasPrefix(arg, "-budget="):
			d, err := time.ParseDuration(strings.TrimPrefix(arg, "-budget="))
			if err != nil || d <= 0 {
				fmt.Fprintf(os.Stderr, "itpvet: bad -budget %q (want a positive duration like 120s)\n", strings.TrimPrefix(arg, "-budget="))
				return 1
			}
			budget = d
		default:
			fmt.Fprintf(os.Stderr, "itpvet: unknown flag %s\n", arg)
			usage(analyzers)
			return 1
		}
	}

	// Loading (go list -export + parse + type-check) dominates the wall
	// time, so the budget covers it too.
	//itp:wallclock analyzer timing guard: measures the linter itself, not simulated time
	loadStart := time.Now()
	pkgs, err := lintcore.Load("", args...)
	//itp:wallclock analyzer timing guard: measures the linter itself, not simulated time
	total := time.Since(loadStart)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itpvet:", err)
		return 1
	}
	if timing {
		fmt.Fprintf(os.Stderr, "itpvet: timing %-16s %8.0fms\n", "load", float64(total.Milliseconds()))
	}

	// With a timing guard the analyzers run one at a time so each gets
	// its own wall-time attribution. Facts are namespaced per analyzer,
	// so split runs see exactly the facts a combined run would; the
	// per-package directive and call-graph caches are shared across runs
	// through the loaded packages.
	var found []lintcore.Diagnostic
	if timing || budget > 0 {
		for _, a := range analyzers {
			//itp:wallclock analyzer timing guard: measures the linter itself, not simulated time
			t0 := time.Now()
			diags, err := lintcore.Run(pkgs, []*lintcore.Analyzer{a})
			//itp:wallclock analyzer timing guard: measures the linter itself, not simulated time
			elapsed := time.Since(t0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "itpvet:", err)
				return 1
			}
			total += elapsed
			if timing {
				fmt.Fprintf(os.Stderr, "itpvet: timing %-16s %8.0fms\n", a.Name, float64(elapsed.Milliseconds()))
			}
			found = append(found, diags...)
		}
		lintcore.SortDiagnostics(found)
		if timing {
			fmt.Fprintf(os.Stderr, "itpvet: timing %-16s %8.0fms\n", "total", float64(total.Milliseconds()))
		}
	} else {
		found, err = lintcore.Run(pkgs, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itpvet:", err)
			return 1
		}
	}

	for _, d := range found {
		fmt.Println(d)
	}
	if budget > 0 && total > budget {
		fmt.Fprintf(os.Stderr, "itpvet: analyzers took %v, over the %v budget — profile the offender (-timing) or raise the budget deliberately\n", total.Round(time.Millisecond), budget)
		return 1
	}
	if len(found) > 0 {
		return 1
	}
	return 0
}

// printVersion implements `itpvet -V=full`: a name, version, and a
// buildID that changes whenever the binary does, so `go vet` invalidates
// its cache when the tool is rebuilt.
func printVersion() int {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, ferr := os.Open(exe); ferr == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("itpvet version devel buildID=%x\n", h.Sum(nil))
	return 0
}

func usage(analyzers []*lintcore.Analyzer) {
	fmt.Fprintln(os.Stderr, "usage: itpvet [-timing] [-budget <dur>] [packages]   (default ./...)")
	fmt.Fprintln(os.Stderr, "   or: go vet -vettool=$(command -v itpvet) ./...")
	fmt.Fprintln(os.Stderr, "\n  -timing        print per-analyzer wall time to stderr")
	fmt.Fprintln(os.Stderr, "  -budget <dur>  exit 1 if combined analyzer time exceeds <dur>")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, doc)
	}
}
