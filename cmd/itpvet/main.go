// Command itpvet runs the itpsim static-analysis suite (internal/lint).
//
// It works two ways:
//
//	itpvet [packages]              # standalone: defaults to ./...
//	go vet -vettool=$(which itpvet) ./...   # unitchecker mode
//
// In standalone mode it loads the named packages (plus in-module
// dependencies for facts) with `go list -export` and prints diagnostics,
// exiting 1 if there are any. In vettool mode the go command drives it
// per package through the unitchecker protocol (-V=full, -flags, then a
// single *.cfg argument); diagnostics go to stderr and findings exit 2,
// matching `go vet` conventions.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"itpsim/internal/lint"
	"itpsim/internal/lint/lintcore"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := lint.All()

	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			// The go command fingerprints vet tools for its build cache.
			return printVersion()
		case args[0] == "-flags":
			// No tool-specific flags are exposed to `go vet`.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			diags, err := lintcore.RunUnitchecker(args[0], analyzers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "itpvet:", err)
				return 1
			}
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
			}
			if len(diags) > 0 {
				return 2
			}
			return 0
		}
	}

	if len(args) > 0 && strings.HasPrefix(args[0], "-") {
		if args[0] == "-help" || args[0] == "--help" || args[0] == "-h" {
			usage(analyzers)
			return 0
		}
		fmt.Fprintf(os.Stderr, "itpvet: unknown flag %s\n", args[0])
		usage(analyzers)
		return 1
	}

	pkgs, err := lintcore.Load("", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itpvet:", err)
		return 1
	}
	found, err := lintcore.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itpvet:", err)
		return 1
	}
	for _, d := range found {
		fmt.Println(d)
	}
	if len(found) > 0 {
		return 1
	}
	return 0
}

// printVersion implements `itpvet -V=full`: a name, version, and a
// buildID that changes whenever the binary does, so `go vet` invalidates
// its cache when the tool is rebuilt.
func printVersion() int {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, ferr := os.Open(exe); ferr == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("itpvet version devel buildID=%x\n", h.Sum(nil))
	return 0
}

func usage(analyzers []*lintcore.Analyzer) {
	fmt.Fprintln(os.Stderr, "usage: itpvet [packages]   (default ./...)")
	fmt.Fprintln(os.Stderr, "   or: go vet -vettool=$(command -v itpvet) ./...")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, doc)
	}
}
