// Command benchguard records and compares `go test -bench` results so CI
// can fail on performance regressions.
//
// Record mode parses benchmark output from stdin into a JSON baseline
// whose header is the same self-describing manifest the metrics exporter
// writes (git revision, time, tool):
//
//	go test -bench 'Throughput' -benchtime 1x . | benchguard -record BENCH_20260808.json
//
// Compare mode diffs two baselines and exits non-zero when any shared
// benchmark slowed down by more than -threshold (default 10%):
//
//	benchguard -compare old.json,new.json -threshold 0.10
//
// It also checks the instrumentation-overhead budget inside a single
// baseline: when both BenchmarkSimulatorThroughput and its Metrics twin
// are present, the instrumented run must be within -overhead (default 5%)
// of the plain one.
//
// Compare mode further enforces the allocation budget (benchmarks must be
// recorded with -benchmem):
//
//   - benchmarks matching -alloc-gate (default ^BenchmarkSteadyState, the
//     simulation hot-loop benches) must report exactly 0 allocs/op in the
//     new baseline — the steady state is allocation-free by design;
//   - any shared benchmark whose allocs/op grew by more than -threshold
//     is a regression, same as an ns/op slowdown.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"itpsim/internal/metrics"
)

// benchResult is one benchmark's recorded performance.
type benchResult struct {
	Iterations uint64             `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// baseline is the on-disk benchmark record.
type baseline struct {
	Manifest   metrics.Manifest       `json:"manifest"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   12   3456 ns/op   789 instr/s ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

const (
	plainBench        = "BenchmarkSimulatorThroughput"
	instrumentedBench = "BenchmarkSimulatorThroughputMetrics"
)

func main() {
	var (
		record     = flag.String("record", "", "parse `go test -bench` output from stdin into this JSON baseline")
		compare    = flag.String("compare", "", "old.json,new.json — fail on regressions between the two baselines")
		check      = flag.String("check", "", "apply the single-baseline gates (alloc gate, instrumentation overhead) to this baseline")
		threshold  = flag.Float64("threshold", 0.10, "max tolerated ns/op (or allocs/op) growth (0.10 = 10%)")
		overhead   = flag.Float64("overhead", 0.05, "max tolerated metrics-instrumentation overhead within one baseline")
		allocGate  = flag.String("alloc-gate", "^BenchmarkSteadyState", "regexp of benchmarks that must report 0 allocs/op (empty disables)")
		metricGate = flag.String("metric-gate", "BenchmarkShardedRun:speedup>=5,BenchmarkSampledRun:speedup>=10",
			"comma-separated bench:metric>=min floors on custom metrics; a baseline missing the metric is noted and skipped (empty disables)")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record); err != nil {
			fatal(err)
		}
	case *check != "":
		if err := doCheck(*check, *overhead, *allocGate, *metricGate); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
	case *compare != "":
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-compare wants old.json,new.json"))
		}
		if err := doCompare(parts[0], parts[1], *threshold, *overhead, *allocGate, *metricGate); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// doRecord parses benchmark output from stdin. Benchmark names are
// de-suffixed of their -GOMAXPROCS tail so baselines recorded on machines
// with different core counts stay comparable.
func doRecord(path string) error {
	benches := make(map[string]benchResult)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Println(line) // pass through so the log keeps the raw output
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseUint(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := benchResult{Iterations: iters, NsPerOp: ns}
		extra := strings.Fields(m[4])
		for i := 0; i+1 < len(extra); i += 2 {
			if v, err := strconv.ParseFloat(extra[i], 64); err == nil {
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[extra[i+1]] = v
			}
		}
		benches[stripProcSuffix(m[1])] = res
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	b := baseline{
		Manifest: metrics.Manifest{
			Type: "manifest",
			Tool: "benchguard",
			Git:  metrics.GitDescribe(),
			//itp:wallclock — manifest timestamp only; never feeds the simulation
			Time: time.Now().UTC().Format(time.RFC3339),
		},
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchguard: recorded %d benchmarks to %s\n", len(benches), path)
	return nil
}

func doCompare(oldPath, newPath string, threshold, overheadBudget float64, allocGate, metricGate string) error {
	oldB, err := load(oldPath)
	if err != nil {
		return err
	}
	newB, err := load(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(newB.Benchmarks))
	for name := range newB.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	shared := 0
	for _, name := range names {
		n := newB.Benchmarks[name]
		o, ok := oldB.Benchmarks[name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		shared++
		slowdown := n.NsPerOp/o.NsPerOp - 1
		status := "ok"
		if slowdown > threshold {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, o.NsPerOp, n.NsPerOp, 100*slowdown))
		}
		// Allocation regressions gate just like time regressions when both
		// baselines were recorded with -benchmem. allocs/op are integers,
		// so require at least one whole extra allocation besides the ratio
		// (a 0 -> 0 or 10 -> 10.5 wobble is not a regression).
		oa, oOK := o.Metrics["allocs/op"]
		na, nOK := n.Metrics["allocs/op"]
		if oOK && nOK && na > oa*(1+threshold) && na-oa >= 1 {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f allocs/op", name, oa, na))
		}
		fmt.Printf("%-48s %12.0f %12.0f %+7.1f%% %s\n", name, o.NsPerOp, n.NsPerOp, 100*slowdown, status)
	}
	if shared == 0 {
		return fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}

	failures, err := baselineGates(newB, newPath, overheadBudget, allocGate, metricGate)
	if err != nil {
		return err
	}
	regressions = append(regressions, failures...)

	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("benchguard: %d benchmarks within %.0f%% of baseline\n", shared, 100*threshold)
	return nil
}

// doCheck applies the single-baseline gates to one recorded baseline —
// the unconditional CI path when no cached baseline exists to compare
// against yet.
func doCheck(path string, overheadBudget float64, allocGate, metricGate string) error {
	b, err := load(path)
	if err != nil {
		return err
	}
	failures, err := baselineGates(b, path, overheadBudget, allocGate, metricGate)
	if err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d gate failure(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchguard: %s passes the baseline gates\n", path)
	return nil
}

// baselineGates runs the checks that need only one baseline: the
// zero-allocation gate over -alloc-gate benchmarks and the
// instrumentation-overhead budget.
func baselineGates(b baseline, path string, overheadBudget float64, allocGate, metricGate string) ([]string, error) {
	var failures []string

	if allocGate != "" {
		re, err := regexp.Compile(allocGate)
		if err != nil {
			return nil, fmt.Errorf("-alloc-gate: %w", err)
		}
		names := make([]string, 0, len(b.Benchmarks))
		for name := range b.Benchmarks {
			if re.MatchString(name) {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			allocs, ok := b.Benchmarks[name].Metrics["allocs/op"]
			switch {
			case !ok:
				failures = append(failures,
					fmt.Sprintf("%s: no allocs/op recorded (run the bench with -benchmem)", name))
			case allocs != 0:
				failures = append(failures,
					fmt.Sprintf("%s: %.0f allocs/op, steady state must be allocation-free", name, allocs))
			default:
				fmt.Printf("%-48s 0 allocs/op ok\n", name)
			}
		}
		// A gate that matches nothing is a silently disabled gate.
		if len(names) == 0 {
			failures = append(failures,
				fmt.Sprintf("alloc gate %q matched no benchmarks in %s", allocGate, path))
		}
	}

	// Custom-metric floors (bench:metric>=min). The canonical one is the
	// sharded-run speedup target: BenchmarkShardedRun only reports
	// "speedup" when the host has enough cores to run every shard
	// concurrently, so an absent metric is a noted skip, not a failure —
	// while a present metric below its floor fails the gate anywhere.
	for _, gate := range strings.Split(metricGate, ",") {
		gate = strings.TrimSpace(gate)
		if gate == "" {
			continue
		}
		name, metric, min, err := parseMetricGate(gate)
		if err != nil {
			return nil, err
		}
		res, ok := b.Benchmarks[name]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("metric gate %q: %s not in %s (bench pattern out of date?)", gate, name, path))
			continue
		}
		v, ok := res.Metrics[metric]
		if !ok {
			fmt.Printf("%-48s %s not reported; gate skipped (host below the bench's core requirement?)\n", name, metric)
			continue
		}
		if v < min {
			failures = append(failures,
				fmt.Sprintf("%s: %s %.2f below the %.2f floor", name, metric, v, min))
		} else {
			fmt.Printf("%-48s %s %.2f >= %.2f ok\n", name, metric, v, min)
		}
	}

	if plain, ok := b.Benchmarks[plainBench]; ok {
		if inst, ok := b.Benchmarks[instrumentedBench]; ok && plain.NsPerOp > 0 {
			ratio := inst.NsPerOp/plain.NsPerOp - 1
			fmt.Printf("%-48s %+7.1f%% (budget %.0f%%)\n", "instrumentation overhead", 100*ratio, 100*overheadBudget)
			if ratio > overheadBudget {
				failures = append(failures,
					fmt.Sprintf("instrumentation overhead %.1f%% exceeds %.0f%% budget", 100*ratio, 100*overheadBudget))
			}
		}
	}
	return failures, nil
}

// parseMetricGate splits one "bench:metric>=min" gate.
func parseMetricGate(gate string) (name, metric string, min float64, err error) {
	name, rest, ok := strings.Cut(gate, ":")
	if ok {
		metric, ok = cutSuffixFloat(rest, &min)
	}
	if !ok || name == "" || metric == "" {
		return "", "", 0, fmt.Errorf("-metric-gate %q: want bench:metric>=min", gate)
	}
	return name, metric, min, nil
}

// cutSuffixFloat splits "metric>=min", parsing min.
func cutSuffixFloat(s string, min *float64) (string, bool) {
	metric, val, ok := strings.Cut(s, ">=")
	if !ok {
		return "", false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
	if err != nil {
		return "", false
	}
	*min = v
	return strings.TrimSpace(metric), true
}

func load(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// stripProcSuffix removes the trailing -N GOMAXPROCS marker Go appends to
// benchmark names.
func stripProcSuffix(name string) string {
	idx := strings.LastIndexByte(name, '-')
	if idx < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[idx+1:]); err != nil {
		return name
	}
	return name[:idx]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
