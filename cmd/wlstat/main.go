// Command wlstat characterises catalogue workloads the way the paper
// characterises its trace sets: code/data footprints, page-level reuse
// profiles, and the Belady-OPT vs LRU headroom of an STLB-sized
// fully-associative translation cache. Useful both to sanity-check the
// synthetic generators against the paper's measured bands and to see how
// much room a better STLB replacement policy has.
//
// Examples:
//
//	wlstat -workload srv_000
//	wlstat -workload spec_000 -n 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"itpsim/internal/analysis"
	"itpsim/internal/arch"
	"itpsim/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "srv_000", "catalogue workload")
		n       = flag.Uint64("n", 1_000_000, "instructions to profile")
		stlbCap = flag.Int("stlb", 1536, "translation-cache capacity for the OPT/LRU headroom")
		verbose = flag.Bool("v", false, "print full reuse histograms")
	)
	flag.Parse()

	cat := workload.NewCatalog(120, 20)
	spec, err := cat.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlstat:", err)
		os.Exit(1)
	}

	// Collect page-level access streams.
	var codePages, dataPages, allPages []uint64
	s := spec.NewStream()
	var in workload.Instr
	var lastCodePage uint64 = ^uint64(0)
	for i := uint64(0); i < *n; i++ {
		if !s.Next(&in) {
			break
		}
		cp := uint64(arch.PageNumber4K(in.PC))
		if cp != lastCodePage {
			// Sample instruction pages on page change, approximating
			// ITLB access behaviour.
			codePages = append(codePages, cp)
			allPages = append(allPages, cp<<1)
			lastCodePage = cp
		}
		for _, a := range [2]arch.Addr{in.LoadAddr, in.StoreAddr} {
			if a != 0 {
				dp := uint64(arch.PageNumber4K(a))
				dataPages = append(dataPages, dp)
				allPages = append(allPages, dp<<1|1)
			}
		}
	}

	fmt.Printf("workload %s (%s, pressure=%s), %d instructions\n\n",
		spec.Name, spec.Kind, spec.Band, *n)

	codeFP := analysis.Footprints(codePages, 5)
	dataFP := analysis.Footprints(dataPages, 5)
	fmt.Printf("code:  %8d page accesses over %6d distinct pages (%.1f MB footprint)\n",
		codeFP.Accesses, codeFP.Distinct, float64(codeFP.Distinct)/256)
	fmt.Printf("data:  %8d page accesses over %6d distinct pages (%.1f MB footprint)\n\n",
		dataFP.Accesses, dataFP.Distinct, float64(dataFP.Distinct)/256)

	codeProfile := analysis.ReuseDistances(codePages)
	dataProfile := analysis.ReuseDistances(dataPages)
	fmt.Printf("page reuse (fully-associative LRU hit ratio at capacity):\n")
	fmt.Printf("  capacity      64    128    512   1536   4096\n")
	fmt.Printf("  code      %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
		100*codeProfile.HitRatioAt(64), 100*codeProfile.HitRatioAt(128),
		100*codeProfile.HitRatioAt(512), 100*codeProfile.HitRatioAt(1536),
		100*codeProfile.HitRatioAt(4096))
	fmt.Printf("  data      %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n\n",
		100*dataProfile.HitRatioAt(64), 100*dataProfile.HitRatioAt(128),
		100*dataProfile.HitRatioAt(512), 100*dataProfile.HitRatioAt(1536),
		100*dataProfile.HitRatioAt(4096))

	// OPT vs LRU headroom for a shared translation cache.
	opt := analysis.OPTMisses(allPages, *stlbCap)
	lru := analysis.LRUMisses(allPages, *stlbCap)
	fmt.Printf("shared translation cache (%d entries) over %d accesses:\n", *stlbCap, len(allPages))
	fmt.Printf("  LRU misses: %8d\n  OPT misses: %8d\n  headroom:   %8.1f%% of LRU misses are avoidable\n",
		lru, opt, 100*(1-float64(opt)/float64(lru)))

	if *verbose {
		fmt.Printf("\ncode page reuse histogram:\n%s", codeProfile)
		fmt.Printf("\ndata page reuse histogram:\n%s", dataProfile)
	}
}
