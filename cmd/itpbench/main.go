// Command itpbench regenerates the paper's tables and figures. Each
// experiment sweeps the relevant workloads and configurations and prints
// the series the paper plots (see DESIGN.md's per-experiment index).
//
// Examples:
//
//	itpbench -fig fig8a
//	itpbench -fig all -scale quick
//	itpbench -fig fig13 -server 8 -measure 2000000
//	itpbench -fig mc1 -cores 16 -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"itpsim/internal/experiments"
	"itpsim/internal/plot"
)

// writeSVG renders one experiment as a grouped bar chart. Per-workload
// rows are kept; figures whose interesting number is the aggregate still
// read fine because the geomean appears as its own group.
func writeSVG(dir, id string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rows := make([]plot.RowData, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, plot.RowData{Series: r.Series, Label: r.Label, Value: r.Value})
	}
	chart := plot.FromRows(res.Title, res.YLabel, rows)
	f, err := os.Create(filepath.Join(dir, id+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return chart.Render(f)
}

// writeCSV saves one experiment's rows under dir.
func writeCSV(dir, id string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteCSV(f, res)
}

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id (fig1 fig2 fig3 fig4 fig8a fig8b fig9 fig10 fig11 fig12 fig13 fig14 tab1 tab2 mc1) or 'all'")
		scale   = flag.String("scale", "default", "preset scale: quick or default")
		server  = flag.Int("server", 0, "override: number of server workloads")
		spec    = flag.Int("spec", 0, "override: number of SPEC-like workloads")
		pairs   = flag.Int("pairs", 0, "override: SMT pairs per category")
		warmup  = flag.Uint64("warmup", 0, "override: warmup instructions per thread")
		measure = flag.Uint64("measure", 0, "override: measured instructions per thread")
		cores   = flag.Int("cores", 0, "CMP width for the multi-core co-location study (mc1); 0 = its default of 4")
		par     = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 1, "split each single-workload simulation into this many parallel segments (1 = serial; error bounds in DESIGN.md §12)")

		samplePhases = flag.Int("sample-phases", 0, "phase-sample each single-workload simulation: K phases from a shared LRU-baseline profile, one representative interval each (0 = off; error bounds in DESIGN.md §14)")
		sampleWindow = flag.Uint64("sample-window", 0, "phase-classification interval in retired instructions (0 = 50000); warmup and measure must be multiples of it")
		funcWarmup   = flag.Uint64("func-warmup", 0, "replay this prefix of each segment's warmup functionally (no pipeline); must leave a detailed warmup suffix")
		csvDir  = flag.String("csv", "", "also write <dir>/<fig>.csv for each experiment")
		svgDir  = flag.String("svg", "", "also render <dir>/<fig>.svg bar charts")

		retries    = flag.Int("retries", 0, "retry attempts for transiently failed jobs")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none)")
		checkpoint = flag.String("checkpoint", "", "JSON-lines checkpoint journal; completed jobs are skipped on re-run")
		wdInterval = flag.Duration("watchdog-interval", 5*time.Second, "forward-progress sampling period (0 disables the watchdog)")
		wdSamples  = flag.Int("watchdog-samples", 6, "consecutive no-progress samples before a run is killed")
	)
	flag.Parse()

	if *fig == "" {
		fmt.Fprintf(os.Stderr, "itpbench: -fig required; available: %s, all\n",
			strings.Join(experiments.All(), " "))
		os.Exit(2)
	}

	o := experiments.Defaults()
	if *scale == "quick" {
		o = experiments.Quick()
	}
	if *server > 0 {
		o.ServerWorkloads = *server
	}
	if *spec > 0 {
		o.SpecWorkloads = *spec
	}
	if *pairs > 0 {
		o.SMTPairsPerCategory = *pairs
	}
	if *warmup > 0 {
		o.Warmup = *warmup
	}
	if *measure > 0 {
		o.Measure = *measure
	}
	if *cores > 0 {
		o.Cores = *cores
	}
	if *samplePhases > 0 && *shards > 1 {
		fmt.Fprintln(os.Stderr, "itpbench: -sample-phases and -shards are alternative parallel modes; pick one")
		os.Exit(2)
	}
	o.Parallelism = *par
	o.Shards = *shards
	o.SamplePhases = *samplePhases
	o.SampleWindow = *sampleWindow
	o.FuncWarmup = *funcWarmup
	o.Retries = *retries
	o.JobTimeout = *jobTimeout
	o.Checkpoint = *checkpoint
	o.WatchdogInterval = *wdInterval
	o.WatchdogSamples = *wdSamples
	o.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.All()
	}
	for _, id := range ids {
		//itp:wallclock — progress reporting only; never feeds the simulation
		start := time.Now()
		res, err := experiments.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		experiments.Print(os.Stdout, res)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, res); err != nil {
				fmt.Fprintf(os.Stderr, "itpbench: csv: %v\n", err)
				os.Exit(1)
			}
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, id, res); err != nil {
				fmt.Fprintf(os.Stderr, "itpbench: svg: %v\n", err)
				os.Exit(1)
			}
		}
		//itp:wallclock — progress reporting only; never feeds the simulation
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
