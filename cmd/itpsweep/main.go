// Command itpsweep runs custom parameter sweeps, the moral equivalent of
// the artifact's experiment-customisation workflow: pick a workload set,
// a policy combination, one machine parameter, and a list of values; get
// one row per value with IPC and the key translation metrics.
//
// Examples:
//
//	itpsweep -param xptp.k -values 2,4,6,8
//	itpsweep -param itp.n -values 1,2,4,6 -stlb itp
//	itpsweep -param stlb-entries -values 768,1536,3072 -workloads srv_000,srv_007
//	itpsweep -param huge -values 0,0.1,0.5,1.0 -stlb itp -l2c xptp
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"itpsim/internal/config"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// params maps sweepable parameter names to config mutators.
var params = map[string]func(*config.SystemConfig, float64) error{
	"itp.n": func(c *config.SystemConfig, v float64) error { c.ITP.N = int(v); return nil },
	"itp.m": func(c *config.SystemConfig, v float64) error { c.ITP.M = int(v); return nil },
	"itp.freqbits": func(c *config.SystemConfig, v float64) error {
		c.ITP.FreqBits = int(v)
		return nil
	},
	"xptp.k":  func(c *config.SystemConfig, v float64) error { c.XPTP.K = int(v); return nil },
	"xptp.t1": func(c *config.SystemConfig, v float64) error { c.XPTP.T1 = int(v); return nil },
	"xptp.window": func(c *config.SystemConfig, v float64) error {
		c.XPTP.WindowInstr = uint64(v)
		return nil
	},
	"itlb": func(c *config.SystemConfig, v float64) error {
		*c = c.WithITLBEntries(int(v))
		return nil
	},
	"stlb-entries": func(c *config.SystemConfig, v float64) error {
		*c = c.WithSTLBEntries(int(v))
		return nil
	},
	"huge": func(c *config.SystemConfig, v float64) error {
		c.HugePageFraction = v
		return nil
	},
	"fdip-distance": func(c *config.SystemConfig, v float64) error {
		c.FDIPDistance = int(v)
		return nil
	},
	"rob": func(c *config.SystemConfig, v float64) error { c.ROBSize = int(v); return nil },
	"p":   func(c *config.SystemConfig, v float64) error { c.ProbKeepInstr = v; return nil },
}

func main() {
	var (
		param     = flag.String("param", "", "parameter to sweep: "+paramNames())
		values    = flag.String("values", "", "comma-separated values")
		workloads = flag.String("workloads", "srv_000,srv_007,srv_013", "comma-separated catalogue workloads")
		stlbPol   = flag.String("stlb", "itp", "STLB policy")
		l2cPol    = flag.String("l2c", "xptp", "L2C policy")
		llcPol    = flag.String("llc", "lru", "LLC policy")
		warmup    = flag.Uint64("warmup", 500_000, "warmup instructions")
		measure   = flag.Uint64("n", 1_500_000, "measured instructions")
	)
	flag.Parse()

	mutate, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "itpsweep: -param must be one of %s\n", paramNames())
		os.Exit(2)
	}
	var vals []float64
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itpsweep: bad value %q: %v\n", s, err)
			os.Exit(2)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		fmt.Fprintln(os.Stderr, "itpsweep: -values required")
		os.Exit(2)
	}
	names := strings.Split(*workloads, ",")

	cat := workload.NewCatalog(120, 20)
	fmt.Printf("sweep %s over %v; policies STLB=%s L2C=%s LLC=%s; %d+%d instr\n\n",
		*param, vals, *stlbPol, *l2cPol, *llcPol, *warmup, *measure)
	fmt.Printf("%-10s %-10s %8s %9s %9s %9s %9s\n",
		"value", "workload", "IPC", "STLB-MPKI", "walk-lat", "L2C-dt", "itc%")

	for _, v := range vals {
		ratios := make([]float64, 0, len(names))
		for _, name := range names {
			spec, err := cat.Get(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "itpsweep:", err)
				os.Exit(1)
			}
			cfg := config.Default()
			cfg.STLBPolicy = *stlbPol
			cfg.L2CPolicy = *l2cPol
			cfg.LLCPolicy = *llcPol
			if err := mutate(&cfg, v); err != nil {
				fmt.Fprintln(os.Stderr, "itpsweep:", err)
				os.Exit(1)
			}
			m, err := sim.NewMachine(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "itpsweep:", err)
				os.Exit(1)
			}
			res := m.RunWarmup([]workload.Stream{spec.NewStream()}, *warmup, *measure)
			s := res.Stats
			ti := s.TotalInstructions()
			fmt.Printf("%-10.3g %-10s %8.4f %9.3f %9.1f %9.2f %8.1f%%\n",
				v, spec.Name, res.IPC, s.STLB.MPKI(ti), s.STLB.AvgMissLatency(),
				s.L2C.BucketMPKI(stats.BDataTrans, ti), 100*s.InstrTransFraction())
			ratios = append(ratios, res.IPC)
		}
		fmt.Printf("%-10.3g %-10s %8.4f\n\n", v, "GEOMEAN", stats.Geomean(ratios))
	}
}

func paramNames() string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	// stable order for help text
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}
