// Command itpsweep runs custom parameter sweeps, the moral equivalent of
// the artifact's experiment-customisation workflow: pick a workload set,
// a policy combination, one machine parameter, and a list of values; get
// one row per value with IPC and the key translation metrics.
//
// Every simulation runs under the fault-tolerant harness: a panicking,
// erroring, or stalled job is reported (with a diagnostic snapshot) and
// the rest of the sweep completes; -checkpoint journals finished jobs so
// an interrupted sweep resumes where it stopped.
//
// Examples:
//
//	itpsweep -param xptp.k -values 2,4,6,8
//	itpsweep -param itp.n -values 1,2,4,6 -stlb itp
//	itpsweep -param stlb-entries -values 768,1536,3072 -workloads srv_000,srv_007
//	itpsweep -param huge -values 0,0.1,0.5,1.0 -stlb itp -l2c xptp
//	itpsweep -param rob -values 256,512 -retries 2 -job-timeout 10m -checkpoint sweep.ckpt
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof server
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/sample"
	"itpsim/internal/shard"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// params maps sweepable parameter names to config mutators.
var params = map[string]func(*config.SystemConfig, float64) error{
	"itp.n": func(c *config.SystemConfig, v float64) error { c.ITP.N = int(v); return nil },
	"itp.m": func(c *config.SystemConfig, v float64) error { c.ITP.M = int(v); return nil },
	"itp.freqbits": func(c *config.SystemConfig, v float64) error {
		c.ITP.FreqBits = int(v)
		return nil
	},
	"xptp.k":  func(c *config.SystemConfig, v float64) error { c.XPTP.K = int(v); return nil },
	"xptp.t1": func(c *config.SystemConfig, v float64) error { c.XPTP.T1 = int(v); return nil },
	"xptp.window": func(c *config.SystemConfig, v float64) error {
		c.XPTP.WindowInstr = uint64(v)
		return nil
	},
	"itlb": func(c *config.SystemConfig, v float64) error {
		*c = c.WithITLBEntries(int(v))
		return nil
	},
	"stlb-entries": func(c *config.SystemConfig, v float64) error {
		*c = c.WithSTLBEntries(int(v))
		return nil
	},
	"huge": func(c *config.SystemConfig, v float64) error {
		c.HugePageFraction = v
		return nil
	},
	"fdip-distance": func(c *config.SystemConfig, v float64) error {
		c.FDIPDistance = int(v)
		return nil
	},
	"rob": func(c *config.SystemConfig, v float64) error { c.ROBSize = int(v); return nil },
	"p":   func(c *config.SystemConfig, v float64) error { c.ProbKeepInstr = v; return nil },
}

func main() {
	var (
		param     = flag.String("param", "", "parameter to sweep: "+paramNames())
		values    = flag.String("values", "", "comma-separated values")
		workloads = flag.String("workloads", "srv_000,srv_007,srv_013", "comma-separated catalogue workloads")
		stlbPol   = flag.String("stlb", "itp", "STLB policy")
		l2cPol    = flag.String("l2c", "xptp", "L2C policy")
		llcPol    = flag.String("llc", "lru", "LLC policy")
		warmup    = flag.Uint64("warmup", 500_000, "warmup instructions")
		measure   = flag.Uint64("n", 1_500_000, "measured instructions")
		coresN    = flag.Int("cores", 0, "run each grid point on a CMP with this many cores, every core running a copy of the point's workload (0/1 = single core)")

		metricsOut    = flag.String("metrics-out", "", "write per-window metrics series (JSON lines, all jobs share the file) to this file")
		metricsWindow = flag.Uint64("metrics-window", 0, "metrics sampling window in retired instructions (0 = each job's adaptive controller window when one exists, else 1000)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")

		beaconEvery = flag.Uint64("beacon-interval", 0, "emit deterministic state beacons every N retired instructions (0 disables); chains are journaled with the checkpoint")
		auditOn     = flag.Bool("audit", false, "run the structural invariant auditor during each simulation; violations fail the job with a diagnosis")

		retries     = flag.Int("retries", 0, "retry attempts for transiently failed jobs")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none)")
		checkpoint  = flag.String("checkpoint", "", "JSON-lines checkpoint journal; completed jobs are skipped on re-run")
		wdInterval  = flag.Duration("watchdog-interval", 5*time.Second, "forward-progress sampling period (0 disables the watchdog)")
		wdSamples   = flag.Int("watchdog-samples", 6, "consecutive no-progress samples before a run is killed")
		parallelism = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 1, "split each grid point into this many parallel warmup+measure segments (1 = serial; see DESIGN.md §12 for the error bounds)")

		samplePhases = flag.Int("sample-phases", 0, "phase-sample each grid point: one LRU-baseline profile per (workload, geometry) classifies the run into K phases and only representative intervals simulate in detail (0 = off; error bounds in DESIGN.md §14)")
		sampleWindow = flag.Uint64("sample-window", 50_000, "phase-classification interval in retired instructions; -warmup and -n must be multiples of it when -sample-phases > 1")
		funcWarmup   = flag.Uint64("func-warmup", 0, "replay this prefix of each segment's warmup functionally (no pipeline); must leave a detailed warmup suffix. Applies to -shards and -sample-phases points")
	)
	flag.Parse()

	mutate, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "itpsweep: -param must be one of %s\n", paramNames())
		os.Exit(2)
	}
	var vals []float64
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itpsweep: bad value %q: %v\n", s, err)
			os.Exit(2)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		fmt.Fprintln(os.Stderr, "itpsweep: -values required")
		os.Exit(2)
	}
	if *coresN > 1 && (*shards > 1 || *samplePhases > 0 || *funcWarmup > 0) {
		fmt.Fprintln(os.Stderr, "itpsweep: -shards, -sample-phases, and -func-warmup split/sample one stream; multi-core points (-cores > 1) must run whole")
		os.Exit(2)
	}
	if *samplePhases > 0 && *shards > 1 {
		fmt.Fprintln(os.Stderr, "itpsweep: -sample-phases and -shards are alternative parallel modes; pick one")
		os.Exit(2)
	}
	if *funcWarmup > 0 && *funcWarmup >= *warmup {
		fmt.Fprintf(os.Stderr, "itpsweep: -func-warmup %d must leave a detailed warmup suffix (-warmup %d)\n", *funcWarmup, *warmup)
		os.Exit(2)
	}
	var names []string
	for _, n := range strings.Split(*workloads, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}

	cat := workload.NewCatalog(120, 20)

	// Observability: one shared JSONL series for the whole grid (lines are
	// tagged with the job label) and an optional pprof/expvar server.
	if *pprofAddr != "" {
		//itp:daemon pprof/expvar debug server lives for the whole process by design
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "itpsweep: pprof server:", err)
			}
		}()
	}
	var exporter *metrics.JSONL
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itpsweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		exporter = metrics.NewJSONL(f)
		baseCfg := config.Default()
		baseCfg.STLBPolicy = *stlbPol
		baseCfg.L2CPolicy = *l2cPol
		baseCfg.LLCPolicy = *llcPol
		cfgJSON, _ := baseCfg.MarshalPretty()
		manifestWindow := *metricsWindow
		if manifestWindow == 0 {
			manifestWindow = metrics.DefaultWindow
			if baseCfg.L2CPolicy == "xptp" && baseCfg.XPTP.WindowInstr != 0 {
				manifestWindow = baseCfg.XPTP.WindowInstr
			}
		}
		if err := exporter.Manifest(metrics.Manifest{
			Tool: "itpsweep",
			Git:  metrics.GitDescribe(),
			//itp:wallclock — manifest timestamp only; never feeds the simulation
			Time:        time.Now().UTC().Format(time.RFC3339),
			ConfigHash:  metrics.ConfigHash(cfgJSON),
			WindowInstr: manifestWindow,
			Policies:    map[string]string{"stlb": *stlbPol, "l2c": *l2cPol, "llc": *llcPol},
			Workloads:   names,
			Extra:       map[string]string{"param": *param, "values": *values},
		}); err != nil {
			fmt.Fprintln(os.Stderr, "itpsweep:", err)
			os.Exit(1)
		}
	}
	attachMetrics := func(m *sim.Machine, job string) {
		if exporter == nil && *pprofAddr == "" {
			return
		}
		// 0 = align the sampler with this job's adaptive controller, so each
		// exported window carries the decision that window produced (sweeps
		// over xptp.window get per-job alignment this way).
		mw := *metricsWindow
		if mw == 0 {
			if c := m.Controller(); c != nil {
				mw = uint64(c.WindowInstr())
			} else {
				mw = metrics.DefaultWindow
			}
		}
		reg := metrics.NewRegistry()
		w := m.InstrumentMetrics(reg, mw)
		if exporter != nil {
			w.SetSink(exporter.WindowSink(job, func(err error) {
				fmt.Fprintf(os.Stderr, "itpsweep: metrics export (%s): %v\n", job, err)
			}))
		}
		reg.PublishExpvar("itpsweep." + job)
	}

	hopts := harness.Options{
		Parallelism:      *parallelism,
		Retries:          *retries,
		JobTimeout:       *jobTimeout,
		WatchdogInterval: *wdInterval,
		WatchdogSamples:  *wdSamples,
		Checkpoint:       *checkpoint,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if hopts.Parallelism <= 0 {
		hopts.Parallelism = runtime.GOMAXPROCS(0)
	}

	// One row per (value, workload) point. Serially each point is one
	// harness job; with -shards every point expands into K segment jobs,
	// all flattened into the SAME RunAll so a shared checkpoint journal
	// keeps a single writer, then each point is stitched back into a row.
	type point struct {
		value    float64
		workload string
	}
	var pts []point
	var outs []harness.Outcome[*stats.Sim]
	var runErr error
	var totalJobs int
	if *samplePhases > 0 {
		if *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "itpsweep: -metrics-out is not supported with -sample-phases (representatives carry no stitched window series)")
			os.Exit(2)
		}
		// One LRU-baseline profile per (workload, machine geometry) plans
		// every point that shares it — for policy-parameter sweeps that is
		// one profile per workload for the WHOLE grid, which is where the
		// sampling speedup over serial sweeping comes from. The profiling
		// pre-passes run serially here; the representative jobs of all
		// points then flatten into one RunAll under a shared checkpoint.
		profiles := sample.NewProfiles()
		ix := shard.NewIndex()
		var plans []*sample.Plan
		var starts []int
		var flat []harness.Job[*shard.Payload]
		for _, v := range vals {
			for _, name := range names {
				pts = append(pts, point{v, name})
				cfg := config.Default()
				cfg.STLBPolicy = *stlbPol
				cfg.L2CPolicy = *l2cPol
				cfg.LLCPolicy = *llcPol
				if err := mutate(&cfg, v); err != nil {
					fmt.Fprintf(os.Stderr, "itpsweep: %s=%g: %v\n", *param, v, err)
					os.Exit(2)
				}
				spec, err := cat.Get(name)
				if err != nil {
					fmt.Fprintln(os.Stderr, "itpsweep:", err)
					os.Exit(2)
				}
				src := shard.Source{Name: name, New: spec.NewStream}
				scfg := sample.Config{
					System:         cfg,
					Phases:         *samplePhases,
					Window:         *sampleWindow,
					Warmup:         *warmup,
					Measure:        *measure,
					BeaconInterval: *beaconEvery,
					Audit:          *auditOn,
				}
				if *funcWarmup > 0 {
					scfg.DetailWarmup = *warmup - *funcWarmup
				}
				var plan *sample.Plan
				if scfg.Phases == 1 {
					plan, err = sample.BuildPlan(scfg, nil)
				} else {
					var prof []metrics.WindowRecord
					if prof, err = profiles.Get(scfg, src, nil); err == nil {
						plan, err = sample.BuildPlan(scfg, prof)
					}
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "itpsweep: %s=%g %s: %v\n", *param, v, name, err)
					os.Exit(2)
				}
				key := fmt.Sprintf("sweep|%s=%g|%s|%s/%s/%s|%d/%d",
					*param, v, name, *stlbPol, *l2cPol, *llcPol, *warmup, *measure)
				js, err := plan.Jobs(key, src, ix)
				if err != nil {
					fmt.Fprintln(os.Stderr, "itpsweep:", err)
					os.Exit(2)
				}
				plans = append(plans, plan)
				starts = append(starts, len(flat))
				flat = append(flat, js...)
			}
		}
		totalJobs = len(flat)
		flatOuts, err := harness.RunAll(hopts, flat)
		if flatOuts == nil {
			fmt.Fprintln(os.Stderr, "itpsweep:", err)
			os.Exit(1)
		}
		runErr = err
		outs = make([]harness.Outcome[*stats.Sim], len(pts))
		for i := range pts {
			end := len(flatOuts)
			if i+1 < len(starts) {
				end = starts[i+1]
			}
			res, serr := plans[i].Stitch(flatOuts[starts[i]:end])
			if serr != nil {
				outs[i].Err = serr
				continue
			}
			outs[i].Result = res.Stats
		}
	} else if *shards > 1 || *funcWarmup > 0 {
		if *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "itpsweep: -metrics-out is not supported with -shards (use cmd/itpsim's sharded mode for stitched window export)")
			os.Exit(2)
		}
		var scfgs []shard.Config
		var flat []harness.Job[*shard.Payload]
		ix := shard.NewIndex()
		for _, v := range vals {
			for _, name := range names {
				pts = append(pts, point{v, name})
				cfg := config.Default()
				cfg.STLBPolicy = *stlbPol
				cfg.L2CPolicy = *l2cPol
				cfg.LLCPolicy = *llcPol
				if err := mutate(&cfg, v); err != nil {
					fmt.Fprintf(os.Stderr, "itpsweep: %s=%g: %v\n", *param, v, err)
					os.Exit(2)
				}
				spec, err := cat.Get(name)
				if err != nil {
					fmt.Fprintln(os.Stderr, "itpsweep:", err)
					os.Exit(2)
				}
				scfg := shard.Config{
					System:         cfg,
					Plan:           shard.Plan{Shards: *shards, Warmup: *warmup, Measure: *measure, FuncWarmup: *funcWarmup},
					BeaconInterval: *beaconEvery,
					Audit:          *auditOn,
				}
				key := fmt.Sprintf("sweep|%s=%g|%s|%s/%s/%s|%d/%d",
					*param, v, name, *stlbPol, *l2cPol, *llcPol, *warmup, *measure)
				js, err := shard.Jobs(scfg, key, shard.Source{Name: name, New: spec.NewStream}, ix)
				if err != nil {
					fmt.Fprintln(os.Stderr, "itpsweep:", err)
					os.Exit(2)
				}
				scfgs = append(scfgs, scfg)
				flat = append(flat, js...)
			}
		}
		totalJobs = len(flat)
		flatOuts, err := harness.RunAll(hopts, flat)
		if flatOuts == nil {
			fmt.Fprintln(os.Stderr, "itpsweep:", err)
			os.Exit(1)
		}
		runErr = err
		outs = make([]harness.Outcome[*stats.Sim], len(pts))
		for i := range pts {
			res, serr := shard.Stitch(scfgs[i], flatOuts[i**shards:(i+1)**shards])
			if serr != nil {
				outs[i].Err = serr
				continue
			}
			outs[i].Result = res.Stats
		}
	} else {
		outs, runErr, totalJobs = runSerialSweep(serialSweep{
			cat: cat, mutate: mutate, attachMetrics: attachMetrics, hopts: hopts,
			param: *param, vals: vals, names: names,
			stlb: *stlbPol, l2c: *l2cPol, llc: *llcPol,
			warmup: *warmup, measure: *measure, cores: *coresN,
			beaconEvery: *beaconEvery, auditOn: *auditOn,
		}, func(v float64, name string) { pts = append(pts, point{v, name}) })
	}
	if outs == nil {
		fmt.Fprintln(os.Stderr, "itpsweep:", runErr)
		os.Exit(1)
	}

	fmt.Printf("sweep %s over %v; policies STLB=%s L2C=%s LLC=%s; %d+%d instr",
		*param, vals, *stlbPol, *l2cPol, *llcPol, *warmup, *measure)
	if *shards > 1 {
		fmt.Printf("; %d shards/point", *shards)
	}
	if *samplePhases > 0 {
		fmt.Printf("; %d sample phases/point (w=%d)", *samplePhases, *sampleWindow)
	}
	if *funcWarmup > 0 {
		fmt.Printf("; functional warmup %d", *funcWarmup)
	}
	fmt.Printf("\n\n%-10s %-10s %8s %9s %9s %9s %9s\n",
		"value", "workload", "IPC", "STLB-MPKI", "walk-lat", "L2C-dt", "itc%")

	failed := 0
	i := 0
	for _, v := range vals {
		ratios := make([]float64, 0, len(names))
		for range names {
			pt, out := pts[i], outs[i]
			i++
			if out.Err != nil {
				failed++
				fmt.Printf("%-10.3g %-10s FAILED: %v\n", pt.value, pt.workload, firstLine(out.Err))
				continue
			}
			s := out.Result
			ti := s.TotalInstructions()
			fmt.Printf("%-10.3g %-10s %8.4f %9.3f %9.1f %9.2f %8.1f%%\n",
				pt.value, pt.workload, s.IPC(), s.STLB.MPKI(ti), s.STLB.AvgMissLatency(),
				s.L2C.BucketMPKI(stats.BDataTrans, ti), 100*s.InstrTransFraction())
			ratios = append(ratios, s.IPC())
		}
		fmt.Printf("%-10.3g %-10s %8.4f\n\n", v, "GEOMEAN", stats.Geomean(ratios))
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "itpsweep: %d/%d jobs failed:\n%v\n", failed, totalJobs, runErr)
		os.Exit(1)
	}
}

// serialSweep carries the grid parameters into runSerialSweep.
type serialSweep struct {
	cat           *workload.Catalog
	mutate        func(*config.SystemConfig, float64) error
	attachMetrics func(m *sim.Machine, job string)
	hopts         harness.Options
	param         string
	vals          []float64
	names         []string
	stlb, l2c     string
	llc           string
	warmup        uint64
	measure       uint64
	cores         int
	beaconEvery   uint64
	auditOn       bool
}

// runSerialSweep is the classic one-job-per-point path.
func runSerialSweep(s serialSweep, addPoint func(v float64, name string)) ([]harness.Outcome[*stats.Sim], error, int) {
	var jobs []harness.Job[*stats.Sim]
	for _, v := range s.vals {
		for _, name := range s.names {
			v, name := v, name
			addPoint(v, name)
			jobs = append(jobs, harness.Job[*stats.Sim]{
				Key: fmt.Sprintf("sweep|%s=%g|%s|%s/%s/%s|c%d|%d/%d",
					s.param, v, name, s.stlb, s.l2c, s.llc, s.cores, s.warmup, s.measure),
				Run: func(jc *harness.JobContext) (*stats.Sim, error) {
					spec, err := s.cat.Get(name)
					if err != nil {
						return nil, harness.Permanent(err)
					}
					cfg := config.Default()
					cfg.STLBPolicy = s.stlb
					cfg.L2CPolicy = s.l2c
					cfg.LLCPolicy = s.llc
					if err := s.mutate(&cfg, v); err != nil {
						return nil, harness.Permanent(err)
					}
					if s.cores > 1 {
						cfg.Cores = s.cores
					}
					m, err := sim.NewMachine(cfg)
					if err != nil {
						return nil, harness.Permanent(err)
					}
					jc.Attach(m)
					if s.beaconEvery > 0 {
						m.EnableBeacons(s.beaconEvery)
					}
					if s.auditOn {
						m.EnableAudit(0)
					}
					s.attachMetrics(m, fmt.Sprintf("%s=%g/%s", s.param, v, name))
					// One stream per core: every core runs its own copy of
					// the point's workload, so the sweep measures the shared
					// hierarchy under homogeneous N-tenant pressure.
					nStreams := m.Cores()
					streams := make([]workload.Stream, nStreams)
					for i := range streams {
						p := workload.Prefetch(spec.NewStream())
						defer p.Close()
						streams[i] = p
					}
					res, err := m.RunWarmup(streams, s.warmup, s.measure)
					if err != nil {
						return nil, err
					}
					return res.Stats, nil
				},
			})
		}
	}
	outs, err := harness.RunAll(s.hopts, jobs)
	return outs, err, len(jobs)
}

// firstLine truncates multi-line errors (panic stacks, snapshots) for the
// table; the full detail went to stderr via the harness log.
func firstLine(err error) string {
	s := err.Error()
	if idx := strings.IndexByte(s, '\n'); idx >= 0 {
		s = s[:idx] + " ..."
	}
	return s
}

func paramNames() string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	// stable order for help text
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}
