// Command itpsim runs a single simulation: one workload (or an SMT pair),
// one machine configuration, one policy combination, and prints the full
// statistics report.
//
// Examples:
//
//	itpsim -workload srv_000
//	itpsim -workload srv_000 -stlb itp -l2c xptp -n 2000000
//	itpsim -workload srv_000 -smt srv_001 -stlb itp -l2c xptp
//	itpsim -list
//	itpsim -trace trace.itpt.gz -stlb itp
package main

import (
	"flag"
	"fmt"
	"os"

	"itpsim/internal/config"
	"itpsim/internal/sim"
	"itpsim/internal/trace"
	"itpsim/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "srv_000", "catalogue workload to run")
		smtPartner   = flag.String("smt", "", "co-run this second workload on thread 1")
		tracePath    = flag.String("trace", "", "run a recorded trace file instead of a catalogue workload")
		stlbPol      = flag.String("stlb", "lru", "STLB policy: lru, itp, chirp, problru")
		l2cPol       = flag.String("l2c", "lru", "L2C policy: lru, xptp, xptp-static, ptp, tdrrip, drrip, srrip, ship, mockingjay")
		llcPol       = flag.String("llc", "lru", "LLC policy: lru, ship, mockingjay")
		warmup       = flag.Uint64("warmup", 1_000_000, "warmup instructions per thread")
		measure      = flag.Uint64("n", 3_000_000, "measured instructions per thread")
		itlbEntries  = flag.Int("itlb", 64, "ITLB entries")
		stlbEntries  = flag.Int("stlb-entries", 1536, "STLB entries")
		splitSTLB    = flag.Bool("split-stlb", false, "use split instruction/data STLBs")
		hugeFrac     = flag.Float64("huge", 0, "fraction of footprint on 2MB pages")
		probP        = flag.Float64("p", 0.8, "keep-instructions probability for -stlb problru")
		configJSON   = flag.String("config", "", "load full machine config from JSON file")
		dumpConfig   = flag.Bool("dump-config", false, "print the effective config as JSON and exit")
		list         = flag.Bool("list", false, "list catalogue workloads and exit")
	)
	flag.Parse()

	cat := workload.NewCatalog(120, 20)
	if *list {
		for _, n := range cat.Names() {
			spec, _ := cat.Get(n)
			fmt.Printf("%-10s %-7s pressure=%s\n", n, spec.Kind, spec.Band)
		}
		return
	}

	cfg := config.Default()
	if *configJSON != "" {
		data, err := os.ReadFile(*configJSON)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.FromJSON(data)
		if err != nil {
			fatal(err)
		}
	}
	cfg = cfg.WithITLBEntries(*itlbEntries).WithSTLBEntries(*stlbEntries)
	cfg.STLBPolicy = *stlbPol
	cfg.L2CPolicy = *l2cPol
	cfg.LLCPolicy = *llcPol
	cfg.SplitSTLB = *splitSTLB
	cfg.HugePageFraction = *hugeFrac
	cfg.ProbKeepInstr = *probP

	if *dumpConfig {
		data, err := cfg.MarshalPretty()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	var streams []workload.Stream
	var labels []string
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		streams = append(streams, r)
		labels = append(labels, *tracePath)
	} else {
		spec, err := cat.Get(*workloadName)
		if err != nil {
			fatal(err)
		}
		streams = append(streams, spec.NewStream())
		labels = append(labels, *workloadName)
	}
	if *smtPartner != "" {
		spec, err := cat.Get(*smtPartner)
		if err != nil {
			fatal(err)
		}
		streams = append(streams, spec.NewStream())
		labels = append(labels, *smtPartner)
	}

	m, err := sim.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}
	res := m.RunWarmup(streams, *warmup, *measure)
	fmt.Printf("workloads: %v\npolicies: STLB=%s L2C=%s LLC=%s\nwarmup=%d measure=%d per thread\n\n",
		labels, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy, *warmup, *measure)
	fmt.Print(res.Stats)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itpsim:", err)
	os.Exit(1)
}
