// Command itpsim runs simulations: one workload (or an SMT pair) with the
// full statistics report, or — given a comma-separated workload list — a
// supervised multi-workload batch where each simulation runs under the
// fault-tolerant harness (panic containment, retries, per-job deadline,
// forward-progress watchdog, checkpoint/resume).
//
// Examples:
//
//	itpsim -workload srv_000
//	itpsim -workload srv_000 -stlb itp -l2c xptp -n 2000000
//	itpsim -workload srv_000 -smt srv_001 -stlb itp -l2c xptp
//	itpsim -workload srv_000,srv_001 -cores 4 -stlb itp -l2c xptp
//	itpsim -workload srv_000,srv_001,spec_000 -checkpoint run.ckpt
//	itpsim -workload srv_000,srv_001 -retries 2 -job-timeout 10m
//	itpsim -list
//	itpsim -trace trace.itpt.gz -stlb itp
//	itpsim -workload srv_000 -beacon-interval 100000 -audit
//	itpsim -workload srv_000 -chaos read -retries 2 -beacon-interval 100000
//	itpsim -workload srv_000 -shards 8 -func-warmup 800000
//	itpsim -workload srv_000 -n 100000000 -sample-phases 8 -sample-window 1000000
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof server
	"os"
	"runtime"
	"strings"
	"time"

	"itpsim/internal/chaos"
	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/sample"
	"itpsim/internal/shard"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/trace"
	"itpsim/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "srv_000", "catalogue workload(s) to run, comma-separated")
		smtPartner   = flag.String("smt", "", "co-run this second workload on thread 1 (single-workload mode only)")
		coresN       = flag.Int("cores", 0, "simulate a CMP with this many cores, one tenant per core; -workload names are cycled to fill the cores (0/1 = single core)")
		tracePath    = flag.String("trace", "", "run a recorded trace file instead of a catalogue workload")
		stlbPol      = flag.String("stlb", "lru", "STLB policy: lru, itp, chirp, problru")
		l2cPol       = flag.String("l2c", "lru", "L2C policy: lru, xptp, xptp-static, ptp, tdrrip, drrip, srrip, ship, mockingjay")
		llcPol       = flag.String("llc", "lru", "LLC policy: lru, ship, mockingjay")
		warmup       = flag.Uint64("warmup", 1_000_000, "warmup instructions per thread")
		measure      = flag.Uint64("n", 3_000_000, "measured instructions per thread")
		itlbEntries  = flag.Int("itlb", 64, "ITLB entries")
		stlbEntries  = flag.Int("stlb-entries", 1536, "STLB entries")
		splitSTLB    = flag.Bool("split-stlb", false, "use split instruction/data STLBs")
		hugeFrac     = flag.Float64("huge", 0, "fraction of footprint on 2MB pages")
		probP        = flag.Float64("p", 0.8, "keep-instructions probability for -stlb problru")
		configJSON   = flag.String("config", "", "load full machine config from JSON file")
		dumpConfig   = flag.Bool("dump-config", false, "print the effective config as JSON and exit")
		list         = flag.Bool("list", false, "list catalogue workloads and exit")

		metricsOut    = flag.String("metrics-out", "", "write the per-window metrics series (JSON lines) to this file")
		metricsWindow = flag.Uint64("metrics-window", 0, "metrics sampling window in retired instructions (0 = the adaptive controller's window when one exists, else 1000)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")

		beaconEvery = flag.Uint64("beacon-interval", 0, "emit deterministic state beacons every N retired instructions (0 disables; the final chain fingerprint prints with the report)")
		auditOn     = flag.Bool("audit", false, "run the structural invariant auditor during simulation; violations abort the run with a diagnosis")
		chaosKind   = flag.String("chaos", "", "robustness drill, inject a seeded fault: read (tear trace ingestion mid-stream; retries recover), torn-metrics, slow-metrics")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "seed for -chaos fault placement and the retry-backoff jitter")

		retries     = flag.Int("retries", 0, "retry attempts for transiently failed jobs")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none)")
		checkpoint  = flag.String("checkpoint", "", "JSON-lines checkpoint journal; completed jobs are skipped on re-run")
		wdInterval  = flag.Duration("watchdog-interval", 5*time.Second, "forward-progress sampling period (0 disables the watchdog)")
		wdSamples   = flag.Int("watchdog-samples", 6, "consecutive no-progress samples before a run is killed")
		parallelism = flag.Int("parallel", 0, "concurrent simulations in multi-workload mode (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 1, "split the run into this many parallel warmup+measure segments (single catalogue workload only; 1 = serial)")

		samplePhases = flag.Int("sample-phases", 0, "phase-sample the run: classify the measured region into K phases from an LRU-baseline profiling pre-pass and simulate one representative interval per phase in detail (0 = off; error bounds in DESIGN.md §14)")
		sampleWindow = flag.Uint64("sample-window", 50_000, "phase-classification interval in retired instructions; -warmup and -n must be multiples of it when -sample-phases > 1")
		funcWarmup   = flag.Uint64("func-warmup", 0, "replay this prefix of each segment's warmup functionally (TLB/cache/predictor state only, no pipeline); must leave a detailed warmup suffix. Applies to -shards and -sample-phases runs")
	)
	flag.Parse()

	cat := workload.NewCatalog(120, 20)
	if *list {
		for _, n := range cat.Names() {
			spec, _ := cat.Get(n)
			fmt.Printf("%-10s %-7s pressure=%s\n", n, spec.Kind, spec.Band)
		}
		return
	}

	cfg := config.Default()
	if *configJSON != "" {
		data, err := os.ReadFile(*configJSON)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.FromJSON(data)
		if err != nil {
			fatal(err)
		}
	}
	cfg = cfg.WithITLBEntries(*itlbEntries).WithSTLBEntries(*stlbEntries)
	cfg.STLBPolicy = *stlbPol
	cfg.L2CPolicy = *l2cPol
	cfg.LLCPolicy = *llcPol
	cfg.SplitSTLB = *splitSTLB
	cfg.HugePageFraction = *hugeFrac
	cfg.ProbKeepInstr = *probP
	if *coresN > 0 {
		cfg.Cores = *coresN
	}
	if cfg.Cores > 1 {
		switch {
		case *smtPartner != "":
			fatal(fmt.Errorf("-smt is a single-core mode; it cannot combine with -cores %d", cfg.Cores))
		case *shards > 1:
			fatal(fmt.Errorf("-shards splits one stream; multi-core runs (-cores %d) must run whole", cfg.Cores))
		case *samplePhases > 0:
			fatal(fmt.Errorf("-sample-phases samples one stream; multi-core runs (-cores %d) must run whole", cfg.Cores))
		case *funcWarmup > 0:
			fatal(fmt.Errorf("-func-warmup is a single-core mode; it cannot combine with -cores %d", cfg.Cores))
		case *tracePath != "":
			fatal(fmt.Errorf("-cores needs catalogue workloads; recorded traces are single-stream"))
		}
	}

	if *dumpConfig {
		data, err := cfg.MarshalPretty()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	hopts := harness.Options{
		Parallelism:      *parallelism,
		Retries:          *retries,
		JobTimeout:       *jobTimeout,
		WatchdogInterval: *wdInterval,
		WatchdogSamples:  *wdSamples,
		Checkpoint:       *checkpoint,
		Seed:             *chaosSeed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if hopts.Parallelism <= 0 {
		hopts.Parallelism = runtime.GOMAXPROCS(0)
	}

	names := splitNonEmpty(*workloadName)

	// Observability: the optional JSONL series export and the pprof/expvar
	// debug server. attachMetrics instruments one machine per harness job;
	// with neither flag set it is free (no registry is created).
	if *pprofAddr != "" {
		//itp:daemon pprof/expvar debug server lives for the whole process by design
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "itpsim: pprof server:", err)
			}
		}()
	}
	// 0 = align the sampler with the adaptive controller, so each exported
	// window carries the decision that exact window produced; without a
	// controller fall back to the paper's 1000-instruction window.
	mWindow := *metricsWindow
	if mWindow == 0 {
		mWindow = metrics.DefaultWindow
		if cfg.L2CPolicy == "xptp" && cfg.XPTP.WindowInstr != 0 {
			mWindow = cfg.XPTP.WindowInstr
		}
	}
	var exporter *metrics.JSONL
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// The metrics drills fault the export path only: the simulation
		// must complete with an identical beacon chain either way.
		var sink io.Writer = f
		switch *chaosKind {
		case "torn-metrics":
			sink = chaos.TornAfter(f, chaos.NewRNG(*chaosSeed).Between(256, 1<<20))
		case "slow-metrics":
			sink = chaos.Slow(f, func() { time.Sleep(200 * time.Microsecond) })
		}
		exporter = metrics.NewJSONL(sink)
		cfgJSON, err := cfg.MarshalPretty()
		if err != nil {
			fatal(err)
		}
		series := names
		if *tracePath != "" {
			series = []string{*tracePath}
		}
		if err := exporter.Manifest(metrics.Manifest{
			Tool: "itpsim",
			Git:  metrics.GitDescribe(),
			//itp:wallclock — manifest timestamp only; never feeds the simulation
			Time:        time.Now().UTC().Format(time.RFC3339),
			ConfigHash:  metrics.ConfigHash(cfgJSON),
			WindowInstr: mWindow,
			Policies:    map[string]string{"stlb": cfg.STLBPolicy, "l2c": cfg.L2CPolicy, "llc": cfg.LLCPolicy},
			Workloads:   series,
		}); err != nil {
			fatal(err)
		}
	}
	// attachMetrics arms each job's machine: robustness layers (beacons,
	// auditor) first, then the optional registry/export instrumentation.
	attachMetrics := func(m *sim.Machine, job string) {
		if *beaconEvery > 0 {
			m.EnableBeacons(*beaconEvery)
		}
		if *auditOn {
			m.EnableAudit(0)
		}
		if exporter == nil && *pprofAddr == "" {
			return
		}
		reg := metrics.NewRegistry()
		w := m.InstrumentMetrics(reg, mWindow)
		if exporter != nil {
			w.SetSink(exporter.WindowSink(job, func(err error) {
				fmt.Fprintf(os.Stderr, "itpsim: metrics export (%s): %v\n", job, err)
			}))
		}
		reg.PublishExpvar("itpsim." + job)
	}
	// faultStream is the -chaos read drill: the first attempt's ingestion
	// dies mid-stream with a structured fault; retries read clean bytes
	// and must reproduce the fault-free beacon chain.
	faultStream := func(s workload.Stream, attempt int) workload.Stream {
		if *chaosKind != "read" || attempt != 0 {
			return s
		}
		at := uint64(chaos.NewRNG(*chaosSeed).Between(1, int64(*warmup+*measure)))
		return workload.NewErrorStream(s, at,
			&chaos.Error{Kind: chaos.ReadFault, Op: "ingest", Off: int64(at)})
	}

	if *funcWarmup > 0 && *funcWarmup >= *warmup {
		fatal(fmt.Errorf("-func-warmup %d must leave a detailed warmup suffix (-warmup %d)", *funcWarmup, *warmup))
	}

	if *samplePhases > 0 {
		if *tracePath != "" || *smtPartner != "" || *chaosKind != "" {
			fatal(fmt.Errorf("-sample-phases supports a single catalogue workload (no -trace, -smt, or -chaos)"))
		}
		if len(names) > 1 {
			fatal(fmt.Errorf("-sample-phases applies to a single -workload, not a batch"))
		}
		if *shards > 1 {
			fatal(fmt.Errorf("-sample-phases and -shards are alternative parallel modes; pick one"))
		}
		if exporter != nil {
			fatal(fmt.Errorf("-metrics-out is not supported with -sample-phases (representatives carry no stitched window series)"))
		}
		runSampled(cat, cfg, hopts, names[0], *samplePhases, *sampleWindow, *warmup, *funcWarmup, *measure, *beaconEvery, *auditOn)
		return
	}

	if *tracePath == "" && len(names) > 1 && cfg.Cores <= 1 {
		if *smtPartner != "" {
			fatal(fmt.Errorf("-smt requires a single -workload"))
		}
		if *shards > 1 {
			fatal(fmt.Errorf("-shards applies to a single -workload, not a batch"))
		}
		if *funcWarmup > 0 {
			fatal(fmt.Errorf("-func-warmup applies to a single -workload, not a batch"))
		}
		runBatch(cat, cfg, hopts, names, *warmup, *measure, attachMetrics, faultStream)
		return
	}

	if *shards > 1 || *funcWarmup > 0 {
		if *tracePath != "" || *smtPartner != "" || *chaosKind != "" {
			fatal(fmt.Errorf("-shards and -func-warmup support a single catalogue workload (no -trace, -smt, or -chaos)"))
		}
		var window uint64
		if exporter != nil {
			window = mWindow
		}
		runSharded(cat, cfg, hopts, names[0], *shards, *warmup, *funcWarmup, *measure, *beaconEvery, *auditOn, window, exporter)
		return
	}

	// Single-run mode (catalogue workload, SMT pair, or recorded trace):
	// still supervised, with the full statistics report on success.
	var mkStreams func() ([]workload.Stream, []string, error)
	key := fmt.Sprintf("itpsim|%s|%s/%s/%s|h%.2f|c%d|%d/%d",
		*workloadName+"+"+*smtPartner, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy,
		cfg.HugePageFraction, cfg.Cores, *warmup, *measure)
	if *tracePath != "" {
		key = fmt.Sprintf("itpsim|trace:%s|%s/%s/%s|%d/%d",
			*tracePath, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy, *warmup, *measure)
		mkStreams = func() ([]workload.Stream, []string, error) {
			f, err := os.Open(*tracePath)
			if err != nil {
				return nil, nil, harness.Permanent(err)
			}
			r, err := trace.NewReader(f)
			if err != nil {
				f.Close()
				return nil, nil, harness.Permanent(err)
			}
			return []workload.Stream{r}, []string{*tracePath}, nil
		}
	} else if cfg.Cores > 1 {
		// Multi-core mode: one stream per core, cycling the -workload list
		// so a short list still fills every core with a tenant.
		mkStreams = func() ([]workload.Stream, []string, error) {
			streams := make([]workload.Stream, cfg.Cores)
			labels := make([]string, cfg.Cores)
			for i := range streams {
				spec, err := cat.Get(names[i%len(names)])
				if err != nil {
					return nil, nil, harness.Permanent(err)
				}
				streams[i] = spec.NewStream()
				labels[i] = spec.Name
			}
			return streams, labels, nil
		}
	} else {
		mkStreams = func() ([]workload.Stream, []string, error) {
			spec, err := cat.Get(names[0])
			if err != nil {
				return nil, nil, harness.Permanent(err)
			}
			streams := []workload.Stream{spec.NewStream()}
			labels := []string{spec.Name}
			if *smtPartner != "" {
				partner, err := cat.Get(*smtPartner)
				if err != nil {
					return nil, nil, harness.Permanent(err)
				}
				streams = append(streams, partner.NewStream())
				labels = append(labels, partner.Name)
			}
			return streams, labels, nil
		}
	}

	var labels []string
	job := harness.Job[*stats.Sim]{
		Key: key,
		Run: func(jc *harness.JobContext) (*stats.Sim, error) {
			streams, ls, err := mkStreams()
			if err != nil {
				return nil, err
			}
			labels = ls
			m, err := sim.NewMachine(cfg)
			if err != nil {
				return nil, harness.Permanent(err)
			}
			jc.Attach(m)
			attachMetrics(m, ls[0])
			// Decode-ahead ingestion: trace decode (gzip+uvarint) or
			// synthetic generation overlaps the simulation.
			for i, s := range streams {
				p := workload.Prefetch(faultStream(s, jc.Attempt()))
				defer p.Close()
				streams[i] = p
			}
			res, err := m.RunWarmup(streams, *warmup, *measure)
			if err != nil {
				return nil, err
			}
			return res.Stats, nil
		},
	}
	outs, err := harness.RunAll(hopts, []harness.Job[*stats.Sim]{job})
	if err != nil {
		fatal(err)
	}
	s := outs[0].Result
	if outs[0].Cached {
		labels = []string{*workloadName + " (from checkpoint)"}
	}
	fmt.Printf("workloads: %v\npolicies: STLB=%s L2C=%s LLC=%s\nwarmup=%d measure=%d per thread\n\n",
		labels, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy, *warmup, *measure)
	fmt.Print(s)
	if cfg.Cores > 1 && len(s.Cores) >= cfg.Cores {
		fmt.Printf("\n%-4s %-12s %8s %12s %9s %9s\n", "core", "tenant", "IPC", "instr", "STLB-MPKI", "L1D-MPKI")
		for i := 0; i < cfg.Cores; i++ {
			ten := &s.Cores[i]
			label := "-"
			if i < len(labels) {
				label = labels[i]
			}
			fmt.Printf("%-4d %-12s %8.4f %12d %9.3f %9.3f\n",
				i, label, ten.IPC(), ten.Instructions,
				ten.STLB.MPKI(ten.Instructions), ten.L1D.MPKI(ten.Instructions))
		}
	}
	if b := outs[0].Beacon; b != nil {
		fmt.Printf("\nbeacon chain: %016x over %d beacons\n", b.Chain, b.Count)
	}
}

// runSharded is the parallel single-workload mode: the measured region is
// split into K segments, each simulated on its own machine under the
// supervisor (per-shard retries, watchdog, checkpoint/resume of finished
// shards), and the per-segment statistics are stitched into one report.
// With an exporter, the stitched window series — already rebased into
// serial coordinates — is written after the run completes.
func runSharded(cat *workload.Catalog, cfg config.SystemConfig, hopts harness.Options,
	name string, shards int, warmup, funcWarmup, measure, beaconEvery uint64, auditOn bool,
	window uint64, exporter *metrics.JSONL) {
	spec, err := cat.Get(name)
	if err != nil {
		fatal(err)
	}
	scfg := shard.Config{
		System:         cfg,
		Plan:           shard.Plan{Shards: shards, Warmup: warmup, Measure: measure, FuncWarmup: funcWarmup},
		BeaconInterval: beaconEvery,
		Audit:          auditOn,
		MetricsWindow:  window,
	}
	key := fmt.Sprintf("itpsim|%s|%s/%s/%s|h%.2f|%d/%d",
		name, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy,
		cfg.HugePageFraction, warmup, measure)
	res, err := shard.Run(scfg, key, shard.Source{Name: name, New: spec.NewStream}, shard.NewIndex(), hopts)
	if err != nil {
		fatal(err)
	}
	if exporter != nil {
		sink := exporter.WindowSink(name, func(err error) {
			fmt.Fprintf(os.Stderr, "itpsim: metrics export (%s): %v\n", name, err)
		})
		for i := range res.Windows {
			sink(&res.Windows[i])
		}
	}
	fmt.Printf("workload: %s (%d shards)\npolicies: STLB=%s L2C=%s LLC=%s\nwarmup=%d per shard, measure=%d total\n\n",
		name, shards, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy, warmup, measure)
	fmt.Print(res.Stats)
	fmt.Printf("\n%-6s %12s %12s %9s %s\n", "shard", "offset", "measured", "attempts", "status")
	for _, sh := range res.Shards {
		status := "ok"
		if sh.Cached {
			status = "ok (checkpoint)"
		}
		if sh.Beacon != nil {
			status += fmt.Sprintf(" chain=%016x/%d", sh.Beacon.Chain, sh.Beacon.Count)
		}
		fmt.Printf("%-6d %12d %12d %9d %s\n", sh.Segment.Index, sh.Segment.Offset, sh.Segment.Measure, sh.Attempts, status)
	}
	if b := res.Beacon(); b != nil {
		fmt.Printf("\nbeacon chain: %016x over %d beacons (serial-exact: 1 shard)\n", b.Chain, b.Count)
	}
}

// runSampled is the phase-sampling mode: a cheap profiling pre-pass at
// the LRU baseline classifies the measured region into K phases, then only
// one representative interval per phase is simulated in detail — each as a
// supervised parallel job — and the full-run statistics are reconstructed
// as the phase-occupancy-weighted sum (error bounds in DESIGN.md §14).
func runSampled(cat *workload.Catalog, cfg config.SystemConfig, hopts harness.Options,
	name string, phases int, window, warmup, funcWarmup, measure, beaconEvery uint64, auditOn bool) {
	spec, err := cat.Get(name)
	if err != nil {
		fatal(err)
	}
	scfg := sample.Config{
		System:         cfg,
		Phases:         phases,
		Window:         window,
		Warmup:         warmup,
		Measure:        measure,
		BeaconInterval: beaconEvery,
		Audit:          auditOn,
	}
	if funcWarmup > 0 {
		scfg.DetailWarmup = warmup - funcWarmup
	}
	key := fmt.Sprintf("itpsim|%s|%s/%s/%s|h%.2f|%d/%d",
		name, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy,
		cfg.HugePageFraction, warmup, measure)
	res, err := sample.Run(scfg, key, shard.Source{Name: name, New: spec.NewStream}, shard.NewIndex(), nil, hopts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %s (%d of %d phases requested; %d-instr windows)\npolicies: STLB=%s L2C=%s LLC=%s\nwarmup=%d per representative (%d functional), measure=%d reconstructed\n\n",
		name, len(res.Reps), phases, window, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy, warmup, funcWarmup, measure)
	fmt.Print(res.Stats)
	fmt.Printf("\n%-6s %-8s %12s %8s %9s %s\n", "phase", "window", "offset", "weight", "attempts", "status")
	for _, rp := range res.Reps {
		status := "ok"
		if rp.Cached {
			status = "ok (checkpoint)"
		}
		if rp.Beacon != nil {
			status += fmt.Sprintf(" chain=%016x/%d", rp.Beacon.Chain, rp.Beacon.Count)
		}
		fmt.Printf("%-6d %-8d %12d %8d %9d %s\n",
			rp.Rep.Phase, rp.Rep.Window, rp.Segment.Offset, rp.Rep.Weight, rp.Attempts, status)
	}
	if b := res.Beacon(); b != nil {
		fmt.Printf("\nbeacon chain: %016x over %d beacons (serial-exact: 1 phase, detailed warmup)\n", b.Chain, b.Count)
	}
}

// runBatch is the supervised multi-workload mode: one harness job per
// workload, a compact summary table, and an exit status reflecting
// whether every job succeeded.
func runBatch(cat *workload.Catalog, cfg config.SystemConfig, hopts harness.Options,
	names []string, warmup, measure uint64, attachMetrics func(*sim.Machine, string),
	faultStream func(workload.Stream, int) workload.Stream) {
	jobs := make([]harness.Job[*stats.Sim], len(names))
	for i, name := range names {
		name := name
		jobs[i] = harness.Job[*stats.Sim]{
			Key: fmt.Sprintf("itpsim|%s|%s/%s/%s|h%.2f|%d/%d",
				name, cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy,
				cfg.HugePageFraction, warmup, measure),
			Run: func(jc *harness.JobContext) (*stats.Sim, error) {
				spec, err := cat.Get(name)
				if err != nil {
					return nil, harness.Permanent(err)
				}
				m, err := sim.NewMachine(cfg)
				if err != nil {
					return nil, harness.Permanent(err)
				}
				jc.Attach(m)
				attachMetrics(m, name)
				p := workload.Prefetch(faultStream(spec.NewStream(), jc.Attempt()))
				defer p.Close()
				res, err := m.RunWarmup([]workload.Stream{p}, warmup, measure)
				if err != nil {
					return nil, err
				}
				return res.Stats, nil
			},
		}
	}
	outs, err := harness.RunAll(hopts, jobs)
	if outs == nil {
		fatal(err)
	}

	fmt.Printf("batch: %d workloads; policies STLB=%s L2C=%s LLC=%s; %d+%d instr\n\n",
		len(names), cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy, warmup, measure)
	fmt.Printf("%-12s %8s %9s %9s %8s %s\n", "workload", "IPC", "STLB-MPKI", "walk-lat", "itc%", "status")
	failed := 0
	for i, out := range outs {
		if out.Err != nil {
			failed++
			fmt.Printf("%-12s %8s %9s %9s %8s FAILED (attempt %d)\n",
				names[i], "-", "-", "-", "-", out.Attempts)
			continue
		}
		s := out.Result
		status := "ok"
		if out.Cached {
			status = "ok (checkpoint)"
		}
		if b := out.Beacon; b != nil {
			status += fmt.Sprintf(" chain=%016x/%d", b.Chain, b.Count)
		}
		ti := s.TotalInstructions()
		fmt.Printf("%-12s %8.4f %9.3f %9.1f %7.1f%% %s\n",
			names[i], s.IPC(), s.STLB.MPKI(ti), s.STLB.AvgMissLatency(),
			100*s.InstrTransFraction(), status)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "\nitpsim: %d/%d jobs failed:\n%v\n", failed, len(names), err)
		os.Exit(1)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itpsim:", err)
	os.Exit(1)
}
