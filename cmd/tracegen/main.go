// Command tracegen records synthetic workloads to trace files and
// inspects existing traces.
//
// Examples:
//
//	tracegen -workload srv_000 -n 1000000 -out srv_000.itpt.gz
//	tracegen -inspect srv_000.itpt.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"itpsim/internal/arch"
	"itpsim/internal/trace"
	"itpsim/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "srv_000", "catalogue workload to record")
		n            = flag.Uint64("n", 1_000_000, "instructions to record")
		out          = flag.String("out", "", "output trace path (default <workload>.itpt.gz)")
		inspect      = flag.String("inspect", "", "print a summary of an existing trace and exit")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fatal(err)
		}
		return
	}

	cat := workload.NewCatalog(120, 20)
	spec, err := cat.Get(*workloadName)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *workloadName + ".itpt.gz"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	written, err := trace.Record(w, spec.NewStream(), *n)
	if err != nil {
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f B/instr)\n",
		written, path, st.Size(), float64(st.Size())/float64(written))
}

func inspectTrace(path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var in workload.Instr
	var n, branches, loads, stores, deps uint64
	codePages := map[arch.Addr]bool{}
	dataPages := map[arch.Addr]bool{}
	for r.Next(&in) {
		n++
		if in.IsBranch {
			branches++
		}
		if in.LoadAddr != 0 {
			loads++
			dataPages[arch.PageNumber4K(in.LoadAddr)] = true
		}
		if in.StoreAddr != 0 {
			stores++
			dataPages[arch.PageNumber4K(in.StoreAddr)] = true
		}
		if in.DepLoad {
			deps++
		}
		codePages[arch.PageNumber4K(in.PC)] = true
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("instructions: %d\nbranches: %d (%.1f%%)\nloads: %d (%.1f%%), dependent: %d\nstores: %d (%.1f%%)\n",
		n, branches, pct(branches, n), loads, pct(loads, n), deps, stores, pct(stores, n))
	fmt.Printf("code footprint: %d pages (%.1f MB)\ndata footprint: %d pages (%.1f MB)\n",
		len(codePages), float64(len(codePages))/256, len(dataPages), float64(len(dataPages))/256)
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
