// Custompolicy: the library is extensible — replacement policies are
// plain interfaces. This example implements a new cache replacement
// policy ("FIFO-PTE": FIFO insertion order, but PTE blocks get a second
// chance) against the replacement.Policy interface and races it against
// LRU and xPTP on a raw cache model, outside the full machine.
package main

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/cache"
	"itpsim/internal/config"
	"itpsim/internal/core"
	"itpsim/internal/replacement"
)

// fifoPTE evicts in insertion order, except that a PTE block at the head
// of the queue gets one second chance (moved back to the tail).
type fifoPTE struct{}

func (*fifoPTE) Name() string { return "fifo-pte" }

func (*fifoPTE) Victim(_ int, set []replacement.Line, _ *arch.Access) int {
	if w := replacement.InvalidWay(set); w >= 0 {
		return w
	}
	// Oldest = deepest stack position (we reuse the recency stack as a
	// FIFO queue by never promoting on hits).
	victim := replacement.StackLRUVictim(set)
	if set[victim].IsPTE && !set[victim].Reused {
		// Second chance: recycle to the tail once.
		set[victim].Reused = true
		replacement.MoveToStackPos(set, victim, 0)
		return replacement.StackLRUVictim(set)
	}
	return victim
}

func (*fifoPTE) OnFill(_ int, set []replacement.Line, way int, _ *arch.Access) {
	set[way].Reused = false
	replacement.MoveToStackPos(set, way, 0) // enqueue at tail of FIFO
}

func (*fifoPTE) OnHit(int, []replacement.Line, int, *arch.Access) {} // FIFO: hits don't promote

func (*fifoPTE) OnEvict(int, []replacement.Line, int) {}

// fixedMemory is a 200-cycle constant-latency backing store.
type fixedMemory struct{ accesses int }

func (f *fixedMemory) Access(now uint64, _ *arch.Access) uint64 {
	f.accesses++
	return now + 200
}

// drive replays a synthetic access mix against one cache: a hot working
// set, a scan, and periodic PTE walks, then reports hit rates.
func drive(pol replacement.Policy) (demandHits, demandTotal, pteHits, pteTotal, backing int) {
	mem := &fixedMemory{}
	c := cache.New("L2C", config.CacheConfig{Sets: 256, Ways: 8, Latency: 5, MSHRs: 16},
		pol, mem, nil)

	rng := uint64(42)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	now := uint64(0)
	for i := 0; i < 400000; i++ {
		now += 3
		switch {
		case i%37 == 0: // page-walk reference to a small PTE region
			addr := arch.Addr(0x7000000 + next(512)*64)
			hit := c.Contains(addr, 0)
			acc := arch.Access{Addr: addr, Kind: arch.PTW, Class: arch.DataClass, IsPTE: true}
			c.Access(now, &acc)
			pteTotal++
			if hit {
				pteHits++
			}
		case i%5 == 0: // streaming scan
			acc := arch.Access{Addr: arch.Addr(0x9000000 + i*64), Kind: arch.Load, PC: 0x20}
			c.Access(now, &acc)
		default: // hot working set slightly larger than the cache
			addr := arch.Addr(0x1000000 + next(2600)*64)
			hit := c.Contains(addr, 0)
			acc := arch.Access{Addr: addr, Kind: arch.Load, PC: 0x10}
			c.Access(now, &acc)
			demandTotal++
			if hit {
				demandHits++
			}
		}
	}
	backing = mem.accesses
	return
}

func main() {
	fmt.Println("custom policy demo: 256-set x 8-way cache, hot set + scan + PTE walks")
	fmt.Printf("\n%-10s %12s %12s %14s\n", "policy", "demand-hit%", "PTE-hit%", "mem accesses")
	for _, p := range []replacement.Policy{
		replacement.NewLRU(),
		core.NewXPTP(config.Default().XPTP),
		&fifoPTE{},
	} {
		dh, dt, ph, pt, mem := drive(p)
		fmt.Printf("%-10s %11.1f%% %11.1f%% %14d\n",
			p.Name(), 100*float64(dh)/float64(dt), 100*float64(ph)/float64(pt), mem)
	}
	fmt.Println("\nxPTP keeps the PTE region resident (high PTE hit rate); the custom")
	fmt.Println("FIFO second-chance policy lands in between — swap in your own policy")
	fmt.Println("by implementing the four methods of replacement.Policy.")
}
