// Phaseadaptive: demonstrate the Section 4.3.1 adaptive mechanism. The
// workload alternates between a phase with heavy STLB pressure (big-code
// server behaviour) and a quiet phase whose footprint fits the TLB
// hierarchy. The adaptive controller enables xPTP only during the
// pressured phases; always-on xPTP pays the PTE-pinning cost even when
// nothing needs it.
package main

import (
	"fmt"
	"log"

	"itpsim/internal/config"
	"itpsim/internal/sim"
	"itpsim/internal/workload"
)

// phased alternates between two streams every switchEvery instructions.
type phased struct {
	a, b        workload.Stream
	switchEvery uint64
	count       uint64
	inB         bool
}

func (p *phased) Next(in *workload.Instr) bool {
	p.count++
	if p.count%p.switchEvery == 0 {
		p.inB = !p.inB
	}
	if p.inB {
		return p.b.Next(in)
	}
	return p.a.Next(in)
}

func main() {
	catalog := workload.NewCatalog(120, 20)
	server, err := catalog.Get("srv_013") // heavy STLB pressure
	if err != nil {
		log.Fatal(err)
	}
	// The quiet phase's page footprint fits the TLB hierarchy (STLB
	// MPKI ~0, so the controller should switch xPTP off) but its cache
	// working set wants the whole L2C — pinned PTEs would rob it.
	quiet := workload.SpecParams{
		Seed: 7, CodePages: 4, LoopLen: 64, LoopIters: 500,
		DataPages: 1024, DataZipf: 0.4,
		LoadFrac: 0.28, StoreFrac: 0.08, StreamFrac: 0.05, ReuseFrac: 0.15,
	}

	mkStream := func() workload.Stream {
		return &phased{a: server.NewStream(), b: workload.NewSpec(quiet), switchEvery: 800_000}
	}

	run := func(l2c string) (*sim.Machine, float64) {
		cfg := config.Default()
		cfg.STLBPolicy = "itp"
		cfg.L2CPolicy = l2c
		m, err := sim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.RunWarmup([]workload.Stream{mkStream()}, 800_000, 4_800_000)
		if err != nil {
			log.Fatal(err)
		}
		return m, res.IPC
	}

	fmt.Println("phased workload: 800k-instruction phases alternating heavy/quiet STLB pressure")

	_, lru := run("lru")
	mAdaptive, adaptive := run("xptp")
	_, static := run("xptp-static")

	s := mAdaptive.Stats
	total := s.XPTPEnabledWindows + s.XPTPDisabledWindows
	fmt.Printf("\nadaptive controller: xPTP enabled in %d of %d windows (%.0f%%)\n",
		s.XPTPEnabledWindows, total, 100*float64(s.XPTPEnabledWindows)/float64(total))
	fmt.Printf("\n%-28s %8s %9s\n", "L2C policy", "IPC", "vs LRU")
	fmt.Printf("%-28s %8.4f %9s\n", "LRU", lru, "—")
	fmt.Printf("%-28s %8.4f %+8.1f%%\n", "xPTP always-on", static, 100*(static/lru-1))
	fmt.Printf("%-28s %8.4f %+8.1f%%\n", "xPTP adaptive (Sec. 4.3.1)", adaptive, 100*(adaptive/lru-1))
	fmt.Println("\nThe controller correctly turns xPTP off during the quiet phases (its")
	fmt.Println("purpose is to give workloads with moderate footprints the full L2C).")
	fmt.Println("Note the trade it makes: every off-phase lets LRU evict the pinned data")
	fmt.Println("PTEs, so each pressured phase restarts accumulation — with phases this")
	fmt.Println("short, always-on xPTP can come out ahead.")
}
