// Quickstart: simulate one big-code server workload under the baseline
// LRU machine and under the paper's iTP+xPTP proposal, and report the
// speedup. This is the minimal end-to-end use of the library: pick a
// workload from the catalogue, describe a machine, run it.
package main

import (
	"fmt"
	"log"

	"itpsim/internal/config"
	"itpsim/internal/sim"
	"itpsim/internal/workload"
)

func main() {
	// The catalogue holds deterministic synthetic stand-ins for the
	// paper's Qualcomm Server and SPEC trace sets.
	catalog := workload.NewCatalog(120, 20)
	spec, err := catalog.Get("srv_013")
	if err != nil {
		log.Fatal(err)
	}

	const (
		warmup  = 1_000_000
		measure = 3_000_000
	)

	run := func(stlb, l2c string) *sim.Machine {
		cfg := config.Default() // Table 1 machine
		cfg.STLBPolicy = stlb
		cfg.L2CPolicy = l2c
		m, err := sim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.RunWarmup([]workload.Stream{spec.NewStream()}, warmup, measure); err != nil {
			log.Fatal(err)
		}
		return m
	}

	fmt.Println("simulating", spec.Name, "(this takes a few seconds per run)...")
	base := run("lru", "lru")
	prop := run("itp", "xptp")

	b, p := base.Stats, prop.Stats
	fmt.Printf("\n%-22s %12s %12s\n", "", "LRU baseline", "iTP+xPTP")
	fmt.Printf("%-22s %12.4f %12.4f\n", "IPC", b.IPC(), p.IPC())
	fmt.Printf("%-22s %11.2f%% %11.2f%%\n", "instr-translation", 100*b.InstrTransFraction(), 100*p.InstrTransFraction())
	ti := b.TotalInstructions()
	fmt.Printf("%-22s %12.3f %12.3f\n", "STLB MPKI", b.STLB.MPKI(ti), p.STLB.MPKI(p.TotalInstructions()))
	fmt.Printf("%-22s %12.1f %12.1f\n", "STLB avg miss latency", b.STLB.AvgMissLatency(), p.STLB.AvgMissLatency())
	fmt.Printf("%-22s %12.3f %12.3f\n", "LLC MPKI", b.LLC.MPKI(ti), p.LLC.MPKI(p.TotalInstructions()))
	fmt.Printf("\nspeedup: %+.1f%%\n", 100*(p.IPC()/b.IPC()-1))
}
