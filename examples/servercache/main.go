// Servercache: a replacement-policy study on one big-code server
// workload — the Table 2 policy matrix plus the translation-oblivious
// baselines, with the cache- and TLB-level metrics that explain each
// policy's behaviour (the paper's Section 6.2 analysis in miniature).
package main

import (
	"fmt"
	"log"

	"itpsim/internal/config"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

func main() {
	catalog := workload.NewCatalog(120, 20)
	spec, err := catalog.Get("srv_007")
	if err != nil {
		log.Fatal(err)
	}

	combos := []struct{ name, stlb, l2c string }{
		{"LRU (baseline)", "lru", "lru"},
		{"DRRIP", "lru", "drrip"},
		{"TDRRIP", "lru", "tdrrip"},
		{"PTP", "lru", "ptp"},
		{"CHiRP", "chirp", "lru"},
		{"iTP", "itp", "lru"},
		{"iTP+xPTP", "itp", "xptp"},
	}

	fmt.Printf("workload %s, 1M warmup + 3M measured instructions per run\n\n", spec.Name)
	fmt.Printf("%-15s %8s %8s | %10s %10s %10s | %8s %8s\n",
		"policy", "IPC", "speedup", "STLB-iMPKI", "STLB-dMPKI", "walk-lat", "L2C-dt", "LLC-MPKI")

	var baseIPC float64
	for _, c := range combos {
		cfg := config.Default()
		cfg.STLBPolicy = c.stlb
		cfg.L2CPolicy = c.l2c
		m, err := sim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.RunWarmup([]workload.Stream{spec.NewStream()}, 1_000_000, 3_000_000)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		ti := s.TotalInstructions()
		if baseIPC == 0 {
			baseIPC = res.IPC
		}
		fmt.Printf("%-15s %8.4f %+7.1f%% | %10.3f %10.3f %10.1f | %8.2f %8.2f\n",
			c.name, res.IPC, 100*(res.IPC/baseIPC-1),
			s.STLB.BucketMPKI(stats.BInstr, ti),
			s.STLB.BucketMPKI(stats.BData, ti),
			s.STLB.AvgMissLatency(),
			s.L2C.BucketMPKI(stats.BDataTrans, ti),
			s.LLC.MPKI(ti))
	}
	fmt.Println("\nwalk-lat = average STLB miss (page walk) latency in cycles")
	fmt.Println("L2C-dt   = L2C misses per kilo-instruction caused by data page walks")
}
