// Smtcolocation: evaluate the paper's proposal under workload
// co-location on the multi-core API: each pair runs as a 2-core CMP
// (private L1s, ITLB, DTLB, and branch predictor per core; shared STLB,
// L2C, LLC, page walker, and DRAM), one tenant per core. The example
// runs one pair per co-location category and reports, for LRU and
// iTP+xPTP, the per-tenant IPC, each tenant's slowdown against its solo
// run on an otherwise-idle machine, and the fairness index (min/max
// slowdown; 1 = interference hits both tenants equally).
package main

import (
	"fmt"
	"log"

	"itpsim/internal/config"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

const (
	warmup  = 500_000
	measure = 1_500_000
)

// run simulates the named tenants — one per core when len(names) > 1,
// solo on a single core otherwise — and returns the measured statistics.
func run(catalog *workload.Catalog, names []string, stlb, l2c string) *stats.Sim {
	cfg := config.Default()
	cfg.STLBPolicy = stlb
	cfg.L2CPolicy = l2c
	if len(names) > 1 {
		cfg.Cores = len(names)
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	streams := make([]workload.Stream, len(names))
	for i, n := range names {
		spec, err := catalog.Get(n)
		if err != nil {
			log.Fatal(err)
		}
		streams[i] = spec.NewStream()
	}
	res, err := m.RunWarmup(streams, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats
}

func main() {
	catalog := workload.NewCatalog(120, 20)
	pairs := catalog.SMTPairs(1) // one pair per category

	fmt.Println("2-core CMP co-location study (per-tenant IPC, slowdown vs solo, fairness)")
	for _, policies := range [][2]string{{"lru", "lru"}, {"itp", "xptp"}} {
		stlb, l2c := policies[0], policies[1]
		fmt.Printf("\nSTLB=%s L2C=%s\n", stlb, l2c)
		fmt.Printf("%-12s %-12s %8s %8s %9s %9s\n",
			"category", "tenant", "IPC", "solo", "slowdown", "fairness")
		for _, p := range pairs {
			coloc := run(catalog, []string{p.A, p.B}, stlb, l2c)
			slow := [2]float64{}
			for i, name := range []string{p.A, p.B} {
				solo := run(catalog, []string{name}, stlb, l2c)
				ten := &coloc.Cores[i]
				if ipc := ten.IPC(); ipc > 0 {
					slow[i] = solo.IPC() / ipc
				}
				fmt.Printf("%-12s %-12s %8.4f %8.4f %8.2fx\n",
					p.Category, name, ten.IPC(), solo.IPC(), slow[i])
			}
			fairness := 0.0
			if mx := max(slow[0], slow[1]); mx > 0 {
				fairness = min(slow[0], slow[1]) / mx
			}
			fmt.Printf("%-12s %-12s %8.4f %8s %9s %9.3f\n",
				p.Category, "AGGREGATE", coloc.IPC(), "-", "-", fairness)
		}
	}
	fmt.Println("\nintense = two high-STLB-pressure workloads; medium = high+medium; relaxed = high+low")
	fmt.Println("slowdown = solo IPC / co-located IPC; fairness = min/max slowdown")
}
