// Smtcolocation: evaluate the paper's proposal under workload co-location
// (Section 5.1's SMT model): two hardware threads share the fetch engine,
// TLBs, caches, page walkers, and DRAM. The example runs one pair per
// co-location category and compares LRU, TDRRIP, and iTP+xPTP.
package main

import (
	"fmt"
	"log"

	"itpsim/internal/config"
	"itpsim/internal/sim"
	"itpsim/internal/workload"
)

func main() {
	catalog := workload.NewCatalog(120, 20)
	pairs := catalog.SMTPairs(1) // one pair per category

	const (
		warmup  = 500_000
		measure = 1_500_000
	)

	run := func(p workload.Pair, stlb, l2c string) float64 {
		a, err := catalog.Get(p.A)
		if err != nil {
			log.Fatal(err)
		}
		b, err := catalog.Get(p.B)
		if err != nil {
			log.Fatal(err)
		}
		cfg := config.Default()
		cfg.STLBPolicy = stlb
		cfg.L2CPolicy = l2c
		m, err := sim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.RunWarmup([]workload.Stream{a.NewStream(), b.NewStream()}, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		return res.IPC
	}

	fmt.Println("SMT co-location study (combined IPC of both hardware threads)")
	fmt.Printf("\n%-12s %-22s %8s %10s %10s\n", "category", "pair", "LRU", "TDRRIP", "iTP+xPTP")
	for _, p := range pairs {
		base := run(p, "lru", "lru")
		tdrrip := run(p, "lru", "tdrrip")
		prop := run(p, "itp", "xptp")
		fmt.Printf("%-12s %-22s %8.4f %+9.1f%% %+9.1f%%\n",
			p.Category, p.A+"+"+p.B, base,
			100*(tdrrip/base-1), 100*(prop/base-1))
	}
	fmt.Println("\nintense = two high-STLB-pressure workloads; medium = high+medium; relaxed = high+low")
}
