// Package stats collects the measurements the paper reports: per-level
// hit/miss counts broken down by access category (the dMPKI / iMPKI /
// dtMPKI / itMPKI split of Figure 4), average miss latencies (Figure 9),
// instruction-address-translation cycle accounting (Figure 1), and IPC.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"itpsim/internal/arch"
)

// Bucket is the access category used for MPKI breakdowns.
type Bucket uint8

const (
	// BData — demand loads and stores (dMPKI).
	BData Bucket = iota
	// BInstr — instruction fetches (iMPKI).
	BInstr
	// BDataTrans — page-walk references serving data translations (dtMPKI).
	BDataTrans
	// BInstrTrans — page-walk references serving instruction translations (itMPKI).
	BInstrTrans
	// BPrefetch — prefetcher traffic (not part of demand MPKI).
	BPrefetch
	// BWriteback — writeback traffic.
	BWriteback

	// NumBuckets is the number of access categories.
	NumBuckets
)

// String implements fmt.Stringer.
func (b Bucket) String() string {
	switch b {
	case BData:
		return "data"
	case BInstr:
		return "instr"
	case BDataTrans:
		return "data-trans"
	case BInstrTrans:
		return "instr-trans"
	case BPrefetch:
		return "prefetch"
	case BWriteback:
		return "writeback"
	default:
		return fmt.Sprintf("bucket(%d)", uint8(b))
	}
}

// BucketFor maps an access to its MPKI category.
//
//itp:hotpath
func BucketFor(a *arch.Access) Bucket {
	switch a.Kind {
	case arch.IFetch:
		return BInstr
	case arch.Load, arch.Store:
		return BData
	case arch.PTW:
		if a.Class == arch.InstrClass {
			return BInstrTrans
		}
		return BDataTrans
	case arch.Prefetch:
		return BPrefetch
	default:
		return BWriteback
	}
}

// Level accumulates hit/miss/latency statistics for one cache or TLB level.
// The zero value is ready to use.
type Level struct {
	Name   string
	Hits   [NumBuckets]uint64
	Misses [NumBuckets]uint64
	// MissLatSum/MissLatCnt accumulate the latency of demand misses so
	// the average miss latency of Figure 9 can be reported.
	MissLatSum uint64
	MissLatCnt uint64
}

// Record notes one access outcome in bucket b.
//
//itp:hotpath
func (l *Level) Record(b Bucket, hit bool) {
	if hit {
		l.Hits[b]++
	} else {
		l.Misses[b]++
	}
}

// RecordMissLatency accumulates the observed latency of one demand miss.
//
//itp:hotpath
func (l *Level) RecordMissLatency(cycles uint64) {
	l.MissLatSum += cycles
	l.MissLatCnt++
}

// TotalHits returns hits summed over demand buckets.
func (l *Level) TotalHits() uint64 {
	return l.Hits[BData] + l.Hits[BInstr] + l.Hits[BDataTrans] + l.Hits[BInstrTrans]
}

// TotalMisses returns misses summed over demand buckets.
func (l *Level) TotalMisses() uint64 {
	return l.Misses[BData] + l.Misses[BInstr] + l.Misses[BDataTrans] + l.Misses[BInstrTrans]
}

// MPKI returns demand misses per kilo-instruction.
func (l *Level) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(l.TotalMisses()) / float64(instructions) * 1000
}

// BucketMPKI returns the demand MPKI of a single category.
func (l *Level) BucketMPKI(b Bucket, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(l.Misses[b]) / float64(instructions) * 1000
}

// AvgMissLatency returns the mean demand-miss latency in cycles.
func (l *Level) AvgMissLatency() float64 {
	if l.MissLatCnt == 0 {
		return 0
	}
	return float64(l.MissLatSum) / float64(l.MissLatCnt)
}

// HitRate returns demand hits / demand accesses.
func (l *Level) HitRate() float64 {
	total := l.TotalHits() + l.TotalMisses()
	if total == 0 {
		return 0
	}
	return float64(l.TotalHits()) / float64(total)
}

// Reset zeroes the level's counters, keeping the name.
func (l *Level) Reset() {
	name := l.Name
	*l = Level{Name: name}
}

// Sim aggregates everything one simulation run produces.
type Sim struct {
	// Cycles is the total simulated cycles (arch.Cycle, not a bare
	// uint64, so it cannot silently cross with instruction counts).
	Cycles arch.Cycle
	// Instructions retired, per hardware thread.
	Instructions [2]uint64

	ITLB, DTLB, STLB Level
	L1I, L1D, L2C    Level
	LLC              Level

	// InstrTransCycles accumulates front-end stall cycles attributable
	// to instruction address translation (the Figure 1 metric).
	InstrTransCycles arch.Cycle
	// DataTransCycles accumulates data translation latency (informational).
	DataTransCycles arch.Cycle

	// PageWalks counts completed walks by translation class.
	PageWalks [2]uint64
	// WalkLatSum accumulates total walk latency by class.
	WalkLatSum [2]arch.Cycle
	// PSCHits counts page-structure-cache hits per level index (5..2 → 0..3).
	PSCHits [4]uint64

	// XPTPEnabledWindows / XPTPDisabledWindows count the adaptive
	// controller's decisions (Section 4.3.1).
	XPTPEnabledWindows  uint64
	XPTPDisabledWindows uint64

	// DRAMAccesses counts main-memory transfers.
	DRAMAccesses uint64

	// STLBPrefetches counts sequential instruction-translation
	// prefetches issued by the Section 7 extension.
	STLBPrefetches uint64
}

// NewSim returns a Sim with the level names populated.
func NewSim() *Sim {
	s := &Sim{}
	s.ITLB.Name = "ITLB"
	s.DTLB.Name = "DTLB"
	s.STLB.Name = "STLB"
	s.L1I.Name = "L1I"
	s.L1D.Name = "L1D"
	s.L2C.Name = "L2C"
	s.LLC.Name = "LLC"
	return s
}

// TotalInstructions returns instructions retired across all threads.
func (s *Sim) TotalInstructions() uint64 {
	return s.Instructions[0] + s.Instructions[1]
}

// IPC returns the combined instructions-per-cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalInstructions()) / float64(s.Cycles)
}

// InstrTransFraction returns the fraction of all cycles spent serving
// instruction address translation (Figure 1's y-axis).
func (s *Sim) InstrTransFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.InstrTransCycles) / float64(s.Cycles)
}

// AvgWalkLatency returns the mean page-walk latency for class c.
func (s *Sim) AvgWalkLatency(c arch.Class) float64 {
	if s.PageWalks[c] == 0 {
		return 0
	}
	return float64(s.WalkLatSum[c]) / float64(s.PageWalks[c])
}

// Levels returns all levels in report order.
func (s *Sim) Levels() []*Level {
	return []*Level{&s.ITLB, &s.DTLB, &s.STLB, &s.L1I, &s.L1D, &s.L2C, &s.LLC}
}

// String renders a human-readable report.
func (s *Sim) String() string {
	var b strings.Builder
	instr := s.TotalInstructions()
	fmt.Fprintf(&b, "cycles=%d instructions=%d ipc=%.4f\n", s.Cycles, instr, s.IPC())
	fmt.Fprintf(&b, "instr-translation-cycles=%d (%.2f%% of cycles)\n",
		s.InstrTransCycles, 100*s.InstrTransFraction())
	for _, l := range s.Levels() {
		fmt.Fprintf(&b, "%-5s mpki=%8.3f  [d=%.3f i=%.3f dt=%.3f it=%.3f]  avg-miss-lat=%.1f  hit-rate=%.3f\n",
			l.Name, l.MPKI(instr),
			l.BucketMPKI(BData, instr), l.BucketMPKI(BInstr, instr),
			l.BucketMPKI(BDataTrans, instr), l.BucketMPKI(BInstrTrans, instr),
			l.AvgMissLatency(), l.HitRate())
	}
	fmt.Fprintf(&b, "walks: instr=%d (avg %.1f cyc) data=%d (avg %.1f cyc)\n",
		s.PageWalks[arch.InstrClass], s.AvgWalkLatency(arch.InstrClass),
		s.PageWalks[arch.DataClass], s.AvgWalkLatency(arch.DataClass))
	fmt.Fprintf(&b, "dram-accesses=%d\n", s.DRAMAccesses)
	return b.String()
}

// Geomean returns the geometric mean of xs (must all be > 0); it returns 0
// for an empty slice. It is the aggregation the paper uses for speedups.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentiles returns the p-quantiles (0..1) of xs using nearest-rank.
func Percentiles(xs []float64, ps ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(ps))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		idx := int(p * float64(len(sorted)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}
