// Package stats collects the measurements the paper reports: per-level
// hit/miss counts broken down by access category (the dMPKI / iMPKI /
// dtMPKI / itMPKI split of Figure 4), average miss latencies (Figure 9),
// instruction-address-translation cycle accounting (Figure 1), and IPC.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"itpsim/internal/arch"
)

// Bucket is the access category used for MPKI breakdowns.
type Bucket uint8

const (
	// BData — demand loads and stores (dMPKI).
	BData Bucket = iota
	// BInstr — instruction fetches (iMPKI).
	BInstr
	// BDataTrans — page-walk references serving data translations (dtMPKI).
	BDataTrans
	// BInstrTrans — page-walk references serving instruction translations (itMPKI).
	BInstrTrans
	// BPrefetch — prefetcher traffic (not part of demand MPKI).
	BPrefetch
	// BWriteback — writeback traffic.
	BWriteback

	// NumBuckets is the number of access categories.
	NumBuckets
)

// String implements fmt.Stringer.
func (b Bucket) String() string {
	switch b {
	case BData:
		return "data"
	case BInstr:
		return "instr"
	case BDataTrans:
		return "data-trans"
	case BInstrTrans:
		return "instr-trans"
	case BPrefetch:
		return "prefetch"
	case BWriteback:
		return "writeback"
	default:
		return fmt.Sprintf("bucket(%d)", uint8(b))
	}
}

// BucketFor maps an access to its MPKI category.
//
//itp:hotpath
func BucketFor(a *arch.Access) Bucket {
	switch a.Kind {
	case arch.IFetch:
		return BInstr
	case arch.Load, arch.Store:
		return BData
	case arch.PTW:
		if a.Class == arch.InstrClass {
			return BInstrTrans
		}
		return BDataTrans
	case arch.Prefetch:
		return BPrefetch
	default:
		return BWriteback
	}
}

// Level accumulates hit/miss/latency statistics for one cache or TLB level.
// The zero value is ready to use.
type Level struct {
	Name   string
	Hits   [NumBuckets]uint64
	Misses [NumBuckets]uint64
	// MissLatSum/MissLatCnt accumulate the latency of demand misses so
	// the average miss latency of Figure 9 can be reported.
	MissLatSum uint64
	MissLatCnt uint64
}

// Record notes one access outcome in bucket b.
//
//itp:hotpath
func (l *Level) Record(b Bucket, hit bool) {
	if hit {
		l.Hits[b]++
	} else {
		l.Misses[b]++
	}
}

// RecordMissLatency accumulates the observed latency of one demand miss.
//
//itp:hotpath
func (l *Level) RecordMissLatency(cycles uint64) {
	l.MissLatSum += cycles
	l.MissLatCnt++
}

// TotalHits returns hits summed over demand buckets.
func (l *Level) TotalHits() uint64 {
	return l.Hits[BData] + l.Hits[BInstr] + l.Hits[BDataTrans] + l.Hits[BInstrTrans]
}

// TotalMisses returns misses summed over demand buckets.
func (l *Level) TotalMisses() uint64 {
	return l.Misses[BData] + l.Misses[BInstr] + l.Misses[BDataTrans] + l.Misses[BInstrTrans]
}

// MPKI returns demand misses per kilo-instruction.
func (l *Level) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(l.TotalMisses()) / float64(instructions) * 1000
}

// BucketMPKI returns the demand MPKI of a single category.
func (l *Level) BucketMPKI(b Bucket, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(l.Misses[b]) / float64(instructions) * 1000
}

// AvgMissLatency returns the mean demand-miss latency in cycles.
func (l *Level) AvgMissLatency() float64 {
	if l.MissLatCnt == 0 {
		return 0
	}
	return float64(l.MissLatSum) / float64(l.MissLatCnt)
}

// HitRate returns demand hits / demand accesses.
func (l *Level) HitRate() float64 {
	total := l.TotalHits() + l.TotalMisses()
	if total == 0 {
		return 0
	}
	return float64(l.TotalHits()) / float64(total)
}

// Reset zeroes the level's counters, keeping the name.
func (l *Level) Reset() {
	name := l.Name
	*l = Level{Name: name}
}

// Add accumulates src's counters into l. Every Level field is a sum over
// observed events, so addition composes exactly.
func (l *Level) Add(src *Level) {
	l.AddScaled(src, 1)
}

// AddScaled accumulates k copies of src's counters into l. Occupancy
// weights in a sampled-run reconstruction are integer window counts, so
// the multiply is exact in uint64.
func (l *Level) AddScaled(src *Level, k uint64) {
	for b := range l.Hits {
		l.Hits[b] += k * src.Hits[b]
		l.Misses[b] += k * src.Misses[b]
	}
	l.MissLatSum += k * src.MissLatSum
	l.MissLatCnt += k * src.MissLatCnt
}

// Core is the per-tenant statistics view of one CMP run. One tenant is
// one hardware thread with its own workload stream: tenant i runs on
// core i, except in the single-core SMT mode where tenants 0 and 1
// share core 0. ITLB/DTLB/STLB counters are attributed exactly per
// tenant (recorded at the translation site, where the thread is known);
// L1I/L1D counters are per core, which equals per tenant everywhere but
// under SMT, where both threads' traffic lands on tenant 0's view.
type Core struct {
	// Instructions retired and Cycles elapsed for this tenant during the
	// measured phase; their quotient is the tenant's IPC.
	Instructions uint64
	Cycles       arch.Cycle

	ITLB, DTLB Level
	// STLB is this tenant's slice of the shared second-level TLB traffic.
	STLB     Level
	L1I, L1D Level

	// InstrTransCycles / DataTransCycles are this tenant's translation
	// stall accounting (the per-tenant split of the Figure 1 metric).
	InstrTransCycles arch.Cycle
	DataTransCycles  arch.Cycle
}

// IPC returns this tenant's instructions-per-cycle.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// Levels returns the tenant's levels in report order.
func (c *Core) Levels() []*Level {
	return []*Level{&c.ITLB, &c.DTLB, &c.STLB, &c.L1I, &c.L1D}
}

// Sim aggregates everything one simulation run produces.
type Sim struct {
	// Cycles is the total simulated cycles (arch.Cycle, not a bare
	// uint64, so it cannot silently cross with instruction counts).
	Cycles arch.Cycle
	// Instructions retired, per hardware thread (tenant).
	Instructions []uint64

	// Cores holds the per-tenant statistics views of a CMP run (one
	// entry per hardware thread; always at least two so the SMT mode has
	// a slot per thread). The aggregate fields below are the exact sums
	// of the per-tenant views wherever both exist.
	Cores []Core

	ITLB, DTLB, STLB Level
	L1I, L1D, L2C    Level
	LLC              Level

	// InstrTransCycles accumulates front-end stall cycles attributable
	// to instruction address translation (the Figure 1 metric).
	InstrTransCycles arch.Cycle
	// DataTransCycles accumulates data translation latency (informational).
	DataTransCycles arch.Cycle

	// PageWalks counts completed walks by translation class.
	PageWalks [2]uint64
	// WalkLatSum accumulates total walk latency by class.
	WalkLatSum [2]arch.Cycle
	// PSCHits counts page-structure-cache hits per level index (5..2 → 0..3).
	PSCHits [4]uint64

	// XPTPEnabledWindows / XPTPDisabledWindows count the adaptive
	// controller's decisions (Section 4.3.1).
	XPTPEnabledWindows  uint64
	XPTPDisabledWindows uint64

	// DRAMAccesses counts main-memory transfers.
	DRAMAccesses uint64

	// STLBPrefetches counts sequential instruction-translation
	// prefetches issued by the Section 7 extension.
	STLBPrefetches uint64
}

// NewSim returns a Sim with the level names populated and room for the
// two hardware threads of the classic machine; EnsureTenants grows it
// for wider CMPs.
func NewSim() *Sim {
	s := &Sim{}
	s.ITLB.Name = "ITLB"
	s.DTLB.Name = "DTLB"
	s.STLB.Name = "STLB"
	s.L1I.Name = "L1I"
	s.L1D.Name = "L1D"
	s.L2C.Name = "L2C"
	s.LLC.Name = "LLC"
	s.EnsureTenants(2)
	return s
}

// EnsureTenants grows the per-tenant state to hold at least n tenants.
// Growth reallocates the Cores slice, so callers that retain pointers
// into it (the simulator wires cache sinks at construction) must size it
// once up front, before taking pointers.
func (s *Sim) EnsureTenants(n int) {
	for len(s.Instructions) < n {
		s.Instructions = append(s.Instructions, 0)
	}
	for len(s.Cores) < n {
		s.Cores = append(s.Cores, Core{})
		c := &s.Cores[len(s.Cores)-1]
		c.ITLB.Name = "ITLB"
		c.DTLB.Name = "DTLB"
		c.STLB.Name = "STLB"
		c.L1I.Name = "L1I"
		c.L1D.Name = "L1D"
	}
}

// ResetMeasured zeroes every measured counter — the warmup→measure
// boundary reset. It intentionally walks *all* measurement state
// (aggregate and per-tenant) rather than a hand-kept field list, so a
// newly added counter cannot silently survive the reset and corrupt the
// measured phase; TestResetMeasuredCoversEveryField enforces this by
// reflection. Slice headers and level names are preserved in place
// because the simulator holds pointers into them.
func (s *Sim) ResetMeasured() {
	s.Cycles = 0
	for i := range s.Instructions {
		s.Instructions[i] = 0
	}
	for i := range s.Cores {
		c := &s.Cores[i]
		c.Instructions = 0
		c.Cycles = 0
		for _, l := range c.Levels() {
			l.Reset()
		}
		c.InstrTransCycles = 0
		c.DataTransCycles = 0
	}
	for _, l := range s.Levels() {
		l.Reset()
	}
	s.InstrTransCycles = 0
	s.DataTransCycles = 0
	s.PageWalks = [2]uint64{}
	s.WalkLatSum = [2]arch.Cycle{}
	s.PSCHits = [4]uint64{}
	s.XPTPEnabledWindows = 0
	s.XPTPDisabledWindows = 0
	s.DRAMAccesses = 0
	s.STLBPrefetches = 0
}

// AggregateTenants recomputes the aggregate views that are recorded
// per tenant during a run — first-level TLBs, the STLB, the private L1s,
// and the translation-cycle accounting — as exact sums of the per-tenant
// views. Idempotent: it rebuilds those aggregates from scratch, so the
// simulator may call it at every run end.
func (s *Sim) AggregateTenants() {
	s.ITLB.Reset()
	s.DTLB.Reset()
	s.STLB.Reset()
	s.L1I.Reset()
	s.L1D.Reset()
	s.InstrTransCycles = 0
	s.DataTransCycles = 0
	for i := range s.Cores {
		c := &s.Cores[i]
		s.ITLB.Add(&c.ITLB)
		s.DTLB.Add(&c.DTLB)
		s.STLB.Add(&c.STLB)
		s.L1I.Add(&c.L1I)
		s.L1D.Add(&c.L1D)
		s.InstrTransCycles += c.InstrTransCycles
		s.DataTransCycles += c.DataTransCycles
	}
}

// AddScaled accumulates k copies of src's counters into s. Every counter
// in Sim is a sum over measured events, so k-fold summation is exact; it
// is both the shard-stitch accumulation (k=1) and the occupancy-weighted
// sum a sampled-run reconstruction needs (k = windows represented).
// Derived ratios (IPC, MPKI, hit rates) recompute correctly from the
// weighted counters because they are pure quotients of sums. Like
// ResetMeasured, correctness rests on covering *every* measured field;
// TestAddScaledCoversEveryField enforces by reflection that a newly
// added counter cannot silently vanish from stitched or sampled results.
func (s *Sim) AddScaled(src *Sim, k uint64) {
	s.Cycles += arch.Cycle(k) * src.Cycles
	if n := len(src.Instructions); n > len(src.Cores) {
		s.EnsureTenants(n)
	} else {
		s.EnsureTenants(len(src.Cores))
	}
	for i := range src.Instructions {
		s.Instructions[i] += k * src.Instructions[i]
	}
	for i := range src.Cores {
		sc, dc := &src.Cores[i], &s.Cores[i]
		dc.Instructions += k * sc.Instructions
		dc.Cycles += arch.Cycle(k) * sc.Cycles
		dcl, scl := dc.Levels(), sc.Levels()
		for j := range dcl {
			dcl[j].AddScaled(scl[j], k)
		}
		dc.InstrTransCycles += arch.Cycle(k) * sc.InstrTransCycles
		dc.DataTransCycles += arch.Cycle(k) * sc.DataTransCycles
	}
	dl, sl := s.Levels(), src.Levels()
	for i := range dl {
		dl[i].AddScaled(sl[i], k)
	}
	s.InstrTransCycles += arch.Cycle(k) * src.InstrTransCycles
	s.DataTransCycles += arch.Cycle(k) * src.DataTransCycles
	for i := range s.PageWalks {
		s.PageWalks[i] += k * src.PageWalks[i]
		s.WalkLatSum[i] += arch.Cycle(k) * src.WalkLatSum[i]
	}
	for i := range s.PSCHits {
		s.PSCHits[i] += k * src.PSCHits[i]
	}
	s.XPTPEnabledWindows += k * src.XPTPEnabledWindows
	s.XPTPDisabledWindows += k * src.XPTPDisabledWindows
	s.DRAMAccesses += k * src.DRAMAccesses
	s.STLBPrefetches += k * src.STLBPrefetches
}

// TotalInstructions returns instructions retired across all threads.
func (s *Sim) TotalInstructions() uint64 {
	var total uint64
	for _, n := range s.Instructions {
		total += n
	}
	return total
}

// IPC returns the combined instructions-per-cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalInstructions()) / float64(s.Cycles)
}

// InstrTransFraction returns the fraction of all cycles spent serving
// instruction address translation (Figure 1's y-axis).
func (s *Sim) InstrTransFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.InstrTransCycles) / float64(s.Cycles)
}

// AvgWalkLatency returns the mean page-walk latency for class c.
func (s *Sim) AvgWalkLatency(c arch.Class) float64 {
	if s.PageWalks[c] == 0 {
		return 0
	}
	return float64(s.WalkLatSum[c]) / float64(s.PageWalks[c])
}

// Levels returns all levels in report order.
func (s *Sim) Levels() []*Level {
	return []*Level{&s.ITLB, &s.DTLB, &s.STLB, &s.L1I, &s.L1D, &s.L2C, &s.LLC}
}

// String renders a human-readable report.
func (s *Sim) String() string {
	var b strings.Builder
	instr := s.TotalInstructions()
	fmt.Fprintf(&b, "cycles=%d instructions=%d ipc=%.4f\n", s.Cycles, instr, s.IPC())
	fmt.Fprintf(&b, "instr-translation-cycles=%d (%.2f%% of cycles)\n",
		s.InstrTransCycles, 100*s.InstrTransFraction())
	for _, l := range s.Levels() {
		fmt.Fprintf(&b, "%-5s mpki=%8.3f  [d=%.3f i=%.3f dt=%.3f it=%.3f]  avg-miss-lat=%.1f  hit-rate=%.3f\n",
			l.Name, l.MPKI(instr),
			l.BucketMPKI(BData, instr), l.BucketMPKI(BInstr, instr),
			l.BucketMPKI(BDataTrans, instr), l.BucketMPKI(BInstrTrans, instr),
			l.AvgMissLatency(), l.HitRate())
	}
	fmt.Fprintf(&b, "walks: instr=%d (avg %.1f cyc) data=%d (avg %.1f cyc)\n",
		s.PageWalks[arch.InstrClass], s.AvgWalkLatency(arch.InstrClass),
		s.PageWalks[arch.DataClass], s.AvgWalkLatency(arch.DataClass))
	fmt.Fprintf(&b, "dram-accesses=%d\n", s.DRAMAccesses)
	return b.String()
}

// Geomean returns the geometric mean of xs (must all be > 0); it returns 0
// for an empty slice. It is the aggregation the paper uses for speedups.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentiles returns the p-quantiles (0..1) of xs using nearest-rank.
func Percentiles(xs []float64, ps ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(ps))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		idx := int(p * float64(len(sorted)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}
