package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"itpsim/internal/arch"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		acc  arch.Access
		want Bucket
	}{
		{arch.Access{Kind: arch.IFetch}, BInstr},
		{arch.Access{Kind: arch.Load}, BData},
		{arch.Access{Kind: arch.Store}, BData},
		{arch.Access{Kind: arch.PTW, Class: arch.InstrClass}, BInstrTrans},
		{arch.Access{Kind: arch.PTW, Class: arch.DataClass}, BDataTrans},
		{arch.Access{Kind: arch.Prefetch}, BPrefetch},
		{arch.Access{Kind: arch.Writeback}, BWriteback},
	}
	for _, c := range cases {
		if got := BucketFor(&c.acc); got != c.want {
			t.Errorf("BucketFor(%v/%v) = %v, want %v", c.acc.Kind, c.acc.Class, got, c.want)
		}
	}
}

func TestBucketString(t *testing.T) {
	for b := Bucket(0); b < NumBuckets; b++ {
		if strings.HasPrefix(b.String(), "bucket(") {
			t.Errorf("bucket %d has no name", b)
		}
	}
	if Bucket(200).String() != "bucket(200)" {
		t.Error("unknown bucket string wrong")
	}
}

func TestLevelCounting(t *testing.T) {
	var l Level
	l.Record(BData, true)
	l.Record(BData, false)
	l.Record(BInstr, false)
	l.Record(BDataTrans, false)
	l.Record(BInstrTrans, true)
	l.Record(BPrefetch, false) // not demand

	if l.TotalHits() != 2 {
		t.Errorf("TotalHits = %d, want 2", l.TotalHits())
	}
	if l.TotalMisses() != 3 {
		t.Errorf("TotalMisses = %d, want 3", l.TotalMisses())
	}
	if got := l.MPKI(1000); got != 3 {
		t.Errorf("MPKI = %v, want 3", got)
	}
	if got := l.BucketMPKI(BData, 1000); got != 1 {
		t.Errorf("BucketMPKI(BData) = %v, want 1", got)
	}
	if hr := l.HitRate(); math.Abs(hr-0.4) > 1e-9 {
		t.Errorf("HitRate = %v, want 0.4", hr)
	}
}

func TestLevelMissLatency(t *testing.T) {
	var l Level
	if l.AvgMissLatency() != 0 {
		t.Error("empty AvgMissLatency should be 0")
	}
	l.RecordMissLatency(100)
	l.RecordMissLatency(200)
	if got := l.AvgMissLatency(); got != 150 {
		t.Errorf("AvgMissLatency = %v, want 150", got)
	}
}

func TestLevelReset(t *testing.T) {
	l := Level{Name: "X"}
	l.Record(BData, false)
	l.RecordMissLatency(5)
	l.Reset()
	if l.Name != "X" || l.TotalMisses() != 0 || l.MissLatSum != 0 {
		t.Errorf("Reset did not preserve name / clear counters: %+v", l)
	}
}

func TestZeroInstructionsMPKI(t *testing.T) {
	var l Level
	l.Record(BData, false)
	if l.MPKI(0) != 0 || l.BucketMPKI(BData, 0) != 0 {
		t.Error("MPKI with zero instructions should be 0")
	}
}

func TestSimIPCAndFractions(t *testing.T) {
	s := NewSim()
	s.Cycles = 1000
	s.Instructions[0] = 1500
	s.Instructions[1] = 500
	if got := s.IPC(); got != 2.0 {
		t.Errorf("IPC = %v, want 2", got)
	}
	s.InstrTransCycles = 100
	if got := s.InstrTransFraction(); got != 0.1 {
		t.Errorf("InstrTransFraction = %v, want 0.1", got)
	}
	if s.TotalInstructions() != 2000 {
		t.Error("TotalInstructions wrong")
	}
}

func TestSimZeroCycles(t *testing.T) {
	s := NewSim()
	if s.IPC() != 0 || s.InstrTransFraction() != 0 {
		t.Error("zero-cycle Sim should report zeros")
	}
}

func TestAvgWalkLatency(t *testing.T) {
	s := NewSim()
	s.PageWalks[arch.InstrClass] = 2
	s.WalkLatSum[arch.InstrClass] = 300
	if got := s.AvgWalkLatency(arch.InstrClass); got != 150 {
		t.Errorf("AvgWalkLatency = %v", got)
	}
	if s.AvgWalkLatency(arch.DataClass) != 0 {
		t.Error("no-walk class should report 0")
	}
}

func TestSimLevelsNamed(t *testing.T) {
	s := NewSim()
	want := []string{"ITLB", "DTLB", "STLB", "L1I", "L1D", "L2C", "LLC"}
	levels := s.Levels()
	if len(levels) != len(want) {
		t.Fatalf("Levels() returned %d entries", len(levels))
	}
	for i, l := range levels {
		if l.Name != want[i] {
			t.Errorf("level %d named %q, want %q", i, l.Name, want[i])
		}
	}
}

func TestSimString(t *testing.T) {
	s := NewSim()
	s.Cycles = 10
	s.Instructions[0] = 20
	out := s.String()
	for _, frag := range []string{"ipc=2.0000", "STLB", "L2C", "dram-accesses"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Geomean([1,4]) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) should be 0")
	}
	if Geomean([]float64{1, 0}) != 0 {
		t.Error("Geomean with non-positive value should be 0")
	}
}

// Property: geomean lies between min and max for positive inputs.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1 // strictly positive
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := Percentiles(xs, 0, 0.5, 1)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("percentile %d = %v, want %v", i, got[i], want[i])
		}
	}
	if out := Percentiles(nil, 0.5); len(out) != 1 || out[0] != 0 {
		t.Error("empty input percentile should be 0")
	}
}
