package stats

import (
	"reflect"
	"testing"
)

// checkScaled walks v like checkZero and reports every numeric field
// that does not hold want — AddScaled must have multiplied it.
func checkScaled(t *testing.T, v reflect.Value, path string, want uint64) {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if v.Uint() != want {
			t.Errorf("%s = %d after AddScaled, want %d (field missing from AddScaled?)", path, v.Uint(), want)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Int() != int64(want) {
			t.Errorf("%s = %d after AddScaled, want %d (field missing from AddScaled?)", path, v.Int(), want)
		}
	case reflect.Float32, reflect.Float64:
		if v.Float() != float64(want) {
			t.Errorf("%s = %g after AddScaled, want %d (field missing from AddScaled?)", path, v.Float(), want)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			checkScaled(t, v.Field(i), path+"."+v.Type().Field(i).Name, want)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			checkScaled(t, v.Index(i), path+"[]", want)
		}
	}
}

// TestAddScaledCoversEveryField is the weighted twin of
// TestResetMeasuredCoversEveryField: filling every numeric field of the
// source by reflection and asserting the destination holds exactly k
// times each value makes it impossible for a newly added counter to be
// silently dropped from stitched (k=1) or sampled (k=weight) results.
func TestAddScaledCoversEveryField(t *testing.T) {
	src := NewSim()
	src.EnsureTenants(4)
	n := fillNonZero(reflect.ValueOf(src).Elem())
	if n == 0 {
		t.Fatal("fillNonZero set nothing; the walker is broken")
	}
	t.Logf("filled %d numeric fields", n)
	dst := NewSim()
	dst.AddScaled(src, 3)
	checkScaled(t, reflect.ValueOf(dst).Elem(), "Sim", 3*7)
}

// TestAddScaledMatchesRepeatedAdd: the weighted sum must equal the same
// source accumulated k times — the identity the occupancy-weighted
// reconstruction relies on.
func TestAddScaledMatchesRepeatedAdd(t *testing.T) {
	src := NewSim()
	src.EnsureTenants(3)
	fillNonZero(reflect.ValueOf(src).Elem())

	scaled := NewSim()
	scaled.AddScaled(src, 5)

	repeated := NewSim()
	for i := 0; i < 5; i++ {
		repeated.AddScaled(src, 1)
	}
	if !reflect.DeepEqual(scaled, repeated) {
		t.Errorf("AddScaled(src, 5) != 5×AddScaled(src, 1):\n%+v\nvs\n%+v", scaled, repeated)
	}
}

// TestAddScaledGrowsTenants: accumulating a wider Sim grows the
// destination's per-tenant views instead of dropping the extra tenants.
func TestAddScaledGrowsTenants(t *testing.T) {
	src := NewSim()
	src.EnsureTenants(6)
	src.Instructions[5] = 11
	src.Cores[5].Instructions = 11

	dst := NewSim()
	dst.AddScaled(src, 2)
	if len(dst.Cores) != 6 || len(dst.Instructions) != 6 {
		t.Fatalf("destination not grown: %d cores, %d instruction slots", len(dst.Cores), len(dst.Instructions))
	}
	if dst.Instructions[5] != 22 || dst.Cores[5].Instructions != 22 {
		t.Errorf("tenant 5 not accumulated: %d / %d, want 22", dst.Instructions[5], dst.Cores[5].Instructions)
	}
}
