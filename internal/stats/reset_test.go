package stats

import (
	"fmt"
	"reflect"
	"testing"
)

// resetAllowlist names the field paths (relative to Sim, slice indices
// elided) that ResetMeasured may legitimately leave non-zero. Every
// other numeric field must be zeroed — a counter that survives the
// warmup→measure boundary leaks warmup events into the measured phase.
// Nothing is currently exempt; a future config-like field must be
// listed here explicitly, with a comment saying why it survives.
var resetAllowlist = map[string]bool{}

// fillNonZero sets every numeric field reachable from v to a non-zero
// value and returns how many it set. Strings (level names) are left
// alone: they are identity, not measurement.
func fillNonZero(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
		return 1
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
		return 1
	case reflect.Float32, reflect.Float64:
		v.SetFloat(7)
		return 1
	case reflect.Struct:
		n := 0
		for i := 0; i < v.NumField(); i++ {
			n += fillNonZero(v.Field(i))
		}
		return n
	case reflect.Slice, reflect.Array:
		n := 0
		for i := 0; i < v.Len(); i++ {
			n += fillNonZero(v.Index(i))
		}
		return n
	default:
		return 0
	}
}

// checkZero walks v like fillNonZero and reports every non-zero numeric
// field not covered by the allowlist.
func checkZero(t *testing.T, v reflect.Value, path string) {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if v.Uint() != 0 && !resetAllowlist[path] {
			t.Errorf("%s = %d survived ResetMeasured (zero it there, or allowlist it with a reason)", path, v.Uint())
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Int() != 0 && !resetAllowlist[path] {
			t.Errorf("%s = %d survived ResetMeasured (zero it there, or allowlist it with a reason)", path, v.Int())
		}
	case reflect.Float32, reflect.Float64:
		if v.Float() != 0 && !resetAllowlist[path] {
			t.Errorf("%s = %g survived ResetMeasured (zero it there, or allowlist it with a reason)", path, v.Float())
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			checkZero(t, v.Field(i), path+"."+v.Type().Field(i).Name)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			checkZero(t, v.Index(i), path+"[]")
		}
	}
}

// TestResetMeasuredCoversEveryField is the regression test for the
// hand-enumerated reset bug: ResetMeasured used to list fields one by
// one, so newly added counters (STLBPrefetches was the last victim)
// silently survived the warmup→measure boundary. Filling every numeric
// field by reflection and asserting all of them return to zero makes
// forgetting a field impossible.
func TestResetMeasuredCoversEveryField(t *testing.T) {
	s := NewSim()
	s.EnsureTenants(4) // cover the per-tenant views beyond the SMT pair
	n := fillNonZero(reflect.ValueOf(s).Elem())
	if n == 0 {
		t.Fatal("fillNonZero set nothing; the walker is broken")
	}
	t.Logf("filled %d numeric fields", n)
	s.ResetMeasured()
	checkZero(t, reflect.ValueOf(s).Elem(), "Sim")
}

// TestResetMeasuredKeepsIdentity: the reset must preserve structure —
// level names and tenant capacity — because the simulator holds
// pointers into the Cores slice and reports by level name.
func TestResetMeasuredKeepsIdentity(t *testing.T) {
	s := NewSim()
	s.EnsureTenants(4)
	s.ResetMeasured()
	if len(s.Cores) != 4 || len(s.Instructions) != 4 {
		t.Fatalf("reset changed tenant capacity: %d cores, %d instruction slots", len(s.Cores), len(s.Instructions))
	}
	for i, want := range []string{"ITLB", "DTLB", "STLB", "L1I", "L1D", "L2C", "LLC"} {
		if got := s.Levels()[i].Name; got != want {
			t.Errorf("aggregate level %d name %q, want %q", i, got, want)
		}
	}
	for i := range s.Cores {
		for j, want := range []string{"ITLB", "DTLB", "STLB", "L1I", "L1D"} {
			if got := s.Cores[i].Levels()[j].Name; got != want {
				t.Errorf("tenant %d level %d name %q, want %q", i, j, got, want)
			}
		}
	}
}

// TestAggregateTenantsIdempotent: aggregates rebuild exactly from the
// per-tenant views, however many times they are recomputed.
func TestAggregateTenantsIdempotent(t *testing.T) {
	s := NewSim()
	s.EnsureTenants(3)
	for i := range s.Cores {
		c := &s.Cores[i]
		c.ITLB.Record(BInstr, false)
		c.DTLB.Record(BData, true)
		c.STLB.RecordMissLatency(uint64(10 * (i + 1)))
		c.InstrTransCycles = 5
	}
	s.AggregateTenants()
	first := fmt.Sprintf("%+v", s)
	s.AggregateTenants()
	if second := fmt.Sprintf("%+v", s); first != second {
		t.Errorf("AggregateTenants not idempotent:\n%s\nvs\n%s", first, second)
	}
	if s.ITLB.Misses[BInstr] != 3 || s.DTLB.Hits[BData] != 3 {
		t.Errorf("aggregate sums wrong: ITLB misses %d, DTLB hits %d", s.ITLB.Misses[BInstr], s.DTLB.Hits[BData])
	}
	if s.InstrTransCycles != 15 {
		t.Errorf("InstrTransCycles = %d, want 15", s.InstrTransCycles)
	}
}
