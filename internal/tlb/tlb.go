// Package tlb implements the TLB hierarchy structures: set-associative
// TLBs with exact recency stacks (the substrate iTP's insertion and
// promotion rules are defined on), multi-page-size lookup, the unified
// and split STLB organisations of Section 6.6, and the TLB-side baseline
// policies LRU and CHiRP.
package tlb

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/metrics"
)

// Entry is one TLB entry plus the metadata iTP adds: the Type bit
// (Class) and the saturating Freq counter (Section 4.1.3's 4 extra bits).
type Entry struct {
	Valid    bool
	VPN      uint64 // virtual page number (in units of its own page size)
	PPN      uint64 // physical page number
	PageBits uint8  // arch.PageBits4K or arch.PageBits2M
	Class    arch.Class
	Thread   uint8

	// Policy state.
	Stack  uint8 // recency-stack position, 0 = MRU
	Freq   uint8 // iTP frequency counter
	Sig    uint16
	Reused bool
}

// Request carries the context a policy sees on insertion/promotion.
type Request struct {
	VPN      uint64
	PC       uint64
	Class    arch.Class
	Thread   uint8
	PageBits uint8
}

// Policy decides TLB victims and stack movement, mirroring the cache-side
// replacement.Policy shape.
type Policy interface {
	Name() string
	//itp:hotpath
	Victim(setIdx int, set []Entry, req *Request) int
	//itp:hotpath
	OnFill(setIdx int, set []Entry, way int, req *Request)
	//itp:hotpath
	OnHit(setIdx int, set []Entry, way int, req *Request)
	//itp:hotpath
	OnEvict(setIdx int, set []Entry, way int)
}

// InitSet establishes the stack-position permutation for a fresh set.
//
//itp:hotpath
func InitSet(set []Entry) {
	for i := range set {
		set[i].Stack = uint8(i)
	}
}

// InvalidWay returns an invalid way with the deepest stack position, or -1.
//
//itp:hotpath
func InvalidWay(set []Entry) int {
	best, bestStack := -1, -1
	for i := range set {
		if !set[i].Valid && int(set[i].Stack) > bestStack {
			best, bestStack = i, int(set[i].Stack)
		}
	}
	return best
}

// StackLRUVictim returns the way at the stack bottom, invalid ways first.
//
//itp:hotpath
func StackLRUVictim(set []Entry) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	victim, deepest := 0, -1
	for i := range set {
		if int(set[i].Stack) > deepest {
			victim, deepest = i, int(set[i].Stack)
		}
	}
	return victim
}

// MoveToStackPos repositions way to stack position pos, preserving the
// permutation invariant.
//
//itp:hotpath
func MoveToStackPos(set []Entry, way, pos int) {
	old := int(set[way].Stack)
	switch {
	case pos < old:
		for i := range set {
			if p := int(set[i].Stack); p >= pos && p < old {
				set[i].Stack++
			}
		}
	case pos > old:
		for i := range set {
			if p := int(set[i].Stack); p > old && p <= pos {
				set[i].Stack--
			}
		}
	default:
		return
	}
	set[way].Stack = uint8(pos)
}

// CheckStackInvariant reports whether stack positions form a permutation
// (test helper).
func CheckStackInvariant(set []Entry) bool {
	seen := make([]bool, len(set))
	for i := range set {
		p := int(set[i].Stack)
		if p < 0 || p >= len(set) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Store is the lookup/insert interface shared by unified and split STLBs
// (and the first-level TLBs).
type Store interface {
	// Lookup searches for the translation of vaddr. On a hit it returns
	// the physical page number and the entry's page size.
	//itp:hotpath
	Lookup(vaddr arch.Addr, pc uint64, class arch.Class, thread uint8) (ppn uint64, pageBits uint8, hit bool)
	// Insert installs a translation after a fill.
	//itp:hotpath
	Insert(vaddr arch.Addr, ppn uint64, pageBits uint8, class arch.Class, pc uint64, thread uint8)
	// Entries returns total capacity.
	Entries() int
}

// TLB is a set-associative translation lookaside buffer supporting mixed
// 4KB and 2MB entries (both sizes index with their own VPN bits).
type TLB struct {
	name    string
	sets    [][]Entry
	setMask uint64
	policy  Policy

	// Observability counters (nil — and therefore free — until
	// Instrument attaches a registry).
	hitInstr, hitData   *metrics.Counter
	missInstr, missData *metrics.Counter
	evictInstr          *metrics.Counter
	evictData           *metrics.Counter

	// req is the scratch request record Lookup/Insert hand to the policy.
	// Policies receive it by pointer through the Policy interface — which
	// would heap-allocate a stack local on every access — and never retain
	// it past the call, so one per-TLB scratch makes the hot path
	// allocation-free.
	req Request
}

// New creates a TLB with the given geometry and replacement policy.
func New(name string, nsets, ways int, policy Policy) *TLB {
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("tlb %s: sets must be a positive power of two, got %d", name, nsets))
	}
	t := &TLB{
		name:    name,
		sets:    make([][]Entry, nsets),
		setMask: uint64(nsets - 1),
		policy:  policy,
	}
	for i := range t.sets {
		t.sets[i] = make([]Entry, ways)
		InitSet(t.sets[i])
	}
	return t
}

// Name returns the TLB's name.
func (t *TLB) Name() string { return t.name }

// Entries implements Store.
func (t *TLB) Entries() int { return len(t.sets) * len(t.sets[0]) }

// Policy returns the replacement policy in use.
func (t *TLB) Policy() Policy { return t.policy }

// setFor returns the set index for a VPN.
//
//itp:hotpath
func (t *TLB) setFor(vpn uint64) int { return int(vpn & t.setMask) }

// lookupSize probes one page size. Returns (way, setIdx, found).
//
//itp:hotpath
func (t *TLB) lookupSize(vaddr arch.Addr, pageBits uint8, thread uint8) (int, int) {
	vpn := vaddr >> pageBits
	si := t.setFor(vpn)
	set := t.sets[si]
	for w := range set {
		// VPN first: it is the most discriminating field, so the common
		// non-matching way falls out after one compare.
		if set[w].VPN == vpn && set[w].Valid && set[w].PageBits == pageBits && set[w].Thread == thread {
			return si, w
		}
	}
	return si, -1
}

// Instrument attaches structure-level observability counters from the
// registry under the given prefix (e.g. "stlb"): hits, misses, and
// evictions split by translation class. A nil registry detaches nothing
// and costs nothing — the counters stay nil and every update is a no-op.
func (t *TLB) Instrument(reg *metrics.Registry, prefix string) {
	t.hitInstr = reg.Counter(prefix + ".hit.instr")
	t.hitData = reg.Counter(prefix + ".hit.data")
	t.missInstr = reg.Counter(prefix + ".miss.instr")
	t.missData = reg.Counter(prefix + ".miss.data")
	t.evictInstr = reg.Counter(prefix + ".evict.instr")
	t.evictData = reg.Counter(prefix + ".evict.data")
}

// Lookup implements Store. A hit triggers the policy's promotion rule.
//
//itp:hotpath
func (t *TLB) Lookup(vaddr arch.Addr, pc uint64, class arch.Class, thread uint8) (uint64, uint8, bool) {
	for _, pageBits := range [2]uint8{arch.PageBits4K, arch.PageBits2M} {
		si, w := t.lookupSize(vaddr, pageBits, thread)
		if w < 0 {
			continue
		}
		set := t.sets[si]
		req := &t.req
		*req = Request{VPN: set[w].VPN, PC: pc, Class: class, Thread: thread, PageBits: pageBits}
		t.policy.OnHit(si, set, w, req)
		if class == arch.InstrClass {
			t.hitInstr.Inc()
		} else {
			t.hitData.Inc()
		}
		return set[w].PPN, pageBits, true
	}
	if class == arch.InstrClass {
		t.missInstr.Inc()
	} else {
		t.missData.Inc()
	}
	return 0, 0, false
}

// Contains reports whether the translation is present without touching
// replacement state (used by tests and the FDIP probe path).
//
//itp:hotpath
func (t *TLB) Contains(vaddr arch.Addr, thread uint8) bool {
	_, _, _, ok := t.Peek(vaddr, thread)
	return ok
}

// Peek returns the translation without updating replacement state.
//
//itp:hotpath
func (t *TLB) Peek(vaddr arch.Addr, thread uint8) (ppn uint64, pageBits uint8, class arch.Class, ok bool) {
	for _, bits := range [2]uint8{arch.PageBits4K, arch.PageBits2M} {
		if si, w := t.lookupSize(vaddr, bits, thread); w >= 0 {
			e := &t.sets[si][w]
			return e.PPN, e.PageBits, e.Class, true
		}
	}
	return 0, 0, 0, false
}

// Insert implements Store: victimise per policy, write the entry, then
// apply the policy's insertion rule.
//
//itp:hotpath
func (t *TLB) Insert(vaddr arch.Addr, ppn uint64, pageBits uint8, class arch.Class, pc uint64, thread uint8) {
	vpn := vaddr >> pageBits
	si := t.setFor(vpn)
	set := t.sets[si]
	req := &t.req
	*req = Request{VPN: vpn, PC: pc, Class: class, Thread: thread, PageBits: pageBits}
	// Refuse duplicate inserts (a second walk for the same page may have
	// completed first); treat as a touch instead.
	if _, w := t.lookupSize(vaddr, pageBits, thread); w >= 0 {
		t.policy.OnHit(si, set, w, req)
		return
	}
	w := t.policy.Victim(si, set, req)
	if set[w].Valid {
		t.policy.OnEvict(si, set, w)
		if set[w].Class == arch.InstrClass {
			t.evictInstr.Inc()
		} else {
			t.evictData.Inc()
		}
	}
	set[w] = Entry{
		Valid:    true,
		VPN:      vpn,
		PPN:      ppn,
		PageBits: pageBits,
		Class:    class,
		Thread:   thread,
		Stack:    set[w].Stack, // preserve the permutation invariant
	}
	t.policy.OnFill(si, set, w, req)
}

// Flush invalidates all entries (keeps stack permutation).
func (t *TLB) Flush() {
	for si := range t.sets {
		for w := range t.sets[si] {
			t.sets[si][w].Valid = false
		}
	}
}

// Occupancy returns how many valid entries hold each class (test/debug aid).
func (t *TLB) Occupancy() (instr, data int) {
	for si := range t.sets {
		for w := range t.sets[si] {
			if !t.sets[si][w].Valid {
				continue
			}
			if t.sets[si][w].Class == arch.InstrClass {
				instr++
			} else {
				data++
			}
		}
	}
	return
}

// Split is the split-STLB organisation of Section 6.6: separate
// structures for instruction and data translations, each half-sized.
type Split struct {
	instr *TLB
	data  *TLB
}

// NewSplit builds a split STLB; each side gets nsets sets of the given
// associativity.
func NewSplit(nsets, ways int, instrPolicy, dataPolicy Policy) *Split {
	return &Split{
		instr: New("STLB-I", nsets, ways, instrPolicy),
		data:  New("STLB-D", nsets, ways, dataPolicy),
	}
}

// Instrument attaches observability counters to both halves, suffixed
// ".i" and ".d".
func (s *Split) Instrument(reg *metrics.Registry, prefix string) {
	s.instr.Instrument(reg, prefix+".i")
	s.data.Instrument(reg, prefix+".d")
}

// Lookup implements Store, routing by class.
//
//itp:hotpath
func (s *Split) Lookup(vaddr arch.Addr, pc uint64, class arch.Class, thread uint8) (uint64, uint8, bool) {
	return s.side(class).Lookup(vaddr, pc, class, thread)
}

// Insert implements Store.
//
//itp:hotpath
func (s *Split) Insert(vaddr arch.Addr, ppn uint64, pageBits uint8, class arch.Class, pc uint64, thread uint8) {
	s.side(class).Insert(vaddr, ppn, pageBits, class, pc, thread)
}

// Entries implements Store.
func (s *Split) Entries() int { return s.instr.Entries() + s.data.Entries() }

//itp:hotpath
func (s *Split) side(class arch.Class) *TLB {
	if class == arch.InstrClass {
		return s.instr
	}
	return s.data
}
