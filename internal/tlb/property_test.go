package tlb

import (
	"math/rand"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/metrics"
)

// touch performs the simulator's lookup-then-insert-on-miss protocol for
// one 4KB page.
func touch(t *TLB, vpn uint64, class arch.Class) {
	va := arch.Addr(vpn << arch.PageBits4K)
	if _, _, hit := t.Lookup(va, 0, class, 0); !hit {
		t.Insert(va, vpn, arch.PageBits4K, class, 0, 0)
	}
}

// TestTLBLRUInclusion checks the stack-inclusion property end to end
// through the TLB structure (not just the bare policy): under identical
// reference streams a 4-way single-set LRU TLB holds a subset of an
// 8-way one.
func TestTLBLRUInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		small := New("small", 1, 4, NewLRU())
		large := New("large", 1, 8, NewLRU())
		for step := 0; step < 3000; step++ {
			vpn := uint64(rng.Intn(24) + 1)
			class := arch.DataClass
			if rng.Intn(3) == 0 {
				class = arch.InstrClass
			}
			touch(small, vpn, class)
			touch(large, vpn, class)
			for _, e := range small.sets[0] {
				if !e.Valid {
					continue
				}
				va := arch.Addr(e.VPN << arch.PageBits4K)
				if _, _, _, ok := large.Peek(va, 0); !ok {
					t.Fatalf("trial %d step %d: VPN %d in 4-way but not 8-way TLB (inclusion violated)",
						trial, step, e.VPN)
				}
			}
		}
	}
}

// TestTLBStackInvariantUnderRandomOps fuzzes a multi-set TLB with mixed
// page sizes, classes, and threads, checking every set keeps its stack
// permutation and the occupancy accounting matches the entries.
func TestTLBStackInvariantUnderRandomOps(t *testing.T) {
	tl := New("fuzz", 4, 8, NewLRU())
	rng := rand.New(rand.NewSource(23))
	for step := 0; step < 10000; step++ {
		vpn := uint64(rng.Intn(200))
		class := arch.Class(rng.Intn(2))
		thread := uint8(rng.Intn(2))
		bits := uint8(arch.PageBits4K)
		if rng.Intn(10) == 0 {
			bits = arch.PageBits2M
		}
		va := arch.Addr(vpn) << bits
		if _, _, hit := tl.Lookup(va, 0, class, thread); !hit {
			tl.Insert(va, vpn, bits, class, 0, thread)
		}
		for si, set := range tl.sets {
			if !CheckStackInvariant(set) {
				t.Fatalf("step %d: set %d stack invariant broken", step, si)
			}
		}
	}
	instr, data := tl.Occupancy()
	var wantI, wantD int
	for _, set := range tl.sets {
		for _, e := range set {
			if !e.Valid {
				continue
			}
			if e.Class == arch.InstrClass {
				wantI++
			} else {
				wantD++
			}
		}
	}
	if instr != wantI || data != wantD {
		t.Fatalf("Occupancy = (%d,%d), entries say (%d,%d)", instr, data, wantI, wantD)
	}
}

// TestTLBInstrumentCountsDemandTraffic checks the structure-level metrics
// counters agree with a hand-tracked reference under a random stream.
func TestTLBInstrumentCountsDemandTraffic(t *testing.T) {
	tl := New("counted", 2, 4, NewLRU())
	reg := metrics.NewRegistry()
	tl.Instrument(reg, "tlb")
	rng := rand.New(rand.NewSource(5))
	var hits, misses uint64
	for step := 0; step < 5000; step++ {
		vpn := uint64(rng.Intn(40))
		class := arch.Class(rng.Intn(2))
		va := arch.Addr(vpn << arch.PageBits4K)
		if _, _, hit := tl.Lookup(va, 0, class, 0); hit {
			hits++
		} else {
			misses++
			tl.Insert(va, vpn, arch.PageBits4K, class, 0, 0)
		}
	}
	gotHits := reg.Counter("tlb.hit.instr").Value() + reg.Counter("tlb.hit.data").Value()
	gotMisses := reg.Counter("tlb.miss.instr").Value() + reg.Counter("tlb.miss.data").Value()
	if gotHits != hits || gotMisses != misses {
		t.Fatalf("counters say %d hits/%d misses, reference %d/%d", gotHits, gotMisses, hits, misses)
	}
}
