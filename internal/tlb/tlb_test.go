package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"itpsim/internal/arch"
)

func TestNewPanicsOnBadSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two sets")
		}
	}()
	New("bad", 3, 4, NewLRU())
}

func TestLookupMissThenHit(t *testing.T) {
	tl := New("dtlb", 16, 4, NewLRU())
	va := arch.Addr(0x12345678)
	if _, _, hit := tl.Lookup(va, 0, arch.DataClass, 0); hit {
		t.Fatal("empty TLB should miss")
	}
	tl.Insert(va, 0x999, arch.PageBits4K, arch.DataClass, 0, 0)
	ppn, bits, hit := tl.Lookup(va, 0, arch.DataClass, 0)
	if !hit || ppn != 0x999 || bits != arch.PageBits4K {
		t.Fatalf("lookup = (%#x,%d,%v)", ppn, bits, hit)
	}
	// Same page, different offset: still hits.
	if _, _, hit := tl.Lookup(va+100, 0, arch.DataClass, 0); !hit {
		t.Error("same-page lookup should hit")
	}
	// Different page: misses.
	if _, _, hit := tl.Lookup(va+arch.PageSize4K, 0, arch.DataClass, 0); hit {
		t.Error("next-page lookup should miss")
	}
}

func TestHugePageEntries(t *testing.T) {
	tl := New("stlb", 16, 4, NewLRU())
	va := arch.Addr(0x40000000)
	tl.Insert(va, 0x77, arch.PageBits2M, arch.DataClass, 0, 0)
	// Anywhere within the 2MB page hits.
	ppn, bits, hit := tl.Lookup(va+1<<20, 0, arch.DataClass, 0)
	if !hit || ppn != 0x77 || bits != arch.PageBits2M {
		t.Fatalf("2MB lookup = (%#x,%d,%v)", ppn, bits, hit)
	}
	if _, _, hit := tl.Lookup(va+arch.PageSize2M, 0, arch.DataClass, 0); hit {
		t.Error("next 2MB page should miss")
	}
}

func TestThreadIsolation(t *testing.T) {
	tl := New("stlb", 16, 4, NewLRU())
	va := arch.Addr(0x1000)
	tl.Insert(va, 0x1, arch.PageBits4K, arch.DataClass, 0, 0)
	if _, _, hit := tl.Lookup(va, 0, arch.DataClass, 1); hit {
		t.Error("thread 1 should not hit thread 0's entry")
	}
	if _, _, hit := tl.Lookup(va, 0, arch.DataClass, 0); !hit {
		t.Error("thread 0 should hit")
	}
}

func TestDuplicateInsertIsTouch(t *testing.T) {
	tl := New("stlb", 2, 4, NewLRU())
	va := arch.Addr(0x1000)
	tl.Insert(va, 0x1, arch.PageBits4K, arch.DataClass, 0, 0)
	tl.Insert(va, 0x1, arch.PageBits4K, arch.DataClass, 0, 0)
	instr, data := tl.Occupancy()
	if instr+data != 1 {
		t.Errorf("duplicate insert created %d entries", instr+data)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	tl := New("t", 1, 4, NewLRU()) // one set, 4 ways
	// Insert 4 pages mapping to the same set.
	for i := 0; i < 4; i++ {
		tl.Insert(arch.Addr(i)<<arch.PageBits4K, uint64(i), arch.PageBits4K, arch.DataClass, 0, 0)
	}
	// Touch page 0 so page 1 is LRU.
	tl.Lookup(0, 0, arch.DataClass, 0)
	// Next insert evicts page 1.
	tl.Insert(arch.Addr(4)<<arch.PageBits4K, 4, arch.PageBits4K, arch.DataClass, 0, 0)
	if _, _, hit := tl.Lookup(arch.Addr(1)<<arch.PageBits4K, 0, arch.DataClass, 0); hit {
		t.Error("page 1 should have been evicted")
	}
	if _, _, hit := tl.Lookup(0, 0, arch.DataClass, 0); !hit {
		t.Error("page 0 should survive")
	}
}

func TestContainsDoesNotPromote(t *testing.T) {
	tl := New("t", 1, 2, NewLRU())
	tl.Insert(0, 0, arch.PageBits4K, arch.DataClass, 0, 0)
	tl.Insert(1<<arch.PageBits4K, 1, arch.PageBits4K, arch.DataClass, 0, 0)
	// Page 0 is LRU; Contains must not promote it.
	if !tl.Contains(0, 0) {
		t.Fatal("Contains should find page 0")
	}
	tl.Insert(2<<arch.PageBits4K, 2, arch.PageBits4K, arch.DataClass, 0, 0)
	if tl.Contains(0, 0) {
		t.Error("page 0 should have been evicted despite Contains probe")
	}
}

func TestFlush(t *testing.T) {
	tl := New("t", 4, 4, NewLRU())
	tl.Insert(0x1000, 1, arch.PageBits4K, arch.DataClass, 0, 0)
	tl.Flush()
	if tl.Contains(0x1000, 0) {
		t.Error("flush should invalidate entries")
	}
	i, d := tl.Occupancy()
	if i+d != 0 {
		t.Error("occupancy nonzero after flush")
	}
}

func TestOccupancyByClass(t *testing.T) {
	tl := New("t", 16, 4, NewLRU())
	tl.Insert(0x1000, 1, arch.PageBits4K, arch.InstrClass, 0, 0)
	tl.Insert(0x2000, 2, arch.PageBits4K, arch.DataClass, 0, 0)
	tl.Insert(0x3000, 3, arch.PageBits4K, arch.DataClass, 0, 0)
	i, d := tl.Occupancy()
	if i != 1 || d != 2 {
		t.Errorf("occupancy = (%d,%d), want (1,2)", i, d)
	}
}

func TestEntriesCount(t *testing.T) {
	tl := New("t", 128, 12, NewLRU())
	if tl.Entries() != 1536 {
		t.Errorf("Entries = %d, want 1536", tl.Entries())
	}
}

func TestSplitRouting(t *testing.T) {
	s := NewSplit(8, 4, NewLRU(), NewLRU())
	va := arch.Addr(0x5000)
	s.Insert(va, 0xA, arch.PageBits4K, arch.InstrClass, 0, 0)
	if _, _, hit := s.Lookup(va, 0, arch.DataClass, 0); hit {
		t.Error("data lookup should not see instruction-side entry")
	}
	if _, _, hit := s.Lookup(va, 0, arch.InstrClass, 0); !hit {
		t.Error("instruction lookup should hit")
	}
	if s.Entries() != 64 {
		t.Errorf("split entries = %d, want 64", s.Entries())
	}
}

func TestStackHelpersProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		set := make([]Entry, 12)
		InitSet(set)
		for _, op := range ops {
			way := int(op) % 12
			pos := int(op>>8) % 12
			MoveToStackPos(set, way, pos)
			if !CheckStackInvariant(set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: under random insert/lookup traffic the TLB never stores two
// entries for the same (vpn,size,thread) and stacks stay permutations.
func TestTLBConsistencyUnderTraffic(t *testing.T) {
	tl := New("t", 8, 4, NewLRU())
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 20000; op++ {
		page := uint64(rng.Intn(64))
		va := arch.Addr(page) << arch.PageBits4K
		thread := uint8(rng.Intn(2))
		if rng.Intn(2) == 0 {
			tl.Insert(va, page, arch.PageBits4K, arch.Class(rng.Intn(2)), 0, thread)
		} else {
			tl.Lookup(va, 0, arch.DataClass, thread)
		}
	}
	type key struct {
		vpn    uint64
		bits   uint8
		thread uint8
	}
	seen := map[key]bool{}
	for si := range tl.sets {
		if !CheckStackInvariant(tl.sets[si]) {
			t.Fatalf("set %d stack invariant broken", si)
		}
		for _, e := range tl.sets[si] {
			if !e.Valid {
				continue
			}
			k := key{e.VPN, e.PageBits, e.Thread}
			if seen[k] {
				t.Fatalf("duplicate entry for %+v", k)
			}
			seen[k] = true
		}
	}
}

func TestCHiRPInsertionDependsOnConfidence(t *testing.T) {
	c := NewCHiRP(8)
	set := make([]Entry, 8)
	InitSet(set)
	for i := range set {
		set[i].Valid = true
	}
	req := &Request{VPN: 42, Thread: 0}
	sig := c.signature(0, 42)

	c.table[sig] = chirpThreshold // confident
	c.OnFill(0, set, 3, req)
	if set[3].Stack != 0 {
		t.Errorf("confident fill at stack %d, want 0", set[3].Stack)
	}

	c.table[sig] = 0 // dead signature
	c.OnFill(0, set, 5, req)
	if int(set[5].Stack) != c.lowInsertPos {
		t.Errorf("dead fill at stack %d, want %d", set[5].Stack, c.lowInsertPos)
	}
}

func TestCHiRPTraining(t *testing.T) {
	c := NewCHiRP(8)
	set := make([]Entry, 8)
	InitSet(set)
	for i := range set {
		set[i].Valid = true
	}
	req := &Request{VPN: 7}
	c.OnFill(0, set, 0, req)
	sig := set[0].Sig
	before := c.table[sig]
	c.OnHit(0, set, 0, req)
	if c.table[sig] != before+1 {
		t.Error("hit should raise confidence")
	}
	c.OnHit(0, set, 0, req)
	if c.table[sig] != before+1 {
		t.Error("second hit on same residency should not retrain")
	}
	// Fill-then-evict with no reuse lowers confidence.
	c.OnFill(0, set, 1, req)
	sig1 := set[1].Sig
	mid := c.table[sig1]
	c.OnEvict(0, set, 1)
	if c.table[sig1] != mid-1 {
		t.Error("dead eviction should lower confidence")
	}
}

func TestCHiRPHistoryChangesSignature(t *testing.T) {
	c := NewCHiRP(8)
	s1 := c.signature(0, 42)
	c.Observe(0, 0x400000)
	c.Observe(0, 0x400100)
	s2 := c.signature(0, 42)
	if s1 == s2 {
		t.Error("history should alter the signature (hash collision unlikely)")
	}
}

func TestCHiRPCounterSaturation(t *testing.T) {
	c := NewCHiRP(8)
	set := make([]Entry, 8)
	InitSet(set)
	set[0].Valid = true
	req := &Request{VPN: 9}
	for i := 0; i < 20; i++ {
		c.OnFill(0, set, 0, req)
		c.OnHit(0, set, 0, req)
	}
	if c.table[set[0].Sig] > chirpCtrMax {
		t.Error("counter exceeded max")
	}
	for i := 0; i < 20; i++ {
		c.OnFill(0, set, 0, req)
		c.OnEvict(0, set, 0)
	}
	if c.table[set[0].Sig] != 0 {
		t.Errorf("counter should saturate at 0, got %d", c.table[set[0].Sig])
	}
}

func TestSplitWithDistinctPolicies(t *testing.T) {
	// The split STLB can run different policies per side; verify the
	// instruction side's policy sees only instruction traffic.
	type countingPolicy struct {
		LRU
		fills int
	}
	pi := &countingPolicy{}
	pd := &countingPolicy{}
	// Wrap OnFill via embedding is not possible with value methods;
	// count through occupancy instead.
	s := NewSplit(4, 4, &pi.LRU, &pd.LRU)
	for i := 0; i < 8; i++ {
		s.Insert(arch.Addr(i)<<arch.PageBits4K, uint64(i), arch.PageBits4K, arch.InstrClass, 0, 0)
	}
	ii, id := s.side(arch.InstrClass).Occupancy()
	di, dd := s.side(arch.DataClass).Occupancy()
	if ii+id != 8 || di+dd != 0 {
		t.Errorf("instruction inserts leaked: instr side %d/%d, data side %d/%d", ii, id, di, dd)
	}
}
