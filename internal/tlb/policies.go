package tlb

// TLB-side baseline replacement policies: LRU (the vendor default the
// paper's baseline uses) and CHiRP (Mirbagher-Ajorpaz et al., MICRO'20),
// the state-of-the-art STLB policy iTP is compared against.

// LRU is exact least-recently-used over the per-set recency stack.
type LRU struct{}

// NewLRU returns the LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// Victim implements Policy.
//
//itp:hotpath
func (*LRU) Victim(_ int, set []Entry, _ *Request) int { return StackLRUVictim(set) }

// OnFill implements Policy.
//
//itp:hotpath
func (*LRU) OnFill(_ int, set []Entry, way int, _ *Request) { MoveToStackPos(set, way, 0) }

// OnHit implements Policy.
//
//itp:hotpath
func (*LRU) OnHit(_ int, set []Entry, way int, _ *Request) { MoveToStackPos(set, way, 0) }

// OnEvict implements Policy.
//
//itp:hotpath
func (*LRU) OnEvict(int, []Entry, int) {}

// CHiRP is Control-flow History Reuse Prediction: on every STLB fill a
// signature derived from recent control-flow history indexes a table of
// saturating confidence counters. Translations predicted to be reused
// soon are inserted at the top of the recency stack; translations from
// low-confidence signatures are inserted near the bottom. Hits train the
// signature up; evictions of never-reused entries train it down. CHiRP
// deliberately does not distinguish instruction from data PTEs — the
// limitation Section 2.3 highlights.
type CHiRP struct {
	table     []uint8 // confidence counters
	tableMask uint64
	history   [64]uint64 // per-thread control-flow history hash (CMP-wide)
	threshold uint8
	ctrMax    uint8
	// lowInsertPos is where low-confidence entries land (near LRU).
	lowInsertPos int
}

const (
	chirpTableSize = 4096
	chirpCtrMax    = 7
	chirpThreshold = 4
	chirpCtrInit   = 4
)

// NewCHiRP returns a CHiRP policy for a TLB with the given associativity.
func NewCHiRP(ways int) *CHiRP {
	c := &CHiRP{
		table:        make([]uint8, chirpTableSize),
		tableMask:    chirpTableSize - 1,
		threshold:    chirpThreshold,
		ctrMax:       chirpCtrMax,
		lowInsertPos: ways - 2,
	}
	if c.lowInsertPos < 0 {
		c.lowInsertPos = 0
	}
	for i := range c.table {
		c.table[i] = chirpCtrInit
	}
	return c
}

// Name implements Policy.
func (*CHiRP) Name() string { return "chirp" }

// Observe folds a retired-instruction PC into the control-flow history;
// the simulator calls this on taken branches.
//
//itp:hotpath
func (c *CHiRP) Observe(thread uint8, pc uint64) {
	h := c.history[thread&63]
	c.history[thread&63] = (h << 5) ^ (h >> 59) ^ (pc >> 2)
}

// signature mixes the history with the missing VPN.
//
//itp:hotpath
func (c *CHiRP) signature(thread uint8, vpn uint64) uint16 {
	h := c.history[thread&63] ^ (vpn * 0x9e3779b97f4a7c15)
	h ^= h >> 29
	return uint16(h & c.tableMask)
}

// Victim implements Policy: plain LRU eviction (CHiRP drives insertion).
//
//itp:hotpath
func (*CHiRP) Victim(_ int, set []Entry, _ *Request) int { return StackLRUVictim(set) }

// OnFill implements Policy.
//
//itp:hotpath
func (c *CHiRP) OnFill(_ int, set []Entry, way int, req *Request) {
	sig := c.signature(req.Thread, req.VPN)
	set[way].Sig = sig
	set[way].Reused = false
	if c.table[sig] >= c.threshold {
		MoveToStackPos(set, way, 0)
	} else {
		MoveToStackPos(set, way, c.lowInsertPos)
	}
}

// OnHit implements Policy: promote to MRU and train the signature.
//
//itp:hotpath
func (c *CHiRP) OnHit(_ int, set []Entry, way int, _ *Request) {
	MoveToStackPos(set, way, 0)
	if !set[way].Reused {
		set[way].Reused = true
		if c.table[set[way].Sig] < c.ctrMax {
			c.table[set[way].Sig]++
		}
	}
}

// OnEvict implements Policy: dead entries train their signature down.
//
//itp:hotpath
func (c *CHiRP) OnEvict(_ int, set []Entry, way int) {
	if set[way].Valid && !set[way].Reused {
		if c.table[set[way].Sig] > 0 {
			c.table[set[way].Sig]--
		}
	}
}
