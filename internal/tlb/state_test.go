package tlb

import (
	"errors"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/audit"
)

func tlbHash(s arch.StateHasher) uint64 {
	h := arch.NewStateHash()
	s.HashState(&h)
	return h.Sum()
}

// auditOne runs a single component through a fresh auditor and returns
// the violations (nil when clean).
func auditOne(t *testing.T, c audit.Checkable) []audit.Violation {
	t.Helper()
	a := &audit.Auditor{}
	a.Register("tlb", c)
	err := a.Run(0, 1000)
	if err == nil {
		return nil
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("audit returned %T: %v", err, err)
	}
	return ae.Violations
}

func filledTLB() *TLB {
	tl := New("stlb", 4, 4, NewLRU())
	for i := 0; i < 12; i++ {
		cls := arch.DataClass
		if i%3 == 0 {
			cls = arch.InstrClass
		}
		tl.Insert(arch.Addr(uint64(i)<<arch.PageBits4K), uint64(0x100+i), arch.PageBits4K, cls, uint64(i), uint8(i%2))
	}
	return tl
}

func TestHashStateDeterministic(t *testing.T) {
	a, b := filledTLB(), filledTLB()
	if tlbHash(a) != tlbHash(b) {
		t.Fatal("identical TLBs must hash equal")
	}
	if tlbHash(a) != tlbHash(a) {
		t.Fatal("hashing must not mutate state")
	}
	a.Insert(arch.Addr(99<<arch.PageBits4K), 0x999, arch.PageBits4K, arch.DataClass, 0, 0)
	if tlbHash(a) == tlbHash(b) {
		t.Fatal("an extra entry must change the hash")
	}
}

// TestHashStateCoversReplacementState: a pure lookup changes no mapping,
// only recency — the hash must still see it, or divergent replacement
// decisions would go undetected.
func TestHashStateCoversReplacementState(t *testing.T) {
	a, b := filledTLB(), filledTLB()
	a.Lookup(arch.Addr(1<<arch.PageBits4K), 0, arch.InstrClass, 1)
	if tlbHash(a) == tlbHash(b) {
		t.Fatal("a recency promotion must change the hash")
	}
}

func TestSplitHashState(t *testing.T) {
	mk := func() *Split {
		s := NewSplit(4, 4, NewLRU(), NewLRU())
		s.Insert(arch.Addr(5<<arch.PageBits4K), 0x50, arch.PageBits4K, arch.InstrClass, 0, 0)
		s.Insert(arch.Addr(6<<arch.PageBits4K), 0x60, arch.PageBits4K, arch.DataClass, 0, 0)
		return s
	}
	a, b := mk(), mk()
	if tlbHash(a) != tlbHash(b) {
		t.Fatal("identical split TLBs must hash equal")
	}
	b.Insert(arch.Addr(7<<arch.PageBits4K), 0x70, arch.PageBits4K, arch.DataClass, 0, 0)
	if tlbHash(a) == tlbHash(b) {
		t.Fatal("a data-side insert must change the split hash")
	}
}

func TestAuditCleanAfterTraffic(t *testing.T) {
	tl := filledTLB()
	for i := 0; i < 8; i++ {
		tl.Lookup(arch.Addr(uint64(i)<<arch.PageBits4K), 0, arch.DataClass, uint8(i%2))
	}
	if v := auditOne(t, tl); v != nil {
		t.Fatalf("clean TLB reported violations: %v", v)
	}
	s := NewSplit(4, 4, NewLRU(), NewLRU())
	s.Insert(arch.Addr(1<<arch.PageBits4K), 1, arch.PageBits4K, arch.InstrClass, 0, 0)
	if v := auditOne(t, s); v != nil {
		t.Fatalf("clean split TLB reported violations: %v", v)
	}
}

func TestAuditDetectsStackCorruption(t *testing.T) {
	tl := filledTLB()
	tl.VisitEntries(func(e *Entry) { e.Stack = 99 })
	v := auditOne(t, tl)
	if len(v) == 0 || v[0].Rule != "stack-permutation" {
		t.Fatalf("want stack-permutation, got %v", v)
	}
}

func TestAuditDetectsDuplicateEntry(t *testing.T) {
	tl := New("stlb", 1, 4, NewLRU())
	tl.Insert(arch.Addr(1<<arch.PageBits4K), 1, arch.PageBits4K, arch.DataClass, 0, 0)
	tl.Insert(arch.Addr(2<<arch.PageBits4K), 2, arch.PageBits4K, arch.DataClass, 0, 0)
	var entries []*Entry
	tl.VisitEntries(func(e *Entry) { entries = append(entries, e) })
	if len(entries) != 2 {
		t.Fatalf("expected 2 valid entries, got %d", len(entries))
	}
	entries[1].VPN = entries[0].VPN
	found := false
	for _, v := range auditOne(t, tl) {
		if v.Rule == "duplicate-entry" {
			found = true
		}
	}
	if !found {
		t.Fatal("duplicate (VPN, size, thread) must be reported")
	}
}

func TestAuditDetectsBadEntryBits(t *testing.T) {
	tl := filledTLB()
	poisoned := false
	tl.VisitEntries(func(e *Entry) {
		if !poisoned {
			e.PageBits = 15
			e.Class = 7
			poisoned = true
		}
	})
	rules := map[string]int{}
	for _, v := range auditOne(t, tl) {
		rules[v.Rule]++
	}
	if rules["entry-bits"] != 2 {
		t.Fatalf("want 2 entry-bits violations (page size + class), got %v", rules)
	}
}

func TestVisitEntriesOnlyValid(t *testing.T) {
	tl := filledTLB()
	i, d := tl.Occupancy()
	count := 0
	tl.VisitEntries(func(e *Entry) {
		count++
		if !e.Valid {
			t.Error("VisitEntries handed out an invalid entry")
		}
	})
	if count != i+d {
		t.Errorf("visited %d entries, occupancy says %d", count, i+d)
	}
	tl.Flush()
	count = 0
	tl.VisitEntries(func(*Entry) { count++ })
	if count != 0 {
		t.Errorf("flushed TLB visited %d entries", count)
	}
}
