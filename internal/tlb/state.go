package tlb

import (
	"itpsim/internal/arch"
	"itpsim/internal/audit"
)

// HashState implements arch.StateHasher: it folds every entry's identity
// and policy metadata, in set/way order, so two TLBs hash equal iff they
// are architecturally identical (including replacement state).
func (t *TLB) HashState(h *arch.StateHash) {
	for si := range t.sets {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			h.Bool(e.Valid)
			h.Word(e.VPN)
			h.Word(e.PPN)
			h.Word(uint64(e.PageBits))
			h.Word(uint64(e.Class))
			h.Word(uint64(e.Thread))
			h.Word(uint64(e.Stack))
			h.Word(uint64(e.Freq))
			h.Word(uint64(e.Sig))
			h.Bool(e.Reused)
		}
	}
}

// HashState implements arch.StateHasher for the split organisation.
func (s *Split) HashState(h *arch.StateHash) {
	s.instr.HashState(h)
	s.data.HashState(h)
}

// AuditState implements audit.Checkable. Invariants:
//
//   - stack-permutation: each set's Stack fields form a permutation of
//     0..ways-1 (the substrate every stack-based policy assumes);
//   - duplicate-entry: no two valid ways of a set map the same
//     (VPN, PageBits, Thread) — a duplicate would make lookups
//     way-order-dependent;
//   - entry-bits: PageBits is one of the supported page sizes and Class
//     is a defined translation class (iTP's Type bit must be 0 or 1).
func (t *TLB) AuditState(r *audit.Report) {
	for si := range t.sets {
		set := t.sets[si]
		if !CheckStackInvariant(set) {
			r.Violatef("stack-permutation", "%s set %d: stack positions are not a permutation", t.name, si)
		}
		for a := range set {
			if !set[a].Valid {
				continue
			}
			if set[a].PageBits != arch.PageBits4K && set[a].PageBits != arch.PageBits2M {
				r.Violatef("entry-bits", "%s set %d way %d: unsupported page size bits %d", t.name, si, a, set[a].PageBits)
			}
			if set[a].Class != arch.InstrClass && set[a].Class != arch.DataClass {
				r.Violatef("entry-bits", "%s set %d way %d: undefined class %d", t.name, si, a, set[a].Class)
			}
			for b := a + 1; b < len(set); b++ {
				if set[b].Valid && set[a].VPN == set[b].VPN &&
					set[a].PageBits == set[b].PageBits && set[a].Thread == set[b].Thread {
					r.Violatef("duplicate-entry", "%s set %d: ways %d and %d both hold vpn=%#x/%d",
						t.name, si, a, b, set[a].VPN, set[a].PageBits)
				}
			}
		}
	}
}

// AuditState implements audit.Checkable for the split organisation.
func (s *Split) AuditState(r *audit.Report) {
	s.instr.AuditState(r)
	s.data.AuditState(r)
}

// VisitEntries calls fn for every valid entry, in set/way order — the
// read-only traversal TLB↔page-table coherence audits are built on.
func (t *TLB) VisitEntries(fn func(e *Entry)) {
	for si := range t.sets {
		for w := range t.sets[si] {
			if t.sets[si][w].Valid {
				fn(&t.sets[si][w])
			}
		}
	}
}

// VisitEntries calls fn for every valid entry of both halves.
func (s *Split) VisitEntries(fn func(e *Entry)) {
	s.instr.VisitEntries(fn)
	s.data.VisitEntries(fn)
}
