package ptw

import (
	"itpsim/internal/arch"
	"itpsim/internal/audit"
)

// HashState implements arch.StateHasher: every page-structure-cache
// entry in level/set/way order plus the per-walker busy clocks.
func (w *Walker) HashState(h *arch.StateHash) {
	for _, p := range w.pscs {
		for si := range p.sets {
			for e := range p.sets[si] {
				entry := &p.sets[si][e]
				h.Bool(entry.valid)
				h.Word(entry.tag)
				h.Word(uint64(entry.thread))
				h.Word(uint64(entry.lru))
			}
		}
	}
	for _, busy := range w.walkers {
		h.Word(busy)
	}
}

// AuditState implements audit.Checkable. Invariants:
//
//   - psc-lru: each PSC set's lru fields stay within the associativity
//     (they are recency ranks, not a strict permutation — invalid ways
//     keep stale ranks — but a rank past the way count means the
//     promotion arithmetic corrupted);
//   - psc-duplicate: no two valid ways of a set hold the same
//     (tag, thread).
func (w *Walker) AuditState(r *audit.Report) {
	for _, p := range w.pscs {
		for si := range p.sets {
			set := p.sets[si]
			for a := range set {
				if int(set[a].lru) >= len(set) {
					r.Violatef("psc-lru", "PSCL%d set %d way %d: lru rank %d outside associativity %d",
						p.level, si, a, set[a].lru, len(set))
				}
				if !set[a].valid {
					continue
				}
				for b := a + 1; b < len(set); b++ {
					if set[b].valid && set[a].tag == set[b].tag && set[a].thread == set[b].thread {
						r.Violatef("psc-duplicate", "PSCL%d set %d: ways %d and %d both hold tag %#x",
							p.level, si, a, b, set[a].tag)
					}
				}
			}
		}
	}
}
