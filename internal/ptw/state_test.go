package ptw

import (
	"errors"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/audit"
	"itpsim/internal/vm"
)

func walkerHash(w *Walker) uint64 {
	h := arch.NewStateHash()
	w.HashState(&h)
	return h.Sum()
}

func auditWalker(t *testing.T, w *Walker) []audit.Violation {
	t.Helper()
	a := &audit.Auditor{}
	a.Register("ptw", w)
	err := a.Run(0, 1000)
	if err == nil {
		return nil
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("audit returned %T: %v", err, err)
	}
	return ae.Violations
}

func walkedWalker() *Walker {
	w, _, pt, _ := setup()
	for i := 0; i < 6; i++ {
		va := arch.Addr(0x7f0000000000 + uint64(i)<<arch.PageBits4K)
		tr := pt.Translate(va)
		w.Walk(uint64(i)*500, va, &tr, arch.DataClass, 0, 0)
	}
	return w
}

func TestWalkerHashStateDeterministic(t *testing.T) {
	a, b := walkedWalker(), walkedWalker()
	if walkerHash(a) != walkerHash(b) {
		t.Fatal("identical walkers must hash equal")
	}
	if walkerHash(a) != walkerHash(a) {
		t.Fatal("hashing must not mutate state")
	}
	// One more walk fills PSC entries and advances a walker clock.
	_, _, pt, _ := setup()
	va := arch.Addr(0x7f1234560000)
	tr := pt.Translate(va)
	a.Walk(10_000, va, &tr, arch.InstrClass, 0, 0)
	if walkerHash(a) == walkerHash(b) {
		t.Fatal("an extra walk must change the hash")
	}
}

func TestWalkerAuditCleanAfterWalks(t *testing.T) {
	w := walkedWalker()
	if v := auditWalker(t, w); v != nil {
		t.Fatalf("clean walker reported violations: %v", v)
	}
}

func TestWalkerAuditDetectsLRUCorruption(t *testing.T) {
	w := walkedWalker()
	p := w.pscs[0]
	ways := len(p.sets[0])
	p.sets[0][0].lru = uint8(ways)
	found := false
	for _, v := range auditWalker(t, w) {
		if v.Rule == "psc-lru" {
			found = true
		}
	}
	if !found {
		t.Fatal("lru rank outside associativity must be reported")
	}
}

func TestWalkerAuditDetectsDuplicateTag(t *testing.T) {
	w := walkedWalker()
	// Find a PSC with at least 2 ways and plant a duplicate.
	for _, p := range w.pscs {
		set := p.sets[0]
		if len(set) < 2 {
			continue
		}
		set[0].valid, set[1].valid = true, true
		set[0].tag, set[1].tag = 0x1234, 0x1234
		set[0].thread, set[1].thread = 0, 0
		break
	}
	found := false
	for _, v := range auditWalker(t, w) {
		if v.Rule == "psc-duplicate" {
			found = true
		}
	}
	if !found {
		t.Fatal("duplicate (tag, thread) in one PSC set must be reported")
	}
}

func TestWalkerHashCoversPSCRecency(t *testing.T) {
	mk := func() (*Walker, *vm.PageTable) {
		w, _, pt, _ := setup()
		for i := 0; i < 4; i++ {
			va := arch.Addr(0x7f0000000000 + uint64(i)<<arch.PageBits2M)
			tr := pt.Translate(va)
			w.Walk(uint64(i)*500, va, &tr, arch.DataClass, 0, 0)
		}
		return w, pt
	}
	a, pta := mk()
	b, _ := mk()
	// Re-walking the oldest VA only promotes PSC recency (all levels hit),
	// which the hash must still observe.
	va := arch.Addr(0x7f0000000000)
	tr := pta.Translate(va)
	a.Walk(5_000, va, &tr, arch.DataClass, 0, 0)
	if walkerHash(a) == walkerHash(b) {
		t.Fatal("a PSC recency promotion must change the hash")
	}
}
