// Package ptw implements the hardware page-table walker and the split
// page structure caches (PSCs) of Table 1. A walk consults the PSCs to
// skip upper radix levels, then issues one PTW memory reference per
// remaining level into the cache hierarchy (L2C → LLC → DRAM), serially —
// each level's PTE must be read before the next level's address is known.
// Up to PageWalkers walks are in flight at once.
package ptw

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/cache"
	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/stats"
	"itpsim/internal/vm"
)

// pscEntry is one page-structure-cache entry.
type pscEntry struct {
	valid  bool
	tag    uint64
	thread uint8
	lru    uint8
}

// psc is one small set-associative page structure cache for a single
// radix level.
type psc struct {
	level   int
	sets    [][]pscEntry
	setMask uint64
}

func newPSC(level int, cfg config.PSCConfig) *psc {
	ways := cfg.Ways
	if ways <= 0 || ways > cfg.Entries {
		ways = cfg.Entries
	}
	nsets := cfg.Entries / ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("ptw: PSCL%d needs a power-of-two set count, got %d", level, nsets))
	}
	p := &psc{level: level, sets: make([][]pscEntry, nsets), setMask: uint64(nsets - 1)}
	for i := range p.sets {
		p.sets[i] = make([]pscEntry, ways)
	}
	return p
}

// tagFor identifies the radix path down to (and including) this level's
// index: all VA bits above the level's child region.
//
//itp:hotpath
func (p *psc) tagFor(va arch.Addr) uint64 {
	return uint64(va >> vm.LevelShift(p.level))
}

//itp:hotpath
func (p *psc) lookup(va arch.Addr, thread uint8) bool {
	tag := p.tagFor(va)
	set := p.sets[tag&p.setMask]
	for i := range set {
		if set[i].tag == tag && set[i].valid && set[i].thread == thread {
			for j := range set {
				if set[j].lru < set[i].lru {
					set[j].lru++
				}
			}
			set[i].lru = 0
			return true
		}
	}
	return false
}

//itp:hotpath
func (p *psc) insert(va arch.Addr, thread uint8) {
	tag := p.tagFor(va)
	set := p.sets[tag&p.setMask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].tag == tag && set[i].thread == thread {
			victim = i
			break
		}
		if set[i].lru > set[victim].lru {
			victim = i
		}
	}
	for j := range set {
		if set[j].lru < set[victim].lru {
			set[j].lru++
		}
	}
	set[victim] = pscEntry{valid: true, tag: tag, thread: thread, lru: 0}
}

// Walker is the hardware page-table walker.
type Walker struct {
	// pscs[0] is PSCL5 ... pscs[3] is PSCL2.
	pscs       [4]*psc
	pscLatency uint64
	walkers    []uint64 // busy-until cycle per walker
	mem        cache.Level
	sim        *stats.Sim

	// Observability (nil — and therefore free — until Instrument
	// attaches a registry). walkCtr is indexed by arch.Class.
	walkCtr [2]*metrics.Counter
	walkLat *metrics.Histogram
	pscHits *metrics.Counter

	// acc is the scratch access record the per-level PTE reads reuse; a
	// loop local passed through the cache.Level interface would escape to
	// the heap on every walk step.
	acc arch.Access
}

// Instrument attaches observability counters from the registry under the
// given prefix (e.g. "ptw"): completed walks by translation class, the
// walk-latency distribution, and page-structure-cache hits. A nil
// registry leaves everything a no-op.
func (w *Walker) Instrument(reg *metrics.Registry, prefix string) {
	w.walkCtr[arch.InstrClass] = reg.Counter(prefix + ".walk.instr")
	w.walkCtr[arch.DataClass] = reg.Counter(prefix + ".walk.data")
	w.walkLat = reg.Histogram(prefix + ".walk_latency")
	w.pscHits = reg.Counter(prefix + ".psc_hits")
}

// New builds a walker that issues PTE references into mem (normally the
// L2C). sim may be nil.
func New(cfg *config.SystemConfig, mem cache.Level, sim *stats.Sim) *Walker {
	w := &Walker{
		pscLatency: cfg.PSCLatency,
		walkers:    make([]uint64, cfg.PageWalkers),
		mem:        mem,
		sim:        sim,
	}
	for i, level := 0, 5; i < 4; i, level = i+1, level-1 {
		w.pscs[i] = newPSC(level, cfg.PSC[i])
	}
	return w
}

// pscIndex maps radix level (5..2) to the pscs array index.
//
//itp:hotpath
func pscIndex(level int) int { return 5 - level }

// Walk performs a page walk for the translation tr of va. It returns the
// cycle at which the translation is available and the number of memory
// references issued. Walk serialises the per-level PTE reads and models
// walker occupancy; PTE reads carry the translation's class so the cache
// hierarchy tags filled blocks for the translation-aware policies.
//
//itp:hotpath
func (w *Walker) Walk(now uint64, va arch.Addr, tr *vm.Translation, class arch.Class, pc uint64, thread uint8) (done uint64, memRefs int) {
	// Acquire the least-busy walker.
	best := 0
	for i := range w.walkers {
		if w.walkers[i] < w.walkers[best] {
			best = i
		}
	}
	start := now
	if w.walkers[best] > start {
		start = w.walkers[best]
	}

	leafLevel := tr.Steps[tr.NumSteps-1].Level

	// Consult PSCs deepest-coverage first: a PSCLk hit means levels 5..k
	// are resolved and the walk resumes at level k-1. Leaf levels are
	// never PSC-cached (that is the TLB's job).
	t := start + w.pscLatency
	firstStep := 0
	for level := leafLevel + 1; level <= 5; level++ {
		if w.pscs[pscIndex(level)].lookup(va, thread) {
			if w.sim != nil {
				w.sim.PSCHits[pscIndex(level)]++
			}
			w.pscHits.Inc()
			// Skip all steps at or above this level.
			for firstStep < tr.NumSteps && tr.Steps[firstStep].Level >= level {
				firstStep++
			}
			break
		}
	}

	// Issue the remaining PTE reads serially.
	for i := firstStep; i < tr.NumSteps; i++ {
		step := tr.Steps[i]
		acc := &w.acc
		*acc = arch.Access{
			Addr:   step.PTEAddr,
			PC:     pc,
			Kind:   arch.PTW,
			Class:  class,
			IsPTE:  true,
			Thread: thread,
		}
		t = w.mem.Access(t, acc)
		memRefs++
		// Install the traversed non-leaf levels into their PSCs.
		if step.Level > leafLevel {
			w.pscs[pscIndex(step.Level)].insert(va, thread)
		}
	}

	w.walkers[best] = t
	if w.sim != nil {
		w.sim.PageWalks[class]++
		w.sim.WalkLatSum[class] += arch.Cycle(t - now)
	}
	w.walkCtr[class].Inc()
	w.walkLat.Observe(t - now)
	return t, memRefs
}
