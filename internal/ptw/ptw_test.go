package ptw

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/stats"
	"itpsim/internal/vm"
)

// countingMem records PTW accesses with a fixed latency.
type countingMem struct {
	latency uint64
	n       int
	classes []arch.Class
	addrs   []arch.Addr
}

func (m *countingMem) Access(now uint64, acc *arch.Access) uint64 {
	m.n++
	m.classes = append(m.classes, acc.Class)
	m.addrs = append(m.addrs, acc.Addr)
	if !acc.IsPTE || acc.Kind != arch.PTW {
		panic("walker must issue PTW/PTE accesses")
	}
	return now + m.latency
}

func setup() (*Walker, *countingMem, *vm.PageTable, *stats.Sim) {
	cfg := config.Default()
	mem := &countingMem{latency: 50}
	sim := stats.NewSim()
	w := New(&cfg, mem, sim)
	pt := vm.NewPageTable(vm.NewPhysAlloc(8<<30), 0, 1)
	return w, mem, pt, sim
}

func TestColdWalkDoesAllLevels(t *testing.T) {
	w, mem, pt, sim := setup()
	va := arch.Addr(0x7f0000001000)
	tr := pt.Translate(va)
	done, refs := w.Walk(0, va, &tr, arch.DataClass, 0, 0)
	if refs != 5 {
		t.Errorf("cold 4KB walk refs = %d, want 5", refs)
	}
	// 2 (PSC latency) + 5*50.
	if done != 2+5*50 {
		t.Errorf("done = %d, want %d", done, 2+5*50)
	}
	if mem.n != 5 {
		t.Errorf("memory refs = %d", mem.n)
	}
	if sim.PageWalks[arch.DataClass] != 1 {
		t.Error("walk not counted")
	}
}

func TestPSCSkipsLevelsOnSecondWalk(t *testing.T) {
	w, _, pt, sim := setup()
	va1 := arch.Addr(0x7f0000001000)
	va2 := va1 + arch.PageSize4K // same level-2 path, different leaf PTE
	tr1 := pt.Translate(va1)
	tr2 := pt.Translate(va2)
	w.Walk(0, va1, &tr1, arch.DataClass, 0, 0)
	_, refs := w.Walk(1000, va2, &tr2, arch.DataClass, 0, 0)
	if refs != 1 {
		t.Errorf("PSCL2-covered walk refs = %d, want 1 (leaf only)", refs)
	}
	if sim.PSCHits[3] != 1 { // index 3 = PSCL2
		t.Errorf("PSCL2 hits = %d, want 1", sim.PSCHits[3])
	}
}

func TestPSCPartialCoverage(t *testing.T) {
	w, _, pt, _ := setup()
	va1 := arch.Addr(0x000000001000)
	tr1 := pt.Translate(va1)
	w.Walk(0, va1, &tr1, arch.DataClass, 0, 0)
	// Different level-2 index but same level-3 path: PSCL3 should cover
	// levels 5..3, leaving the L2 and L1 reads.
	va2 := va1 + (1 << vm.LevelShift(2)) // next 1GB/512 region? level-2 stride = 2MB
	tr2 := pt.Translate(va2)
	_, refs := w.Walk(1000, va2, &tr2, arch.DataClass, 0, 0)
	if refs != 2 {
		t.Errorf("PSCL3-covered walk refs = %d, want 2", refs)
	}
}

func TestHugePageWalkShorter(t *testing.T) {
	cfg := config.Default()
	mem := &countingMem{latency: 50}
	w := New(&cfg, mem, nil)
	pt := vm.NewPageTable(vm.NewPhysAlloc(8<<30), 1.0, 1)
	va := arch.Addr(0x40000000)
	tr := pt.Translate(va)
	_, refs := w.Walk(0, va, &tr, arch.DataClass, 0, 0)
	if refs != 4 {
		t.Errorf("cold 2MB walk refs = %d, want 4", refs)
	}
	// Second walk in a neighbouring 2MB page: PSCL3 covers 5..3 → 1 ref.
	va2 := va + arch.PageSize2M
	tr2 := pt.Translate(va2)
	_, refs2 := w.Walk(1000, va2, &tr2, arch.DataClass, 0, 0)
	if refs2 != 1 {
		t.Errorf("covered 2MB walk refs = %d, want 1", refs2)
	}
}

func TestWalkClassPropagates(t *testing.T) {
	w, mem, pt, _ := setup()
	va := arch.Addr(0x400000)
	tr := pt.Translate(va)
	w.Walk(0, va, &tr, arch.InstrClass, 0, 0)
	for _, cl := range mem.classes {
		if cl != arch.InstrClass {
			t.Fatal("instruction walk issued data-class PTE access")
		}
	}
}

func TestWalkerOccupancy(t *testing.T) {
	cfg := config.Default()
	cfg.PageWalkers = 1
	mem := &countingMem{latency: 50}
	w := New(&cfg, mem, nil)
	pt := vm.NewPageTable(vm.NewPhysAlloc(8<<30), 0, 1)
	// Distinct level-5 indices so neither walk benefits from the PSCs.
	va1, va2 := arch.Addr(0x1000), arch.Addr(1)<<50
	tr1 := pt.Translate(va1)
	tr2 := pt.Translate(va2)
	d1, _ := w.Walk(0, va1, &tr1, arch.DataClass, 0, 0)
	d2, _ := w.Walk(0, va2, &tr2, arch.DataClass, 0, 0)
	if d2 <= d1 {
		t.Errorf("single walker should serialise: d1=%d d2=%d", d1, d2)
	}
	// With 4 walkers the second concurrent walk starts immediately.
	cfg.PageWalkers = 4
	w4 := New(&cfg, &countingMem{latency: 50}, nil)
	e1, _ := w4.Walk(0, va1, &tr1, arch.DataClass, 0, 0)
	e2, _ := w4.Walk(0, va2, &tr2, arch.DataClass, 0, 0)
	if e2 != e1 {
		t.Errorf("parallel walkers: e1=%d e2=%d, want equal", e1, e2)
	}
}

func TestThreadSeparationInPSC(t *testing.T) {
	w, _, pt, _ := setup()
	va := arch.Addr(0x1000)
	tr := pt.Translate(va)
	w.Walk(0, va, &tr, arch.DataClass, 0, 0)
	// Same VA from the other thread: PSC entries are thread-tagged, so
	// the walk is cold again.
	_, refs := w.Walk(1000, va, &tr, arch.DataClass, 0, 1)
	if refs != 5 {
		t.Errorf("other-thread walk refs = %d, want 5", refs)
	}
}

func TestWalkLatencyAccounting(t *testing.T) {
	w, _, pt, sim := setup()
	va := arch.Addr(0x1000)
	tr := pt.Translate(va)
	done, _ := w.Walk(100, va, &tr, arch.InstrClass, 0, 0)
	if sim.WalkLatSum[arch.InstrClass] != arch.Cycle(done-100) {
		t.Errorf("walk latency sum = %d, want %d", sim.WalkLatSum[arch.InstrClass], done-100)
	}
}

func TestPSCInsertEvictsLRU(t *testing.T) {
	// PSCL5 has 2 fully-associative entries; a third region evicts the
	// least recently used one.
	cfg := config.Default()
	mem := &countingMem{latency: 10}
	w := New(&cfg, mem, nil)
	pt := vm.NewPageTable(vm.NewPhysAlloc(8<<30), 0, 1)

	vas := []arch.Addr{0, 1 << 50, 2 << 50} // distinct level-5 indices
	for _, va := range vas {
		tr := pt.Translate(va)
		w.Walk(0, va, &tr, arch.DataClass, 0, 0)
	}
	// Regions 1<<50 and 2<<50 should still be covered at PSCL5 level; the
	// first (LRU) should have been evicted from the 2-entry PSCL5. The
	// observable effect: re-walking va=0 does all 5 levels again unless a
	// deeper PSC (PSCL2, 32 entries) still covers it — which it does, so
	// instead check the sampler directly.
	if !w.pscs[0].lookup(vas[1], 0) || !w.pscs[0].lookup(vas[2], 0) {
		t.Error("recent regions missing from PSCL5")
	}
	if w.pscs[0].lookup(vas[0], 0) {
		t.Error("LRU region should have been evicted from 2-entry PSCL5")
	}
}

func TestWalkerStatsNilSafe(t *testing.T) {
	cfg := config.Default()
	w := New(&cfg, &countingMem{latency: 5}, nil) // nil stats
	pt := vm.NewPageTable(vm.NewPhysAlloc(8<<30), 0, 1)
	tr := pt.Translate(0x1000)
	if done, refs := w.Walk(0, 0x1000, &tr, arch.InstrClass, 0, 0); done == 0 || refs == 0 {
		t.Error("walk with nil stats failed")
	}
}
