package chaos

import "io"

// failingReader passes bytes through until a chosen offset, then fails
// every subsequent Read with a structured injected error. Wrapped under
// trace.NewReader it models a trace source dying mid-campaign: the
// decoder surfaces the error through its Err() and the simulation ends
// with a stream error instead of a silently truncated run.
type failingReader struct {
	r     io.Reader
	left  int64
	fault *Error
}

// FailAfter wraps r to deliver about `after` bytes and then fail
// permanently for this reader instance. Transient-vs-permanent is the
// caller's composition: wrap only the first attempt's reader and the
// harness retry recovers; wrap every attempt's and the failure is
// terminal.
func FailAfter(r io.Reader, after int64) io.Reader {
	return &failingReader{r: r, left: after, fault: &Error{Kind: ReadFault, Op: "read", Off: after}}
}

// Read implements io.Reader.
func (f *failingReader) Read(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, f.fault
	}
	if int64(len(p)) > f.left {
		p = p[:f.left]
	}
	n, err := f.r.Read(p)
	f.left -= int64(n)
	if err == nil && f.left <= 0 {
		// Deliver the final bytes with their error, as a real short read
		// would — the decoder must handle data+error in one call.
		err = f.fault
	}
	return n, err
}

// tornWriter passes writes through until a chosen byte budget, then
// commits only a prefix of the offending write and fails that call and
// every later one — the shape a power loss or full disk leaves behind: a
// valid prefix, a torn record, nothing after.
type tornWriter struct {
	w       io.Writer
	left    int64
	written int64
	fault   *Error
}

// TornAfter wraps w to tear the write that crosses the `after` byte
// budget.
func TornAfter(w io.Writer, after int64) io.Writer {
	return &tornWriter{w: w, left: after}
}

// Write implements io.Writer.
func (t *tornWriter) Write(p []byte) (int, error) {
	if t.fault != nil {
		return 0, t.fault
	}
	if int64(len(p)) <= t.left {
		n, err := t.w.Write(p)
		t.left -= int64(n)
		t.written += int64(n)
		return n, err
	}
	part := p[:t.left]
	n, err := t.w.Write(part)
	t.written += int64(n)
	t.left = 0
	t.fault = &Error{Kind: TornWrite, Op: "write", Off: t.written}
	if err != nil {
		return n, err
	}
	return n, t.fault
}

// slowWriter invokes a caller-provided delay before every write — the
// slow-consumer fault (an NFS-mounted results file, a throttled pipe)
// that turns a metrics sink into backpressure on whoever calls it. The
// delay is a func so this package never touches the wall clock.
type slowWriter struct {
	w     io.Writer
	delay func()
}

// Slow wraps w so every Write first runs delay.
func Slow(w io.Writer, delay func()) io.Writer {
	return &slowWriter{w: w, delay: delay}
}

// Write implements io.Writer.
func (s *slowWriter) Write(p []byte) (int, error) {
	s.delay()
	return s.w.Write(p)
}
