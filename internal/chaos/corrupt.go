package chaos

import (
	"fmt"
	"os"
)

// FlipBit damages a file in place: one seeded bit of one seeded byte is
// inverted (deliberately non-atomic — this is the fault, not the fix).
// It returns the offset it hit so a test can report what it broke. The
// checkpoint-recovery scenario uses it to prove a corrupted journal
// record is detected by its CRC and dropped rather than trusted.
func FlipBit(path string, rng *RNG) (off int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("chaos: %s is empty, nothing to corrupt", path)
	}
	off = rng.Intn(int64(len(data)))
	data[off] ^= 1 << uint(rng.Intn(8))
	return off, os.WriteFile(path, data, 0o644)
}

// FlipBitAfter is FlipBit constrained to offsets at or past min — e.g.
// past a journal's header line so the damage lands in a record.
func FlipBitAfter(path string, rng *RNG, min int64) (off int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if min >= int64(len(data)) {
		return 0, fmt.Errorf("chaos: %s has %d bytes, cannot corrupt past %d", path, len(data), min)
	}
	off = rng.Between(min, int64(len(data)))
	data[off] ^= 1 << uint(rng.Intn(8))
	return off, os.WriteFile(path, data, 0o644)
}

// Truncate tears the tail off a file at a seeded offset in (0, len),
// modeling a crash mid-append. It returns the new length.
func Truncate(path string, rng *RNG) (newLen int64, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() < 2 {
		return 0, fmt.Errorf("chaos: %s has %d bytes, nothing to truncate", path, fi.Size())
	}
	newLen = 1 + rng.Intn(fi.Size()-1)
	return newLen, os.Truncate(path, newLen)
}
