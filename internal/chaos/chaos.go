// Package chaos is the seeded fault-injection engine behind the
// robustness battery: deterministic wrappers that make I/O fail in the
// ways a paper-scale campaign actually sees — transient and permanent
// trace-read errors, torn JSONL writes, corrupted checkpoint journals,
// and slow metrics consumers. Every fault site is derived from a seeded
// xorshift stream, so a failing chaos run replays bit-for-bit from its
// seed, and every injected failure is a structured *chaos.Error the
// supervising layer can classify (rather than a bare io error that could
// be mistaken for a real one).
//
// The package sits inside itpvet's deterministic core: no wall-clock
// reads, no global math/rand. Anything time-shaped (a slow-consumer
// delay, a stall release) is delegated to a caller-provided func so the
// nondeterminism stays at the test boundary.
package chaos

import "fmt"

// Kind classifies an injected fault.
type Kind int

// The fault taxonomy: each kind corresponds to one battery scenario and
// one real-world failure mode of a long campaign.
const (
	// ReadFault is an injected trace/ingestion read error (transient when
	// only some attempts are wrapped, permanent when all are).
	ReadFault Kind = iota
	// TornWrite is a write cut short mid-record (power loss, full disk),
	// leaving a valid prefix and a torn tail.
	TornWrite
	// Corruption is in-place damage to a file already on disk (bit rot,
	// partial overwrite) — the checkpoint-journal scenario.
	Corruption
	// SlowConsumer is a sink that keeps accepting writes but far slower
	// than the producer emits them.
	SlowConsumer
	// Stall is an ingestion source that stops producing without erroring
	// (the watchdog's prey).
	Stall
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ReadFault:
		return "read-fault"
	case TornWrite:
		return "torn-write"
	case Corruption:
		return "corruption"
	case SlowConsumer:
		return "slow-consumer"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Error is a structured injected fault. Injection sites return it (or
// wrap it), so recovery paths can assert "this failure was mine" with
// errors.As instead of string matching.
type Error struct {
	// Kind is the fault class.
	Kind Kind
	// Op is the operation that was failed ("read", "write", ...).
	Op string
	// Off is the byte offset (or operation count) the fault fired at.
	Off int64
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("chaos: injected %s during %s at offset %d", e.Kind, e.Op, e.Off)
}

// RNG is the engine's deterministic xorshift64 stream. The zero seed is
// remapped (xorshift has a zero fixed point), so any uint64 is a valid
// seed and equal seeds replay equal fault schedules.
type RNG struct{ s uint64 }

// NewRNG seeds a stream.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Next returns the next raw 64-bit value.
func (r *RNG) Next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// Intn returns a value in [0, n); n must be positive.
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("chaos: Intn needs a positive bound")
	}
	return int64(r.Next() % uint64(n))
}

// Between returns a value in [lo, hi); hi must exceed lo.
func (r *RNG) Between(lo, hi int64) int64 {
	return lo + r.Intn(hi-lo)
}
