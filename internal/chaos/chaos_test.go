package chaos

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("seed 99 diverged at draw %d", i)
		}
	}
	c := NewRNG(100)
	same := 0
	for i := 0; i < 64; i++ {
		if NewRNG(99).Next() == c.Next() {
			same++
		}
	}
	if same == 64 {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeedStillWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Error("zero seed must be remapped, not stuck at zero")
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		if v := r.Between(5, 8); v < 5 || v >= 8 {
			t.Fatalf("Between(5,8) = %d", v)
		}
	}
}

func TestErrorText(t *testing.T) {
	e := &Error{Kind: TornWrite, Op: "metrics-jsonl", Off: 512}
	for _, frag := range []string{"chaos:", "torn-write", "metrics-jsonl", "512"} {
		if !strings.Contains(e.Error(), frag) {
			t.Errorf("error text missing %q: %s", frag, e.Error())
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{ReadFault, TornWrite, Corruption, SlowConsumer, Stall}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.Contains(s, "kind(") {
			t.Errorf("Kind %d has no name: %q", k, s)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestFailAfterDeliversPrefixThenFails(t *testing.T) {
	src := bytes.Repeat([]byte("x"), 100)
	r := FailAfter(bytes.NewReader(src), 40)
	got, err := io.ReadAll(r)
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != ReadFault {
		t.Fatalf("want *Error{ReadFault}, got %v", err)
	}
	if len(got) != 40 {
		t.Errorf("reader delivered %d bytes before the fault, want 40", len(got))
	}
	if ce.Off != 40 {
		t.Errorf("fault offset %d, want 40", ce.Off)
	}
	// The fault is permanent for this reader instance.
	if _, err := r.Read(make([]byte, 1)); !errors.As(err, &ce) {
		t.Errorf("subsequent read should keep failing, got %v", err)
	}
}

func TestFailAfterBeyondStreamIsHarmless(t *testing.T) {
	r := FailAfter(bytes.NewReader([]byte("short")), 1000)
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "short" {
		t.Errorf("fault beyond EOF must not trigger: %q, %v", got, err)
	}
}

func TestTornAfterCommitsPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := TornAfter(&buf, 5)
	n, err := w.Write([]byte("0123456789"))
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != TornWrite {
		t.Fatalf("want *Error{TornWrite}, got %v", err)
	}
	if n != 5 || buf.String() != "01234" {
		t.Errorf("torn write committed %d bytes (%q), want the 5-byte prefix", n, buf.String())
	}
	// Persistent: later writes fail without committing anything.
	if n, err := w.Write([]byte("zz")); n != 0 || !errors.As(err, &ce) {
		t.Errorf("write after tear = (%d, %v), want (0, *Error)", n, err)
	}
	if buf.String() != "01234" {
		t.Errorf("write after tear leaked bytes: %q", buf.String())
	}
}

func TestSlowDelaysEachWrite(t *testing.T) {
	var buf bytes.Buffer
	delays := 0
	w := Slow(&buf, func() { delays++ })
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte("ab")); err != nil {
			t.Fatal(err)
		}
	}
	if delays != 3 {
		t.Errorf("delay hook ran %d times, want once per write", delays)
	}
	if buf.String() != "ababab" {
		t.Errorf("slow writer must pass bytes through intact: %q", buf.String())
	}
}

func TestFlipBitChangesExactlyOneBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "victim")
	orig := []byte("the quick brown fox")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	off, err := FlipBit(path, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	diff := 0
	for i := range orig {
		if x := orig[i] ^ after[i]; x != 0 {
			if int64(i) != off {
				t.Errorf("damage at %d but reported offset %d", i, off)
			}
			for ; x != 0; x &= x - 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bits flipped, want exactly 1", diff)
	}
}

func TestFlipBitAfterRespectsFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "victim")
	orig := bytes.Repeat([]byte("h"), 64)
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(5)
	for i := 0; i < 20; i++ {
		off, err := FlipBitAfter(path, rng, 32)
		if err != nil {
			t.Fatal(err)
		}
		if off < 32 || off >= 64 {
			t.Fatalf("offset %d outside [32, 64)", off)
		}
	}
	if _, err := FlipBitAfter(path, rng, 64); err == nil {
		t.Error("floor at EOF must refuse, not corrupt nothing")
	}
}

func TestTruncateTearsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "victim")
	if err := os.WriteFile(path, bytes.Repeat([]byte("t"), 100), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Truncate(path, NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if fi.Size() != n || n <= 0 || n >= 100 {
		t.Errorf("truncated to %d (reported %d), want a strict prefix", fi.Size(), n)
	}
}
