// Package chaos_test runs the fault-injection battery: every fault class
// the chaos engine can inject is driven through the real simulator and
// supervision stack, and each scenario must either recover with a beacon
// chain identical to the fault-free run or fail with a structured error
// naming the injected fault. Every scenario is deadline-bounded so a
// recovery bug shows up as a test failure, not a hung CI job.
package chaos_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"itpsim/internal/chaos"
	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/trace"
	"itpsim/internal/workload"
)

const (
	batteryInstr  = 30_000 // instructions per scenario run
	batteryBeacon = 5_000  // beacon interval → 6 beacons per run
)

func batterySpec() workload.Stream {
	return workload.NewSpec(workload.SpecParams{
		Seed: 7, CodePages: 4, LoopLen: 64, LoopIters: 100,
		DataPages: 512, DataZipf: 1.2, LoadFrac: 0.25, StoreFrac: 0.1,
		StreamFrac: 0.2, ReuseFrac: 0.3,
	})
}

func fastOpts() harness.Options {
	return harness.Options{
		Parallelism: 2,
		Backoff:     time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		KillGrace:   500 * time.Millisecond,
	}
}

// recordTrace captures the battery workload as a gzip trace, the on-disk
// form the read-fault scenarios tear mid-stream.
func recordTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Record(w, batterySpec(), batteryInstr); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// traceJob replays a trace through a beaconed machine; source lets each
// attempt choose its own (possibly faulted) reader.
func traceJob(key string, source func(attempt int) io.Reader) harness.Job[*stats.Sim] {
	return harness.Job[*stats.Sim]{
		Key: key,
		Run: func(jc *harness.JobContext) (*stats.Sim, error) {
			m, err := sim.NewMachine(config.Default())
			if err != nil {
				return nil, harness.Permanent(err)
			}
			m.EnableBeacons(batteryBeacon)
			jc.Attach(m)
			r, err := trace.NewReader(source(jc.Attempt()))
			if err != nil {
				return nil, err
			}
			defer r.Close()
			res, err := m.Run([]workload.Stream{r}, batteryInstr)
			if err != nil {
				return nil, err
			}
			return res.Stats, nil
		},
	}
}

// faultFreeStamp establishes the reference beacon chain for a trace.
func faultFreeStamp(t *testing.T, traceBytes []byte) harness.BeaconStamp {
	t.Helper()
	job := traceJob("reference", func(int) io.Reader { return bytes.NewReader(traceBytes) })
	outs, err := harness.RunAll(fastOpts(), []harness.Job[*stats.Sim]{job})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Beacon == nil {
		t.Fatal("reference run must carry a beacon stamp")
	}
	return *outs[0].Beacon
}

// TestBatteryTransientReadFaultRecovers: the first attempt's trace reader
// dies mid-stream; the retry reads clean bytes and must land on the
// fault-free beacon chain — proof the failed attempt left no residue.
func TestBatteryTransientReadFaultRecovers(t *testing.T) {
	traceBytes := recordTrace(t)
	want := faultFreeStamp(t, traceBytes)

	o := fastOpts()
	o.Retries = 2
	job := traceJob("transient-read", func(attempt int) io.Reader {
		r := io.Reader(bytes.NewReader(traceBytes))
		if attempt == 0 {
			r = chaos.FailAfter(r, int64(len(traceBytes)/2))
		}
		return r
	})
	outs, err := harness.RunAll(o, []harness.Job[*stats.Sim]{job})
	if err != nil {
		t.Fatalf("transient fault must be absorbed by retry: %v", err)
	}
	if outs[0].Beacon == nil || *outs[0].Beacon != want {
		t.Errorf("recovered run stamp %+v, want fault-free %+v", outs[0].Beacon, want)
	}
}

// TestBatteryPermanentReadFaultIsStructured: when every attempt faults,
// the campaign must fail with the injected *chaos.Error still intact in
// the chain — not a stringified or swallowed version.
func TestBatteryPermanentReadFaultIsStructured(t *testing.T) {
	traceBytes := recordTrace(t)
	o := fastOpts()
	o.Retries = 1
	job := traceJob("permanent-read", func(int) io.Reader {
		return chaos.FailAfter(bytes.NewReader(traceBytes), int64(len(traceBytes)/3))
	})
	_, err := harness.RunAll(o, []harness.Job[*stats.Sim]{job})
	var ce *chaos.Error
	if !errors.As(err, &ce) {
		t.Fatalf("want the injected *chaos.Error in the chain, got: %v", err)
	}
	if ce.Kind != chaos.ReadFault {
		t.Errorf("fault kind = %v, want ReadFault", ce.Kind)
	}
}

// runMetricsTo drives one beaconed, instrumented run whose window records
// stream to the given JSONL writer, returning the machine's chain.
func runMetricsTo(t *testing.T, w io.Writer, onErr func(error)) (chain, count uint64) {
	t.Helper()
	m, err := sim.NewMachine(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableBeacons(batteryBeacon)
	ws := m.InstrumentMetrics(metrics.NewRegistry(), 0)
	ws.SetSink(metrics.NewJSONL(w).WindowSink("battery", onErr))
	if _, err := m.Run([]workload.Stream{batterySpec()}, batteryInstr); err != nil {
		t.Fatal(err)
	}
	return m.BeaconChain()
}

// TestBatteryTornMetricsWriteDoesNotPerturbSim: a metrics sink that tears
// mid-line is an observability failure, not a simulation failure — the
// run must complete, report the tear through onErr, and produce exactly
// the beacon chain of a run with a healthy sink.
func TestBatteryTornMetricsWriteDoesNotPerturbSim(t *testing.T) {
	var clean bytes.Buffer
	wantChain, wantCount := runMetricsTo(t, &clean, func(err error) { t.Errorf("clean sink errored: %v", err) })

	var torn bytes.Buffer
	var sinkErrs []error
	chain, count := runMetricsTo(t, chaos.TornAfter(&torn, int64(clean.Len()/2)),
		func(err error) { sinkErrs = append(sinkErrs, err) })

	if chain != wantChain || count != wantCount {
		t.Errorf("torn sink perturbed the simulation: chain %016x/%d, want %016x/%d",
			chain, count, wantChain, wantCount)
	}
	if len(sinkErrs) == 0 {
		t.Fatal("the tear must be reported through onErr, not swallowed")
	}
	var ce *chaos.Error
	if !errors.As(sinkErrs[0], &ce) || ce.Kind != chaos.TornWrite {
		t.Errorf("sink error should carry the injected fault, got: %v", sinkErrs[0])
	}
}

// TestBatteryDecodeAheadStallKilled: an ingestion source that blocks
// inside the decode-ahead path must be caught by the watchdog and killed
// within its sampling budget, yielding a stall report with a snapshot.
func TestBatteryDecodeAheadStallKilled(t *testing.T) {
	o := fastOpts()
	o.WatchdogInterval = 10 * time.Millisecond
	o.WatchdogSamples = 3
	stall := workload.NewStallStream(batterySpec(), 10_000, 5*time.Second)
	job := harness.Job[*stats.Sim]{
		Key: "decode-stall",
		Run: func(jc *harness.JobContext) (*stats.Sim, error) {
			m, err := sim.NewMachine(config.Default())
			if err != nil {
				return nil, harness.Permanent(err)
			}
			m.EnableBeacons(batteryBeacon)
			jc.Attach(m)
			stall.Bind(jc.Context())
			res, err := m.Run([]workload.Stream{workload.Prefetch(stall)}, 10_000_000)
			if err != nil {
				return nil, err
			}
			return res.Stats, nil
		},
	}
	start := time.Now()
	_, err := harness.RunAll(o, []harness.Job[*stats.Sim]{job})
	var se *harness.StallError
	if !errors.As(err, &se) {
		t.Fatalf("want StallError from the watchdog, got: %v", err)
	}
	if se.Snapshot == "" {
		t.Error("stall report must carry a machine snapshot")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("stall detection took %v; the watchdog must bound it", elapsed)
	}
}

// resumeAfter corrupts a finished campaign's journal with damage, reruns
// the campaign, and asserts every job lands on its original beacon chain.
func resumeAfter(t *testing.T, damage func(path string)) {
	t.Helper()
	traceBytes := recordTrace(t)
	ckpt := filepath.Join(t.TempDir(), "battery.ckpt")
	jobs := func() []harness.Job[*stats.Sim] {
		return []harness.Job[*stats.Sim]{
			traceJob("quad-a", func(int) io.Reader { return bytes.NewReader(traceBytes) }),
			traceJob("quad-b", func(int) io.Reader { return bytes.NewReader(traceBytes) }),
		}
	}
	o := fastOpts()
	o.Checkpoint = ckpt
	outs, err := harness.RunAll(o, jobs())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]harness.BeaconStamp{}
	for i, out := range outs {
		if out.Beacon == nil {
			t.Fatalf("job %d missing beacon stamp", i)
		}
		want[[...]string{"quad-a", "quad-b"}[i]] = *out.Beacon
	}

	damage(ckpt)

	outs, err = harness.RunAll(o, jobs())
	if err != nil {
		t.Fatalf("resume over a damaged journal must recover: %v", err)
	}
	rerun := 0
	for i, out := range outs {
		key := [...]string{"quad-a", "quad-b"}[i]
		if !out.Cached {
			rerun++
		}
		if out.Beacon == nil || *out.Beacon != want[key] {
			t.Errorf("%s: resumed stamp %+v, want original %+v", key, out.Beacon, want[key])
		}
	}
	if rerun == 0 {
		t.Error("damage dropped no journal records; the scenario proved nothing")
	}
}

// TestBatteryCheckpointBitFlipResumes: a flipped bit in a journal record
// must be caught by its CRC; the affected jobs re-run and reproduce their
// original beacon chains exactly.
func TestBatteryCheckpointBitFlipResumes(t *testing.T) {
	resumeAfter(t, func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		header := int64(bytes.IndexByte(data, '\n') + 1)
		if _, err := chaos.FlipBitAfter(path, chaos.NewRNG(21), header); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBatteryCheckpointTruncationResumes: a journal torn mid-append (the
// crash-during-write case) must recover to its valid prefix and re-run
// whatever the tail lost.
func TestBatteryCheckpointTruncationResumes(t *testing.T) {
	resumeAfter(t, func(path string) {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Tear inside the record region so at least one record is lost.
		header := int64(0)
		if data, err := os.ReadFile(path); err == nil {
			header = int64(bytes.IndexByte(data, '\n') + 1)
		}
		if err := os.Truncate(path, header+(fi.Size()-header)/2); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBatterySlowConsumerBackpressure: a sink that dawdles on every write
// must not corrupt or drop window records — the run completes and the
// JSONL output holds one well-formed line per closed window.
func TestBatterySlowConsumerBackpressure(t *testing.T) {
	var clean bytes.Buffer
	wantChain, _ := runMetricsTo(t, &clean, func(err error) { t.Errorf("clean sink: %v", err) })
	wantLines := strings.Count(clean.String(), "\n")

	var slow bytes.Buffer
	delays := 0
	chain, _ := runMetricsTo(t, chaos.Slow(&slow, func() {
		delays++
		time.Sleep(50 * time.Microsecond)
	}), func(err error) { t.Errorf("slow sink errored: %v", err) })

	if chain != wantChain {
		t.Errorf("slow consumer perturbed the simulation: chain %016x, want %016x", chain, wantChain)
	}
	gotLines := strings.Count(slow.String(), "\n")
	if gotLines != wantLines || gotLines == 0 {
		t.Errorf("slow sink wrote %d lines, clean sink wrote %d; backpressure lost records", gotLines, wantLines)
	}
	if delays == 0 {
		t.Error("delay hook never ran; the fault was not injected")
	}
	if !bytes.Equal(slow.Bytes(), clean.Bytes()) {
		t.Error("slow sink output diverged from clean sink output")
	}
}
