// Package shard runs one logical simulation as K overlapping
// warmup+measure segments, each on its own sim.Machine, and stitches the
// per-segment statistics and window series back into a single run result.
//
// The paper's methodology simulates each (workload × policy) cell for
// 50M+100M instructions on a cluster; serially that costs minutes per
// cell at this simulator's throughput. Sharding splits the measured
// region [W, W+N) of the deterministic instruction stream into K
// contiguous segments: shard i starts consuming the stream at offset
// i·N/K, warms the microarchitectural state for W instructions of true
// stream prefix, then measures its segment. The union of the measured
// segments tiles [W, W+N) exactly — gap-free and duplicate-free — so
// event counts stitch by summation and only the warmup approximation
// (shard i's caches having seen W instructions of history instead of
// W + i·N/K) separates a stitched run from the serial reference. The
// degenerate 1-shard plan is literally the serial run, beacon chain
// included; internal/shard's differential test battery bounds the K>1
// warmup error per policy quadrant.
//
// Positioning K streams would cost O(K·N) generator work done naively;
// the split Index snapshots the generator state at every shard offset in
// one forward pass (workload.Cloner) and re-clones the snapshots for
// every run that shares the workload, so a policy sweep pays the
// positioning pass once per workload, not once per cell.
//
// Each shard runs as one job under the internal/harness supervisor:
// per-shard retries, forward-progress watchdog, and checkpoint/resume of
// completed shards through the v2 journal (keyed baseKey|shard i/K, with
// the shard's beacon stamp journaled alongside its payload).
package shard

import "fmt"

// Plan describes how one logical run splits into shards.
type Plan struct {
	// Shards is the segment count K (1 = the serial plan).
	Shards int
	// Warmup is the per-shard warmup in instructions: every shard,
	// including shard 0, warms on the W instructions of stream prefix
	// immediately preceding its measured segment.
	Warmup uint64
	// Measure is the total measured instructions across all shards.
	Measure uint64
	// FuncWarmup replays the first FuncWarmup instructions of each
	// shard's warmup prefix functionally — the hierarchy (TLBs, caches,
	// page walker, branch predictor) sees every access at generator
	// speed, but no OoO pipeline timing is simulated — leaving only the
	// remaining Warmup−FuncWarmup instructions as detailed warmup. Must
	// be < Warmup when non-zero (the detailed suffix settles timing
	// state and hosts the warmup→measure reset). 0 = fully detailed
	// warmup, the exact pre-existing behavior.
	FuncWarmup uint64
}

// Validate rejects nonsensical plans.
func (p Plan) Validate() error {
	if p.Shards < 1 {
		return fmt.Errorf("shard: plan needs at least 1 shard, got %d", p.Shards)
	}
	if p.Measure < uint64(p.Shards) {
		return fmt.Errorf("shard: measure %d < shards %d leaves empty segments", p.Measure, p.Shards)
	}
	if p.FuncWarmup > 0 && p.FuncWarmup >= p.Warmup {
		return fmt.Errorf("shard: functional warmup %d must leave a detailed warmup suffix (total warmup %d)", p.FuncWarmup, p.Warmup)
	}
	return nil
}

// Segment is one shard's slice of the stream. The shard consumes stream
// positions [Offset, Offset+FuncWarmup+Warmup+Measure): FuncWarmup
// instructions replayed functionally, Warmup instructions of detailed
// warmup, then the measured region, which in serial coordinates is
// [Offset+FuncWarmup+Warmup, Offset+FuncWarmup+Warmup+Measure).
type Segment struct {
	Index      int    `json:"index"`
	Offset     uint64 `json:"offset"`
	FuncWarmup uint64 `json:"func_warmup,omitempty"`
	Warmup     uint64 `json:"warmup"`
	Measure    uint64 `json:"measure"`
}

// warmupTotal is the stream prefix preceding the measured region.
func (s Segment) warmupTotal() uint64 { return s.FuncWarmup + s.Warmup }

// Segments lays the plan out. Boundaries are cumulative floors
// (start_i = i·Measure/Shards), so the measured segments tile
// [Warmup, Warmup+Measure) in serial coordinates with no gaps or
// overlaps by construction, and the 1-shard plan with FuncWarmup 0
// degenerates to {Offset: 0, Warmup, Measure} — exactly the serial run.
// Plan.Warmup is the total prefix; each segment's FuncWarmup slice of it
// runs functionally and the rest in detail.
func (p Plan) Segments() []Segment {
	segs := make([]Segment, p.Shards)
	k := uint64(p.Shards)
	for i := range segs {
		start := uint64(i) * p.Measure / k
		end := uint64(i+1) * p.Measure / k
		segs[i] = Segment{
			Index:      i,
			Offset:     start,
			FuncWarmup: p.FuncWarmup,
			Warmup:     p.Warmup - p.FuncWarmup,
			Measure:    end - start,
		}
	}
	return segs
}
