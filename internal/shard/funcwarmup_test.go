package shard

import (
	"strings"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/workload"
)

func TestPlanFuncWarmupValidate(t *testing.T) {
	p := Plan{Shards: 2, Warmup: 1000, FuncWarmup: 999, Measure: 2000}
	if err := p.Validate(); err != nil {
		t.Errorf("valid functional-warmup plan rejected: %v", err)
	}
	p.FuncWarmup = 1000 // no detailed suffix left
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "suffix") {
		t.Errorf("all-functional warmup accepted: %v", err)
	}
	p.FuncWarmup = 1500
	if err := p.Validate(); err == nil {
		t.Error("functional warmup beyond total warmup accepted")
	}
}

// TestSegmentsFuncWarmupSplit: Segments() splits the plan warmup into a
// functional prefix and a detailed suffix whose sum is the plan warmup,
// leaving the tiling untouched.
func TestSegmentsFuncWarmupSplit(t *testing.T) {
	p := Plan{Shards: 3, Warmup: 10_000, FuncWarmup: 8_000, Measure: 30_000}
	for i, seg := range p.Segments() {
		if seg.FuncWarmup != 8_000 || seg.Warmup != 2_000 {
			t.Errorf("segment %d warmup split %d+%d, want 8000+2000", i, seg.FuncWarmup, seg.Warmup)
		}
		if seg.warmupTotal() != p.Warmup {
			t.Errorf("segment %d total warmup %d, want %d", i, seg.warmupTotal(), p.Warmup)
		}
	}
}

// TestJobsKeyFuncWarmupSuffix: plans without functional warmup must keep
// their pre-existing checkpoint keys byte-identical; plans with it get a
// distinguishing |f suffix so a resume cannot mix the two shapes.
func TestJobsKeyFuncWarmupSuffix(t *testing.T) {
	src := testSource(t, workload.NewCatalog(120, 20).SpecNames()[0])
	cfg := Config{System: config.Default(), Plan: Plan{Shards: 2, Warmup: 100, Measure: 200}}
	jobs, err := Jobs(cfg, "base", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := jobs[0].Key, "base|shard0/2|o0|w100|m100"; got != want {
		t.Errorf("plain key %q, want %q (checkpoint keys must stay stable)", got, want)
	}
	cfg.Plan.FuncWarmup = 60
	jobs, err = Jobs(cfg, "base", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := jobs[1].Key, "base|shard1/2|o100|w40|m100|f60"; got != want {
		t.Errorf("functional-warmup key %q, want %q", got, want)
	}
}

func TestSegmentJobsRejects(t *testing.T) {
	src := testSource(t, workload.NewCatalog(120, 20).SpecNames()[0])
	cases := []struct {
		name string
		cfg  Config
		segs []Segment
		want string
	}{
		{"empty measure", Config{System: config.Default()},
			[]Segment{{Measure: 0}}, "measures nothing"},
		{"functional without detailed", Config{System: config.Default()},
			[]Segment{{FuncWarmup: 100, Measure: 100}}, "no detailed warmup"},
		{"misaligned warmup", Config{System: config.Default(), MetricsWindow: 100},
			[]Segment{{FuncWarmup: 90, Warmup: 60, Measure: 100}}, "warmup 150"},
		{"misaligned measure", Config{System: config.Default(), MetricsWindow: 100},
			[]Segment{{Warmup: 100, Measure: 150}}, "not a multiple"},
		{"multi-core", func() Config {
			c := Config{System: config.Default()}
			c.System.Cores = 2
			return c
		}(), []Segment{{Warmup: 100, Measure: 100}}, "multi-core"},
	}
	for _, tc := range cases {
		if _, err := SegmentJobs(tc.cfg, tc.segs, "k", src, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestFuncWarmupStitchedWindows: a sharded run that replays most of its
// warmup functionally must still stitch a gap-free window series at the
// exact serial coordinates, and measure the same instruction total.
func TestFuncWarmupStitchedWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates tens of thousands of instructions")
	}
	const (
		k       = 2
		warmup  = 20_000
		fw      = 15_000
		measure = 40_000
		window  = 10_000
	)
	src := testSource(t, workload.NewCatalog(120, 20).SpecNames()[0])
	cfg := Config{
		System:        config.Default(),
		Plan:          Plan{Shards: k, Warmup: warmup, FuncWarmup: fw, Measure: measure},
		MetricsWindow: window,
	}
	res, err := Run(cfg, "fw-windows", src, nil, harness.Options{})
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if got, want := res.Stats.TotalInstructions(), uint64(measure); got != want {
		t.Errorf("measured %d instructions, want %d", got, want)
	}
	if want := int(measure / window); len(res.Windows) != want {
		t.Fatalf("stitched %d windows, want %d", len(res.Windows), want)
	}
	for i, rec := range res.Windows {
		if want := arch.Instr(warmup + uint64(i+1)*window); rec.Retired != want {
			t.Errorf("window %d closed at %d retired, want %d", i, rec.Retired, want)
		}
		if rec.Instr != arch.Instr(window) {
			t.Errorf("window %d spans %d instructions, want %d", i, rec.Instr, window)
		}
	}
}

// TestFuncWarmupNearDetailed: functional warmup is an approximation of
// detailed warmup, not a replacement for it — but it must stay close. A
// sharded run replaying 3/4 of its warmup functionally must land within a
// few percent of the all-detailed sharded run's IPC.
func TestFuncWarmupNearDetailed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates hundreds of thousands of instructions")
	}
	const (
		k       = 4
		warmup  = 40_000
		measure = 120_000
	)
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[0])
	ix := NewIndex()
	base := Config{System: config.Default(), Plan: Plan{Shards: k, Warmup: warmup, Measure: measure}}
	detailed, err := Run(base, "fw-ref", src, ix, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fwCfg := base
	fwCfg.Plan.FuncWarmup = 30_000
	fw, err := Run(fwCfg, "fw-run", src, ix, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDelta(fw.IPC, detailed.IPC); d > 0.05 {
		t.Errorf("functional-warmup IPC delta %.4f > 0.05 (fw %.4f detailed %.4f)", d, fw.IPC, detailed.IPC)
	}
	t.Logf("IPC functional %.4f vs detailed %.4f (Δ%.4f)", fw.IPC, detailed.IPC, relDelta(fw.IPC, detailed.IPC))
}
