package shard

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/stats"
)

// ShardResult is one shard's contribution to a stitched run, with its
// supervision metadata.
type ShardResult struct {
	Segment  Segment
	Stats    *stats.Sim
	Beacon   *harness.BeaconStamp
	Attempts int
	Cached   bool
}

// Result is a stitched sharded run.
type Result struct {
	Plan Plan
	// Stats is the field-wise sum of the per-shard measured statistics;
	// ratio metrics (IPC, MPKI, hit rates) recompute correctly from the
	// summed events because they are pure quotients of summed counters.
	Stats *stats.Sim
	// IPC is recomputed from the stitched totals.
	IPC float64
	// Windows is the stitched window series in serial coordinates:
	// gap-free, duplicate-free, strictly monotonic in Retired, renumbered
	// from zero. Empty when the run sampled no windows.
	Windows []metrics.WindowRecord
	// Shards holds the per-shard results in segment order.
	Shards []ShardResult
}

// Beacon returns the run's deterministic-state fingerprint when the plan
// makes one meaningful: only the degenerate 1-shard plan with fully
// detailed warmup simulates the exact serial machine state, so only it
// has a serial-comparable chain (functional warmup approximates the
// warmup timing, diverging the chain even for one shard).
func (r *Result) Beacon() *harness.BeaconStamp {
	if len(r.Shards) == 1 && r.Shards[0].Segment.FuncWarmup == 0 {
		return r.Shards[0].Beacon
	}
	return nil
}

// Stitch combines per-shard outcomes (as returned by harness.RunAll over
// Jobs — an indexed slice in segment order, never map or channel-arrival
// order) into one Result. It re-verifies each payload's segment against
// the plan, so stale checkpoint payloads from a different plan are
// rejected rather than summed.
func Stitch(cfg Config, outs []harness.Outcome[*Payload]) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	segs := cfg.Plan.Segments()
	if len(outs) != len(segs) {
		return nil, fmt.Errorf("shard: %d outcomes for a %d-shard plan", len(outs), len(segs))
	}
	res := &Result{
		Plan:   cfg.Plan,
		Stats:  stats.NewSim(),
		Shards: make([]ShardResult, len(segs)),
	}
	for i, out := range outs {
		if out.Err != nil {
			return nil, fmt.Errorf("shard %d (%s): %w", i, out.Key, out.Err)
		}
		p := out.Result
		if p == nil || p.Stats == nil {
			return nil, fmt.Errorf("shard %d (%s): empty payload", i, out.Key)
		}
		if p.Segment != segs[i] {
			return nil, fmt.Errorf("shard %d: payload segment %+v does not match plan segment %+v (stale checkpoint?)", i, p.Segment, segs[i])
		}
		res.Stats.AddScaled(p.Stats, 1)
		if err := appendWindows(res, segs[i], p.Windows); err != nil {
			return nil, err
		}
		res.Shards[i] = ShardResult{
			Segment:  p.Segment,
			Stats:    p.Stats,
			Beacon:   out.Beacon,
			Attempts: out.Attempts,
			Cached:   out.Cached,
		}
	}
	res.IPC = res.Stats.IPC()
	return res, nil
}

// appendWindows rebases one shard's window series into serial
// coordinates and appends it to the stitched series. Per-shard records
// are cumulative from the shard's own stream start, so warmup windows
// (Retired within the functional+detailed warmup prefix) are dropped
// and measured windows shift by the shard's stream offset; the result is
// renumbered sequentially and checked strictly monotonic at the seam.
func appendWindows(res *Result, seg Segment, recs []metrics.WindowRecord) error {
	for _, rec := range recs {
		if rec.Retired <= arch.Instr(seg.warmupTotal()) {
			continue
		}
		rec.Retired += arch.Instr(seg.Offset)
		rec.Window = uint64(len(res.Windows))
		if n := len(res.Windows); n > 0 && rec.Retired <= res.Windows[n-1].Retired {
			return fmt.Errorf("shard %d: stitched window series not monotonic (%d after %d)", seg.Index, rec.Retired, res.Windows[n-1].Retired)
		}
		res.Windows = append(res.Windows, rec)
	}
	return nil
}

