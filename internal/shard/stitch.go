package shard

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/stats"
)

// ShardResult is one shard's contribution to a stitched run, with its
// supervision metadata.
type ShardResult struct {
	Segment  Segment
	Stats    *stats.Sim
	Beacon   *harness.BeaconStamp
	Attempts int
	Cached   bool
}

// Result is a stitched sharded run.
type Result struct {
	Plan Plan
	// Stats is the field-wise sum of the per-shard measured statistics;
	// ratio metrics (IPC, MPKI, hit rates) recompute correctly from the
	// summed events because they are pure quotients of summed counters.
	Stats *stats.Sim
	// IPC is recomputed from the stitched totals.
	IPC float64
	// Windows is the stitched window series in serial coordinates:
	// gap-free, duplicate-free, strictly monotonic in Retired, renumbered
	// from zero. Empty when the run sampled no windows.
	Windows []metrics.WindowRecord
	// Shards holds the per-shard results in segment order.
	Shards []ShardResult
}

// Beacon returns the run's deterministic-state fingerprint when the plan
// makes one meaningful: only the degenerate 1-shard plan simulates the
// exact serial machine state, so only it has a serial-comparable chain.
func (r *Result) Beacon() *harness.BeaconStamp {
	if len(r.Shards) == 1 {
		return r.Shards[0].Beacon
	}
	return nil
}

// Stitch combines per-shard outcomes (as returned by harness.RunAll over
// Jobs — an indexed slice in segment order, never map or channel-arrival
// order) into one Result. It re-verifies each payload's segment against
// the plan, so stale checkpoint payloads from a different plan are
// rejected rather than summed.
func Stitch(cfg Config, outs []harness.Outcome[*Payload]) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	segs := cfg.Plan.Segments()
	if len(outs) != len(segs) {
		return nil, fmt.Errorf("shard: %d outcomes for a %d-shard plan", len(outs), len(segs))
	}
	res := &Result{
		Plan:   cfg.Plan,
		Stats:  stats.NewSim(),
		Shards: make([]ShardResult, len(segs)),
	}
	for i, out := range outs {
		if out.Err != nil {
			return nil, fmt.Errorf("shard %d (%s): %w", i, out.Key, out.Err)
		}
		p := out.Result
		if p == nil || p.Stats == nil {
			return nil, fmt.Errorf("shard %d (%s): empty payload", i, out.Key)
		}
		if p.Segment != segs[i] {
			return nil, fmt.Errorf("shard %d: payload segment %+v does not match plan segment %+v (stale checkpoint?)", i, p.Segment, segs[i])
		}
		addSim(res.Stats, p.Stats)
		if err := appendWindows(res, segs[i], p.Windows); err != nil {
			return nil, err
		}
		res.Shards[i] = ShardResult{
			Segment:  p.Segment,
			Stats:    p.Stats,
			Beacon:   out.Beacon,
			Attempts: out.Attempts,
			Cached:   out.Cached,
		}
	}
	res.IPC = res.Stats.IPC()
	return res, nil
}

// appendWindows rebases one shard's window series into serial
// coordinates and appends it to the stitched series. Per-shard records
// are cumulative from the shard's own stream start, so warmup windows
// (Retired <= Warmup) are dropped and measured windows shift by the
// shard's stream offset; the result is renumbered sequentially and
// checked strictly monotonic at the seam.
func appendWindows(res *Result, seg Segment, recs []metrics.WindowRecord) error {
	for _, rec := range recs {
		if rec.Retired <= arch.Instr(seg.Warmup) {
			continue
		}
		rec.Retired += arch.Instr(seg.Offset)
		rec.Window = uint64(len(res.Windows))
		if n := len(res.Windows); n > 0 && rec.Retired <= res.Windows[n-1].Retired {
			return fmt.Errorf("shard %d: stitched window series not monotonic (%d after %d)", seg.Index, rec.Retired, res.Windows[n-1].Retired)
		}
		res.Windows = append(res.Windows, rec)
	}
	return nil
}

// addSim accumulates src into dst field-wise. Every counter in stats.Sim
// is a sum over measured events, so summation is exact; derived ratios
// are recomputed by the callers of the stitched Sim exactly as they are
// for a serial one.
func addSim(dst, src *stats.Sim) {
	dst.Cycles += src.Cycles
	dst.EnsureTenants(len(src.Instructions))
	dst.EnsureTenants(len(src.Cores))
	for i := range src.Instructions {
		dst.Instructions[i] += src.Instructions[i]
	}
	for i := range src.Cores {
		sc, dc := &src.Cores[i], &dst.Cores[i]
		dc.Instructions += sc.Instructions
		dc.Cycles += sc.Cycles
		dcl, scl := dc.Levels(), sc.Levels()
		for j := range dcl {
			dcl[j].Add(scl[j])
		}
		dc.InstrTransCycles += sc.InstrTransCycles
		dc.DataTransCycles += sc.DataTransCycles
	}
	dl, sl := dst.Levels(), src.Levels()
	for i := range dl {
		addLevel(dl[i], sl[i])
	}
	dst.InstrTransCycles += src.InstrTransCycles
	dst.DataTransCycles += src.DataTransCycles
	for i := range dst.PageWalks {
		dst.PageWalks[i] += src.PageWalks[i]
		dst.WalkLatSum[i] += src.WalkLatSum[i]
	}
	for i := range dst.PSCHits {
		dst.PSCHits[i] += src.PSCHits[i]
	}
	dst.XPTPEnabledWindows += src.XPTPEnabledWindows
	dst.XPTPDisabledWindows += src.XPTPDisabledWindows
	dst.DRAMAccesses += src.DRAMAccesses
	dst.STLBPrefetches += src.STLBPrefetches
}

// addLevel accumulates one cache/TLB level into another.
func addLevel(dst, src *stats.Level) {
	for b := range dst.Hits {
		dst.Hits[b] += src.Hits[b]
		dst.Misses[b] += src.Misses[b]
	}
	dst.MissLatSum += src.MissLatSum
	dst.MissLatCnt += src.MissLatCnt
}
