package shard

import (
	"fmt"
	"sync"

	"itpsim/internal/workload"
)

// Source names a deterministic stream factory. New must return a fresh
// stream producing the identical sequence on every call (the catalogue
// generators do); Name must uniquely identify that sequence — it is the
// split-index cache key and part of every shard's checkpoint key.
type Source struct {
	Name string
	New  func() workload.Stream
}

// Index caches positioned generator snapshots per (source, offsets), so
// repeated sharded runs over the same workload — a policy sweep's whole
// column — pay the serial positioning pass once. Snapshots are pristine:
// every retrieval clones them again, never consumes them. Safe for
// concurrent use.
type Index struct {
	mu sync.Mutex
	m  map[string][]workload.Stream
}

// NewIndex returns an empty split index.
func NewIndex() *Index {
	return &Index{m: make(map[string][]workload.Stream)}
}

// Streams returns one stream per offset, each positioned at its offset of
// src's serial sequence, cloned from cached snapshots when present. The
// returned streams are the caller's to consume (and are themselves
// clonable when the source is).
func (ix *Index) Streams(src Source, offsets []uint64) ([]workload.Stream, error) {
	key := fmt.Sprintf("%s|%v", src.Name, offsets)
	ix.mu.Lock()
	snaps, ok := ix.m[key]
	ix.mu.Unlock()
	if !ok {
		var cacheable bool
		var err error
		snaps, cacheable, err = position(src, offsets)
		if err != nil {
			return nil, err
		}
		if !cacheable {
			// Non-clonable source: the positioned streams are single-use,
			// so hand them over without caching.
			return snaps, nil
		}
		ix.mu.Lock()
		if prev, raced := ix.m[key]; raced {
			snaps = prev // keep the first writer's snapshots
		} else {
			ix.m[key] = snaps
		}
		ix.mu.Unlock()
	}
	out := make([]workload.Stream, len(snaps))
	for i, s := range snaps {
		c, okc := workload.CloneStream(s)
		if !okc {
			return nil, fmt.Errorf("shard: cached snapshot %d of %s is not clonable", i, src.Name)
		}
		out[i] = c
	}
	return out, nil
}

// position builds one pristine stream per offset. For clonable sources a
// single forward pass over the serial stream snapshots the generator at
// each offset (O(max offset) total); otherwise each offset costs its own
// fresh stream skipped from zero (O(sum of offsets), correct but slow).
// cacheable reports whether the returned streams are clonable snapshots.
func position(src Source, offsets []uint64) (streams []workload.Stream, cacheable bool, err error) {
	out := make([]workload.Stream, len(offsets))
	s := src.New()
	if s == nil {
		return nil, false, fmt.Errorf("shard: source %s returned a nil stream", src.Name)
	}
	if _, ok := workload.CloneStream(s); !ok {
		for i, off := range offsets {
			fresh := s // reuse the probe stream for the first offset
			if i > 0 {
				fresh = src.New()
			}
			if got := workload.Skip(fresh, off); got != off {
				return nil, false, fmt.Errorf("shard: source %s ended after %d instructions, need offset %d", src.Name, got, off)
			}
			out[i] = fresh
		}
		return out, false, nil
	}
	var pos uint64
	for i, off := range offsets {
		if off < pos {
			return nil, false, fmt.Errorf("shard: offsets not ascending (%d after %d)", off, pos)
		}
		if want := off - pos; want > 0 {
			if got := workload.Skip(s, want); got != want {
				return nil, false, fmt.Errorf("shard: source %s ended after %d instructions, need offset %d", src.Name, pos+got, off)
			}
			pos = off
		}
		c, ok := workload.CloneStream(s)
		if !ok {
			return nil, false, fmt.Errorf("shard: source %s stopped being clonable at offset %d", src.Name, off)
		}
		out[i] = c
	}
	return out, true, nil
}
