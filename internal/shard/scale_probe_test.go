package shard

import (
	"os"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/harness"
	"itpsim/internal/workload"
)

// TestScaleProbe is a development probe, not part of the battery: it
// prints serial-vs-sharded deltas across warmup geometries so the
// declared bounds can be set empirically. Enable with ITPSIM_SCALE_PROBE=1.
func TestScaleProbe(t *testing.T) {
	if os.Getenv("ITPSIM_SCALE_PROBE") == "" {
		t.Skip("probe disabled")
	}
	type geom struct {
		k       int
		warmup  uint64
		measure uint64
	}
	geoms := []geom{
		{4, 120_000, 240_000},
		{8, 150_000, 2_000_000},
	}
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[0])
	ix := NewIndex()
	for _, g := range geoms {
		for _, q := range quadrants {
			sys := quadrantConfig(q)
			serial, _, _ := serialRun(t, sys, src, g.warmup, g.measure, 0)
			cfg := Config{System: sys, Plan: Plan{Shards: g.k, Warmup: g.warmup, Measure: g.measure}}
			res, err := Run(cfg, "probe", src, ix, harness.Options{})
			if err != nil {
				t.Fatal(err)
			}
			instr := serial.TotalInstructions()
			sInstr := res.Stats.TotalInstructions()
			t.Logf("k=%d w=%dk n=%dk %-9s  ΔIPC=%.4f  ΔMPKI=%.4f  Δwalk(i)=%.4f Δwalk(d)=%.4f",
				g.k, g.warmup/1000, g.measure/1000, q.name,
				relDelta(res.IPC, serial.IPC()),
				mpkiDelta(res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr)),
				relDelta(res.Stats.AvgWalkLatency(arch.InstrClass), serial.AvgWalkLatency(arch.InstrClass)),
				relDelta(res.Stats.AvgWalkLatency(arch.DataClass), serial.AvgWalkLatency(arch.DataClass)))
		}
	}
}
