package shard

import (
	"strings"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// TestSegmentsTile: the stitching precondition, as a property over a grid
// of plan shapes — segments must tile the measured region gap-free,
// duplicate-free, and in ascending order, and the 1-shard plan must
// degenerate to the serial run.
func TestSegmentsTile(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 64} {
		for _, n := range []uint64{uint64(k), 100, 999, 1000, 1 << 20, 2_000_000, 2_000_001} {
			if n < uint64(k) {
				continue
			}
			p := Plan{Shards: k, Warmup: 12345, Measure: n}
			if err := p.Validate(); err != nil {
				t.Fatalf("plan %+v: %v", p, err)
			}
			segs := p.Segments()
			if len(segs) != k {
				t.Fatalf("plan %+v: %d segments", p, len(segs))
			}
			var next, total uint64
			for i, seg := range segs {
				if seg.Index != i {
					t.Fatalf("plan %+v: segment %d has index %d", p, i, seg.Index)
				}
				if seg.Offset != next {
					t.Fatalf("plan %+v: segment %d offset %d, want %d (gap or overlap)", p, i, seg.Offset, next)
				}
				if seg.Measure == 0 {
					t.Fatalf("plan %+v: segment %d is empty", p, i)
				}
				if seg.Warmup != p.Warmup {
					t.Fatalf("plan %+v: segment %d warmup %d", p, i, seg.Warmup)
				}
				next = seg.Offset + seg.Measure
				total += seg.Measure
			}
			if total != n {
				t.Fatalf("plan %+v: segments measure %d of %d", p, total, n)
			}
			if k == 1 && (segs[0].Offset != 0 || segs[0].Measure != n) {
				t.Fatalf("1-shard plan is not the serial run: %+v", segs[0])
			}
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Shards: 0, Measure: 10}).Validate(); err == nil {
		t.Error("0-shard plan validated")
	}
	if err := (Plan{Shards: 4, Measure: 3}).Validate(); err == nil {
		t.Error("measure < shards validated")
	}
}

func TestConfigWindowAlignment(t *testing.T) {
	base := Config{Plan: Plan{Shards: 4, Warmup: 1000, Measure: 4000}, MetricsWindow: 500}
	if err := base.validate(); err != nil {
		t.Errorf("aligned config rejected: %v", err)
	}
	bad := base
	bad.Plan.Warmup = 1100
	if err := bad.validate(); err == nil || !strings.Contains(err.Error(), "warmup") {
		t.Errorf("misaligned warmup accepted: %v", err)
	}
	bad = base
	bad.Plan.Measure = 4500 // segments of 1125 are not window multiples
	if err := bad.validate(); err == nil || !strings.Contains(err.Error(), "segment") {
		t.Errorf("misaligned segment accepted: %v", err)
	}
}

// windowedRun runs a small sharded simulation with window sampling on.
func windowedRun(t *testing.T, k int, warmup, measure, window uint64) *Result {
	t.Helper()
	src := testSource(t, workload.NewCatalog(120, 20).SpecNames()[0])
	cfg := Config{
		System:        config.Default(),
		Plan:          Plan{Shards: k, Warmup: warmup, Measure: measure},
		MetricsWindow: window,
	}
	res, err := Run(cfg, "windows", src, nil, harness.Options{})
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return res
}

// TestStitchedWindowProperties: the stitched window series must be
// gap-free, duplicate-free, and strictly monotonic in retired
// instructions — in serial coordinates, exactly the windows the serial
// run would have closed over the measured region.
func TestStitchedWindowProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates hundreds of thousands of instructions")
	}
	const (
		k       = 4
		warmup  = 20_000
		measure = 120_000
		window  = 10_000
	)
	res := windowedRun(t, k, warmup, measure, window)
	if want := int(measure / window); len(res.Windows) != want {
		t.Fatalf("stitched %d windows, want %d", len(res.Windows), want)
	}
	for i, rec := range res.Windows {
		if rec.Window != uint64(i) {
			t.Errorf("window %d numbered %d: series must be renumbered sequentially", i, rec.Window)
		}
		// Gap-free and duplicate-free: window i closes at exactly
		// warmup + (i+1)·window in serial retired-instruction coordinates.
		if want := arch.Instr(warmup + uint64(i+1)*window); rec.Retired != want {
			t.Errorf("window %d closed at %d retired, want %d", i, rec.Retired, want)
		}
		if rec.Instr != arch.Instr(window) {
			t.Errorf("window %d spans %d instructions, want %d", i, rec.Instr, window)
		}
		if i > 0 && rec.Retired <= res.Windows[i-1].Retired {
			t.Errorf("window %d not monotonic: %d after %d", i, rec.Retired, res.Windows[i-1].Retired)
		}
	}
}

// TestStitchRejects: stitching must reject outcome sets that do not match
// the plan instead of summing garbage.
func TestStitchRejects(t *testing.T) {
	cfg := Config{Plan: Plan{Shards: 2, Warmup: 10, Measure: 100}}
	segs := cfg.Plan.Segments()
	good := func() []harness.Outcome[*Payload] {
		outs := make([]harness.Outcome[*Payload], len(segs))
		for i, seg := range segs {
			outs[i] = harness.Outcome[*Payload]{
				Key:    "k",
				Result: &Payload{Segment: seg, Stats: statsFor(seg)},
			}
		}
		return outs
	}
	if _, err := Stitch(cfg, good()); err != nil {
		t.Fatalf("valid outcomes rejected: %v", err)
	}

	short := good()[:1]
	if _, err := Stitch(cfg, short); err == nil {
		t.Error("short outcome set accepted")
	}
	failed := good()
	failed[1].Err = errTest
	if _, err := Stitch(cfg, failed); err == nil {
		t.Error("failed shard accepted")
	}
	empty := good()
	empty[0].Result = nil
	if _, err := Stitch(cfg, empty); err == nil {
		t.Error("nil payload accepted")
	}
	stale := good()
	stale[1].Result.Segment.Offset++ // a checkpoint from a different plan
	if _, err := Stitch(cfg, stale); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("stale-plan payload accepted: %v", err)
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }

// statsFor fabricates a payload Sim for stitch unit tests.
func statsFor(seg Segment) *stats.Sim {
	s := stats.NewSim()
	s.Cycles = arch.Cycle(seg.Measure * 2)
	s.Instructions[0] = seg.Measure
	s.STLB.Misses[0] = seg.Measure / 10
	return s
}

// TestStitchSums: summation is exact — the stitched counters are the
// field-wise sums of the shard counters and ratio metrics recompute from
// them.
func TestStitchSums(t *testing.T) {
	cfg := Config{Plan: Plan{Shards: 3, Warmup: 5, Measure: 300}}
	segs := cfg.Plan.Segments()
	outs := make([]harness.Outcome[*Payload], len(segs))
	for i, seg := range segs {
		outs[i] = harness.Outcome[*Payload]{Result: &Payload{Segment: seg, Stats: statsFor(seg)}}
	}
	res, err := Stitch(cfg, outs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalInstructions() != 300 {
		t.Errorf("instructions %d, want 300", res.Stats.TotalInstructions())
	}
	if res.Stats.Cycles != 600 {
		t.Errorf("cycles %d, want 600", res.Stats.Cycles)
	}
	if res.IPC != 0.5 {
		t.Errorf("IPC %f, want 0.5", res.IPC)
	}
	if got := res.Stats.STLB.Misses[0]; got != 30 {
		t.Errorf("summed STLB misses %d, want 30", got)
	}
}

// TestIndexReuse: retrieving the same (source, offsets) twice must return
// fresh streams both times — consuming the first retrieval cannot perturb
// the second — and the second retrieval must not redo the positioning
// pass (observable: both retrievals produce identical sequences).
func TestIndexReuse(t *testing.T) {
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[2])
	ix := NewIndex()
	offsets := []uint64{0, 5_000, 12_288}

	first, err := ix.Streams(src, offsets)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the first retrieval completely before asking again.
	drained := make([][]workload.Instr, len(first))
	for i, s := range first {
		drained[i] = make([]workload.Instr, 2048)
		workload.FillBatch(s, drained[i])
	}
	second, err := ix.Streams(src, offsets)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range second {
		got := make([]workload.Instr, 2048)
		workload.FillBatch(s, got)
		for j := range got {
			if got[j] != drained[i][j] {
				t.Fatalf("offset %d: cached snapshot perturbed at instr %d", offsets[i], j)
			}
		}
	}
}

// opaque hides a stream's Cloner so the non-clonable fallback is
// exercised with a real deterministic generator underneath.
type opaque struct{ inner workload.Stream }

func (o *opaque) Next(in *workload.Instr) bool { return o.inner.Next(in) }

// TestIndexNonClonable: a non-clonable source still positions correctly
// via the per-offset skip fallback, and is handed over uncached.
func TestIndexNonClonable(t *testing.T) {
	base := testSource(t, workload.NewCatalog(120, 20).SpecNames()[1])
	src := Source{Name: "opaque", New: func() workload.Stream { return &opaque{inner: base.New()} }}
	ix := NewIndex()
	offsets := []uint64{100, 4_000}

	streams, err := ix.Streams(src, offsets)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range offsets {
		want := make([]workload.Instr, int(off)+256)
		workload.FillBatch(base.New(), want)
		got := make([]workload.Instr, 256)
		workload.FillBatch(streams[i], got)
		for j := range got {
			if got[j] != want[off:][j] {
				t.Fatalf("offset %d: fallback positioning diverged at instr %d", off, j)
			}
		}
	}
}

// TestPositionRejects: positioning errors are reported, not mangled.
func TestPositionRejects(t *testing.T) {
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[0])
	if _, _, err := position(src, []uint64{100, 50}); err == nil {
		t.Error("descending offsets accepted")
	}
	nilSrc := Source{Name: "nil", New: func() workload.Stream { return nil }}
	if _, _, err := position(nilSrc, []uint64{0}); err == nil {
		t.Error("nil stream accepted")
	}
	short := Source{Name: "short", New: func() workload.Stream {
		return workload.Limit(src.New(), 10)
	}}
	if _, _, err := position(short, []uint64{100}); err == nil {
		t.Error("offset past stream end accepted")
	}
}
