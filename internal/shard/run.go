package shard

import (
	"fmt"

	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// Config describes one sharded simulation.
type Config struct {
	// System is the machine configuration every shard runs.
	System config.SystemConfig
	// Plan is the shard layout.
	Plan Plan
	// BeaconInterval arms per-shard deterministic state beacons every N
	// retired instructions (0 = off). Each shard's final chain is sampled
	// by the harness and journaled with its checkpoint record; in the
	// 1-shard plan the single chain is bit-identical to the serial run's.
	BeaconInterval uint64
	// Audit arms the periodic structural invariant auditor on every shard
	// machine (at its default interval).
	Audit bool
	// MetricsWindow sizes the per-shard window series in retired
	// instructions (0 = no window series). When set, the per-shard warmup
	// and every segment length must be window multiples so the stitched
	// series stays gap-free across shard boundaries; Jobs rejects
	// misaligned plans.
	MetricsWindow uint64
}

// validate extends Plan validation with the window-alignment rule.
func (c Config) validate() error {
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.System.Cores > 1 {
		// A sharded run splits ONE stream's measured region; a CMP run
		// interleaves N streams whose interference must be simulated
		// whole (like SMT pairs, which the callers also run unsharded).
		return fmt.Errorf("shard: multi-core runs (Cores=%d) must run whole; sharding splits a single stream", c.System.Cores)
	}
	if w := c.MetricsWindow; w > 0 {
		if c.Plan.Warmup%w != 0 {
			return fmt.Errorf("shard: warmup %d is not a multiple of the %d-instruction metrics window", c.Plan.Warmup, w)
		}
		for _, seg := range c.Plan.Segments() {
			if seg.Measure%w != 0 {
				return fmt.Errorf("shard: segment %d measures %d instructions, not a multiple of the %d-instruction metrics window", seg.Index, seg.Measure, w)
			}
		}
	}
	return nil
}

// Payload is the journaled result of one shard job: the segment it
// simulated (stitching re-verifies it against the plan, so a checkpoint
// from a different plan cannot be stitched silently), the measured
// statistics, and the window series when sampling was armed.
type Payload struct {
	Segment Segment                `json:"segment"`
	Stats   *stats.Sim             `json:"stats"`
	Windows []metrics.WindowRecord `json:"windows,omitempty"`
}

// Jobs builds one supervised harness job per segment of cfg.Plan, in
// segment order. Job keys are baseKey|shard i/K|o…w…m…, stable across
// processes for checkpoint resume. Positioning happens eagerly here (one
// serial pass, through ix when non-nil so repeated runs reuse snapshots);
// each job re-clones its pristine stream per attempt, so retries replay
// the identical segment.
func Jobs(cfg Config, baseKey string, src Source, ix *Index) ([]harness.Job[*Payload], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return SegmentJobs(cfg, cfg.Plan.Segments(), baseKey, src, ix)
}

// SegmentJobs builds one supervised job per segment — the job engine
// behind Jobs (plan tilings) and internal/sample (representative
// intervals, which are arbitrary window slices rather than a uniform
// tiling). Segments must be offset-ascending; each is validated for
// window alignment and functional-warmup shape independently of any
// Plan. Keys append |f<n> only for segments with functional warmup, so
// pre-existing checkpoint keys stay stable.
func SegmentJobs(cfg Config, segs []Segment, baseKey string, src Source, ix *Index) ([]harness.Job[*Payload], error) {
	if cfg.System.Cores > 1 {
		return nil, fmt.Errorf("shard: multi-core runs (Cores=%d) must run whole; segment jobs split a single stream", cfg.System.Cores)
	}
	offsets := make([]uint64, len(segs))
	for i, seg := range segs {
		if seg.Measure == 0 {
			return nil, fmt.Errorf("shard: segment %d measures nothing", seg.Index)
		}
		if seg.FuncWarmup > 0 && seg.Warmup == 0 {
			return nil, fmt.Errorf("shard: segment %d has functional warmup %d but no detailed warmup suffix", seg.Index, seg.FuncWarmup)
		}
		if w := cfg.MetricsWindow; w > 0 {
			if seg.warmupTotal()%w != 0 {
				return nil, fmt.Errorf("shard: segment %d warmup %d is not a multiple of the %d-instruction metrics window", seg.Index, seg.warmupTotal(), w)
			}
			if seg.Measure%w != 0 {
				return nil, fmt.Errorf("shard: segment %d measures %d instructions, not a multiple of the %d-instruction metrics window", seg.Index, seg.Measure, w)
			}
		}
		offsets[i] = seg.Offset
	}
	var pristine []workload.Stream
	var err error
	if ix != nil {
		pristine, err = ix.Streams(src, offsets)
	} else {
		pristine, _, err = position(src, offsets)
	}
	if err != nil {
		return nil, err
	}

	jobs := make([]harness.Job[*Payload], len(segs))
	for i := range segs {
		seg := segs[i]
		base := pristine[i]
		key := fmt.Sprintf("%s|shard%d/%d|o%d|w%d|m%d",
			baseKey, seg.Index, len(segs), seg.Offset, seg.Warmup, seg.Measure)
		if seg.FuncWarmup > 0 {
			key += fmt.Sprintf("|f%d", seg.FuncWarmup)
		}
		jobs[i] = harness.Job[*Payload]{
			Key: key,
			Run: func(jc *harness.JobContext) (*Payload, error) {
				s, err := segmentStream(base, src, seg, jc.Attempt())
				if err != nil {
					return nil, err
				}
				return runSegment(cfg, seg, s, jc)
			},
		}
	}
	return jobs, nil
}

// segmentStream yields the stream one attempt consumes. Clonable bases
// are re-cloned per attempt; a non-clonable base is single-use, so
// retries reposition a fresh stream from the source.
func segmentStream(base workload.Stream, src Source, seg Segment, attempt int) (workload.Stream, error) {
	if c, ok := workload.CloneStream(base); ok {
		return c, nil
	}
	if attempt == 0 {
		return base, nil
	}
	fresh := src.New()
	if got := workload.Skip(fresh, seg.Offset); got != seg.Offset {
		return nil, harness.Permanent(fmt.Errorf("shard: source %s ended after %d instructions repositioning for retry, need offset %d", src.Name, got, seg.Offset))
	}
	return fresh, nil
}

// runSegment simulates one positioned segment on a fresh machine under
// the supervisor: the machine is attached for watchdog sampling and
// cooperative kills, and fed through decode-ahead ingestion like every
// other run path.
func runSegment(cfg Config, seg Segment, s workload.Stream, jc *harness.JobContext) (*Payload, error) {
	m, err := sim.NewMachine(cfg.System)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	var w *metrics.Windows
	if cfg.MetricsWindow > 0 {
		w = m.InstrumentMetrics(metrics.NewRegistry(), cfg.MetricsWindow)
	}
	if cfg.BeaconInterval > 0 {
		m.EnableBeacons(cfg.BeaconInterval)
	}
	if cfg.Audit {
		m.EnableAudit(0)
	}
	if jc != nil {
		jc.Attach(m)
	}
	p := workload.Prefetch(s)
	defer p.Close()
	if seg.FuncWarmup > 0 {
		if err := m.WarmFunctional(p, seg.FuncWarmup); err != nil {
			return nil, err
		}
	}
	res, err := m.RunWarmup([]workload.Stream{p}, seg.Warmup, seg.Measure)
	if err != nil {
		return nil, err
	}
	pl := &Payload{Segment: seg, Stats: res.Stats}
	if w != nil {
		pl.Windows = w.Records()
	}
	return pl, nil
}

// Run executes the whole plan under the harness supervisor and stitches
// the outcome: Jobs + harness.RunAll + Stitch. opts.Parallelism defaults
// to the shard count (the scheduler caps real parallelism at GOMAXPROCS);
// any failed shard fails the run with the harness's joined error.
func Run(cfg Config, baseKey string, src Source, ix *Index, opts harness.Options) (*Result, error) {
	jobs, err := Jobs(cfg, baseKey, src, ix)
	if err != nil {
		return nil, err
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = len(jobs)
	}
	outs, err := harness.RunAll(opts, jobs)
	if err != nil {
		return nil, err
	}
	return Stitch(cfg, outs)
}
