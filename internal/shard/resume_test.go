package shard

import (
	"path/filepath"
	"reflect"
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/workload"
)

// Checkpoint-resume property tests: for an arbitrary partially-completed
// shard set, resuming against the same journal must recall exactly the
// journaled shards (no re-simulation, no misses), the recalled beacon
// stamps must match what an uninterrupted run produces, and the stitched
// result must be identical either way.

// resumeConfig is a small 4-shard run with beacons armed so stamps are
// journaled alongside each payload.
func resumeConfig() Config {
	return Config{
		System:         config.Default(),
		Plan:           Plan{Shards: 4, Warmup: 10_000, Measure: 60_000},
		BeaconInterval: 5_000,
	}
}

func TestResumePartialShardSets(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates hundreds of thousands of instructions")
	}
	cfg := resumeConfig()
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[3])
	ix := NewIndex()

	// The uninterrupted reference: no checkpoint at all.
	ref, err := Run(cfg, "resume", src, ix, harness.Options{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	subsets := [][]int{{}, {0}, {3}, {1, 2}, {0, 1, 2, 3}}
	for _, done := range subsets {
		ckpt := filepath.Join(t.TempDir(), "shards.ckpt")

		// Phase 1: the "interrupted campaign" — only the shards in done
		// complete and reach the journal.
		if len(done) > 0 {
			jobs, err := Jobs(cfg, "resume", src, ix)
			if err != nil {
				t.Fatalf("jobs: %v", err)
			}
			partial := make([]harness.Job[*Payload], 0, len(done))
			for _, i := range done {
				partial = append(partial, jobs[i])
			}
			if _, err := harness.RunAll(harness.Options{Parallelism: len(partial), Checkpoint: ckpt}, partial); err != nil {
				t.Fatalf("partial run %v: %v", done, err)
			}
		}

		// Phase 2: the full resumed run against the same journal.
		res, err := Run(cfg, "resume", src, ix, harness.Options{Checkpoint: ckpt})
		if err != nil {
			t.Fatalf("resumed run %v: %v", done, err)
		}

		cached := make(map[int]bool, len(done))
		for _, i := range done {
			cached[i] = true
		}
		for i, sh := range res.Shards {
			if sh.Cached != cached[i] {
				t.Errorf("subset %v: shard %d cached=%v, want %v — resume must skip exactly the journaled shards",
					done, i, sh.Cached, cached[i])
			}
			if sh.Beacon == nil {
				t.Errorf("subset %v: shard %d has no beacon stamp", done, i)
				continue
			}
			want := ref.Shards[i].Beacon
			if want == nil {
				t.Fatalf("reference shard %d has no beacon stamp", i)
			}
			if *sh.Beacon != *want {
				t.Errorf("subset %v: shard %d beacon %#x/%d, reference %#x/%d — journaled stamps must verify against a fresh run",
					done, i, sh.Beacon.Chain, sh.Beacon.Count, want.Chain, want.Count)
			}
		}
		if !reflect.DeepEqual(res.Stats, ref.Stats) {
			t.Errorf("subset %v: resumed stitched stats differ from uninterrupted run", done)
		}
		if res.IPC != ref.IPC {
			t.Errorf("subset %v: resumed IPC %f, reference %f", done, res.IPC, ref.IPC)
		}
	}
}

// TestResumeStalePlanRejected: a journal written under one plan must not
// be stitched into a different plan — the per-shard keys embed the
// segment geometry, so a reshaped plan misses the journal entirely and
// re-simulates rather than mixing stale payloads in.
func TestResumeStalePlanRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates hundreds of thousands of instructions")
	}
	cfg := resumeConfig()
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[3])
	ix := NewIndex()
	ckpt := filepath.Join(t.TempDir(), "shards.ckpt")

	if _, err := Run(cfg, "stale", src, ix, harness.Options{Checkpoint: ckpt}); err != nil {
		t.Fatalf("first run: %v", err)
	}

	reshaped := cfg
	reshaped.Plan.Shards = 2
	res, err := Run(reshaped, "stale", src, ix, harness.Options{Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("reshaped run: %v", err)
	}
	for i, sh := range res.Shards {
		if sh.Cached {
			t.Errorf("reshaped shard %d recalled a 4-shard journal entry", i)
		}
	}
}
