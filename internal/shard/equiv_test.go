package shard

import (
	"math"
	"os"
	"reflect"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// The differential battery: serial-vs-sharded equivalence across the four
// policy quadrants of the paper's design space (baseline LRU, the iTP
// STLB policy, the xPTP L2 policy, and both together). The sharded run
// approximates the serial one only through per-shard warmup, so the
// deltas below are the declared error bounds of the sharding methodology;
// DESIGN.md §12 and the README table document them. The degenerate
// 1-shard plan is exact and is asserted beacon-chain-identical.

// quadrant is one corner of the policy design space.
type quadrant struct {
	name string
	stlb string
	l2c  string
}

var quadrants = []quadrant{
	{"lru-lru", "lru", "lru"},
	{"itp-lru", "itp", "lru"},
	{"lru-xptp", "lru", "xptp"},
	{"itp-xptp", "itp", "xptp"},
}

// bounds are the declared serial-vs-sharded error bounds for one battery
// geometry, as relative deltas (mpki floored, see mpkiDelta). The sharded
// run's only approximation is warmup — shard i sees W instructions of
// true stream prefix instead of W + i·N/K — so the bounds depend on the
// warmup:measure ratio and are declared per geometry, at roughly 1.5-2×
// the worst delta measured across the quadrants (methodology and the
// measured values: DESIGN.md §12; the same table is in the README).
// Data-class walk latency is a sanity bound only: its events are few and
// their latency is dominated by serial cache warmth, so it degrades
// fastest as measure outgrows warmup.
type bounds struct {
	ipc      float64 // |IPC_shard/IPC_serial - 1|
	mpki     float64 // relative STLB demand-MPKI delta
	walkLat  float64 // relative mean instruction-PTW-latency delta
	walkLatD float64 // relative mean data-PTW-latency delta (sanity bound)
}

// scale is one battery geometry with its declared bounds.
type scale struct {
	shards  int
	warmup  uint64
	measure uint64
	b       bounds
}

// equivScale returns the battery geometry: CI scale by default, the
// issue's 8-shard 2M-instruction full scale under ITPSIM_EQUIV_SCALE=full
// (make equiv).
func equivScale() scale {
	if os.Getenv("ITPSIM_EQUIV_SCALE") == "full" {
		// Measured worst deltas: IPC 0.107, MPKI 0.045, walk(i) 0.216,
		// walk(d) 0.823.
		return scale{8, 150_000, 2_000_000, bounds{ipc: 0.15, mpki: 0.09, walkLat: 0.35, walkLatD: 1.20}}
	}
	// Measured worst deltas: IPC 0.056, MPKI 0.025, walk(i) 0.072,
	// walk(d) 0.163.
	return scale{4, 120_000, 240_000, bounds{ipc: 0.10, mpki: 0.06, walkLat: 0.15, walkLatD: 0.25}}
}

// testSource adapts a catalogue workload into a shard Source.
func testSource(t testing.TB, name string) Source {
	t.Helper()
	spec, err := workload.NewCatalog(120, 20).Get(name)
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	return Source{Name: name, New: spec.NewStream}
}

// quadrantConfig builds the system configuration of one quadrant.
func quadrantConfig(q quadrant) config.SystemConfig {
	cfg := config.Default()
	cfg.STLBPolicy = q.stlb
	cfg.L2CPolicy = q.l2c
	return cfg
}

// serialRun is the reference: one machine, one stream, the plain
// RunWarmup path every other test in the repo uses.
func serialRun(t testing.TB, sys config.SystemConfig, src Source, warmup, measure, beaconInterval uint64) (*stats.Sim, uint64, uint64) {
	t.Helper()
	m, err := sim.NewMachine(sys)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	if beaconInterval > 0 {
		m.EnableBeacons(beaconInterval)
	}
	p := workload.Prefetch(src.New())
	defer p.Close()
	res, err := m.RunWarmup([]workload.Stream{p}, warmup, measure)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	chain, count := m.BeaconChain()
	return res.Stats, chain, count
}

// relDelta is |a/b - 1| with b the reference.
func relDelta(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a/b - 1)
}

// mpkiDelta compares MPKIs with an absolute floor: below 0.05 MPKI the
// event counts are tens per million instructions and a relative bound is
// meaningless noise.
func mpkiDelta(a, b float64) float64 {
	if b < 0.05 && a < 0.05 {
		return 0
	}
	return relDelta(a, b)
}

// TestDifferentialEquivalence is the battery headline: for every policy
// quadrant, a K-shard run must agree with the serial run within the
// declared bounds on IPC, STLB MPKI, and mean page-walk latency.
func TestDifferentialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery simulates millions of instructions")
	}
	sc := equivScale()
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[0])
	ix := NewIndex()
	for _, q := range quadrants {
		t.Run(q.name, func(t *testing.T) {
			sys := quadrantConfig(q)
			serial, _, _ := serialRun(t, sys, src, sc.warmup, sc.measure, 0)

			cfg := Config{System: sys, Plan: Plan{Shards: sc.shards, Warmup: sc.warmup, Measure: sc.measure}}
			res, err := Run(cfg, "equiv|"+q.name, src, ix, harness.Options{})
			if err != nil {
				t.Fatalf("sharded run: %v", err)
			}

			if got, want := res.Stats.TotalInstructions(), serial.TotalInstructions(); got != want {
				t.Errorf("stitched instructions %d, serial %d: segments must tile the measured region exactly", got, want)
			}
			if d := relDelta(res.IPC, serial.IPC()); d > sc.b.ipc {
				t.Errorf("IPC delta %.4f > bound %.4f (shard %.4f serial %.4f)", d, sc.b.ipc, res.IPC, serial.IPC())
			}
			instr := serial.TotalInstructions()
			sInstr := res.Stats.TotalInstructions()
			if d := mpkiDelta(res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr)); d > sc.b.mpki {
				t.Errorf("STLB MPKI delta %.4f > bound %.4f (shard %.3f serial %.3f)",
					d, sc.b.mpki, res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr))
			}
			classBounds := [2]float64{arch.InstrClass: sc.b.walkLat, arch.DataClass: sc.b.walkLatD}
			for _, class := range []arch.Class{arch.InstrClass, arch.DataClass} {
				if d := relDelta(res.Stats.AvgWalkLatency(class), serial.AvgWalkLatency(class)); d > classBounds[class] {
					t.Errorf("class-%d PTW latency delta %.4f > bound %.4f (shard %.1f serial %.1f)",
						class, d, classBounds[class], res.Stats.AvgWalkLatency(class), serial.AvgWalkLatency(class))
				}
			}
			t.Logf("%s: IPC %.4f/%.4f (Δ%.4f)  STLB MPKI %.3f/%.3f  walk-lat %.1f/%.1f",
				q.name, res.IPC, serial.IPC(), relDelta(res.IPC, serial.IPC()),
				res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr),
				res.Stats.AvgWalkLatency(arch.InstrClass), serial.AvgWalkLatency(arch.InstrClass))
		})
	}
}

// TestOneShardExact: the degenerate 1-shard plan is not an approximation
// — it must reproduce the serial run bit-exactly, beacon chain included,
// for every quadrant.
func TestOneShardExact(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates millions of instructions")
	}
	sc := equivScale()
	warmup, measure := sc.warmup, sc.measure
	const beacon = 50_000
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[1])
	ix := NewIndex()
	for _, q := range quadrants {
		t.Run(q.name, func(t *testing.T) {
			sys := quadrantConfig(q)
			serial, chain, count := serialRun(t, sys, src, warmup, measure, beacon)

			cfg := Config{
				System:         sys,
				Plan:           Plan{Shards: 1, Warmup: warmup, Measure: measure},
				BeaconInterval: beacon,
			}
			res, err := Run(cfg, "exact|"+q.name, src, ix, harness.Options{})
			if err != nil {
				t.Fatalf("1-shard run: %v", err)
			}
			if !reflect.DeepEqual(res.Stats, serial) {
				t.Errorf("1-shard stats differ from serial:\nshard:  %vserial: %v", res.Stats, serial)
			}
			stamp := res.Beacon()
			if stamp == nil {
				t.Fatal("1-shard result has no beacon stamp")
			}
			if stamp.Chain != chain || stamp.Count != count {
				t.Errorf("beacon chain %#x/%d, serial %#x/%d: 1-shard mode must be state-identical",
					stamp.Chain, stamp.Count, chain, count)
			}
		})
	}
}

// TestMultiShardNoBeacon: a K>1 result has no serial-comparable beacon.
func TestMultiShardNoBeacon(t *testing.T) {
	r := &Result{Shards: make([]ShardResult, 3)}
	if r.Beacon() != nil {
		t.Fatal("multi-shard result claimed a serial-comparable beacon")
	}
}
