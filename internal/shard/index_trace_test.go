package shard

import (
	"os"
	"path/filepath"
	"testing"

	"itpsim/internal/trace"
	"itpsim/internal/workload"
)

// TestIndexTraceReaderPositioning: a trace.Reader is the real non-Cloner
// stream in the system (a streaming gzip decoder cannot be snapshotted),
// so the Index must fall back to the per-offset Skip path — and that path
// must yield instruction sequences identical to the clonable in-memory
// replay of the same trace at every offset.
func TestIndexTraceReaderPositioning(t *testing.T) {
	const n = 8192
	gen := testSource(t, workload.NewCatalog(120, 20).ServerNames()[3])

	path := filepath.Join(t.TempDir(), "probe.itpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := trace.Record(w, gen.New(), n); err != nil || got != n {
		t.Fatalf("recorded %d/%d instructions: %v", got, n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	traceSrc := Source{Name: "trace", New: func() workload.Stream {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("reopen trace: %v", err)
		}
		t.Cleanup(func() { f.Close() })
		r, err := trace.NewReader(f)
		if err != nil {
			t.Fatalf("trace reader: %v", err)
		}
		return r
	}}
	if _, clonable := workload.CloneStream(traceSrc.New()); clonable {
		t.Fatal("trace.Reader became clonable; this test no longer covers the fallback path")
	}

	// Clonable reference: the same trace decoded into an in-memory replay.
	instrs := make([]workload.Instr, n)
	if got := workload.FillBatch(traceSrc.New(), instrs); got != n {
		t.Fatalf("replayed %d/%d instructions", got, n)
	}
	replaySrc := Source{Name: "replay", New: func() workload.Stream {
		return &workload.Replay{Instrs: instrs}
	}}

	offsets := []uint64{0, 1, 100, 4095, 8000}
	ix := NewIndex()
	got, err := ix.Streams(traceSrc, offsets)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewIndex().Streams(replaySrc, offsets)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range offsets {
		g := make([]workload.Instr, 128)
		e := make([]workload.Instr, 128)
		workload.FillBatch(got[i], g)
		workload.FillBatch(want[i], e)
		for j := range g {
			if g[j] != e[j] {
				t.Fatalf("offset %d: trace-backed skip positioning diverged from clone path at instr %d", off, j)
			}
		}
	}
}
