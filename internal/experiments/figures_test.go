package experiments

import "testing"

// These smoke tests run every remaining figure at miniature scale so each
// sweep's wiring (configs, series, labels) is exercised in CI.

func TestFig3Runs(t *testing.T) {
	res, err := Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for _, r := range res.Rows {
		series[r.Series] = true
	}
	for _, want := range []string{"P=0.2", "P=0.4", "P=0.6", "P=0.8"} {
		if !series[want] {
			t.Errorf("missing series %s", want)
		}
	}
}

func TestFig4Runs(t *testing.T) {
	res, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, r := range res.Rows {
		labels[r.Label] = true
	}
	for _, want := range []string{"L2C dMPKI", "L2C dtMPKI", "LLC itMPKI"} {
		if !labels[want] {
			t.Errorf("missing label %s", want)
		}
	}
	// 2 policies x 2 levels x 4 buckets.
	if len(res.Rows) != 16 {
		t.Errorf("rows = %d, want 16", len(res.Rows))
	}
}

func TestFig9Runs(t *testing.T) {
	res, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Extra["avg-miss-latency"] < 0 {
			t.Errorf("negative latency in %s/%s", r.Series, r.Label)
		}
	}
	// (1 baseline + 9 combos) x 2 modes x 3 levels.
	if len(res.Rows) != 60 {
		t.Errorf("rows = %d, want 60", len(res.Rows))
	}
}

func TestFig11Runs(t *testing.T) {
	res, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 2 proposals x 3 LLC policies x 2 modes.
	if len(res.Rows) != 12 {
		t.Errorf("rows = %d, want 12", len(res.Rows))
	}
}

func TestFig12Runs(t *testing.T) {
	res, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 2 proposals x 4 sizes x 2 modes.
	if len(res.Rows) != 16 {
		t.Errorf("rows = %d, want 16", len(res.Rows))
	}
}

func TestFig13Runs(t *testing.T) {
	res, err := Fig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 4 combos x 4 fractions x 2 modes.
	if len(res.Rows) != 32 {
		t.Errorf("rows = %d, want 32", len(res.Rows))
	}
}

func TestFig14Runs(t *testing.T) {
	res, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 4 designs x 2 modes.
	if len(res.Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(res.Rows))
	}
}

func TestTab2Rows(t *testing.T) {
	res, err := Tab2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Errorf("tab2 rows = %d, want 9", len(res.Rows))
	}
}

func TestWriteCSV(t *testing.T) {
	res := Result{
		Figure: "figX",
		Rows:   []Row{{Series: "a", Label: "l", Value: 1.25}},
	}
	var sb stringsBuilder
	if err := WriteCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	want := "figure,series,label,value\nfigX,a,l,1.250000\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

// stringsBuilder avoids importing strings for one use.
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *stringsBuilder) String() string { return string(s.b) }

func TestExt1Runs(t *testing.T) {
	res, err := Ext1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for _, r := range res.Rows {
		series[r.Series] = true
	}
	if len(series) != 4 {
		t.Errorf("ext1 series = %d, want 4", len(series))
	}
}
