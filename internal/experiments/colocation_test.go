package experiments

import (
	"testing"

	"itpsim/internal/config"
)

// TestMC1Shape: the co-location study produces, per policy quadrant, one
// row per tenant (each slower than solo) plus an aggregate row whose
// fairness is the min/max slowdown ratio.
func TestMC1Shape(t *testing.T) {
	o := tiny()
	o.Cores = 2
	res, err := MC1(o)
	if err != nil {
		t.Fatal(err)
	}
	perQuadrant := make(map[string]struct {
		tenants    int
		aggregates int
	})
	for _, r := range res.Rows {
		q := perQuadrant[r.Series]
		if r.Label == "AGGREGATE" {
			q.aggregates++
			fair := r.Extra["fairness"]
			if fair <= 0 || fair > 1 {
				t.Errorf("%s: fairness %.4f outside (0, 1]", r.Series, fair)
			}
			if r.Extra["min_slowdown"] > r.Extra["max_slowdown"] {
				t.Errorf("%s: min slowdown %.4f above max %.4f",
					r.Series, r.Extra["min_slowdown"], r.Extra["max_slowdown"])
			}
			if r.Extra["stlb_mpki"] <= 0 {
				t.Errorf("%s: aggregate STLB MPKI %.4f not positive", r.Series, r.Extra["stlb_mpki"])
			}
		} else {
			q.tenants++
			if r.Extra["slowdown"] <= 1 {
				t.Errorf("%s %s: slowdown %.4f should exceed 1 under co-location",
					r.Series, r.Label, r.Extra["slowdown"])
			}
			if r.Value >= r.Extra["solo_ipc"] {
				t.Errorf("%s %s: co-located IPC %.4f not below solo %.4f",
					r.Series, r.Label, r.Value, r.Extra["solo_ipc"])
			}
		}
		perQuadrant[r.Series] = q
	}
	if len(perQuadrant) != 4 {
		t.Fatalf("expected 4 policy quadrants, got %d: %v", len(perQuadrant), perQuadrant)
	}
	for series, q := range perQuadrant {
		if q.tenants != 2 || q.aggregates != 1 {
			t.Errorf("%s: %d tenant rows + %d aggregate rows, want 2 + 1", series, q.tenants, q.aggregates)
		}
	}
}

// TestMC1RejectsOversizedCMP: the study refuses core counts beyond the
// config ceiling instead of silently clamping.
func TestMC1RejectsOversizedCMP(t *testing.T) {
	o := tiny()
	o.Cores = config.MaxCores + 1
	if _, err := MC1(o); err == nil {
		t.Fatal("expected an error for Cores above config.MaxCores")
	}
}
