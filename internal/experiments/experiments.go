// Package experiments regenerates every table and figure of the paper's
// evaluation (plus the motivation studies): each Fig* function sweeps the
// relevant workloads and configurations, runs the simulator, and returns
// a Result whose rows mirror the series the paper plots. The experiment
// ids match DESIGN.md's per-experiment index and cmd/itpbench's -fig flag.
package experiments

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/sample"
	"itpsim/internal/shard"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// Options scale an experiment run. The paper simulates 120 single-thread
// workloads and 75 pairs for 50M+100M instructions each on a cluster; the
// defaults here reproduce the same sweeps at laptop scale.
type Options struct {
	// ServerWorkloads / SpecWorkloads set how many catalogue entries of
	// each suite participate.
	ServerWorkloads int
	SpecWorkloads   int
	// SMTPairsPerCategory sets pairs per co-location category
	// (intense/medium/relaxed).
	SMTPairsPerCategory int
	// Warmup/Measure are instructions per hardware thread.
	Warmup  uint64
	Measure uint64
	// Cores sets the CMP width of the multi-core co-location study
	// ("mc1"): N cores with private L1s/ITLB/DTLB contending on the
	// shared STLB/L2C/LLC/walker/DRAM, one tenant workload per core.
	// 0 selects the study's default width (4); the paper-style sweep
	// runs it at 4, 16, and 64. Other experiments ignore it.
	Cores int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Shards > 1 splits every single-workload simulation into that many
	// parallel warmup+measure segments (internal/shard), stitched back
	// into one stats record per job; SMT pair simulations always run
	// whole because sharding is defined over a single stream. The
	// per-shard warmup approximation shifts metrics within the bounds
	// documented in DESIGN.md §12.
	Shards int
	// SamplePhases > 0 phase-samples every single-workload simulation
	// (internal/sample): an LRU-baseline profiling pre-pass classifies
	// the measured region into K phases and only one representative
	// interval per phase simulates in detail, with full-run statistics
	// reconstructed as the occupancy-weighted sum. One profile serves
	// every policy combination that shares a (workload, machine
	// geometry), which is where the speedup over serial sweeping comes
	// from. SMT pairs and multi-core jobs run whole. Error bounds are in
	// DESIGN.md §14. Mutually exclusive with Shards > 1.
	SamplePhases int
	// SampleWindow is the phase-classification interval in retired
	// instructions (0 = 50_000); Warmup and Measure must be multiples of
	// it when SamplePhases > 1.
	SampleWindow uint64
	// FuncWarmup replays this prefix of each segment's warmup
	// functionally (TLB/cache/predictor state only, no pipeline); it must
	// leave a detailed warmup suffix. Applies to the Shards and
	// SamplePhases paths.
	FuncWarmup uint64

	// Fault tolerance: every sweep routes its jobs through the
	// internal/harness supervisor with these settings.
	//
	// Retries re-attempts transiently failed jobs with capped exponential
	// backoff; JobTimeout is the per-simulation wall-clock deadline
	// (0 = none). WatchdogInterval/WatchdogSamples arm the
	// forward-progress watchdog: a simulation that retires no instruction
	// for that many consecutive samples is killed with a diagnostic
	// snapshot. Checkpoint names a JSON-lines journal of completed jobs
	// (keyed like the in-process memo) so an interrupted campaign resumes
	// without re-running finished work.
	Retries          int
	JobTimeout       time.Duration
	WatchdogInterval time.Duration
	WatchdogSamples  int
	Checkpoint       string
	// Logf receives supervision events (retries, kills, resumes);
	// nil discards them.
	Logf func(format string, args ...any)
}

// Defaults returns laptop-scale defaults.
func Defaults() Options {
	return Options{
		ServerWorkloads:     12,
		SpecWorkloads:       8,
		SMTPairsPerCategory: 2,
		Warmup:              1_000_000,
		Measure:             3_000_000,
		// A healthy simulation never stops retiring, so a generous
		// no-progress watchdog (30s of zero retires) is safe to arm by
		// default and turns a livelocked job into one structured failure
		// instead of a hung campaign.
		WatchdogInterval: 5 * time.Second,
		WatchdogSamples:  6,
	}
}

// Quick returns a fast smoke-scale configuration (CI, examples).
func Quick() Options {
	return Options{
		ServerWorkloads:     4,
		SpecWorkloads:       2,
		SMTPairsPerCategory: 1,
		Warmup:              200_000,
		Measure:             400_000,
		WatchdogInterval:    5 * time.Second,
		WatchdogSamples:     6,
	}
}

// Row is one data point of a figure: a series (policy or configuration),
// a label (workload, pair, or x-axis point), and the value the paper
// plots, with any supporting metrics.
type Row struct {
	Series string
	Label  string
	Value  float64
	Extra  map[string]float64
}

// Result is one regenerated figure or table.
type Result struct {
	Figure string
	Title  string
	YLabel string
	Rows   []Row
	Notes  []string
}

// Combo names one policy combination of Table 2.
type Combo struct {
	Name string
	STLB string
	L2C  string
	LLC  string
}

// PolicyTable returns the Table 2 policy/structure matrix.
func PolicyTable() []Combo {
	return []Combo{
		{Name: "TDRRIP", STLB: "lru", L2C: "tdrrip", LLC: "lru"},
		{Name: "PTP", STLB: "lru", L2C: "ptp", LLC: "lru"},
		{Name: "CHiRP", STLB: "chirp", L2C: "lru", LLC: "lru"},
		{Name: "CHiRP+TDRRIP", STLB: "chirp", L2C: "tdrrip", LLC: "lru"},
		{Name: "CHiRP+PTP", STLB: "chirp", L2C: "ptp", LLC: "lru"},
		{Name: "iTP", STLB: "itp", L2C: "lru", LLC: "lru"},
		{Name: "iTP+TDRRIP", STLB: "itp", L2C: "tdrrip", LLC: "lru"},
		{Name: "iTP+PTP", STLB: "itp", L2C: "ptp", LLC: "lru"},
		{Name: "iTP+xPTP", STLB: "itp", L2C: "xptp", LLC: "lru"},
	}
}

// apply writes a combo into a config.
func (c Combo) apply(cfg *config.SystemConfig) {
	cfg.STLBPolicy = c.STLB
	cfg.L2CPolicy = c.L2C
	cfg.LLCPolicy = c.LLC
}

// runner executes simulations for one experiment through the harness
// supervisor, with memoisation so shared baselines are only simulated
// once.
type runner struct {
	o        Options
	cat      *workload.Catalog
	ix       *shard.Index     // split-position cache shared by all sharded sweeps
	profiles *sample.Profiles // profiling pre-passes shared by all sampled sweeps

	mu   sync.Mutex
	memo map[string]*stats.Sim
}

func newRunner(o Options) *runner {
	return &runner{
		o:        o,
		cat:      workload.NewCatalog(120, 20),
		ix:       shard.NewIndex(),
		profiles: sample.NewProfiles(),
		memo:     make(map[string]*stats.Sim),
	}
}

// harnessOptions maps the experiment options onto the supervisor.
func (r *runner) harnessOptions() harness.Options {
	par := r.o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return harness.Options{
		Parallelism:      par,
		Retries:          r.o.Retries,
		JobTimeout:       r.o.JobTimeout,
		WatchdogInterval: r.o.WatchdogInterval,
		WatchdogSamples:  r.o.WatchdogSamples,
		Checkpoint:       r.o.Checkpoint,
		Logf:             r.o.Logf,
	}
}

// serverSet returns the participating server workload names.
func (r *runner) serverSet() []string {
	names := r.cat.ServerNames()
	if r.o.ServerWorkloads < len(names) {
		names = names[:r.o.ServerWorkloads]
	}
	return names
}

// specSet returns the participating SPEC-like workload names.
func (r *runner) specSet() []string {
	names := r.cat.SpecNames()
	if r.o.SpecWorkloads < len(names) {
		names = names[:r.o.SpecWorkloads]
	}
	return names
}

// pairs returns the SMT co-location pairs.
func (r *runner) pairs() []workload.Pair {
	return r.cat.SMTPairs(r.o.SMTPairsPerCategory)
}

// job describes one simulation: the workload (or pair) and configuration.
type job struct {
	key     string
	names   []string // 1 or 2 workload names
	cfg     config.SystemConfig
	warmup  uint64
	measure uint64
}

func (r *runner) newJob(names []string, cfg config.SystemConfig, tag string) job {
	key := fmt.Sprintf("%s|%s|%s/%s/%s|h%.2f|i%d|s%d|split%v|c%d|%d/%d",
		tag, strings.Join(names, "+"),
		cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy,
		cfg.HugePageFraction, cfg.ITLB.Entries(), cfg.STLB.Entries(), cfg.SplitSTLB,
		cfg.Cores, r.o.Warmup, r.o.Measure)
	return job{key: key, names: names, cfg: cfg, warmup: r.o.Warmup, measure: r.o.Measure}
}

// run executes (or recalls) one job under the supervisor's JobContext:
// the machine is attached so the forward-progress watchdog can sample it
// and interrupt it.
func (r *runner) run(jc *harness.JobContext, j job) (*stats.Sim, error) {
	r.mu.Lock()
	if s, ok := r.memo[j.key]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()

	streams := make([]workload.Stream, len(j.names))
	for i, n := range j.names {
		spec, err := r.cat.Get(n)
		if err != nil {
			// Unknown workloads stay unknown on retry.
			return nil, harness.Permanent(err)
		}
		streams[i] = spec.NewStream()
	}
	m, err := sim.NewMachine(j.cfg)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	if jc != nil {
		jc.Attach(m)
		// Context-aware sources (network trace feeds, pipes) unblock when
		// the supervisor kills the job, so a stalled Next cannot pin the
		// goroutine past the kill grace period. Bind the originals before
		// the decode-ahead wrap below hides them.
		for _, s := range streams {
			if b, ok := s.(interface{ Bind(context.Context) }); ok {
				b.Bind(jc.Context())
			}
		}
	}
	// Decode-ahead ingestion: generation/decode overlaps simulation and
	// the run loop refills its lookahead from in-memory batches. The
	// runner owns these streams (fresh per job), so wrapping is safe.
	for i, s := range streams {
		p := workload.Prefetch(s)
		defer p.Close()
		streams[i] = p
	}
	res, err := m.RunWarmup(streams, j.warmup, j.measure)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	r.memo[j.key] = res.Stats
	r.mu.Unlock()
	return res.Stats, nil
}

// runAll executes jobs through the harness supervisor, preserving order.
// Unlike a fail-fast batch, every healthy job's result is returned even
// when others fail: failures come back joined into one error (via
// errors.Join inside the harness) with the corresponding output slots
// left nil, so callers can keep partial sweeps and report exactly which
// jobs died.
func (r *runner) runAll(jobs []job) ([]*stats.Sim, error) {
	switch {
	case r.o.SamplePhases > 0 && r.o.Shards > 1:
		return nil, fmt.Errorf("experiments: SamplePhases and Shards are alternative parallel modes; pick one")
	case r.o.SamplePhases > 0:
		return r.runAllSplit(jobs, r.expandSampled)
	case r.o.Shards > 1 || r.o.FuncWarmup > 0:
		return r.runAllSplit(jobs, r.expandSharded)
	}
	hjobs := make([]harness.Job[*stats.Sim], len(jobs))
	for i := range jobs {
		j := jobs[i]
		hjobs[i] = harness.Job[*stats.Sim]{
			Key: j.key,
			Run: func(jc *harness.JobContext) (*stats.Sim, error) { return r.run(jc, j) },
		}
	}
	outs, err := harness.RunAll(r.harnessOptions(), hjobs)
	if outs == nil {
		return nil, err
	}
	out := make([]*stats.Sim, len(jobs))
	for i := range outs {
		if outs[i].Err != nil {
			continue
		}
		out[i] = outs[i].Result
		if outs[i].Cached {
			// Results recalled from the checkpoint journal feed the
			// in-process memo too, so same-key jobs later in the
			// experiment reuse them.
			r.mu.Lock()
			r.memo[outs[i].Key] = outs[i].Result
			r.mu.Unlock()
		}
	}
	return out, err
}

// stitchFn folds one logical job's flat segment outcomes back into a
// stats record.
type stitchFn func([]harness.Outcome[*shard.Payload]) (*stats.Sim, error)

// expandSharded turns one single-workload job into its Options.Shards
// supervised segment jobs (internal/shard tiling, with any FuncWarmup
// prefix) plus the matching stitch.
func (r *runner) expandSharded(j job) ([]harness.Job[*shard.Payload], stitchFn, error) {
	spec, err := r.cat.Get(j.names[0])
	if err != nil {
		return nil, nil, err
	}
	shards := r.o.Shards
	if shards < 1 {
		shards = 1 // FuncWarmup alone still routes through the segment engine
	}
	cfg := shard.Config{System: j.cfg, Plan: shard.Plan{
		Shards: shards, Warmup: j.warmup, Measure: j.measure, FuncWarmup: r.o.FuncWarmup,
	}}
	sjobs, err := shard.Jobs(cfg, j.key, shard.Source{Name: j.names[0], New: spec.NewStream}, r.ix)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", j.key, err)
	}
	return sjobs, func(outs []harness.Outcome[*shard.Payload]) (*stats.Sim, error) {
		res, err := shard.Stitch(cfg, outs)
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}, nil
}

// expandSampled turns one single-workload job into its per-representative
// jobs (internal/sample): the profiling pre-pass runs here, synchronously,
// through the runner's shared profile cache — every policy combination
// over the same (workload, geometry) reuses one profile.
func (r *runner) expandSampled(j job) ([]harness.Job[*shard.Payload], stitchFn, error) {
	spec, err := r.cat.Get(j.names[0])
	if err != nil {
		return nil, nil, err
	}
	src := shard.Source{Name: j.names[0], New: spec.NewStream}
	cfg := sample.Config{
		System:  j.cfg,
		Phases:  r.o.SamplePhases,
		Window:  r.o.SampleWindow,
		Warmup:  j.warmup,
		Measure: j.measure,
	}
	if cfg.Window == 0 {
		cfg.Window = 50_000
	}
	if r.o.FuncWarmup > 0 {
		if r.o.FuncWarmup >= j.warmup {
			return nil, nil, fmt.Errorf("%s: FuncWarmup %d must leave a detailed warmup suffix (warmup %d)", j.key, r.o.FuncWarmup, j.warmup)
		}
		cfg.DetailWarmup = j.warmup - r.o.FuncWarmup
	}
	var plan *sample.Plan
	if cfg.Phases == 1 {
		plan, err = sample.BuildPlan(cfg, nil)
	} else {
		var prof []metrics.WindowRecord
		if prof, err = r.profiles.Get(cfg, src, nil); err == nil {
			plan, err = sample.BuildPlan(cfg, prof)
		}
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", j.key, err)
	}
	sjobs, err := plan.Jobs(j.key, src, r.ix)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", j.key, err)
	}
	return sjobs, func(outs []harness.Outcome[*shard.Payload]) (*stats.Sim, error) {
		res, err := plan.Stitch(outs)
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}, nil
}

// runAllSplit is runAll's segmented path (Shards>1, FuncWarmup, or
// SamplePhases): every single-workload job expands — via expand — into K
// supervised segment jobs and every pair or multi-core job wraps into one
// whole-run job, all flattened into a SINGLE harness.RunAll so a shared
// checkpoint journal keeps one writer. Afterwards each logical job's
// segment outcomes are stitched back into one stats record; the error
// contract matches runAll (partial results, joined failures).
func (r *runner) runAllSplit(jobs []job, expand func(job) ([]harness.Job[*shard.Payload], stitchFn, error)) ([]*stats.Sim, error) {
	type span struct {
		start, n int        // slice of the flat outcome list
		stitch   stitchFn   // set when expanded (single-workload)
		memo     *stats.Sim // pre-resolved from the in-process memo
		dup      int        // >=0: same key as an earlier job in this batch
		err      error      // expansion failure (unknown workload, bad plan)
	}
	spans := make([]span, len(jobs))
	seen := make(map[string]int, len(jobs))
	var flat []harness.Job[*shard.Payload]
	for i := range jobs {
		j := jobs[i]
		spans[i].dup = -1
		r.mu.Lock()
		s, ok := r.memo[j.key]
		r.mu.Unlock()
		if ok {
			spans[i].memo = s
			continue
		}
		if first, ok := seen[j.key]; ok {
			spans[i].dup = first
			continue
		}
		seen[j.key] = i
		if len(j.names) == 1 && j.cfg.Cores <= 1 {
			sjobs, stitch, err := expand(j)
			if err != nil {
				spans[i].err = err
				continue
			}
			spans[i] = span{start: len(flat), n: len(sjobs), stitch: stitch, dup: -1}
			flat = append(flat, sjobs...)
			continue
		}
		// Pairs and multi-core jobs run whole: segmenting is defined over
		// one stream, and the whole-run job still gets the supervisor
		// (retries, watchdog, checkpoint) through the same flat batch.
		spans[i] = span{start: len(flat), n: 1, dup: -1}
		flat = append(flat, harness.Job[*shard.Payload]{
			Key: j.key + "|whole",
			Run: func(jc *harness.JobContext) (*shard.Payload, error) {
				s, err := r.run(jc, j)
				if err != nil {
					return nil, err
				}
				return &shard.Payload{Stats: s}, nil
			},
		})
	}

	outs, runErr := harness.RunAll(r.harnessOptions(), flat)
	if outs == nil {
		return nil, runErr
	}
	var errs []error
	if runErr != nil {
		errs = append(errs, runErr)
	}
	out := make([]*stats.Sim, len(jobs))
	for i := range jobs {
		sp := spans[i]
		switch {
		case sp.memo != nil:
			out[i] = sp.memo
		case sp.err != nil:
			errs = append(errs, sp.err)
		case sp.dup >= 0:
			out[i] = out[sp.dup] // nil if the first instance failed
		case sp.stitch != nil:
			s, err := sp.stitch(outs[sp.start : sp.start+sp.n])
			if err != nil {
				// The failing segments are already in runErr; this adds
				// which logical job they sank.
				errs = append(errs, fmt.Errorf("%s: %w", jobs[i].key, err))
				continue
			}
			out[i] = s
		default:
			o := outs[sp.start]
			if o.Err != nil {
				continue // joined into runErr by the harness
			}
			if o.Result == nil || o.Result.Stats == nil {
				errs = append(errs, fmt.Errorf("%s: empty whole-run payload (stale checkpoint?)", jobs[i].key))
				continue
			}
			out[i] = o.Result.Stats
		}
		if out[i] != nil {
			r.mu.Lock()
			r.memo[jobs[i].key] = out[i]
			r.mu.Unlock()
		}
	}
	return out, errors.Join(errs...)
}

// speedup returns the relative IPC improvement in percent.
func speedup(base, with *stats.Sim) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return 100 * (with.IPC()/base.IPC() - 1)
}

// geomeanSpeedup aggregates per-workload IPC ratios geometrically, like
// the paper's geomean speedups.
func geomeanSpeedup(bases, withs []*stats.Sim) float64 {
	ratios := make([]float64, 0, len(bases))
	for i := range bases {
		if bases[i].IPC() > 0 {
			ratios = append(ratios, withs[i].IPC()/bases[i].IPC())
		}
	}
	return 100 * (stats.Geomean(ratios) - 1)
}

// All lists the available experiment ids.
func All() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the named experiment.
func Run(id string, o Options) (Result, error) {
	fn, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(All(), ", "))
	}
	return fn(o)
}

var registry = map[string]func(Options) (Result, error){
	"fig1":  Fig1,
	"fig2":  Fig2,
	"fig3":  Fig3,
	"fig4":  Fig4,
	"fig8a": Fig8a,
	"fig8b": Fig8b,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"tab1":  Tab1,
	"tab2":  Tab2,
	"tab3":  Tab3,
	"ext1":  Ext1,
	"mc1":   MC1,
}

// WriteCSV renders a result as CSV (figure,series,label,value) so plots
// can be rebuilt with any tooling.
func WriteCSV(w io.Writer, res Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "label", "value"}); err != nil {
		return err
	}
	for _, r := range res.Rows {
		if err := cw.Write([]string{res.Figure, r.Series, r.Label, strconv.FormatFloat(r.Value, 'f', 6, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Print renders a result as an aligned text table.
func Print(w io.Writer, res Result) {
	fmt.Fprintf(w, "== %s: %s\n", res.Figure, res.Title)
	if res.YLabel != "" {
		fmt.Fprintf(w, "   metric: %s\n", res.YLabel)
	}
	seriesW, labelW := 6, 5
	for _, r := range res.Rows {
		if len(r.Series) > seriesW {
			seriesW = len(r.Series)
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-*s  %-*s  %10.4f", seriesW, r.Series, labelW, r.Label, r.Value)
		if len(r.Extra) > 0 {
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "  %s=%.4f", k, r.Extra[k])
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range res.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}
