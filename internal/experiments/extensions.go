package experiments

import (
	"itpsim/internal/config"
	"itpsim/internal/stats"
)

// Local aliases keep the Tab3 extras block readable.
const (
	statsBInstr = stats.BInstr
	statsBData  = stats.BData
)

// Ext1 evaluates the future-work directions Section 7 sketches, beyond
// the paper's own evaluation:
//
//   - iTP+xPTP with the adaptive controller (the paper's proposal),
//   - iTP+xPTP always-on (no Section 4.3.1 controller),
//   - iTP with the combined xPTP+Emissary L2C policy (protect data PTEs
//     *and* stall-critical code blocks),
//   - iTP+xPTP plus sequential instruction-translation prefetching into
//     the STLB ("iTP is orthogonal to STLB prefetching and could be
//     extended to consider it").
//
// All variants are reported as geomean IPC improvement over the LRU
// baseline, like Figure 8a.
func Ext1(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "ext1",
		Title:  "Future-work extensions (Section 7)",
		YLabel: "% geomean IPC improvement over LRU baseline",
	}
	names := r.serverSet()
	baseJobs := make([]job, len(names))
	for i, n := range names {
		baseJobs[i] = r.newJob([]string{n}, config.Default(), "ext1")
	}
	bases, err := r.runAll(baseJobs)
	if err != nil {
		return res, err
	}

	variants := []struct {
		name string
		mod  func(*config.SystemConfig)
	}{
		{"iTP+xPTP (adaptive)", func(c *config.SystemConfig) {
			c.STLBPolicy, c.L2CPolicy = "itp", "xptp"
		}},
		{"iTP+xPTP (always-on)", func(c *config.SystemConfig) {
			c.STLBPolicy, c.L2CPolicy = "itp", "xptp-static"
		}},
		{"iTP+xPTP+Emissary", func(c *config.SystemConfig) {
			c.STLBPolicy, c.L2CPolicy = "itp", "xptp-emissary"
		}},
		{"iTP+xPTP + STLB prefetch", func(c *config.SystemConfig) {
			c.STLBPolicy, c.L2CPolicy = "itp", "xptp"
			c.STLBPrefetch = true
		}},
	}
	for _, v := range variants {
		cfg := config.Default()
		v.mod(&cfg)
		jobs := make([]job, len(names))
		for i, n := range names {
			j := r.newJob([]string{n}, cfg, "ext1")
			// STLBPrefetch and the static/emissary variants share policy
			// names with other combos; disambiguate the memo key.
			j.key += "|" + v.name
			jobs[i] = j
		}
		sims, err := r.runAll(jobs)
		if err != nil {
			return res, err
		}
		for i := range names {
			res.Rows = append(res.Rows, Row{Series: v.name, Label: names[i], Value: speedup(bases[i], sims[i])})
		}
		res.Rows = append(res.Rows, Row{Series: v.name, Label: "GEOMEAN", Value: geomeanSpeedup(bases, sims)})
	}
	res.Notes = append(res.Notes,
		"extensions beyond the paper's evaluation; Section 7 argues xPTP+Emissary and translation prefetching are promising combinations")
	return res, nil
}

// Tab3 characterises the synthetic workload suite the way artifact
// evaluations tabulate their traces: baseline IPC, STLB MPKI (total and
// per class), L1I MPKI, and the instruction-translation cycle share, one
// row per workload. Useful for checking the generators against the
// paper's published workload bands.
func Tab3(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "tab3",
		Title:  "Workload characteristics under the LRU baseline",
		YLabel: "baseline IPC (extras: MPKIs and translation share)",
	}
	names := append(r.serverSet(), r.specSet()...)
	jobs := make([]job, len(names))
	for i, n := range names {
		jobs[i] = r.newJob([]string{n}, config.Default(), "tab3")
	}
	sims, err := r.runAll(jobs)
	if err != nil {
		return res, err
	}
	for i, s := range sims {
		ti := s.TotalInstructions()
		res.Rows = append(res.Rows, Row{
			Series: "baseline",
			Label:  names[i],
			Value:  s.IPC(),
			Extra: map[string]float64{
				"stlb-mpki":   s.STLB.MPKI(ti),
				"stlb-impki":  s.STLB.BucketMPKI(statsBInstr, ti),
				"stlb-dmpki":  s.STLB.BucketMPKI(statsBData, ti),
				"l1i-mpki":    s.L1I.MPKI(ti),
				"itc-percent": 100 * s.InstrTransFraction(),
			},
		})
	}
	res.Notes = append(res.Notes,
		"paper bands: server STLB MPKI >= 1 with instruction STLB MPKI up to ~0.9; SPEC instruction-side negligible")
	return res, nil
}
