package experiments

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// Fig1 reproduces Figure 1: fraction of cycles spent on instruction
// address translation as a function of ITLB size, for the server and
// SPEC-like suites.
func Fig1(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig1",
		Title:  "Instruction address translation overhead vs ITLB size",
		YLabel: "% of cycles on instruction address translation",
	}
	sizes := []int{8, 64, 128, 512, 1024}
	for _, suite := range []struct {
		name  string
		names []string
	}{
		{"qualcomm-server", r.serverSet()},
		{"spec", r.specSet()},
	} {
		for _, size := range sizes {
			cfg := config.Default().WithITLBEntries(size)
			jobs := make([]job, len(suite.names))
			for i, n := range suite.names {
				jobs[i] = r.newJob([]string{n}, cfg, "fig1")
			}
			sims, err := r.runAll(jobs)
			if err != nil {
				return res, err
			}
			sum := 0.0
			for _, s := range sims {
				sum += 100 * s.InstrTransFraction()
			}
			res.Rows = append(res.Rows, Row{
				Series: suite.name,
				Label:  fmt.Sprintf("%d entries", size),
				Value:  sum / float64(len(sims)),
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper: ~12.5% for Qualcomm Server and ~0.03% for SPEC at 64-128 entries; >=1024 entries needed to flatten the server curve")
	return res, nil
}

// Fig2 reproduces Figure 2: per-workload STLB MPKI due to instruction
// references.
func Fig2(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig2",
		Title:  "STLB MPKI for instruction references",
		YLabel: "instruction STLB MPKI",
	}
	cfg := config.Default()
	for _, suite := range []struct {
		name  string
		names []string
	}{
		{"qualcomm-server", r.serverSet()},
		{"spec", r.specSet()},
	} {
		jobs := make([]job, len(suite.names))
		for i, n := range suite.names {
			jobs[i] = r.newJob([]string{n}, cfg, "fig2")
		}
		sims, err := r.runAll(jobs)
		if err != nil {
			return res, err
		}
		sum := 0.0
		for i, s := range sims {
			v := s.STLB.BucketMPKI(stats.BInstr, s.TotalInstructions())
			sum += v
			res.Rows = append(res.Rows, Row{
				Series: suite.name,
				Label:  suite.names[i],
				Value:  v,
				Extra: map[string]float64{
					"total-stlb-mpki": s.STLB.MPKI(s.TotalInstructions()),
				},
			})
		}
		res.Rows = append(res.Rows, Row{Series: suite.name, Label: "MEAN", Value: sum / float64(len(sims))})
	}
	res.Notes = append(res.Notes,
		"paper: server instruction STLB MPKI up to 0.9, SPEC negligible; all server workloads keep total STLB MPKI >= 1")
	return res, nil
}

// Fig3 reproduces Figure 3: IPC improvement of the keep-instructions
// probabilistic LRU variant over plain LRU, for P in {0.2,0.4,0.6,0.8}.
func Fig3(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig3",
		Title:  "Prioritizing instruction translations by probability P",
		YLabel: "% IPC improvement over LRU",
	}
	names := r.serverSet()
	baseJobs := make([]job, len(names))
	for i, n := range names {
		baseJobs[i] = r.newJob([]string{n}, config.Default(), "fig3")
	}
	bases, err := r.runAll(baseJobs)
	if err != nil {
		return res, err
	}
	for _, p := range []float64{0.2, 0.4, 0.6, 0.8} {
		cfg := config.Default()
		cfg.STLBPolicy = "problru"
		cfg.ProbKeepInstr = p
		jobs := make([]job, len(names))
		for i, n := range names {
			jobs[i] = r.newJob([]string{n}, cfg, fmt.Sprintf("fig3-p%.1f", p))
		}
		sims, err := r.runAll(jobs)
		if err != nil {
			return res, err
		}
		series := fmt.Sprintf("P=%.1f", p)
		for i := range names {
			res.Rows = append(res.Rows, Row{Series: series, Label: names[i], Value: speedup(bases[i], sims[i])})
		}
		res.Rows = append(res.Rows, Row{Series: series, Label: "GEOMEAN", Value: geomeanSpeedup(bases, sims)})
	}
	res.Notes = append(res.Notes,
		"paper: higher P (keep instructions) improves IPC by up to ~5%; low P degrades it")
	return res, nil
}

// Fig4 reproduces Figure 4: the MPKI breakdown at L2C and LLC under LRU
// vs the keep-instructions variant with P=0.8.
func Fig4(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig4",
		Title:  "L2C/LLC MPKI breakdown: LRU vs Keep Instructions (P=0.8)",
		YLabel: "MPKI by access class",
	}
	names := r.serverSet()
	for _, pol := range []struct {
		series string
		cfg    config.SystemConfig
	}{
		{"LRU", config.Default()},
		{"KeepInstr(P=0.8)", func() config.SystemConfig {
			c := config.Default()
			c.STLBPolicy = "problru"
			c.ProbKeepInstr = 0.8
			return c
		}()},
	} {
		jobs := make([]job, len(names))
		for i, n := range names {
			jobs[i] = r.newJob([]string{n}, pol.cfg, "fig4")
		}
		sims, err := r.runAll(jobs)
		if err != nil {
			return res, err
		}
		for _, lvl := range []struct {
			name string
			get  func(*stats.Sim) *stats.Level
		}{
			{"L2C", func(s *stats.Sim) *stats.Level { return &s.L2C }},
			{"LLC", func(s *stats.Sim) *stats.Level { return &s.LLC }},
		} {
			var d, i4, dt, it float64
			for _, s := range sims {
				ti := s.TotalInstructions()
				l := lvl.get(s)
				d += l.BucketMPKI(stats.BData, ti)
				i4 += l.BucketMPKI(stats.BInstr, ti)
				dt += l.BucketMPKI(stats.BDataTrans, ti)
				it += l.BucketMPKI(stats.BInstrTrans, ti)
			}
			n := float64(len(sims))
			res.Rows = append(res.Rows,
				Row{Series: pol.series, Label: lvl.name + " dMPKI", Value: d / n},
				Row{Series: pol.series, Label: lvl.name + " iMPKI", Value: i4 / n},
				Row{Series: pol.series, Label: lvl.name + " dtMPKI", Value: dt / n},
				Row{Series: pol.series, Label: lvl.name + " itMPKI", Value: it / n},
			)
		}
	}
	res.Notes = append(res.Notes,
		"paper: prioritizing instructions in the STLB raises dtMPKI (cache misses from data page walks) at both levels")
	return res, nil
}

// fig8 is the shared implementation of Figures 8a/8b.
func fig8(o Options, smt bool) (Result, error) {
	r := newRunner(o)
	which, title := "fig8a", "IPC improvement vs LRU, single hardware thread"
	if smt {
		which, title = "fig8b", "IPC improvement vs LRU, two hardware threads"
	}
	res := Result{Figure: which, Title: title, YLabel: "% IPC improvement over LRU baseline"}

	type unit struct {
		label string
		names []string
	}
	var units []unit
	if smt {
		for _, p := range r.pairs() {
			units = append(units, unit{label: p.Name, names: []string{p.A, p.B}})
		}
	} else {
		for _, n := range r.serverSet() {
			units = append(units, unit{label: n, names: []string{n}})
		}
	}

	baseJobs := make([]job, len(units))
	for i, u := range units {
		baseJobs[i] = r.newJob(u.names, config.Default(), which)
	}
	bases, err := r.runAll(baseJobs)
	if err != nil {
		return res, err
	}
	for _, combo := range PolicyTable() {
		cfg := config.Default()
		combo.apply(&cfg)
		jobs := make([]job, len(units))
		for i, u := range units {
			jobs[i] = r.newJob(u.names, cfg, which)
		}
		sims, err := r.runAll(jobs)
		if err != nil {
			return res, err
		}
		for i, u := range units {
			res.Rows = append(res.Rows, Row{Series: combo.Name, Label: u.label, Value: speedup(bases[i], sims[i])})
		}
		res.Rows = append(res.Rows, Row{Series: combo.Name, Label: "GEOMEAN", Value: geomeanSpeedup(bases, sims)})
	}
	if smt {
		res.Notes = append(res.Notes, "paper geomeans: TDRRIP +8.5%, PTP ~0%, iTP +0.3%, iTP+xPTP +11.4%")
	} else {
		res.Notes = append(res.Notes, "paper geomeans: TDRRIP +9.3%, PTP +7.1%, CHiRP ~0%, iTP +2.2%, iTP+xPTP +18.9%")
	}
	return res, nil
}

// Fig8a reproduces Figure 8a (single-thread policy comparison).
func Fig8a(o Options) (Result, error) { return fig8(o, false) }

// Fig8b reproduces Figure 8b (two-hardware-thread policy comparison).
func Fig8b(o Options) (Result, error) { return fig8(o, true) }

// Fig9 reproduces Figure 9: MPKI and average miss latency at the STLB,
// L2C, and LLC for each policy, single-thread and SMT.
func Fig9(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig9",
		Title:  "MPKI and average miss latency at STLB/L2C/LLC",
		YLabel: "MPKI (extra: avg miss latency in cycles)",
	}
	combos := append([]Combo{{Name: "LRU", STLB: "lru", L2C: "lru", LLC: "lru"}}, PolicyTable()...)
	for _, mode := range []struct {
		tag string
		smt bool
	}{{"1T", false}, {"2T", true}} {
		type unit struct{ names []string }
		var units []unit
		if mode.smt {
			for _, p := range r.pairs() {
				units = append(units, unit{names: []string{p.A, p.B}})
			}
		} else {
			for _, n := range r.serverSet() {
				units = append(units, unit{names: []string{n}})
			}
		}
		for _, combo := range combos {
			cfg := config.Default()
			combo.apply(&cfg)
			jobs := make([]job, len(units))
			for i, u := range units {
				jobs[i] = r.newJob(u.names, cfg, "fig9-"+mode.tag)
			}
			sims, err := r.runAll(jobs)
			if err != nil {
				return res, err
			}
			for _, lvl := range []struct {
				name string
				get  func(*stats.Sim) *stats.Level
			}{
				{"STLB", func(s *stats.Sim) *stats.Level { return &s.STLB }},
				{"L2C", func(s *stats.Sim) *stats.Level { return &s.L2C }},
				{"LLC", func(s *stats.Sim) *stats.Level { return &s.LLC }},
			} {
				var mpki, lat float64
				for _, s := range sims {
					mpki += lvl.get(s).MPKI(s.TotalInstructions())
					lat += lvl.get(s).AvgMissLatency()
				}
				n := float64(len(sims))
				res.Rows = append(res.Rows, Row{
					Series: combo.Name,
					Label:  mode.tag + " " + lvl.name,
					Value:  mpki / n,
					Extra:  map[string]float64{"avg-miss-latency": lat / n},
				})
			}
		}
	}
	res.Notes = append(res.Notes,
		"paper (1T): iTP+xPTP cuts STLB miss latency 170.9->92.3 and LLC MPKI 13.8->8.4 while L2C MPKI rises 30.6->46.5")
	return res, nil
}

// Fig10 reproduces Figure 10: the STLB MPKI breakdown between instruction
// and data translations under LRU vs iTP.
func Fig10(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig10",
		Title:  "STLB MPKI breakdown (iMPKI vs dMPKI), LRU vs iTP",
		YLabel: "STLB MPKI",
	}
	for _, mode := range []struct {
		tag string
		smt bool
	}{{"1T", false}, {"2T", true}} {
		type unit struct{ names []string }
		var units []unit
		if mode.smt {
			for _, p := range r.pairs() {
				units = append(units, unit{names: []string{p.A, p.B}})
			}
		} else {
			for _, n := range r.serverSet() {
				units = append(units, unit{names: []string{n}})
			}
		}
		for _, pol := range []string{"lru", "itp"} {
			cfg := config.Default()
			cfg.STLBPolicy = pol
			jobs := make([]job, len(units))
			for i, u := range units {
				jobs[i] = r.newJob(u.names, cfg, "fig10-"+mode.tag)
			}
			sims, err := r.runAll(jobs)
			if err != nil {
				return res, err
			}
			var im, dm float64
			for _, s := range sims {
				ti := s.TotalInstructions()
				im += s.STLB.BucketMPKI(stats.BInstr, ti)
				dm += s.STLB.BucketMPKI(stats.BData, ti)
			}
			n := float64(len(sims))
			res.Rows = append(res.Rows,
				Row{Series: pol, Label: mode.tag + " iMPKI", Value: im / n},
				Row{Series: pol, Label: mode.tag + " dMPKI", Value: dm / n},
			)
		}
	}
	res.Notes = append(res.Notes,
		"paper: iTP significantly reduces iMPKI while dMPKI increases — the intended trade")
	return res, nil
}

// Fig11 reproduces Figure 11: iTP and iTP+xPTP gains when the LLC runs
// LRU, SHiP, or Mockingjay; the baseline for each scenario uses the same
// LLC policy with LRU at STLB and L2C.
func Fig11(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig11",
		Title:  "Sensitivity to the LLC replacement policy",
		YLabel: "% geomean IPC improvement over LRU-STLB/LRU-L2C with the same LLC policy",
	}
	for _, mode := range []struct {
		tag string
		smt bool
	}{{"1T", false}, {"2T", true}} {
		type unit struct{ names []string }
		var units []unit
		if mode.smt {
			for _, p := range r.pairs() {
				units = append(units, unit{names: []string{p.A, p.B}})
			}
		} else {
			for _, n := range r.serverSet() {
				units = append(units, unit{names: []string{n}})
			}
		}
		for _, llc := range []string{"lru", "ship", "mockingjay"} {
			baseCfg := config.Default()
			baseCfg.LLCPolicy = llc
			baseJobs := make([]job, len(units))
			for i, u := range units {
				baseJobs[i] = r.newJob(u.names, baseCfg, "fig11-"+mode.tag)
			}
			bases, err := r.runAll(baseJobs)
			if err != nil {
				return res, err
			}
			for _, prop := range []struct{ name, stlb, l2c string }{
				{"iTP", "itp", "lru"},
				{"iTP+xPTP", "itp", "xptp"},
			} {
				cfg := baseCfg
				cfg.STLBPolicy = prop.stlb
				cfg.L2CPolicy = prop.l2c
				jobs := make([]job, len(units))
				for i, u := range units {
					jobs[i] = r.newJob(u.names, cfg, "fig11-"+mode.tag)
				}
				sims, err := r.runAll(jobs)
				if err != nil {
					return res, err
				}
				res.Rows = append(res.Rows, Row{
					Series: prop.name,
					Label:  mode.tag + " LLC=" + llc,
					Value:  geomeanSpeedup(bases, sims),
				})
			}
		}
	}
	res.Notes = append(res.Notes,
		"paper (1T): iTP +2.2/+2.3/+1.4%, iTP+xPTP +18.9/+15.8/+1.6% under LRU/SHiP/Mockingjay")
	return res, nil
}

// Fig12 reproduces Figure 12: iTP and iTP+xPTP across ITLB sizes; each
// size's baseline is LRU with the same ITLB.
func Fig12(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig12",
		Title:  "Sensitivity to ITLB size",
		YLabel: "% geomean IPC improvement over LRU with the same ITLB",
	}
	for _, mode := range []struct {
		tag string
		smt bool
	}{{"1T", false}, {"2T", true}} {
		type unit struct{ names []string }
		var units []unit
		if mode.smt {
			for _, p := range r.pairs() {
				units = append(units, unit{names: []string{p.A, p.B}})
			}
		} else {
			for _, n := range r.serverSet() {
				units = append(units, unit{names: []string{n}})
			}
		}
		for _, size := range []int{1024, 512, 128, 64} {
			baseCfg := config.Default().WithITLBEntries(size)
			baseJobs := make([]job, len(units))
			for i, u := range units {
				baseJobs[i] = r.newJob(u.names, baseCfg, "fig12-"+mode.tag)
			}
			bases, err := r.runAll(baseJobs)
			if err != nil {
				return res, err
			}
			for _, prop := range []struct{ name, stlb, l2c string }{
				{"iTP", "itp", "lru"},
				{"iTP+xPTP", "itp", "xptp"},
			} {
				cfg := baseCfg
				cfg.STLBPolicy = prop.stlb
				cfg.L2CPolicy = prop.l2c
				jobs := make([]job, len(units))
				for i, u := range units {
					jobs[i] = r.newJob(u.names, cfg, "fig12-"+mode.tag)
				}
				sims, err := r.runAll(jobs)
				if err != nil {
					return res, err
				}
				res.Rows = append(res.Rows, Row{
					Series: prop.name,
					Label:  fmt.Sprintf("%s ITLB=%d", mode.tag, size),
					Value:  geomeanSpeedup(bases, sims),
				})
			}
		}
	}
	res.Notes = append(res.Notes,
		"paper: gains consistent for ITLB <= 512 entries; muted at 1024 entries (single thread)")
	return res, nil
}

// Fig13 reproduces Figure 13: policies under mixed 4KB/2MB page backing,
// with 0/10/50/100% of the footprint on 2MB pages.
func Fig13(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig13",
		Title:  "Allocating instructions and data on 2MB pages",
		YLabel: "% geomean IPC improvement over LRU with the same page mix",
	}
	combos := []Combo{
		{Name: "TDRRIP", STLB: "lru", L2C: "tdrrip", LLC: "lru"},
		{Name: "PTP", STLB: "lru", L2C: "ptp", LLC: "lru"},
		{Name: "CHiRP", STLB: "chirp", L2C: "lru", LLC: "lru"},
		{Name: "iTP+xPTP", STLB: "itp", L2C: "xptp", LLC: "lru"},
	}
	for _, mode := range []struct {
		tag string
		smt bool
	}{{"1T", false}, {"2T", true}} {
		type unit struct{ names []string }
		var units []unit
		if mode.smt {
			for _, p := range r.pairs() {
				units = append(units, unit{names: []string{p.A, p.B}})
			}
		} else {
			for _, n := range r.serverSet() {
				units = append(units, unit{names: []string{n}})
			}
		}
		for _, frac := range []float64{0, 0.1, 0.5, 1.0} {
			baseCfg := config.Default()
			baseCfg.HugePageFraction = frac
			baseJobs := make([]job, len(units))
			for i, u := range units {
				baseJobs[i] = r.newJob(u.names, baseCfg, "fig13-"+mode.tag)
			}
			bases, err := r.runAll(baseJobs)
			if err != nil {
				return res, err
			}
			for _, combo := range combos {
				cfg := baseCfg
				combo.apply(&cfg)
				cfg.HugePageFraction = frac
				jobs := make([]job, len(units))
				for i, u := range units {
					jobs[i] = r.newJob(u.names, cfg, "fig13-"+mode.tag)
				}
				sims, err := r.runAll(jobs)
				if err != nil {
					return res, err
				}
				res.Rows = append(res.Rows, Row{
					Series: combo.Name,
					Label:  fmt.Sprintf("%s %.0f%% 2MB", mode.tag, 100*frac),
					Value:  geomeanSpeedup(bases, sims),
				})
			}
		}
	}
	res.Notes = append(res.Notes,
		"paper: all gains shrink as the 2MB fraction grows; iTP+xPTP stays ahead at every mix")
	return res, nil
}

// Fig14 reproduces Figure 14: unified STLB with iTP+xPTP vs split STLB
// designs, at 1536 and 3072 total entries; the baseline is the 1536-entry
// unified STLB with LRU everywhere.
func Fig14(o Options) (Result, error) {
	r := newRunner(o)
	res := Result{
		Figure: "fig14",
		Title:  "Unified STLB with iTP+xPTP vs split STLB",
		YLabel: "% geomean IPC improvement over 1536-entry unified STLB with LRU",
	}
	type design struct {
		name string
		cfg  config.SystemConfig
	}
	mk := func(entries int, split bool, itp bool) config.SystemConfig {
		cfg := config.Default().WithSTLBEntries(entries)
		cfg.SplitSTLB = split
		if itp {
			cfg.STLBPolicy = "itp"
			cfg.L2CPolicy = "xptp"
		}
		return cfg
	}
	designs := []design{
		{"unified-1536 iTP+xPTP", mk(1536, false, true)},
		{"split-1536 LRU", mk(1536, true, false)},
		{"unified-3072 iTP+xPTP", mk(3072, false, true)},
		{"split-3072 LRU", mk(3072, true, false)},
	}
	for _, mode := range []struct {
		tag string
		smt bool
	}{{"1T", false}, {"2T", true}} {
		type unit struct{ names []string }
		var units []unit
		if mode.smt {
			for _, p := range r.pairs() {
				units = append(units, unit{names: []string{p.A, p.B}})
			}
		} else {
			for _, n := range r.serverSet() {
				units = append(units, unit{names: []string{n}})
			}
		}
		baseJobs := make([]job, len(units))
		for i, u := range units {
			baseJobs[i] = r.newJob(u.names, config.Default(), "fig14-"+mode.tag)
		}
		bases, err := r.runAll(baseJobs)
		if err != nil {
			return res, err
		}
		for _, d := range designs {
			jobs := make([]job, len(units))
			for i, u := range units {
				jobs[i] = r.newJob(u.names, d.cfg, "fig14-"+mode.tag)
			}
			sims, err := r.runAll(jobs)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, Row{
				Series: d.name,
				Label:  mode.tag,
				Value:  geomeanSpeedup(bases, sims),
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper: equal-capacity split STLB trails the unified+iTP+xPTP design; doubling the unified STLB with iTP+xPTP beats the doubled split design")
	return res, nil
}

// Tab1 renders Table 1 (the simulated system configuration) as rows.
func Tab1(Options) (Result, error) {
	cfg := config.Default()
	res := Result{Figure: "tab1", Title: "System configuration (Table 1)"}
	add := func(k string, v float64, label string) {
		res.Rows = append(res.Rows, Row{Series: k, Label: label, Value: v})
	}
	add("core", float64(cfg.ROBSize), "ROB entries")
	add("core", float64(cfg.FetchWidth), "fetch width")
	add("core", float64(cfg.FTQDepth), "FTQ entries")
	add("ITLB", float64(cfg.ITLB.Entries()), "entries")
	add("DTLB", float64(cfg.DTLB.Entries()), "entries")
	add("STLB", float64(cfg.STLB.Entries()), "entries")
	add("STLB", float64(cfg.STLB.Latency), "latency")
	add("iTP", float64(cfg.ITP.N), "N")
	add("iTP", float64(cfg.ITP.M), "M")
	add("iTP", float64(cfg.ITP.FreqBits), "Freq bits")
	add("xPTP", float64(cfg.XPTP.K), "K")
	add("L1I", float64(cfg.L1I.Entries()*arch.BlockSize), "bytes")
	add("L1D", float64(cfg.L1D.Entries()*arch.BlockSize), "bytes")
	add("L2C", float64(cfg.L2C.Entries()*arch.BlockSize), "bytes")
	add("LLC", float64(cfg.LLC.Entries()*arch.BlockSize), "bytes")
	add("PTW", float64(cfg.PageWalkers), "concurrent walks")
	return res, nil
}

// Tab2 renders Table 2 (the policy/structure matrix) as rows.
func Tab2(Options) (Result, error) {
	res := Result{Figure: "tab2", Title: "Considered techniques and where they apply (Table 2)"}
	for _, c := range PolicyTable() {
		res.Rows = append(res.Rows, Row{
			Series: c.Name,
			Label:  fmt.Sprintf("STLB=%s L2C=%s LLC=%s", c.STLB, c.L2C, c.LLC),
			Value:  0,
		})
	}
	res.Notes = append(res.Notes, "L1D always uses LRU; value column unused")
	return res, nil
}

// ensure workload import is used even if future edits drop other uses.
var _ = workload.LowPressure
