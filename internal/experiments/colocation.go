package experiments

import (
	"fmt"

	"itpsim/internal/config"
	"itpsim/internal/stats"
)

// colocQuadrants returns the four policy quadrants of the multi-core
// co-location study: baseline vs iTP on the shared STLB crossed with
// baseline vs adaptive xPTP on the shared L2C (LLC stays LRU).
func colocQuadrants() []Combo {
	return []Combo{
		{Name: "LRU+LRU", STLB: "lru", L2C: "lru", LLC: "lru"},
		{Name: "iTP+LRU", STLB: "itp", L2C: "lru", LLC: "lru"},
		{Name: "LRU+xPTP", STLB: "lru", L2C: "xptp", LLC: "lru"},
		{Name: "iTP+xPTP", STLB: "itp", L2C: "xptp", LLC: "lru"},
	}
}

// MC1 is the multi-core co-location study: N cores (Options.Cores,
// default 4), each running one server tenant from the catalogue (cycled
// when N exceeds the participating set), contending on the shared
// STLB/L2C/LLC/page-walker/DRAM. For each policy quadrant it reports one
// row per tenant (per-tenant IPC, solo IPC on an otherwise-idle machine
// under the same policies, and the slowdown solo/coloc >= 1) plus an
// aggregate row carrying whole-machine IPC, summed per-tenant throughput,
// min/max slowdown, the fairness index min/max in [0,1] (1 = perfectly
// even interference), and aggregate STLB MPKI over all retired
// instructions.
func MC1(o Options) (Result, error) {
	cores := o.Cores
	if cores <= 1 {
		cores = 4
	}
	if cores > config.MaxCores {
		return Result{}, fmt.Errorf("experiments: mc1 needs Cores <= %d, got %d", config.MaxCores, cores)
	}
	r := newRunner(o)
	res := Result{
		Figure: "mc1",
		Title:  fmt.Sprintf("Multi-core co-location (%d cores): per-tenant IPC, fairness, aggregate MPKI", cores),
		YLabel: "per-tenant IPC (Extra: solo_ipc, slowdown; aggregate rows: fairness, stlb_mpki)",
	}
	set := r.serverSet()
	if len(set) == 0 {
		return res, fmt.Errorf("experiments: mc1 needs at least one server workload")
	}
	tenants := make([]string, cores)
	for i := range tenants {
		tenants[i] = set[i%len(set)]
	}

	for _, q := range colocQuadrants() {
		cfg := config.Default()
		q.apply(&cfg)

		// Solo baselines: each distinct tenant workload alone on a 1-core
		// machine under the same policy quadrant. Distinct names only —
		// the harness needs unique job keys, and the memo would collapse
		// duplicates anyway.
		soloJobs := make([]job, 0, len(set))
		soloIdx := make(map[string]int, len(set))
		for _, n := range tenants {
			if _, ok := soloIdx[n]; ok {
				continue
			}
			soloIdx[n] = len(soloJobs)
			soloJobs = append(soloJobs, r.newJob([]string{n}, cfg, "mc1solo"))
		}
		solos, err := r.runAll(soloJobs)
		if err != nil {
			return res, err
		}

		ccfg := cfg
		ccfg.Cores = cores
		colocs, err := r.runAll([]job{r.newJob(tenants, ccfg, "mc1")})
		if err != nil {
			return res, err
		}
		coloc := colocs[0]

		var throughput, minSlow, maxSlow float64
		for i, n := range tenants {
			ten := &coloc.Cores[i]
			ipc := ten.IPC()
			solo := solos[soloIdx[n]]
			var slow float64
			if ipc > 0 {
				slow = solo.IPC() / ipc
			}
			throughput += ipc
			if i == 0 || slow < minSlow {
				minSlow = slow
			}
			if slow > maxSlow {
				maxSlow = slow
			}
			res.Rows = append(res.Rows, Row{
				Series: q.Name,
				Label:  fmt.Sprintf("t%d:%s", i, n),
				Value:  ipc,
				Extra: map[string]float64{
					"solo_ipc": solo.IPC(),
					"slowdown": slow,
				},
			})
		}
		fairness := 0.0
		if maxSlow > 0 {
			fairness = minSlow / maxSlow
		}
		res.Rows = append(res.Rows, Row{
			Series: q.Name,
			Label:  "AGGREGATE",
			Value:  coloc.IPC(),
			Extra: map[string]float64{
				"throughput":   throughput,
				"min_slowdown": minSlow,
				"max_slowdown": maxSlow,
				"fairness":     fairness,
				"stlb_mpki":    aggregateSTLBMPKI(coloc),
			},
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d cores, tenants cycled over %d server workloads; slowdown = solo IPC / co-located IPC per tenant", cores, len(set)),
		"fairness = min slowdown / max slowdown (1 = interference hits every tenant equally)",
		"the paper-style sweep runs this at 4, 16, and 64 cores (-cores)")
	return res, nil
}

// aggregateSTLBMPKI returns demand STLB misses per kilo-instruction over
// every retired instruction of the co-located run.
func aggregateSTLBMPKI(s *stats.Sim) float64 {
	return s.STLB.MPKI(s.TotalInstructions())
}
