package experiments

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// tiny returns sub-second options for unit tests.
func tiny() Options {
	return Options{
		ServerWorkloads:     2,
		SpecWorkloads:       2,
		SMTPairsPerCategory: 1,
		Warmup:              20_000,
		Measure:             40_000,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ext1", "fig1", "fig2", "fig3", "fig4", "fig8a", "fig8b",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "mc1", "tab1", "tab2", "tab3"}
	have := All()
	if len(have) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(have), len(want), have)
	}
	for _, id := range want {
		if _, err := Run(id, Options{}); id == "tab1" || id == "tab2" {
			if err != nil {
				t.Errorf("%s: %v", id, err)
			}
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", tiny()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestPolicyTableMatchesPaper(t *testing.T) {
	combos := PolicyTable()
	if len(combos) != 9 {
		t.Fatalf("policy table has %d rows, want 9", len(combos))
	}
	byName := map[string]Combo{}
	for _, c := range combos {
		byName[c.Name] = c
	}
	if c := byName["iTP+xPTP"]; c.STLB != "itp" || c.L2C != "xptp" || c.LLC != "lru" {
		t.Errorf("iTP+xPTP combo wrong: %+v", c)
	}
	if c := byName["CHiRP+TDRRIP"]; c.STLB != "chirp" || c.L2C != "tdrrip" {
		t.Errorf("CHiRP+TDRRIP combo wrong: %+v", c)
	}
}

func TestTab1HasTable1Values(t *testing.T) {
	res, err := Tab1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	find := func(series, label string) float64 {
		for _, r := range res.Rows {
			if r.Series == series && r.Label == label {
				return r.Value
			}
		}
		t.Fatalf("row %s/%s missing", series, label)
		return 0
	}
	if find("STLB", "entries") != 1536 {
		t.Error("STLB entries wrong")
	}
	if find("core", "ROB entries") != 352 {
		t.Error("ROB wrong")
	}
	if find("iTP", "N") != 4 || find("iTP", "M") != 8 {
		t.Error("iTP params wrong")
	}
}

func TestFig2RunsAndShapes(t *testing.T) {
	res, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var serverMean, specMean float64
	for _, r := range res.Rows {
		if r.Label == "MEAN" {
			if r.Series == "qualcomm-server" {
				serverMean = r.Value
			} else {
				specMean = r.Value
			}
		}
	}
	if serverMean <= specMean {
		t.Errorf("server instruction STLB MPKI (%.3f) should exceed spec (%.3f)", serverMean, specMean)
	}
}

func TestFig1Shape(t *testing.T) {
	o := tiny()
	// Fig1 compares steady-state translation overheads; give it enough
	// instructions for the ITLB-size effect to emerge from warmup noise.
	o.Warmup, o.Measure = 150_000, 400_000
	res, err := Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	// Server overhead at 8 entries must exceed overhead at 1024 entries.
	get := func(series, label string) float64 {
		for _, r := range res.Rows {
			if r.Series == series && r.Label == label {
				return r.Value
			}
		}
		t.Fatalf("missing row %s/%s", series, label)
		return 0
	}
	if get("qualcomm-server", "8 entries") <= get("qualcomm-server", "1024 entries") {
		t.Error("bigger ITLB should reduce instruction translation overhead")
	}
	if get("spec", "64 entries") > get("qualcomm-server", "64 entries") {
		t.Error("spec overhead should be below server overhead at 64 entries")
	}
}

func TestFig8aRuns(t *testing.T) {
	res, err := Fig8a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	geomeans := 0
	for _, r := range res.Rows {
		series[r.Series] = true
		if r.Label == "GEOMEAN" {
			geomeans++
		}
	}
	if len(series) != 9 || geomeans != 9 {
		t.Errorf("expected 9 series each with a geomean; got %d series, %d geomeans", len(series), geomeans)
	}
}

func TestFig8bRuns(t *testing.T) {
	res, err := Fig8b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range res.Rows {
		if r.Label == "GEOMEAN" {
			return
		}
	}
	t.Error("missing geomean rows")
}

func TestFig10Shape(t *testing.T) {
	o := tiny()
	o.Warmup, o.Measure = 100_000, 200_000
	res, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series, label string) float64 {
		for _, r := range res.Rows {
			if r.Series == series && r.Label == label {
				return r.Value
			}
		}
		t.Fatalf("missing %s/%s", series, label)
		return 0
	}
	if get("itp", "1T iMPKI") >= get("lru", "1T iMPKI") {
		t.Error("iTP should reduce single-thread instruction STLB MPKI")
	}
}

func TestMemoisationSharesBaselines(t *testing.T) {
	r := newRunner(tiny())
	cfg := config.Default()
	j1 := r.newJob([]string{"srv_000"}, cfg, "x")
	j2 := r.newJob([]string{"srv_000"}, cfg, "x")
	if j1.key != j2.key {
		t.Error("identical jobs should share a memo key")
	}
	s1, err := r.run(nil, j1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.run(nil, j2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("memoised run should return the same stats object")
	}
}

// TestRunAllReportsFaultsWithPartialResults is the acceptance scenario:
// a sweep containing one injected-panic job and one injected-stall job
// must complete, report both failures (with stack and diagnostic
// snapshot), and still produce results for every healthy job.
func TestRunAllReportsFaultsWithPartialResults(t *testing.T) {
	o := tiny()
	o.WatchdogInterval = 10 * time.Millisecond
	o.WatchdogSamples = 3
	r := newRunner(o)
	base, err := r.cat.Get("spec_000")
	if err != nil {
		t.Fatal(err)
	}
	r.cat.Register("fault_panic", workload.HighPressure, func() workload.Stream {
		return workload.NewPanicStream(base.NewStream(), 10_000)
	})
	r.cat.Register("fault_stall", workload.HighPressure, func() workload.Stream {
		// Auto-release only bounds the leak if the kill path were broken;
		// the supervisor's context cancellation is the real unblock.
		return workload.NewStallStream(base.NewStream(), 30_000, 5*time.Second)
	})

	cfg := config.Default()
	jobs := []job{
		r.newJob([]string{"srv_000"}, cfg, "fault-sweep"),
		r.newJob([]string{"fault_panic"}, cfg, "fault-sweep"),
		r.newJob([]string{"fault_stall"}, cfg, "fault-sweep"),
		r.newJob([]string{"spec_001"}, cfg, "fault-sweep"),
	}
	sims, err := r.runAll(jobs)
	if err == nil {
		t.Fatal("sweep with injected faults must report an error")
	}
	var pe *harness.PanicError
	if !errors.As(err, &pe) {
		t.Errorf("joined error should contain the injected panic, got: %v", err)
	} else if !strings.Contains(pe.Error(), "injected panic") || !strings.Contains(pe.Error(), "goroutine") {
		t.Errorf("panic error should carry the value and a stack, got: %v", pe)
	}
	var se *harness.StallError
	if !errors.As(err, &se) {
		t.Errorf("joined error should contain the watchdog stall, got: %v", err)
	} else if !strings.Contains(se.Snapshot, "progress=") {
		t.Errorf("stall should carry a diagnostic snapshot, got: %q", se.Snapshot)
	}
	if sims[0] == nil || sims[3] == nil {
		t.Error("healthy jobs must produce results despite the faulty ones")
	}
	if sims[1] != nil || sims[2] != nil {
		t.Error("failed jobs must leave their result slots nil")
	}
}

// TestRunAllCheckpointResume re-runs an interrupted campaign against the
// same journal with a fresh runner (cold in-process memo, as after a
// process restart): completed jobs must be recalled from the checkpoint
// without re-simulation, and only the previously failed job re-executes.
func TestRunAllCheckpointResume(t *testing.T) {
	o := tiny()
	o.Checkpoint = filepath.Join(t.TempDir(), "exp.ckpt")
	cfg := config.Default()

	r1 := newRunner(o)
	base1, err := r1.cat.Get("spec_000")
	if err != nil {
		t.Fatal(err)
	}
	r1.cat.Register("flappy", workload.HighPressure, func() workload.Stream {
		return workload.NewPanicStream(base1.NewStream(), 10_000)
	})
	jobs1 := []job{
		r1.newJob([]string{"srv_000"}, cfg, "resume"),
		r1.newJob([]string{"flappy"}, cfg, "resume"),
		r1.newJob([]string{"spec_001"}, cfg, "resume"),
	}
	sims1, err := r1.runAll(jobs1)
	if err == nil {
		t.Fatal("first pass must report the injected failure")
	}
	if sims1[0] == nil || sims1[2] == nil {
		t.Fatal("healthy jobs of the first pass must complete")
	}

	// Second pass: poison the completed workloads' generators so any
	// re-simulation panics (and fails the pass), and heal the flaky one.
	r2 := newRunner(o)
	r2.cat.Register("srv_000", workload.HighPressure, func() workload.Stream {
		panic("checkpointed job was re-simulated")
	})
	r2.cat.Register("spec_001", workload.LowPressure, func() workload.Stream {
		panic("checkpointed job was re-simulated")
	})
	base2, err := r2.cat.Get("spec_000")
	if err != nil {
		t.Fatal(err)
	}
	r2.cat.Register("flappy", workload.HighPressure, base2.NewStream)
	jobs2 := []job{
		r2.newJob([]string{"srv_000"}, cfg, "resume"),
		r2.newJob([]string{"flappy"}, cfg, "resume"),
		r2.newJob([]string{"spec_001"}, cfg, "resume"),
	}
	sims2, err := r2.runAll(jobs2)
	if err != nil {
		t.Fatalf("resumed pass should recall completed jobs and heal the rest: %v", err)
	}
	for i, s := range sims2 {
		if s == nil {
			t.Fatalf("resumed pass left slot %d empty", i)
		}
	}
	// Recalled results survive the JSON round trip with their numbers.
	if sims2[0].IPC() != sims1[0].IPC() || sims2[0].TotalInstructions() != sims1[0].TotalInstructions() {
		t.Errorf("recalled result drifted: IPC %v vs %v", sims2[0].IPC(), sims1[0].IPC())
	}
}

func TestJobKeysDifferAcrossConfigs(t *testing.T) {
	r := newRunner(tiny())
	a := r.newJob([]string{"srv_000"}, config.Default(), "x")
	cfg := config.Default()
	cfg.STLBPolicy = "itp"
	b := r.newJob([]string{"srv_000"}, cfg, "x")
	if a.key == b.key {
		t.Error("different policies must not share a memo key")
	}
	cfg2 := config.Default()
	cfg2.HugePageFraction = 0.5
	c := r.newJob([]string{"srv_000"}, cfg2, "x")
	if a.key == c.key {
		t.Error("different huge-page fractions must not share a memo key")
	}
}

func TestPrintOutput(t *testing.T) {
	res := Result{
		Figure: "figX",
		Title:  "demo",
		YLabel: "units",
		Rows: []Row{
			{Series: "a", Label: "w1", Value: 1.5, Extra: map[string]float64{"m": 2}},
			{Series: "b", Label: "GEOMEAN", Value: -0.25},
		},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	Print(&buf, res)
	out := buf.String()
	for _, frag := range []string{"figX", "demo", "units", "GEOMEAN", "m=2.0000", "a note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestGeomeanSpeedupAgainstKnownValues(t *testing.T) {
	mk := func(instr, cycles uint64) *stats.Sim {
		s := stats.NewSim()
		s.Instructions[0] = instr
		s.Cycles = arch.Cycle(cycles)
		return s
	}
	bases := []*stats.Sim{mk(1000, 1000), mk(1000, 1000)}
	withs := []*stats.Sim{mk(1100, 1000), mk(1000, 1000)} // +10% and 0%
	got := geomeanSpeedup(bases, withs)
	want := 100 * (1.0488088481701515 - 1) // sqrt(1.1)
	if got < want-0.01 || got > want+0.01 {
		t.Errorf("geomean speedup = %.4f, want %.4f", got, want)
	}
	if s := speedup(bases[0], withs[0]); s < 9.999 || s > 10.001 {
		t.Errorf("speedup = %v, want ~10", s)
	}
	// Self comparison is exactly zero.
	if geomeanSpeedup(bases[:1], bases[:1]) != 0 {
		t.Error("self speedup should be 0")
	}
}

// TestShardedRunAllMatchesSerial routes the same job set through the
// serial and Options.Shards paths: pair jobs (run whole) and duplicate
// keys must be exact, single-workload jobs must agree within the
// sharding methodology's error bounds (DESIGN.md §12), and the stitched
// instruction count must be exact.
func TestShardedRunAllMatchesSerial(t *testing.T) {
	o := tiny()
	serial := newRunner(o)
	cfg := config.Default()
	names := serial.serverSet()
	jobs := []job{
		serial.newJob([]string{names[0]}, cfg, "shardtest"),
		serial.newJob([]string{names[0], names[1]}, cfg, "shardtest"),
		serial.newJob([]string{names[0]}, cfg, "shardtest"), // duplicate key
	}
	want, err := serial.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}

	o.Shards = 2
	sharded := newRunner(o)
	got, err := sharded.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("sharded runAll returned %d results, want %d", len(got), len(jobs))
	}
	for i, s := range got {
		if s == nil {
			t.Fatalf("job %d: nil stats", i)
		}
		if gi, wi := s.TotalInstructions(), want[i].TotalInstructions(); gi != wi {
			t.Errorf("job %d: %d instructions, serial %d", i, gi, wi)
		}
	}
	if !reflect.DeepEqual(got[1], want[1]) {
		t.Error("pair job runs whole and must match the serial run exactly")
	}
	if got[2] != got[0] {
		t.Error("duplicate-key jobs should share one stitched stats record")
	}
	// The only sharded approximation is warmup; at this 1:1 warmup:measure
	// geometry IPC stays well inside the documented bounds.
	if d := got[0].IPC()/want[0].IPC() - 1; d > 0.15 || d < -0.15 {
		t.Errorf("sharded IPC %.4f vs serial %.4f: delta %.3f outside bound", got[0].IPC(), want[0].IPC(), d)
	}
	// Memoisation: a second sharded runAll recalls every stitched record.
	again, err := sharded.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != got[i] {
			t.Errorf("job %d: second sharded runAll should hit the memo", i)
		}
	}
}

// TestShardedFigure runs one real figure through Options.Shards and
// checks it produces the same rows as the serial run.
func TestShardedFigure(t *testing.T) {
	o := tiny()
	serial, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Shards = 2
	sharded, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded.Rows) != len(serial.Rows) {
		t.Fatalf("sharded Fig2 has %d rows, serial %d", len(sharded.Rows), len(serial.Rows))
	}
	for i, r := range sharded.Rows {
		if r.Series != serial.Rows[i].Series || r.Label != serial.Rows[i].Label {
			t.Errorf("row %d: %s/%s, serial %s/%s", i, r.Series, r.Label, serial.Rows[i].Series, serial.Rows[i].Label)
		}
		if r.Value < 0 || r.Value != r.Value {
			t.Errorf("row %d (%s/%s): bad value %v", i, r.Series, r.Label, r.Value)
		}
	}
}

// TestSampledRunAllMatchesSerial routes the same job set through the
// serial and Options.SamplePhases paths: pair jobs (run whole) and
// duplicate keys must be exact, the reconstructed instruction count must
// be exact, and IPC must land within the sampling methodology's bounds
// (DESIGN.md §14 — wider than sharding's because phase sampling
// approximates the measured region, not just the warmup).
func TestSampledRunAllMatchesSerial(t *testing.T) {
	o := tiny()
	serial := newRunner(o)
	cfg := config.Default()
	names := serial.serverSet()
	jobs := []job{
		serial.newJob([]string{names[0]}, cfg, "sampletest"),
		serial.newJob([]string{names[0], names[1]}, cfg, "sampletest"),
		serial.newJob([]string{names[0]}, cfg, "sampletest"), // duplicate key
	}
	want, err := serial.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}

	o.SamplePhases = 2
	o.SampleWindow = 10_000
	o.FuncWarmup = 10_000
	sampled := newRunner(o)
	got, err := sampled.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range got {
		if s == nil {
			t.Fatalf("job %d: nil stats", i)
		}
		if gi, wi := s.TotalInstructions(), want[i].TotalInstructions(); gi != wi {
			t.Errorf("job %d: %d instructions, serial %d (weights must cover the measured region exactly)", i, gi, wi)
		}
	}
	if !reflect.DeepEqual(got[1], want[1]) {
		t.Error("pair job runs whole and must match the serial run exactly")
	}
	if got[2] != got[0] {
		t.Error("duplicate-key jobs should share one stitched stats record")
	}
	if d := got[0].IPC()/want[0].IPC() - 1; d > 0.35 || d < -0.35 {
		t.Errorf("sampled IPC %.4f vs serial %.4f: delta %.3f outside bound", got[0].IPC(), want[0].IPC(), d)
	}
	// Memoisation: a second sampled runAll recalls every stitched record
	// without re-profiling.
	again, err := sampled.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != got[i] {
			t.Errorf("job %d: second sampled runAll should hit the memo", i)
		}
	}
	// SamplePhases and Shards together is a configuration error.
	o.Shards = 2
	if _, err := newRunner(o).runAll(jobs); err == nil {
		t.Error("SamplePhases+Shards accepted; want an error")
	}
}

// TestFuncWarmupRunAll: FuncWarmup alone (Shards unset) routes
// single-workload jobs through the segment engine as one functionally
// warmed shard; the result stays close to the serial run.
func TestFuncWarmupRunAll(t *testing.T) {
	o := tiny()
	serial := newRunner(o)
	cfg := config.Default()
	names := serial.serverSet()
	jobs := []job{serial.newJob([]string{names[0]}, cfg, "fwtest")}
	want, err := serial.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	o.FuncWarmup = 10_000
	got, err := newRunner(o).runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if gi, wi := got[0].TotalInstructions(), want[0].TotalInstructions(); gi != wi {
		t.Errorf("%d instructions, serial %d", gi, wi)
	}
	if d := got[0].IPC()/want[0].IPC() - 1; d > 0.15 || d < -0.15 {
		t.Errorf("func-warmed IPC %.4f vs serial %.4f: delta %.3f outside bound", got[0].IPC(), want[0].IPC(), d)
	}
}

// TestSampledFigure runs one real figure through Options.SamplePhases
// and checks it produces the same rows as the serial run.
func TestSampledFigure(t *testing.T) {
	o := tiny()
	serial, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	o.SamplePhases = 2
	o.SampleWindow = 10_000
	sampled, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled.Rows) != len(serial.Rows) {
		t.Fatalf("sampled Fig2 has %d rows, serial %d", len(sampled.Rows), len(serial.Rows))
	}
	for i, r := range sampled.Rows {
		if r.Series != serial.Rows[i].Series || r.Label != serial.Rows[i].Label {
			t.Errorf("row %d: %s/%s, serial %s/%s", i, r.Series, r.Label, serial.Rows[i].Series, serial.Rows[i].Label)
		}
		if r.Value != r.Value {
			t.Errorf("row %d (%s/%s): NaN value", i, r.Series, r.Label)
		}
	}
}
