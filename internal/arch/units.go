package arch

// Cycle counts simulated clock cycles. Instr counts retired
// instructions. Both are uint64 under the hood, which is exactly why
// they are distinct defined types: a cycle budget silently compared
// against an instruction count reproduces a class of simulator bug that
// is invisible in review. The cycleunits analyzer (internal/lint)
// additionally forbids conversions that launder one unit into the other
// without an //itp:unitcast justification; extraction to plain uint64 at
// API boundaries (metrics counters, JSON rows) stays free.
type Cycle uint64

// Instr counts retired instructions. See Cycle.
type Instr uint64
