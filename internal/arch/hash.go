package arch

// StateHash is an FNV-1a-style 64-bit running hash of architectural
// state. Components fold their tag/metadata arrays into it word by word;
// two simulations are in identical architectural state iff their folds
// produce the same value. The fold is pure integer arithmetic — no
// allocation, no floats, no iteration-order sensitivity as long as
// callers visit state in a fixed structural order — so beacon streams are
// bit-identical across runs, ingestion modes, and race/norace builds.
type StateHash uint64

const (
	fnvOffset64 StateHash = 14695981039346656037
	fnvPrime64  StateHash = 1099511628211
)

// NewStateHash returns the canonical initial value.
//
//itp:hotpath
func NewStateHash() StateHash { return fnvOffset64 }

// Word folds one 64-bit value, byte by byte (FNV-1a ordering).
//
//itp:hotpath
func (h *StateHash) Word(v uint64) {
	x := *h
	for i := 0; i < 8; i++ {
		x ^= StateHash(v & 0xff)
		x *= fnvPrime64
		v >>= 8
	}
	*h = x
}

// Bool folds one boolean as a 0/1 word.
//
//itp:hotpath
func (h *StateHash) Bool(b bool) {
	if b {
		h.Word(1)
	} else {
		h.Word(0)
	}
}

// Sum returns the current fold.
//
//itp:hotpath
func (h *StateHash) Sum() uint64 { return uint64(*h) }

// StateHasher is implemented by components that can fold their complete
// architectural state (tags, metadata, replacement state, in-flight
// bookkeeping) into a StateHash. Implementations must visit state in a
// fixed structural order and must not allocate: beacons are emitted from
// the simulation hot loop's cold boundary path.
type StateHasher interface {
	HashState(h *StateHash)
}
