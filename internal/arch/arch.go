// Package arch defines the shared architectural vocabulary of the
// simulator: addresses, access kinds, translation classes, and the
// block/page geometry constants every other package agrees on.
package arch

import "fmt"

// Addr is a virtual or physical byte address.
type Addr = uint64

// Geometry constants for the simulated machine. Cache blocks are 64 bytes
// (ChampSim's fixed block size); pages are 4KB base with optional 2MB huge
// pages, matching the paper's two evaluation scenarios.
const (
	BlockBits = 6
	BlockSize = 1 << BlockBits

	PageBits4K = 12
	PageSize4K = 1 << PageBits4K

	PageBits2M = 21
	PageSize2M = 1 << PageBits2M
)

// Kind classifies a memory-hierarchy access by what issued it.
type Kind uint8

const (
	// IFetch is an instruction-cache demand fetch.
	IFetch Kind = iota
	// Load is a demand data read.
	Load
	// Store is a demand data write.
	Store
	// PTW is a page-table-walk reference looking for a PTE.
	PTW
	// Prefetch is a hardware-prefetcher fill request.
	Prefetch
	// Writeback is a dirty-block eviction travelling down the hierarchy.
	Writeback
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	case PTW:
		return "ptw"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsDemand reports whether the access is on the demand path (counts toward
// demand MPKI, as opposed to prefetch or writeback traffic).
//
//itp:hotpath
func (k Kind) IsDemand() bool {
	return k == IFetch || k == Load || k == Store || k == PTW
}

// Class says whether an address translation (or a PTE block produced by a
// walk) serves the instruction stream or the data stream. This is the
// paper's Type bit: Type=0 means instruction, Type=1 means data.
type Class uint8

const (
	// InstrClass marks instruction translations (Type=0 in the paper).
	InstrClass Class = iota
	// DataClass marks data translations (Type=1 in the paper).
	DataClass
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == InstrClass {
		return "instr"
	}
	return "data"
}

// Access describes one reference travelling through the memory system. It
// carries the metadata replacement policies need: the issuing kind, the
// translation class for PTW references and TLB fills, whether the block
// being filled holds PTE payload, and — for T-DRRIP — whether the demand
// access's own translation missed the STLB.
type Access struct {
	Addr Addr // block- or page-aligned address being referenced
	PC   Addr // program counter of the causing instruction
	Kind Kind
	// Class is meaningful for Kind==PTW (which stream the walk serves)
	// and for TLB requests.
	Class Class
	// IsPTE marks an access that reads/fills a block containing page
	// table entries. IsPTE && Class==DataClass identifies the blocks
	// xPTP protects.
	IsPTE bool
	// STLBMiss marks a demand access whose translation missed the STLB
	// (used by T-DRRIP's eviction bias).
	STLBMiss bool
	// Thread is the hardware-thread id (0 in single-thread runs).
	Thread uint8
}

// BlockAddr returns the 64B-block-aligned address of a.
//
//itp:hotpath
func BlockAddr(a Addr) Addr { return a &^ (BlockSize - 1) }

// BlockNumber returns the block number (address >> BlockBits).
//
//itp:hotpath
func BlockNumber(a Addr) Addr { return a >> BlockBits }

// PageNumber4K returns the 4KB virtual/physical page number of a.
//
//itp:hotpath
func PageNumber4K(a Addr) Addr { return a >> PageBits4K }

// PageNumber2M returns the 2MB page number of a.
//
//itp:hotpath
func PageNumber2M(a Addr) Addr { return a >> PageBits2M }

// PageOffset4K returns the offset of a within its 4KB page.
//
//itp:hotpath
func PageOffset4K(a Addr) Addr { return a & (PageSize4K - 1) }

// PageOffset2M returns the offset of a within its 2MB page.
//
//itp:hotpath
func PageOffset2M(a Addr) Addr { return a & (PageSize2M - 1) }
