package arch

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		IFetch:    "ifetch",
		Load:      "load",
		Store:     "store",
		PTW:       "ptw",
		Prefetch:  "prefetch",
		Writeback: "writeback",
		Kind(99):  "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	if InstrClass.String() != "instr" || DataClass.String() != "data" {
		t.Fatalf("Class strings wrong: %q %q", InstrClass, DataClass)
	}
}

func TestIsDemand(t *testing.T) {
	demand := []Kind{IFetch, Load, Store, PTW}
	for _, k := range demand {
		if !k.IsDemand() {
			t.Errorf("%v should be demand", k)
		}
	}
	for _, k := range []Kind{Prefetch, Writeback} {
		if k.IsDemand() {
			t.Errorf("%v should not be demand", k)
		}
	}
}

func TestBlockAlignment(t *testing.T) {
	a := Addr(0x12345)
	if got := BlockAddr(a); got != 0x12340 {
		t.Errorf("BlockAddr(0x12345) = %#x, want 0x12340", got)
	}
	if got := BlockNumber(a); got != 0x12345>>6 {
		t.Errorf("BlockNumber wrong: %#x", got)
	}
}

func TestPageHelpers(t *testing.T) {
	a := Addr(0x40001234)
	if PageNumber4K(a) != a>>12 {
		t.Errorf("PageNumber4K wrong")
	}
	if PageOffset4K(a) != 0x234 {
		t.Errorf("PageOffset4K = %#x, want 0x234", PageOffset4K(a))
	}
	if PageNumber2M(a) != a>>21 {
		t.Errorf("PageNumber2M wrong")
	}
	if PageOffset2M(a) != a&(PageSize2M-1) {
		t.Errorf("PageOffset2M wrong")
	}
}

// Property: block alignment is idempotent and never increases the address.
func TestBlockAddrProperties(t *testing.T) {
	f := func(a Addr) bool {
		b := BlockAddr(a)
		return b <= a && BlockAddr(b) == b && a-b < BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: page number/offset decompose the address exactly.
func TestPageDecomposition(t *testing.T) {
	f := func(a Addr) bool {
		return PageNumber4K(a)<<PageBits4K+PageOffset4K(a) == a &&
			PageNumber2M(a)<<PageBits2M+PageOffset2M(a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryConstants(t *testing.T) {
	if BlockSize != 64 {
		t.Fatalf("BlockSize = %d, want 64", BlockSize)
	}
	if PageSize4K != 4096 {
		t.Fatalf("PageSize4K = %d", PageSize4K)
	}
	if PageSize2M != 2<<20 {
		t.Fatalf("PageSize2M = %d", PageSize2M)
	}
}
