package arch

import (
	"hash/fnv"
	"testing"
)

// TestStateHashMatchesFNV pins the fold to the reference FNV-1a: Word
// must hash exactly like feeding the value's little-endian bytes to the
// standard library implementation, so the format is stable and
// documented, not an accident of this file.
func TestStateHashMatchesFNV(t *testing.T) {
	values := []uint64{0, 1, 0xdeadbeef, ^uint64(0), 1 << 63}
	ref := fnv.New64a()
	for _, v := range values {
		var le [8]byte
		for i := range le {
			le[i] = byte(v >> (8 * i))
		}
		ref.Write(le[:])
	}
	h := NewStateHash()
	for _, v := range values {
		h.Word(v)
	}
	if h.Sum() != ref.Sum64() {
		t.Fatalf("StateHash %016x, reference FNV-1a %016x", h.Sum(), ref.Sum64())
	}
}

func TestStateHashEmpty(t *testing.T) {
	h := NewStateHash()
	if h.Sum() != fnv.New64a().Sum64() {
		t.Errorf("empty hash should equal the FNV-1a offset basis, got %016x", h.Sum())
	}
}

func TestStateHashBool(t *testing.T) {
	ht := NewStateHash()
	ht.Bool(true)
	hf := NewStateHash()
	hf.Bool(false)
	if ht.Sum() == hf.Sum() {
		t.Error("Bool(true) and Bool(false) should fold differently")
	}
	h1 := NewStateHash()
	h1.Word(1)
	if ht.Sum() != h1.Sum() {
		t.Error("Bool(true) should fold like Word(1)")
	}
}

func TestStateHashOrderSensitive(t *testing.T) {
	a := NewStateHash()
	a.Word(1)
	a.Word(2)
	b := NewStateHash()
	b.Word(2)
	b.Word(1)
	if a.Sum() == b.Sum() {
		t.Error("fold must be order-sensitive")
	}
}
