package core

import (
	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/tlb"
)

// ITP is the Instruction Translation Prioritization STLB replacement
// policy (Section 4.1). Per entry it keeps the 1-bit Type (instruction vs
// data translation, already part of tlb.Entry as Class) and a saturating
// Freq counter.
//
// Insertion (Figure 5, top):
//   - data translations are inserted at LRUpos — first in line for
//     eviction (step 1);
//   - instruction translations are inserted N positions below MRUpos with
//     Freq reset to 0 (steps 2–3); the MRU position itself is reserved
//     for instruction entries whose Freq counter has saturated.
//
// Promotion (Figure 5, bottom):
//   - an instruction hit promotes to MRUpos if Freq is saturated, else to
//     MRUpos−N, incrementing Freq (steps i–iii);
//   - a data hit moves the entry to LRUpos+M, i.e. M positions above the
//     bottom of the stack (step iv).
//
// Eviction is plain LRU: the entry at LRUpos.
type ITP struct {
	n       int
	m       int
	freqMax uint8
}

// NewITP builds iTP from its configuration parameters.
func NewITP(p config.ITPParams) *ITP {
	return &ITP{
		n:       p.N,
		m:       p.M,
		freqMax: uint8(1<<p.FreqBits - 1),
	}
}

// Name implements tlb.Policy.
func (*ITP) Name() string { return "itp" }

// Victim implements tlb.Policy: the entry at LRUpos, like LRU-based
// policies (Section 4.1).
//
//itp:hotpath
func (*ITP) Victim(_ int, set []tlb.Entry, _ *tlb.Request) int {
	return tlb.StackLRUVictim(set)
}

// insertionPos returns the stack position iTP assigns to a new or
// re-promoted non-saturated instruction entry: MRUpos−N, clamped to the
// set size.
//
//itp:hotpath
func (p *ITP) insertionPos(set []tlb.Entry) int {
	pos := p.n
	if pos >= len(set) {
		pos = len(set) - 1
	}
	return pos
}

// dataPromotionPos returns LRUpos+M as a stack index: M positions above
// the bottom of the stack.
//
//itp:hotpath
func (p *ITP) dataPromotionPos(set []tlb.Entry) int {
	pos := len(set) - 1 - p.m
	if pos < 0 {
		pos = 0
	}
	return pos
}

// OnFill implements tlb.Policy (iTP's insertion policy).
//
//itp:hotpath
func (p *ITP) OnFill(_ int, set []tlb.Entry, way int, req *tlb.Request) {
	if req.Class == arch.InstrClass {
		set[way].Freq = 0
		tlb.MoveToStackPos(set, way, p.insertionPos(set))
		return
	}
	tlb.MoveToStackPos(set, way, len(set)-1) // LRUpos
}

// OnHit implements tlb.Policy (iTP's promotion policy).
//
//itp:hotpath
func (p *ITP) OnHit(_ int, set []tlb.Entry, way int, _ *tlb.Request) {
	e := &set[way]
	if e.Class == arch.InstrClass {
		if e.Freq >= p.freqMax {
			tlb.MoveToStackPos(set, way, 0) // MRUpos
		} else {
			tlb.MoveToStackPos(set, way, p.insertionPos(set))
			e.Freq++
		}
		return
	}
	tlb.MoveToStackPos(set, way, p.dataPromotionPos(set))
}

// OnEvict implements tlb.Policy.
//
//itp:hotpath
func (*ITP) OnEvict(int, []tlb.Entry, int) {}

// ProbLRU is the motivation study's modified LRU (Section 3.2): on each
// eviction it victimises the least-recently-used *data* translation with
// probability P, and the least-recently-used *instruction* translation
// with probability 1−P; if only one class is present, the overall LRU
// entry is evicted regardless of the draw. Insertion and promotion follow
// plain LRU.
type ProbLRU struct {
	p   float64
	rng uint64
}

// NewProbLRU returns the variant with keep-instructions probability p.
func NewProbLRU(p float64, seed uint64) *ProbLRU {
	if seed == 0 {
		seed = 0x243f6a8885a308d3
	}
	return &ProbLRU{p: p, rng: seed}
}

// Name implements tlb.Policy.
func (*ProbLRU) Name() string { return "problru" }

//itp:hotpath
func (p *ProbLRU) nextFloat() float64 {
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	return float64(p.rng>>11) / float64(1<<53)
}

// lruOfClass returns the deepest-stacked valid entry of class c, or -1.
//
//itp:hotpath
func lruOfClass(set []tlb.Entry, c arch.Class) int {
	victim, deepest := -1, -1
	for i := range set {
		if set[i].Valid && set[i].Class == c && int(set[i].Stack) > deepest {
			victim, deepest = i, int(set[i].Stack)
		}
	}
	return victim
}

// Victim implements tlb.Policy.
//
//itp:hotpath
func (p *ProbLRU) Victim(_ int, set []tlb.Entry, _ *tlb.Request) int {
	if w := tlb.InvalidWay(set); w >= 0 {
		return w
	}
	victimClass := arch.InstrClass
	if p.nextFloat() < p.p {
		victimClass = arch.DataClass
	}
	if w := lruOfClass(set, victimClass); w >= 0 {
		return w
	}
	return tlb.StackLRUVictim(set)
}

// OnFill implements tlb.Policy.
//
//itp:hotpath
func (*ProbLRU) OnFill(_ int, set []tlb.Entry, way int, _ *tlb.Request) {
	tlb.MoveToStackPos(set, way, 0)
}

// OnHit implements tlb.Policy.
//
//itp:hotpath
func (*ProbLRU) OnHit(_ int, set []tlb.Entry, way int, _ *tlb.Request) {
	tlb.MoveToStackPos(set, way, 0)
}

// OnEvict implements tlb.Policy.
//
//itp:hotpath
func (*ProbLRU) OnEvict(int, []tlb.Entry, int) {}
