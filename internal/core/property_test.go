package core

import (
	"math/rand"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/replacement"
	"itpsim/internal/tlb"
)

// randomSet builds a full cache set with a random recency permutation and
// random data-PTE marking.
func randomSet(rng *rand.Rand, ways int, pteProb float64) []replacement.Line {
	set := make([]replacement.Line, ways)
	perm := rng.Perm(ways)
	for i := range set {
		set[i] = replacement.Line{
			Valid:     true,
			Tag:       uint64(i),
			Stack:     uint8(perm[i]),
			IsDataPTE: rng.Float64() < pteProb,
		}
	}
	return set
}

// TestXPTPVictimProperties checks Figure 6's eviction rules hold on
// randomly generated sets for every K:
//
//   - the victim is always a valid way index;
//   - an invalid way, when present, is always preferred;
//   - when the victim is not the true-LRU block, it never holds a data
//     PTE and sits fewer than K positions above the stack bottom;
//   - when the victim IS the true-LRU block despite a non-data-PTE
//     alternative existing, that alternative was >= K positions up.
func TestXPTPVictimProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{1, 2, 4, 8, 16} {
		pol := NewXPTP(config.XPTPParams{K: k})
		for trial := 0; trial < 2000; trial++ {
			ways := 4 << rng.Intn(3) // 4, 8, 16
			set := randomSet(rng, ways, rng.Float64())
			v := pol.Victim(0, set, nil)
			if v < 0 || v >= ways {
				t.Fatalf("K=%d: victim %d out of range", k, v)
			}

			lru, lruDepth := -1, -1
			alt, altDepth := -1, -1
			for i := range set {
				pos := int(set[i].Stack)
				if pos > lruDepth {
					lru, lruDepth = i, pos
				}
				if !set[i].IsDataPTE && pos > altDepth {
					alt, altDepth = i, pos
				}
			}
			altFromBottom := (ways - 1) - altDepth
			switch {
			case v == lru:
				// LRU eviction is only allowed when no alternative
				// exists or the alternative is too recent (>= K up).
				if alt >= 0 && alt != lru && altFromBottom < k {
					t.Fatalf("K=%d ways=%d: evicted LRU (data-PTE=%v) though alt at %d positions up",
						k, ways, set[lru].IsDataPTE, altFromBottom)
				}
			default:
				if set[v].IsDataPTE {
					t.Fatalf("K=%d: alternative victim holds a data PTE", k)
				}
				if v != alt {
					t.Fatalf("K=%d: skipped past the deepest non-data-PTE block", k)
				}
				if altFromBottom >= k {
					t.Fatalf("K=%d: alternative %d positions up exceeds the skip budget", k, altFromBottom)
				}
			}
		}
	}
}

func TestXPTPPrefersInvalidWay(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pol := NewXPTP(config.XPTPParams{K: 8})
	for trial := 0; trial < 500; trial++ {
		set := randomSet(rng, 8, 0.5)
		dead := rng.Intn(8)
		set[dead].Valid = false
		if v := pol.Victim(0, set, nil); set[v].Valid {
			t.Fatalf("victim %d is valid though way %d was free", v, dead)
		}
	}
}

// TestAdaptiveXPTPDisabledIsLRU checks the Section 4.3.1 degeneration:
// with the enable signal low, xPTP's victim is exactly the true-LRU way
// on any set, data PTE or not.
func TestAdaptiveXPTPDisabledIsLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	enabled := false
	pol := NewAdaptiveXPTP(config.XPTPParams{K: 8}, func() bool { return enabled })
	for trial := 0; trial < 1000; trial++ {
		set := randomSet(rng, 8, 0.7)
		want := replacement.StackLRUVictim(set)
		if v := pol.Victim(0, set, nil); v != want {
			t.Fatalf("disabled xPTP chose %d, plain LRU chooses %d", v, want)
		}
	}
	// Flipping the signal re-engages protection on the same sets.
	enabled = true
	protective := false
	for trial := 0; trial < 1000; trial++ {
		set := randomSet(rng, 8, 0.7)
		if pol.Victim(0, set, nil) != replacement.StackLRUVictim(set) {
			protective = true
			break
		}
	}
	if !protective {
		t.Fatal("enabled xPTP never deviated from LRU across 1000 random sets")
	}
}

// itpModel drives the iTP policy through a single fully-associative TLB
// set with the simulator's miss/fill protocol.
type itpModel struct {
	p   *ITP
	set []tlb.Entry
}

func (m *itpModel) touch(vpn uint64, class arch.Class) {
	req := &tlb.Request{VPN: vpn, Class: class}
	for i := range m.set {
		if m.set[i].Valid && m.set[i].VPN == vpn {
			m.p.OnHit(0, m.set, i, req)
			return
		}
	}
	way := m.p.Victim(0, m.set, req)
	m.set[way] = tlb.Entry{Valid: true, VPN: vpn, Class: class, Stack: m.set[way].Stack}
	m.p.OnFill(0, m.set, way, req)
}

// TestITPVictimClassProperty checks the Section 4.1 victim behaviour over
// random mixed streams: the victim is always the deepest-stacked entry
// (plain LRU eviction), and — because data inserts at LRUpos while
// instruction entries insert N below MRU — an instruction entry is never
// victimised while a valid data entry sits deeper in the stack.
func TestITPVictimClassProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := NewITP(config.Default().ITP)
	m := &itpModel{p: p, set: make([]tlb.Entry, 16)}
	tlb.InitSet(m.set)
	for step := 0; step < 20000; step++ {
		vpn := uint64(rng.Intn(48) + 1)
		class := arch.DataClass
		if rng.Intn(3) == 0 {
			class = arch.InstrClass
		}

		req := &tlb.Request{VPN: vpn, Class: class}
		v := p.Victim(0, m.set, req)
		deepest := -1
		for i := range m.set {
			if deepest < 0 || m.set[i].Stack > m.set[deepest].Stack {
				deepest = i
			}
		}
		full := true
		for i := range m.set {
			if !m.set[i].Valid {
				full = false
			}
		}
		if full {
			if v != deepest {
				t.Fatalf("step %d: victim %d (stack %d) is not the LRU entry %d (stack %d)",
					step, v, m.set[v].Stack, deepest, m.set[deepest].Stack)
			}
			if m.set[v].Class == arch.InstrClass {
				for i := range m.set {
					if m.set[i].Valid && m.set[i].Class == arch.DataClass && m.set[i].Stack > m.set[v].Stack {
						t.Fatalf("step %d: victimised instruction entry above a data entry", step)
					}
				}
			}
		}

		m.touch(vpn, class)
		if !tlb.CheckStackInvariant(m.set) {
			t.Fatalf("step %d: stack invariant broken", step)
		}
	}
}

// TestITPInsertionPositions pins the Figure 5 insertion/promotion stack
// positions directly.
func TestITPInsertionPositions(t *testing.T) {
	params := config.Default().ITP
	p := NewITP(params)
	const ways = 16
	set := make([]tlb.Entry, ways)
	tlb.InitSet(set)
	for i := range set {
		set[i].Valid = true
		set[i].VPN = uint64(i + 1)
		set[i].Class = arch.DataClass
	}

	// Data fill lands at LRUpos.
	p.OnFill(0, set, 3, &tlb.Request{Class: arch.DataClass})
	if got := int(set[3].Stack); got != ways-1 {
		t.Fatalf("data fill at stack %d, want LRUpos %d", got, ways-1)
	}
	// Instruction fill lands N below MRU with Freq reset.
	set[5].Freq = 3
	set[5].Class = arch.InstrClass
	p.OnFill(0, set, 5, &tlb.Request{Class: arch.InstrClass})
	if got := int(set[5].Stack); got != params.N {
		t.Fatalf("instruction fill at stack %d, want N=%d", got, params.N)
	}
	if set[5].Freq != 0 {
		t.Fatalf("instruction fill kept Freq=%d, want reset", set[5].Freq)
	}
	// Non-saturated instruction hit repromotes to N and increments Freq.
	p.OnHit(0, set, 5, &tlb.Request{Class: arch.InstrClass})
	if got := int(set[5].Stack); got != params.N {
		t.Fatalf("instruction hit at stack %d, want N=%d", got, params.N)
	}
	if set[5].Freq != 1 {
		t.Fatalf("instruction hit Freq=%d, want 1", set[5].Freq)
	}
	// Saturated instruction hit reaches MRU.
	set[5].Freq = uint8(1<<params.FreqBits - 1)
	p.OnHit(0, set, 5, &tlb.Request{Class: arch.InstrClass})
	if got := int(set[5].Stack); got != 0 {
		t.Fatalf("saturated instruction hit at stack %d, want MRU", got)
	}
	// Data hit moves to LRUpos+M.
	p.OnHit(0, set, 7, &tlb.Request{Class: arch.DataClass})
	if got, want := int(set[7].Stack), ways-1-params.M; got != want {
		t.Fatalf("data hit at stack %d, want LRUpos+M=%d", got, want)
	}
}
