package core_test

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/core"
	"itpsim/internal/tlb"
)

// ExampleITP shows iTP's insertion asymmetry: data translations enter at
// the bottom of the recency stack (first in line for eviction) while
// instruction translations enter near the top.
func ExampleITP() {
	stlb := tlb.New("stlb", 1, 4, core.NewITP(config.ITPParams{N: 1, M: 2, FreqBits: 3}))

	stlb.Insert(0x400000, 1, arch.PageBits4K, arch.InstrClass, 0, 0) // hot code page
	for i := 1; i <= 4; i++ {
		// Four data translations flood the 4-way set...
		stlb.Insert(arch.Addr(0x1000000+i*arch.PageSize4K), uint64(i), arch.PageBits4K, arch.DataClass, 0, 0)
	}
	// ...yet the instruction translation survives.
	_, _, hit := stlb.Lookup(0x400000, 0, arch.InstrClass, 0)
	fmt.Println("instruction translation still resident:", hit)
	// Output:
	// instruction translation still resident: true
}

// ExampleController shows the Section 4.3.1 phase-adaptive mechanism.
func ExampleController() {
	ctrl := core.NewController(config.XPTPParams{K: 8, T1: 2, WindowInstr: 1000})

	// A high-pressure window: 5 STLB misses in 1000 instructions.
	for i := 0; i < 5; i++ {
		ctrl.OnSTLBMiss()
	}
	ctrl.OnRetire(1000)
	fmt.Println("after pressured window, xPTP enabled:", ctrl.Enabled())

	// A quiet window: no misses.
	ctrl.OnRetire(1000)
	fmt.Println("after quiet window, xPTP enabled:", ctrl.Enabled())
	// Output:
	// after pressured window, xPTP enabled: true
	// after quiet window, xPTP enabled: false
}
