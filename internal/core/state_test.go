package core

import (
	"errors"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/audit"
	"itpsim/internal/config"
)

func ctrlHash(c *Controller) uint64 {
	h := arch.NewStateHash()
	c.HashState(&h)
	return h.Sum()
}

func auditCtrl(t *testing.T, c *Controller) []audit.Violation {
	t.Helper()
	a := &audit.Auditor{}
	a.Register("xptp", c)
	err := a.Run(0, 1000)
	if err == nil {
		return nil
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("audit returned %T: %v", err, err)
	}
	return ae.Violations
}

func TestControllerHashStateDeterministic(t *testing.T) {
	p := config.Default().XPTP
	a, b := NewController(p), NewController(p)
	if ctrlHash(a) != ctrlHash(b) {
		t.Fatal("fresh controllers must hash equal")
	}
	a.OnRetire(100)
	if ctrlHash(a) == ctrlHash(b) {
		t.Fatal("retired instructions must change the hash")
	}
	b.OnRetire(100)
	if ctrlHash(a) != ctrlHash(b) {
		t.Fatal("controllers with identical history must hash equal")
	}
	a.OnSTLBMiss()
	if ctrlHash(a) == ctrlHash(b) {
		t.Fatal("an STLB miss must change the hash")
	}
}

func TestControllerHashStateSeesWindowDecision(t *testing.T) {
	p := config.Default().XPTP
	a, b := NewController(p), NewController(p)
	// Closing a full window with zero misses flips useXPTP off and bumps
	// the DisabledWindows tally.
	a.OnRetire(arch.Instr(p.WindowInstr))
	if a.Enabled() {
		t.Fatal("a miss-free window must disable xPTP")
	}
	if ctrlHash(a) == ctrlHash(b) {
		t.Fatal("a window decision must change the hash")
	}
}

func TestControllerAuditCleanDuringWindow(t *testing.T) {
	c := NewController(config.Default().XPTP)
	c.OnRetire(500)
	c.OnSTLBMiss()
	if v := auditCtrl(t, c); v != nil {
		t.Fatalf("healthy controller reported violations: %v", v)
	}
}

func TestControllerAuditDetectsLostWindowClose(t *testing.T) {
	c := NewController(config.Default().XPTP)
	c.instrCount = c.windowInstr
	found := false
	for _, v := range auditCtrl(t, c) {
		if v.Rule == "window-counter" {
			found = true
		}
	}
	if !found {
		t.Fatal("retired count at window size must be reported as a lost close")
	}
}

func TestControllerAuditDetectsNegativeMissCount(t *testing.T) {
	c := NewController(config.Default().XPTP)
	c.missCount = -1
	found := false
	for _, v := range auditCtrl(t, c) {
		if v.Rule == "miss-counter" {
			found = true
		}
	}
	if !found {
		t.Fatal("negative miss count must be reported")
	}
}
