package core

import "itpsim/internal/config"

// Overheads quantifies the hardware cost of iTP and xPTP exactly as
// Section 4.1.3 and Section 4.2 do: the metadata bits each policy adds
// per entry/block/MSHR, in bits and total bytes for a given machine.
type Overheads struct {
	// ITPBitsPerSTLBEntry is Type (1) + Freq (FreqBits).
	ITPBitsPerSTLBEntry int
	// ITPSTLBBytes is the total iTP storage across the STLB
	// (the paper: 768 bytes for a 1536-entry STLB with 4 bits/entry).
	ITPSTLBBytes int
	// ITPMSHRBits is the Type bit per STLB MSHR entry.
	ITPMSHRBits int

	// XPTPBitsPerL2CBlock is the Type bit per L2C block.
	XPTPBitsPerL2CBlock int
	// XPTPL2CBytes is the total xPTP storage across the L2C.
	XPTPL2CBytes int
	// XPTPMSHRBits is the Type bit per L2C MSHR entry.
	XPTPMSHRBits int

	// ControllerBits is the adaptive mechanism's state: two counters
	// sized for the window plus the 1-bit status register
	// (Section 4.3.1).
	ControllerBits int
}

// ComputeOverheads derives the storage costs from a machine description.
func ComputeOverheads(cfg config.SystemConfig) Overheads {
	o := Overheads{}
	o.ITPBitsPerSTLBEntry = 1 + cfg.ITP.FreqBits
	o.ITPSTLBBytes = cfg.STLB.Entries() * o.ITPBitsPerSTLBEntry / 8
	o.ITPMSHRBits = cfg.STLB.MSHRs // 1 bit per MSHR entry

	o.XPTPBitsPerL2CBlock = 1
	o.XPTPL2CBytes = cfg.L2C.Entries() * o.XPTPBitsPerL2CBlock / 8
	o.XPTPMSHRBits = cfg.L2C.MSHRs

	// Counter widths: enough bits to count WindowInstr instructions and
	// the same again for misses, plus the status bit.
	w := cfg.XPTP.WindowInstr
	if w == 0 {
		w = 1000
	}
	bits := 0
	for v := w; v > 0; v >>= 1 {
		bits++
	}
	o.ControllerBits = 2*bits + 1
	return o
}
