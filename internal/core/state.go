package core

import (
	"itpsim/internal/arch"
	"itpsim/internal/audit"
)

// HashState implements arch.StateHasher: the adaptive controller's
// window-local counters and status bit, plus its window tallies — the
// complete state behind every future enable/disable decision.
func (c *Controller) HashState(h *arch.StateHash) {
	h.Word(uint64(c.instrCount))
	h.Word(uint64(c.missCount))
	h.Bool(c.useXPTP)
	h.Word(c.EnabledWindows)
	h.Word(c.DisabledWindows)
}

// AuditState implements audit.Checkable. Invariants:
//
//   - window-counter: the intra-window retired count stays below the
//     window size (OnRetire closes windows as they complete, so a count
//     at or past the boundary means a close was lost);
//   - miss-counter: the window-local STLB-miss count is never negative
//     garbage from a wrapped decrement.
func (c *Controller) AuditState(r *audit.Report) {
	if c.instrCount >= c.windowInstr {
		r.Violatef("window-counter", "intra-window retired count %d at or past window size %d (lost close)",
			c.instrCount, c.windowInstr)
	}
	if c.missCount < 0 {
		r.Violatef("miss-counter", "window STLB-miss count went negative: %d", c.missCount)
	}
}
