package core

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/tlb"
)

func itpParams() config.ITPParams { return config.ITPParams{N: 4, M: 8, FreqBits: 3} }

func fullSet(ways int) []tlb.Entry {
	set := make([]tlb.Entry, ways)
	tlb.InitSet(set)
	for i := range set {
		set[i].Valid = true
		set[i].VPN = uint64(100 + i)
	}
	return set
}

func instrReq() *tlb.Request { return &tlb.Request{Class: arch.InstrClass} }
func dataReq() *tlb.Request  { return &tlb.Request{Class: arch.DataClass} }

func TestITPInsertData(t *testing.T) {
	p := NewITP(itpParams())
	set := fullSet(12)
	set[5].Class = arch.DataClass
	p.OnFill(0, set, 5, dataReq())
	if int(set[5].Stack) != 11 {
		t.Errorf("data insert at stack %d, want 11 (LRUpos)", set[5].Stack)
	}
	if !tlb.CheckStackInvariant(set) {
		t.Error("stack invariant broken")
	}
}

func TestITPInsertInstruction(t *testing.T) {
	p := NewITP(itpParams())
	set := fullSet(12)
	set[3].Class = arch.InstrClass
	set[3].Freq = 5 // stale value from previous occupant
	p.OnFill(0, set, 3, instrReq())
	if int(set[3].Stack) != 4 {
		t.Errorf("instr insert at stack %d, want 4 (MRUpos-N)", set[3].Stack)
	}
	if set[3].Freq != 0 {
		t.Errorf("Freq = %d, want 0 on insertion", set[3].Freq)
	}
}

func TestITPInstructionPromotionLadder(t *testing.T) {
	p := NewITP(itpParams())
	set := fullSet(12)
	set[0].Class = arch.InstrClass
	p.OnFill(0, set, 0, instrReq())
	// Non-saturated hits stay at MRUpos-N and increment Freq.
	for i := 1; i <= 6; i++ {
		p.OnHit(0, set, 0, instrReq())
		if int(set[0].Stack) != 4 {
			t.Fatalf("hit %d: stack %d, want 4", i, set[0].Stack)
		}
		if set[0].Freq != uint8(i) {
			t.Fatalf("hit %d: freq %d, want %d", i, set[0].Freq, i)
		}
	}
	// 7th hit saturates (3-bit max = 7).
	p.OnHit(0, set, 0, instrReq())
	if set[0].Freq != 7 {
		t.Fatalf("freq = %d, want 7", set[0].Freq)
	}
	// Saturated entry now promotes to MRUpos.
	p.OnHit(0, set, 0, instrReq())
	if set[0].Stack != 0 {
		t.Errorf("saturated hit: stack %d, want 0 (MRUpos)", set[0].Stack)
	}
	if set[0].Freq != 7 {
		t.Errorf("freq should stay saturated, got %d", set[0].Freq)
	}
}

func TestITPDataPromotion(t *testing.T) {
	p := NewITP(itpParams())
	set := fullSet(12)
	set[2].Class = arch.DataClass
	p.OnFill(0, set, 2, dataReq())
	p.OnHit(0, set, 2, dataReq())
	// LRUpos + M with M=8 and 12 ways: stack position 11-8 = 3.
	if int(set[2].Stack) != 3 {
		t.Errorf("data promotion to stack %d, want 3 (LRUpos+M)", set[2].Stack)
	}
}

func TestITPVictimIsLRU(t *testing.T) {
	p := NewITP(itpParams())
	set := fullSet(12)
	v := p.Victim(0, set, dataReq())
	if int(set[v].Stack) != 11 {
		t.Errorf("victim at stack %d, want 11", set[v].Stack)
	}
	set[7].Valid = false
	if v := p.Victim(0, set, dataReq()); v != 7 {
		t.Errorf("victim = %d, want invalid way 7", v)
	}
}

// End-to-end through a real TLB: instruction translations should survive
// data-translation floods, which is iTP's entire purpose.
func TestITPProtectsInstructionsUnderDataFlood(t *testing.T) {
	stlb := tlb.New("stlb", 1, 12, NewITP(itpParams()))
	instrVA := arch.Addr(0x400000)
	stlb.Insert(instrVA, 1, arch.PageBits4K, arch.InstrClass, 0, 0)
	// Touch it a few times to build Freq.
	for i := 0; i < 8; i++ {
		stlb.Lookup(instrVA, 0, arch.InstrClass, 0)
	}
	// Flood with 100 distinct data translations.
	for i := 0; i < 100; i++ {
		stlb.Insert(arch.Addr(0x1000000+i*arch.PageSize4K), uint64(i), arch.PageBits4K, arch.DataClass, 0, 0)
	}
	if _, _, hit := stlb.Lookup(instrVA, 0, arch.InstrClass, 0); !hit {
		t.Error("iTP should keep the hot instruction translation resident")
	}
}

// The converse: under LRU the same flood evicts the instruction entry.
func TestLRUDoesNotProtectInstructions(t *testing.T) {
	stlb := tlb.New("stlb", 1, 12, tlb.NewLRU())
	instrVA := arch.Addr(0x400000)
	stlb.Insert(instrVA, 1, arch.PageBits4K, arch.InstrClass, 0, 0)
	for i := 0; i < 100; i++ {
		stlb.Insert(arch.Addr(0x1000000+i*arch.PageSize4K), uint64(i), arch.PageBits4K, arch.DataClass, 0, 0)
	}
	if _, _, hit := stlb.Lookup(instrVA, 0, arch.InstrClass, 0); hit {
		t.Error("LRU should have evicted the instruction translation")
	}
}

// Useless instruction entries must still age out (Section 4.1.1: "useless
// instruction translation entries can reach the LRUpos").
func TestITPColdInstructionsAgeOut(t *testing.T) {
	stlb := tlb.New("stlb", 1, 12, NewITP(itpParams()))
	cold := arch.Addr(0x400000)
	stlb.Insert(cold, 1, arch.PageBits4K, arch.InstrClass, 0, 0)
	// Insert 12 more instruction translations without ever touching cold.
	for i := 1; i <= 12; i++ {
		stlb.Insert(arch.Addr(0x400000+i*arch.PageSize4K), uint64(i), arch.PageBits4K, arch.InstrClass, 0, 0)
	}
	if _, _, hit := stlb.Lookup(cold, 0, arch.InstrClass, 0); hit {
		t.Error("cold instruction translation should age out")
	}
}

func TestITPSmallAssociativityClamps(t *testing.T) {
	// N=4 with a 2-way structure must clamp, not panic.
	p := NewITP(config.ITPParams{N: 4, M: 8, FreqBits: 3})
	set := fullSet(2)
	p.OnFill(0, set, 0, instrReq())
	if int(set[0].Stack) >= len(set) {
		t.Error("insertion position not clamped")
	}
	p.OnHit(0, set, 1, dataReq())
	if !tlb.CheckStackInvariant(set) {
		t.Error("invariant broken on small set")
	}
}

func TestProbLRUAlwaysData(t *testing.T) {
	p := NewProbLRU(1.0, 42) // always evict data
	set := fullSet(4)
	set[0].Class = arch.InstrClass
	set[1].Class = arch.DataClass
	set[2].Class = arch.InstrClass
	set[3].Class = arch.DataClass
	for i := 0; i < 20; i++ {
		v := p.Victim(0, set, dataReq())
		if set[v].Class != arch.DataClass {
			t.Fatalf("P=1.0 evicted an instruction entry (way %d)", v)
		}
	}
}

func TestProbLRUAlwaysInstr(t *testing.T) {
	p := NewProbLRU(0.0, 42)
	set := fullSet(4)
	set[0].Class = arch.InstrClass
	set[1].Class = arch.DataClass
	for i := 0; i < 20; i++ {
		v := p.Victim(0, set, dataReq())
		if set[v].Class != arch.InstrClass {
			t.Fatalf("P=0 evicted a data entry (way %d)", v)
		}
	}
}

func TestProbLRUFallsBackWhenClassAbsent(t *testing.T) {
	p := NewProbLRU(1.0, 42)
	set := fullSet(4)
	for i := range set {
		set[i].Class = arch.InstrClass // no data entries at all
	}
	v := p.Victim(0, set, dataReq())
	if int(set[v].Stack) != 3 {
		t.Errorf("fallback should evict overall LRU, got stack %d", set[v].Stack)
	}
}

func TestProbLRUVictimsEvictsLRUOfClass(t *testing.T) {
	p := NewProbLRU(1.0, 7)
	set := fullSet(4)
	set[0].Class = arch.DataClass
	set[1].Class = arch.DataClass
	set[2].Class = arch.InstrClass
	set[3].Class = arch.InstrClass
	// Make way 0 more recent than way 1.
	tlb.MoveToStackPos(set, 0, 0)
	v := p.Victim(0, set, dataReq())
	if v != 1 {
		t.Errorf("victim = %d, want LRU data way 1", v)
	}
}

func TestProbLRUSplitRoughlyMatchesP(t *testing.T) {
	p := NewProbLRU(0.8, 99)
	set := fullSet(8)
	for i := range set {
		if i%2 == 0 {
			set[i].Class = arch.DataClass
		} else {
			set[i].Class = arch.InstrClass
		}
	}
	dataEvicts := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		v := p.Victim(0, set, dataReq())
		if set[v].Class == arch.DataClass {
			dataEvicts++
		}
	}
	frac := float64(dataEvicts) / trials
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("data eviction fraction = %.3f, want ~0.8", frac)
	}
}
