package core

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/replacement"
)

func xptpParams() config.XPTPParams {
	return config.XPTPParams{K: 8, T1: 1, WindowInstr: 1000}
}

func cacheSet(ways int) []replacement.Line {
	set := make([]replacement.Line, ways)
	replacement.InitSet(set)
	for i := range set {
		set[i].Valid = true
		set[i].Tag = uint64(i)
	}
	return set
}

func TestXPTPProtectsDataPTEs(t *testing.T) {
	x := NewXPTP(xptpParams()) // K=8 on an 8-way set: alternative always wins
	set := cacheSet(8)
	// The LRU block (deepest stack) holds a data PTE.
	lruWay := replacement.StackPosOf(set, 7)
	set[lruWay].IsPTE = true
	set[lruWay].IsDataPTE = true
	v := x.Victim(0, set, &arch.Access{})
	if v == lruWay {
		t.Error("xPTP evicted the data-PTE LRU block")
	}
	// Victim should be the deepest non-data-PTE block (stack 6).
	if int(set[v].Stack) != 6 {
		t.Errorf("victim at stack %d, want 6", set[v].Stack)
	}
}

func TestXPTPInequalityEvictsPTEWhenAltTooRecent(t *testing.T) {
	// K=2: if the best alternative is within 2 positions of the stack
	// bottom we evict it; otherwise the data PTE goes.
	x := NewXPTP(config.XPTPParams{K: 2})
	set := cacheSet(8)
	// Bottom three stack positions hold data PTEs; the best alternative
	// is at stack 4 → 3 positions above bottom ≥ K → evict the LRU PTE.
	for _, pos := range []int{7, 6, 5} {
		w := replacement.StackPosOf(set, pos)
		set[w].IsDataPTE = true
		set[w].IsPTE = true
	}
	v := x.Victim(0, set, &arch.Access{})
	if int(set[v].Stack) != 7 || !set[v].IsDataPTE {
		t.Errorf("expected LRU data-PTE eviction, got stack %d (pte=%v)", set[v].Stack, set[v].IsDataPTE)
	}

	// Now only the bottom one is a PTE; alternative at stack 6 is 1
	// position above bottom < K → evict the alternative.
	set2 := cacheSet(8)
	w := replacement.StackPosOf(set2, 7)
	set2[w].IsDataPTE = true
	v2 := x.Victim(0, set2, &arch.Access{})
	if int(set2[v2].Stack) != 6 {
		t.Errorf("expected alternative eviction at stack 6, got %d", set2[v2].Stack)
	}
}

func TestXPTPAllDataPTEsFallsBack(t *testing.T) {
	x := NewXPTP(xptpParams())
	set := cacheSet(8)
	for i := range set {
		set[i].IsDataPTE = true
	}
	v := x.Victim(0, set, &arch.Access{})
	if int(set[v].Stack) != 7 {
		t.Errorf("all-PTE set should evict LRU, got stack %d", set[v].Stack)
	}
}

func TestXPTPPrefersInvalid(t *testing.T) {
	x := NewXPTP(xptpParams())
	set := cacheSet(8)
	set[3].Valid = false
	if v := x.Victim(0, set, &arch.Access{}); v != 3 {
		t.Errorf("victim = %d, want invalid way 3", v)
	}
}

func TestXPTPDisabledIsLRU(t *testing.T) {
	enabled := false
	x := NewAdaptiveXPTP(xptpParams(), func() bool { return enabled })
	set := cacheSet(8)
	lruWay := replacement.StackPosOf(set, 7)
	set[lruWay].IsDataPTE = true
	if v := x.Victim(0, set, &arch.Access{}); v != lruWay {
		t.Error("disabled xPTP should behave as plain LRU")
	}
	enabled = true
	if v := x.Victim(0, set, &arch.Access{}); v == lruWay {
		t.Error("enabled xPTP should protect the data PTE")
	}
}

func TestXPTPFillAndHitAreLRU(t *testing.T) {
	x := NewXPTP(xptpParams())
	set := cacheSet(8)
	x.OnFill(0, set, 5, &arch.Access{})
	if set[5].Stack != 0 {
		t.Error("fill should insert at MRU")
	}
	x.OnHit(0, set, 2, &arch.Access{})
	if set[2].Stack != 0 {
		t.Error("hit should promote to MRU")
	}
	if !replacement.CheckStackInvariant(set) {
		t.Error("invariant broken")
	}
}

func TestControllerWindowing(t *testing.T) {
	c := NewController(config.XPTPParams{K: 8, T1: 2, WindowInstr: 1000})
	if !c.Enabled() {
		t.Error("controller should start enabled")
	}
	// Window 1: only 1 miss (≤ T1) → disable.
	c.OnSTLBMiss()
	c.OnRetire(1000)
	if c.Enabled() {
		t.Error("low-pressure window should disable xPTP")
	}
	if c.DisabledWindows != 1 {
		t.Errorf("DisabledWindows = %d, want 1", c.DisabledWindows)
	}
	// Window 2: 5 misses (> T1) → enable.
	for i := 0; i < 5; i++ {
		c.OnSTLBMiss()
	}
	c.OnRetire(1000)
	if !c.Enabled() {
		t.Error("high-pressure window should enable xPTP")
	}
	if c.EnabledWindows != 1 {
		t.Errorf("EnabledWindows = %d, want 1", c.EnabledWindows)
	}
}

func TestControllerCountersResetPerWindow(t *testing.T) {
	c := NewController(config.XPTPParams{T1: 3, WindowInstr: 1000})
	for i := 0; i < 4; i++ {
		c.OnSTLBMiss()
	}
	c.OnRetire(1000) // enabled; counters reset
	// Next window sees zero misses → disabled.
	c.OnRetire(1000)
	if c.Enabled() {
		t.Error("miss counter should reset between windows")
	}
}

func TestControllerMultipleWindowsInOneRetire(t *testing.T) {
	c := NewController(config.XPTPParams{T1: 1, WindowInstr: 1000})
	c.OnSTLBMiss()
	c.OnSTLBMiss()
	c.OnRetire(3500) // closes 3 windows
	if c.EnabledWindows+c.DisabledWindows != 3 {
		t.Errorf("closed %d windows, want 3", c.EnabledWindows+c.DisabledWindows)
	}
}

func TestControllerT1ZeroAlwaysOn(t *testing.T) {
	c := NewController(config.XPTPParams{T1: 0, WindowInstr: 1000})
	c.OnRetire(5000)
	if !c.Enabled() {
		t.Error("T1<=0 should pin xPTP on")
	}
	if c.DisabledWindows != 0 {
		t.Error("no windows should be disabled with T1<=0")
	}
}

func TestControllerDefaultWindow(t *testing.T) {
	c := NewController(config.XPTPParams{T1: 1})
	c.OnSTLBMiss()
	c.OnSTLBMiss()
	c.OnRetire(999)
	before := c.EnabledWindows + c.DisabledWindows
	if before != 0 {
		t.Error("window should not close before 1000 instructions")
	}
	c.OnRetire(1)
	if c.EnabledWindows+c.DisabledWindows != 1 {
		t.Error("window should close at 1000 instructions")
	}
}

// Property: with no data-PTE blocks in play, xPTP's decisions are exactly
// LRU's — the paper's observation that xPTP "degenerates to LRU" when its
// protection never triggers (Section 4.3.1).
func TestXPTPEquivalentToLRUWithoutPTEs(t *testing.T) {
	x := NewXPTP(xptpParams())
	l := replacement.NewLRU()
	setX := cacheSet(8)
	setL := cacheSet(8)
	rng := uint64(77)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for op := 0; op < 20000; op++ {
		acc := &arch.Access{Addr: uint64(next(64)) << 6, Kind: arch.Load}
		switch next(3) {
		case 0:
			vx := x.Victim(0, setX, acc)
			vl := l.Victim(0, setL, acc)
			if vx != vl {
				t.Fatalf("op %d: victims diverged (%d vs %d)", op, vx, vl)
			}
			setX[vx].Valid, setL[vl].Valid = true, true
			x.OnFill(0, setX, vx, acc)
			l.OnFill(0, setL, vl, acc)
		case 1:
			w := next(8)
			x.OnHit(0, setX, w, acc)
			l.OnHit(0, setL, w, acc)
		default:
			w := next(8)
			x.OnEvict(0, setX, w)
			l.OnEvict(0, setL, w)
		}
		for i := range setX {
			if setX[i].Stack != setL[i].Stack {
				t.Fatalf("op %d: stacks diverged at way %d", op, i)
			}
		}
	}
}
