package core

import (
	"testing"

	"itpsim/internal/config"
)

func TestOverheadsMatchPaper(t *testing.T) {
	o := ComputeOverheads(config.Default())
	// Section 4.1.3: 4 additional bits per STLB entry → 768 bytes for a
	// 1536-entry STLB.
	if o.ITPBitsPerSTLBEntry != 4 {
		t.Errorf("iTP bits/entry = %d, want 4", o.ITPBitsPerSTLBEntry)
	}
	if o.ITPSTLBBytes != 768 {
		t.Errorf("iTP STLB bytes = %d, want 768 (the paper's number)", o.ITPSTLBBytes)
	}
	if o.ITPMSHRBits != 16 {
		t.Errorf("iTP MSHR bits = %d, want 16 (one per STLB MSHR)", o.ITPMSHRBits)
	}
	// Section 4.2: one bit per L2C block; 512KB / 64B = 8192 blocks = 1KB.
	if o.XPTPBitsPerL2CBlock != 1 {
		t.Errorf("xPTP bits/block = %d, want 1", o.XPTPBitsPerL2CBlock)
	}
	if o.XPTPL2CBytes != 1024 {
		t.Errorf("xPTP L2C bytes = %d, want 1024", o.XPTPL2CBytes)
	}
	if o.XPTPMSHRBits != 32 {
		t.Errorf("xPTP MSHR bits = %d, want 32", o.XPTPMSHRBits)
	}
	if o.ControllerBits <= 1 {
		t.Error("controller must cost two counters and a status bit")
	}
}

func TestOverheadsScaleWithConfig(t *testing.T) {
	cfg := config.Default().WithSTLBEntries(3072)
	o := ComputeOverheads(cfg)
	if o.ITPSTLBBytes != 1536 {
		t.Errorf("doubled STLB should double iTP storage: %d", o.ITPSTLBBytes)
	}
	cfg2 := config.Default()
	cfg2.ITP.FreqBits = 7
	if got := ComputeOverheads(cfg2).ITPBitsPerSTLBEntry; got != 8 {
		t.Errorf("bits/entry with 7-bit Freq = %d, want 8", got)
	}
	cfg3 := config.Default()
	cfg3.XPTP.WindowInstr = 0 // default window kicks in
	if ComputeOverheads(cfg3).ControllerBits != ComputeOverheads(config.Default()).ControllerBits-10 {
		// 20000-instr window needs ~15 bits; 1000 needs 10: difference 10 bits total (2 counters × 5).
		t.Log("controller bits differ as expected with window size")
	}
}
