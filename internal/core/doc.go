// Package core implements the paper's contribution:
//
//   - ITP — Instruction Translation Prioritization (Section 4.1), an STLB
//     replacement policy that keeps instruction translations near the top
//     of the recency stack, gated by a saturating per-entry frequency
//     counter, and inserts/demotes data translations at the bottom.
//   - XPTP — extended Page Table Prioritization (Section 4.2), an L2C
//     replacement policy that avoids evicting blocks holding data PTEs so
//     the extra data page walks iTP induces are served from the L2C.
//   - Controller — the phase-adaptive mechanism of Section 4.3.1 that
//     enables xPTP only while STLB pressure (misses per 1000 retired
//     instructions) exceeds a threshold T1, degrading xPTP to plain LRU
//     otherwise.
//   - ProbLRU — the probabilistic keep-instructions LRU variant used by
//     the motivation study (Figures 3 and 4).
//
// ITP implements tlb.Policy; XPTP and its always-on variant implement
// replacement.Policy, so both plug into the generic structures in
// internal/tlb and internal/cache.
package core
