package core

import (
	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/replacement"
)

// XPTP is the extended Page Table Prioritization L2C replacement policy
// (Section 4.2). Insertion and promotion follow LRU; the eviction policy
// (Figure 6) protects blocks that hold *data* PTEs:
//
//	a. the default victim is the block at LRUpos;
//	b. the alternative victim (ALT_LRU) is the deepest-stacked block
//	   that does not hold a data PTE;
//	c. if ALT_LRU sits at least K positions above the bottom of the
//	   stack, it is "too recent" — the inequality
//	   ALT_LRUpos >= LRUpos + K holds — and the true LRU block (a data
//	   PTE) is evicted after all;
//	d. otherwise the alternative victim is evicted, keeping the data
//	   PTE resident.
//
// When the adaptive controller reports low STLB pressure the eviction
// steps a–d are skipped and the policy degenerates to plain LRU
// (Section 4.3.1) — no separate LRU implementation is needed.
type XPTP struct {
	k int
	// enabled gates the PTE-protecting eviction path; nil means always
	// enabled (the non-adaptive xPTP used in ablations).
	enabled func() bool
}

// NewXPTP builds an always-on xPTP from its parameters.
func NewXPTP(p config.XPTPParams) *XPTP {
	return &XPTP{k: p.K}
}

// NewAdaptiveXPTP builds an xPTP gated by the given enable signal
// (normally Controller.Enabled).
func NewAdaptiveXPTP(p config.XPTPParams, enabled func() bool) *XPTP {
	return &XPTP{k: p.K, enabled: enabled}
}

// Name implements replacement.Policy.
func (x *XPTP) Name() string { return "xptp" }

// Victim implements replacement.Policy.
//
//itp:hotpath
func (x *XPTP) Victim(_ int, set []replacement.Line, _ *arch.Access) int {
	if w := replacement.InvalidWay(set); w >= 0 {
		return w
	}
	lruVictim, lruDepth := 0, -1
	altVictim, altDepth := -1, -1
	for i := range set {
		pos := int(set[i].Stack)
		if pos > lruDepth {
			lruVictim, lruDepth = i, pos
		}
		if !set[i].IsDataPTE && pos > altDepth {
			altVictim, altDepth = i, pos
		}
	}
	//itp:nonalloc — bound at construction to Controller.Enabled, a field read
	if x.enabled != nil && !x.enabled() {
		return lruVictim // adaptive fallback: plain LRU
	}
	if altVictim < 0 {
		// Every block holds a data PTE; evict the LRU one.
		return lruVictim
	}
	// Positions from the bottom of the stack: LRU victim is at distance
	// 0; the inequality ALT_LRUpos >= LRUpos + K asks whether the
	// alternative is at least K recency positions above the bottom.
	altFromBottom := (len(set) - 1) - altDepth
	if altFromBottom >= x.k {
		return lruVictim
	}
	return altVictim
}

// OnFill implements replacement.Policy: LRU insertion at MRU (the Type
// bit is written by the cache when the fill completes, step 3.1 of
// Figure 7).
//
//itp:hotpath
func (*XPTP) OnFill(_ int, set []replacement.Line, way int, _ *arch.Access) {
	replacement.MoveToStackPos(set, way, 0)
}

// OnHit implements replacement.Policy: LRU promotion.
//
//itp:hotpath
func (*XPTP) OnHit(_ int, set []replacement.Line, way int, _ *arch.Access) {
	replacement.MoveToStackPos(set, way, 0)
}

// OnEvict implements replacement.Policy.
//
//itp:hotpath
func (*XPTP) OnEvict(int, []replacement.Line, int) {}

// Controller is the phase-adaptive mechanism of Section 4.3.1: a
// retired-instruction counter, an STLB-miss counter, and a 1-bit status
// register. Every WindowInstr retired instructions the miss count is
// compared against T1; the status bit selects xPTP when the count
// exceeds T1 and LRU otherwise, and both counters reset.
type Controller struct {
	windowInstr arch.Instr
	t1          int

	instrCount arch.Instr
	missCount  int
	useXPTP    bool

	// Window tallies for reporting.
	EnabledWindows  uint64
	DisabledWindows uint64

	// decisionHook, when set, observes every window decision at the
	// moment it is made (before the miss counter resets) — the metrics
	// layer uses it to record enable/disable transitions per window.
	decisionHook func(enabled bool, misses int)
}

// NewController builds the controller. T1 <= 0 pins xPTP on.
func NewController(p config.XPTPParams) *Controller {
	w := arch.Instr(p.WindowInstr)
	if w == 0 {
		w = 1000
	}
	return &Controller{windowInstr: w, t1: p.T1, useXPTP: true}
}

// OnSTLBMiss records one STLB miss.
//
//itp:hotpath
func (c *Controller) OnSTLBMiss() { c.missCount++ }

// OnRetire records n retired instructions and closes windows as they
// complete.
//
//itp:hotpath
func (c *Controller) OnRetire(n arch.Instr) {
	c.instrCount += n
	for c.instrCount >= c.windowInstr {
		c.instrCount -= c.windowInstr
		if c.t1 <= 0 {
			c.useXPTP = true
		} else {
			c.useXPTP = c.missCount > c.t1
		}
		if c.useXPTP {
			c.EnabledWindows++
		} else {
			c.DisabledWindows++
		}
		if c.decisionHook != nil {
			//itp:nonalloc — observability hook; nil in bare runs, counter bump under metrics
			c.decisionHook(c.useXPTP, c.missCount)
		}
		c.missCount = 0
	}
}

// SetDecisionHook registers fn to observe every window decision as it is
// made; misses is the STLB-miss count of the window just judged.
func (c *Controller) SetDecisionHook(fn func(enabled bool, misses int)) { c.decisionHook = fn }

// WindowInstr returns the controller's window size in retired
// instructions.
func (c *Controller) WindowInstr() arch.Instr { return c.windowInstr }

// T1 returns the controller's STLB-miss threshold.
func (c *Controller) T1() int { return c.t1 }

// Enabled reports whether xPTP's protecting eviction is active.
//
//itp:hotpath
func (c *Controller) Enabled() bool { return c.useXPTP }
