package prefetch

import (
	"testing"

	"itpsim/internal/arch"
)

func TestNextLine(t *testing.T) {
	p := NewNextLine()
	out := p.Train(&arch.Access{Addr: 0x1005, Kind: arch.Load})
	if len(out) != 1 || out[0] != 0x1040 {
		t.Errorf("next-line = %#v, want [0x1040]", out)
	}
	if p.Name() != "next-line" {
		t.Error("name wrong")
	}
}

func TestStrideDetectsUnitStride(t *testing.T) {
	p := NewStride(256, 2)
	pc := uint64(0x400100)
	// First access trains the entry, second establishes the stride,
	// third confirms it and triggers prefetches.
	var out []arch.Addr
	for i := 0; i < 3; i++ {
		out = p.Train(&arch.Access{PC: pc, Addr: arch.Addr(i) * arch.BlockSize, Kind: arch.Load})
	}
	if len(out) != 2 {
		t.Fatalf("prefetches = %d, want 2", len(out))
	}
	if out[0] != 3*arch.BlockSize || out[1] != 4*arch.BlockSize {
		t.Errorf("prefetch addrs = %#v", out)
	}
}

func TestStrideDetectsLargeStride(t *testing.T) {
	p := NewStride(256, 1)
	pc := uint64(0x8000)
	var out []arch.Addr
	for i := 0; i < 3; i++ {
		out = p.Train(&arch.Access{PC: pc, Addr: arch.Addr(i) * 4 * arch.BlockSize})
	}
	if len(out) != 1 || out[0] != 12*arch.BlockSize {
		t.Errorf("stride-4 prefetch = %#v, want [12 blocks]", out)
	}
}

func TestStrideIgnoresSameBlock(t *testing.T) {
	p := NewStride(64, 2)
	pc := uint64(0x100)
	p.Train(&arch.Access{PC: pc, Addr: 0x1000})
	out := p.Train(&arch.Access{PC: pc, Addr: 0x1008}) // same block
	if len(out) != 0 {
		t.Errorf("same-block access produced prefetches: %v", out)
	}
}

func TestStrideResetsOnStrideChange(t *testing.T) {
	p := NewStride(64, 1)
	pc := uint64(0x100)
	p.Train(&arch.Access{PC: pc, Addr: 0})
	p.Train(&arch.Access{PC: pc, Addr: 1 * arch.BlockSize})
	p.Train(&arch.Access{PC: pc, Addr: 2 * arch.BlockSize})
	// Stride changes: confidence must reset, no prefetch on first new-stride access.
	out := p.Train(&arch.Access{PC: pc, Addr: 10 * arch.BlockSize})
	if len(out) != 0 {
		t.Errorf("stride change should reset confidence, got %v", out)
	}
}

func TestStrideDistinguishesPCs(t *testing.T) {
	p := NewStride(256, 1)
	// Interleaved PCs with different strides must both train. The Train
	// result aliases an internal buffer, so copy before the next call.
	var outA, outB []arch.Addr
	for i := 0; i < 3; i++ {
		outA = append(outA[:0], p.Train(&arch.Access{PC: 0x1000, Addr: arch.Addr(i) * arch.BlockSize})...)
		outB = append(outB[:0], p.Train(&arch.Access{PC: 0x2000, Addr: arch.Addr(i) * 2 * arch.BlockSize})...)
	}
	if len(outA) != 1 || outA[0] != 3*arch.BlockSize {
		t.Errorf("PC A prefetch = %v", outA)
	}
	if len(outB) != 1 || outB[0] != 6*arch.BlockSize {
		t.Errorf("PC B prefetch = %v", outB)
	}
}

func TestStrideNegativeGuards(t *testing.T) {
	p := NewStride(64, 4)
	pc := uint64(0x100)
	// Descending accesses near address zero: prefetches must not wrap.
	p.Train(&arch.Access{PC: pc, Addr: 3 * arch.BlockSize})
	p.Train(&arch.Access{PC: pc, Addr: 2 * arch.BlockSize})
	out := p.Train(&arch.Access{PC: pc, Addr: 1 * arch.BlockSize})
	for _, a := range out {
		if a >= 1*arch.BlockSize {
			t.Errorf("negative-stride prefetch went forward/wrapped: %#x", a)
		}
	}
}
