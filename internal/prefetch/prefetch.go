// Package prefetch implements the hardware prefetchers of Table 1: a
// next-line prefetcher (L1D) and a PC-indexed stride prefetcher (L2C).
// The FDIP-style fetch-directed instruction prefetcher lives in
// internal/sim because it runs off the decoupled front-end's FTQ rather
// than off cache accesses.
package prefetch

import "itpsim/internal/arch"

// Prefetcher observes demand accesses and proposes block-aligned
// prefetch addresses.
type Prefetcher interface {
	Name() string
	// Train observes one demand access and returns the (possibly empty)
	// list of block addresses to prefetch. The returned slice is only
	// valid until the next Train call — implementations reuse it to keep
	// the access path allocation-free.
	//itp:hotpath
	Train(acc *arch.Access) []arch.Addr
}

// NextLine prefetches the sequentially next block on every demand access.
type NextLine struct {
	buf [1]arch.Addr
}

// NewNextLine returns a next-line prefetcher.
func NewNextLine() *NextLine { return &NextLine{} }

// Name implements Prefetcher.
func (*NextLine) Name() string { return "next-line" }

// Train implements Prefetcher.
//
//itp:hotpath
func (n *NextLine) Train(acc *arch.Access) []arch.Addr {
	n.buf[0] = arch.BlockAddr(acc.Addr) + arch.BlockSize
	return n.buf[:]
}

// strideEntry is one row of the stride table.
type strideEntry struct {
	tag        uint64
	lastAddr   arch.Addr
	stride     int64
	confidence int8
}

// Stride is a PC-indexed stride prefetcher with confidence counters: two
// consecutive accesses from the same PC with the same block stride arm
// it, after which it issues `degree` prefetches down the detected stride.
type Stride struct {
	table  []strideEntry
	mask   uint64
	degree int
	buf    []arch.Addr
}

// NewStride returns a stride prefetcher with the given table size
// (rounded up to a power of two) and prefetch degree.
func NewStride(tableSize, degree int) *Stride {
	size := 1
	for size < tableSize {
		size <<= 1
	}
	return &Stride{
		table:  make([]strideEntry, size),
		mask:   uint64(size - 1),
		degree: degree,
		buf:    make([]arch.Addr, 0, degree),
	}
}

// Name implements Prefetcher.
func (*Stride) Name() string { return "stride" }

// Train implements Prefetcher.
//
//itp:hotpath
func (s *Stride) Train(acc *arch.Access) []arch.Addr {
	idx := ((acc.PC >> 2) ^ (acc.PC >> 10)) & s.mask
	e := &s.table[idx]
	blk := int64(arch.BlockNumber(acc.Addr))
	s.buf = s.buf[:0]
	if e.tag != acc.PC {
		*e = strideEntry{tag: acc.PC, lastAddr: acc.Addr}
		return nil
	}
	stride := blk - int64(arch.BlockNumber(e.lastAddr))
	if stride == 0 {
		return nil // same block; no training signal
	}
	if stride == e.stride {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 0
	}
	e.lastAddr = acc.Addr
	if e.confidence >= 1 {
		for i := 1; i <= s.degree; i++ {
			next := blk + int64(i)*e.stride
			if next <= 0 {
				break
			}
			//itp:nonalloc — buf is pre-sized to degree; append never grows it
			s.buf = append(s.buf, arch.Addr(next)<<arch.BlockBits)
		}
	}
	return s.buf
}
