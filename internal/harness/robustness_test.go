package harness_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itpsim/internal/audit"
	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// beaconJob is machineJob with state beacons enabled, so the harness
// stamps the outcome and journals the stamp alongside the result.
func beaconJob(t *testing.T, key string, budget uint64) harness.Job[*stats.Sim] {
	t.Helper()
	return harness.Job[*stats.Sim]{
		Key: key,
		Run: func(jc *harness.JobContext) (*stats.Sim, error) {
			m, err := sim.NewMachine(config.Default())
			if err != nil {
				return nil, harness.Permanent(err)
			}
			m.EnableBeacons(10_000)
			jc.Attach(m)
			res, err := m.Run([]workload.Stream{specStream()}, budget)
			if err != nil {
				return nil, err
			}
			return res.Stats, nil
		},
	}
}

// TestOutcomeBeaconFreshVsResumed proves the beacon stamp travels the
// whole robustness loop: a fresh run stamps the outcome, the checkpoint
// journals it, a resumed campaign recalls the identical stamp without
// re-running, and a from-scratch re-run reproduces it bit for bit.
func TestOutcomeBeaconFreshVsResumed(t *testing.T) {
	dir := t.TempDir()
	o := fastOpts()
	o.Checkpoint = filepath.Join(dir, "run.ckpt")
	jobs := []harness.Job[*stats.Sim]{beaconJob(t, "beacon-a", 50_000)}

	outs, err := harness.RunAll(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fresh := outs[0].Beacon
	if fresh == nil {
		t.Fatal("fresh run must carry a beacon stamp")
	}
	if fresh.Count != 5 {
		t.Errorf("50k instructions at interval 10k should emit 5 beacons, got %d", fresh.Count)
	}

	outs, err = harness.RunAll(o, []harness.Job[*stats.Sim]{beaconJob(t, "beacon-a", 50_000)})
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].Cached {
		t.Fatal("second campaign should resume from the checkpoint")
	}
	if outs[0].Beacon == nil || *outs[0].Beacon != *fresh {
		t.Errorf("resumed stamp %+v, want journaled %+v", outs[0].Beacon, fresh)
	}

	if err := os.Remove(o.Checkpoint); err != nil {
		t.Fatal(err)
	}
	outs, err = harness.RunAll(o, []harness.Job[*stats.Sim]{beaconJob(t, "beacon-a", 50_000)})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Cached {
		t.Fatal("checkpoint removed; run must be fresh")
	}
	if outs[0].Beacon == nil || *outs[0].Beacon != *fresh {
		t.Errorf("re-run stamp %+v diverged from original %+v", outs[0].Beacon, fresh)
	}
}

// retrySchedule runs a key that fails n times and returns the logged
// "retrying in <d>" backoff values.
func retrySchedule(t *testing.T, seed uint64, key string, fails int) []string {
	t.Helper()
	o := fastOpts()
	o.Retries = fails
	o.Seed = seed
	var mu sync.Mutex
	var delays []string
	o.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		msg := strings.TrimSpace(format)
		if strings.Contains(msg, "retrying in") {
			delays = append(delays, strings.TrimSpace(args[len(args)-1].(time.Duration).String()))
		}
	}
	var n atomic.Int32
	job := harness.Job[int]{Key: key, Run: func(*harness.JobContext) (int, error) {
		if n.Add(1) <= int32(fails) {
			return 0, errors.New("transient")
		}
		return 1, nil
	}}
	if _, err := harness.RunAll(o, []harness.Job[int]{job}); err != nil {
		t.Fatal(err)
	}
	return delays
}

// TestJitterDeterministic proves the backoff schedule is a pure function
// of (seed, job key): same inputs replay identically, different seeds
// decorrelate, and every delay stays within [base/2, base].
func TestJitterDeterministic(t *testing.T) {
	a := retrySchedule(t, 42, "jitter-job", 4)
	b := retrySchedule(t, 42, "jitter-job", 4)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("want 4 retries logged, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("retry %d: seed 42 gave %s then %s; schedule must replay", i, a[i], b[i])
		}
	}
	c := retrySchedule(t, 43, "jitter-job", 4)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical 4-delay schedule; jitter is not seeded")
	}
	for i, s := range a {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("unparseable delay %q: %v", s, err)
		}
		// fastOpts: base 1ms doubling, capped at 5ms; jitter keeps [base/2, base].
		base := time.Millisecond << uint(i)
		if base > 5*time.Millisecond {
			base = 5 * time.Millisecond
		}
		if d < base/2 || d > base {
			t.Errorf("retry %d delay %v outside jitter range [%v, %v]", i, d, base/2, base)
		}
	}
}

// TestAuditErrorNotRetried: an invariant violation is evidence of a
// corrupted simulation, not a flaky environment — retrying would just
// re-corrupt, so the supervisor must classify it permanent.
func TestAuditErrorNotRetried(t *testing.T) {
	o := fastOpts()
	o.Retries = 3
	var n atomic.Int32
	job := harness.Job[int]{Key: "corrupt", Run: func(*harness.JobContext) (int, error) {
		n.Add(1)
		return 0, &audit.Error{Retired: 9, Violations: []audit.Violation{
			{Component: "dtlb", Rule: "stack-permutation", Detail: "set 3"},
		}}
	}}
	_, err := harness.RunAll(o, []harness.Job[int]{job})
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("want *audit.Error to surface, got: %v", err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("audit failure ran %d attempts; invariant violations must not be retried", got)
	}
}

// stalledTarget is a fake attachment whose progress counter never moves,
// with a canned diagnostic dump carrying window history.
type stalledTarget struct {
	interrupted atomic.Bool
}

func (s *stalledTarget) Progress() uint64 { return 42 }
func (s *stalledTarget) Interrupt()       { s.interrupted.Store(true) }
func (s *stalledTarget) Snapshot() string {
	return "fake-target retired=42 recent-windows=[w17 w18 w19] l2c-occ=17/32"
}

// TestWatchdogSnapshotPath pins the kill-path plumbing with a controlled
// fake: the stall report must carry the target's snapshot (including its
// window history), the sampled progress value, and the target must have
// been asked to stop cooperatively before the context was cancelled.
func TestWatchdogSnapshotPath(t *testing.T) {
	o := fastOpts()
	o.WatchdogInterval = 10 * time.Millisecond
	o.WatchdogSamples = 3
	fake := &stalledTarget{}
	job := harness.Job[int]{Key: "frozen", Run: func(jc *harness.JobContext) (int, error) {
		jc.Attach(fake)
		<-jc.Context().Done()
		return 0, jc.Context().Err()
	}}
	_, err := harness.RunAll(o, []harness.Job[int]{job})
	var se *harness.StallError
	if !errors.As(err, &se) {
		t.Fatalf("want StallError, got: %v", err)
	}
	if se.Progress != 42 {
		t.Errorf("stall report progress = %d, want the sampled 42", se.Progress)
	}
	for _, frag := range []string{"recent-windows=[w17 w18 w19]", "l2c-occ=17/32"} {
		if !strings.Contains(se.Snapshot, frag) {
			t.Errorf("stall snapshot missing %q:\n%s", frag, se.Snapshot)
		}
	}
	if !fake.interrupted.Load() {
		t.Error("watchdog kill must interrupt the target cooperatively")
	}
}
