package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// checkpointVersion is the on-disk journal format. Version 2 adds a
// header line, per-record CRC-32 checksums, the completed job's beacon
// stamp, and atomic truncate-at-last-valid-record recovery. Version 1
// (headerless {"key","result"} lines) is upgraded in place on open.
const checkpointVersion = 2

// checkpointHeader is the first line of a v2 journal.
type checkpointHeader struct {
	Version int `json:"itpsim_checkpoint"`
}

// checkpointPayload is the checksummed body of one record. Result is
// kept raw so the CRC covers the exact bytes that were journaled, not a
// re-encoding.
type checkpointPayload struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
	Beacon *BeaconStamp    `json:"beacon,omitempty"`
}

// checkpointRecord is one v2 journal line: the payload embedded verbatim
// plus its CRC-32 (IEEE) — json.RawMessage round-trips byte-exactly, so
// the checksum computed at write time is reproducible at read time, and
// a torn or bit-flipped line is detected rather than trusted.
type checkpointRecord struct {
	P   json.RawMessage `json:"p"`
	CRC uint32          `json:"crc"`
}

// v1Entry is the legacy journal line format.
type v1Entry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// checkpointEntry is the in-memory view of one completed job.
type checkpointEntry struct {
	result json.RawMessage
	beacon *BeaconStamp
}

// checkpoint is an append-only journal of completed jobs. Lines are
// flushed per record, so a crash loses at most the record being written;
// recovery on open drops everything from the first invalid record on and
// commits the valid prefix atomically (temp file + rename) before
// appending resumes.
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[string]checkpointEntry
}

// parseCheckpoint decodes journal bytes in either format. It returns the
// decoded entries, how many jobs the valid prefix held, and the canonical
// v2 re-encoding of that prefix (header + records). For v2 input the
// parse stops at the first unreadable or checksum-failing record — a torn
// tail must not hide valid records behind it, and a corrupt middle means
// everything after it is untrustworthy. Legacy v1 input keeps its
// skip-and-continue semantics, then upgrades wholesale.
func parseCheckpoint(data []byte, logf func(string, ...any)) (map[string]checkpointEntry, int, []byte) {
	done := make(map[string]checkpointEntry)
	var canonical bytes.Buffer
	hdr, _ := json.Marshal(checkpointHeader{Version: checkpointVersion})
	canonical.Write(hdr)
	canonical.WriteByte('\n')

	keep := func(p checkpointPayload) {
		done[p.Key] = checkpointEntry{result: p.Result, beacon: p.Beacon}
		raw, err := json.Marshal(p)
		if err != nil {
			return
		}
		line, err := json.Marshal(checkpointRecord{P: raw, CRC: crc32.ChecksumIEEE(raw)})
		if err != nil {
			return
		}
		canonical.Write(line)
		canonical.WriteByte('\n')
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	version := 0
	line := 0
	records := 0
scan:
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(bytes.TrimSpace(b)) == 0 {
			continue
		}
		if version == 0 {
			var h checkpointHeader
			if json.Unmarshal(b, &h) == nil && h.Version != 0 {
				if h.Version != checkpointVersion {
					// Version skew (a future writer's journal): nothing
					// after the header can be trusted to mean what this
					// reader thinks it means. Start fresh.
					logf("harness: checkpoint header claims version %d, this build writes %d; discarding journal", h.Version, checkpointVersion)
					break scan
				}
				version = h.Version
				continue
			}
			// No header: a legacy v1 journal (or garbage, which the v1
			// path skips line by line).
			version = 1
		}
		switch version {
		case 1:
			var e v1Entry
			if err := json.Unmarshal(b, &e); err != nil || e.Key == "" {
				logf("harness: checkpoint line %d unreadable (v1), skipping", line)
				continue
			}
			records++
			keep(checkpointPayload{Key: e.Key, Result: e.Result})
		default:
			var rec checkpointRecord
			if err := json.Unmarshal(b, &rec); err != nil {
				logf("harness: checkpoint line %d unreadable (%v), truncating journal here", line, err)
				break scan
			}
			if got := crc32.ChecksumIEEE(rec.P); got != rec.CRC {
				logf("harness: checkpoint line %d checksum mismatch (%08x != %08x), truncating journal here", line, got, rec.CRC)
				break scan
			}
			var p checkpointPayload
			if err := json.Unmarshal(rec.P, &p); err != nil || p.Key == "" {
				logf("harness: checkpoint line %d payload invalid, truncating journal here", line)
				break scan
			}
			records++
			keep(p)
		}
	}
	return done, records, canonical.Bytes()
}

// commitCheckpoint atomically replaces the journal at path with data:
// write to a temp file in the same directory, sync, then rename over the
// original, so a crash mid-recovery leaves either the old journal or the
// new one, never a half-written hybrid.
func commitCheckpoint(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// openCheckpoint loads any existing journal at path — recovering from
// torn tails, corrupt records, and legacy v1 format — and opens the
// recovered journal for appending, creating a fresh v2 journal when
// absent.
func openCheckpoint(path string, logf func(string, ...any)) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	done, records, canonical := parseCheckpoint(data, logf)
	if !bytes.Equal(data, canonical) {
		// Absent, torn, corrupt, or pre-v2: commit the canonical valid
		// prefix before appending to it.
		if err := commitCheckpoint(path, canonical); err != nil {
			return nil, err
		}
	}
	if records > 0 {
		logf("harness: checkpoint %s: resuming with %d completed job(s)", path, len(done))
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &checkpoint{f: f, w: bufio.NewWriter(f), done: done}, nil
}

// lookup recalls a completed result into out; ok reports presence and
// beacon carries the completed run's state fingerprint when one was
// journaled.
func (c *checkpoint) lookup(key string, out any) (beacon *BeaconStamp, ok bool, err error) {
	c.mu.Lock()
	e, present := c.done[key]
	c.mu.Unlock()
	if !present {
		return nil, false, nil
	}
	if err := json.Unmarshal(e.result, out); err != nil {
		return nil, false, fmt.Errorf("decode result for %q: %w", key, err)
	}
	return e.beacon, true, nil
}

// record journals one completed job and flushes it to disk.
func (c *checkpoint) record(key string, result any, beacon *BeaconStamp) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(checkpointPayload{Key: key, Result: raw, Beacon: beacon})
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointRecord{P: payload, CRC: crc32.ChecksumIEEE(payload)})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[key] = checkpointEntry{result: raw, beacon: beacon}
	// c.mu exists precisely to serialise writers of the shared journal
	// stream AND keep the done map in sync with what reached the file;
	// the write must happen inside the same section as the map insert.
	//itp:lock-io c.mu serialises the checkpoint journal; entry map and file line must commit together
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return err
	}
	//itp:lock-io c.mu serialises the checkpoint journal; flush is part of the committed write
	return c.w.Flush()
}

func (c *checkpoint) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Holding c.mu across the final flush keeps a concurrent record()
	// from interleaving a write with teardown.
	//itp:lock-io c.mu serialises the checkpoint journal through teardown
	if err := c.w.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
