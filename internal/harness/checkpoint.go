package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// checkpointEntry is one journal line: a completed job keyed exactly like
// the experiments runner's memo, so a resumed campaign recalls finished
// results instead of re-simulating them.
type checkpointEntry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// checkpoint is an append-only JSON-lines journal of completed jobs.
// Lines are flushed per record, so a crash loses at most the job being
// written; a torn trailing line is skipped on load.
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[string]json.RawMessage
}

// openCheckpoint loads any existing journal at path and opens it for
// appending, creating it when absent.
func openCheckpoint(path string, logf func(string, ...any)) (*checkpoint, error) {
	done := make(map[string]json.RawMessage)
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
		line := 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			var e checkpointEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				// A torn write from an interrupted run: skip, keep what
				// parses. The job will simply re-run.
				logf("harness: checkpoint %s line %d unreadable (%v), skipping", path, line, err)
				continue
			}
			done[e.Key] = e.Result
		}
		if len(done) > 0 {
			logf("harness: checkpoint %s: resuming with %d completed job(s)", path, len(done))
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &checkpoint{f: f, w: bufio.NewWriter(f), done: done}, nil
}

// lookup recalls a completed result into out; ok reports presence.
func (c *checkpoint) lookup(key string, out any) (ok bool, err error) {
	c.mu.Lock()
	raw, present := c.done[key]
	c.mu.Unlock()
	if !present {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("decode result for %q: %w", key, err)
	}
	return true, nil
}

// record journals one completed job and flushes it to disk.
func (c *checkpoint) record(key string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Result: raw})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[key] = raw
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *checkpoint) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
