package harness_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// fastOpts returns supervisor options tuned for sub-second tests.
func fastOpts() harness.Options {
	return harness.Options{
		Parallelism: 4,
		Backoff:     time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		KillGrace:   500 * time.Millisecond,
	}
}

func TestPanicContainedAndPartialResults(t *testing.T) {
	jobs := []harness.Job[int]{
		{Key: "ok-1", Run: func(*harness.JobContext) (int, error) { return 1, nil }},
		{Key: "boom", Run: func(*harness.JobContext) (int, error) { panic("injected kaboom") }},
		{Key: "ok-2", Run: func(*harness.JobContext) (int, error) { return 2, nil }},
	}
	outs, err := harness.RunAll(fastOpts(), jobs)
	if err == nil {
		t.Fatal("batch with a panicking job must report an error")
	}
	var pe *harness.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("joined error should contain a PanicError, got: %v", err)
	}
	if !strings.Contains(pe.Error(), "injected kaboom") || !strings.Contains(pe.Error(), "harness_test") {
		t.Errorf("panic error should carry the value and a stack, got: %v", pe)
	}
	if outs[0].Result != 1 || outs[0].Err != nil || outs[2].Result != 2 || outs[2].Err != nil {
		t.Errorf("healthy jobs must complete despite the panic: %+v", outs)
	}
	if outs[1].Err == nil {
		t.Error("panicking job should carry its error in the outcome")
	}
}

func TestRetryThenSucceed(t *testing.T) {
	var attempts atomic.Int32
	o := fastOpts()
	o.Retries = 3
	job := harness.Job[string]{
		Key: "flaky",
		Run: func(jc *harness.JobContext) (string, error) {
			if attempts.Add(1) <= 2 {
				return "", fmt.Errorf("transient failure %d", attempts.Load())
			}
			return "done", nil
		},
	}
	outs, err := harness.RunAll(o, []harness.Job[string]{job})
	if err != nil {
		t.Fatalf("flaky job should succeed within retry budget: %v", err)
	}
	if outs[0].Result != "done" || outs[0].Attempts != 3 {
		t.Errorf("got result %q after %d attempts, want \"done\" after 3", outs[0].Result, outs[0].Attempts)
	}
}

func TestRetriesExhausted(t *testing.T) {
	o := fastOpts()
	o.Retries = 2
	var n atomic.Int32
	outs, err := harness.RunAll(o, []harness.Job[int]{{
		Key: "always-bad",
		Run: func(*harness.JobContext) (int, error) { n.Add(1); return 0, errors.New("still broken") },
	}})
	if err == nil {
		t.Fatal("exhausted retries must fail the job")
	}
	if got := n.Load(); got != 3 {
		t.Errorf("job ran %d times, want 3 (1 + 2 retries)", got)
	}
	if outs[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", outs[0].Attempts)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	o := fastOpts()
	o.Retries = 5
	var n atomic.Int32
	_, err := harness.RunAll(o, []harness.Job[int]{{
		Key: "hopeless",
		Run: func(*harness.JobContext) (int, error) {
			n.Add(1)
			return 0, harness.Permanent(errors.New("unknown workload"))
		},
	}})
	if err == nil {
		t.Fatal("permanent failure must surface")
	}
	if got := n.Load(); got != 1 {
		t.Errorf("permanent error retried %d times, want to run exactly once", got)
	}
}

func TestPanicNotRetried(t *testing.T) {
	o := fastOpts()
	o.Retries = 5
	var n atomic.Int32
	_, err := harness.RunAll(o, []harness.Job[int]{{
		Key: "deterministic-panic",
		Run: func(*harness.JobContext) (int, error) { n.Add(1); panic("same panic every time") },
	}})
	if err == nil {
		t.Fatal("panic must surface")
	}
	if got := n.Load(); got != 1 {
		t.Errorf("panic retried %d times; deterministic panics should not burn retries", got)
	}
}

// slowMachine builds a real simulator on an endless workload, the
// substrate for deadline and watchdog tests.
func machineJob(t *testing.T, key string, stream workload.Stream, budget uint64) harness.Job[*stats.Sim] {
	t.Helper()
	return harness.Job[*stats.Sim]{
		Key: key,
		Run: func(jc *harness.JobContext) (*stats.Sim, error) {
			m, err := sim.NewMachine(config.Default())
			if err != nil {
				return nil, harness.Permanent(err)
			}
			jc.Attach(m)
			if ss, ok := stream.(*workload.StallStream); ok {
				ss.Bind(jc.Context())
			}
			res, err := m.Run([]workload.Stream{stream}, budget)
			if err != nil {
				return nil, err
			}
			return res.Stats, nil
		},
	}
}

func specStream() workload.Stream {
	return workload.NewSpec(workload.SpecParams{
		Seed: 7, CodePages: 4, LoopLen: 64, LoopIters: 100,
		DataPages: 512, DataZipf: 1.2, LoadFrac: 0.25, StoreFrac: 0.1,
		StreamFrac: 0.2, ReuseFrac: 0.3,
	})
}

func TestDeadlineExpiry(t *testing.T) {
	o := fastOpts()
	o.JobTimeout = 50 * time.Millisecond
	// A budget far beyond what 50ms can simulate.
	job := machineJob(t, "deadline", specStream(), 2_000_000_000)
	outs, err := harness.RunAll(o, []harness.Job[*stats.Sim]{job})
	if err == nil {
		t.Fatal("job exceeding its deadline must fail")
	}
	var te *harness.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want TimeoutError, got: %v", err)
	}
	if !strings.Contains(te.Snapshot, "progress=") {
		t.Errorf("timeout should carry a diagnostic snapshot, got: %q", te.Snapshot)
	}
	if outs[0].Attempts != 1 {
		t.Errorf("deadline kill retried: %d attempts", outs[0].Attempts)
	}
}

func TestWatchdogKillsStalledRun(t *testing.T) {
	o := fastOpts()
	o.WatchdogInterval = 10 * time.Millisecond
	o.WatchdogSamples = 3
	// The stream feeds 100K instructions (enough to cross a diagnostic
	// publish boundary at 64K) then hangs like a dead trace pipe; the
	// auto-release bounds the leak if the kill path were broken.
	stall := workload.NewStallStream(specStream(), 100_000, 5*time.Second)
	job := machineJob(t, "stalled", stall, 2_000_000_000)
	start := time.Now()
	_, err := harness.RunAll(o, []harness.Job[*stats.Sim]{job})
	if err == nil {
		t.Fatal("stalled job must be killed by the watchdog")
	}
	var se *harness.StallError
	if !errors.As(err, &se) {
		t.Fatalf("want StallError, got: %v", err)
	}
	if se.Progress == 0 {
		t.Error("watchdog should have observed pre-stall progress")
	}
	if !strings.Contains(se.Snapshot, "stlb-mshrs=") || !strings.Contains(se.Snapshot, "l2c-occ") {
		t.Errorf("stall snapshot should dump occupancy state, got: %q", se.Snapshot)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("watchdog kill took %v; the auto-release fallback must not be the mechanism", elapsed)
	}
}

func TestWatchdogToleratesProgress(t *testing.T) {
	o := fastOpts()
	o.WatchdogInterval = 5 * time.Millisecond
	o.WatchdogSamples = 2
	// A healthy run longer than several watchdog periods must not be
	// killed while it keeps retiring.
	job := machineJob(t, "healthy", specStream(), 3_000_000)
	outs, err := harness.RunAll(o, []harness.Job[*stats.Sim]{job})
	if err != nil {
		t.Fatalf("healthy job was killed: %v", err)
	}
	if outs[0].Result.TotalInstructions() != 3_000_000 {
		t.Errorf("retired %d instructions, want the full budget", outs[0].Result.TotalInstructions())
	}
}

func TestCheckpointResumeSkipsCompleted(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	o := fastOpts()
	o.Checkpoint = ckpt

	var runs atomic.Int32
	mk := func(fail bool) []harness.Job[int] {
		return []harness.Job[int]{
			{Key: "a", Run: func(*harness.JobContext) (int, error) { runs.Add(1); return 10, nil }},
			{Key: "b", Run: func(*harness.JobContext) (int, error) {
				runs.Add(1)
				if fail {
					return 0, harness.Permanent(errors.New("injected"))
				}
				return 20, nil
			}},
			{Key: "c", Run: func(*harness.JobContext) (int, error) { runs.Add(1); return 30, nil }},
		}
	}

	outs, err := harness.RunAll(o, mk(true))
	if err == nil {
		t.Fatal("first pass must report the injected failure")
	}
	if runs.Load() != 3 {
		t.Fatalf("first pass ran %d jobs, want 3", runs.Load())
	}
	if outs[0].Result != 10 || outs[2].Result != 30 {
		t.Fatalf("healthy results missing: %+v", outs)
	}

	// Second pass: completed jobs come from the journal, only the failed
	// one re-executes (now healthy).
	runs.Store(0)
	outs, err = harness.RunAll(o, mk(false))
	if err != nil {
		t.Fatalf("resumed pass should succeed: %v", err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("resumed pass re-ran %d jobs, want only the previously failed one", got)
	}
	if !outs[0].Cached || !outs[2].Cached || outs[1].Cached {
		t.Errorf("cache flags wrong: %+v", outs)
	}
	if outs[0].Result != 10 || outs[1].Result != 20 || outs[2].Result != 30 {
		t.Errorf("resumed results wrong: %+v", outs)
	}
}

func TestCheckpointSurvivesTornWrite(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	o := fastOpts()
	o.Checkpoint = ckpt
	if _, err := harness.RunAll(o, []harness.Job[int]{
		{Key: "good", Run: func(*harness.JobContext) (int, error) { return 42, nil }},
	}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn half line at the tail.
	f, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","resu`)
	f.Close()

	var ran atomic.Int32
	outs, err := harness.RunAll(o, []harness.Job[int]{
		{Key: "good", Run: func(*harness.JobContext) (int, error) { ran.Add(1); return 0, nil }},
		{Key: "torn", Run: func(*harness.JobContext) (int, error) { ran.Add(1); return 7, nil }},
	})
	if err != nil {
		t.Fatalf("torn journal must not poison the batch: %v", err)
	}
	if !outs[0].Cached || outs[0].Result != 42 {
		t.Errorf("intact entry should be recalled: %+v", outs[0])
	}
	if outs[1].Cached || outs[1].Result != 7 {
		t.Errorf("torn entry should re-run: %+v", outs[1])
	}
}

func TestStreamErrorSurfaces(t *testing.T) {
	// An erroring ingestion source (e.g. a corrupt trace) must fail the
	// job instead of silently truncating the simulation.
	bad := workload.NewErrorStream(specStream(), 10_000, nil)
	job := machineJob(t, "bad-ingest", bad, 1_000_000)
	_, err := harness.RunAll(fastOpts(), []harness.Job[*stats.Sim]{job})
	if err == nil || !errors.Is(err, workload.ErrInjected) {
		t.Fatalf("stream error should surface through the batch, got: %v", err)
	}
}
