package harness

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func discardLogf(string, ...any) {}

func mustOpen(t *testing.T, path string) *checkpoint {
	t.Helper()
	c, err := openCheckpoint(path, discardLogf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCheckpointV2RoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := mustOpen(t, path)
	if err := c.record("a", 11, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.record("b", 22, &BeaconStamp{Chain: 0xfeed, Count: 150}); err != nil {
		t.Fatal(err)
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	if !strings.Contains(first, `"itpsim_checkpoint":2`) {
		t.Errorf("journal must start with a v2 header, got %q", first)
	}

	c2 := mustOpen(t, path)
	defer c2.close()
	var v int
	beacon, ok, err := c2.lookup("a", &v)
	if err != nil || !ok || v != 11 || beacon != nil {
		t.Errorf("lookup a = (%v, %v, %v), v=%d", beacon, ok, err, v)
	}
	beacon, ok, err = c2.lookup("b", &v)
	if err != nil || !ok || v != 22 {
		t.Fatalf("lookup b = (%v, %v), v=%d, err=%v", beacon, ok, v, err)
	}
	if beacon == nil || beacon.Chain != 0xfeed || beacon.Count != 150 {
		t.Errorf("beacon stamp did not survive the journal: %+v", beacon)
	}
	if _, ok, _ := c2.lookup("absent", &v); ok {
		t.Error("absent key should not be found")
	}
}

func TestCheckpointV1Upgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	v1 := `{"key":"old-a","result":5}` + "\n" +
		`{"key":"old-b","result":{"n":6}}` + "\n" +
		`{"key":"torn","resu` // legacy torn tail: skipped, not fatal
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	c := mustOpen(t, path)
	var v int
	if _, ok, err := c.lookup("old-a", &v); !ok || err != nil || v != 5 {
		t.Errorf("v1 entry not recalled: ok=%v err=%v v=%d", ok, err, v)
	}
	if _, ok, _ := c.lookup("torn", &v); ok {
		t.Error("torn v1 line should not produce an entry")
	}
	if err := c.record("new", 7, nil); err != nil {
		t.Fatal(err)
	}
	c.close()

	// The journal on disk is now v2: header first, every line checksummed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("upgraded journal has %d lines, want header + 3 records:\n%s", len(lines), data)
	}
	for i, l := range lines[1:] {
		var rec checkpointRecord
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("record %d not v2: %v", i, err)
		}
		if crc32.ChecksumIEEE(rec.P) != rec.CRC {
			t.Errorf("record %d checksum wrong after upgrade", i)
		}
	}

	c2 := mustOpen(t, path)
	defer c2.close()
	for key, want := range map[string]int{"old-a": 5, "new": 7} {
		if _, ok, err := c2.lookup(key, &v); !ok || err != nil || v != want {
			t.Errorf("%s not recalled after upgrade: ok=%v err=%v v=%d", key, ok, err, v)
		}
	}
}

// writeV2 builds a journal with the given keys via the real writer.
func writeV2(t *testing.T, path string, keys ...string) {
	t.Helper()
	c := mustOpen(t, path)
	for i, k := range keys {
		if err := c.record(k, i+1, &BeaconStamp{Chain: uint64(i), Count: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncatesAtCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	writeV2(t, path, "a", "b", "c")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Flip a payload byte inside record "b" (line index 2: header, a, b).
	target := lines[2]
	target[bytes.IndexByte(target, 'b')] ^= 0x20
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	c := mustOpen(t, path)
	defer c.close()
	var v int
	if _, ok, _ := c.lookup("a", &v); !ok || v != 1 {
		t.Errorf("record before the corruption must survive, got ok=%v v=%d", ok, v)
	}
	for _, key := range []string{"b", "c"} {
		if _, ok, _ := c.lookup(key, &v); ok {
			t.Errorf("record %q at/after the corruption must be dropped", key)
		}
	}
	// Recovery rewrote the journal to its valid prefix, atomically.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bytes.Split(bytes.TrimSpace(after), []byte("\n"))); got != 2 {
		t.Errorf("recovered journal has %d lines, want header + 1 record:\n%s", got, after)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("recovery temp file left behind: %v", err)
	}
}

func TestCheckpointTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	writeV2(t, path, "a", "b")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"p":{"key":"half","re`)
	f.Close()

	c := mustOpen(t, path)
	var v int
	for key, want := range map[string]int{"a": 1, "b": 2} {
		if _, ok, _ := c.lookup(key, &v); !ok || v != want {
			t.Errorf("%s lost to a torn tail: ok=%v v=%d", key, ok, v)
		}
	}
	if _, ok, _ := c.lookup("half", &v); ok {
		t.Error("torn record must not be recalled")
	}
	// Appends after recovery land on a clean tail.
	if err := c.record("after", 9, nil); err != nil {
		t.Fatal(err)
	}
	c.close()
	c2 := mustOpen(t, path)
	defer c2.close()
	if _, ok, _ := c2.lookup("after", &v); !ok || v != 9 {
		t.Errorf("append after recovery lost: ok=%v v=%d", ok, v)
	}
}

func TestCheckpointVersionSkewStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	content := `{"itpsim_checkpoint":3}` + "\n" + `{"anything":"from the future"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	c := mustOpen(t, path)
	defer c.close()
	if len(c.done) != 0 {
		t.Errorf("future-version journal must be discarded, kept %d entries", len(c.done))
	}
	var v int
	if _, ok, _ := c.lookup("anything", &v); ok {
		t.Error("future-version records must not be trusted")
	}
}

func TestCheckpointCleanFileNotRewritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	writeV2(t, path, "a", "b")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c := mustOpen(t, path)
	c.close()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("reopening a clean journal must not alter it")
	}
}

// FuzzCheckpointReader feeds arbitrary journal bytes — torn tails, bit
// flips, version skew, nested garbage — through the parser and asserts
// the recovery contract: never panic, and the canonical re-encoding must
// be a fixed point (parsing what recovery writes yields the same entries
// and the same bytes, so a second recovery never loses more data).
func FuzzCheckpointReader(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"itpsim_checkpoint":2}` + "\n"))
	f.Add([]byte(`{"itpsim_checkpoint":2}` + "\n" + `{"p":{"key":"a","result":1},"crc":0}` + "\n"))
	f.Add([]byte(`{"key":"v1","result":{"x":1}}` + "\n"))
	f.Add([]byte(`{"itpsim_checkpoint":9}` + "\n" + `{"p":{"key":"a","result":1},"crc":123}`))
	// A genuine record with a correct CRC, then garbage.
	payload := []byte(`{"key":"real","result":42}`)
	rec, _ := json.Marshal(checkpointRecord{P: payload, CRC: crc32.ChecksumIEEE(payload)})
	f.Add([]byte(`{"itpsim_checkpoint":2}` + "\n" + string(rec) + "\n" + `{"p":{"key":"torn`))

	f.Fuzz(func(t *testing.T, data []byte) {
		done, _, canonical := parseCheckpoint(data, func(string, ...any) {})
		done2, _, canonical2 := parseCheckpoint(canonical, func(string, ...any) {})
		if !bytes.Equal(canonical, canonical2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%q\n%q", canonical, canonical2)
		}
		if len(done) != len(done2) {
			t.Fatalf("re-parsing recovery output lost entries: %d -> %d", len(done), len(done2))
		}
		for k, e := range done {
			e2, ok := done2[k]
			if !ok {
				t.Fatalf("key %q lost on re-parse", k)
			}
			if !bytes.Equal(e.result, e2.result) {
				t.Fatalf("key %q result changed on re-parse", k)
			}
		}
	})
}
