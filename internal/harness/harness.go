// Package harness is the fault-tolerant supervisor every multi-run entry
// point (the experiments sweeps, cmd/itpsweep, cmd/itpbench, cmd/itpsim's
// multi-workload mode) routes simulation jobs through. A paper-scale
// campaign is thousands of independent simulations; one corrupt trace,
// generator bug, or livelocked ingestion source must cost exactly one
// job, not the fleet. Each job therefore runs under a supervisor that
//
//   - converts panics into structured errors (PanicError, with the
//     captured stack) instead of killing the process,
//   - retries transient failures with capped exponential backoff,
//   - enforces an optional per-job wall-clock deadline, and
//   - runs a forward-progress watchdog: it samples the job's
//     retired-instruction counter (any attached Progress implementation,
//     in practice sim.Machine) and kills a run that stops retiring for N
//     consecutive samples, recording a diagnostic snapshot (MSHR/STLB/L2C
//     occupancy) taken through the target's Snapshotter.
//
// Completed results are journaled to a JSON-lines checkpoint keyed by the
// job key (the same key the experiments runner memoises on), so an
// interrupted campaign resumes without re-running finished jobs.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"itpsim/internal/audit"
)

// Progress is implemented by job payloads whose forward progress the
// watchdog can observe; sim.Machine implements it with its atomic
// retired-instruction counter.
type Progress interface{ Progress() uint64 }

// Interrupter is implemented by payloads that can be asked to stop
// cooperatively at the next safe point (sim.Machine.Interrupt).
type Interrupter interface{ Interrupt() }

// Snapshotter provides a diagnostic dump for stall/deadline reports
// (sim.Machine publishes occupancy state race-safely for this).
type Snapshotter interface{ Snapshot() string }

// Beaconer is implemented by payloads that emit deterministic state
// beacons (sim.Machine with beacons enabled): the chain folds every
// beacon so far, so equal (chain, count) proves two runs passed through
// identical architectural states at every beacon boundary.
type Beaconer interface{ BeaconChain() (chain, count uint64) }

// BeaconStamp is a completed job's final beacon fingerprint, journaled
// with its result so a resumed campaign can verify that a re-run — or a
// recalled cached result — corresponds to the same deterministic
// execution.
type BeaconStamp struct {
	Chain uint64 `json:"chain"`
	Count uint64 `json:"count"`
}

// Options configure a supervised batch.
type Options struct {
	// Parallelism bounds concurrently running jobs (0 = number of CPUs
	// as decided by the caller; harness defaults to 1 when <= 0 callers
	// should pass their own default).
	Parallelism int
	// Retries is the number of re-attempts after a transient failure
	// (0 = fail on first error).
	Retries int
	// Backoff is the first retry delay; it doubles per attempt up to
	// MaxBackoff. Defaults: 100ms, capped at 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// JobTimeout is the per-job wall-clock deadline (0 = none).
	JobTimeout time.Duration
	// WatchdogInterval is the forward-progress sampling period and
	// WatchdogSamples the number of consecutive no-progress samples that
	// kill a run. Watchdog is off unless both are positive.
	WatchdogInterval time.Duration
	WatchdogSamples  int
	// KillGrace is how long a killed job gets to return after Interrupt
	// before its goroutine is abandoned (default 1s). Abandonment keeps
	// the batch moving even when a job is wedged somewhere that never
	// checks for interrupts.
	KillGrace time.Duration
	// Checkpoint is the JSON-lines journal path ("" = no checkpointing).
	Checkpoint string
	// Seed seeds the retry-backoff jitter so a campaign's retry schedule
	// is reproducible: each job derives its own stream from Seed and its
	// key. Zero still jitters (from the key alone) — determinism comes
	// from the derivation, not from disabling it.
	Seed uint64
	// Logf receives supervision events (retries, kills, resumes); nil
	// discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.KillGrace <= 0 {
		o.KillGrace = time.Second
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// PanicError is a panic converted into an error by the supervisor; the
// stack is captured at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("harness: job panicked: %v\n%s", e.Value, e.Stack)
}

// StallError reports a run killed by the forward-progress watchdog.
type StallError struct {
	// Progress is the last sampled forward-progress counter value.
	Progress uint64
	// Samples is how many consecutive samples saw no progress.
	Samples int
	// Interval is the sampling period that was in effect.
	Interval time.Duration
	// Snapshot is the target's diagnostic dump at kill time.
	Snapshot string
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("harness: no forward progress for %d samples (%v apart) at progress=%d; snapshot: %s",
		e.Samples, e.Interval, e.Progress, e.Snapshot)
}

// TimeoutError reports a run killed by the per-job deadline.
type TimeoutError struct {
	Timeout  time.Duration
	Snapshot string
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("harness: job exceeded %v deadline; snapshot: %s", e.Timeout, e.Snapshot)
}

// Permanent marks err as non-retryable: the supervisor fails the job
// immediately instead of burning retry attempts on a deterministic error
// (unknown workload, invalid configuration).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// retryable reports whether the supervisor should re-attempt after err.
// Panics, stalls, deadline kills, and invariant-audit violations are
// deterministic for a seeded simulator — a retry would fail (or corrupt)
// identically — so only plain (presumed transient) errors are retried.
func retryable(err error) bool {
	var pe *permanentError
	var panicErr *PanicError
	var stallErr *StallError
	var timeoutErr *TimeoutError
	var auditErr *audit.Error
	switch {
	case errors.As(err, &pe),
		errors.As(err, &panicErr),
		errors.As(err, &stallErr),
		errors.As(err, &timeoutErr),
		errors.As(err, &auditErr),
		errors.Is(err, context.Canceled):
		return false
	}
	return true
}

// jitterRNG is a per-job xorshift stream for backoff jitter, derived
// deterministically from the campaign seed and the job key (FNV-1a).
type jitterRNG struct{ s uint64 }

func newJitterRNG(seed uint64, key string) *jitterRNG {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	s := seed ^ h
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &jitterRNG{s: s}
}

func (r *jitterRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// jitter spreads a backoff over [d/2, d] so retries from a fleet of jobs
// that failed together do not slam their shared resource in lockstep.
func (r *jitterRNG) jitter(d time.Duration) time.Duration {
	if d <= time.Duration(1) {
		return d
	}
	half := d / 2
	return half + time.Duration(r.next()%uint64(half+1))
}

// Job is one supervised unit of work. Key must be stable across processes
// (it is the checkpoint/memoisation identity); Run produces the result.
type Job[R any] struct {
	Key string
	Run func(jc *JobContext) (R, error)
}

// Outcome is the per-job verdict of a batch.
type Outcome[R any] struct {
	Key      string
	Result   R
	Err      error
	Attempts int
	// Cached marks results recalled from the checkpoint journal rather
	// than recomputed.
	Cached bool
	// Beacon is the job's final deterministic-state fingerprint, when its
	// attached target was a Beaconer with beacons enabled — recalled from
	// the journal for cached results, sampled at completion otherwise.
	Beacon *BeaconStamp
}

// JobContext is handed to each job attempt: it carries the cancellation
// context and receives the watchdog target via Attach.
type JobContext struct {
	ctx     context.Context
	attempt int

	mu     sync.Mutex
	target any
}

// Context returns the attempt's context; it is cancelled on deadline
// expiry or watchdog kill, and ingestion sources should observe it.
func (jc *JobContext) Context() context.Context { return jc.ctx }

// Attempt returns the zero-based attempt number (>0 means retry).
func (jc *JobContext) Attempt() int { return jc.attempt }

// Attach registers the job's payload with the supervisor. If it
// implements Progress the watchdog starts sampling it; Interrupter and
// Snapshotter enable cooperative kills and diagnostic dumps.
func (jc *JobContext) Attach(target any) {
	jc.mu.Lock()
	jc.target = target
	jc.mu.Unlock()
}

// progress samples the attached target; ok is false when no Progress
// implementation is attached (the watchdog then stays quiet).
func (jc *JobContext) progress() (v uint64, ok bool) {
	jc.mu.Lock()
	t := jc.target
	jc.mu.Unlock()
	if p, isP := t.(Progress); isP {
		return p.Progress(), true
	}
	return 0, false
}

// snapshot collects the target's diagnostic dump, if it offers one.
func (jc *JobContext) snapshot() string {
	jc.mu.Lock()
	t := jc.target
	jc.mu.Unlock()
	if s, isS := t.(Snapshotter); isS {
		return s.Snapshot()
	}
	return "(target offers no snapshot)"
}

// beacon samples the target's final beacon stamp, if it emits beacons.
func (jc *JobContext) beacon() *BeaconStamp {
	jc.mu.Lock()
	t := jc.target
	jc.mu.Unlock()
	if b, isB := t.(Beaconer); isB {
		if chain, count := b.BeaconChain(); count > 0 {
			return &BeaconStamp{Chain: chain, Count: count}
		}
	}
	return nil
}

// interruptTarget asks the target to stop cooperatively.
func (jc *JobContext) interruptTarget() {
	jc.mu.Lock()
	t := jc.target
	jc.mu.Unlock()
	if i, isI := t.(Interrupter); isI {
		i.Interrupt()
	}
}

type attemptResult[R any] struct {
	r   R
	b   *BeaconStamp
	err error
}

// runAttempt executes one attempt of job under full supervision.
func runAttempt[R any](o Options, job Job[R], attempt int) (R, *BeaconStamp, error) {
	ctx := context.Background()
	cancel := func() {}
	if o.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	jc := &JobContext{ctx: ctx, attempt: attempt}

	resCh := make(chan attemptResult[R], 1)
	// The attempt goroutine cannot be force-killed: after KillGrace the
	// supervisor abandons it by design (a wedged Run must not wedge the
	// whole harness), so there is deliberately no join path.
	//itp:daemon attempt body; abandoned after KillGrace by design, supervisor stops waiting and moves on
	go func() {
		defer func() {
			if v := recover(); v != nil {
				var zero R
				resCh <- attemptResult[R]{zero, nil, &PanicError{Value: v, Stack: debug.Stack()}}
			}
		}()
		r, err := job.Run(jc)
		// The beacon stamp is sampled on the job goroutine, after the run
		// returned, so it reflects the target's final quiescent state.
		resCh <- attemptResult[R]{r, jc.beacon(), err}
	}()

	// kill interrupts the job and gives it KillGrace to come back before
	// the goroutine is abandoned; kerr is authoritative either way.
	kill := func(kerr error) (R, *BeaconStamp, error) {
		jc.interruptTarget()
		cancel()
		select {
		case res := <-resCh:
			return res.r, res.b, kerr
		case <-time.After(o.KillGrace):
			o.logf("harness: job %s: abandoning unresponsive goroutine after %v grace", job.Key, o.KillGrace)
			var zero R
			return zero, nil, kerr
		}
	}

	var tick <-chan time.Time
	if o.WatchdogInterval > 0 && o.WatchdogSamples > 0 {
		t := time.NewTicker(o.WatchdogInterval)
		defer t.Stop()
		tick = t.C
	}
	var lastProgress uint64
	sawProgress := false
	stalls := 0
	for {
		select {
		case res := <-resCh:
			return res.r, res.b, res.err
		case <-ctx.Done():
			if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
				o.logf("harness: job %s: deadline %v exceeded, killing", job.Key, o.JobTimeout)
				return kill(&TimeoutError{Timeout: o.JobTimeout, Snapshot: jc.snapshot()})
			}
			return kill(context.Cause(ctx))
		case <-tick:
			p, ok := jc.progress()
			if !ok {
				continue // nothing attached yet: cannot judge progress
			}
			if !sawProgress || p > lastProgress {
				lastProgress, sawProgress, stalls = p, true, 0
				continue
			}
			stalls++
			if stalls >= o.WatchdogSamples {
				o.logf("harness: job %s: watchdog fired (%d samples without progress at %d), killing",
					job.Key, stalls, p)
				// Snapshot before the kill so the dump reflects the
				// wedged state, not the unwound one.
				snap := jc.snapshot()
				return kill(&StallError{
					Progress: p, Samples: stalls, Interval: o.WatchdogInterval, Snapshot: snap,
				})
			}
		}
	}
}

// supervise runs one job to completion, applying the retry policy with
// deterministic, seeded backoff jitter.
func supervise[R any](o Options, job Job[R]) (R, *BeaconStamp, error, int) {
	var (
		r   R
		b   *BeaconStamp
		err error
	)
	jr := newJitterRNG(o.Seed, job.Key)
	for attempt := 0; ; attempt++ {
		r, b, err = runAttempt(o, job, attempt)
		if err == nil {
			return r, b, nil, attempt + 1
		}
		if attempt >= o.Retries || !retryable(err) {
			return r, b, err, attempt + 1
		}
		backoff := o.Backoff << attempt
		if backoff > o.MaxBackoff || backoff <= 0 {
			backoff = o.MaxBackoff
		}
		backoff = jr.jitter(backoff)
		o.logf("harness: job %s: attempt %d failed (%v), retrying in %v", job.Key, attempt+1, err, backoff)
		time.Sleep(backoff)
	}
}

// RunAll executes jobs under supervision with bounded parallelism,
// preserving input order in the outcomes. The returned error is the
// errors.Join of every failed job (nil when all succeeded); successful
// results are always present in the outcomes regardless of other jobs'
// failures.
func RunAll[R any](o Options, jobs []Job[R]) ([]Outcome[R], error) {
	o = o.withDefaults()

	var ckpt *checkpoint
	if o.Checkpoint != "" {
		var err error
		ckpt, err = openCheckpoint(o.Checkpoint, o.logf)
		if err != nil {
			return nil, fmt.Errorf("harness: checkpoint: %w", err)
		}
		defer func() {
			if cerr := ckpt.close(); cerr != nil {
				o.logf("harness: checkpoint close: %v", cerr)
			}
		}()
	}

	outs := make([]Outcome[R], len(jobs))
	sem := make(chan struct{}, o.Parallelism)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := jobs[i]
			outs[i].Key = job.Key
			if ckpt != nil {
				var r R
				if beacon, ok, err := ckpt.lookup(job.Key, &r); err != nil {
					o.logf("harness: job %s: ignoring corrupt checkpoint entry: %v", job.Key, err)
				} else if ok {
					outs[i].Result, outs[i].Cached, outs[i].Beacon = r, true, beacon
					return
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			r, b, err, attempts := supervise(o, job)
			outs[i].Result, outs[i].Err, outs[i].Attempts, outs[i].Beacon = r, err, attempts, b
			if err == nil && ckpt != nil {
				if cerr := ckpt.record(job.Key, r, b); cerr != nil {
					o.logf("harness: job %s: checkpoint write failed: %v", job.Key, cerr)
				}
			}
		}(i)
	}
	wg.Wait()

	var errs []error
	for i := range outs {
		if outs[i].Err != nil {
			errs = append(errs, fmt.Errorf("job %s (attempt %d): %w", outs[i].Key, outs[i].Attempts, outs[i].Err))
		}
	}
	return outs, errors.Join(errs...)
}
