// Package statdep is a statregistry fixture dependency: a mini metrics
// registry plus prefix-parameterized Instrument methods whose suffix
// sets must flow to importers as facts.
package statdep

// Registry mimics metrics.Registry.
type Registry struct{ names []string }

// Counter registers a counter.
func (r *Registry) Counter(name string) *int { r.names = append(r.names, name); return new(int) }

// Gauge registers a gauge.
func (r *Registry) Gauge(name string) *int { r.names = append(r.names, name); return new(int) }

// Histogram registers a histogram.
func (r *Registry) Histogram(name string) *int { r.names = append(r.names, name); return new(int) }

// TLB is a leaf component.
type TLB struct{}

// Instrument registers the TLB stats under prefix.
func (t *TLB) Instrument(reg *Registry, prefix string) {
	reg.Counter(prefix + ".hit")
	reg.Counter(prefix + ".miss")
	reg.Histogram(prefix + ".latency")
}

// Split composes two TLBs, like tlb.Split.
type Split struct{ I, D *TLB }

// Instrument registers both halves under derived prefixes.
func (s *Split) Instrument(reg *Registry, prefix string) {
	s.I.Instrument(reg, prefix+".i")
	s.D.Instrument(reg, prefix+".d")
}
