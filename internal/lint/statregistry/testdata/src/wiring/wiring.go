// Package wiring is the statregistry root fixture: it declares the
// required-stat catalog and a //itp:statwiring function that registers
// all but one of them.
package wiring

import "itpsim/internal/lint/statregistry/testdata/src/statdep"

// RequiredStats is the fixture catalog (same contract as
// metrics.RequiredStats).
var RequiredStats = []string{
	"stlb.i.hit",
	"stlb.d.latency",
	"top.total",
	"top.cond",
	"missing.stat",
}

// Wire registers everything except "missing.stat".
//
//itp:statwiring
func Wire(reg *statdep.Registry, s *statdep.Split, xptp bool) { // want `required stat "missing.stat" is never registered`
	reg.Counter("top.total")
	if xptp { // conditionally wired still counts as wired
		reg.Gauge("top.cond")
	}
	s.Instrument(reg, "stlb")
}
