// Package statregistry proves, at compile time, that every paper-figure
// counter the repo's tables and plots consume is actually wired up. The
// catalog is the package-level `var RequiredStats = []string{...}` in
// itpsim/internal/metrics; the wiring root is the single function
// annotated //itp:statwiring (sim.InstrumentMetrics). The analyzer
// computes the set of stat names the root registers — transitively,
// through prefix-parameterized Instrument methods — and reports any
// required name that cannot be produced.
//
// Name tracking is syntactic but compositional:
//
//   - reg.Counter("l2c.evict.pte") registers the literal name;
//   - inside an Instrument(reg, prefix) method, reg.Counter(prefix +
//     ".fills") contributes the suffix ".fills", exported as a fact
//     keyed "suffixes:<FullName>";
//   - tlb.Split.Instrument calls t.Instrument(reg, prefix+".i"),
//     composing the inner suffixes under ".i";
//   - at the root, x.Instrument(reg, "stlb") grounds the suffix chain
//     with a literal prefix, yielding full names.
//
// Registration sites inside conditionals still count — a conditionally
// wired stat (xptp.transitions) is wired; what the analyzer rejects is
// a required stat with no registration site at all. Names built through
// variables or loops are invisible to this analysis; route them through
// constants or suppress with //itp:statwiring conventions documented in
// DESIGN.md §10. Test files are exempt.
package statregistry

import (
	"encoding/json"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"

	"itpsim/internal/lint/lintcore"
)

// CatalogVar is the name of the package-level []string variable holding
// the required-stat catalog.
const CatalogVar = "RequiredStats"

// registerMethods are the metrics.Registry entry points whose first
// string argument is a stat name.
var registerMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// Analyzer is the statregistry check.
var Analyzer = &lintcore.Analyzer{
	Name: "statregistry",
	Doc:  "prove every required paper-figure counter is registered by the //itp:statwiring root",
	Run:  run,
}

// nameval is one tracked string: a grounded literal name or a suffix
// relative to the enclosing function's prefix parameter.
type nameval struct {
	text string
	rel  bool // true: text is a suffix after the prefix param
}

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	dirs := pkg.Directives()

	// Export this package's catalog, if it declares one.
	if req := catalog(pkg); req != nil {
		data, err := json.Marshal(req)
		if err != nil {
			return err
		}
		pass.ExportFact("required", string(data))
	}

	// Collect every function declaration, then resolve each function's
	// registration contributions (memoized: same-package Instrument
	// helpers may call each other).
	r := &resolver{pass: pass, decls: map[string]*ast.FuncDecl{}, memo: map[string][]nameval{}}
	var roots []*ast.FuncDecl
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			r.decls[lintcore.FuncFullName(fn)] = fd
			if lintcore.FuncAnnotated(dirs, fd, lintcore.DirStatWiring) {
				roots = append(roots, fd)
			}
		}
	}

	// Export suffix facts for every function contributing prefix-relative
	// registrations, so importing packages can compose them.
	for name := range r.decls {
		vals := r.resolve(name)
		var suffixes []string
		for _, v := range vals {
			if v.rel {
				suffixes = append(suffixes, v.text)
			}
		}
		if len(suffixes) > 0 {
			sort.Strings(suffixes)
			data, err := json.Marshal(suffixes)
			if err != nil {
				return err
			}
			pass.ExportFact("suffixes:"+name, string(data))
		}
	}

	// Check each wiring root against the union of visible catalogs.
	for _, root := range roots {
		checkRoot(pass, r, root)
	}
	return nil
}

// catalog extracts the RequiredStats string literals declared in pkg.
func catalog(pkg *lintcore.Package) []string {
	var req []string
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != CatalogVar || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						if s, ok := stringConst(pkg.Info, elt); ok {
							req = append(req, s)
						}
					}
				}
			}
		}
	}
	return req
}

func checkRoot(pass *lintcore.Pass, r *resolver, root *ast.FuncDecl) {
	fn := pass.Pkg.Info.Defs[root.Name].(*types.Func)
	registered := map[string]bool{}
	for _, v := range r.resolve(lintcore.FuncFullName(fn)) {
		if !v.rel {
			registered[v.text] = true
		}
	}

	var required []string
	seen := map[string]bool{}
	addReq := func(data string) {
		var names []string
		if json.Unmarshal([]byte(data), &names) != nil {
			return
		}
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				required = append(required, n)
			}
		}
	}
	for _, pkgPath := range pass.FactPackages() {
		if v, ok := pass.Fact(pkgPath, "required"); ok {
			addReq(v)
		}
	}
	sort.Strings(required)

	if len(required) == 0 {
		pass.Reportf(root.Name.Pos(), "//itp:statwiring function %s sees no %s catalog: the wiring root must import the package declaring it", root.Name.Name, CatalogVar)
		return
	}
	for _, name := range required {
		if !registered[name] {
			pass.Reportf(root.Name.Pos(), "required stat %q is never registered by //itp:statwiring function %s", name, root.Name.Name)
		}
	}
}

// resolver computes, per function, the tracked stat names it registers.
type resolver struct {
	pass  *lintcore.Pass
	decls map[string]*ast.FuncDecl
	memo  map[string][]nameval
	stack map[string]bool
}

func (r *resolver) resolve(fullName string) []nameval {
	if vals, ok := r.memo[fullName]; ok {
		return vals
	}
	if r.stack == nil {
		r.stack = map[string]bool{}
	}
	if r.stack[fullName] {
		return nil // registration recursion: treat the cycle as empty
	}
	decl, ok := r.decls[fullName]
	if !ok {
		return nil
	}
	r.stack[fullName] = true
	vals := r.collect(decl)
	delete(r.stack, fullName)
	r.memo[fullName] = vals
	return vals
}

// collect walks one function body for registration calls and nested
// Instrument composition.
func (r *resolver) collect(decl *ast.FuncDecl) []nameval {
	info := r.pass.Pkg.Info
	params := paramSet(info, decl)
	var out []nameval
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		switch {
		case registerMethods[sel.Sel.Name]:
			if v, ok := evalString(info, params, call.Args[0]); ok {
				out = append(out, v)
			}
		case sel.Sel.Name == "Instrument" && len(call.Args) >= 2:
			prefix, ok := evalString(info, params, call.Args[1])
			if !ok {
				return true
			}
			for _, suffix := range r.calleeSuffixes(sel) {
				out = append(out, nameval{text: prefix.text + suffix, rel: prefix.rel})
			}
		}
		return true
	})
	return out
}

// calleeSuffixes returns the suffix list of the Instrument method the
// selector resolves to, from same-package declarations or imported
// facts.
func (r *resolver) calleeSuffixes(sel *ast.SelectorExpr) []string {
	info := r.pass.Pkg.Info
	var fn *types.Func
	if s, ok := info.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	} else {
		fn, _ = info.Uses[sel.Sel].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	full := lintcore.FuncFullName(fn)
	if _, local := r.decls[full]; local {
		var suffixes []string
		for _, v := range r.resolve(full) {
			if v.rel {
				suffixes = append(suffixes, v.text)
			}
		}
		return suffixes
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	if data, ok := r.pass.Fact(pkg.Path(), "suffixes:"+full); ok {
		var suffixes []string
		if json.Unmarshal([]byte(data), &suffixes) == nil {
			return suffixes
		}
	}
	return nil
}

// evalString classifies a string expression as a grounded literal, a
// prefix-parameter-relative suffix, or untrackable.
func evalString(info *types.Info, params map[types.Object]bool, e ast.Expr) (nameval, bool) {
	e = ast.Unparen(e)
	if s, ok := stringConst(info, e); ok {
		return nameval{text: s}, true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && params[obj] {
			return nameval{rel: true}, true
		}
	case *ast.BinaryExpr:
		if e.Op.String() != "+" {
			break
		}
		x, okx := evalString(info, params, e.X)
		y, oky := evalString(info, params, e.Y)
		if okx && oky && !y.rel {
			return nameval{text: x.text + y.text, rel: x.rel}, true
		}
	}
	return nameval{}, false
}

func stringConst(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// paramSet indexes decl's string-typed parameters.
func paramSet(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				out[obj] = true
			}
		}
	}
	return out
}
