// Package shardfix is a simdeterminism fixture modelled on the
// internal/shard stitching path: shard results MUST be combined in
// segment-index order, so collecting them into a map and ranging over it
// is exactly the nondeterminism the analyzer exists to catch. The
// indexed-slice version below is the sanctioned shape.
package shardfix

// payload stands in for one shard's stitched contribution.
type payload struct {
	index int
	instr uint64
}

// stitchFromMap is the forbidden shape: map iteration order would decide
// the order shard results are folded in.
func stitchFromMap(byShard map[int]payload) uint64 {
	var total uint64
	for _, p := range byShard { // want `map iteration in the deterministic core`
		total += p.instr
	}
	return total
}

// stitchIndexed is the sanctioned shape: outcomes live in a slice indexed
// by segment, so the fold order is the segment order by construction.
func stitchIndexed(ordered []payload) uint64 {
	var total uint64
	for i := range ordered {
		total += ordered[i].instr
	}
	return total
}

var _ = stitchFromMap
var _ = stitchIndexed
