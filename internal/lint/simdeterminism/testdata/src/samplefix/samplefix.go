// Package samplefix is a simdeterminism fixture modelled on the
// internal/sample planning path: phase weights MUST be folded in phase
// order, so accumulating window→phase assignments into a map and ranging
// over it to emit representatives is exactly the nondeterminism the
// analyzer exists to catch. The phase-indexed version below is the
// sanctioned shape.
package samplefix

// rep stands in for one phase's representative interval.
type rep struct {
	window int
	weight uint64
}

// planFromMap is the forbidden shape: map iteration order would decide
// the order representatives (and hence segment indices) are emitted in.
func planFromMap(byPhase map[int]rep) []rep {
	var out []rep
	for _, r := range byPhase { // want `map iteration in the deterministic core`
		out = append(out, r)
	}
	return out
}

// planIndexed is the sanctioned shape: representatives live in a slice
// indexed by phase, so the emission order is the phase order by
// construction.
func planIndexed(ordered []rep) []rep {
	out := make([]rep, len(ordered))
	copy(out, ordered)
	return out
}

var _ = planFromMap
var _ = planIndexed
