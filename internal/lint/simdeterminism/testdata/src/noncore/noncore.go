// Package noncore is a simdeterminism fixture for the repo-wide rules:
// outside the core, imports and map iteration are free, but wall-clock
// reads still need //itp:wallclock and the global math/rand source is
// still off limits.
package noncore

import (
	"math/rand"
	"time"
)

// Stamp mixes sanctioned and unsanctioned time/randomness use.
func Stamp(m map[string]int) (string, int) {
	bad := time.Now() // want `wall-clock read time.Now`
	//itp:wallclock run-manifest timestamp, recorded but never fed back into simulation
	ok := time.Now().UTC().Format(time.RFC3339)

	rng := rand.New(rand.NewSource(42)) // seeded constructor: allowed
	n := rng.Intn(8)                    // method on seeded source: allowed
	n += rand.Intn(8)                   // want `global math/rand source \(rand.Intn\)`

	for _, v := range m { // map range outside the core: allowed
		n += v
	}
	_ = bad
	return ok, n
}
