// Package corefix is a simdeterminism fixture standing in for a
// deterministic-core package (the analyzer test overrides CoreScope to
// include it).
package corefix

import (
	"math/rand" // want `core package imports math/rand`
	"sort"
	"time" // want `core package imports time`
)

// Tick exercises every core rule.
func Tick(m map[int]int) int {
	t := time.Now()    // want `wall-clock read time.Now`
	n := rand.Intn(4)  // want `global math/rand source \(rand.Intn\)`
	for k := range m { // want `map iteration in the deterministic core`
		n += k
	}
	//itp:deterministic summation commutes; iteration order cannot matter
	for k, v := range m {
		n += k + v
	}
	keys := make([]int, 0, len(m))
	for k := range m { //itp:deterministic keys are sorted before use below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys { // slice range: always fine
		n += m[k]
	}
	_ = t
	return n
}
