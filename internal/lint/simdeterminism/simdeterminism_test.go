package simdeterminism

import (
	"strings"
	"testing"

	"itpsim/internal/lint/lintcore"
	"itpsim/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	old := CoreScope
	CoreScope = func(path string) bool { return strings.HasSuffix(path, "/corefix") }
	defer func() { CoreScope = old }()

	linttest.Run(t, []*lintcore.Analyzer{Analyzer},
		"./testdata/src/corefix", "./testdata/src/noncore")
}

func TestAnalyzerShardFixture(t *testing.T) {
	old := CoreScope
	CoreScope = func(path string) bool { return strings.HasSuffix(path, "/shardfix") }
	defer func() { CoreScope = old }()

	linttest.Run(t, []*lintcore.Analyzer{Analyzer}, "./testdata/src/shardfix")
}

func TestAnalyzerSampleFixture(t *testing.T) {
	old := CoreScope
	CoreScope = func(path string) bool { return strings.HasSuffix(path, "/samplefix") }
	defer func() { CoreScope = old }()

	linttest.Run(t, []*lintcore.Analyzer{Analyzer}, "./testdata/src/samplefix")
}

func TestCoreScopeDefault(t *testing.T) {
	for _, path := range []string{
		"itpsim/internal/sim", "itpsim/internal/metrics", "itpsim/internal/replacement",
		"itpsim/internal/shard", "itpsim/internal/sample",
	} {
		if !CoreScope(path) {
			t.Errorf("CoreScope(%q) = false, want true", path)
		}
	}
	for _, path := range []string{"itpsim/internal/workload", "itpsim/cmd/itpsim", "itpsim/internal/lint"} {
		if CoreScope(path) {
			t.Errorf("CoreScope(%q) = true, want false", path)
		}
	}
}
