// Package simdeterminism checks that the simulator stays bit-exactly
// replayable: the deterministic core must not read wall clocks, must not
// use the globally seeded math/rand source, and must not let map
// iteration order leak into results.
//
// Rules (non-test files only):
//
//   - Repo-wide, calls to time.Now, time.Since, or time.Until are
//     forbidden unless the call line carries an //itp:wallclock
//     directive. The only sanctioned sites are the run-manifest Time
//     stamps and bench elapsed reporting in cmd/ — the gate test in
//     internal/lint pins that set exactly.
//   - Repo-wide, package-level math/rand functions (rand.Intn, ...) are
//     forbidden: they draw from the global source, whose seeding is
//     outside the experiment manifest. Constructors (rand.New,
//     rand.NewSource, ...) and methods on explicitly seeded *rand.Rand
//     values are fine outside the core.
//   - In core packages, importing time, math/rand, or math/rand/v2 at
//     all is forbidden — the core takes its clock from simulated cycles
//     and its randomness from seeded xorshift state.
//   - In core packages, `range` over a map is forbidden unless the range
//     statement carries an //itp:deterministic directive recording why
//     iteration order cannot affect results (or the keys are sorted
//     first).
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"itpsim/internal/lint/lintcore"
)

// corePackages are the deterministic-core packages under itpsim/internal.
var corePackages = []string{
	"sim", "core", "replacement", "tlb", "cache", "ptw", "vm", "dram", "metrics",
	"audit", "chaos", "shard", "sample",
}

// CoreScope decides whether a package is part of the deterministic core.
// It is a variable so analyzer tests can point it at fixture packages.
var CoreScope = func(path string) bool {
	for _, p := range corePackages {
		if path == "itpsim/internal/"+p {
			return true
		}
	}
	return false
}

// clockFuncs are the wall-clock reads the wallclock rule covers.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Analyzer is the simdeterminism check.
var Analyzer = &lintcore.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock reads, global math/rand, and map-iteration nondeterminism in the simulator core",
	Run:  run,
}

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	core := CoreScope(pkg.ImportPath)
	dirs := pkg.Directives()

	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		if core {
			for _, imp := range file.Imports {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "time":
					pass.Reportf(imp.Pos(), "core package imports time: the deterministic core must take its clock from simulated cycles")
				case "math/rand", "math/rand/v2":
					pass.Reportf(imp.Pos(), "core package imports math/rand: use seeded xorshift state so runs replay bit-exactly")
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, dirs, n)
			case *ast.RangeStmt:
				if core && lintcore.TypeIsMap(pkg.Info.TypeOf(n.X)) &&
					!dirs.Covers(n.Pos(), lintcore.DirDeterministic) {
					pass.Reportf(n.Pos(), "map iteration in the deterministic core: sort the keys first, or annotate //itp:deterministic with why order cannot affect results")
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lintcore.Pass, dirs *lintcore.Directives, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods (e.g. time.Time.Sub,
	// rand.Rand.Intn on a seeded source) are not clock reads or global
	// draws.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if clockFuncs[fn.Name()] && !dirs.Covers(call.Pos(), lintcore.DirWallclock) {
			pass.Reportf(call.Pos(), "wall-clock read time.%s outside an //itp:wallclock site: the simulator must stay replayable", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, rand.NewZipf, ...)
		// build explicitly seeded generators and are fine; everything
		// else draws from the unseeded global source.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "global math/rand source (rand.%s): randomness must come from a seed recorded in the run manifest", fn.Name())
		}
	}
}
