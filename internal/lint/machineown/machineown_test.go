package machineown

import (
	"testing"

	"itpsim/internal/lint/lintcore"
	"itpsim/internal/lint/linttest"
)

const fixtureRootPkg = "itpsim/internal/lint/machineown/testdata/src/machroot"

func TestAnalyzer(t *testing.T) {
	old := Roots
	Roots = []string{fixtureRootPkg + ".Core", fixtureRootPkg + ".Feed"}
	defer func() { Roots = old }()

	linttest.Run(t, []*lintcore.Analyzer{Analyzer},
		"./testdata/src/machroot", "./testdata/src/machuse")
}

func TestDefaultRoots(t *testing.T) {
	want := map[string]bool{
		"itpsim/internal/sim.Machine":     true,
		"itpsim/internal/shard.Payload":   true,
		"itpsim/internal/workload.Stream": true,
	}
	if len(Roots) != len(want) {
		t.Fatalf("Roots = %v", Roots)
	}
	for _, r := range Roots {
		if !want[r] {
			t.Errorf("unexpected root %q", r)
		}
	}
}
