// Package machineown proves shard/core isolation as a checked
// invariant: values whose types are reachable from the simulator's
// owned roots — sim.Machine, shard.Payload, the workload.Stream
// instruction source — must never escape the goroutine that owns them.
// Differential equivalence (bit-identical 1-shard vs K-shard runs)
// holds only because each machine is touched by exactly one goroutine;
// this analyzer turns that convention into a diagnostic.
//
// The owned type set is computed per package by walking the type graph
// from every root visible through the package's import closure: struct
// fields, pointer/slice/array/map/channel element types, generic type
// arguments, and — for module-declared interfaces — method signature
// types (which is how workload.Stream taints workload.Instr). Function
// signatures are deliberately not descended: a registry of constructors
// returning machines does not itself carry a machine.
//
// A package that cannot see any root through its imports is naturally
// exempt — shared infrastructure like internal/metrics stays out of
// scope without a hand-maintained list.
//
// Flagged escapes (non-test files): a machine-owned value captured or
// passed into a go statement, sent on a channel, or stored in a
// package-level variable. Receives are not flagged — taking ownership
// is the legal half of a transfer. A reviewed handoff (the decode-ahead
// ring's recycling protocol, say) carries //itp:owner naming the
// protocol; TestOwnershipAnnotationAudit keeps those justified and
// manifested.
package machineown

import (
	"go/ast"
	"go/types"
	"strings"

	"itpsim/internal/lint/lintcore"
)

// Roots names the owned root types as "pkgpath.TypeName". It is a
// variable so analyzer tests can root fixture types instead.
var Roots = []string{
	"itpsim/internal/sim.Machine",
	"itpsim/internal/shard.Payload",
	"itpsim/internal/workload.Stream",
}

// modulePrefix scopes interface method-signature descent to interfaces
// the module declares.
const modulePrefix = "itpsim/"

// Analyzer is the machineown check.
var Analyzer = &lintcore.Analyzer{
	Name: "machineown",
	Doc:  "machine-owned state must not escape into goroutines, channel sends, or package-level variables",
	Run:  run,
}

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	owned := ownedSet(pkg)
	if len(owned) == 0 {
		return nil // no root visible from here: exempt by construction
	}
	c := &carrier{owned: owned, memo: map[*types.TypeName]bool{}}

	dirs := pkg.Directives()
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok || !c.carries(obj.Type()) {
						continue
					}
					if dirs.Covers(name.Pos(), lintcore.DirOwner) {
						continue
					}
					pass.Reportf(name.Pos(), "package-level variable %s holds machine-owned state (%s): it is reachable from every goroutine (//itp:owner naming the handoff protocol if this is a reviewed transfer point)",
						name.Name, typeLabel(obj.Type()))
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGo(pass, c, dirs, n)
			case *ast.SendStmt:
				checkSend(pass, c, dirs, n)
			}
			return true
		})
	}
	return nil
}

// checkGo flags machine-owned values entering a spawned goroutine:
// captured by its literal, passed as arguments, or carried by its
// method receiver.
func checkGo(pass *lintcore.Pass, c *carrier, dirs *lintcore.Directives, gs *ast.GoStmt) {
	if dirs.Covers(gs.Pos(), lintcore.DirOwner) {
		return
	}
	info := pass.Pkg.Info
	flag := func(what string, t types.Type) {
		pass.Reportf(gs.Pos(), "go statement moves machine-owned state to another goroutine: %s (%s) (//itp:owner naming the handoff protocol if this is a reviewed transfer)", what, typeLabel(t))
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		seen := map[*types.Var]bool{}
		for _, fv := range lintcore.FreeVars(info, lit) {
			if seen[fv.Var] || !c.carries(fv.Var.Type()) {
				continue
			}
			seen[fv.Var] = true
			flag("captures "+fv.Var.Name(), fv.Var.Type())
		}
	} else if sel, ok := ast.Unparen(gs.Call.Fun).(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil && c.carries(t) {
			flag("receiver "+types.ExprString(sel.X), t)
		}
	}
	for _, arg := range gs.Call.Args {
		if t := info.TypeOf(arg); t != nil && c.carries(t) {
			flag("argument "+types.ExprString(arg), t)
		}
	}
}

// checkSend flags machine-owned values sent on a channel.
func checkSend(pass *lintcore.Pass, c *carrier, dirs *lintcore.Directives, send *ast.SendStmt) {
	t := pass.Pkg.Info.TypeOf(send.Value)
	if t == nil || !c.carries(t) {
		return
	}
	if dirs.Covers(send.Pos(), lintcore.DirOwner) {
		return
	}
	pass.Reportf(send.Pos(), "channel send publishes machine-owned state (%s) to another goroutine (//itp:owner naming the handoff protocol if this is a reviewed transfer)", typeLabel(t))
}

// ownedSet walks the type graph from every root visible to pkg and
// returns the owned named types.
func ownedSet(pkg *lintcore.Package) map[*types.TypeName]bool {
	owned := map[*types.TypeName]bool{}
	var visit func(t types.Type)
	visit = func(t types.Type) {
		switch t := t.(type) {
		case *types.Named:
			obj := t.Obj()
			if owned[obj] {
				return
			}
			// Ownership is a property of module types. Stdlib and
			// universe types (os.File, error, atomic.Uint64) reached
			// through a machine's fields are shared-safe infrastructure,
			// not per-core state — tainting them would flag every
			// os.Stderr capture in sight of a root.
			if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), modulePrefix) {
				return
			}
			owned[obj] = true
			if args := t.TypeArgs(); args != nil {
				for i := 0; i < args.Len(); i++ {
					visit(args.At(i))
				}
			}
			if iface, ok := t.Underlying().(*types.Interface); ok {
				// Method signatures of module interfaces taint the types
				// they produce/consume (Stream.Next taints Instr).
				if obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), modulePrefix) {
					for i := 0; i < iface.NumMethods(); i++ {
						sig := iface.Method(i).Type().(*types.Signature)
						visitTuple(visit, sig.Params())
						visitTuple(visit, sig.Results())
					}
				}
				return
			}
			visit(t.Underlying())
		case *types.Pointer:
			visit(t.Elem())
		case *types.Slice:
			visit(t.Elem())
		case *types.Array:
			visit(t.Elem())
		case *types.Chan:
			visit(t.Elem())
		case *types.Map:
			visit(t.Key())
			visit(t.Elem())
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				visit(t.Field(i).Type())
			}
			// Signatures, basic types, unnamed interfaces: stop.
		}
	}
	for _, root := range Roots {
		if named := lookupRoot(pkg, root); named != nil {
			visit(named)
		}
	}
	return owned
}

func visitTuple(visit func(types.Type), tup *types.Tuple) {
	for i := 0; i < tup.Len(); i++ {
		visit(tup.At(i).Type())
	}
}

// lookupRoot resolves "pkgpath.TypeName" through pkg and its transitive
// imports; nil when the root is not visible.
func lookupRoot(pkg *lintcore.Package, root string) types.Type {
	dot := strings.LastIndex(root, ".")
	if dot < 0 {
		return nil
	}
	path, name := root[:dot], root[dot+1:]
	tp := findImport(pkg.Types, path, map[*types.Package]bool{})
	if tp == nil {
		return nil
	}
	tn, ok := tp.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	return tn.Type()
}

func findImport(from *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if from == nil || seen[from] {
		return nil
	}
	seen[from] = true
	if from.Path() == path {
		return from
	}
	for _, imp := range from.Imports() {
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// carrier memoizes "does this type carry owned state": it mentions an
// owned named type through fields, elements, or type arguments — but
// not through function signatures.
type carrier struct {
	owned map[*types.TypeName]bool
	memo  map[*types.TypeName]bool
}

func (c *carrier) carries(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if c.owned[obj] {
			return true
		}
		if done, ok := c.memo[obj]; ok {
			return done
		}
		c.memo[obj] = false // cycle guard: least fixpoint
		res := false
		if args := t.TypeArgs(); args != nil {
			for i := 0; i < args.Len() && !res; i++ {
				res = c.carries(args.At(i))
			}
		}
		// Only module types are opened up; a stdlib container can hold
		// module state only through its type arguments (checked above)
		// or an any — which no static check can chase.
		if !res && obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), modulePrefix) {
			res = c.carries(t.Underlying())
		}
		c.memo[obj] = res
		return res
	case *types.Pointer:
		return c.carries(t.Elem())
	case *types.Slice:
		return c.carries(t.Elem())
	case *types.Array:
		return c.carries(t.Elem())
	case *types.Chan:
		return c.carries(t.Elem())
	case *types.Map:
		return c.carries(t.Key()) || c.carries(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.carries(t.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// typeLabel renders t with package paths shortened to their last
// element.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
