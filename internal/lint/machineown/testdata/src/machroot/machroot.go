// Package machroot declares the machineown fixture roots: Core plays
// sim.Machine (a struct root) and Feed plays workload.Stream (an
// interface root whose method signatures taint Item).
package machroot

// Core is the fixture machine.
type Core struct {
	ID    int
	State []uint64
}

// Item is tainted through Feed's method signature, not named as a root.
type Item struct {
	PC uint64
}

// Feed is the fixture stream interface.
type Feed interface {
	Next(*Item) bool
}

// Plain is unrelated to any root.
type Plain struct {
	Label string
}

// Spin runs the core until done closes (a method spawn target for the
// fixture's receiver-escape cases).
func (c *Core) Spin(done chan struct{}) {
	c.State[0]++
	<-done
}
