// Package machuse is the machineown fixture target.
package machuse

import "itpsim/internal/lint/machineown/testdata/src/machroot"

// badGlobal pins owned state in a package-level variable.
var badGlobal *machroot.Core // want `package-level variable badGlobal holds machine-owned state`

// okGlobalPlain holds an unrelated type.
var okGlobalPlain machroot.Plain

// okRegistry holds owned types only behind function signatures: a
// constructor registry does not itself carry a machine.
var okRegistry = map[string]func() *machroot.Core{}

// okOwnerGlobal is a reviewed transfer point.
//
//itp:owner fixture: single-writer handoff cell, swapped before spawn
var okOwnerGlobal *machroot.Core

func badCapture(c *machroot.Core, done chan struct{}) {
	go func() { // want `go statement moves machine-owned state to another goroutine: captures c`
		c.State[0]++
		<-done
	}()
}

func badArg(c *machroot.Core, done chan struct{}) {
	go runCore(c, done) // want `go statement moves machine-owned state to another goroutine: argument c`
}

func badReceiver(c *machroot.Core, done chan struct{}) {
	go c.Spin(done) // want `go statement moves machine-owned state to another goroutine: receiver c`
}

func (c *Core2) spinWrapped(done chan struct{}) {
	go c.inner.Spin(done) // want `go statement moves machine-owned state to another goroutine: receiver c\.inner`
}

// Core2 carries a root transitively through a field.
type Core2 struct {
	inner *machroot.Core
}

func badSend(c *machroot.Core, ch chan *machroot.Core) {
	ch <- c // want `channel send publishes machine-owned state`
}

// badSendWrapper: a struct containing a tainted Item slice carries
// owned state (the interface-signature taint).
type batch struct {
	items []machroot.Item
}

func badSendWrapper(b batch, ch chan batch) {
	ch <- b // want `channel send publishes machine-owned state`
}

// okRecv: taking ownership is the legal half of a transfer.
func okRecv(ch chan *machroot.Core) *machroot.Core {
	return <-ch
}

// okSendPlain sends an unrelated type.
func okSendPlain(p machroot.Plain, ch chan machroot.Plain) {
	ch <- p
}

// okOwnerSend is a reviewed handoff.
func okOwnerSend(c *machroot.Core, ch chan *machroot.Core) {
	ch <- c //itp:owner fixture: ring recycle — receiver is the only consumer
}

// okOwnerGo is a reviewed spawn.
func okOwnerGo(c *machroot.Core, done chan struct{}) {
	//itp:owner fixture: c is abandoned by the spawner after this line
	go runCore(c, done)
}

// okCapturePlain captures nothing owned.
func okCapturePlain(p machroot.Plain, done chan struct{}) {
	go func() {
		_ = p.Label
		<-done
	}()
}

func runCore(c *machroot.Core, done chan struct{}) {
	c.State[0]++
	<-done
}
