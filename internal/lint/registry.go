// Package lint assembles the itpvet analyzer suite. The individual
// checks live in subpackages; this package owns the suite list and the
// repo-level gate tests (wall-clock allowlist, hot-path/benchmark gate
// coverage, and the clean-tree check).
package lint

import (
	"itpsim/internal/lint/atomicfield"
	"itpsim/internal/lint/cycleunits"
	"itpsim/internal/lint/errpropagation"
	"itpsim/internal/lint/goroutinelife"
	"itpsim/internal/lint/hotpathalloc"
	"itpsim/internal/lint/lintcore"
	"itpsim/internal/lint/lockscope"
	"itpsim/internal/lint/machineown"
	"itpsim/internal/lint/simdeterminism"
	"itpsim/internal/lint/statregistry"
)

// All returns the full itpvet suite, in the order diagnostics are
// attributed: the five intra-procedural checks from the original suite,
// then the four interprocedural concurrency checks built on the
// lintcore call graph.
func All() []*lintcore.Analyzer {
	return []*lintcore.Analyzer{
		simdeterminism.Analyzer,
		hotpathalloc.Analyzer,
		cycleunits.Analyzer,
		errpropagation.Analyzer,
		statregistry.Analyzer,
		machineown.Analyzer,
		atomicfield.Analyzer,
		goroutinelife.Analyzer,
		lockscope.Analyzer,
	}
}
