// Package lint assembles the itpvet analyzer suite. The individual
// checks live in subpackages; this package owns the suite list and the
// repo-level gate tests (wall-clock allowlist, hot-path/benchmark gate
// coverage, and the clean-tree check).
package lint

import (
	"itpsim/internal/lint/cycleunits"
	"itpsim/internal/lint/errpropagation"
	"itpsim/internal/lint/hotpathalloc"
	"itpsim/internal/lint/lintcore"
	"itpsim/internal/lint/simdeterminism"
	"itpsim/internal/lint/statregistry"
)

// All returns the full itpvet suite, in the order diagnostics are
// attributed.
func All() []*lintcore.Analyzer {
	return []*lintcore.Analyzer{
		simdeterminism.Analyzer,
		hotpathalloc.Analyzer,
		cycleunits.Analyzer,
		errpropagation.Analyzer,
		statregistry.Analyzer,
	}
}
