package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"itpsim/internal/lint/lintcore"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// The full-tree load is shared by every gate test in this package: one
// `go list` walk plus one type-check of the module.
var (
	loadOnce sync.Once
	loadPkgs []*lintcore.Package
	loadErr  error
)

func loadTree(t *testing.T) []*lintcore.Package {
	t.Helper()
	root := repoRoot(t)
	loadOnce.Do(func() {
		loadPkgs, loadErr = lintcore.Load(root, "./...")
	})
	if loadErr != nil {
		t.Fatalf("loading module tree: %v", loadErr)
	}
	return loadPkgs
}

// TestItpvetCleanTree pins the invariant the whole suite exists to hold:
// the shipped tree produces zero diagnostics from every analyzer. A
// regression here means a hot-path, determinism, unit, error, or stat
// violation landed without its justifying directive.
func TestItpvetCleanTree(t *testing.T) {
	pkgs := loadTree(t)
	diags, err := lintcore.Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// wallClockGolden is the exact per-package census of //itp:wallclock
// sites. The simulator core must have none: the only permitted wall-clock
// reads are the CLI tools' export-manifest timestamps and itpbench's
// progress timer. Adding a site anywhere means updating this table — and
// justifying it in review.
var wallClockGolden = map[string]int{
	"itpsim/cmd/benchguard": 1, // baseline manifest Time field
	"itpsim/cmd/itpbench":   2, // per-figure progress timer (start + elapsed)
	"itpsim/cmd/itpsim":     1, // export manifest Time field
	"itpsim/cmd/itpsweep":   1, // export manifest Time field
	"itpsim/cmd/itpvet":     4, // -timing/-budget guard: load + per-analyzer (start + elapsed each)
}

func TestWallClockAllowlist(t *testing.T) {
	got := map[string]int{}
	for _, p := range loadTree(t) {
		if !p.Target {
			continue
		}
		for _, d := range p.Directives().All() {
			if d.Name != lintcore.DirWallclock || p.IsTestFile(d.Pos) {
				continue
			}
			got[p.ImportPath]++
		}
	}
	for pkg, want := range wallClockGolden {
		if got[pkg] != want {
			t.Errorf("%s: %d //itp:wallclock sites, want %d", pkg, got[pkg], want)
		}
	}
	for pkg, n := range got {
		if _, ok := wallClockGolden[pkg]; !ok {
			t.Errorf("%s: %d //itp:wallclock sites outside the allowlist; the simulator core must not read the wall clock", pkg, n)
		}
	}
}

// benchGateFile is where the alloc-gated benchmarks and their coverage
// manifest live, relative to the module root.
const benchGateFile = "internal/sim/bench_test.go"

var benchNameRe = regexp.MustCompile(`^BenchmarkSteadyState`)

// parseGateManifest reads hotpathGateManifest from the benchmark file
// syntactically: map keys are benchmark-name string literals, values are
// identifiers naming package-list variables declared in the same file.
func parseGateManifest(t *testing.T, root string) (manifest map[string][]string, benchFuncs map[string]bool) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join(root, benchGateFile), nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Collect the []string variables and benchmark funcs.
	lists := map[string][]string{}
	benchFuncs = map[string]bool{}
	var manifestLit *ast.CompositeLit
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil && strings.HasPrefix(d.Name.Name, "Benchmark") {
				benchFuncs[d.Name.Name] = true
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					if name.Name == "hotpathGateManifest" {
						manifestLit = cl
						continue
					}
					var elems []string
					for _, e := range cl.Elts {
						lit, ok := e.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							elems = nil
							break
						}
						v, err := strconv.Unquote(lit.Value)
						if err != nil {
							t.Fatalf("%s: bad string literal %s", name.Name, lit.Value)
						}
						elems = append(elems, v)
					}
					if elems != nil {
						lists[name.Name] = elems
					}
				}
			}
		}
	}
	if manifestLit == nil {
		t.Fatalf("%s: hotpathGateManifest not found", benchGateFile)
	}

	manifest = map[string][]string{}
	for _, e := range manifestLit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			t.Fatalf("hotpathGateManifest: element %v is not key: value", e)
		}
		key, ok := kv.Key.(*ast.BasicLit)
		if !ok || key.Kind != token.STRING {
			t.Fatalf("hotpathGateManifest: key must be a string literal, got %v", kv.Key)
		}
		bench, err := strconv.Unquote(key.Value)
		if err != nil {
			t.Fatal(err)
		}
		ident, ok := kv.Value.(*ast.Ident)
		if !ok {
			t.Fatalf("hotpathGateManifest[%s]: value must reference a package-list variable", bench)
		}
		pkgsOf, ok := lists[ident.Name]
		if !ok {
			t.Fatalf("hotpathGateManifest[%s]: %s is not a []string literal in %s", bench, ident.Name, benchGateFile)
		}
		manifest[bench] = pkgsOf
	}
	return manifest, benchFuncs
}

// TestHotpathGateCoverage is itpvet's self-check satellite: every package
// holding an //itp:hotpath annotation must be claimed by at least one
// BenchmarkSteadyState* alloc gate in the manifest, every manifest entry
// must name a benchmark that actually exists, and every claimed package
// must really carry annotations (no stale rows).
func TestHotpathGateCoverage(t *testing.T) {
	root := repoRoot(t)
	manifest, benchFuncs := parseGateManifest(t, root)
	if len(manifest) == 0 {
		t.Fatal("hotpathGateManifest is empty")
	}

	covered := map[string]bool{}
	for bench, pkgList := range manifest {
		if !benchNameRe.MatchString(bench) {
			t.Errorf("manifest key %q does not match %v", bench, benchNameRe)
		}
		if !benchFuncs[bench] {
			t.Errorf("manifest names %s, but no such benchmark exists in %s", bench, benchGateFile)
		}
		for _, pkg := range pkgList {
			covered[pkg] = true
		}
	}

	annotated := map[string]bool{}
	for _, p := range loadTree(t) {
		if !p.Target || strings.HasPrefix(p.ImportPath, "itpsim/internal/lint") {
			continue
		}
		for _, d := range p.Directives().All() {
			if d.Name == lintcore.DirHotpath && !p.IsTestFile(d.Pos) {
				annotated[p.ImportPath] = true
				break
			}
		}
	}
	if len(annotated) == 0 {
		t.Fatal("no //itp:hotpath annotations found in the tree")
	}

	var missing, stale []string
	for pkg := range annotated {
		if !covered[pkg] {
			missing = append(missing, pkg)
		}
	}
	for pkg := range covered {
		if !annotated[pkg] {
			stale = append(stale, pkg)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, pkg := range missing {
		t.Error(fmt.Errorf("package %s has //itp:hotpath functions but no BenchmarkSteadyState* gate claims it in %s", pkg, benchGateFile))
	}
	for _, pkg := range stale {
		t.Error(fmt.Errorf("gate manifest claims %s, which has no //itp:hotpath annotations", pkg))
	}
}

// ownershipManifest is the exact census of concurrency escape hatches:
// every //itp:owner (machineown) and //itp:daemon (goroutinelife) site in
// non-test files, per package. These directives suppress an analyzer, so
// each one is a reviewed claim about the code — adding or removing a site
// means updating this table, visibly.
var ownershipManifest = map[string]map[string]int{
	"itpsim/internal/workload": {
		lintcore.DirOwner: 3, // decode-ahead ring: producer spawn + batches send + free send
	},
	"itpsim/internal/harness": {
		lintcore.DirDaemon: 1, // attempt body abandoned after KillGrace by design
	},
	"itpsim/cmd/itpsim": {
		lintcore.DirDaemon: 1, // pprof/expvar debug server
	},
	"itpsim/cmd/itpsweep": {
		lintcore.DirDaemon: 1, // pprof/expvar debug server
	},
}

// TestOwnershipAnnotationAudit keeps the concurrency escape hatches
// reviewed: every //itp:owner and //itp:daemon directive must carry a
// justification (the directive argument) and must be accounted for in
// ownershipManifest; stale manifest rows fail too.
func TestOwnershipAnnotationAudit(t *testing.T) {
	audited := map[string]bool{lintcore.DirOwner: true, lintcore.DirDaemon: true}

	got := map[string]map[string]int{}
	for _, p := range loadTree(t) {
		if !p.Target || strings.HasPrefix(p.ImportPath, "itpsim/internal/lint") {
			continue
		}
		for _, d := range p.Directives().All() {
			if !audited[d.Name] || p.IsTestFile(d.Pos) {
				continue
			}
			if strings.TrimSpace(d.Arg) == "" {
				pos := p.Fset.Position(d.Pos)
				t.Errorf("%s:%d: //itp:%s without a justification; say why the analyzer is wrong here", pos.Filename, pos.Line, d.Name)
			}
			if got[p.ImportPath] == nil {
				got[p.ImportPath] = map[string]int{}
			}
			got[p.ImportPath][d.Name]++
		}
	}

	for pkg, wantDirs := range ownershipManifest {
		for dir, want := range wantDirs {
			if got[pkg][dir] != want {
				t.Errorf("%s: %d //itp:%s sites, manifest says %d", pkg, got[pkg][dir], dir, want)
			}
		}
	}
	for pkg, gotDirs := range got {
		for dir, n := range gotDirs {
			if ownershipManifest[pkg][dir] == 0 {
				t.Errorf("%s: %d //itp:%s sites outside ownershipManifest; escape hatches must be enumerated there", pkg, n, dir)
			}
		}
	}
}
