// Package goroutinelife requires every go statement in non-test code to
// have a provable termination path. A leaked goroutine — a decode-ahead
// ring that nobody stops, a watchdog that outlives its job — keeps
// machine state alive past the run that owned it and turns the next
// run's "idle" baseline into a lie.
//
// Accepted evidence, checked on the spawned function's body (and, for
// calls, interprocedurally through the call graph and cross-package
// facts):
//
//   - a receive or select case on a cancellation channel: ctx.Done() or
//     any chan struct{} (the done-channel convention),
//   - a range over a channel (the loop ends when the producer closes),
//   - a call to (*sync.WaitGroup).Done (the goroutine is joined),
//   - a call to a function that itself carries such evidence (same
//     package via the call-graph fixpoint, dependencies via the
//     "cancellable" fact).
//
// A goroutine that is deliberately process-lifetime (a pprof server, a
// crash reporter) carries //itp:daemon with a reason; the gate test
// TestOwnershipAnnotationAudit keeps those reviewed.
package goroutinelife

import (
	"go/ast"
	"go/types"

	"itpsim/internal/lint/lintcore"
)

// Analyzer is the goroutinelife check.
var Analyzer = &lintcore.Analyzer{
	Name: "goroutinelife",
	Doc:  "every goroutine must have a provable termination path (//itp:daemon for audited exceptions)",
	Run:  run,
}

const cancellableFact = "cancellable"

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	g := pkg.CallGraph()

	external := func(fn *types.Func) bool {
		if fn.Pkg() == nil {
			return false
		}
		_, ok := pass.Fact(fn.Pkg().Path(), lintcore.FuncFullName(fn))
		return ok
	}
	// has marks the package's declared functions whose call observes a
	// termination signal in the calling goroutine.
	has := g.Propagate(func(n *lintcore.FuncNode) bool {
		return directEvidence(g, n)
	}, external)

	// Publish for importing packages.
	for fn, ok := range has {
		if ok {
			pass.ExportFact(lintcore.FuncFullName(fn), cancellableFact)
		}
	}

	dirs := pkg.Directives()
	for _, node := range g.Nodes() {
		for _, gs := range node.Gos {
			if pkg.IsTestFile(gs.Pos()) {
				continue
			}
			if dirs.Covers(gs.Pos(), lintcore.DirDaemon) {
				continue
			}
			if spawnTerminates(pass, g, gs, has, external) {
				continue
			}
			pass.Reportf(gs.Pos(), "goroutine has no provable termination path (ctx.Done/done-channel receive, channel range, WaitGroup.Done, or a cancellable callee); //itp:daemon with a reason if deliberately process-lifetime")
		}
	}
	return nil
}

// spawnTerminates decides whether the goroutine started by gs provably
// terminates.
func spawnTerminates(pass *lintcore.Pass, g *lintcore.CallGraph, gs *ast.GoStmt, has map[*types.Func]bool, external func(*types.Func) bool) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		node := g.LitNodes[lit]
		if node == nil {
			return false
		}
		if directEvidence(g, node) {
			return true
		}
		return anyCancellableCallee(node, has, external)
	}
	callee := lintcore.StaticCallee(pass.Pkg.Info, gs.Call)
	if callee == nil {
		return false // func-value spawn: unverifiable
	}
	if has[callee] {
		return true
	}
	return callee.Pkg() != nil && callee.Pkg() != pass.Pkg.Types && external(callee)
}

// directEvidence reports whether node's own body (including closures it
// runs itself — not ones it spawns with go) observes a termination
// signal.
func directEvidence(g *lintcore.CallGraph, node *lintcore.FuncNode) bool {
	for _, op := range node.ChanOps {
		switch op.Kind {
		case lintcore.ChanRecv:
			if isCancelChan(g.Pkg.Info, op.Ch) {
				return true
			}
		case lintcore.ChanRange:
			return true
		case lintcore.ChanSelect:
			if selectHasCancelCase(g.Pkg.Info, op.Node.(*ast.SelectStmt)) {
				return true
			}
		}
	}
	for _, site := range node.Calls {
		if site.Callee != nil && lintcore.FuncFullName(site.Callee) == "(*sync.WaitGroup).Done" {
			return true
		}
	}
	// Closures the body runs in-goroutine (deferred cleanups, helpers
	// called through a variable) carry their evidence into this body;
	// closures it spawns with go do not — their body runs elsewhere.
	spawned := map[*ast.FuncLit]bool{}
	for _, gs := range node.Gos {
		if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			spawned[fl] = true
		}
	}
	for _, lit := range node.Lits {
		if spawned[lit] {
			continue
		}
		if ln := g.LitNodes[lit]; ln != nil && directEvidence(g, ln) {
			return true
		}
	}
	return false
}

// anyCancellableCallee reports whether node statically calls a function
// known to observe a termination signal.
func anyCancellableCallee(node *lintcore.FuncNode, has map[*types.Func]bool, external func(*types.Func) bool) bool {
	for _, site := range node.Calls {
		if site.Callee == nil {
			continue
		}
		if has[site.Callee] {
			return true
		}
		if site.Callee.Pkg() != nil && external(site.Callee) {
			return true
		}
	}
	return false
}

// isCancelChan reports whether ch is a cancellation channel: the result
// of a Done() method (context.Context and look-alikes) or any channel of
// empty structs.
func isCancelChan(info *types.Info, ch ast.Expr) bool {
	if call, ok := ast.Unparen(ch).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	t := info.TypeOf(ch)
	if t == nil {
		return false
	}
	c, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := c.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// selectHasCancelCase reports whether any comm clause of sel receives
// from a cancellation channel.
func selectHasCancelCase(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc := cl.(*ast.CommClause)
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if un, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && un.Op.String() == "<-" {
				recv = un.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if un, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && un.Op.String() == "<-" {
					recv = un.X
				}
			}
		}
		if recv != nil && isCancelChan(info, recv) {
			return true
		}
	}
	return false
}
