// Package glifeuse is the goroutinelife fixture target.
package glifeuse

import (
	"context"
	"sync"

	"itpsim/internal/lint/goroutinelife/testdata/src/glifedep"
)

// okDone receives on a done channel.
func okDone(done chan struct{}) {
	go func() {
		<-done
	}()
}

// okCtx selects on ctx.Done().
func okCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// okWaitGroup is joined.
func okWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

// okRange ends when the producer closes the channel.
func okRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// okLocalCallee terminates through a same-package callee (call-graph
// fixpoint).
func okLocalCallee(stop chan struct{}) {
	go drain(stop)
}

// drain observes stop, transitively through drainInner.
func drain(stop chan struct{}) { drainInner(stop) }

func drainInner(stop chan struct{}) { <-stop }

// okDepCallee terminates through a dependency's function (fact flow).
func okDepCallee(stop chan struct{}, work chan int) {
	go glifedep.Serve(stop, work)
}

// okDaemon is a reviewed process-lifetime goroutine.
func okDaemon() {
	//itp:daemon fixture: deliberate process-lifetime spin
	go spin()
}

func badSpinLit() {
	go func() { // want `goroutine has no provable termination path`
		for {
			work()
		}
	}()
}

func badSpinCall() {
	go spin() // want `goroutine has no provable termination path`
}

func badDepSpin() {
	go glifedep.Spin() // want `goroutine has no provable termination path`
}

// badDynamic spawns through a func value: unverifiable.
func badDynamic(f func()) {
	go f() // want `goroutine has no provable termination path`
}

// badSpawnInsideLit: the inner goroutine's done-receive must not count
// as evidence for the outer (the outer spawns it; it does not run it).
func badSpawnInsideLit(done chan struct{}) {
	go func() { // want `goroutine has no provable termination path`
		go func() {
			<-done
		}()
		for {
			work()
		}
	}()
}

func spin() {
	for {
		work()
	}
}

func work() {}
