// Package glifedep is the goroutinelife cross-package fixture: Serve
// observes a done channel, so spawning it from an importing package is
// provably terminating (via the "cancellable" fact).
package glifedep

// Serve drains work until stop closes.
func Serve(stop chan struct{}, work chan int) {
	for {
		select {
		case <-stop:
			return
		case <-work:
		}
	}
}

// Spin never terminates; spawning it must be a diagnostic in importers.
func Spin() {
	for {
		_ = 1
	}
}
