package lintcore

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

const cgfixPath = "itpsim/internal/lint/lintcore/testdata/src/cgfix"

func loadCgfix(t *testing.T) *Package {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/cgfix")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if p.ImportPath == cgfixPath {
			return p
		}
	}
	t.Fatal("cgfix not loaded")
	return nil
}

func node(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	n := g.ByName[cgfixPath+"."+name]
	if n == nil {
		t.Fatalf("no node for %s (have %d nodes)", name, len(g.ByName))
	}
	return n
}

func calleeNames(n *FuncNode) []string {
	var out []string
	for _, site := range n.Calls {
		if site.Callee == nil {
			out = append(out, "<dynamic>")
		} else {
			out = append(out, site.Callee.Name())
		}
	}
	return out
}

func TestCallGraphSummaries(t *testing.T) {
	pkg := loadCgfix(t)
	g := pkg.CallGraph()
	if g != pkg.CallGraph() {
		t.Error("CallGraph not cached")
	}

	if got := calleeNames(node(t, g, "leaf")); len(got) != 0 {
		t.Errorf("leaf calls = %v, want none", got)
	}
	if got := calleeNames(node(t, g, "callsLeaf")); len(got) != 1 || got[0] != "leaf" {
		t.Errorf("callsLeaf calls = %v", got)
	}
	if got := calleeNames(node(t, g, "callsDep")); len(got) != 2 || got[0] != "Exported" || got[1] != "bump" {
		t.Errorf("callsDep calls = %v", got)
	}
	// Method call resolved to the concrete method object.
	bump := node(t, g, "callsDep").Calls[1].Callee
	if FuncFullName(bump) != "(*"+cgfixPath+".counter).bump" {
		t.Errorf("bump full name = %q", FuncFullName(bump))
	}

	// Dynamic call keeps a site with a nil callee; the conversion
	// produces no site at all.
	if got := calleeNames(node(t, g, "dynamic")); len(got) != 1 || got[0] != "<dynamic>" {
		t.Errorf("dynamic calls = %v", got)
	}
}

func TestCallGraphChanOps(t *testing.T) {
	g := loadCgfix(t).CallGraph()
	chans := node(t, g, "chans")
	var kinds []ChanOpKind
	for _, op := range chans.ChanOps {
		kinds = append(kinds, op.Kind)
	}
	want := []ChanOpKind{ChanSend, ChanRecv, ChanRange, ChanSelect}
	if len(kinds) != len(want) {
		t.Fatalf("chan ops = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("chan op[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}
	// The select's comm headers (a send and a recv) must not be recorded
	// as separate operations, but the clause body's call must be seen.
	if got := calleeNames(chans); len(got) != 1 || got[0] != "leaf" {
		t.Errorf("chans calls = %v, want only clause-body leaf", got)
	}
	if chans.ChanOps[3].Ch != nil {
		t.Error("select ChanOp carries a channel operand")
	}
}

func TestCallGraphLiterals(t *testing.T) {
	g := loadCgfix(t).CallGraph()
	spawns := node(t, g, "spawns")
	if len(spawns.Gos) != 1 {
		t.Fatalf("spawns go stmts = %d", len(spawns.Gos))
	}
	if len(spawns.Lits) != 1 {
		t.Fatalf("spawns lits = %d", len(spawns.Lits))
	}
	// The literal's operations stay out of the enclosing summary...
	if len(spawns.ChanOps) != 0 || len(spawns.Calls) != 0 {
		t.Errorf("literal body leaked into spawns: chanops=%v calls=%v",
			spawns.ChanOps, calleeNames(spawns))
	}
	// ...and land on the literal's own node.
	lit := g.LitNodes[spawns.Lits[0]]
	if lit == nil {
		t.Fatal("no node for spawns' literal")
	}
	if len(lit.ChanOps) != 1 || lit.ChanOps[0].Kind != ChanSend {
		t.Errorf("lit chan ops = %v", lit.ChanOps)
	}
	if got := calleeNames(lit); len(got) != 1 || got[0] != "leaf" {
		t.Errorf("lit calls = %v", got)
	}
}

func TestPropagate(t *testing.T) {
	pkg := loadCgfix(t)
	g := pkg.CallGraph()

	// Seed: leaf has the property. callsLeaf inherits it transitively;
	// spawns does NOT (its only leaf call is inside a literal).
	has := g.Propagate(func(n *FuncNode) bool {
		return n.Fn != nil && n.Fn.Name() == "leaf"
	}, nil)
	byName := func(name string) bool {
		for fn, ok := range has {
			if ok && fn.Name() == name {
				return true
			}
		}
		return false
	}
	if !byName("leaf") || !byName("callsLeaf") || !byName("chans") {
		t.Errorf("propagation missed a caller of leaf: %v", has)
	}
	if byName("spawns") {
		t.Error("literal body leaked the property into spawns")
	}
	if byName("dynamic") || byName("callsDep") {
		t.Error("property reached a non-caller")
	}

	// External callback: mark the cross-package deppkg.Exported callee.
	has = g.Propagate(func(*FuncNode) bool { return false }, func(fn *types.Func) bool {
		return strings.HasSuffix(FuncFullName(fn), "deppkg.Exported")
	})
	if !byName("callsDep") {
		t.Error("external fact did not propagate to callsDep")
	}
	if byName("callsLeaf") {
		t.Error("external fact reached an unrelated function")
	}
}

func TestFreeVars(t *testing.T) {
	pkg := loadCgfix(t)
	g := pkg.CallGraph()
	spawns := node(t, g, "spawns")
	lit := spawns.Lits[0]

	got := map[string]bool{}
	for _, fv := range FreeVars(pkg.Info, lit) {
		got[fv.Var.Name()] = true
		if fv.Ident == nil {
			t.Error("FreeVar without Ident")
		}
	}
	// ch (parameter), local (enclosing local), shared (package var) are
	// free in the literal; nothing is declared inside it.
	for _, want := range []string{"ch", "local", "shared"} {
		if !got[want] {
			t.Errorf("FreeVars missed %q (got %v)", want, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("FreeVars = %v, want exactly ch/local/shared", got)
	}

	// Over a whole function body, parameters are declared inside the
	// FuncDecl, so only the package var is free.
	got = map[string]bool{}
	dyn := node(t, g, "dynamic")
	for _, fv := range FreeVars(pkg.Info, dyn.Decl) {
		got[fv.Var.Name()] = true
	}
	if len(got) != 1 || !got["shared"] {
		t.Errorf("FreeVars(dynamic decl) = %v, want only shared", got)
	}
}

func TestStaticCalleeEdgeCases(t *testing.T) {
	pkg := loadCgfix(t)
	// Walk every call in the package; builtins and conversions must never
	// surface as call-graph sites.
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "int" || id.Name == "int32") {
				if _, isSite := callSite(pkg.Info, call); isSite {
					t.Errorf("conversion %s recorded as call site", id.Name)
				}
			}
			return true
		})
	}
	if isChanType(nil) || isChanType(types.Typ[types.Int]) {
		t.Error("isChanType misdetected")
	}
}
