package lintcore

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

func TestFactsAccessors(t *testing.T) {
	facts := NewFacts()
	facts.set("pkg/a", "check", "k1", "v1")
	facts.set("pkg/a", "check", "k2", "v2")
	facts.set("pkg/b", "other", "k", "v")

	pass := &Pass{
		Analyzer: &Analyzer{Name: "check"},
		Pkg:      &Package{ImportPath: "pkg/c"},
		facts:    facts,
	}
	if got := pass.FactPackages(); len(got) != 1 || got[0] != "pkg/a" {
		t.Errorf("FactPackages = %v", got)
	}
	if got := pass.FactKeys("pkg/a"); len(got) != 2 || got[0] != "k1" || got[1] != "k2" {
		t.Errorf("FactKeys = %v", got)
	}
	if v, ok := pass.Fact("pkg/a", "k1"); !ok || v != "v1" {
		t.Errorf("Fact = %q, %v", v, ok)
	}
	if _, ok := pass.Fact("pkg/b", "k"); ok {
		t.Error("Fact crossed analyzer namespaces")
	}
}

func TestTypeIsMap(t *testing.T) {
	m := types.NewMap(types.Typ[types.Int], types.Typ[types.Int])
	if !TypeIsMap(m) {
		t.Error("map not detected")
	}
	named := types.NewNamed(types.NewTypeName(token.NoPos, nil, "M", nil), m, nil)
	if !TypeIsMap(named) {
		t.Error("named map not detected")
	}
	if TypeIsMap(types.Typ[types.Int]) || TypeIsMap(nil) {
		t.Error("non-map misdetected")
	}
}

func TestFuncFullNameHelper(t *testing.T) {
	pkg := types.NewPackage("itpsim/internal/x", "x")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "F", sig)
	if got := FuncFullName(fn); got != "itpsim/internal/x.F" {
		t.Errorf("FuncFullName = %q", got)
	}
}

func TestSortDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 1}, Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 2}, Message: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 2}, Message: "a"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 1}, Message: "m"},
	}
	sortDiagnostics(diags)
	order := func(i int) string { return diags[i].Pos.Filename + diags[i].Message }
	want := []string{"a.gom", "a.goa", "a.goz", "a.gom", "b.gom"}
	for i, w := range want {
		if order(i) != w {
			t.Fatalf("order[%d] = %v, want %v (all: %v)", i, order(i), w, diags)
		}
	}
}

func TestVetxRoundTrip(t *testing.T) {
	// Empty path: silently skipped.
	if err := writeVetx("", map[string]map[string]string{"a": {"k": "v"}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.vetx")
	if err := writeVetx(path, map[string]map[string]string{"a": {"k": "v"}}); err != nil {
		t.Fatal(err)
	}
	got, err := readVetx(path)
	if err != nil || got["a"]["k"] != "v" {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	// Missing and empty files read as no facts.
	if got, err := readVetx(filepath.Join(t.TempDir(), "enoent")); err != nil || got != nil {
		t.Fatalf("missing vetx = %v, %v", got, err)
	}
	empty := filepath.Join(t.TempDir(), "empty.vetx")
	if err := os.WriteFile(empty, nil, 0o666); err != nil {
		t.Fatal(err)
	}
	if got, err := readVetx(empty); err != nil || got != nil {
		t.Fatalf("empty vetx = %v, %v", got, err)
	}
	// Corrupt files are errors.
	bad := filepath.Join(t.TempDir(), "bad.vetx")
	if err := os.WriteFile(bad, []byte("{"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := readVetx(bad); err == nil {
		t.Error("corrupt vetx not rejected")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("", "./testdata/src/enoent"); err == nil {
		t.Error("nonexistent pattern not rejected")
	}
	if _, err := runGoList("", []string{"list", "-json", "./no/such/dir"}); err == nil {
		t.Error("runGoList error not surfaced")
	}
}
