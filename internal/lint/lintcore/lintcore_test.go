package lintcore

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	depPath  = "itpsim/internal/lint/lintcore/testdata/src/deppkg"
	mainPath = "itpsim/internal/lint/lintcore/testdata/src/mainpkg"
)

// badFuncAnalyzer flags functions named Bad* and exports every function
// name as a fact, so both reporting and fact flow are observable.
func badFuncAnalyzer(sawDepFact *bool) *Analyzer {
	return &Analyzer{
		Name: "badfunc",
		Doc:  "flag Bad* functions (lintcore self-test)",
		Run: func(pass *Pass) error {
			if pass.Pkg.ImportPath == mainPath {
				if _, ok := pass.Fact(depPath, "BadThing"); ok {
					*sawDepFact = true
				}
			}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					pass.ExportFact(fd.Name.Name, "seen")
					if strings.HasPrefix(fd.Name.Name, "Bad") {
						pass.Reportf(fd.Name.Pos(), "bad function %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

func TestLoadAndRun(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/mainpkg")
	if err != nil {
		t.Fatal(err)
	}
	var gotDep, gotMain bool
	for _, p := range pkgs {
		switch p.ImportPath {
		case depPath:
			gotDep = true
			if p.Target {
				t.Error("deppkg wrongly marked Target")
			}
		case mainPath:
			gotMain = true
			if !p.Target {
				t.Error("mainpkg not marked Target")
			}
		}
	}
	if !gotDep || !gotMain {
		t.Fatalf("load missed packages: dep=%v main=%v", gotDep, gotMain)
	}

	var sawDepFact bool
	diags, err := Run(pkgs, []*Analyzer{badFuncAnalyzer(&sawDepFact)})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDepFact {
		t.Error("fact exported by deppkg not visible in mainpkg pass")
	}
	// Only the target package's diagnostics survive: BadLocal yes,
	// deppkg.BadThing no.
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "BadLocal") {
		t.Fatalf("diagnostics = %v, want exactly BadLocal", diags)
	}
	if s := diags[0].String(); !strings.Contains(s, "mainpkg.go") || !strings.Contains(s, "[badfunc]") {
		t.Errorf("Diagnostic.String() = %q", s)
	}
}

func TestDirectives(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/mainpkg")
	if err != nil {
		t.Fatal(err)
	}
	var pkg *Package
	for _, p := range pkgs {
		if p.ImportPath == mainPath {
			pkg = p
		}
	}
	dirs := pkg.Directives()
	if len(dirs.All()) != 2 {
		t.Fatalf("directives = %v, want 2", dirs.All())
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			annotated := FuncAnnotated(dirs, fd, DirHotpath)
			if want := fd.Name.Name == "Use"; annotated != want {
				t.Errorf("FuncAnnotated(%s, hotpath) = %v, want %v", fd.Name.Name, annotated, want)
			}
			if fd.Name.Name == "Use" {
				ret := fd.Body.List[len(fd.Body.List)-1]
				if !dirs.Covers(ret.Pos(), DirCold) {
					t.Error("//itp:cold does not cover the following line")
				}
				if dirs.Covers(ret.Pos(), DirWallclock) {
					t.Error("Covers matched a directive that is not there")
				}
			}
		}
	}
	if pkg.IsTestFile(pkg.Files[0].Pos()) {
		t.Error("mainpkg.go misdetected as a test file")
	}
}

// listForUnitchecker gathers export data for the fixture closure.
func listForUnitchecker(t *testing.T) (pkgByPath map[string]listPkg, exports map[string]string) {
	t.Helper()
	out, err := runGoList("", []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Error", "./testdata/src/mainpkg"})
	if err != nil {
		t.Fatal(err)
	}
	pkgByPath = map[string]listPkg{}
	exports = map[string]string{}
	for dec := json.NewDecoder(bytes.NewReader(out)); ; {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		pkgByPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return pkgByPath, exports
}

func writeCfg(t *testing.T, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func absFiles(p listPkg) []string {
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = filepath.Join(p.Dir, f)
	}
	return files
}

func TestUnitchecker(t *testing.T) {
	pkgs, exports := listForUnitchecker(t)
	tmp := t.TempDir()
	depVetx := filepath.Join(tmp, "dep.vetx")
	mainVetx := filepath.Join(tmp, "main.vetx")

	var sawDepFact bool
	analyzers := []*Analyzer{badFuncAnalyzer(&sawDepFact)}

	// Facts-only pass over the dependency.
	dep := pkgs[depPath]
	diags, err := RunUnitchecker(writeCfg(t, vetConfig{
		ID: depPath, Compiler: "gc", Dir: dep.Dir, ImportPath: depPath,
		GoFiles: absFiles(dep), ModulePath: "itpsim",
		ImportMap:   map[string]string{},
		PackageFile: exports,
		VetxOnly:    true, VetxOutput: depVetx,
	}), analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("VetxOnly pass returned diagnostics: %v", diags)
	}
	depFacts, err := readVetx(depVetx)
	if err != nil {
		t.Fatal(err)
	}
	if depFacts["badfunc"]["BadThing"] != "seen" {
		t.Fatalf("dep vetx facts = %v", depFacts)
	}

	// Checked pass over the target, importing the dependency's facts.
	main := pkgs[mainPath]
	diags, err = RunUnitchecker(writeCfg(t, vetConfig{
		ID: mainPath, Compiler: "gc", Dir: main.Dir, ImportPath: mainPath,
		GoFiles: absFiles(main), ModulePath: "itpsim",
		ImportMap:   map[string]string{},
		PackageFile: exports,
		PackageVetx: map[string]string{depPath: depVetx},
		VetxOutput:  mainVetx,
	}), analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if !sawDepFact {
		t.Error("dep facts not visible through PackageVetx")
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "BadLocal") {
		t.Fatalf("diagnostics = %v, want exactly BadLocal", diags)
	}

	// Out-of-module (stdlib) config: skip, but write an empty vetx.
	stdVetx := filepath.Join(tmp, "std.vetx")
	diags, err = RunUnitchecker(writeCfg(t, vetConfig{
		ID: "fmt", ImportPath: "fmt", VetxOutput: stdVetx,
	}), analyzers)
	if err != nil || len(diags) != 0 {
		t.Fatalf("stdlib cfg: diags=%v err=%v", diags, err)
	}
	if facts, err := readVetx(stdVetx); err != nil || len(facts) != 0 {
		t.Fatalf("stdlib vetx = %v, %v", facts, err)
	}
}

func TestUnitcheckerTypecheckFailure(t *testing.T) {
	brokenDir, err := filepath.Abs("testdata/src/broken")
	if err != nil {
		t.Fatal(err)
	}
	base := vetConfig{
		ID: "broken", Compiler: "gc", Dir: brokenDir, ImportPath: "broken",
		GoFiles:    []string{filepath.Join(brokenDir, "broken.go")},
		ModulePath: "itpsim",
	}

	var saw bool
	analyzers := []*Analyzer{badFuncAnalyzer(&saw)}

	if _, err := RunUnitchecker(writeCfg(t, base), analyzers); err == nil {
		t.Error("type-check failure not reported")
	}

	tolerant := base
	tolerant.SucceedOnTypecheckFailure = true
	tolerant.VetxOutput = filepath.Join(t.TempDir(), "broken.vetx")
	if _, err := RunUnitchecker(writeCfg(t, tolerant), analyzers); err != nil {
		t.Errorf("SucceedOnTypecheckFailure still failed: %v", err)
	}
}

func TestFuncFullName(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/mainpkg")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if p.ImportPath != mainPath {
			continue
		}
		fn := p.Types.Scope().Lookup("Use")
		if got := fn.(interface{ FullName() string }).FullName(); got != mainPath+".Use" {
			t.Errorf("FullName = %q", got)
		}
	}
}
