package lintcore

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //itp: directive vocabulary. A directive comment governs its own
// source line and the line below it, so both placements work:
//
//	//itp:cold — first-touch allocation
//	n := pt.newNode()
//
// and
//
//	m.publishDiag() //itp:cold — 64K-retire diagnostics
//
// When a directive's covered line is the first line of a statement, the
// suppression extends over the whole statement (so one //itp:cold above
// an if-block covers the block's body).
const (
	// DirHotpath marks a function or interface method as part of the
	// allocation-free hot path; hotpathalloc checks its body and permits
	// calls to it from other hot-path functions.
	DirHotpath = "hotpath"
	// DirCold marks an amortized or terminal region inside a hot-path
	// function; hotpathalloc skips it entirely.
	DirCold = "cold"
	// DirNonalloc marks a reviewed dynamic call or expression that does
	// not allocate; hotpathalloc skips it.
	DirNonalloc = "nonalloc"
	// DirWallclock permits a time.Now/Since/Until call site
	// (simdeterminism).
	DirWallclock = "wallclock"
	// DirDeterministic permits a map range whose result provably does not
	// depend on iteration order (simdeterminism).
	DirDeterministic = "deterministic"
	// DirUnitcast permits an explicit Cycle<->Instr conversion
	// (cycleunits).
	DirUnitcast = "unitcast"
	// DirIgnoreErr permits a discarded error (errpropagation).
	DirIgnoreErr = "ignore-err"
	// DirStatWiring marks the function whose registrations statregistry
	// checks against metrics.RequiredStats.
	DirStatWiring = "statwiring"
	// DirOwner marks a reviewed ownership-transfer point: a go statement,
	// channel send, or package-level variable through which machine-owned
	// state legally changes its owning goroutine (machineown). The
	// justification must name the handoff protocol.
	DirOwner = "owner"
	// DirDaemon marks a reviewed process-lifetime goroutine that is
	// deliberately never joined or cancelled (goroutinelife).
	DirDaemon = "daemon"
	// DirNonatomic marks a reviewed plain access to a field that is
	// elsewhere accessed through sync/atomic — e.g. initialisation before
	// the value is published (atomicfield).
	DirNonatomic = "nonatomic"
	// DirLockIO marks a reviewed blocking operation performed while a
	// mutex is held — e.g. a lock whose purpose is to serialise writers of
	// a shared stream (lockscope).
	DirLockIO = "lock-io"
)

// Directive is one //itp: comment occurrence.
type Directive struct {
	Name string // e.g. "hotpath"
	Arg  string // free text after the name (justification prose)
	Pos  token.Pos
}

// Directives indexes every //itp: comment of a package by file and line.
type Directives struct {
	fset *token.FileSet
	// byLine maps filename -> covered line -> directive names present.
	byLine map[string]map[int][]string
	all    []Directive
}

// CollectDirectives scans the comments of files for //itp: directives.
func CollectDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//itp:")
				if !ok {
					continue
				}
				name, arg, _ := strings.Cut(text, " ")
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				d.all = append(d.all, Directive{Name: name, Arg: strings.TrimSpace(arg), Pos: c.Pos()})
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					d.byLine[pos.Filename] = lines
				}
				// A directive governs its own line and the next one.
				lines[pos.Line] = append(lines[pos.Line], name)
				lines[pos.Line+1] = append(lines[pos.Line+1], name)
			}
		}
	}
	return d
}

// All returns every directive in the package (file order).
func (d *Directives) All() []Directive { return d.all }

// Covers reports whether a directive of the given name governs the line
// holding pos.
func (d *Directives) Covers(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	for _, n := range d.byLine[p.Filename][p.Line] {
		if n == name {
			return true
		}
	}
	return false
}

// FuncAnnotated reports whether decl carries the named directive: either
// in its doc comment or on/above its declaration line.
func FuncAnnotated(d *Directives, decl *ast.FuncDecl, name string) bool {
	if docHasDirective(decl.Doc, name) {
		return true
	}
	return d.Covers(decl.Pos(), name)
}

// FieldAnnotated reports whether an interface-method field carries the
// named directive (doc comment, trailing comment, or covering line).
func FieldAnnotated(d *Directives, field *ast.Field, name string) bool {
	if docHasDirective(field.Doc, name) || docHasDirective(field.Comment, name) {
		return true
	}
	return d.Covers(field.Pos(), name)
}

func docHasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//itp:"); ok {
			n, _, _ := strings.Cut(rest, " ")
			if strings.TrimSpace(n) == name {
				return true
			}
		}
	}
	return false
}
