// Package mainpkg is the lintcore fixture target; it imports deppkg so
// fact flow across packages can be observed.
package mainpkg

import "itpsim/internal/lint/lintcore/testdata/src/deppkg"

// Use consumes the dependency.
//
//itp:hotpath
func Use() int {
	//itp:cold fixture directive
	return deppkg.Exported()
}

// BadLocal is flagged by the test analyzer.
func BadLocal() int { return 3 }
