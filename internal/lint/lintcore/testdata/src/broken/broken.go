// Package broken deliberately fails type-checking; the unitchecker test
// uses it to exercise SucceedOnTypecheckFailure. It parses fine.
package broken

// Boom references an undefined name.
func Boom() int { return undefinedName }
