// Package deppkg is a lintcore fixture dependency.
package deppkg

// Exported is visible to mainpkg.
func Exported() int { return 1 }

// BadThing is flagged by the test analyzer.
func BadThing() int { return 2 }
