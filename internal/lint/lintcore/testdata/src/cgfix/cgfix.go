// Package cgfix is the call-graph fixture: every summary element the
// graph records (call sites, channel operations, go statements, nested
// literals, free variables) appears here exactly once where the test
// expects it.
package cgfix

import "itpsim/internal/lint/lintcore/testdata/src/deppkg"

var shared int

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

// leaf has an empty summary.
func leaf() {}

// callsLeaf has one static intra-package call.
func callsLeaf() { leaf() }

// callsDep calls across packages and through a method.
func callsDep(c *counter) {
	deppkg.Exported()
	c.bump()
}

// dynamic calls through a func value (nil callee) and performs a
// conversion (not a call at all).
func dynamic(f func()) int {
	f()
	return int(int32(shared))
}

// chans exercises every channel-operation kind.
func chans(ch chan int, done chan struct{}) {
	ch <- 1
	<-ch
	for range ch {
	}
	select {
	case ch <- 2:
		leaf()
	case <-done:
	}
}

// spawns starts a goroutine whose literal body gets its own node: the
// literal's send and call must not appear in spawns' summary.
func spawns(ch chan int) {
	local := 7
	go func() {
		ch <- local
		shared++
		leaf()
	}()
}
