package lintcore

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every loaded package in dependency
// order (Load returns dependencies first, so facts are available when an
// importing package is analyzed). Diagnostics are collected only for
// target packages; dependency packages run for fact extraction alone.
// The returned diagnostics are sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		report := func(d Diagnostic) {
			if pkg.Target {
				diags = append(diags, d)
			}
		}
		if err := runPackage(pkg, analyzers, facts, report); err != nil {
			return nil, err
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runPackage runs the analyzers over one package with the given fact
// store, routing diagnostics through report.
func runPackage(pkg *Package, analyzers []*Analyzer, facts *Facts, report func(Diagnostic)) error {
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, facts: facts, report: report}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("lintcore: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return nil
}

// SortDiagnostics orders diags by position then message — the order Run
// emits. Drivers that run analyzers one at a time (itpvet -timing) use
// it to restore the global order before printing.
func SortDiagnostics(diags []Diagnostic) { sortDiagnostics(diags) }

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
