package lintcore

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
)

// vetConfig mirrors the *.cfg JSON file `go vet -vettool` hands the tool
// for each package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker analyzes the single package described by the cfg file,
// reading dependency facts from the vetx files the go command recorded
// and writing this package's facts to cfg.VetxOutput. Diagnostics are
// returned only when the go command asked for them (VetxOnly=false).
//
// Standard-library and out-of-module packages are not analyzed: the
// itpvet analyzers only constrain this repository's source, so those
// packages get an empty fact file and no diagnostics.
func RunUnitchecker(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("lintcore: reading vet config: %w", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("lintcore: parsing vet config %s: %w", cfgPath, err)
	}

	// Out-of-module packages (the standard library during `go vet ./...`)
	// carry no itpvet facts and no diagnostics.
	if cfg.ModulePath == "" || len(cfg.GoFiles) == 0 {
		return nil, writeVetx(cfg.VetxOutput, nil)
	}

	facts := NewFacts()
	for path, vetxFile := range cfg.PackageVetx {
		pf, err := readVetx(vetxFile)
		if err != nil {
			return nil, err
		}
		if len(pf) > 0 {
			facts.ImportPackageFacts(path, pf)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, error) {
		canon := path
		if c, ok := cfg.ImportMap[path]; ok {
			canon = c
		}
		f, ok := cfg.PackageFile[canon]
		if !ok {
			return "", fmt.Errorf("no export file for %q", canon)
		}
		return f, nil
	})

	pkg, err := TypecheckPackage(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx(cfg.VetxOutput, nil)
		}
		return nil, err
	}
	pkg.Target = !cfg.VetxOnly

	var diags []Diagnostic
	report := func(d Diagnostic) {
		if pkg.Target {
			diags = append(diags, d)
		}
	}
	if err := runPackage(pkg, analyzers, facts, report); err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, writeVetx(cfg.VetxOutput, facts.PackageFacts(cfg.ImportPath))
}

func writeVetx(path string, facts map[string]map[string]string) error {
	if path == "" {
		return nil
	}
	if facts == nil {
		facts = map[string]map[string]string{}
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return fmt.Errorf("lintcore: encoding facts: %w", err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return fmt.Errorf("lintcore: writing facts: %w", err)
	}
	return nil
}

func readVetx(path string) (map[string]map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("lintcore: reading facts: %w", err)
	}
	if len(data) == 0 {
		return nil, nil
	}
	var facts map[string]map[string]string
	if err := json.Unmarshal(data, &facts); err != nil {
		return nil, fmt.Errorf("lintcore: parsing facts %s: %w", path, err)
	}
	return facts, nil
}
