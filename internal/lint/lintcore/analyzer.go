// Package lintcore is a dependency-free re-implementation of the
// golang.org/x/tools/go/analysis model, built only on the standard
// library's go/ast, go/types, and go/importer. The repo's toolchain has
// no module cache, so the x/tools framework cannot be vendored; this
// package provides the same three capabilities the itpvet analyzers
// need:
//
//   - type-checked packages loaded through `go list -export` (load.go),
//   - per-package analyzer passes with cross-package string facts
//     (run.go), and
//   - the `go vet -vettool` unitchecker driver protocol (unitchecker.go),
//
// so every analyzer runs identically standalone (`go run ./cmd/itpvet
// ./...`) and under `go vet -vettool`.
package lintcore

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through its
// Pass and reports diagnostics; it may export facts about the package
// that later passes (on packages that import it) can read.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fact files. It
	// must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `itpvet -help`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies pulled in for facts only).
	Target bool

	directives *Directives
	callgraph  *CallGraph
}

// Directives returns the package's //itp: directive index, built lazily.
func (p *Package) Directives() *Directives {
	if p.directives == nil {
		p.directives = CollectDirectives(p.Fset, p.Files)
	}
	return p.directives
}

// IsTestFile reports whether pos lies in a _test.go file. The analyzers
// exempt test files from the simulator's determinism and hot-path rules:
// tests may time things and iterate maps freely.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Facts is the cross-package knowledge store: per package and per
// analyzer, a string key/value map. Values carrying structure are
// JSON-encoded by convention. Facts flow in dependency order — a pass
// sees only facts of packages its package imports (transitively).
type Facts struct {
	m map[string]map[string]map[string]string // pkg -> analyzer -> key -> value
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: map[string]map[string]map[string]string{}} }

func (f *Facts) set(pkg, analyzer, key, value string) {
	byA := f.m[pkg]
	if byA == nil {
		byA = map[string]map[string]string{}
		f.m[pkg] = byA
	}
	byK := byA[analyzer]
	if byK == nil {
		byK = map[string]string{}
		byA[analyzer] = byK
	}
	byK[key] = value
}

func (f *Facts) get(pkg, analyzer, key string) (string, bool) {
	v, ok := f.m[pkg][analyzer][key]
	return v, ok
}

// PackageFacts returns analyzer->key->value for one package (may be nil).
func (f *Facts) PackageFacts(pkg string) map[string]map[string]string { return f.m[pkg] }

// ImportPackageFacts installs previously exported facts for a dependency
// (unitchecker mode reads them from vetx files).
func (f *Facts) ImportPackageFacts(pkg string, facts map[string]map[string]string) {
	f.m[pkg] = facts
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	facts  *Facts
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact records a fact about the current package, visible to later
// passes of the same analyzer on importing packages.
func (p *Pass) ExportFact(key, value string) {
	p.facts.set(p.Pkg.ImportPath, p.Analyzer.Name, key, value)
}

// Fact looks up a fact exported by this analyzer for the given package
// (which may be the current package or any analyzed dependency).
func (p *Pass) Fact(pkgPath, key string) (string, bool) {
	return p.facts.get(pkgPath, p.Analyzer.Name, key)
}

// FactPackages returns the sorted package paths that carry at least one
// fact from this analyzer.
func (p *Pass) FactPackages() []string {
	var out []string
	for pkg, byA := range p.facts.m {
		if len(byA[p.Analyzer.Name]) > 0 {
			out = append(out, pkg)
		}
	}
	sort.Strings(out)
	return out
}

// FactKeys returns the sorted fact keys this analyzer exported for pkg.
func (p *Pass) FactKeys(pkgPath string) []string {
	var out []string
	for k := range p.facts.m[pkgPath][p.Analyzer.Name] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FuncFullName returns the gc-style full name of fn, e.g.
// "(*itpsim/internal/sim.Machine).step" for a pointer-receiver method or
// "(itpsim/internal/tlb.Policy).Victim" for an interface method. This is
// the identifier convention all itpvet facts use.
func FuncFullName(fn *types.Func) string { return fn.FullName() }

// TypeIsMap reports whether t's underlying type is a map.
func TypeIsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
