package lintcore

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared interprocedural foundation of the concurrency
// analyzers (machineown, atomicfield, goroutinelife, lockscope): a
// per-package call graph with per-function syntactic summaries (call
// sites, channel operations, go statements, nested closures) plus a
// bottom-up fixpoint engine for may-properties ("may block", "observes a
// cancellation signal") that analyzers extend across package boundaries
// through the existing fact store. Function literals get their own nodes:
// a closure's body does not run when its enclosing function runs, so its
// operations must not leak into the enclosing function's summary.

// CallSite is one call expression in a function body. Callee is the
// statically resolved callee — a package-level function, a concrete
// method, or an interface method — and nil for calls through func values
// (dynamic, unverifiable).
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// ChanOpKind classifies a channel operation.
type ChanOpKind int

const (
	// ChanSend is ch <- v outside a select.
	ChanSend ChanOpKind = iota
	// ChanRecv is <-ch outside a select.
	ChanRecv
	// ChanSelect is a whole select statement (its comm clauses are part
	// of the select, not separate operations; clause bodies are walked
	// normally).
	ChanSelect
	// ChanRange is a range over a channel.
	ChanRange
)

// ChanOp is one channel operation in a function body.
type ChanOp struct {
	Kind ChanOpKind
	Node ast.Node
	// Ch is the channel operand (nil for ChanSelect).
	Ch ast.Expr
}

// FuncNode is the call-graph node of one function body: a declared
// function/method (Decl set) or a function literal (Lit set).
type FuncNode struct {
	// Fn is the declared function's object; nil for literals.
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit

	// Calls are the body's call sites in source order, literals excluded.
	Calls []CallSite
	// ChanOps are the body's channel operations, literals excluded.
	ChanOps []ChanOp
	// Gos are the body's go statements, literals excluded.
	Gos []*ast.GoStmt
	// Lits are the function literals declared directly in this body (each
	// has its own node).
	Lits []*ast.FuncLit
}

// CallGraph indexes every function body of one package.
type CallGraph struct {
	Pkg *Package
	// Decls maps a declared function's object to its node.
	Decls map[*types.Func]*FuncNode
	// ByName maps FuncFullName to declared-function nodes.
	ByName map[string]*FuncNode
	// LitNodes maps each function literal to its node.
	LitNodes map[*ast.FuncLit]*FuncNode
	// nodes holds every node in deterministic (source) order.
	nodes []*FuncNode
}

// Nodes returns every node (declared functions and literals) in source
// order.
func (g *CallGraph) Nodes() []*FuncNode { return g.nodes }

// CallGraph returns the package's call graph, built lazily and cached.
func (p *Package) CallGraph() *CallGraph {
	if p.callgraph == nil {
		p.callgraph = BuildCallGraph(p)
	}
	return p.callgraph
}

// BuildCallGraph constructs the call graph of pkg (all files, including
// tests; analyzers filter by position where needed).
func BuildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		Pkg:      pkg,
		Decls:    map[*types.Func]*FuncNode{},
		ByName:   map[string]*FuncNode{},
		LitNodes: map[*ast.FuncLit]*FuncNode{},
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Fn: fn, Decl: fd}
			g.Decls[fn] = node
			g.ByName[FuncFullName(fn)] = node
			g.nodes = append(g.nodes, node)
			g.collect(node, fd.Body)
		}
	}
	return g
}

// collect fills node's summary from body, creating separate nodes for
// nested function literals instead of descending into them.
func (g *CallGraph) collect(node *FuncNode, body ast.Node) {
	info := g.Pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			node.Lits = append(node.Lits, n)
			lit := &FuncNode{Lit: n}
			g.LitNodes[n] = lit
			g.nodes = append(g.nodes, lit)
			g.collect(lit, n.Body)
			return false
		case *ast.GoStmt:
			// The spawned call runs in another goroutine, not in this
			// function: record the go statement, walk the function operand
			// (a literal there gets its own node) and the arguments (they
			// ARE evaluated here), but do not record the call as a site.
			node.Gos = append(node.Gos, n)
			ast.Inspect(n.Call.Fun, walk)
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			// An immediately-invoked literal is covered by the literal's
			// own node; don't double it as a dynamic site.
			if _, iife := ast.Unparen(n.Fun).(*ast.FuncLit); iife {
				break
			}
			if site, ok := callSite(info, n); ok {
				node.Calls = append(node.Calls, site)
			}
		case *ast.SendStmt:
			node.ChanOps = append(node.ChanOps, ChanOp{Kind: ChanSend, Node: n, Ch: n.Chan})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				node.ChanOps = append(node.ChanOps, ChanOp{Kind: ChanRecv, Node: n, Ch: n.X})
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				node.ChanOps = append(node.ChanOps, ChanOp{Kind: ChanRange, Node: n, Ch: n.X})
			}
		case *ast.SelectStmt:
			node.ChanOps = append(node.ChanOps, ChanOp{Kind: ChanSelect, Node: n})
			// The comm statements (the `case ch <- v:` / `case <-ch:`
			// headers) belong to the select; only walk the clause bodies.
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				for _, s := range cc.Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
}

// callSite classifies one call expression. Conversions and builtins
// return ok=false (they are not calls for the graph's purposes); dynamic
// calls return a site with a nil Callee.
func callSite(info *types.Info, call *ast.CallExpr) (CallSite, bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return CallSite{}, false // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return CallSite{}, false // len/append/make/...
		}
	}
	return CallSite{Call: call, Callee: StaticCallee(info, call)}, true
}

// StaticCallee resolves call's callee to a *types.Func when the target is
// a named function, a concrete method, or an interface method — nil for
// builtins, conversions, and calls through func values.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				return sel.Obj().(*types.Func)
			}
			return nil // method expression/value or field access: dynamic
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified function
		}
	}
	return nil
}

// Propagate computes the least fixpoint of a bottom-up may-property over
// the declared functions of the package: a function has the property when
// local reports it for the function's own node, when it statically calls
// a same-package function that has it, or when external reports it for an
// out-of-package callee (the analyzer's cross-package fact lookup).
// Function literals do not contribute to their enclosing function — a
// closure's body runs when the closure is called, not when it is built.
func (g *CallGraph) Propagate(local func(*FuncNode) bool, external func(*types.Func) bool) map[*types.Func]bool {
	has := map[*types.Func]bool{}
	for _, node := range g.nodes {
		if node.Fn != nil && local(node) {
			has[node.Fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.nodes {
			if node.Fn == nil || has[node.Fn] {
				continue
			}
			for _, site := range node.Calls {
				if site.Callee == nil {
					continue
				}
				if has[site.Callee] || (siteIsExternal(g.Pkg, site.Callee) && external != nil && external(site.Callee)) {
					has[node.Fn] = true
					changed = true
					break
				}
			}
		}
	}
	return has
}

// siteIsExternal reports whether fn is declared outside the analyzed
// package.
func siteIsExternal(pkg *Package, fn *types.Func) bool {
	return fn.Pkg() == nil || fn.Pkg() != pkg.Types
}

// FreeVar is one reference inside a subtree to a variable declared
// outside it — the captured state of a closure or go statement.
type FreeVar struct {
	Ident *ast.Ident
	Var   *types.Var
}

// FreeVars returns the variables referenced within root but declared
// outside it, in source order. Package-level variables count (they are
// shared by definition); fields reached through a captured receiver are
// covered by the receiver variable itself.
func FreeVars(info *types.Info, root ast.Node) []FreeVar {
	var out []FreeVar
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() == token.NoPos || v.Pos() < root.Pos() || v.Pos() >= root.End() {
			out = append(out, FreeVar{Ident: id, Var: v})
		}
		return true
	})
	return out
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
