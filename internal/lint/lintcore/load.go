package lintcore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns plus their in-module
// dependencies, in dependency order (dependencies first). It shells out
// to `go list -export -deps`, which compiles export data for every
// package in the closure; module packages are then re-checked from
// source (so analyzers see syntax), importing their dependencies from
// the export data. dir is the working directory for pattern resolution
// ("" = current directory).
//
// Packages named by the patterns have Target set; dependency packages are
// loaded for fact extraction only. Standard-library packages are never
// analyzed from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	targets := map[string]bool{}
	out, err := runGoList(dir, append([]string{"list", "-e", "-json=ImportPath"}, patterns...))
	if err != nil {
		return nil, err
	}
	for dec := json.NewDecoder(bytes.NewReader(out)); ; {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintcore: parsing go list output: %w", err)
		}
		targets[p.ImportPath] = true
	}

	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Error"}, patterns...)
	out, err = runGoList(dir, args)
	if err != nil {
		return nil, err
	}

	var listed []listPkg
	exports := map[string]string{}
	for dec := json.NewDecoder(bytes.NewReader(out)); ; {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintcore: parsing go list -deps output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, error) {
		f, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	})

	var pkgs []*Package
	for _, p := range listed {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			if targets[p.ImportPath] {
				return nil, fmt.Errorf("lintcore: %s: %s", p.ImportPath, p.Error.Err)
			}
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypecheckPackage(fset, p.ImportPath, p.Dir, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Target = targets[p.ImportPath]
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func runGoList(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintcore: go %v: %w\n%s", args, err, stderr.String())
	}
	return out, nil
}

// exportImporter returns a gc-export-data importer whose lookup resolves
// import paths to export files via resolve. A single importer instance
// is shared across all packages of a load so dependency type identities
// agree.
func exportImporter(fset *token.FileSet, resolve func(path string) (string, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

// TypecheckPackage parses and type-checks one package from source,
// importing dependencies through imp.
func TypecheckPackage(fset *token.FileSet, importPath, dir string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lintcore: %s: %w", importPath, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, fmt.Errorf("lintcore: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}
