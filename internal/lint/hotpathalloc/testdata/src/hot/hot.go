// Package hot is the main hotpathalloc fixture: a hot-path function
// exercising every flagged construct and every sanctioned escape.
package hot

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"itpsim/internal/lint/hotpathalloc/testdata/src/hotdep"
)

type state struct {
	count  atomic.Uint64
	buf    []int
	lookup map[int]int
	pol    hotdep.Policy
	hook   func(int) int
}

type point struct{ x, y int }

// step is the checked hot path.
//
//itp:hotpath
func step(s *state, set []int) int {
	n := local(len(set))         // annotated local callee: ok
	n += hotdep.Fast(n)          // annotated imported callee (fact): ok
	n += bits.OnesCount(uint(n)) // math/bits allowlist: ok
	s.count.Add(1)               // sync/atomic allowlist: ok
	p := point{x: n, y: n}       // value composite literal: ok
	n += p.x + s.lookup[n]       // map read: ok
	n += s.pol.Victim(set)       // //itp:hotpath interface method: ok
	delete(s.lookup, n)          // allowed builtin: ok

	q := &point{x: n}        // want `&composite literal on the hot path`
	v := []int{1, 2, n}      // want `slice/map literal on the hot path`
	w := make([]int, n)      // want `make on the hot path`
	r := new(point)          // want `new on the hot path`
	s.buf = append(s.buf, n) // want `append on the hot path`
	f := func(x int) int {   // want `closure on the hot path`
		return x * x
	}
	n += s.hook(n)          // want `dynamic call through field hook`
	n += helper(n)          // want `call to itpsim/internal/lint/hotpathalloc/testdata/src/hot.helper from the hot path`
	n += hotdep.Slow(n)[0]  // want `call to itpsim/internal/lint/hotpathalloc/testdata/src/hotdep.Slow from the hot path`
	s.pol.Rebuild()         // want `dynamic dispatch through \(itpsim/internal/lint/hotpathalloc/testdata/src/hotdep.Policy\).Rebuild`
	n += len(fmt.Sprint(n)) // want `call to fmt.Sprint from the hot path` `argument boxes int into interface`

	s.buf = hotdep.Reviewed(s.buf, n) // //itp:nonalloc imported callee: ok
	s.buf = append(s.buf, n)          //itp:nonalloc capacity reserved at construction
	n += s.hook(n)                    //itp:nonalloc hook is a statically installed non-capturing func

	//itp:cold diagnostics path, runs once per 64K steps
	if n == 0 {
		s.lookup = make(map[int]int)
		go func() { _ = fmt.Sprint(n) }()
	}

	var sink any = s // assignment boxing is outside this analyzer's scope
	_ = sink
	_, _, _, _, _ = q, v, w, r, f
	return n
}

// local is a hot leaf.
//
//itp:hotpath
func local(x int) int { return x * 2 }

// helper is deliberately unannotated.
func helper(x int) int { return x + 3 }

// boxing exercises interface-argument and conversion checks.
//
//itp:hotpath
func boxing(s *state, n int) {
	sinkAny(nil)      // nil: ok
	sinkAny(42)       // constant: ok
	sinkAny(n)        // want `argument boxes int into interface`
	_ = any(n)        // want `conversion to interface type any on the hot path`
	b := []byte{1}    // want `slice/map literal on the hot path`
	_ = string(b)     // want `\[\]byte/\[\]rune to string conversion on the hot path`
	name := "a" + "b" // constant concatenation folds: ok
	name += nameOf(s) // want `string concatenation on the hot path` `call to itpsim/internal/lint/hotpathalloc/testdata/src/hot.nameOf from the hot path`
	go run(s)         // want `go statement on the hot path` `call to itpsim/internal/lint/hotpathalloc/testdata/src/hot.run from the hot path`
	_ = name
}

//itp:hotpath
func sinkAny(v any) { _ = v }

func nameOf(s *state) string { return "s" }

func run(s *state) {}
