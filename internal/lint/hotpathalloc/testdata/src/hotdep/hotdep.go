// Package hotdep is a hotpathalloc fixture dependency: its annotations
// must reach importing packages as facts.
package hotdep

// Fast is part of the hot path.
//
//itp:hotpath
func Fast(x int) int { return x + 1 }

// Reviewed is vouched allocation-free but not itself checked.
//
//itp:nonalloc append stays within the pre-sized backing array
func Reviewed(dst []int, x int) []int { return append(dst, x) }

// Slow allocates freely and is not annotated.
func Slow(n int) []int { return make([]int, n) }

// Policy is an interface whose method is declared hot.
type Policy interface {
	//itp:hotpath
	Victim(set []int) int

	// Rebuild is cold-path maintenance.
	Rebuild()
}
