// Package hotpathalloc statically enforces the simulator's
// allocation-free steady state. Functions annotated //itp:hotpath (the
// per-step path under BenchmarkSteadyState*'s 0 allocs/op gate) must
// not:
//
//   - take the address of a composite literal (&T{...}) or build a
//     slice/map literal — both heap-allocate;
//   - call append, make, or new;
//   - declare a closure (func literals capture state on the heap);
//   - concatenate strings or convert []byte/[]rune to string;
//   - pass a concrete value where an interface is expected, or convert
//     to an interface type (boxing allocates), except for constants;
//   - start a goroutine;
//   - call anything that is not itself //itp:hotpath, //itp:nonalloc, a
//     permitted builtin (len, cap, copy, delete, clear, min, max, panic,
//     recover), or in an allocation-free stdlib package (sync,
//     sync/atomic, math, math/bits).
//
// Dynamic calls — through func values or unannotated interface methods —
// are flagged because the callee cannot be verified; interface methods
// may themselves be annotated //itp:hotpath, which makes call sites
// through that interface legal (every implementation must then carry the
// annotation too).
//
// Escapes are reviewed, not silent: //itp:cold on a statement's first
// line skips that whole statement subtree (amortized or terminal
// regions), and //itp:nonalloc on a line vouches for the specific
// expression on it. Annotations propagate across packages as analysis
// facts keyed by the function's FullName, so the whole per-step call
// tree is covered transitively. This is the static complement of the
// benchguard -alloc-gate: the benchmark proves the measured path, this
// analyzer pins every branch of it. Test files are exempt.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"itpsim/internal/lint/lintcore"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &lintcore.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid heap allocation in //itp:hotpath functions (static complement of the benchguard alloc gate)",
	Run:  run,
}

// allocFreePkgs are stdlib packages whose exported functions are trusted
// not to allocate on the paths the simulator uses.
var allocFreePkgs = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// allowedBuiltins never allocate (panic/recover only fire on already
// broken runs).
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true, "clear": true,
	"min": true, "max": true, "panic": true, "recover": true, "print": true, "println": true,
}

// modulePrefix scopes fact lookups to this repository's packages.
const modulePrefix = "itpsim/"

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	dirs := pkg.Directives()

	// Phase 1: index this package's annotated functions and interface
	// methods, and export them as facts for importing packages.
	local := map[string]string{} // FullName -> "hotpath" | "nonalloc"
	var hotDecls []*ast.FuncDecl
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				if lintcore.FuncAnnotated(dirs, decl, lintcore.DirHotpath) {
					local[lintcore.FuncFullName(fn)] = lintcore.DirHotpath
					if decl.Body != nil {
						hotDecls = append(hotDecls, decl)
					}
				} else if lintcore.FuncAnnotated(dirs, decl, lintcore.DirNonalloc) {
					local[lintcore.FuncFullName(fn)] = lintcore.DirNonalloc
				}
			case *ast.GenDecl:
				indexInterfaceMethods(pkg, dirs, decl, local)
			}
		}
	}
	for name, kind := range local {
		pass.ExportFact(name, kind)
	}

	// Phase 2: check the body of every annotated function.
	for _, decl := range hotDecls {
		c := &checker{pass: pass, dirs: dirs, local: local}
		c.walkStmts(decl.Body)
	}
	return nil
}

// indexInterfaceMethods records //itp:hotpath annotations on interface
// method declarations, e.g.
//
//	type Policy interface {
//		//itp:hotpath
//		Victim(set []Line) int
//	}
func indexInterfaceMethods(pkg *lintcore.Package, dirs *lintcore.Directives, decl *ast.GenDecl, local map[string]string) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		for _, field := range it.Methods.List {
			for _, name := range field.Names {
				fn, ok := pkg.Info.Defs[name].(*types.Func)
				if !ok {
					continue
				}
				if lintcore.FieldAnnotated(dirs, field, lintcore.DirHotpath) {
					local[lintcore.FuncFullName(fn)] = lintcore.DirHotpath
				} else if lintcore.FieldAnnotated(dirs, field, lintcore.DirNonalloc) {
					local[lintcore.FuncFullName(fn)] = lintcore.DirNonalloc
				}
			}
		}
	}
}

// checker walks one hot-path function body.
type checker struct {
	pass  *lintcore.Pass
	dirs  *lintcore.Directives
	local map[string]string
}

// vouched reports whether the line holding pos carries //itp:nonalloc.
func (c *checker) vouched(n ast.Node) bool {
	return c.dirs.Covers(n.Pos(), lintcore.DirNonalloc)
}

// walkStmts descends into a statement subtree, honoring //itp:cold on a
// statement's first line by skipping the whole statement.
func (c *checker) walkStmts(root ast.Stmt) {
	ast.Inspect(root, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok {
			if c.dirs.Covers(stmt.Pos(), lintcore.DirCold) {
				return false
			}
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if !c.vouched(n) {
				c.report(n, "go statement on the hot path: goroutine start allocates")
			}
		case *ast.FuncLit:
			if !c.vouched(n) {
				c.report(n, "closure on the hot path: func literals capture on the heap")
			}
			return false // the closure body runs later; it is not the hot path itself
		case *ast.UnaryExpr:
			c.unary(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.BinaryExpr:
			c.binary(n)
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	c.pass.Reportf(n.Pos(), format, args...)
}

func (c *checker) unary(n *ast.UnaryExpr) {
	if n.Op.String() == "&" {
		if _, ok := n.X.(*ast.CompositeLit); ok && !c.vouched(n) {
			c.report(n, "&composite literal on the hot path escapes to the heap")
		}
	}
}

func (c *checker) composite(n *ast.CompositeLit) {
	t := c.pass.Pkg.Info.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		if !c.vouched(n) {
			c.report(n, "slice/map literal on the hot path allocates")
		}
	}
}

func (c *checker) binary(n *ast.BinaryExpr) {
	// Constant concatenation folds at compile time.
	if n.Op.String() != "+" || isConstant(c.pass.Pkg.Info, n) {
		return
	}
	if isStringType(c.pass.Pkg.Info.TypeOf(n)) && !c.vouched(n) {
		c.report(n, "string concatenation on the hot path allocates")
	}
}

// assign catches `s += t` on strings, which never surfaces as a
// BinaryExpr.
func (c *checker) assign(n *ast.AssignStmt) {
	if n.Tok.String() != "+=" || len(n.Lhs) != 1 {
		return
	}
	if isStringType(c.pass.Pkg.Info.TypeOf(n.Lhs[0])) && !c.vouched(n) {
		c.report(n, "string concatenation on the hot path allocates")
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.Pkg.Info

	// Conversions: T(x). Numeric and same-kind conversions are free;
	// boxing into an interface and []byte<->string materialize storage.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		return
	}

	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			c.builtin(call, obj.Name())
		case *types.Func:
			c.static(call, obj)
		case nil:
			// Unresolved (broken code): nothing to say.
		default:
			if !c.vouched(call) {
				c.report(call, "dynamic call through %s on the hot path: callee cannot be verified allocation-free (annotate //itp:nonalloc if reviewed)", fun.Name)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				c.static(call, sel.Obj().(*types.Func))
			default:
				if !c.vouched(call) {
					c.report(call, "dynamic call through field %s on the hot path: callee cannot be verified allocation-free (annotate //itp:nonalloc if reviewed)", fun.Sel.Name)
				}
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			c.static(call, fn)
		} else if !c.vouched(call) {
			c.report(call, "dynamic call through %s on the hot path: callee cannot be verified allocation-free (annotate //itp:nonalloc if reviewed)", fun.Sel.Name)
		}
	default:
		if !c.vouched(call) {
			c.report(call, "call of a function value on the hot path: callee cannot be verified allocation-free (annotate //itp:nonalloc if reviewed)")
		}
	}

	c.interfaceArgs(call)
}

func (c *checker) conversion(call *ast.CallExpr, target types.Type) {
	if c.vouched(call) || len(call.Args) != 1 {
		return
	}
	src := c.pass.Pkg.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(target.Underlying()) && !types.IsInterface(src.Underlying()) {
		if !isConstant(c.pass.Pkg.Info, call.Args[0]) {
			c.report(call, "conversion to interface type %s on the hot path boxes its operand", types.TypeString(target, nil))
		}
		return
	}
	if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, ok := src.Underlying().(*types.Slice); ok {
			c.report(call, "[]byte/[]rune to string conversion on the hot path allocates")
		}
	}
}

func (c *checker) builtin(call *ast.CallExpr, name string) {
	if allowedBuiltins[name] {
		return
	}
	if c.vouched(call) {
		return
	}
	switch name {
	case "append":
		c.report(call, "append on the hot path may grow the backing array (pre-size the slice, or //itp:nonalloc if provably within cap)")
	case "make", "new":
		c.report(call, "%s on the hot path allocates", name)
	default:
		c.report(call, "builtin %s is not on the hot-path allowlist", name)
	}
}

// static checks a call whose callee resolved to a *types.Func: either a
// concrete function/method or an interface method (dynamic dispatch, but
// annotatable at the interface declaration).
func (c *checker) static(call *ast.CallExpr, fn *types.Func) {
	if c.vouched(call) {
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		// Universe-scope methods (error.Error): unverifiable.
		c.report(call, "call to %s on the hot path: callee cannot be verified allocation-free", fn.Name())
		return
	}
	if allocFreePkgs[pkg.Path()] {
		return
	}
	name := lintcore.FuncFullName(fn)
	if kind, ok := c.local[name]; ok && (kind == lintcore.DirHotpath || kind == lintcore.DirNonalloc) {
		return
	}
	if strings.HasPrefix(pkg.Path(), modulePrefix) || pkg.Path() == c.pass.Pkg.ImportPath {
		if _, ok := c.pass.Fact(pkg.Path(), name); ok {
			return
		}
	}
	if isInterfaceMethod(fn) {
		c.report(call, "dynamic dispatch through %s on the hot path: annotate the interface method //itp:hotpath (and every implementation) or the site //itp:nonalloc", name)
		return
	}
	c.report(call, "call to %s from the hot path: callee is not //itp:hotpath or //itp:nonalloc", name)
}

// interfaceArgs flags implicit boxing: a non-constant concrete value
// passed where the callee expects an interface. Variadic calls with
// ... expansion pass a slice and are skipped.
func (c *checker) interfaceArgs(call *ast.CallExpr) {
	info := c.pass.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if isConstant(info, arg) || isNil(info, arg) {
			continue
		}
		if c.vouched(call) || c.vouched(arg) {
			continue
		}
		c.report(arg, "argument boxes %s into interface %s on the hot path", types.TypeString(at, nil), types.TypeString(pt, nil))
	}
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type().Underlying())
}
