package errpropagation

import (
	"go/types"
	"strings"
	"testing"

	"itpsim/internal/lint/lintcore"
	"itpsim/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	old := Watched
	Watched = func(fn *types.Func) bool {
		return fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "errpropagation/testdata/src/api")
	}
	defer func() { Watched = old }()

	linttest.Run(t, []*lintcore.Analyzer{Analyzer},
		"./testdata/src/api", "./testdata/src/use")
}

func TestWatchedDefault(t *testing.T) {
	// The default predicate keys off package paths; check the seam list
	// by probing the map directly plus the sim special case.
	for _, pkg := range []string{"itpsim/internal/trace", "itpsim/internal/harness", "itpsim/internal/metrics"} {
		if !watchedPkgs[pkg] {
			t.Errorf("watchedPkgs[%q] = false, want true", pkg)
		}
	}
	if watchedPkgs["itpsim/internal/sim"] {
		t.Error("sim must not be blanket-watched; only Run/RunWarmup are")
	}
}
