package errpropagation

import (
	"go/token"
	"go/types"
	"testing"
)

func fakeFunc(pkgPath, name string) *types.Func {
	var pkg *types.Package
	if pkgPath != "" {
		pkg = types.NewPackage(pkgPath, "x")
	}
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func TestDefaultWatched(t *testing.T) {
	cases := []struct {
		pkg, name string
		want      bool
	}{
		{"itpsim/internal/trace", "Close", true},
		{"itpsim/internal/harness", "Save", true},
		{"itpsim/internal/metrics", "Export", true},
		{"itpsim/internal/sim", "Run", true},
		{"itpsim/internal/sim", "RunWarmup", true},
		{"itpsim/internal/sim", "NewMachine", false},
		{"itpsim/internal/cache", "Access", false},
		{"fmt", "Println", false},
		{"", "Error", false},
	}
	for _, c := range cases {
		if got := Watched(fakeFunc(c.pkg, c.name)); got != c.want {
			t.Errorf("Watched(%s.%s) = %v, want %v", c.pkg, c.name, got, c.want)
		}
	}
}

func TestDisplayName(t *testing.T) {
	if got := displayName(fakeFunc("itpsim/internal/trace", "Open")); got != "trace.Open" {
		t.Errorf("displayName = %q", got)
	}
	if got := displayName(fakeFunc("main", "run")); got != "main.run" {
		t.Errorf("displayName = %q", got)
	}
}
