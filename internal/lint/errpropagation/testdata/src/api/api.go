// Package api is an errpropagation fixture: the analyzer test marks it
// watched, standing in for trace/harness/metrics I/O seams.
package api

import "errors"

// Reader mimics a trace reader.
type Reader struct{ n int }

// Next returns the next record.
func (r *Reader) Next() (int, error) {
	if r.n == 0 {
		return 0, errors.New("eof")
	}
	r.n--
	return r.n, nil
}

// Close flushes and closes.
func (r *Reader) Close() error { return nil }

// Flush exports buffered state.
func Flush() error { return nil }

// Peek has no error result and is never flagged.
func (r *Reader) Peek() int { return r.n }
