// Package use is the errpropagation consumer fixture.
package use

import "itpsim/internal/lint/errpropagation/testdata/src/api"

// Drain exercises every discarded-error form.
func Drain(r *api.Reader) int {
	api.Flush()      // want `error from api.Flush result ignored`
	defer r.Close()  // want `error from \(api.Reader\).Close deferred with its error unread`
	go api.Flush()   // want `error from api.Flush started as a goroutine`
	n, _ := r.Next() // want `error from \(api.Reader\).Next assigned to _`
	_ = api.Flush()  // want `error from api.Flush assigned to _`
	m := r.Peek()    // no error result: ok

	v, err := r.Next() // consumed: ok
	if err != nil {
		v = 0
	}
	if err := api.Flush(); err != nil { // consumed: ok
		v++
	}
	//itp:ignore-err best-effort flush on the diagnostics path
	api.Flush()
	defer func() { // deferred error captured in a closure: ok
		if err := r.Close(); err != nil {
			v++
		}
	}()
	return n + m + v
}
