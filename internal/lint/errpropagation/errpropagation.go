// Package errpropagation forbids silently discarded errors from the
// I/O-bearing seams whose failures invalidate an experiment: trace
// ingestion (itpsim/internal/trace), harness checkpoint/resume state
// (itpsim/internal/harness), metrics export (itpsim/internal/metrics),
// and the top-level sim.Run/RunWarmup drivers. A dropped error from any
// of these can publish results computed from a truncated trace or a
// half-written checkpoint.
//
// Flagged forms (non-test files):
//
//	r.Decode(&rec)            // expression statement, error unread
//	n, _ := rd.Next()         // error result assigned to blank
//	defer w.Close()           // deferred call, error unread
//	go exp.Flush()            // goroutine, error unread
//
// A site that genuinely does not care (an unlink on a best-effort temp
// file, say) carries //itp:ignore-err with a reason. Errors that are
// read and then handled — even by logging — are out of scope; this
// analyzer only catches errors no code can ever see.
package errpropagation

import (
	"go/ast"
	"go/types"
	"strings"

	"itpsim/internal/lint/lintcore"
)

// watchedPkgs are the packages all of whose error-returning functions
// and methods are watched.
var watchedPkgs = map[string]bool{
	"itpsim/internal/trace":   true,
	"itpsim/internal/harness": true,
	"itpsim/internal/metrics": true,
}

// Watched decides whether fn's error return must be consumed. It is a
// variable so analyzer tests can watch fixture packages instead.
var Watched = func(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if watchedPkgs[pkg.Path()] {
		return true
	}
	if pkg.Path() == "itpsim/internal/sim" {
		return fn.Name() == "Run" || fn.Name() == "RunWarmup"
	}
	return false
}

// Analyzer is the errpropagation check.
var Analyzer = &lintcore.Analyzer{
	Name: "errpropagation",
	Doc:  "forbid discarded errors from trace ingestion, checkpoint I/O, metrics export, and sim.Run",
	Run:  run,
}

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	dirs := pkg.Directives()
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(pass, dirs, call, "result ignored")
				}
			case *ast.DeferStmt:
				check(pass, dirs, n.Call, "deferred with its error unread (capture it in a closure)")
			case *ast.GoStmt:
				check(pass, dirs, n.Call, "started as a goroutine with its error unread")
			case *ast.AssignStmt:
				checkAssign(pass, dirs, n)
			}
			return true
		})
	}
	return nil
}

// watchedCall resolves call's callee; it returns the function if its
// error return is watched, along with the index of the error result.
func watchedCall(pass *lintcore.Pass, call *ast.CallExpr) (*types.Func, int) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.Pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[fun]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil || !Watched(fn) {
		return nil, -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if isErrorType(res.At(i).Type()) {
			return fn, i
		}
	}
	return nil, -1
}

func check(pass *lintcore.Pass, dirs *lintcore.Directives, call *ast.CallExpr, how string) {
	fn, _ := watchedCall(pass, call)
	if fn == nil {
		return
	}
	if dirs.Covers(call.Pos(), lintcore.DirIgnoreErr) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s %s: a dropped failure here can silently invalidate results (//itp:ignore-err with a reason if truly best-effort)", displayName(fn), how)
}

// checkAssign flags `x, _ := watched()` where the blank lands on the
// error result.
func checkAssign(pass *lintcore.Pass, dirs *lintcore.Directives, assign *ast.AssignStmt) {
	// Only the single-call multi-value form can discard one result:
	// a, b := f().
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errIdx := watchedCall(pass, call)
	if fn == nil || errIdx < 0 || errIdx >= len(assign.Lhs) {
		return
	}
	lhs, ok := assign.Lhs[errIdx].(*ast.Ident)
	if !ok || lhs.Name != "_" {
		return
	}
	if dirs.Covers(call.Pos(), lintcore.DirIgnoreErr) {
		return
	}
	pass.Reportf(lhs.Pos(), "error from %s assigned to _: a dropped failure here can silently invalidate results (//itp:ignore-err with a reason if truly best-effort)", displayName(fn))
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// displayName shortens FullName for diagnostics: the package path keeps
// only its last element.
func displayName(fn *types.Func) string {
	full := lintcore.FuncFullName(fn)
	if i := strings.LastIndex(full, "/"); i >= 0 {
		if open := strings.IndexByte(full, '('); open >= 0 && open < i {
			return full[:open+1] + full[i+1:]
		}
		return full[i+1:]
	}
	return full
}
