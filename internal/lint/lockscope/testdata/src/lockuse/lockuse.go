// Package lockuse is the lockscope fixture target.
package lockuse

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"itpsim/internal/lint/lockscope/testdata/src/lockdep"
)

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int
	enc *json.Encoder
}

func badSend(s *store, ch chan int) {
	s.mu.Lock()
	ch <- s.n // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func badSleep(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `blocking call to time\.Sleep while s\.mu is held`
}

func badEncode(s *store, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Encode(v) // want `blocking call to \(\*encoding/json\.Encoder\)\.Encode while s\.mu is held`
}

func badRLock(s *store, ch chan int) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-ch // want `channel receive while s\.rw is held`
}

func badSelect(s *store, ch chan int, done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select while s\.mu is held`
	case <-ch:
	case <-done:
	}
}

// badLocalCallee blocks through a same-package callee (fixpoint).
func badLocalCallee(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	drain(ch) // want `call to .*lockuse\.drain, which may block, while s\.mu is held`
}

func drain(ch chan int) {
	for range ch {
	}
}

// badDepCallee blocks through a dependency (fact flow).
func badDepCallee(s *store, ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return lockdep.Blocky(ch) // want `call to .*lockdep\.Blocky, which may block, while s\.mu is held`
}

// badDynamic calls through a func value.
func badDynamic(s *store, f func()) {
	s.mu.Lock()
	f() // want `call through a func value .* while s\.mu is held`
	s.mu.Unlock()
}

// okAfterUnlock: the send happens outside the section.
func okAfterUnlock(s *store, ch chan int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	ch <- s.n
}

// okQuickCallee: a non-blocking callee is fine under the lock.
func okQuickCallee(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = lockdep.Quick(s.n)
}

// okHatch is a reviewed serialised writer: the lock exists to order
// writes to the shared stream.
func okHatch(s *store, w io.Writer, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//itp:lock-io fixture: s.mu serialises writers of the shared stream
	s.enc.Encode(buf)
}

// okClosure: a literal's own lock does not leak into the enclosing body
// and vice versa.
func okClosure(s *store, ch chan int) func() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return func() {
		ch <- s.n
	}
}

// okDistinctLocks: sections are per receiver.
func okDistinctLocks(s, t *store, ch chan int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
	ch <- s.n + t.n
}
