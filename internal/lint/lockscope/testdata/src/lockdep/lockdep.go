// Package lockdep is the lockscope cross-package fixture.
package lockdep

// Blocky may block (channel receive): calling it under a lock in an
// importing package must be a diagnostic (via the "blocks" fact).
func Blocky(ch chan int) int { return <-ch }

// Quick never blocks.
func Quick(x int) int { return x + 1 }
