// Package lockscope forbids blocking while a sync.Mutex or sync.RWMutex
// is held. A channel operation, a blocking I/O call, or a call into a
// function that may block inside a critical section turns lock
// contention into latency for every other goroutine — and, when the
// blocked operation needs the same lock to make progress (a metrics sink
// re-entering its registry, a checkpoint writer flushing through a
// callback), into a deadlock.
//
// Critical sections are tracked syntactically per function body: from a
// `x.Lock()` / `x.RLock()` call to the matching same-receiver
// `x.Unlock()` / `x.RUnlock()`, or to the end of the body when the
// unlock is deferred or missing. Inside a section the analyzer flags:
//
//   - channel sends, receives, selects, and ranges,
//   - calls from a curated table of blocking standard-library functions
//     (time.Sleep, WaitGroup.Wait, os.File and bufio I/O, JSON
//     encode/decode to streams, io.Copy, exec.Cmd waits, ...),
//   - calls to module functions that may block — computed bottom-up over
//     the call graph and carried across packages by the "blocks" fact,
//   - calls through func values (unverifiable, so presumed blocking).
//
// A section whose lock exists precisely to serialise a blocking resource
// — a shared output stream, say — carries //itp:lock-io with a reason.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"

	"itpsim/internal/lint/lintcore"
)

// Analyzer is the lockscope check.
var Analyzer = &lintcore.Analyzer{
	Name: "lockscope",
	Doc:  "no channel ops, blocking I/O, or may-block calls while a mutex is held",
	Run:  run,
}

const blocksFact = "blocks"

var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var unlockMethods = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

// blockingStdlib is the curated may-block table. Lock acquisition is
// deliberately absent: flagging nested locking is lock-ordering
// analysis, not this check.
var blockingStdlib = map[string]bool{
	"time.Sleep":                      true,
	"(*sync.WaitGroup).Wait":          true,
	"(*sync.Cond).Wait":               true,
	"(*os.File).Read":                 true,
	"(*os.File).ReadAt":               true,
	"(*os.File).Write":                true,
	"(*os.File).WriteAt":              true,
	"(*os.File).WriteString":          true,
	"(*os.File).Sync":                 true,
	"(*bufio.Writer).Write":           true,
	"(*bufio.Writer).WriteString":     true,
	"(*bufio.Writer).WriteByte":       true,
	"(*bufio.Writer).Flush":           true,
	"(*bufio.Reader).Read":            true,
	"(*bufio.Reader).ReadString":      true,
	"(*bufio.Reader).ReadBytes":       true,
	"(*bufio.Scanner).Scan":           true,
	"(*encoding/json.Encoder).Encode": true,
	"(*encoding/json.Decoder).Decode": true,
	"io.Copy":                         true,
	"io.ReadAll":                      true,
	"io.ReadFull":                     true,
	"fmt.Fprint":                      true,
	"fmt.Fprintf":                     true,
	"fmt.Fprintln":                    true,
	"(*os/exec.Cmd).Run":              true,
	"(*os/exec.Cmd).Wait":             true,
	"(*os/exec.Cmd).Output":           true,
	"(*os/exec.Cmd).CombinedOutput":   true,
	"net/http.Get":                    true,
	"(*net/http.Client).Do":           true,
}

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	g := pkg.CallGraph()

	external := func(fn *types.Func) bool {
		if fn.Pkg() == nil {
			return false
		}
		_, ok := pass.Fact(fn.Pkg().Path(), lintcore.FuncFullName(fn))
		return ok
	}
	// mayBlock marks declared functions whose body contains a channel
	// operation or a blocking stdlib call, directly or transitively.
	// Directives do not enter the summary: //itp:lock-io reviews one
	// flag site, it does not launder the callee's blocking nature.
	mayBlock := g.Propagate(func(n *lintcore.FuncNode) bool {
		if len(n.ChanOps) > 0 {
			return true
		}
		for _, site := range n.Calls {
			if site.Callee != nil && blockingStdlib[lintcore.FuncFullName(site.Callee)] {
				return true
			}
		}
		return false
	}, external)
	for fn, ok := range mayBlock {
		if ok {
			pass.ExportFact(lintcore.FuncFullName(fn), blocksFact)
		}
	}

	dirs := pkg.Directives()
	for _, node := range g.Nodes() {
		body := nodeBody(node)
		if body == nil || pkg.IsTestFile(body.Pos()) {
			continue
		}
		sections := criticalSections(pkg.Info, body)
		if len(sections) == 0 {
			continue
		}
		report := func(pos token.Pos, recv, what string) {
			if dirs.Covers(pos, lintcore.DirLockIO) {
				return
			}
			pass.Reportf(pos, "%s while %s is held: the lock is hostage to this operation's progress (//itp:lock-io with a reason if the lock exists to serialise it)", what, recv)
		}
		for _, op := range node.ChanOps {
			if recv, ok := inSection(sections, op.Node.Pos()); ok {
				report(op.Node.Pos(), recv, chanOpName(op.Kind))
			}
		}
		for _, site := range node.Calls {
			recv, ok := inSection(sections, site.Call.Pos())
			if !ok {
				continue
			}
			switch {
			case site.Callee == nil:
				report(site.Call.Pos(), recv, "call through a func value (unverifiable, presumed blocking)")
			case blockingStdlib[lintcore.FuncFullName(site.Callee)]:
				report(site.Call.Pos(), recv, "blocking call to "+lintcore.FuncFullName(site.Callee))
			case lockMethods[lintcore.FuncFullName(site.Callee)] || unlockMethods[lintcore.FuncFullName(site.Callee)]:
				// Nested locking is lock-ordering territory, not ours.
			case mayBlock[site.Callee] || (site.Callee.Pkg() != nil && site.Callee.Pkg() != pkg.Types && external(site.Callee)):
				report(site.Call.Pos(), recv, "call to "+lintcore.FuncFullName(site.Callee)+", which may block,")
			}
		}
	}
	return nil
}

func nodeBody(node *lintcore.FuncNode) *ast.BlockStmt {
	if node.Decl != nil {
		return node.Decl.Body
	}
	return node.Lit.Body
}

// section is one critical region: (start, end] positions guarded by the
// mutex named by recv (the receiver expression, e.g. "c.mu").
type section struct {
	start, end token.Pos
	recv       string
}

// criticalSections scans body in source order for Lock/Unlock pairs.
// A deferred or missing unlock extends the section to the body's end;
// nested function literals are separate bodies and are skipped.
func criticalSections(info *types.Info, body *ast.BlockStmt) []section {
	type open struct {
		recv  string
		start token.Pos
	}
	var stack []open
	var out []section
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			fn := lintcore.StaticCallee(info, n)
			if fn == nil {
				return true
			}
			name := lintcore.FuncFullName(fn)
			recv := recvString(n)
			switch {
			case lockMethods[name] && !deferred[n]:
				stack = append(stack, open{recv: recv, start: n.End()})
			case unlockMethods[name]:
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].recv != recv {
						continue
					}
					end := n.Pos()
					if deferred[n] {
						end = body.End()
					}
					out = append(out, section{start: stack[i].start, end: end, recv: recv})
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
		}
		return true
	})
	// Locks never released in this body hold to its end.
	for _, o := range stack {
		out = append(out, section{start: o.start, end: body.End(), recv: o.recv})
	}
	return out
}

// inSection reports whether pos lies inside any critical section,
// returning the innermost (latest-starting) matching lock's receiver.
func inSection(sections []section, pos token.Pos) (string, bool) {
	best := -1
	for i, s := range sections {
		if pos > s.start && pos < s.end {
			if best < 0 || s.start > sections[best].start {
				best = i
			}
		}
	}
	if best < 0 {
		return "", false
	}
	return sections[best].recv, true
}

// recvString renders the lock call's receiver expression ("c.mu"); for
// a promoted embedded mutex it is the outer value itself.
func recvString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "mutex"
	}
	return types.ExprString(sel.X)
}

func chanOpName(k lintcore.ChanOpKind) string {
	switch k {
	case lintcore.ChanSend:
		return "channel send"
	case lintcore.ChanRecv:
		return "channel receive"
	case lintcore.ChanSelect:
		return "select"
	default:
		return "range over a channel"
	}
}
