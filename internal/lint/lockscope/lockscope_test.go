package lockscope

import (
	"testing"

	"itpsim/internal/lint/lintcore"
	"itpsim/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, []*lintcore.Analyzer{Analyzer},
		"./testdata/src/lockdep", "./testdata/src/lockuse")
}
