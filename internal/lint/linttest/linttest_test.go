package linttest

import (
	"go/ast"
	"strings"
	"testing"

	"itpsim/internal/lint/lintcore"
)

// funcLitAnalyzer flags every func literal — enough to drive the
// harness end to end.
var funcLitAnalyzer = &lintcore.Analyzer{
	Name: "funclit",
	Doc:  "flag func literals (harness self-test)",
	Run: func(pass *lintcore.Pass) error {
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					pass.Reportf(n.Pos(), "func literal")
				}
				return true
			})
		}
		return nil
	},
}

func TestHarnessReportsMismatches(t *testing.T) {
	problems := runImpl([]*lintcore.Analyzer{funcLitAnalyzer}, "./testdata/src/fixture")
	var unexpected, unmatchedWant bool
	for _, p := range problems {
		if strings.Contains(p, "unexpected diagnostic") && strings.Contains(p, "func literal") {
			unexpected = true
		}
		if strings.Contains(p, `no diagnostic matched want "never-fires"`) {
			unmatchedWant = true
		}
	}
	if !unexpected {
		t.Errorf("harness missed the unannotated diagnostic; problems: %v", problems)
	}
	if !unmatchedWant {
		t.Errorf("harness missed the never-firing want; problems: %v", problems)
	}
	// The two deliberate mismatches must be the only problems: the
	// matched want in F proves positive matching works.
	if len(problems) != 2 {
		t.Errorf("got %d problems, want 2: %v", len(problems), problems)
	}
}

func TestHarnessLoadError(t *testing.T) {
	problems := runImpl([]*lintcore.Analyzer{funcLitAnalyzer}, "./testdata/src/enoent")
	if len(problems) == 0 {
		t.Fatal("expected a load problem for a nonexistent fixture dir")
	}
}

func TestSplitWant(t *testing.T) {
	got, err := splitWant("`a b` \"c\"")
	if err != nil || len(got) != 2 || got[0] != "a b" || got[1] != "c" {
		t.Errorf("splitWant = %v, %v", got, err)
	}
	if _, err := splitWant("`unterminated"); err == nil {
		t.Error("unterminated backquote not rejected")
	}
	if _, err := splitWant("bare"); err == nil {
		t.Error("unquoted pattern not rejected")
	}
}
