// Package fixture exercises the linttest harness itself with a trivial
// analyzer that flags every function literal.
package fixture

// F contains one func literal and one plain call.
func F() int {
	g := func() int { return 1 } // want `func literal`
	return g() + plain()
}

func plain() int { return 2 }

// Unmatched carries a want that never fires plus a diagnostic with no
// want; the harness meta-test asserts both problems are reported.
func Unmatched() {
	_ = func() {} // no want here: must surface as unexpected
	// want "never-fires"
}
