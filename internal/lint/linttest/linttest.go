// Package linttest runs itpvet analyzers over testdata fixture packages
// and checks their diagnostics against golangorg/x/tools-style `// want`
// comments:
//
//	rand.Intn(4) // want `global math/rand source`
//
// A want comment holds one or more double-quoted or backquoted regular
// expressions; each must match exactly one diagnostic reported on that
// line, and every diagnostic must be matched by a want. Fixture
// packages live under the analyzer's testdata/src/ directory and are
// ordinary in-module packages (so `go list -export` can build them);
// they must compile.
package linttest

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"itpsim/internal/lint/lintcore"
)

// Run loads the fixture packages named by patterns (resolved relative
// to the calling test's directory, e.g. "./testdata/src/a") and checks
// the analyzers' diagnostics against the fixtures' want comments.
func Run(t *testing.T, analyzers []*lintcore.Analyzer, patterns ...string) {
	t.Helper()
	for _, problem := range runImpl(analyzers, patterns...) {
		t.Error(problem)
	}
}

// runImpl does the work of Run, returning problems as strings so the
// harness itself is testable.
func runImpl(analyzers []*lintcore.Analyzer, patterns ...string) []string {
	pkgs, err := lintcore.Load("", patterns...)
	if err != nil {
		return []string{err.Error()}
	}
	diags, err := lintcore.Run(pkgs, analyzers)
	if err != nil {
		return []string{err.Error()}
	}

	wants, problems := collectWants(pkgs)

	// Match each diagnostic against the wants on its line.
	for _, d := range diags {
		key := lineKey{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostic: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer))
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", k.file, k.line, w.re.String()))
			}
		}
	}
	return problems
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// collectWants parses `// want` comments from the target packages.
func collectWants(pkgs []*lintcore.Package) (map[lineKey][]*want, []string) {
	wants := map[lineKey][]*want{}
	var problems []string
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					patterns, err := splitWant(rest)
					if err != nil {
						problems = append(problems, fmt.Sprintf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err))
						continue
					}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							problems = append(problems, fmt.Sprintf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err))
							continue
						}
						key := lineKey{file: pos.Filename, line: pos.Line}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants, problems
}

// splitWant tokenizes the body of a want comment: a sequence of
// double-quoted or backquoted regexp literals.
func splitWant(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted: %q", s)
		}
	}
}
