// Package atomicfield enforces all-or-nothing atomicity per struct
// field: a field accessed through sync/atomic anywhere (atomic.AddUint64,
// atomic.LoadPointer, ...) must be accessed through sync/atomic
// everywhere. A mixed regime — `atomic.AddUint64(&s.n, 1)` on one
// goroutine and `s.n++` on another — is a data race the race detector
// only catches when both sides happen to run in a -race test; beacon
// publication and the metrics registry depend on these fields being
// torn-free.
//
// The analyzer collects the set of atomically-accessed fields from every
// sync/atomic call site (locally and, through facts, in analyzed
// dependencies), then flags plain reads/writes of those fields in
// non-test files. Fields of the typed atomic kinds (atomic.Uint64,
// atomic.Pointer[T], ...) are safe by construction and out of scope.
//
// The escape hatch for a reviewed plain access — e.g. zeroing a counter
// before the value is published — is an //itp:nonatomic directive with a
// reason.
package atomicfield

import (
	"go/ast"
	"go/types"

	"itpsim/internal/lint/lintcore"
)

// Analyzer is the atomicfield check.
var Analyzer = &lintcore.Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg

	// Phase 1: find every field addressed by a sync/atomic call in this
	// package, and remember those argument selectors so phase 2 does not
	// flag them.
	atomicFields := map[string]bool{}
	atomicArgs := map[*ast.SelectorExpr]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSyncAtomicCall(pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				// The addressed operand is &x.F (possibly parenthesized).
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key, ok := fieldKey(pkg.Info, sel); ok {
					atomicFields[key] = true
					atomicArgs[sel] = true
				}
			}
			return true
		})
	}

	// Export this package's contribution, then union in the atomic field
	// sets of analyzed dependencies.
	for key := range atomicFields {
		pass.ExportFact(key, "atomic")
	}
	for _, dep := range pass.FactPackages() {
		for _, key := range pass.FactKeys(dep) {
			atomicFields[key] = true
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: flag plain accesses.
	dirs := pkg.Directives()
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			key, ok := fieldKey(pkg.Info, sel)
			if !ok || !atomicFields[key] {
				return true
			}
			if dirs.Covers(sel.Pos(), lintcore.DirNonatomic) {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere; this plain access races with it (//itp:nonatomic with a reason if the value is provably unpublished here)", key)
			return true
		})
	}
	return nil
}

// isSyncAtomicCall reports whether call is a direct call of a sync/atomic
// package function (the old-style API taking a *T first argument).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintcore.StaticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldKey names the struct field selected by sel as
// "pkgpath.RecvType.Field", stable across packages and load modes. It
// returns ok=false for non-field selections and for fields of anonymous
// struct types (those cannot be shared across packages by name; the
// local atomicArgs set still covers their atomic sites, and anonymous
// structs shared across goroutines are already beyond this analyzer's
// remit).
func fieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return "", false
	}
	owner := ownerName(s)
	if owner == "" {
		return "", false
	}
	return field.Pkg().Path() + "." + owner + "." + field.Name(), true
}

// ownerName returns the name of the named type whose struct declares the
// selected field ("" when the struct is anonymous). s.Index() drives the
// walk through embedded fields: all hops but the last are embeddings,
// and the struct reached after them declares the field.
func ownerName(s *types.Selection) string {
	t := s.Recv()
	idx := s.Index()
	for i := 0; i < len(idx)-1; i++ {
		t = derefNamedStructField(t, idx[i])
		if t == nil {
			return ""
		}
	}
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u.Obj().Name()
			}
			t = u.Underlying()
		default:
			return ""
		}
	}
}

// derefNamedStructField steps one embedding hop: the type of struct
// field idx of t (pointers and named types unwrapped).
func derefNamedStructField(t types.Type, idx int) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		case *types.Struct:
			if idx < u.NumFields() {
				return u.Field(idx).Type()
			}
			return nil
		default:
			return nil
		}
	}
}
