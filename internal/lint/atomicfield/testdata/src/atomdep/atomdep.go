// Package atomdep is the atomicfield cross-package fixture: it accesses
// Gauge.val atomically, which must make plain accesses in importing
// packages diagnostics too.
package atomdep

import "sync/atomic"

// Gauge has an old-style atomic field.
type Gauge struct {
	Val  uint64
	Name string
}

// Bump is the atomic access that defines Val's regime.
func Bump(g *Gauge) { atomic.AddUint64(&g.Val, 1) }

// Read is atomic too: no diagnostic.
func Read(g *Gauge) uint64 { return atomic.LoadUint64(&g.Val) }

// Label touches only the non-atomic field: no diagnostic.
func Label(g *Gauge) string { return g.Name }

// reset is a reviewed pre-publication write.
func reset(g *Gauge) {
	//itp:nonatomic fixture: g is not yet published
	g.Val = 0
}

var _ = reset
