// Package atomuse is the atomicfield fixture target: local mixed
// accesses, embedded fields, and plain accesses to a dependency's
// atomic field.
package atomuse

import (
	"sync/atomic"

	"itpsim/internal/lint/atomicfield/testdata/src/atomdep"
)

type counter struct {
	hits uint64
	cold int
}

type wrapper struct {
	counter
}

func inc(c *counter) { atomic.AddUint64(&c.hits, 1) }

func bad(c *counter) uint64 {
	return c.hits // want `field .*counter\.hits is accessed via sync/atomic elsewhere`
}

func badWrite(c *counter) {
	c.hits = 0 // want `field .*counter\.hits is accessed via sync/atomic elsewhere`
}

// badEmbedded reaches hits through an embedding: same field, same
// diagnostic.
func badEmbedded(w *wrapper) uint64 {
	return w.hits // want `field .*counter\.hits is accessed via sync/atomic elsewhere`
}

// okCold touches the plain field: no diagnostic.
func okCold(c *counter) int { return c.cold }

// okHatch is a reviewed plain access.
func okHatch(c *counter) {
	c.hits = 0 //itp:nonatomic fixture: c is freshly allocated
}

// badDep mixes with a dependency's atomic regime (fact flow).
func badDep(g *atomdep.Gauge) uint64 {
	return g.Val // want `field .*atomdep\.Gauge\.Val is accessed via sync/atomic elsewhere`
}

// okDepAtomic stays atomic: no diagnostic.
func okDepAtomic(g *atomdep.Gauge) { atomic.StoreUint64(&g.Val, 7) }

// okDepName is the dependency's plain field: no diagnostic.
func okDepName(g *atomdep.Gauge) string { return g.Name }
