// Package cycleunits keeps the simulator's two fundamental counters —
// simulated cycles (arch.Cycle) and retired instructions (arch.Instr) —
// from silently crossing. Go's type system already rejects direct
// mixing of the two defined types; what it cannot catch is a conversion
// that launders one unit into the other:
//
//	deadline := arch.Cycle(retired)          // Instr forced into Cycle
//	w := arch.Instr(uint64(cycles) / ipc)    // Cycle smuggled via uint64
//
// This analyzer flags any conversion whose target is one unit while the
// converted expression's subtree contains an operand of the other unit,
// unless the site carries //itp:unitcast with a justification. Unit
// types are recognized structurally — any defined type named Cycle or
// Instr with uint64 underlying — so the check needs no configuration
// and applies to test fixtures as well as internal/arch. Conversions
// from plain integers into a unit, and extractions to uint64 at API
// boundaries (metrics counters), remain free. Test files are exempt.
package cycleunits

import (
	"go/ast"
	"go/token"
	"go/types"

	"itpsim/internal/lint/lintcore"
)

// Analyzer is the cycleunits check.
var Analyzer = &lintcore.Analyzer{
	Name: "cycleunits",
	Doc:  "forbid Cycle<->Instr unit crossings hidden inside conversions",
	Run:  run,
}

func run(pass *lintcore.Pass) error {
	pkg := pass.Pkg
	dirs := pkg.Directives()
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[call.Fun]
			if !ok || !tv.IsType() || len(call.Args) != 1 {
				return true
			}
			target := unitOf(tv.Type)
			if target == "" {
				return true
			}
			other := "Instr"
			if target == "Instr" {
				other = "Cycle"
			}
			if pos, found := findUnit(pkg.Info, call.Args[0], other); found &&
				!dirs.Covers(call.Pos(), lintcore.DirUnitcast) {
				pass.Reportf(pos, "%s value converted into %s: unit crossing needs an explicit //itp:unitcast justification", other, target)
			}
			return true
		})
	}
	return nil
}

// unitOf reports "Cycle" or "Instr" if t is a defined type of that name
// with uint64 underlying, else "".
func unitOf(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if name != "Cycle" && name != "Instr" {
		return ""
	}
	if b, ok := named.Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
		return name
	}
	return ""
}

// findUnit reports whether any expression in e's subtree has the given
// unit type, returning the position of the first such operand.
func findUnit(info *types.Info, e ast.Expr, unit string) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if unitOf(info.TypeOf(expr)) == unit {
			pos, found = expr.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
