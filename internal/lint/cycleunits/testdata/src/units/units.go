// Package units is a cycleunits fixture: local Cycle/Instr defined
// types mirror itpsim/internal/arch.
package units

// Cycle counts simulated clock cycles.
type Cycle uint64

// Instr counts retired instructions.
type Instr uint64

// Phase is a uint64 defined type that is NOT a unit.
type Phase uint64

// Mix exercises conversions between the units.
func Mix(c Cycle, i Instr, raw uint64, p Phase) uint64 {
	a := Cycle(raw)           // plain integer into a unit: ok
	b := Instr(raw)           // ok
	d := uint64(c)            // extraction at an API boundary: ok
	e := Cycle(p)             // non-unit defined type: ok
	f := Cycle(i)             // want `Instr value converted into Cycle`
	g := Instr(c)             // want `Cycle value converted into Instr`
	h := Cycle(uint64(i) * 2) // want `Instr value converted into Cycle`
	//itp:unitcast fixed-IPC estimate documented in the experiment plan
	j := Instr(uint64(c) / 2)
	return uint64(a) + uint64(b) + d + uint64(e) + uint64(f) + uint64(g) + uint64(h) + uint64(j)
}
