// Package trace defines a compact binary on-disk format for instruction
// traces (the moral equivalent of ChampSim's .champsimtrace.xz files,
// using gzip from the standard library) plus a reader that implements
// workload.Stream, so recorded traces and synthetic generators are
// interchangeable inputs to the simulator.
//
// Format: the magic header "ITPT\x01", then one record per instruction:
//
//	flags  byte    bit0 IsBranch, bit1 Taken, bit2 has-load,
//	                bit3 has-store, bit4 DepLoad
//	pc     uvarint delta-encoded against the previous PC (zigzag)
//	load   uvarint present iff bit2 (absolute address)
//	store  uvarint present iff bit3 (absolute address)
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"itpsim/internal/workload"
)

var magic = [5]byte{'I', 'T', 'P', 'T', 1}

// Flag bits.
const (
	flagBranch = 1 << iota
	flagTaken
	flagLoad
	flagStore
	flagDepLoad
)

// Writer streams instructions to a gzip-compressed trace.
type Writer struct {
	gz     *gzip.Writer
	w      *bufio.Writer
	lastPC uint64
	n      uint64
	buf    [binary.MaxVarintLen64]byte
}

// NewWriter wraps out; call Close to flush.
func NewWriter(out io.Writer) (*Writer, error) {
	gz := gzip.NewWriter(out)
	w := &Writer{gz: gz, w: bufio.NewWriter(gz)}
	if _, err := w.w.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return w, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write appends one instruction.
func (w *Writer) Write(in *workload.Instr) error {
	var flags byte
	if in.IsBranch {
		flags |= flagBranch
	}
	if in.Taken {
		flags |= flagTaken
	}
	if in.LoadAddr != 0 {
		flags |= flagLoad
	}
	if in.StoreAddr != 0 {
		flags |= flagStore
	}
	if in.DepLoad {
		flags |= flagDepLoad
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	if err := w.uvarint(zigzag(int64(in.PC) - int64(w.lastPC))); err != nil {
		return err
	}
	w.lastPC = uint64(in.PC)
	if in.LoadAddr != 0 {
		if err := w.uvarint(uint64(in.LoadAddr)); err != nil {
			return err
		}
	}
	if in.StoreAddr != 0 {
		if err := w.uvarint(uint64(in.StoreAddr)); err != nil {
			return err
		}
	}
	w.n++
	return nil
}

// Count returns instructions written so far.
func (w *Writer) Count() uint64 { return w.n }

// Close flushes and closes the compressed stream (not the underlying
// writer).
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.gz.Close()
}

// Record copies n instructions from s into w. It returns the number
// actually copied (s may end sooner).
func Record(w *Writer, s workload.Stream, n uint64) (uint64, error) {
	var in workload.Instr
	var i uint64
	for ; i < n; i++ {
		if !s.Next(&in) {
			break
		}
		if err := w.Write(&in); err != nil {
			return i, err
		}
	}
	return i, nil
}

// Decode hardening bounds. Traces can come from other machines or be
// damaged in transit, so the reader treats every decoded value as
// untrusted: unknown flag bits, non-canonical addresses, and a zero
// memory-operand address (reserved by the format) are all rejected with
// an error naming the byte offset of the corrupt record. Record decoding
// never allocates based on decoded values — uvarints are bounded by
// binary.ReadUvarint's 10-byte limit and everything else is fixed-size —
// so a hostile trace cannot trigger oversized allocations.
const (
	// flagsReserved are the flag bits the format does not define; a set
	// reserved bit means the stream is corrupt or from a newer version.
	flagsReserved = ^byte(flagBranch | flagTaken | flagLoad | flagStore | flagDepLoad)
	// maxAddr bounds decoded virtual addresses to the canonical 48-bit
	// space every generator and trace writer stays within.
	maxAddr = uint64(1) << 48
)

// countReader counts bytes consumed from the decompressed stream so
// decode errors can name the offset of the corrupt record.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Reader decodes a trace; it implements workload.Stream.
type Reader struct {
	gz     *gzip.Reader // nil for raw (uncompressed) streams
	cr     *countReader
	r      *bufio.Reader
	lastPC uint64
	err    error
}

// NewReader validates the header and returns a streaming reader over a
// gzip-compressed trace (the on-disk format the Writer produces).
func NewReader(in io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(in)
	if err != nil {
		return nil, fmt.Errorf("trace: open: %w", err)
	}
	r, err := newReader(gz)
	if err != nil {
		return nil, err
	}
	r.gz = gz
	return r, nil
}

// NewRawReader reads an uncompressed record stream (magic header plus
// records, no gzip layer). It exists so the record decoder can be fuzzed
// and tested directly, without the fuzzer having to forge gzip framing.
func NewRawReader(in io.Reader) (*Reader, error) {
	return newReader(in)
}

func newReader(in io.Reader) (*Reader, error) {
	cr := &countReader{r: in}
	r := &Reader{cr: cr, r: bufio.NewReader(cr)}
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr != magic {
		return nil, errors.New("trace: bad magic (not an itpsim trace)")
	}
	return r, nil
}

// offset returns the decompressed-stream byte offset of the next unread
// byte, for error reports.
func (r *Reader) offset() int64 { return r.cr.n - int64(r.r.Buffered()) }

// corrupt records a terminal decode error at the given record offset.
func (r *Reader) corrupt(off int64, format string, args ...any) bool {
	r.err = fmt.Errorf("trace: corrupt record at byte offset %d: %s", off, fmt.Sprintf(format, args...))
	return false
}

// Next implements workload.Stream.
func (r *Reader) Next(in *workload.Instr) bool {
	if r.err != nil {
		return false
	}
	off := r.offset()
	flags, err := r.r.ReadByte()
	if err != nil {
		r.err = err // clean EOF at a record boundary stays io.EOF
		return false
	}
	if flags&flagsReserved != 0 {
		return r.corrupt(off, "unknown flag bits %#02x", flags&flagsReserved)
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record at byte offset %d: %w", off, noEOF(err))
		return false
	}
	*in = workload.Instr{}
	pc := uint64(int64(r.lastPC) + unzigzag(delta))
	if pc >= maxAddr {
		return r.corrupt(off, "non-canonical PC %#x", pc)
	}
	r.lastPC = pc
	in.PC = pc
	in.IsBranch = flags&flagBranch != 0
	in.Taken = flags&flagTaken != 0
	in.DepLoad = flags&flagDepLoad != 0
	if flags&flagLoad != 0 {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated load at byte offset %d: %w", off, noEOF(err))
			return false
		}
		if v == 0 || v >= maxAddr {
			return r.corrupt(off, "invalid load address %#x", v)
		}
		in.LoadAddr = v
	}
	if flags&flagStore != 0 {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated store at byte offset %d: %w", off, noEOF(err))
			return false
		}
		if v == 0 || v >= maxAddr {
			return r.corrupt(off, "invalid store address %#x", v)
		}
		in.StoreAddr = v
	}
	return true
}

// NextBatch implements workload.NextBatcher so decode-ahead ingestion
// (workload.Prefetch) fills its batches without a per-record interface
// call. A short return only means the trace ended or went bad; Err
// distinguishes the two.
func (r *Reader) NextBatch(buf []workload.Instr) int {
	for i := range buf {
		if !r.Next(&buf[i]) {
			return i
		}
	}
	return len(buf)
}

// noEOF converts io.EOF inside a record into io.ErrUnexpectedEOF: a
// stream that ends mid-record is truncated, not cleanly finished, and
// must not be mistaken for a normal end of trace.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Err returns the terminal error, if Next stopped for a reason other than
// a clean end of stream.
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}

// Close releases the decompressor (a no-op for raw readers).
func (r *Reader) Close() error {
	if r.gz == nil {
		return nil
	}
	return r.gz.Close()
}
