package trace

import (
	"bytes"
	"compress/gzip"
	"testing"
	"testing/quick"

	"itpsim/internal/workload"
)

func roundTrip(t *testing.T, instrs []workload.Instr) []workload.Instr {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []workload.Instr
	var in workload.Instr
	for r.Next(&in) {
		out = append(out, in)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	instrs := []workload.Instr{
		{PC: 0x400000},
		{PC: 0x400004, IsBranch: true, Taken: true},
		{PC: 0x400100, LoadAddr: 0x10000000, DepLoad: true},
		{PC: 0x400104, StoreAddr: 0x20000000},
		{PC: 0x3ff000}, // backwards PC delta
		{PC: 0x400000, LoadAddr: 0x1, StoreAddr: 0x2},
	}
	out := roundTrip(t, instrs)
	if len(out) != len(instrs) {
		t.Fatalf("got %d instrs, want %d", len(out), len(instrs))
	}
	for i := range instrs {
		if out[i] != instrs[i] {
			t.Errorf("instr %d: got %+v, want %+v", i, out[i], instrs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, flags []uint8) bool {
		if len(flags) < len(raw) {
			return true
		}
		var instrs []workload.Instr
		for i, r := range raw {
			in := workload.Instr{PC: uint64(r)}
			if flags[i]&1 != 0 {
				in.IsBranch = true
				in.Taken = flags[i]&2 != 0
			}
			if flags[i]&4 != 0 {
				in.LoadAddr = uint64(r) + 1
				in.DepLoad = flags[i]&8 != 0
			}
			if flags[i]&16 != 0 {
				in.StoreAddr = uint64(r) + 2
			}
			instrs = append(instrs, in)
		}
		out := roundTrip(t, instrs)
		if len(out) != len(instrs) {
			return false
		}
		for i := range instrs {
			if out[i] != instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordFromGenerator(t *testing.T) {
	p := workload.SpecParams{
		Seed: 9, CodePages: 4, LoopLen: 32, LoopIters: 10,
		DataPages: 256, DataZipf: 1.0, LoadFrac: 0.3, StoreFrac: 0.1,
		StreamFrac: 0.2, ReuseFrac: 0.2,
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n, err := Record(w, workload.NewSpec(p), 5000)
	if err != nil || n != 5000 {
		t.Fatalf("Record = %d, %v", n, err)
	}
	if w.Count() != 5000 {
		t.Errorf("Count = %d", w.Count())
	}
	w.Close()

	// Replaying the trace must equal replaying the generator.
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewSpec(p)
	var a, b workload.Instr
	for i := 0; i < 5000; i++ {
		if !r.Next(&a) {
			t.Fatalf("trace ended early at %d", i)
		}
		gen.Next(&b)
		if a != b {
			t.Fatalf("instr %d: trace %+v != generator %+v", i, a, b)
		}
	}
	if r.Next(&a) {
		t.Error("trace should contain exactly 5000 records")
	}
}

func TestRecordShortStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	replay := &workload.Replay{Instrs: []workload.Instr{{PC: 1}, {PC: 2}}}
	n, err := Record(w, replay, 100)
	if err != nil || n != 2 {
		t.Fatalf("Record = %d, %v; want 2", n, err)
	}
}

func TestBadMagic(t *testing.T) {
	var raw bytes.Buffer
	w, _ := NewWriter(&raw)
	w.Write(&workload.Instr{PC: 4})
	w.Close()
	data := raw.Bytes()
	// Corrupt inside: rebuild a gzip stream with wrong magic.
	var buf bytes.Buffer
	gw, _ := NewWriter(&buf)
	_ = gw
	// Simpler: hand NewReader a gzip stream of garbage.
	var garbage bytes.Buffer
	gz := gzip.NewWriter(&garbage)
	gz.Write([]byte("NOTATRACE"))
	gz.Close()
	if _, err := NewReader(&garbage); err == nil {
		t.Error("bad magic should fail")
	}
	// And non-gzip input fails immediately.
	if _, err := NewReader(bytes.NewReader([]byte("plain text"))); err == nil {
		t.Error("non-gzip input should fail")
	}
	_ = data
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Write(&workload.Instr{PC: uint64(i * 4), LoadAddr: 0x1000})
	}
	w.Close()
	// Recompress a truncated prefix of the decompressed payload.
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	var in workload.Instr
	count := 0
	for r.Next(&in) {
		count++
	}
	if count != 100 {
		t.Fatalf("baseline decode failed: %d", count)
	}
	if r.Err() != nil {
		t.Errorf("clean EOF should not be an error: %v", r.Err())
	}
}

func TestCompressionIsEffective(t *testing.T) {
	p := workload.SpecParams{
		Seed: 9, CodePages: 4, LoopLen: 32, LoopIters: 10,
		DataPages: 256, DataZipf: 1.0, LoadFrac: 0.3, StoreFrac: 0.1,
		StreamFrac: 0.2, ReuseFrac: 0.2,
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	Record(w, workload.NewSpec(p), 20000)
	w.Close()
	perInstr := float64(buf.Len()) / 20000
	if perInstr > 8 {
		t.Errorf("trace uses %.1f bytes/instruction; expected tight encoding", perInstr)
	}
}
