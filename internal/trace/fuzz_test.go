package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"strings"
	"testing"

	"itpsim/internal/workload"
)

// rawTrace builds the uncompressed record-stream bytes (magic + records)
// for the given instructions, by writing a normal trace and stripping the
// gzip layer.
func rawTrace(t testing.TB, instrs []workload.Instr) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func sampleInstrs() []workload.Instr {
	return []workload.Instr{
		{PC: 0x400000},
		{PC: 0x400004, IsBranch: true, Taken: true},
		{PC: 0x400100, LoadAddr: 0x10000000, DepLoad: true},
		{PC: 0x400104, StoreAddr: 0x20000000},
		{PC: 0x3ff000},
		{PC: 0x400000, LoadAddr: 0x1, StoreAddr: 0x2},
	}
}

// drain iterates a reader to exhaustion with a record bound, so corrupt
// input can neither panic nor loop forever.
func drain(r *Reader, limit int) (int, error) {
	var in workload.Instr
	n := 0
	for n < limit && r.Next(&in) {
		n++
	}
	return n, r.Err()
}

func TestCorruptReservedFlags(t *testing.T) {
	raw := rawTrace(t, sampleInstrs()[:1])
	raw = append(raw, 0xE0) // record with undefined flag bits
	r, err := NewRawReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := drain(r, 100); err == nil {
		t.Fatalf("reserved flag bits should fail decode (read %d records)", n)
	} else if !strings.Contains(err.Error(), "byte offset") {
		t.Errorf("error should name the byte offset, got: %v", err)
	}
}

func TestTruncatedMidRecord(t *testing.T) {
	raw := rawTrace(t, sampleInstrs())
	// Cut inside the final record: drop the last byte.
	r, err := NewRawReader(bytes.NewReader(raw[:len(raw)-1]))
	if err != nil {
		t.Fatal(err)
	}
	_, derr := drain(r, 100)
	if derr == nil {
		t.Fatal("truncated record should surface an error")
	}
	if !errors.Is(derr, io.ErrUnexpectedEOF) {
		t.Errorf("mid-record truncation should be io.ErrUnexpectedEOF, got: %v", derr)
	}
	if !strings.Contains(derr.Error(), "byte offset") {
		t.Errorf("error should name the byte offset, got: %v", derr)
	}
}

func TestZeroOperandAddressRejected(t *testing.T) {
	raw := rawTrace(t, sampleInstrs()[:1])
	// flags=load, pc delta 0, load address 0 (reserved by the format).
	raw = append(raw, flagLoad, 0x00, 0x00)
	r, err := NewRawReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(r, 100); err == nil || !strings.Contains(err.Error(), "invalid load address") {
		t.Errorf("zero load address should be rejected, got: %v", err)
	}
}

func TestNonCanonicalPCRejected(t *testing.T) {
	raw := rawTrace(t, nil)
	// One record whose zigzag delta lands the PC far past 2^48.
	var delta [10]byte
	n := putUvarintBytes(delta[:], zigzag(1<<60))
	raw = append(raw, 0x00)
	raw = append(raw, delta[:n]...)
	r, err := NewRawReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(r, 100); err == nil || !strings.Contains(err.Error(), "non-canonical PC") {
		t.Errorf("out-of-range PC should be rejected, got: %v", err)
	}
}

// TestBitFlipSweep flips every byte of a small valid raw trace one at a
// time: every variant must decode without panicking, ending either
// cleanly or with a structured error.
func TestBitFlipSweep(t *testing.T) {
	raw := rawTrace(t, sampleInstrs())
	for i := range raw {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			r, err := NewRawReader(bytes.NewReader(mut))
			if err != nil {
				continue // header damage: rejected at open, fine
			}
			drain(r, 1000)
		}
	}
}

// putUvarintBytes is binary.PutUvarint without importing it twice under a
// different name in tests.
func putUvarintBytes(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}

// FuzzReader feeds arbitrary bytes through both the raw record decoder
// and the gzip-framed entry point. The property is memory safety: no
// panic, no unbounded loop, no oversized allocation — corrupt input must
// always land in a structured error.
func FuzzReader(f *testing.F) {
	valid := rawTrace(f, sampleInstrs())
	f.Add(valid)
	// Bit-flipped seed variants steer the fuzzer at interesting decode
	// paths straight away.
	for _, i := range []int{0, 4, 5, 6, len(valid) / 2, len(valid) - 1} {
		if i < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0x40
			f.Add(mut)
		}
	}
	f.Add(valid[:len(valid)-2]) // truncated
	f.Add([]byte("ITPT\x01"))   // header only
	f.Add([]byte{})

	// A gzip-framed seed for the compressed entry point.
	var gzbuf bytes.Buffer
	w, err := NewWriter(&gzbuf)
	if err != nil {
		f.Fatal(err)
	}
	instrs := sampleInstrs()
	for i := range instrs {
		w.Write(&instrs[i])
	}
	w.Close()
	f.Add(gzbuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := NewRawReader(bytes.NewReader(data)); err == nil {
			drain(r, 1<<16)
		}
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			drain(r, 1<<16)
			r.Close()
		}
	})
}
