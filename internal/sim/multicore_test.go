package sim

import (
	"reflect"
	"strings"
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// mcStreams builds one stream per core, cycling the catalogue's server
// set so every core gets a tenant.
func mcStreams(t *testing.T, cores int) []workload.Stream {
	t.Helper()
	cat := workload.NewCatalog(8, 2)
	names := cat.ServerNames()
	streams := make([]workload.Stream, cores)
	for i := range streams {
		spec, err := cat.Get(names[i%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = spec.NewStream()
	}
	return streams
}

// runMC runs one warmup+measure simulation and returns its statistics.
func runMC(t *testing.T, cfg config.SystemConfig, streams []workload.Stream, warmup, measure uint64) *stats.Sim {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunWarmup(streams, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

// TestMultiCoreDeterminism: the CMP machine is as bit-deterministic as
// the single-core one — two 4-core runs from the same seeds must walk
// through identical hierarchy states at every beacon boundary.
func TestMultiCoreDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 4
	a := collectBeacons(t, cfg, mcStreams(t, 4), 1000, 5_000, 20_000)
	b := collectBeacons(t, cfg, mcStreams(t, 4), 1000, 5_000, 20_000)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("beacon counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("4-core runs diverged at beacon %d:\n  run A: %s\n  run B: %s", i, a[i], b[i])
		}
	}
}

// TestOneCoreMatchesDefault: Cores=1 is the same machine as the classic
// Cores=0 default — same beacon chain, same statistics, golden runs
// unchanged.
func TestOneCoreMatchesDefault(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	legacy := testConfig()
	explicit := testConfig()
	explicit.Cores = 1

	a := collectBeacons(t, legacy, []workload.Stream{spec.NewStream()}, 1000, 5_000, 20_000)
	b := collectBeacons(t, explicit, []workload.Stream{spec.NewStream()}, 1000, 5_000, 20_000)
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("Cores=1 beacon stream differs from the Cores=0 default (%d vs %d beacons)", len(a), len(b))
	}

	sa := runMC(t, legacy, []workload.Stream{spec.NewStream()}, 5_000, 20_000)
	sb := runMC(t, explicit, []workload.Stream{spec.NewStream()}, 5_000, 20_000)
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("Cores=1 stats differ from the Cores=0 default:\n%v\nvs\n%v", sa, sb)
	}
}

// TestMultiCoreContention: shared-hierarchy interference is real. Every
// tenant of a 4-core run must retire strictly slower than it does solo
// on an otherwise-idle machine, while the machine's combined throughput
// exceeds any single tenant's co-located rate.
func TestMultiCoreContention(t *testing.T) {
	const cores = 4
	cat := workload.NewCatalog(8, 2)
	names := cat.ServerNames()[:cores]

	cfg := testConfig()
	cfg.Cores = cores
	streams := make([]workload.Stream, cores)
	for i, n := range names {
		spec, err := cat.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = spec.NewStream()
	}
	coloc := runMC(t, cfg, streams, 20_000, 100_000)

	var sumTenantIPC float64
	for i, n := range names {
		spec, err := cat.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		solo := runMC(t, testConfig(), []workload.Stream{spec.NewStream()}, 20_000, 100_000)
		ten := &coloc.Cores[i]
		if ten.Instructions == 0 {
			t.Fatalf("tenant %d (%s) retired nothing in the measured phase", i, n)
		}
		if ten.IPC() >= solo.IPC() {
			t.Errorf("tenant %d (%s): co-located IPC %.4f not below solo %.4f — no interference?",
				i, n, ten.IPC(), solo.IPC())
		}
		sumTenantIPC += ten.IPC()
	}
	for i := range names {
		if agg := coloc.IPC(); agg <= coloc.Cores[i].IPC() {
			t.Errorf("aggregate IPC %.4f not above tenant %d's %.4f", agg, i, coloc.Cores[i].IPC())
		}
	}
	// The aggregate is total instructions over shared cycles, so it must
	// track the summed per-tenant rates (tenants retire over slightly
	// different cycle spans, hence the tolerance).
	if agg := coloc.IPC(); agg < 0.9*sumTenantIPC || agg > 1.1*sumTenantIPC {
		t.Errorf("aggregate IPC %.4f inconsistent with summed tenant IPCs %.4f", agg, sumTenantIPC)
	}
}

// TestMultiCorePerTenantAttribution: the per-tenant views must sum to
// the aggregates for the levels recorded per tenant, and every tenant
// must see its own translation traffic.
func TestMultiCorePerTenantAttribution(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 4
	s := runMC(t, cfg, mcStreams(t, 4), 10_000, 50_000)

	var instr uint64
	for i := range s.Cores {
		instr += s.Cores[i].Instructions
	}
	if instr != s.TotalInstructions() {
		t.Errorf("per-tenant instructions sum %d != total %d", instr, s.TotalInstructions())
	}
	sum := stats.NewSim()
	sum.EnsureTenants(len(s.Cores))
	for i := range s.Cores {
		c := &s.Cores[i]
		if c.ITLB.TotalHits()+c.ITLB.TotalMisses() == 0 {
			t.Errorf("tenant %d recorded no ITLB traffic", i)
		}
		sl, cl := sum.Levels(), c.Levels()
		for j := range cl {
			sl[j].Add(cl[j])
		}
	}
	for i, name := range []string{"ITLB", "DTLB", "STLB", "L1I", "L1D"} {
		got := *sum.Levels()[i]
		want := *s.Levels()[i]
		got.Name, want.Name = "", ""
		if got != want {
			t.Errorf("%s: per-tenant sum %+v != aggregate %+v", name, got, want)
		}
	}
}

// TestStreamCountValidation: the stream-count check reports the
// configured core count, not a hard-coded "1 or 2".
func TestStreamCountValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 4
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(mcStreams(t, 2), 1000)
	if err == nil {
		t.Fatal("2 streams on a 4-core machine should fail")
	}
	if !strings.Contains(err.Error(), "4 cores") || !strings.Contains(err.Error(), "2 streams") {
		t.Errorf("error should report both configured cores and given streams: %v", err)
	}

	m1, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = m1.Run(mcStreams(t, 3), 1000)
	if err == nil {
		t.Fatal("3 streams on a 1-core machine should fail")
	}
	if !strings.Contains(err.Error(), "1 or 2 streams") {
		t.Errorf("single-core error should keep the 1-or-2 wording: %v", err)
	}
}

// TestSMTDrainRestoresFetchBandwidth is the regression test for the SMT
// drain bug: when one thread of an SMT pair exhausts its stream, the
// survivor must get the whole fetch bandwidth back (fetchStep 2 → 1)
// instead of fetching on alternate cycles against a dead peer for the
// rest of the run.
func TestSMTDrainRestoresFetchBandwidth(t *testing.T) {
	// Fetch-bound workloads (endless cache-resident loops), so the
	// survivor's throughput is limited by fetch bandwidth, not the memory
	// system — a memory-bound tenant would mask a fetch-rate bug entirely.
	// The warmup absorbs the cold-start transient; the peer then drains 5%
	// into the measured phase, leaving the survivor alone for the rest.
	const (
		warmup  = 20_000
		measure = 100_000
	)

	solo := runMC(t, testConfig(), []workload.Stream{&endless{}}, warmup, measure)

	pair := runMC(t, testConfig(), []workload.Stream{
		workload.Limit(&endless{}, warmup+measure/20),
		&endless{},
	}, warmup, measure)

	survivor := pair.Cores[1].IPC()
	if survivor == 0 {
		t.Fatal("survivor thread recorded no IPC")
	}
	// With fetchStep stuck at 2 the survivor's tail runs at half its solo
	// rate; with the bandwidth handed back it runs near-solo.
	if ratio := survivor / solo.IPC(); ratio < 0.8 {
		t.Errorf("survivor IPC %.4f is %.2fx solo %.4f; fetch bandwidth not restored after peer drain",
			survivor, ratio, solo.IPC())
	}
}
