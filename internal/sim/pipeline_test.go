package sim

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/workload"
)

// run executes a replay of instrs on a fresh machine and returns cycles.
func runCycles(t *testing.T, cfg config.SystemConfig, instrs []workload.Instr) uint64 {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Run([]workload.Stream{&workload.Replay{Instrs: instrs}}, uint64(len(instrs)))
	return uint64(res.Stats.Cycles)
}

// straightline builds n instructions in one code page with no memory ops.
func straightline(n int, branchEvery int, taken bool) []workload.Instr {
	instrs := make([]workload.Instr, n)
	for i := range instrs {
		instrs[i].PC = 0x400000 + arch.Addr((i%256)*4)
		if branchEvery > 0 && i%branchEvery == branchEvery-1 {
			instrs[i].IsBranch = true
			instrs[i].Taken = taken
		}
	}
	return instrs
}

func TestFetchWidthBoundsIPC(t *testing.T) {
	cfg := config.Default()
	cfg.BranchPredAccuracy = 1.0 // no mispredicts
	cycles := runCycles(t, cfg, straightline(60000, 0, false))
	ipc := 60000.0 / float64(cycles)
	// Perfect straight-line code: IPC should approach the fetch width
	// and never exceed it.
	if ipc > float64(cfg.FetchWidth) {
		t.Errorf("IPC %.2f exceeds fetch width %d", ipc, cfg.FetchWidth)
	}
	if ipc < 2.0 {
		t.Errorf("straight-line IPC %.2f implausibly low", ipc)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	mk := func(acc float64) uint64 {
		cfg := config.Default()
		cfg.BranchPredAccuracy = acc
		return runCycles(t, cfg, straightline(60000, 8, true))
	}
	perfect := mk(1.0)
	poor := mk(0.5)
	if poor <= perfect {
		t.Errorf("mispredicts should cost cycles: perfect=%d poor=%d", perfect, poor)
	}
	// 12.5% branches at 50% accuracy: thousands of redirects.
	if poor < perfect+uint64(0.04*float64(perfect)) {
		t.Errorf("mispredict cost too small: perfect=%d poor=%d", perfect, poor)
	}
}

func TestDependentLoadsSerialise(t *testing.T) {
	mk := func(dep bool) uint64 {
		instrs := make([]workload.Instr, 20000)
		for i := range instrs {
			instrs[i].PC = 0x400000 + arch.Addr((i%64)*4)
			// Loads to distinct cold pages: slow.
			instrs[i].LoadAddr = 0x10000000000 + arch.Addr(i)*arch.PageSize4K
			instrs[i].DepLoad = dep
		}
		return runCycles(t, config.Default(), instrs)
	}
	indep := mk(false)
	chained := mk(true)
	if chained <= indep {
		t.Errorf("pointer chains must serialise: independent=%d chained=%d", indep, chained)
	}
	// Walker occupancy already serialises much of the independent case
	// (4 concurrent walks), so the chain adds a moderate but real cost.
	if float64(chained) < 1.1*float64(indep) {
		t.Errorf("chaining effect too weak: independent=%d chained=%d", indep, chained)
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	mk := func(rob int) uint64 {
		cfg := config.Default()
		cfg.ROBSize = rob
		// Keep the memory system unloaded so the ROB window is the only
		// thing deciding how many misses overlap.
		cfg.L1DNextLine = false
		cfg.L2CStride = false
		instrs := make([]workload.Instr, 20000)
		for i := range instrs {
			instrs[i].PC = 0x400000 + arch.Addr((i%64)*4)
			if i%16 == 0 {
				// DRAM-bound loads with warm translations (64 pages fit
				// the DTLB): a 352-entry ROB overlaps ~22 of them, a
				// 16-entry ROB at most one.
				page := arch.Addr(i % 64)
				block := arch.Addr(i) // distinct block per load
				instrs[i].LoadAddr = 0x10000000000 + page<<30 + block<<arch.BlockBits
			}
		}
		return runCycles(t, cfg, instrs)
	}
	big := mk(352)
	small := mk(16)
	if small <= big {
		t.Errorf("a tiny ROB should hurt: rob352=%d rob16=%d", big, small)
	}
}

func TestFTQDepthGatesFrontendRunahead(t *testing.T) {
	// With a deep FTQ, instruction-side stalls overlap a slow backend; a
	// depth-1 FTQ exposes them.
	mk := func(depth int) uint64 {
		cfg := config.Default()
		cfg.FTQDepth = depth
		instrs := make([]workload.Instr, 30000)
		for i := range instrs {
			// New code page every 16 instructions: ITLB pressure.
			instrs[i].PC = 0x400000 + arch.Addr(i/16)*arch.PageSize4K + arch.Addr((i%16)*4)
			if i%3 == 0 {
				instrs[i].LoadAddr = 0x10000000000 + arch.Addr(i%4096)*arch.PageSize4K
			}
		}
		return runCycles(t, cfg, instrs)
	}
	deep := mk(128)
	shallow := mk(1)
	if shallow <= deep {
		t.Errorf("shallow FTQ should expose frontend stalls: deep=%d shallow=%d", deep, shallow)
	}
}

// TestMispredictRefetchesBlockZero is the regression test for the
// mispredict-redirect sentinel: the old code forced a refetch by setting
// fetchBlock to address 0, which is itself a valid block address, so a
// redirect whose target lived in block 0 silently skipped the instruction
// fetch. With code placed entirely in block 0 and every branch
// mispredicting, each redirect must re-access the L1I.
func TestMispredictRefetchesBlockZero(t *testing.T) {
	const n = 4000
	instrs := make([]workload.Instr, n)
	for i := range instrs {
		instrs[i].PC = arch.Addr((i % 16) * 4) // all PCs inside block 0
		instrs[i].IsBranch = true
		instrs[i].Taken = true
	}
	cfg := config.Default()
	cfg.BranchPredAccuracy = 0 // every branch mispredicts, deterministically
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]workload.Stream{&workload.Replay{Instrs: instrs}}, n); err != nil {
		t.Fatal(err)
	}
	accesses := m.Stats.L1I.TotalHits() + m.Stats.L1I.TotalMisses()
	// Every mispredict redirects fetch back into block 0, so the L1I must
	// see on the order of one access per instruction. Under the sentinel
	// bug it saw none at all.
	if accesses < n/2 {
		t.Errorf("block-0 code with all-mispredicted branches made only %d L1I accesses, want >= %d",
			accesses, n/2)
	}
}

// TestFirstFetchInBlockZero checks the initial-fetch corner of the same
// sentinel bug: a trace that begins in block 0 must still fetch its first
// block (the old code's zero-initialised fetchBlock matched it and never
// touched the L1I).
func TestFirstFetchInBlockZero(t *testing.T) {
	instrs := make([]workload.Instr, 100)
	for i := range instrs {
		instrs[i].PC = arch.Addr((i % 16) * 4)
	}
	m, err := NewMachine(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]workload.Stream{&workload.Replay{Instrs: instrs}}, 100); err != nil {
		t.Fatal(err)
	}
	if accesses := m.Stats.L1I.TotalHits() + m.Stats.L1I.TotalMisses(); accesses == 0 {
		t.Error("straight-line code in block 0 never accessed the L1I")
	}
}

// TestFDIPScanBudgetSizesLookahead checks the invariant newThreadCtx
// asserts: the lookahead ring is always large enough for one full FDIP
// scan (FDIPDistance blocks of blockInstrs instructions each), for
// distances well past the default.
func TestFDIPScanBudgetSizesLookahead(t *testing.T) {
	for _, dist := range []int{1, 24, 100} {
		cfg := config.Default()
		cfg.FDIPDistance = dist
		tc := newThreadCtx(nil, 0, &workload.Replay{}, &cfg, 1, 100, 0)
		if want := dist * blockInstrs; tc.scanBudget != want {
			t.Errorf("FDIPDistance=%d: scanBudget = %d, want %d", dist, tc.scanBudget, want)
		}
		if len(tc.la.buf) < tc.scanBudget {
			t.Errorf("FDIPDistance=%d: lookahead capacity %d < scan budget %d",
				dist, len(tc.la.buf), tc.scanBudget)
		}
	}
}

func TestStoresDoNotBlockRetire(t *testing.T) {
	// Stores to cold pages complete from the store buffer; a stream of
	// them should be far cheaper than the same stream of loads.
	mk := func(stores bool) uint64 {
		instrs := make([]workload.Instr, 20000)
		for i := range instrs {
			instrs[i].PC = 0x400000 + arch.Addr((i%64)*4)
			addr := arch.Addr(0x10000000000) + arch.Addr(i)*arch.PageSize4K
			if stores {
				instrs[i].StoreAddr = addr
			} else {
				instrs[i].LoadAddr = addr
				instrs[i].DepLoad = true
			}
		}
		return runCycles(t, config.Default(), instrs)
	}
	storeCycles := mk(true)
	loadCycles := mk(false)
	if storeCycles >= loadCycles {
		t.Errorf("stores must not serialise like dependent loads: stores=%d loads=%d",
			storeCycles, loadCycles)
	}
}
