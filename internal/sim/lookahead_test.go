package sim

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/workload"
)

// seqInstrs builds n distinguishable instructions (PC encodes the index).
func seqInstrs(n int) []workload.Instr {
	instrs := make([]workload.Instr, n)
	for i := range instrs {
		instrs[i].PC = 0x400000 + arch.Addr(i)*4
	}
	return instrs
}

// TestLookaheadInterleavedPeekPopAcrossWrap drives peeks and pops across
// the ring boundary many times over: every peek must see exactly the
// instruction that the matching pop later returns, regardless of where
// head sits in the ring.
func TestLookaheadInterleavedPeekPopAcrossWrap(t *testing.T) {
	const total = 1000
	instrs := seqInstrs(total)
	la := newLookahead(&workload.Replay{Instrs: instrs}, 64)
	if len(la.buf) != 64 {
		t.Fatalf("capacity = %d, want the requested power of two 64", len(la.buf))
	}

	popped := 0
	var in workload.Instr
	for popped < total {
		// Peek a spread of offsets, including some near the capacity so
		// the (head+i) index wraps.
		for _, off := range []int{0, 1, 7, 31, 62, 63} {
			want := popped + off
			got := la.peek(off)
			if want >= total {
				if got != nil {
					t.Fatalf("peek(%d) after %d pops = %v, want nil beyond EOF", off, popped, got)
				}
				continue
			}
			if got == nil {
				t.Fatalf("peek(%d) after %d pops = nil, want instr %d", off, popped, want)
			}
			if got.PC != instrs[want].PC {
				t.Fatalf("peek(%d) after %d pops: PC %#x, want %#x", off, popped, got.PC, instrs[want].PC)
			}
		}
		// Pop a prime-ish stride so head lands on every residue of the
		// ring over the run.
		for j := 0; j < 7 && popped < total; j++ {
			if !la.pop(&in) {
				t.Fatalf("pop after %d returned false before EOF", popped)
			}
			if in.PC != instrs[popped].PC {
				t.Fatalf("pop %d: PC %#x, want %#x", popped, in.PC, instrs[popped].PC)
			}
			popped++
		}
	}
	if la.pop(&in) {
		t.Fatal("pop past EOF returned true")
	}
	if la.peek(0) != nil {
		t.Fatal("peek(0) past EOF returned non-nil")
	}
}

// TestLookaheadPeekBeyondEOF checks peeks past the end of a short stream
// return nil without disturbing the instructions still buffered.
func TestLookaheadPeekBeyondEOF(t *testing.T) {
	instrs := seqInstrs(10)
	la := newLookahead(&workload.Replay{Instrs: instrs}, 64)
	if got := la.peek(10); got != nil {
		t.Fatalf("peek(10) on a 10-instr stream = %v, want nil", got)
	}
	if got := la.peek(1 << 20); got != nil {
		t.Fatalf("peek(huge) = %v, want nil", got)
	}
	for i := 0; i < 10; i++ {
		var in workload.Instr
		if !la.pop(&in) || in.PC != instrs[i].PC {
			t.Fatalf("pop %d after EOF peeks: got %#x ok=%v, want %#x", i, in.PC, true, instrs[i].PC)
		}
	}
}

// TestLookaheadRefillAfterPartialDrain drains part of the buffer, forces
// a refill (which lands in two contiguous segments around the wrap), and
// verifies order is preserved.
func TestLookaheadRefillAfterPartialDrain(t *testing.T) {
	const total = 300
	instrs := seqInstrs(total)
	la := newLookahead(&workload.Replay{Instrs: instrs}, 64)

	var in workload.Instr
	// Fill, drain 40 of 64, then peek deep to force a wrapped refill.
	if la.peek(0) == nil {
		t.Fatal("initial fill failed")
	}
	for i := 0; i < 40; i++ {
		if !la.pop(&in) || in.PC != instrs[i].PC {
			t.Fatalf("drain pop %d mismatch", i)
		}
	}
	if got := la.peek(63); got == nil || got.PC != instrs[40+63].PC {
		t.Fatalf("peek(63) after partial drain: got %v, want PC %#x", got, instrs[103].PC)
	}
	for i := 40; i < total; i++ {
		if !la.pop(&in) || in.PC != instrs[i].PC {
			t.Fatalf("post-refill pop %d: PC %#x, want %#x", i, in.PC, instrs[i].PC)
		}
	}
	if la.pop(&in) {
		t.Fatal("pop past EOF returned true")
	}
}

// TestLookaheadBatchMatchesDirect is the ingestion equivalence property:
// feeding the lookahead through the decode-ahead batch pipeline must
// yield the identical instruction sequence as pulling the same generator
// directly via Stream.Next — across several workloads and both SMT
// generator families.
func TestLookaheadBatchMatchesDirect(t *testing.T) {
	cat := workload.NewCatalog(2, 2)
	for _, name := range []string{"srv_000", "srv_001", "spec_000", "spec_001"} {
		spec, err := cat.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		const n = 30_000
		direct := spec.NewStream()
		p := workload.Prefetch(spec.NewStream())
		defer p.Close()
		la := newLookahead(p, 384)

		var want, got workload.Instr
		for i := 0; i < n; i++ {
			if !direct.Next(&want) {
				t.Fatalf("%s: direct stream ended at %d", name, i)
			}
			if !la.pop(&got) {
				t.Fatalf("%s: batch-fed lookahead ended at %d", name, i)
			}
			if got != want {
				t.Fatalf("%s: instruction %d diverged: batch %+v, direct %+v", name, i, got, want)
			}
		}
	}
}
