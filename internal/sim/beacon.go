package sim

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/audit"
	"itpsim/internal/metrics"
	"itpsim/internal/tlb"
)

// Beacon is one deterministic state fingerprint, emitted every beacon
// interval of retired instructions. Hash folds the machine's complete
// architectural state at the boundary; Chain folds every beacon emitted
// so far, so two runs are provably identical up to a boundary iff their
// chains match there — the equivalence oracle for resumed, re-ingested,
// and future parallel-shard runs.
type Beacon struct {
	Seq     uint64     `json:"seq"`
	Retired arch.Instr `json:"retired"`
	Cycle   arch.Cycle `json:"cycle"`
	Hash    uint64     `json:"hash"`
	Chain   uint64     `json:"chain"`
}

// String formats the beacon compactly for logs and diagnostics.
func (b Beacon) String() string {
	return fmt.Sprintf("beacon{seq=%d retired=%d hash=%016x chain=%016x}", b.Seq, b.Retired, b.Hash, b.Chain)
}

// beaconRingSize bounds the recent-beacon history kept for diagnostics.
const beaconRingSize = 64

// beaconLog is the machine's beacon emission state: the boundary
// schedule, the running chain, a fixed recent-history ring (zero
// allocations at steady state), and an optional sink for callers that
// want the full stream.
type beaconLog struct {
	interval arch.Instr
	next     arch.Instr
	seq      uint64
	chain    arch.StateHash
	ring     [beaconRingSize]Beacon
	sink     func(Beacon)
}

// EnableBeacons arms deterministic state-beacon emission every interval
// retired instructions (counted across threads, like the metrics
// window). interval 0 aligns with the attached metrics window when one
// exists, falling back to metrics.DefaultWindow. Must be called on a
// fresh machine before its first Run.
func (m *Machine) EnableBeacons(interval uint64) {
	iv := arch.Instr(interval)
	if iv == 0 {
		if m.met != nil {
			iv = m.met.windows.Size()
		} else {
			iv = metrics.DefaultWindow
		}
	}
	m.beacons = &beaconLog{interval: iv, next: iv, chain: arch.NewStateHash()}
}

// SetBeaconSink streams every emitted beacon to fn (called from the
// simulation goroutine). Tests use it to capture full streams; leave it
// unset for an allocation-free steady state.
func (m *Machine) SetBeaconSink(fn func(Beacon)) {
	if m.beacons == nil {
		m.EnableBeacons(0)
	}
	m.beacons.sink = fn
}

// BeaconInterval returns the armed emission interval (0 = beacons off).
func (m *Machine) BeaconInterval() uint64 {
	if m.beacons == nil {
		return 0
	}
	return uint64(m.beacons.interval)
}

// BeaconChain returns the running chain fold and how many beacons it
// covers. Two runs with equal (chain, count) retired through identical
// architectural states at every beacon boundary.
func (m *Machine) BeaconChain() (chain uint64, count uint64) {
	if m.beacons == nil {
		return 0, 0
	}
	return m.beacons.chain.Sum(), m.beacons.seq
}

// RecentBeacons returns up to n of the most recently emitted beacons,
// oldest first (diagnostic aid; the full stream goes to the sink).
func (m *Machine) RecentBeacons(n int) []Beacon {
	if m.beacons == nil || m.beacons.seq == 0 {
		return nil
	}
	have := m.beacons.seq
	if uint64(n) > have {
		n = int(have)
	}
	if n > beaconRingSize {
		n = beaconRingSize
	}
	out := make([]Beacon, n)
	for i := range out {
		seq := have - uint64(n-i)
		out[i] = m.beacons.ring[seq%beaconRingSize]
	}
	return out
}

// emitBeacon folds the machine's architectural state into one beacon at
// the current retire boundary. Runs on the simulation goroutine only; it
// allocates nothing (fixed ring, in-place fold).
func (m *Machine) emitBeacon(retired arch.Instr) {
	bl := m.beacons
	h := arch.NewStateHash()
	m.hashState(&h)
	bl.chain.Word(h.Sum())
	bl.chain.Word(uint64(retired))
	b := Beacon{
		Seq:     bl.seq,
		Retired: retired,
		Cycle:   m.maxRetireCycle,
		Hash:    h.Sum(),
		Chain:   bl.chain.Sum(),
	}
	bl.ring[bl.seq%beaconRingSize] = b
	bl.seq++
	bl.next += bl.interval
	if bl.sink != nil {
		bl.sink(b)
	}
}

// hashState folds every architectural structure in a fixed order: per
// core its branch-predictor state and pipeline contexts, then the shared
// STLB MSHRs, the first-level TLBs, the shared STLB, the private L1s,
// the shared caches, the page walker, DRAM timing state, and the
// adaptive controller. Policy-private heuristic tables (SHiP counters,
// CHiRP confidence, ...) are observed through their effects on the
// hashed tag arrays rather than folded directly. For a 1-core machine
// this fold order is exactly the historical serial one, which keeps
// single-core beacon chains bit-identical across the CMP refactor.
func (m *Machine) hashState(h *arch.StateHash) {
	for _, c := range m.cores {
		h.Word(c.bpRNG)
		if c.perceptron != nil {
			c.perceptron.HashState(h)
		}
		for _, t := range c.threads {
			h.Word(uint64(t.id))
			h.Word(t.retired)
			h.Word(t.fetchCycle)
			h.Word(t.fetchReady)
			h.Word(uint64(t.fetchBlock))
			h.Bool(t.refetch)
			h.Word(uint64(t.fetchSub))
			h.Word(uint64(t.fdipCursor))
			h.Word(uint64(t.fdipBlock))
			for _, rt := range t.robRing {
				h.Word(rt)
			}
			h.Word(uint64(t.robPos))
			for _, dt := range t.ftqRing {
				h.Word(dt)
			}
			h.Word(uint64(t.ftqPos))
			h.Word(t.lastRetire)
			h.Word(uint64(t.retireSub))
			h.Word(t.lastLoadDone)
			h.Bool(t.done)
		}
	}
	for i := range m.stlbMSHRs {
		e := &m.stlbMSHRs[i]
		h.Bool(e.valid)
		h.Word(e.vpn)
		h.Word(uint64(e.thread))
		h.Word(uint64(e.class))
		h.Word(e.readyAt)
		h.Word(e.ppn)
		h.Word(uint64(e.bits))
	}
	for _, c := range m.cores {
		c.itlb.HashState(h)
		c.dtlb.HashState(h)
	}
	if sh, ok := m.stlb.(arch.StateHasher); ok {
		sh.HashState(h)
	}
	for _, c := range m.cores {
		c.l1i.HashState(h)
		c.l1d.HashState(h)
	}
	m.l2c.HashState(h)
	m.llc.HashState(h)
	m.walker.HashState(h)
	m.mem.HashState(h)
	if m.ctrl != nil {
		m.ctrl.HashState(h)
	}
}

// EnableAudit arms periodic structural audits every interval retired
// instructions: each registered component checks its own invariants (LRU
// stack permutations, MSHR leaks, ring bounds, TLB↔page-table coherence,
// protection-bit consistency) and a violation ends the run with a
// structured *audit.Error instead of producing silently corrupt
// statistics. Must be called on a fresh machine before its first Run.
func (m *Machine) EnableAudit(interval uint64) {
	if interval == 0 {
		interval = defaultAuditInterval
	}
	a := &audit.Auditor{}
	a.Register("machine", machineCheck{m})
	for _, c := range m.cores {
		a.Register(m.coreComponent(c.id, "itlb"), c.itlb)
		a.Register(m.coreComponent(c.id, "dtlb"), c.dtlb)
	}
	if c, ok := m.stlb.(audit.Checkable); ok {
		a.Register("stlb", c)
	}
	for _, c := range m.cores {
		a.Register(m.coreComponent(c.id, "l1i"), c.l1i)
		a.Register(m.coreComponent(c.id, "l1d"), c.l1d)
	}
	a.Register("l2c", m.l2c)
	a.Register("llc", m.llc)
	a.Register("ptw", m.walker)
	if m.ctrl != nil {
		a.Register("xptp-controller", m.ctrl)
	}
	m.auditor = a
	m.auditEvery = arch.Instr(interval)
	m.auditNext = m.auditEvery
}

// defaultAuditInterval trades audit cost (a full structural scan) against
// detection latency: one pass per 64K retired instructions.
const defaultAuditInterval = 1 << 16

// AuditNow runs one audit pass immediately and returns its verdict. It
// reads every structure without synchronisation, so it must only be
// called when no run is in flight — from the simulation goroutine, or
// post-mortem after a watchdog kill has stopped the run.
func (m *Machine) AuditNow() error {
	if m.auditor == nil {
		m.EnableAudit(0)
	}
	return m.auditor.Run(m.retiredLocal, uint64(m.maxRetireCycle))
}

// runAudit executes one periodic in-sim audit pass at a retire boundary,
// publishing the verdict for Snapshot readers. A violation latches the
// structured error and interrupts the run at the next boundary.
func (m *Machine) runAudit(retired arch.Instr) {
	m.auditNext += m.auditEvery
	err := m.auditor.Run(uint64(retired), uint64(m.maxRetireCycle))
	var verdict string
	if err != nil {
		verdict = err.Error()
		if m.auditErr == nil {
			m.auditErr = err
		}
		m.interrupted.Store(true)
	} else {
		verdict = fmt.Sprintf("audit: clean at retired=%d", retired)
	}
	m.auditVerdict.Store(&verdict)
}

// machineCheck audits the machine's own structures: the per-thread
// pipeline rings, the lookahead ring, the STLB MSHR file, and TLB↔page-
// table coherence (every cached translation must agree with the page
// table that produced it).
type machineCheck struct{ m *Machine }

// AuditState implements audit.Checkable.
func (mc machineCheck) AuditState(r *audit.Report) {
	m := mc.m
	for _, t := range m.threads {
		if t.robPos < 0 || t.robPos >= len(t.robRing) {
			r.Violatef("ring-bounds", "t%d: robPos %d outside ROB ring of %d", t.id, t.robPos, len(t.robRing))
		}
		if t.ftqPos < 0 || t.ftqPos >= len(t.ftqRing) {
			r.Violatef("ring-bounds", "t%d: ftqPos %d outside FTQ ring of %d", t.id, t.ftqPos, len(t.ftqRing))
		}
		if t.fdipCursor < 0 || t.fdipCursor > t.scanBudget {
			r.Violatef("ring-bounds", "t%d: fdipCursor %d outside scan budget %d", t.id, t.fdipCursor, t.scanBudget)
		}
		la := t.la
		if la.head < 0 || la.head >= len(la.buf) || la.head != la.head&la.mask {
			r.Violatef("ring-bounds", "t%d: lookahead head %d outside ring of %d", t.id, la.head, len(la.buf))
		}
		if la.size < 0 || la.size > len(la.buf) {
			r.Violatef("ring-bounds", "t%d: lookahead size %d outside capacity %d", t.id, la.size, len(la.buf))
		}
		if len(la.buf) != la.mask+1 || len(la.buf)&la.mask != 0 {
			r.Violatef("ring-bounds", "t%d: lookahead capacity %d does not match mask %#x", t.id, len(la.buf), la.mask)
		}
	}
	for i := range m.stlbMSHRs {
		e := &m.stlbMSHRs[i]
		if !e.valid || e.readyAt <= r.Now {
			continue
		}
		for j := i + 1; j < len(m.stlbMSHRs); j++ {
			o := &m.stlbMSHRs[j]
			if o.valid && o.readyAt > r.Now && o.vpn == e.vpn && o.thread == e.thread {
				r.Violatef("mshr-leak", "stlb mshrs %d and %d both walk vpn %#x in flight", i, j, e.vpn)
			}
		}
	}
	m.visitTLBs(func(name string, e *tlb.Entry) {
		tr := m.pts[e.Thread].Translate(arch.Addr(e.VPN) << e.PageBits)
		if tr.PPN != e.PPN || tr.PageBits != e.PageBits {
			r.Violatef("pagetable-coherence",
				"%s entry vpn=%#x/%d t%d: cached ppn %#x, page table says ppn %#x size %d",
				name, e.VPN, e.PageBits, e.Thread, e.PPN, tr.PPN, tr.PageBits)
		}
	})
}

// coreComponent names a per-core component for audit registration and
// diagnostics: the historical bare name on a single-core machine, a
// core-prefixed one on a CMP. Cold path only (registration, audits).
func (m *Machine) coreComponent(core uint8, base string) string {
	if len(m.cores) == 1 {
		return base
	}
	return fmt.Sprintf("core%d.%s", core, base)
}

// visitTLBs walks every valid entry of every TLB level, tagged with the
// level name, in a fixed order (cores ascending, then the shared STLB).
func (m *Machine) visitTLBs(fn func(name string, e *tlb.Entry)) {
	for _, c := range m.cores {
		in, dn := m.coreComponent(c.id, "itlb"), m.coreComponent(c.id, "dtlb")
		c.itlb.VisitEntries(func(e *tlb.Entry) { fn(in, e) })
		c.dtlb.VisitEntries(func(e *tlb.Entry) { fn(dn, e) })
	}
	type visitor interface{ VisitEntries(func(e *tlb.Entry)) }
	if v, ok := m.stlb.(visitor); ok {
		v.VisitEntries(func(e *tlb.Entry) { fn("stlb", e) })
	}
}
