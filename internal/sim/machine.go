// Package sim is the trace-driven machine model: a decoupled front-end
// (FTQ + FDIP-style instruction prefetch) whose stalls — crucially,
// instruction address translation misses — serialise into fetch, an
// out-of-order back-end whose ROB window hides data-miss latency, the
// two-level TLB hierarchy, the page-table walker, three cache levels, and
// DRAM. A machine is an N-core CMP: each core owns private L1I/L1D,
// ITLB/DTLB, a branch predictor, and its own decode-ahead workload
// stream, while the STLB, L2C, LLC, page-table walker (with its PSCs),
// and DRAM are shared contended resources. The classic single-core
// machine (Cores <= 1) additionally supports two SMT threads on core 0
// (Section 5.1's extension: fetch alternates threads every cycle and all
// structures are shared).
package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"itpsim/internal/arch"
	"itpsim/internal/audit"
	"itpsim/internal/branch"
	"itpsim/internal/cache"
	"itpsim/internal/config"
	"itpsim/internal/core"
	"itpsim/internal/dram"
	"itpsim/internal/metrics"
	"itpsim/internal/prefetch"
	"itpsim/internal/ptw"
	"itpsim/internal/replacement"
	"itpsim/internal/stats"
	"itpsim/internal/tlb"
	"itpsim/internal/vm"
	"itpsim/internal/workload"
)

// coreState is one core's private microarchitecture: first-level TLBs,
// L1 caches, branch-predictor state, and the hardware threads scheduled
// on it (one per core in CMP mode; up to two on core 0 under SMT).
type coreState struct {
	id         uint8
	itlb, dtlb *tlb.TLB
	l1i, l1d   *cache.Cache

	bpRNG uint64
	// perceptron is non-nil when the config selects the real
	// hashed-perceptron direction predictor.
	perceptron *branch.Perceptron

	// threads is this core's slice of the per-run pipeline state, only
	// touched by the run loop.
	threads []*threadCtx
}

// Machine is a CMP — N cores plus the shared memory system.
type Machine struct {
	cfg   config.SystemConfig
	Stats *stats.Sim

	// cores holds the per-core private structures; everything below is
	// shared by all cores and contended for real (MSHR pressure, set
	// conflicts, DRAM bank state).
	cores []*coreState

	stlb     tlb.Store
	l2c, llc *cache.Cache
	mem      *dram.DRAM
	walker   *ptw.Walker
	// pts is one page table per tenant (per hardware thread); they share
	// one physical allocator, so tenants contend for — and interleave
	// in — physical memory exactly as co-located processes do.
	pts []*vm.PageTable

	ctrl  *core.Controller
	chirp *tlb.CHiRP

	// stlbMSHRs track in-flight page walks so concurrent misses to the
	// same page merge instead of walking twice; each entry carries the
	// Type (class) bit of Figure 7. The file is shared CMP-wide: under
	// co-location, one tenant's walk burst can exhaust it and delay
	// every other tenant's walks.
	stlbMSHRs []stlbMSHREntry

	// frontBound/backBound count dispatches limited by fetch vs by the
	// ROB (debug attribution).
	frontBound, backBound uint64

	// retiredLocal is the authoritative retired-instruction counter,
	// owned by the run loop. retiredTotal mirrors it for concurrent
	// readers: the step path publishes in batches (retirePublishMask) and
	// the run loop publishes exactly on entry/exit, so a supervisor's
	// Progress sample is at most a batch stale while a run is in flight
	// and exact once it returns.
	retiredLocal uint64
	retiredTotal atomic.Uint64
	// interrupted requests that the run loop stop at the next instruction
	// boundary; set asynchronously via Interrupt.
	interrupted atomic.Bool
	// diag holds the last diagnostic snapshot published by the run loop
	// itself (so readers never race with the simulation's own structures).
	diag atomic.Pointer[string]
	// threads is the per-run pipeline state, only touched by the run loop.
	threads []*threadCtx

	// met is the observability attachment (nil until InstrumentMetrics);
	// the counters are cached on the machine so the translate and resolve
	// hot paths pay one nil-safe increment, not a struct indirection.
	met                               *machineMetrics
	metSTLBMissInstr, metSTLBMissData *metrics.Counter
	metBranchMispred                  *metrics.Counter
	// maxRetireCycle is the latest retire cycle seen across threads —
	// the cycle clock the windowed sampler stamps windows with. Typed
	// arch.Cycle at this boundary so it cannot be confused with the
	// retired-instruction counters it travels next to.
	maxRetireCycle arch.Cycle

	// acc is the scratch access record the ifetch/dataAccess/fdipPrefetch
	// paths reuse. Access records flow down the hierarchy by pointer and
	// no level or policy retains them past the call, so a single
	// per-machine scratch keeps the hot paths allocation-free (a local
	// passed through the cache.Level interface escapes to the heap on
	// every instruction).
	acc arch.Access

	// funcClock is the functional-warmup clock: WarmFunctional advances
	// it one cycle per consumed instruction so the hierarchy's timing
	// state (MSHR readyAt, DRAM bank state) stays causally ordered, and
	// the detailed run that follows starts its threads at this cycle.
	// Zero on every machine that never warms functionally, which keeps
	// all pre-existing paths bit-identical. warmBlock/warmHasBlock
	// dedupe per-block ifetches during functional warmup, mirroring the
	// detailed front end's block-change fetch.
	funcClock    uint64
	warmBlock    arch.Addr
	warmHasBlock bool

	// beacons is the deterministic state-beacon log (nil = beacons off);
	// owned by the run loop, see beacon.go.
	beacons *beaconLog
	// auditor runs the periodic structural invariant checks (nil = audits
	// off). auditNext/auditEvery schedule passes on retire boundaries;
	// auditErr latches the first violation verdict for RunWarmup to
	// return; auditVerdict publishes the latest verdict for Snapshot
	// readers on other goroutines.
	auditor      *audit.Auditor
	auditEvery   arch.Instr
	auditNext    arch.Instr
	auditErr     error
	auditVerdict atomic.Pointer[string]
}

// BoundSplit reports the fraction of dispatches limited by the front end.
func (m *Machine) BoundSplit() (front, back uint64) { return m.frontBound, m.backBound }

// stlbMSHREntry is one in-flight STLB miss.
type stlbMSHREntry struct {
	vpn     uint64 // 4KB-granular VPN (2MB walks merge via their first 4KB probe)
	thread  uint8
	class   arch.Class
	valid   bool
	readyAt uint64
	ppn     uint64
	bits    uint8
}

// statsDRAM adapts the DRAM model to also count accesses into stats.Sim.
type statsDRAM struct {
	d   *dram.DRAM
	sim *stats.Sim
}

//itp:hotpath
func (s *statsDRAM) Access(now uint64, acc *arch.Access) uint64 {
	s.sim.DRAMAccesses++
	return s.d.Access(now, acc)
}

// NewMachine builds a machine from the configuration, resolving the
// policy names of Table 2. Recognised STLB policies: lru, itp, chirp,
// problru, random. L2C policies: the replacement baselines plus xptp
// (adaptive per Section 4.3.1; set XPTP.T1 <= 0 for always-on). LLC
// policies: the replacement baselines.
func NewMachine(cfg config.SystemConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nCores := cfg.Cores
	if nCores < 1 {
		nCores = 1
	}
	// One tenant per core; the single-core machine keeps two tenant
	// slots so the SMT mode has one per thread. The tenant count fixes
	// the page-table set and the per-tenant stats views up front (the
	// stats slice is pointed into below and must never reallocate).
	nTenants := nCores
	if nTenants < 2 {
		nTenants = 2
	}
	m := &Machine{cfg: cfg, Stats: stats.NewSim()}
	m.Stats.EnsureTenants(nTenants)

	// Physical memory: sized generously for the workload footprints. The
	// allocator is shared, so page-table creation order is part of the
	// deterministic contract: tenant i's table is always built i-th.
	alloc := vm.NewPhysAlloc(64 << 30)
	m.pts = make([]*vm.PageTable, nTenants)
	for i := range m.pts {
		m.pts[i] = vm.NewPageTable(alloc, cfg.HugePageFraction, uint64(i+1))
	}

	// Memory hierarchy, bottom up.
	m.mem = dram.New(cfg.DRAM)
	memLevel := &statsDRAM{d: m.mem, sim: m.Stats}

	llcPol, err := replacement.FromName(cfg.LLCPolicy, cfg.LLC.Sets, cfg.LLC.Ways, 0xcafe)
	if err != nil {
		return nil, fmt.Errorf("sim: LLC policy: %w", err)
	}
	m.llc = cache.New("LLC", cfg.LLC, llcPol, memLevel, &m.Stats.LLC)
	m.llc.SetWriteback(m.mem.Writeback)

	var l2cPol replacement.Policy
	switch cfg.L2CPolicy {
	case "xptp":
		m.ctrl = core.NewController(cfg.XPTP)
		l2cPol = core.NewAdaptiveXPTP(cfg.XPTP, m.ctrl.Enabled)
	case "xptp-static":
		l2cPol = core.NewXPTP(cfg.XPTP)
	case "xptp-emissary":
		// The Section 7 future-work combination: xPTP's data-PTE
		// protection plus Emissary's critical-code protection.
		l2cPol = replacement.NewXPTPEmissary(cfg.XPTP.K)
	default:
		l2cPol, err = replacement.FromName(cfg.L2CPolicy, cfg.L2C.Sets, cfg.L2C.Ways, 0xbeef)
		if err != nil {
			return nil, fmt.Errorf("sim: L2C policy: %w", err)
		}
	}
	m.l2c = cache.New("L2C", cfg.L2C, l2cPol, m.llc, &m.Stats.L2C)
	m.l2c.SetWriteback(m.mem.Writeback)
	if cfg.L2CStride {
		m.l2c.SetPrefetcher(prefetch.NewStride(1024, 2))
	}

	newSTLBPolicy := func() (tlb.Policy, error) {
		switch cfg.STLBPolicy {
		case "lru":
			return tlb.NewLRU(), nil
		case "itp":
			return core.NewITP(cfg.ITP), nil
		case "chirp":
			c := tlb.NewCHiRP(cfg.STLB.Ways)
			m.chirp = c
			return c, nil
		case "problru":
			return core.NewProbLRU(cfg.ProbKeepInstr, 0x5117), nil
		default:
			return nil, fmt.Errorf("sim: unknown STLB policy %q", cfg.STLBPolicy)
		}
	}
	if cfg.SplitSTLB {
		sets := cfg.STLB.Sets / 2
		pi, err := newSTLBPolicy()
		if err != nil {
			return nil, err
		}
		pd, err := newSTLBPolicy()
		if err != nil {
			return nil, err
		}
		m.stlb = tlb.NewSplit(sets, cfg.STLB.Ways, pi, pd)
	} else {
		p, err := newSTLBPolicy()
		if err != nil {
			return nil, err
		}
		m.stlb = tlb.New("STLB", cfg.STLB.Sets, cfg.STLB.Ways, p)
	}

	// Page walks enter the hierarchy at the L2C.
	m.walker = ptw.New(&cfg, m.l2c, m.Stats)
	m.stlbMSHRs = make([]stlbMSHREntry, cfg.STLB.MSHRs)

	// Per-core private structures. L1 stats sinks point at the per-core
	// views; the machine-level aggregates are recomputed as their exact
	// sums at every run end (stats.Sim.AggregateTenants).
	m.cores = make([]*coreState, nCores)
	for i := range m.cores {
		ten := &m.Stats.Cores[i]
		c := &coreState{id: uint8(i), bpRNG: bpSeed(i)}
		c.l1i = cache.New("L1I", cfg.L1I, replacement.NewLRU(), m.l2c, &ten.L1I)
		c.l1d = cache.New("L1D", cfg.L1D, replacement.NewLRU(), m.l2c, &ten.L1D)
		c.l1d.SetWriteback(m.mem.Writeback)
		if cfg.L1DNextLine {
			c.l1d.SetPrefetcher(prefetch.NewNextLine())
		}
		c.itlb = tlb.New("ITLB", cfg.ITLB.Sets, cfg.ITLB.Ways, tlb.NewLRU())
		c.dtlb = tlb.New("DTLB", cfg.DTLB.Sets, cfg.DTLB.Ways, tlb.NewLRU())
		if cfg.BranchPredictor == "perceptron" {
			c.perceptron = branch.NewPerceptron()
		}
		m.cores[i] = c
	}
	return m, nil
}

// bpSeed derives core i's branch-predictor RNG seed. Core 0 keeps the
// historical seed so single-core runs stay bit-identical; later cores
// decorrelate via golden-ratio stepping (never zero for i <= MaxCores,
// which xorshift requires).
func bpSeed(i int) uint64 {
	return 0xabcdef12345 + uint64(i)*0x9e3779b97f4a7c15
}

// Cores reports the machine's configured core count.
func (m *Machine) Cores() int { return len(m.cores) }

// Config returns the machine's configuration.
func (m *Machine) Config() config.SystemConfig { return m.cfg }

// Controller returns the adaptive xPTP controller, if any.
func (m *Machine) Controller() *core.Controller { return m.ctrl }

// predictBranch returns true when the branch predictor is correct,
// approximating the hashed-perceptron predictor with its measured
// accuracy.
//
//itp:hotpath
func (m *Machine) predictBranch(c *coreState) bool {
	c.bpRNG ^= c.bpRNG << 13
	c.bpRNG ^= c.bpRNG >> 7
	c.bpRNG ^= c.bpRNG << 17
	return float64(c.bpRNG>>11)/float64(1<<53) < m.cfg.BranchPredAccuracy
}

// translate resolves va through the TLB hierarchy. It returns the
// physical address, the cycle at which the translation is available, and
// whether the STLB missed (the T-DRRIP demand bit). First-level TLB hits
// are free (VIPT lookup overlaps the cache index).
//
//itp:hotpath
func (m *Machine) translate(c *coreState, now uint64, va arch.Addr, class arch.Class, pc arch.Addr, thread uint8) (arch.Addr, uint64, bool) {
	// ten is the per-tenant stats view; TLB traffic is attributed here,
	// at the one site that knows the requesting thread, and the
	// aggregates are recomputed as tenant sums at run end.
	ten := &m.Stats.Cores[thread]
	first := c.dtlb
	firstStats := &ten.DTLB
	bucket := stats.BData
	if class == arch.InstrClass {
		first = c.itlb
		firstStats = &ten.ITLB
		bucket = stats.BInstr
	}

	if ppn, bits, hit := first.Lookup(va, pc, class, thread); hit {
		firstStats.Record(bucket, true)
		return physFrom(ppn, bits, va), now, false
	}
	firstStats.Record(bucket, false)

	// STLB access.
	stlbDone := now + m.cfg.STLB.Latency
	if ppn, bits, hit := m.stlb.Lookup(va, pc, class, thread); hit {
		ten.STLB.Record(bucket, true)
		first.Insert(va, ppn, bits, class, pc, thread)
		return physFrom(ppn, bits, va), stlbDone, false
	}
	ten.STLB.Record(bucket, false)
	m.recordSTLBDemandMiss(bucket)
	if m.ctrl != nil {
		m.ctrl.OnSTLBMiss()
	}

	// STLB MSHR: a walk already in flight for this page absorbs the
	// miss — the requester waits for that walk instead of starting a new
	// one (Figure 7's MSHR with its Type bit).
	vpn := uint64(va >> arch.PageBits4K)
	for i := range m.stlbMSHRs {
		e := &m.stlbMSHRs[i]
		if e.valid && e.vpn == vpn && e.thread == thread && e.readyAt > stlbDone {
			ten.STLB.RecordMissLatency(e.readyAt - now)
			return physFrom(e.ppn, e.bits, va), e.readyAt, true
		}
	}
	// Allocate an MSHR entry; if all are busy the walk waits for the
	// earliest to complete.
	var entry *stlbMSHREntry
	start := stlbDone
	earliest := ^uint64(0)
	for i := range m.stlbMSHRs {
		e := &m.stlbMSHRs[i]
		if !e.valid || e.readyAt <= stlbDone {
			entry = e
			earliest = stlbDone
			break
		}
		if e.readyAt < earliest {
			entry, earliest = e, e.readyAt
		}
	}
	if earliest > start {
		start = earliest
	}

	// Page walk.
	tr := m.pts[thread].Translate(va)
	done, _ := m.walker.Walk(start, va, &tr, class, pc, thread)
	*entry = stlbMSHREntry{
		vpn: vpn, thread: thread, class: class, valid: true,
		readyAt: done, ppn: tr.PPN, bits: tr.PageBits,
	}
	ten.STLB.RecordMissLatency(done - now)
	m.stlb.Insert(va, tr.PPN, tr.PageBits, class, pc, thread)
	first.Insert(va, tr.PPN, tr.PageBits, class, pc, thread)

	// Future-work extension (Section 7): sequential instruction
	// translation prefetch. The walk for the next code page proceeds off
	// the critical path; iTP's insertion policy prioritises the
	// prefetched entry like any other instruction translation.
	if m.cfg.STLBPrefetch && class == arch.InstrClass && tr.PageBits == arch.PageBits4K {
		nextVA := (va + arch.PageSize4K) &^ (arch.PageSize4K - 1)
		if _, _, hit := m.stlb.Lookup(nextVA, pc, class, thread); !hit {
			ptr := m.pts[thread].Translate(nextVA)
			m.walker.Walk(done, nextVA, &ptr, class, pc, thread)
			m.stlb.Insert(nextVA, ptr.PPN, ptr.PageBits, class, pc, thread)
			m.Stats.STLBPrefetches++
		}
	}
	return tr.PhysAddr(va), done, true
}

//itp:hotpath
func physFrom(ppn uint64, bits uint8, va arch.Addr) arch.Addr {
	mask := (arch.Addr(1) << bits) - 1
	return arch.Addr(ppn)<<bits | (va & mask)
}

// debugIfetchPenalty inflates instruction-translation latency (test hook).
var debugIfetchPenalty uint64 = 1

// ifetch performs the translation + L1I access for one instruction block
// and charges instruction-translation stall cycles (the Figure 1 metric).
//
//itp:hotpath
func (m *Machine) ifetch(c *coreState, now uint64, pc arch.Addr, thread uint8) uint64 {
	pa, tdone, stlbMiss := m.translate(c, now, pc, arch.InstrClass, pc, thread)
	if debugIfetchPenalty > 1 {
		tdone = now + (tdone-now)*debugIfetchPenalty
	}
	m.Stats.Cores[thread].InstrTransCycles += arch.Cycle(tdone - now)
	acc := &m.acc
	*acc = arch.Access{Addr: pa, PC: pc, Kind: arch.IFetch, STLBMiss: stlbMiss, Thread: thread}
	return c.l1i.Access(tdone, acc)
}

// dataAccess performs translation + L1D access for a load or store.
//
//itp:hotpath
func (m *Machine) dataAccess(c *coreState, now uint64, va, pc arch.Addr, isStore bool, thread uint8) uint64 {
	pa, tdone, stlbMiss := m.translate(c, now, va, arch.DataClass, pc, thread)
	m.Stats.Cores[thread].DataTransCycles += arch.Cycle(tdone - now)
	kind := arch.Load
	if isStore {
		kind = arch.Store
	}
	acc := &m.acc
	*acc = arch.Access{Addr: pa, PC: pc, Kind: kind, STLBMiss: stlbMiss, Thread: thread}
	return c.l1d.Access(tdone, acc)
}

// fdipPrefetch probes the ITLB for the block's translation and, when it
// is present, prefetches the block into the L1I — the decoupled
// front-end runs ahead of fetch but cannot run past an unknown
// translation, which is exactly why instruction STLB misses hurt.
//
//itp:hotpath
func (m *Machine) fdipPrefetch(c *coreState, now uint64, pc arch.Addr, thread uint8) bool {
	ppn, bits, _, ok := c.itlb.Peek(pc, thread)
	if !ok {
		return false
	}
	pa := physFrom(ppn, bits, pc)
	if c.l1i.Contains(pa, thread) {
		return true
	}
	acc := &m.acc
	*acc = arch.Access{Addr: pa, PC: pc, Kind: arch.Prefetch, Thread: thread}
	c.l1i.Access(now, acc)
	return true
}

// RunResult summarises one simulation.
type RunResult struct {
	Stats *stats.Sim
	IPC   float64
}

// ErrInterrupted is returned (wrapped) when a run was stopped early via
// Interrupt — e.g. by a supervising harness whose watchdog or deadline
// fired. The RunResult still carries the statistics collected so far.
var ErrInterrupted = errors.New("sim: run interrupted")

// errStream is implemented by streams that can end abnormally
// (trace.Reader, the fault-injection wrappers); a non-nil Err after the
// run surfaces as a run error instead of a silently truncated simulation.
type errStream interface{ Err() error }

// Run simulates instrPerThread instructions on each stream (one per
// core; the single-core machine also accepts two SMT streams) and
// returns the collected statistics.
func (m *Machine) Run(streams []workload.Stream, instrPerThread uint64) (RunResult, error) {
	return m.RunWarmup(streams, 0, instrPerThread)
}

// RunWarmup simulates warmup instructions per thread to warm the caches,
// TLBs, and page tables, resets the statistics, then measures over the
// next measure instructions per thread — the paper's 50M-warmup /
// 100M-measure methodology at configurable scale.
//
// It returns an error (alongside the partial statistics) when the stream
// count is invalid, when the run is interrupted, or when a stream reports
// a terminal ingestion error.
func (m *Machine) RunWarmup(streams []workload.Stream, warmup, measure uint64) (RunResult, error) {
	nCores := len(m.cores)
	if nCores > 1 {
		if len(streams) != nCores {
			return RunResult{}, fmt.Errorf("sim: Run needs exactly one stream per core (%d cores configured), got %d streams", nCores, len(streams))
		}
	} else if len(streams) == 0 || len(streams) > 2 {
		return RunResult{}, fmt.Errorf("sim: Run needs 1 or 2 streams on a 1-core machine (2 = SMT), got %d streams", len(streams))
	}
	m.interrupted.Store(false)
	m.auditErr = nil
	threads := make([]*threadCtx, len(streams))
	for i := range streams {
		c := m.cores[0]
		if nCores > 1 {
			c = m.cores[i]
		}
		threads[i] = newThreadCtx(c, uint8(i), streams[i], &m.cfg, 1, warmup+measure, m.funcClock)
		c.threads = append(c.threads, threads[i])
	}

	m.threads = threads
	defer func() {
		m.threads = nil
		for _, c := range m.cores {
			c.threads = nil
		}
	}()
	m.publishDiag()

	// setFetchSteps grants each thread its share of its core's fetch
	// bandwidth: under SMT fetch alternates the core's *live* threads
	// every cycle, so when one drains (done, or past this phase's
	// boundary) the survivor gets the full width back instead of keeping
	// fetchStep=2 against a dead peer. Single-thread cores always run at
	// full bandwidth and are skipped.
	setFetchSteps := func(until uint64) {
		for _, c := range m.cores {
			if len(c.threads) < 2 {
				continue
			}
			live := uint64(0)
			for _, th := range c.threads {
				if !th.done && th.retired < until {
					live++
				}
			}
			if live == 0 {
				live = 1
			}
			for _, th := range c.threads {
				th.fetchStep = live
			}
		}
	}

	run := func(until uint64) {
		setFetchSteps(until)
		// Single-thread fast path: no per-step thread selection scan.
		if len(threads) == 1 {
			t := threads[0]
			for !t.done && t.retired < until {
				if m.interrupted.Load() {
					return
				}
				m.step(t)
			}
			return
		}
		for {
			if m.interrupted.Load() {
				return
			}
			// Advance the thread that is earliest in simulated time to
			// keep shared-structure state approximately time-ordered.
			var t *threadCtx
			for _, th := range threads {
				if th.done || th.retired >= until {
					continue
				}
				if t == nil || th.fetchCycle < t.fetchCycle {
					t = th
				}
			}
			if t == nil {
				return
			}
			m.step(t)
			if t.done || t.retired >= until {
				// t left the live set: re-split its core's bandwidth.
				setFetchSteps(until)
			}
		}
	}

	// The cycle baseline starts at the functional clock (0 on machines
	// that never warmed functionally) so a measure-only run after
	// WarmFunctional does not bill the functional cycles as measured.
	baseline := m.funcClock
	if warmup > 0 {
		run(warmup)
		// Reset the measurement state, keeping all microarchitectural
		// state warm.
		m.Stats.ResetMeasured()
		for _, th := range threads {
			th.retiredAtReset = th.retired
			th.lastRetireAtReset = th.lastRetire
			if th.lastRetire > baseline {
				baseline = th.lastRetire
			}
		}
	}
	run(warmup + measure)
	m.retiredTotal.Store(m.retiredLocal) // exact progress at run end

	var last uint64
	for _, th := range threads {
		m.Stats.Instructions[th.id] = th.retired - th.retiredAtReset
		ten := &m.Stats.Cores[th.id]
		ten.Instructions = th.retired - th.retiredAtReset
		ten.Cycles = arch.Cycle(th.lastRetire - th.lastRetireAtReset)
		if th.lastRetire > last {
			last = th.lastRetire
		}
	}
	m.Stats.Cycles = arch.Cycle(last - baseline)
	m.Stats.AggregateTenants()
	if m.ctrl != nil {
		m.Stats.XPTPEnabledWindows = m.ctrl.EnabledWindows
		m.Stats.XPTPDisabledWindows = m.ctrl.DisabledWindows
	}
	m.publishDiag()
	res := RunResult{Stats: m.Stats, IPC: m.Stats.IPC()}

	var errs []error
	switch {
	case m.auditErr != nil:
		// An audit violation interrupted the run from inside; surface the
		// structured verdict, not the generic interrupt.
		errs = append(errs, m.auditErr)
	case m.interrupted.Load():
		errs = append(errs, ErrInterrupted)
	}
	for i, s := range streams {
		if es, ok := s.(errStream); ok {
			if err := es.Err(); err != nil {
				errs = append(errs, fmt.Errorf("sim: stream %d: %w", i, err))
			}
		}
	}
	return res, errors.Join(errs...)
}

// Interrupt asks a running simulation to stop at the next instruction
// boundary. Safe to call from any goroutine; the interrupted RunWarmup
// returns ErrInterrupted together with the statistics collected so far.
func (m *Machine) Interrupt() { m.interrupted.Store(true) }

// Progress returns the machine-wide retired-instruction count, updated
// continuously while a run is in flight. It is the forward-progress
// counter a supervisor's watchdog samples: a machine that stops retiring
// (e.g. its trace source hung) stops advancing this counter.
func (m *Machine) Progress() uint64 { return m.retiredTotal.Load() }

// diagPublishMask throttles snapshot publication to every 64K retires.
const diagPublishMask = 1<<16 - 1

// publishDiag formats a diagnostic snapshot of the machine's occupancy
// state and publishes it for Snapshot readers. It must only be called
// from the simulation goroutine: it reads cache/TLB internals directly,
// and the atomic pointer store is what makes the result safe to read
// from a supervisor thread.
func (m *Machine) publishDiag() {
	m.retiredTotal.Store(m.retiredLocal)
	var b strings.Builder
	fmt.Fprintf(&b, "retired=%d", m.retiredLocal)
	for _, th := range m.threads {
		fmt.Fprintf(&b, " t%d{retired=%d fetchCycle=%d lastRetire=%d done=%v}",
			th.id, th.retired, th.fetchCycle, th.lastRetire, th.done)
	}
	mshrs := 0
	for i := range m.stlbMSHRs {
		if m.stlbMSHRs[i].valid {
			mshrs++
		}
	}
	fmt.Fprintf(&b, " stlb-mshrs=%d/%d", mshrs, len(m.stlbMSHRs))
	si, sd := m.STLBOccupancy()
	fmt.Fprintf(&b, " stlb-occ{instr=%d data=%d}", si, sd)
	blocks, pte, dataPTE := m.L2COccupancy()
	fmt.Fprintf(&b, " l2c-occ{blocks=%d pte=%d data-pte=%d}", blocks, pte, dataPTE)
	fmt.Fprintf(&b, " dispatch-bound{front=%d back=%d}", m.frontBound, m.backBound)
	s := b.String()
	m.diag.Store(&s)
}

// Snapshot returns the most recently published diagnostic snapshot —
// MSHR, STLB, and L2C occupancy plus per-thread pipeline state — together
// with the live progress counter. It is safe to call from any goroutine
// while a run is in flight (the harness watchdog calls it when it decides
// to kill a stalled run); the occupancy part may be up to 64K retired
// instructions stale.
func (m *Machine) Snapshot() string {
	snap := "no snapshot published yet"
	if p := m.diag.Load(); p != nil {
		snap = *p
	}
	s := fmt.Sprintf("progress=%d %s", m.retiredTotal.Load(), snap)
	// Append recent window history when the metrics layer is attached so
	// a stall dump shows the phase the machine was in, not just its
	// terminal occupancy state. (m.met is set before Run starts and the
	// sampler is internally synchronised, so this is race-free.)
	if m.met != nil {
		s += " recent-windows: " + m.met.windows.RecentString(5)
	}
	if p := m.auditVerdict.Load(); p != nil {
		s += " " + *p
	}
	return s
}

// SetDebugIfetchPenalty scales instruction-translation latency (test hook).
func SetDebugIfetchPenalty(x uint64) { debugIfetchPenalty = x }

// STLBPolicyName reports the STLB replacement policy in use (debug aid).
func (m *Machine) STLBPolicyName() string {
	if t, ok := m.stlb.(*tlb.TLB); ok {
		return t.Policy().Name()
	}
	return "split"
}

// STLBOccupancy reports valid STLB entries by class (debug aid).
func (m *Machine) STLBOccupancy() (instr, data int) {
	if t, ok := m.stlb.(*tlb.TLB); ok {
		return t.Occupancy()
	}
	return 0, 0
}

// L2COccupancy reports L2C blocks: total valid, PTE, data-PTE (debug aid).
func (m *Machine) L2COccupancy() (blocks, pte, dataPTE int) {
	return m.l2c.Occupancy()
}
