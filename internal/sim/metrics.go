package sim

import (
	"itpsim/internal/arch"
	"itpsim/internal/metrics"
	"itpsim/internal/stats"
	"itpsim/internal/tlb"
)

// machineMetrics is the machine's attachment to the observability layer:
// the registry handles the hot paths increment, the windowed sampler that
// turns them into a per-1000-instruction time series, and the adaptive
// controller's last decision so each window record carries the xPTP
// status bit that governed it.
type machineMetrics struct {
	reg     *metrics.Registry
	windows *metrics.Windows
	// next is the retired-instruction count at which the current window
	// closes; cached here so the per-retire check is one compare.
	next arch.Instr

	// Demand STLB misses by translation class, incremented at exactly
	// the site that feeds the adaptive controller (Machine.translate),
	// so per-window deltas match Controller decisions one for one.
	stlbMissInstr *metrics.Counter
	stlbMissData  *metrics.Counter

	// l2cEvictDataPTE mirrors the L2C's data-PTE eviction counter for
	// per-window annotation.
	l2cEvictDataPTE *metrics.Counter

	// branchMispred counts branch mispredicts, incremented at the one
	// resolve site in the step path; with IPC and the demand-miss
	// counters it completes the per-window phase-feature vector.
	branchMispred *metrics.Counter

	// xptpTransitions counts enable<->disable flips of the adaptive
	// controller; xptpEnabled is its most recent decision.
	xptpTransitions *metrics.Counter
	xptpEnabled     bool

	// annotate decorates each closing window; built once at attach time
	// so the per-window close does not allocate a closure.
	annotate func(*metrics.WindowRecord)
}

// InstrumentMetrics attaches an observability registry to the machine and
// returns the windowed sampler it will feed. windowInstr is the sampling
// window in retired instructions (0 selects metrics.DefaultWindow, the
// paper's 1000-instruction adaptive window). Must be called before Run;
// the returned sampler is safe to read from other goroutines while the
// run is in flight.
//
// The registry gains, among others:
//
//	stlb.demand_miss.{instr,data}   demand STLB misses by class
//	{itlb,dtlb,stlb}.{hit,miss,evict}.{instr,data}
//	{l2c,llc}.{fills,evictions,evict.pte,evict.data_pte,writebacks}
//	ptw.walk.{instr,data}, ptw.walk_latency, ptw.psc_hits
//	xptp.transitions                adaptive enable/disable flips
//
//itp:statwiring — itpvet proves every metrics.RequiredStats counter is registered here
func (m *Machine) InstrumentMetrics(reg *metrics.Registry, windowInstr uint64) *metrics.Windows {
	mm := &machineMetrics{reg: reg, windows: metrics.NewWindows(arch.Instr(windowInstr))}

	mm.stlbMissInstr = reg.Counter("stlb.demand_miss.instr")
	mm.stlbMissData = reg.Counter("stlb.demand_miss.data")
	mm.l2cEvictDataPTE = reg.Counter("l2c.evict.data_pte")

	// Every core's first-level TLBs and L1 caches instrument under the
	// same prefixes: the registry returns the existing counter for a
	// repeated name, so the exported series stay CMP-wide aggregates with
	// stable names.
	for _, c := range m.cores {
		c.itlb.Instrument(reg, "itlb")
		c.dtlb.Instrument(reg, "dtlb")
		c.l1i.Instrument(reg, "l1i")
		c.l1d.Instrument(reg, "l1d")
	}
	switch s := m.stlb.(type) {
	case *tlb.TLB:
		s.Instrument(reg, "stlb")
	case *tlb.Split:
		s.Instrument(reg, "stlb")
	}
	m.l2c.Instrument(reg, "l2c")
	m.llc.Instrument(reg, "llc")
	m.walker.Instrument(reg, "ptw")

	mm.branchMispred = reg.Counter("branch.mispredict")

	mm.windows.Track("stlb.demand_miss.instr", mm.stlbMissInstr)
	mm.windows.Track("stlb.demand_miss.data", mm.stlbMissData)
	mm.windows.Track("l2c.evict.pte", reg.Counter("l2c.evict.pte"))
	mm.windows.Track("l2c.evict.data_pte", mm.l2cEvictDataPTE)
	mm.windows.Track("ptw.walk.instr", reg.Counter("ptw.walk.instr"))
	mm.windows.Track("ptw.walk.data", reg.Counter("ptw.walk.data"))
	// Phase-classification features (internal/sample): per-window L1I and
	// L2C demand-miss and branch-mispredict deltas.
	mm.windows.Track("l1i.demand_miss", reg.Counter("l1i.demand_miss"))
	mm.windows.Track("l2c.demand_miss", reg.Counter("l2c.demand_miss"))
	mm.windows.Track("branch.mispredict", mm.branchMispred)

	if m.ctrl != nil {
		mm.xptpTransitions = reg.Counter("xptp.transitions")
		mm.xptpEnabled = m.ctrl.Enabled()
		m.ctrl.SetDecisionHook(func(enabled bool, _ int) {
			if enabled != mm.xptpEnabled {
				mm.xptpTransitions.Inc()
			}
			mm.xptpEnabled = enabled
		})
	}

	mm.annotate = func(rec *metrics.WindowRecord) {
		if rec.Instr > 0 {
			k := 1000 / float64(rec.Instr)
			rec.STLBMPKIInstr = float64(rec.Counters["stlb.demand_miss.instr"]) * k
			rec.STLBMPKIData = float64(rec.Counters["stlb.demand_miss.data"]) * k
		}
		if m.ctrl != nil {
			rec.SetXPTPEnabled(mm.xptpEnabled)
		}
	}

	mm.next = mm.windows.Size()
	m.metSTLBMissInstr = mm.stlbMissInstr
	m.metSTLBMissData = mm.stlbMissData
	m.metBranchMispred = mm.branchMispred
	m.met = mm
	return mm.windows
}

// Metrics returns the attached windowed sampler, or nil.
func (m *Machine) Metrics() *metrics.Windows {
	if m.met == nil {
		return nil
	}
	return m.met.windows
}

// closeMetricsWindow ends the current sampling window at the given
// cumulative retired count, annotating the record with the derived
// headline series and the adaptive controller's status bit. Called from
// the run loop only.
func (m *Machine) closeMetricsWindow(retired arch.Instr) {
	mm := m.met
	mm.windows.Close(retired, m.maxRetireCycle, mm.annotate)
	mm.next += mm.windows.Size()
}

// recordSTLBDemandMiss feeds the windowed series from the translate path;
// it mirrors stats.Sim's STLB bucket accounting.
//
//itp:hotpath
func (m *Machine) recordSTLBDemandMiss(bucket stats.Bucket) {
	if bucket == stats.BInstr {
		m.metSTLBMissInstr.Inc()
	} else {
		m.metSTLBMissData.Inc()
	}
}
