package sim

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itpsim/internal/audit"
	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/tlb"
	"itpsim/internal/workload"
)

// collectBeacons runs streams on a fresh machine with a sink attached and
// returns the full beacon stream.
func collectBeacons(t *testing.T, cfg config.SystemConfig, streams []workload.Stream, interval, warmup, measure uint64) []Beacon {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableBeacons(interval)
	var got []Beacon
	m.SetBeaconSink(func(b Beacon) { got = append(got, b) })
	if _, err := m.RunWarmup(streams, warmup, measure); err != nil {
		t.Fatal(err)
	}
	chain, count := m.BeaconChain()
	if count != uint64(len(got)) {
		t.Fatalf("BeaconChain count %d, sink saw %d", count, len(got))
	}
	if len(got) > 0 && chain != got[len(got)-1].Chain {
		t.Fatalf("BeaconChain %016x, last beacon chain %016x", chain, got[len(got)-1].Chain)
	}
	return got
}

func TestBeaconEmissionSchedule(t *testing.T) {
	got := collectBeacons(t, testConfig(), []workload.Stream{&endless{}}, 1000, 0, 10_000)
	if len(got) != 10 {
		t.Fatalf("10K instructions at interval 1000 should emit 10 beacons, got %d", len(got))
	}
	for i, b := range got {
		if b.Seq != uint64(i) {
			t.Errorf("beacon %d: seq %d", i, b.Seq)
		}
		if uint64(b.Retired) != uint64(i+1)*1000 {
			t.Errorf("beacon %d: retired %d, want %d (single-thread retires cross each boundary exactly)",
				i, b.Retired, (i+1)*1000)
		}
	}
	if !strings.Contains(got[0].String(), "beacon{seq=0") {
		t.Errorf("String format: %s", got[0].String())
	}
}

func TestBeaconIntervalDefaultsToMetricsWindow(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BeaconInterval(); got != 0 {
		t.Fatalf("beacons should be off by default, interval = %d", got)
	}
	m.InstrumentMetrics(metrics.NewRegistry(), 2500)
	m.EnableBeacons(0)
	if got := m.BeaconInterval(); got != 2500 {
		t.Errorf("interval 0 should align to the attached metrics window, got %d", got)
	}

	m2, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2.EnableBeacons(0)
	if got := m2.BeaconInterval(); got != metrics.DefaultWindow {
		t.Errorf("interval 0 without metrics should fall back to DefaultWindow, got %d", got)
	}
}

func TestBeaconStreamsDeterministic(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	a := collectBeacons(t, testConfig(), []workload.Stream{spec.NewStream()}, 1000, 5_000, 20_000)
	b := collectBeacons(t, testConfig(), []workload.Stream{spec.NewStream()}, 1000, 5_000, 20_000)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("beacon counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("beacon %d diverged:\n  run A: %s\n  run B: %s", i, a[i], b[i])
		}
	}
}

func TestBeaconsDetectDivergence(t *testing.T) {
	// Identical machines, workloads differing only in one stream seed:
	// their chains must part ways (a fingerprint that cannot tell two
	// different executions apart proves nothing).
	cat := workload.NewCatalog(4, 2)
	s0, err := cat.Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := cat.Get("srv_001")
	if err != nil {
		t.Fatal(err)
	}
	a := collectBeacons(t, testConfig(), []workload.Stream{s0.NewStream()}, 1000, 0, 10_000)
	b := collectBeacons(t, testConfig(), []workload.Stream{s1.NewStream()}, 1000, 0, 10_000)
	if a[len(a)-1].Chain == b[len(b)-1].Chain {
		t.Error("different workloads produced identical beacon chains")
	}
}

// TestBeaconIngestionEquivalence is the decode-ahead equivalence proof:
// the same instruction sequence fed directly and through the Prefetched
// decode-ahead pipeline must drive the machine through identical states
// at every beacon boundary.
func TestBeaconIngestionEquivalence(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	direct := collectBeacons(t, testConfig(), []workload.Stream{spec.NewStream()}, 1000, 5_000, 20_000)
	pf := workload.Prefetch(spec.NewStream())
	defer pf.Close()
	ahead := collectBeacons(t, testConfig(), []workload.Stream{pf}, 1000, 5_000, 20_000)
	if len(direct) == 0 || len(direct) != len(ahead) {
		t.Fatalf("beacon counts differ: direct %d, decode-ahead %d", len(direct), len(ahead))
	}
	for i := range direct {
		if direct[i] != ahead[i] {
			t.Fatalf("ingestion modes diverged at beacon %d:\n  direct:      %s\n  decode-ahead: %s",
				i, direct[i], ahead[i])
		}
	}
}

// goldenBeacon locks one quadrant's final beacon chain.
type goldenBeacon struct {
	Chain string `json:"chain"`
	Count uint64 `json:"count"`
}

const goldenBeaconPath = "testdata/beacons.json"

// TestGoldenBeacons locks the beacon chains of the four policy quadrants
// to a golden file. Because this test runs both with and without -race in
// CI (make check vs cover-check), a fixed golden chain is also the
// race-vs-norace equivalence proof: both build modes must drive the
// machine through identical states at every boundary.
func TestGoldenBeacons(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]goldenBeacon, len(goldenCases))
	for _, tc := range goldenCases {
		cfg := config.Default()
		cfg.STLBPolicy = tc.stlb
		cfg.L2CPolicy = tc.l2c
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.EnableBeacons(0)
		if _, err := m.RunWarmup([]workload.Stream{spec.NewStream()}, 50_000, 100_000); err != nil {
			t.Fatal(err)
		}
		chain, count := m.BeaconChain()
		got[tc.name] = goldenBeacon{Chain: hex16(chain), Count: count}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenBeaconPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenBeaconPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenBeaconPath)
		return
	}

	data, err := os.ReadFile(goldenBeaconPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sim -run TestGoldenBeacons -update` to create it)", err)
	}
	var want map[string]goldenBeacon
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, tc := range goldenCases {
		w, ok := want[tc.name]
		if !ok {
			t.Errorf("%s: missing from golden beacon file (rerun with -update)", tc.name)
			continue
		}
		if got[tc.name] != w {
			t.Errorf("%s: beacon chain %+v, golden %+v — the simulator's state evolution changed (rerun with -update if deliberate)",
				tc.name, got[tc.name], w)
		}
	}
}

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func TestRecentBeaconsRing(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RecentBeacons(4); got != nil {
		t.Fatalf("no beacons yet, got %v", got)
	}
	m.EnableBeacons(100)
	if _, err := m.Run([]workload.Stream{&endless{}}, 10_000); err != nil {
		t.Fatal(err)
	}
	recent := m.RecentBeacons(4)
	if len(recent) != 4 {
		t.Fatalf("RecentBeacons(4) returned %d", len(recent))
	}
	for i, b := range recent {
		if want := uint64(100 - 4 + i); b.Seq != want {
			t.Errorf("recent[%d].Seq = %d, want %d (oldest first)", i, b.Seq, want)
		}
	}
	if got := m.RecentBeacons(1000); len(got) != beaconRingSize {
		t.Errorf("RecentBeacons beyond ring returned %d, want %d", len(got), beaconRingSize)
	}
}

func TestAuditCleanRun(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableAudit(10_000)
	if _, err := m.Run([]workload.Stream{&endless{}}, 50_000); err != nil {
		t.Fatalf("clean run should pass its audits: %v", err)
	}
	if snap := m.Snapshot(); !strings.Contains(snap, "audit: clean") {
		t.Errorf("snapshot should carry the audit verdict: %q", snap)
	}
	if err := m.AuditNow(); err != nil {
		t.Errorf("post-run AuditNow on a healthy machine: %v", err)
	}
}

func TestAuditComponentsRegistered(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableAudit(0)
	comps := m.auditor.Components()
	joined := strings.Join(comps, " ")
	for _, want := range []string{"machine", "itlb", "dtlb", "stlb", "l1i", "l1d", "l2c", "llc", "ptw"} {
		if !strings.Contains(joined, want) {
			t.Errorf("auditor missing component %q (have %v)", want, comps)
		}
	}
}

// TestAuditDetectsMSHRCorruption corrupts the STLB MSHR file mid-run and
// proves the periodic in-sim audit converts the corruption into a
// structured *audit.Error that ends the run.
func TestAuditDetectsMSHRCorruption(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableAudit(1000)
	corrupt := func() {
		// Two live MSHRs walking the same page: a duplicate no legal
		// allocation path can produce.
		m.stlbMSHRs[0] = stlbMSHREntry{vpn: 0x1234, thread: 0, valid: true, readyAt: ^uint64(0) >> 1}
		m.stlbMSHRs[1] = stlbMSHREntry{vpn: 0x1234, thread: 0, valid: true, readyAt: ^uint64(0) >> 1}
	}
	s := &hookStream{s: &endless{}, at: 5_000, hook: corrupt}
	res, err := m.Run([]workload.Stream{s}, 1_000_000)
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("corrupted run should return *audit.Error, got: %v", err)
	}
	if len(ae.Violations) == 0 || ae.Violations[0].Component != "machine" || ae.Violations[0].Rule != "mshr-leak" {
		t.Errorf("unexpected violations: %v", ae.Violations)
	}
	if errors.Is(err, ErrInterrupted) {
		t.Error("audit failure should surface as the structured verdict, not ErrInterrupted")
	}
	if got := res.Stats.TotalInstructions(); got == 0 || got >= 1_000_000 {
		t.Errorf("audit should have ended the run early, retired %d", got)
	}
	if snap := m.Snapshot(); !strings.Contains(snap, "mshr-leak") {
		t.Errorf("snapshot should carry the failing verdict: %q", snap)
	}
}

// TestAuditDetectsPageTableIncoherence damages a cached TLB translation
// post-run and proves the coherence audit catches the disagreement with
// the page table.
func TestAuditDetectsPageTableIncoherence(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]workload.Stream{&endless{}}, 20_000); err != nil {
		t.Fatal(err)
	}
	poisoned := false
	m.cores[0].itlb.VisitEntries(func(e *tlb.Entry) {
		if !poisoned {
			e.PPN ^= 0x5555
			poisoned = true
		}
	})
	if !poisoned {
		t.Fatal("run left no ITLB entries to poison")
	}
	err = m.AuditNow()
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("poisoned translation should fail the audit, got: %v", err)
	}
	found := false
	for _, v := range ae.Violations {
		if v.Rule == "pagetable-coherence" {
			found = true
		}
	}
	if !found {
		t.Errorf("want a pagetable-coherence violation, got: %v", ae.Violations)
	}
}

// TestAuditDetectsStackCorruption breaks a TLB set's recency stack and
// proves the component-level structural audit reports it.
func TestAuditDetectsStackCorruption(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]workload.Stream{&endless{}}, 20_000); err != nil {
		t.Fatal(err)
	}
	poisoned := false
	m.cores[0].dtlb.VisitEntries(func(e *tlb.Entry) {
		if !poisoned {
			e.Stack = 200 // far outside any associativity
			poisoned = true
		}
	})
	if !poisoned {
		t.Fatal("run left no DTLB entries to poison")
	}
	err = m.AuditNow()
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("broken stack should fail the audit, got: %v", err)
	}
	found := false
	for _, v := range ae.Violations {
		if v.Component == "dtlb" && v.Rule == "stack-permutation" {
			found = true
		}
	}
	if !found {
		t.Errorf("want dtlb/stack-permutation, got: %v", ae.Violations)
	}
}
