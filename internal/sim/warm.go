package sim

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/workload"
)

// warmBatch is the bulk-ingestion granularity of the functional-warmup
// loop (one interrupt/progress check per batch).
const warmBatch = 4096

// WarmFunctional consumes n instructions from s at generator speed,
// updating every state-holding structure the instructions touch — TLBs,
// caches, page tables and walker PSCs, DRAM timing, branch predictor,
// and the adaptive controller — without driving the OoO pipeline. It is
// the cheap prefix of a split warmup: a representative-sampling or
// sharded run replays most of its warmup functionally and only the
// suffix in detail, cutting the dominant replicated-warmup cost.
//
// The functional clock advances one cycle per instruction; the detailed
// run that follows starts its threads at that cycle, so hierarchy timing
// state (MSHR readyAt, bank busy times) warmed here stays causally
// ahead of nothing. Retired-instruction accounting advances the same
// counter the detailed step path uses, so windows, beacons, and audits
// keep serial coordinates; their schedules are resynchronised to the
// next boundary past the skip (no window or beacon is emitted for the
// functionally warmed span). Statistics recorded during the warmup are
// cleared by the detailed warmup's ResetMeasured, so callers must follow
// WarmFunctional with a RunWarmup whose warmup is > 0.
//
// Single-core machines only (sharded and sampled runs split one
// stream), and only before the machine's first detailed run.
func (m *Machine) WarmFunctional(s workload.Stream, n uint64) error {
	if len(m.cores) > 1 {
		return fmt.Errorf("sim: functional warmup needs a single-core machine, this one has %d cores", len(m.cores))
	}
	// The functional clock and the retire counter advance in lockstep
	// here; a detailed run advances retires without the functional clock,
	// so any divergence means this machine has already run in detail.
	if m.threads != nil || m.retiredLocal != m.funcClock {
		return fmt.Errorf("sim: functional warmup must run before the detailed run, not after or during it")
	}
	m.interrupted.Store(false)
	c := m.cores[0]
	m.warmHasBlock = false
	buf := make([]workload.Instr, warmBatch)
	bulk, _ := s.(workload.NextBatcher)
	var done uint64
	for done < n {
		if m.interrupted.Load() {
			m.finishFunctionalWarmup()
			return fmt.Errorf("sim: functional warmup at %d/%d: %w", done, n, ErrInterrupted)
		}
		seg := buf
		if want := n - done; want < uint64(len(seg)) {
			seg = seg[:want]
		}
		var got int
		if bulk != nil {
			got = bulk.NextBatch(seg)
		} else {
			got = workload.FillBatch(s, seg)
		}
		if got == 0 {
			m.finishFunctionalWarmup()
			if es, ok := s.(errStream); ok {
				if err := es.Err(); err != nil {
					return fmt.Errorf("sim: functional warmup stream failed at %d/%d: %w", done, n, err)
				}
			}
			return fmt.Errorf("sim: stream ended %d instructions into a %d-instruction functional warmup", done, n)
		}
		for i := range seg[:got] {
			m.warmStep(c, &seg[i])
		}
		done += uint64(got)
		m.retiredTotal.Store(m.retiredLocal)
	}
	m.finishFunctionalWarmup()
	return nil
}

// warmStep replays one instruction functionally: a block-change ifetch
// (the detailed front end fetches once per block too), the data accesses,
// branch-predictor training, and the controller's retire tick. The
// predictor-RNG step on non-perceptron configs keeps the RNG advanced by
// the same branch count a detailed prefix would have consumed.
//
//itp:hotpath
func (m *Machine) warmStep(c *coreState, in *workload.Instr) {
	now := m.funcClock
	if blk := arch.BlockAddr(in.PC); blk != m.warmBlock || !m.warmHasBlock {
		m.warmHasBlock = true
		m.warmBlock = blk
		m.ifetch(c, now, in.PC, 0)
	}
	if in.LoadAddr != 0 {
		m.dataAccess(c, now, in.LoadAddr, in.PC, false, 0)
	}
	if in.StoreAddr != 0 {
		m.dataAccess(c, now, in.StoreAddr, in.PC, true, 0)
	}
	if in.IsBranch {
		if m.chirp != nil && in.Taken {
			m.chirp.Observe(0, uint64(in.PC))
		}
		if c.perceptron != nil {
			c.perceptron.Update(in.PC, in.Taken)
		} else {
			m.predictBranch(c)
		}
	}
	if m.ctrl != nil {
		m.ctrl.OnRetire(1)
	}
	m.funcClock = now + 1
	m.retiredLocal++
}

// finishFunctionalWarmup resynchronises the boundary schedules to the
// position the functional skip reached: windows re-baseline their
// tracked counters at the skipped-to coordinate, and the window, beacon,
// and audit schedules move to the next boundary strictly past it, so the
// detailed run's emissions land at the same serial coordinates a fully
// detailed run would have used.
func (m *Machine) finishFunctionalWarmup() {
	if c := arch.Cycle(m.funcClock); c > m.maxRetireCycle {
		m.maxRetireCycle = c
	}
	r := arch.Instr(m.retiredLocal)
	if m.met != nil {
		m.met.windows.SkipTo(r, m.maxRetireCycle)
		m.met.next = nextBoundary(r, m.met.windows.Size())
	}
	if m.beacons != nil {
		m.beacons.next = nextBoundary(r, m.beacons.interval)
	}
	if m.auditor != nil {
		m.auditNext = nextBoundary(r, m.auditEvery)
	}
	m.retiredTotal.Store(m.retiredLocal)
	m.publishDiag()
}

// nextBoundary returns the smallest multiple of iv strictly greater
// than r.
func nextBoundary(r, iv arch.Instr) arch.Instr {
	return (r/iv + 1) * iv
}
