package sim

import (
	"math"
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/workload"
)

// newSteadyMachine builds a machine plus a warmed thread context stepping
// the reference workload, so the benchmark loop measures exactly one
// steady-state instruction per op. Warm steps populate caches, TLBs, page
// tables, and the allocator-visible buffers (lookahead ring, metrics
// window ring), leaving the measured loop with the structures the run
// loop actually touches per instruction. mutate (optional) edits the
// default configuration before the machine is built, so each benchmark
// variant exercises its own policy mix.
func newSteadyMachine(b *testing.B, instrument, beacons bool, mutate func(*config.SystemConfig)) (*Machine, *threadCtx) {
	b.Helper()
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		w := m.InstrumentMetrics(metrics.NewRegistry(), 0)
		w.SetRetain(64)
	}
	if beacons {
		m.EnableBeacons(0)
	}
	t := newThreadCtx(m.cores[0], 0, spec.NewStream(), &m.cfg, 1, math.MaxUint64, 0)
	m.threads = []*threadCtx{t}
	m.cores[0].threads = m.threads
	for i := 0; i < 50_000; i++ {
		m.step(t)
	}
	return m, t
}

// newSteadyMultiCore builds a 4-core CMP with one warmed thread per core,
// for the multi-core steady-state allocation gate: the measured loop
// steps the cores round-robin, so every private structure and every
// shared-hierarchy contention path (STLB, L2C, LLC, walker MSHRs, DRAM)
// is exercised with zero heap allocations per op.
func newSteadyMultiCore(b *testing.B) (*Machine, []*threadCtx) {
	b.Helper()
	cat := workload.NewCatalog(8, 2)
	cfg := config.Default()
	cfg.Cores = 4
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	names := cat.ServerNames()
	threads := make([]*threadCtx, cfg.Cores)
	for i := range threads {
		spec, err := cat.Get(names[i%len(names)])
		if err != nil {
			b.Fatal(err)
		}
		t := newThreadCtx(m.cores[i], uint8(i), spec.NewStream(), &m.cfg, 1, math.MaxUint64, 0)
		m.cores[i].threads = []*threadCtx{t}
		threads[i] = t
	}
	m.threads = threads
	for i := 0; i < 200_000; i++ {
		m.step(threads[i&3])
	}
	return m, threads
}

// Hot-path gate manifest: which //itp:hotpath functions each
// BenchmarkSteadyState* alloc gate exercises empirically. itpvet's static
// hotpathalloc analyzer proves the absence of allocation constructs;
// these benchmarks prove 0 allocs/op on real instruction streams; and
// internal/lint's TestHotpathGateCoverage proves every annotation in the
// tree is claimed by at least one gate below. Keep the three in sync.
var (
	// hotpathCommon covers the machinery every configuration steps
	// through: the pipeline, the TLB/cache/DRAM hierarchy, the page
	// walker, virtual memory, the LRU substrate, and the workload
	// generators.
	hotpathCommon = []string{
		"itpsim/internal/arch",
		"itpsim/internal/sim",
		"itpsim/internal/tlb",
		"itpsim/internal/cache",
		"itpsim/internal/replacement",
		"itpsim/internal/ptw",
		"itpsim/internal/vm",
		"itpsim/internal/dram",
		"itpsim/internal/stats",
		"itpsim/internal/prefetch",
		"itpsim/internal/workload",
	}
	// hotpathMetrics adds the observability layer the instrumented twin
	// drives: counters, the windowed sampler, and the controller hooks.
	hotpathMetrics = []string{
		"itpsim/internal/metrics",
	}
	// hotpathITPXPTP adds the paper's proposal policies: iTP on the STLB
	// and adaptive xPTP (controller included) on the L2C.
	hotpathITPXPTP = []string{
		"itpsim/internal/core",
	}
	// hotpathCHiRP adds the CHiRP baseline plus the real
	// hashed-perceptron predictor that drives its control-flow history.
	hotpathCHiRP = []string{
		"itpsim/internal/branch",
	}
	// hotpathBeacons covers the state-fingerprint fold: the FNV
	// substrate in arch and the whole-hierarchy hashState walk in sim,
	// which the beaconed gate drives at every window boundary.
	hotpathBeacons = []string{
		"itpsim/internal/arch",
		"itpsim/internal/sim",
	}

	// hotpathGateManifest maps each alloc-gated benchmark to the
	// packages whose //itp:hotpath functions it exercises.
	// internal/lint's gate-coverage test parses this table syntactically,
	// so keep entries as identifier references to the slices above.
	hotpathGateManifest = map[string][]string{
		"BenchmarkSteadyStateStep":           hotpathCommon,
		"BenchmarkSteadyStateStepMetrics":    hotpathMetrics,
		"BenchmarkSteadyStateStepITPXPTP":    hotpathITPXPTP,
		"BenchmarkSteadyStateStepCHiRP":      hotpathCHiRP,
		"BenchmarkSteadyStateStepBeacons":    hotpathBeacons,
		"BenchmarkSteadyStateStepMultiCore":  hotpathCommon,
		"BenchmarkSteadyStateWarmFunctional": hotpathCommon,
	}
)

// BenchmarkSteadyStateStep is the allocation gate for the simulation hot
// loop: one instruction end to end (lookahead pop, front end, TLBs, page
// walks, caches, retire) with zero heap allocations per op. benchguard's
// -alloc-gate fails the build if allocs/op ever leaves 0.
func BenchmarkSteadyStateStep(b *testing.B) {
	m, t := newSteadyMachine(b, false, false, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(t)
	}
}

// BenchmarkSteadyStateStepMetrics is the instrumented twin: full registry
// attached and per-1000-instruction windows closing into a retained ring.
// It must also run allocation-free — window records and their counter
// maps recycle in place.
func BenchmarkSteadyStateStepMetrics(b *testing.B) {
	m, t := newSteadyMachine(b, true, false, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(t)
	}
}

// BenchmarkSteadyStateStepITPXPTP gates the paper's proposal
// configuration: iTP on the STLB and adaptive xPTP (with its controller
// judging every window) on the L2C, instrumented so the xptp.transitions
// path is live too.
func BenchmarkSteadyStateStepITPXPTP(b *testing.B) {
	m, t := newSteadyMachine(b, true, false, func(cfg *config.SystemConfig) {
		cfg.STLBPolicy = "itp"
		cfg.L2CPolicy = "xptp"
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(t)
	}
}

// BenchmarkSteadyStateStepCHiRP gates the CHiRP STLB baseline together
// with the real hashed-perceptron branch predictor, the configuration
// that drives the control-flow-history and perceptron hot paths.
// BenchmarkSteadyStateStepBeacons gates the robustness layer's steady
// state: metrics windows closing and a full-hierarchy state fingerprint
// folding into the beacon chain at every window boundary. The fixed ring
// and in-place FNV fold must keep the loop at zero allocations per op
// even with beacons armed.
func BenchmarkSteadyStateStepBeacons(b *testing.B) {
	m, t := newSteadyMachine(b, true, true, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(t)
	}
}

// BenchmarkSteadyStateStepMultiCore gates the CMP steady state: four
// cores' threads stepped round-robin through their private front ends
// into the shared STLB/L2C/LLC/walker/DRAM. Per-tenant stats attribution
// and shared-MSHR contention must stay at 0 allocs/op per core.
func BenchmarkSteadyStateStepMultiCore(b *testing.B) {
	m, threads := newSteadyMultiCore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(threads[i&3])
	}
}

// BenchmarkSteadyStateWarmFunctional gates the functional-warmup replay
// loop: one instruction through warmStep (block-change ifetch, data
// accesses, predictor training, controller tick) against warmed state.
// Functional warmup's whole value is replaying instructions at generator
// speed, so the loop must stay at 0 allocs/op like the detailed step.
func BenchmarkSteadyStateWarmFunctional(b *testing.B) {
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(config.Default())
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 16
	buf := make([]workload.Instr, n)
	if got := workload.FillBatch(spec.NewStream(), buf); got != n {
		b.Fatalf("short fill: %d", got)
	}
	c := m.cores[0]
	for i := range buf {
		m.warmStep(c, &buf[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.warmStep(c, &buf[i&(n-1)])
	}
}

func BenchmarkSteadyStateStepCHiRP(b *testing.B) {
	m, t := newSteadyMachine(b, false, false, func(cfg *config.SystemConfig) {
		cfg.STLBPolicy = "chirp"
		cfg.BranchPredictor = "perceptron"
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(t)
	}
}
