package sim

import (
	"math"
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/workload"
)

// newSteadyMachine builds a machine plus a warmed thread context stepping
// the reference workload, so the benchmark loop measures exactly one
// steady-state instruction per op. Warm steps populate caches, TLBs, page
// tables, and the allocator-visible buffers (lookahead ring, metrics
// window ring), leaving the measured loop with the structures the run
// loop actually touches per instruction.
func newSteadyMachine(b *testing.B, instrument bool) (*Machine, *threadCtx) {
	b.Helper()
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(config.Default())
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		w := m.InstrumentMetrics(metrics.NewRegistry(), 0)
		w.SetRetain(64)
	}
	t := newThreadCtx(0, spec.NewStream(), &m.cfg, 1, math.MaxUint64)
	m.threads = []*threadCtx{t}
	for i := 0; i < 50_000; i++ {
		m.step(t)
	}
	return m, t
}

// BenchmarkSteadyStateStep is the allocation gate for the simulation hot
// loop: one instruction end to end (lookahead pop, front end, TLBs, page
// walks, caches, retire) with zero heap allocations per op. benchguard's
// -alloc-gate fails the build if allocs/op ever leaves 0.
func BenchmarkSteadyStateStep(b *testing.B) {
	m, t := newSteadyMachine(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(t)
	}
}

// BenchmarkSteadyStateStepMetrics is the instrumented twin: full registry
// attached and per-1000-instruction windows closing into a retained ring.
// It must also run allocation-free — window records and their counter
// maps recycle in place.
func BenchmarkSteadyStateStepMetrics(b *testing.B) {
	m, t := newSteadyMachine(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(t)
	}
}
