package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/workload"
)

// goldenMCStats fingerprints one 4-core co-location run: the aggregate
// headline numbers plus every tenant's IPC, so a change that shifts
// interference between tenants while preserving the totals still trips
// the battery.
type goldenMCStats struct {
	IPC       float64   `json:"ipc"`
	STLBMPKI  float64   `json:"stlb_mpki"`
	TenantIPC []float64 `json:"tenant_ipc"`
}

const goldenMCPath = "testdata/golden_mc.json"

func runGoldenMCCase(t *testing.T, stlb, l2c string) goldenMCStats {
	t.Helper()
	const cores = 4
	cfg := config.Default()
	cfg.Cores = cores
	cfg.STLBPolicy = stlb
	cfg.L2CPolicy = l2c
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := workload.NewCatalog(8, 2)
	names := cat.ServerNames()
	streams := make([]workload.Stream, cores)
	for i := range streams {
		spec, err := cat.Get(names[i%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = spec.NewStream()
	}
	res, err := m.RunWarmup(streams, 20_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	g := goldenMCStats{
		IPC:      s.IPC(),
		STLBMPKI: s.STLB.MPKI(s.TotalInstructions()),
	}
	for i := 0; i < cores; i++ {
		g.TenantIPC = append(g.TenantIPC, s.Cores[i].IPC())
	}
	return g
}

// TestGoldenMultiCoreRegression locks the 4-core co-location run of the
// four policy quadrants to testdata/golden_mc.json, the CMP counterpart
// of TestGoldenRegression (same -update flag rewrites both).
func TestGoldenMultiCoreRegression(t *testing.T) {
	got := make(map[string]goldenMCStats, len(goldenCases))
	for _, tc := range goldenCases {
		got[tc.name] = runGoldenMCCase(t, tc.stlb, tc.l2c)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenMCPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenMCPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenMCPath)
		return
	}

	data, err := os.ReadFile(goldenMCPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sim -run TestGoldenMultiCoreRegression -update` to create it)", err)
	}
	var want map[string]goldenMCStats
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	const relTol = 1e-9
	for _, tc := range goldenCases {
		w, ok := want[tc.name]
		if !ok {
			t.Errorf("%s: missing from golden file (rerun with -update)", tc.name)
			continue
		}
		g := got[tc.name]
		check := func(metric string, gotV, wantV float64) {
			if !withinRel(gotV, wantV, relTol) {
				t.Errorf("%s: %s = %.12g, golden %.12g (Δ %+.3g%%)",
					tc.name, metric, gotV, wantV, 100*(gotV-wantV)/wantV)
			}
		}
		check("IPC", g.IPC, w.IPC)
		check("STLB MPKI", g.STLBMPKI, w.STLBMPKI)
		if len(g.TenantIPC) != len(w.TenantIPC) {
			t.Errorf("%s: %d tenant IPCs, golden has %d", tc.name, len(g.TenantIPC), len(w.TenantIPC))
			continue
		}
		for i := range g.TenantIPC {
			check("tenant "+string(rune('0'+i))+" IPC", g.TenantIPC[i], w.TenantIPC[i])
		}
	}
}
