package sim

import (
	"strings"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/workload"
)

// twoPhaseStream builds a synthetic workload with a TLB-thrashing first
// phase (every load strides to a fresh 4KB page across a range far larger
// than the STLB reach) and a TLB-friendly second phase (all loads within
// one page), each of n instructions. The code footprint stays tiny so the
// STLB pressure is purely data-side.
func twoPhaseStream(n int) *workload.Replay {
	instrs := make([]workload.Instr, 0, 2*n)
	const codeBase = 0x400000
	const dataBase = 0x10000000
	page := uint64(0)
	for i := 0; i < n; i++ {
		in := workload.Instr{PC: arch.Addr(codeBase + uint64(i%64)*4)}
		if i%2 == 0 {
			// New 4KB page every load over a ~16GB span: guaranteed
			// STLB misses once warm.
			in.LoadAddr = arch.Addr(dataBase + page*arch.PageSize4K)
			page = (page + 1) % (1 << 22)
		}
		instrs = append(instrs, in)
	}
	for i := 0; i < n; i++ {
		in := workload.Instr{PC: arch.Addr(codeBase + uint64(i%64)*4)}
		if i%2 == 0 {
			in.LoadAddr = arch.Addr(dataBase + uint64(i%16)*64)
		}
		instrs = append(instrs, in)
	}
	return &workload.Replay{Instrs: instrs}
}

// TestPhaseAdaptiveMetricsCorrespondence drives the adaptive xPTP
// controller through a thrash->friendly phase change and checks that the
// exported window series is a cycle-exact mirror of the controller's own
// decisions: for every window, the recorded status bit equals the decision
// the controller made from that window's recorded miss count, and the
// series' enabled/disabled tallies equal the controller's.
func TestPhaseAdaptiveMetricsCorrespondence(t *testing.T) {
	const phase = 50_000
	cfg := config.Default()
	cfg.L2CPolicy = "xptp"
	cfg.XPTP.T1 = 8
	cfg.XPTP.WindowInstr = 1000

	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	w := m.InstrumentMetrics(reg, cfg.XPTP.WindowInstr)
	if _, err := m.Run([]workload.Stream{twoPhaseStream(phase)}, 2*phase); err != nil {
		t.Fatal(err)
	}

	recs := w.Records()
	if len(recs) != 2*phase/1000 {
		t.Fatalf("closed %d windows, want %d", len(recs), 2*phase/1000)
	}

	t1 := m.Controller().T1()
	var enabled, disabled uint64
	var sawEnabled, sawDisabled bool
	for _, rec := range recs {
		if rec.XPTPEnabled == nil {
			t.Fatalf("window %d: missing xPTP status bit", rec.Window)
		}
		misses := rec.Counters["stlb.demand_miss.instr"] + rec.Counters["stlb.demand_miss.data"]
		want := misses > uint64(t1)
		if *rec.XPTPEnabled != want {
			t.Fatalf("window %d: recorded xptp=%v but window saw %d misses (T1=%d): series and controller disagree",
				rec.Window, *rec.XPTPEnabled, misses, t1)
		}
		if want {
			enabled++
			sawEnabled = true
		} else {
			disabled++
			sawDisabled = true
		}
	}
	// The phase change must actually exercise both sides of T1, otherwise
	// the correspondence check proved nothing.
	if !sawEnabled || !sawDisabled {
		t.Fatalf("series never crossed T1 (enabled=%d disabled=%d): workload phases too weak", enabled, disabled)
	}
	if got := m.Stats.XPTPEnabledWindows; got != enabled {
		t.Fatalf("controller counted %d enabled windows, series %d", got, enabled)
	}
	if got := m.Stats.XPTPDisabledWindows; got != disabled {
		t.Fatalf("controller counted %d disabled windows, series %d", got, disabled)
	}
	if reg.Counter("xptp.transitions").Value() == 0 {
		t.Fatal("no enable/disable transitions recorded across a phase change")
	}
}

// TestMetricsWindowMisalignedSizes checks the series stays self-consistent
// when the sampling window differs from the controller window (the status
// bit then reflects the controller's latest decision, and deltas still
// chain).
func TestMetricsWindowMisalignedSizes(t *testing.T) {
	cfg := config.Default()
	cfg.L2CPolicy = "xptp"
	cfg.XPTP.T1 = 8
	cfg.XPTP.WindowInstr = 1000

	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := m.InstrumentMetrics(metrics.NewRegistry(), 2500)
	if _, err := m.Run([]workload.Stream{twoPhaseStream(20_000)}, 40_000); err != nil {
		t.Fatal(err)
	}
	recs := w.Records()
	if len(recs) != 40_000/2500 {
		t.Fatalf("closed %d windows, want %d", len(recs), 40_000/2500)
	}
	var prev arch.Instr
	for _, rec := range recs {
		if rec.Retired != prev+2500 || rec.Instr != 2500 {
			t.Fatalf("window %d boundaries broken: %+v", rec.Window, rec)
		}
		prev = rec.Retired
		if rec.XPTPEnabled == nil {
			t.Fatalf("window %d: missing xPTP status bit", rec.Window)
		}
	}
}

// TestMachineCountersMirrorStats checks the registry's machine-level
// counters agree with the legacy stats.Sim accounting over a real run.
func TestMachineCountersMirrorStats(t *testing.T) {
	cfg := config.Default()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	m.InstrumentMetrics(reg, 0)
	spec, err := workload.NewCatalog(4, 2).Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]workload.Stream{spec.NewStream()}, 100_000); err != nil {
		t.Fatal(err)
	}

	walks := reg.Counter("ptw.walk.instr").Value() + reg.Counter("ptw.walk.data").Value()
	statWalks := m.Stats.PageWalks[0] + m.Stats.PageWalks[1]
	if walks != statWalks {
		t.Fatalf("registry walks=%d, stats walks=%d", walks, statWalks)
	}
	if h := reg.Histogram("ptw.walk_latency"); h.Count() != statWalks {
		t.Fatalf("walk-latency observations=%d, walks=%d", h.Count(), statWalks)
	}
	lat := reg.Histogram("ptw.walk_latency").Sum()
	statLat := uint64(m.Stats.WalkLatSum[0] + m.Stats.WalkLatSum[1])
	if lat != statLat {
		t.Fatalf("registry walk latency=%d, stats=%d", lat, statLat)
	}

	// Demand STLB misses: the machine-level counters must equal the
	// stats bucket misses (demand only; prefetch probes excluded).
	miss := reg.Counter("stlb.demand_miss.instr").Value() + reg.Counter("stlb.demand_miss.data").Value()
	statMiss := m.Stats.STLB.TotalMisses()
	if miss != statMiss {
		t.Fatalf("registry STLB misses=%d, stats=%d", miss, statMiss)
	}
	if m.Metrics() == nil {
		t.Fatal("Metrics() accessor lost the sampler")
	}
}

// TestSnapshotIncludesWindowHistory checks the watchdog-facing diagnostic
// snapshot carries the recent window series once metrics are attached.
func TestSnapshotIncludesWindowHistory(t *testing.T) {
	cfg := config.Default()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.InstrumentMetrics(metrics.NewRegistry(), 1000)
	spec, err := workload.NewCatalog(4, 2).Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]workload.Stream{spec.NewStream()}, 10_000); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if want := "recent-windows:"; !strings.Contains(snap, want) {
		t.Fatalf("Snapshot missing %q:\n%s", want, snap)
	}
	if !strings.Contains(snap, "ipc=") {
		t.Fatalf("Snapshot window history empty:\n%s", snap)
	}
}

// TestRequiredStatsRegistered is the runtime counterpart of itpvet's
// statregistry analyzer: on a machine with the adaptive controller
// attached, InstrumentMetrics must register every counter named in
// metrics.RequiredStats.
func TestRequiredStatsRegistered(t *testing.T) {
	cfg := config.Default()
	cfg.L2CPolicy = "xptp" // xptp.transitions needs the adaptive controller
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	m.InstrumentMetrics(reg, 0)
	have := make(map[string]bool)
	for _, n := range reg.Names() {
		have[n] = true
	}
	for _, want := range metrics.RequiredStats {
		if !have[want] {
			t.Errorf("required stat %q not registered by InstrumentMetrics", want)
		}
	}
}
