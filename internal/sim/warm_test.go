package sim

import (
	"strings"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/workload"
)

// strideStream builds a finite load loop over `pages` distinct 4KB pages
// (one load per instruction, small code footprint, a taken branch per
// loop), long enough that a functional warmup can cover the whole
// footprint while a short detailed warmup cannot.
func strideStream(n, pages int) *workload.Replay {
	instrs := make([]workload.Instr, n)
	for i := range instrs {
		instrs[i] = workload.Instr{
			PC:       0x400000 + arch.Addr(i%32)*4,
			LoadAddr: 0x10000000 + arch.Addr(i%pages)*arch.Addr(arch.PageSize4K),
		}
		if i%32 == 31 {
			instrs[i].IsBranch = true
			instrs[i].Taken = true
		}
	}
	return &workload.Replay{Instrs: instrs}
}

// TestWarmFunctionalWindowCoordinates: windows closed after a functional
// fast-forward must land at exactly the serial coordinates a fully
// detailed run would have used — same indices, same retired boundaries,
// no window emitted for the skipped span.
func TestWarmFunctionalWindowCoordinates(t *testing.T) {
	const (
		window  = 1000
		fw      = 3000
		warmup  = 1000
		measure = 2000
	)
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.InstrumentMetrics(metrics.NewRegistry(), window)
	s := strideStream(fw+warmup+measure, 256)
	if err := m.WarmFunctional(s, fw); err != nil {
		t.Fatalf("functional warmup: %v", err)
	}
	if _, err := m.RunWarmup([]workload.Stream{s}, warmup, measure); err != nil {
		t.Fatalf("detailed run: %v", err)
	}
	recs := w.Records()
	if len(recs) != (warmup+measure)/window {
		t.Fatalf("got %d windows, want %d (none for the functional span)", len(recs), (warmup+measure)/window)
	}
	for i, rec := range recs {
		wantRetired := arch.Instr(fw + (i+1)*window)
		if rec.Retired != wantRetired || rec.Window != uint64(fw/window+i) {
			t.Errorf("window %d: retired %d index %d, want %d/%d (serial coordinates)",
				i, rec.Retired, rec.Window, wantRetired, fw/window+i)
		}
		if rec.Instr != window {
			t.Errorf("window %d spans %d instructions, want %d", i, rec.Instr, window)
		}
		if rec.IPC <= 0 {
			t.Errorf("window %d has IPC %f: the skip must not poison cycle deltas", i, rec.IPC)
		}
	}
}

// TestWarmFunctionalBeaconResync: the beacon schedule resumes at the next
// serial boundary past the skip, so a detailed suffix of d instructions
// after a skip of f emits exactly the boundaries in (f, f+d].
func TestWarmFunctionalBeaconResync(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableBeacons(1000)
	m.EnableAudit(1000)
	s := strideStream(5000, 128)
	if err := m.WarmFunctional(s, 2500); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunWarmup([]workload.Stream{s}, 500, 2000); err != nil {
		t.Fatal(err)
	}
	if _, count := m.BeaconChain(); count != 2 {
		// Boundaries 3000, 4000, 5000 are past the skip; 5000 is the final
		// retire, where the budget check fires before the beacon boundary
		// on the last instruction only if retire ordering allows — assert
		// the two interior boundaries and accept the final one.
		if count != 3 {
			t.Errorf("beacon count %d, want 2 or 3 (boundaries past the 2500 skip)", count)
		}
	}
}

// TestWarmFunctionalWarmsState: the point of functional warmup — a
// detailed run preceded by a functional pass over the full footprint must
// observe fewer DRAM accesses in its measured region than a cold run of
// the identical measured instructions, because the functional pass left
// the lines resident in the shared cache levels.
func TestWarmFunctionalWarmsState(t *testing.T) {
	const (
		fw      = 8192 // two full passes over the footprint
		warmup  = 512  // detailed warmup covers only 1/8 of the pages
		measure = 2048
		pages   = 4096
	)
	full := strideStream(fw+warmup+measure, pages)

	warmMachine, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ws := &workload.Replay{Instrs: full.Instrs}
	if err := warmMachine.WarmFunctional(ws, fw); err != nil {
		t.Fatal(err)
	}
	warmRes, err := warmMachine.RunWarmup([]workload.Stream{ws}, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}

	coldMachine, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cs := &workload.Replay{Instrs: full.Instrs[fw:]} // same detailed region, no functional prefix
	coldRes, err := coldMachine.RunWarmup([]workload.Stream{cs}, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}

	if w, c := warmRes.Stats.DRAMAccesses, coldRes.Stats.DRAMAccesses; w >= c {
		t.Errorf("functionally warmed run made %d DRAM accesses, cold run %d: warmup had no effect", w, c)
	}
	if got, want := warmRes.Stats.TotalInstructions(), uint64(measure); got != want {
		t.Errorf("measured %d instructions, want %d", got, want)
	}
}

// TestWarmFunctionalRejects: guard rails — multi-core machines, reuse
// after a detailed run, and short streams all fail loudly.
func TestWarmFunctionalRejects(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 2
	mc, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.WarmFunctional(strideStream(100, 4), 10); err == nil || !strings.Contains(err.Error(), "single-core") {
		t.Errorf("multi-core machine accepted: %v", err)
	}

	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]workload.Stream{strideStream(1000, 4)}, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.WarmFunctional(strideStream(100, 4), 10); err == nil || !strings.Contains(err.Error(), "before the detailed run") {
		t.Errorf("post-run warmup accepted: %v", err)
	}

	m2, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.WarmFunctional(strideStream(10, 4), 100); err == nil || !strings.Contains(err.Error(), "ended") {
		t.Errorf("short stream accepted: %v", err)
	}
}
