package sim

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current simulator")

// goldenStats is the headline-statistics fingerprint of one deterministic
// run. Any change to these numbers is a behavioural change to the
// simulator and must be deliberate (rerun with -update and review the
// diff).
type goldenStats struct {
	IPC        float64 `json:"ipc"`
	STLBMPKI   float64 `json:"stlb_mpki"`
	PTWLatency float64 `json:"ptw_latency"`
	L2CMissPct float64 `json:"l2c_miss_pct"`
}

// goldenCases are the paper's four policy quadrants over a fixed seeded
// workload: baseline, iTP alone, xPTP alone, and the cooperative pair.
var goldenCases = []struct {
	name      string
	stlb, l2c string
}{
	{"lru-lru", "lru", "lru"},
	{"itp-lru", "itp", "lru"},
	{"lru-xptp", "lru", "xptp"},
	{"itp-xptp", "itp", "xptp"},
}

const goldenPath = "testdata/golden.json"

func runGoldenCase(t *testing.T, stlb, l2c string) goldenStats {
	t.Helper()
	cfg := config.Default()
	cfg.STLBPolicy = stlb
	cfg.L2CPolicy = l2c
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.NewCatalog(4, 2).Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunWarmup([]workload.Stream{spec.NewStream()}, 50_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	ti := s.TotalInstructions()
	return goldenStats{
		IPC:        s.IPC(),
		STLBMPKI:   s.STLB.MPKI(ti),
		PTWLatency: float64(s.WalkLatSum[0]+s.WalkLatSum[1]) / float64(s.PageWalks[0]+s.PageWalks[1]),
		L2CMissPct: 100 * (1 - s.L2C.HitRate()),
	}
}

// TestGoldenRegression locks the headline statistics of the four policy
// quadrants to testdata/golden.json. The workload generator, the machine,
// and Go's float arithmetic are all bit-deterministic, so the tolerance
// only absorbs formatting round-trips, not behaviour.
func TestGoldenRegression(t *testing.T) {
	got := make(map[string]goldenStats, len(goldenCases))
	for _, tc := range goldenCases {
		got[tc.name] = runGoldenCase(t, tc.stlb, tc.l2c)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sim -run TestGoldenRegression -update` to create it)", err)
	}
	var want map[string]goldenStats
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	const relTol = 1e-9
	for _, tc := range goldenCases {
		w, ok := want[tc.name]
		if !ok {
			t.Errorf("%s: missing from golden file (rerun with -update)", tc.name)
			continue
		}
		g := got[tc.name]
		check := func(metric string, gotV, wantV float64) {
			if !withinRel(gotV, wantV, relTol) {
				t.Errorf("%s: %s = %.12g, golden %.12g (Δ %+.3g%%)",
					tc.name, metric, gotV, wantV, 100*(gotV-wantV)/wantV)
			}
		}
		check("IPC", g.IPC, w.IPC)
		check("STLB MPKI", g.STLBMPKI, w.STLBMPKI)
		check("PTW latency", g.PTWLatency, w.PTWLatency)
		check("L2C miss%", g.L2CMissPct, w.L2CMissPct)
	}
}

// TestGoldenOrdering sanity-checks the paper's directional claims on the
// golden numbers themselves, so a -update that silently inverts a policy
// effect fails loudly.
func TestGoldenOrdering(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skip("golden file absent; TestGoldenRegression reports this")
	}
	var g map[string]goldenStats
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	for name, s := range g {
		if s.IPC <= 0 || math.IsNaN(s.IPC) {
			t.Errorf("%s: degenerate IPC %v", name, s.IPC)
		}
		if s.PTWLatency <= 0 || math.IsNaN(s.PTWLatency) {
			t.Errorf("%s: degenerate PTW latency %v", name, s.PTWLatency)
		}
	}
}

func withinRel(got, want, tol float64) bool {
	if got == want {
		return true
	}
	denom := math.Abs(want)
	if denom == 0 {
		denom = 1
	}
	return math.Abs(got-want)/denom <= tol
}
