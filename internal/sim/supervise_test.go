package sim

import (
	"errors"
	"strings"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/workload"
)

// endless is an unbounded instruction loop (a stand-in for a live trace
// feed), so supervision tests control when the run ends.
type endless struct{ i uint64 }

func (e *endless) Next(in *workload.Instr) bool {
	*in = workload.Instr{PC: 0x400000 + arch.Addr(e.i%256)*4}
	if e.i%8 == 0 {
		in.LoadAddr = 0x10000000 + arch.Addr(e.i%4096)*8
	}
	e.i++
	return true
}

// hookStream runs a callback once, just before feeding instruction `at`.
type hookStream struct {
	s    workload.Stream
	n    uint64
	at   uint64
	hook func()
}

func (h *hookStream) Next(in *workload.Instr) bool {
	h.n++
	if h.n == h.at {
		h.hook()
	}
	return h.s.Next(in)
}

func TestRunStreamCountErrors(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil, 1000); err == nil || !strings.Contains(err.Error(), "1 or 2 streams") {
		t.Errorf("zero streams should be an error, got: %v", err)
	}
	s := loopStream(4, 0)
	if _, err := m.Run([]workload.Stream{s, s, s}, 1000); err == nil {
		t.Error("three streams should be an error")
	}
}

func TestInterruptStopsRunEarly(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := &hookStream{s: &endless{}, at: 10_000, hook: m.Interrupt}
	res, err := m.Run([]workload.Stream{s}, 1_000_000)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run should return ErrInterrupted, got: %v", err)
	}
	got := res.Stats.TotalInstructions()
	if got == 0 || got >= 1_000_000 {
		t.Errorf("interrupted run retired %d instructions, want partial progress", got)
	}
	if m.Progress() == 0 {
		t.Error("Progress should reflect retired instructions")
	}
}

func TestSnapshotDescribesMachineState(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); !strings.Contains(s, "progress=") {
		t.Errorf("pre-run snapshot should still report progress, got: %q", s)
	}
	if _, err := m.Run([]workload.Stream{&endless{}}, 100_000); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	for _, frag := range []string{"progress=", "stlb-mshrs=", "stlb-occ", "l2c-occ", "dispatch-bound"} {
		if !strings.Contains(snap, frag) {
			t.Errorf("snapshot missing %q: %q", frag, snap)
		}
	}
}

func TestStreamErrorFailsRun(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := workload.NewErrorStream(&endless{}, 5_000, nil)
	res, err := m.Run([]workload.Stream{bad}, 100_000)
	if !errors.Is(err, workload.ErrInjected) {
		t.Fatalf("stream error should surface from Run, got: %v", err)
	}
	if res.Stats.TotalInstructions() == 0 {
		t.Error("partial stats should survive a stream error")
	}
}
