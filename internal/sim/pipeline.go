package sim

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/workload"
)

// lookahead buffers upcoming instructions so the decoupled front-end can
// prefetch future fetch blocks (FDIP) before fetch reaches them. The
// buffer is a power-of-two ring (masked indexing) refilled in contiguous
// bulk segments through workload.NextBatcher when the source supports it,
// so steady-state refills are memmoves instead of per-instruction
// interface calls.
type lookahead struct {
	s     workload.Stream
	bulk  workload.NextBatcher // non-nil when s has a native bulk path
	buf   []workload.Instr
	mask  int
	head  int
	size  int
	ended bool
}

func newLookahead(s workload.Stream, capacity int) *lookahead {
	cap2 := 64
	for cap2 < capacity {
		cap2 <<= 1
	}
	l := &lookahead{s: s, buf: make([]workload.Instr, cap2), mask: cap2 - 1}
	l.bulk, _ = s.(workload.NextBatcher)
	return l
}

// fill tops the buffer up to capacity, one contiguous free segment at a
// time (at most two segments when the free space wraps).
//
//itp:hotpath
func (l *lookahead) fill() {
	for !l.ended && l.size < len(l.buf) {
		wpos := (l.head + l.size) & l.mask
		n := len(l.buf) - wpos
		if wpos < l.head {
			n = l.head - wpos
		}
		seg := l.buf[wpos : wpos+n]
		if l.bulk != nil {
			got := l.bulk.NextBatch(seg)
			if got == 0 {
				l.ended = true
				return
			}
			l.size += got
		} else {
			got := workload.FillBatch(l.s, seg)
			l.size += got
			if got < len(seg) {
				l.ended = true
				return
			}
		}
	}
}

// peek returns the i-th upcoming instruction (0 = next), or nil.
//
//itp:hotpath
func (l *lookahead) peek(i int) *workload.Instr {
	if i >= l.size {
		l.fill()
		if i >= l.size {
			return nil
		}
	}
	return &l.buf[(l.head+i)&l.mask]
}

// pop consumes the next instruction.
//
//itp:hotpath
func (l *lookahead) pop(in *workload.Instr) bool {
	if l.size == 0 {
		l.fill()
		if l.size == 0 {
			return false
		}
	}
	*in = l.buf[l.head]
	l.head = (l.head + 1) & l.mask
	l.size--
	return true
}

// threadCtx is the per-hardware-thread pipeline state.
type threadCtx struct {
	id uint8
	// core is the core this thread is scheduled on: its private L1s,
	// first-level TLBs, and branch predictor serve this thread's
	// accesses (shared with at most one SMT sibling).
	core *coreState
	la   *lookahead

	budget         uint64
	retired        uint64
	retiredAtReset uint64
	// lastRetireAtReset snapshots lastRetire at the warmup→measure
	// boundary so the tenant's measured cycle span is its own retire
	// progress, not the machine-wide baseline.
	lastRetireAtReset uint64
	done              bool

	// Front end.
	fetchCycle uint64 // when the fetch unit may fetch the next instruction
	fetchStep  uint64 // cycles consumed per fetch group (2 under SMT)
	fetchSub   int    // instructions fetched in the current group
	fetchBlock arch.Addr
	refetch    bool   // force an ifetch even if the block address matches
	fetchReady uint64 // when the current block's fetch completes
	fdipCursor int    // lookahead index the FDIP scan has reached
	fdipBlock  arch.Addr
	scanBudget int // max lookahead instructions one FDIP scan may walk

	// Back end.
	robRing []uint64 // retire times of the last ROBSize instructions
	robPos  int
	ftqRing []uint64 // dispatch times for FTQ backpressure
	ftqPos  int

	lastRetire   uint64
	retireSub    int
	lastLoadDone uint64
}

// blockInstrs is the most instructions one fetch block can hold (4-byte
// instructions), which bounds how many lookahead slots an FDIP scan of
// FDIPDistance blocks can consume.
const blockInstrs = arch.BlockSize / 4

func newThreadCtx(c *coreState, id uint8, s workload.Stream, cfg *config.SystemConfig, fetchStep uint64, budget uint64, start uint64) *threadCtx {
	// The FTQ bounds how far fetch may run ahead of dispatch; beyond it
	// the decoupled front-end can no longer hide instruction-side misses.
	ftqCap := cfg.FTQDepth
	// FDIP scans at most FDIPDistance blocks; a block holds at most
	// blockInstrs instructions, so the scan needs at most this many
	// lookahead slots.
	scanBudget := cfg.FDIPDistance * blockInstrs
	t := &threadCtx{
		id:   id,
		core: c,
		// refetch starts true: the first instruction must fetch its block
		// even when the trace begins in block 0.
		refetch:    true,
		la:         newLookahead(s, scanBudget),
		budget:     budget,
		fetchStep:  fetchStep,
		scanBudget: scanBudget,
		robRing:    make([]uint64, cfg.ROBSize),
		ftqRing:    make([]uint64, ftqCap),
		// start is the cycle the thread begins at: 0 on a fresh machine,
		// the functional clock after WarmFunctional, so detailed timing
		// never runs behind hierarchy state warmed at a later cycle.
		fetchCycle:        start,
		lastRetire:        start,
		lastRetireAtReset: start,
		lastLoadDone:      start,
	}
	if len(t.la.buf) < scanBudget {
		panic(fmt.Sprintf("sim: lookahead capacity %d < FDIP scan budget %d", len(t.la.buf), scanBudget))
	}
	return t
}

// pipelineFillLatency is the constant decode/rename depth between fetch
// and dispatch.
const pipelineFillLatency = 8

// step simulates one instruction of thread t end to end.
//
//itp:hotpath
func (m *Machine) step(t *threadCtx) {
	c := t.core
	var in workload.Instr
	if t.retired >= t.budget || !t.la.pop(&in) {
		t.done = true
		return
	}
	if t.fdipCursor > 0 {
		t.fdipCursor--
	}

	// ---- Front end ----
	// FTQ backpressure: fetch may run at most ftqCap instructions ahead
	// of dispatch.
	if bp := t.ftqRing[t.ftqPos]; t.fetchCycle < bp {
		t.fetchCycle = bp
	}

	blk := arch.BlockAddr(in.PC)
	if blk != t.fetchBlock || t.refetch {
		t.refetch = false
		t.fetchBlock = blk
		done := m.ifetch(c, t.fetchCycle, in.PC, t.id)
		if done > t.fetchReady {
			t.fetchReady = done
		}
		m.fdipScan(t)
	}
	fetchDone := t.fetchCycle
	if t.fetchReady > fetchDone {
		fetchDone = t.fetchReady
		t.fetchCycle = t.fetchReady // in-order front end
	}
	// Fetch bandwidth.
	t.fetchSub++
	if t.fetchSub >= m.cfg.FetchWidth {
		t.fetchSub = 0
		t.fetchCycle += t.fetchStep
	}

	// ---- Dispatch (ROB occupancy) ----
	dispatch := fetchDone + pipelineFillLatency
	if oldest := t.robRing[t.robPos]; dispatch < oldest {
		dispatch = oldest // ROB full: wait for the oldest to retire
		m.backBound++
	} else {
		m.frontBound++
	}
	t.ftqRing[t.ftqPos] = dispatch
	if t.ftqPos++; t.ftqPos == len(t.ftqRing) {
		t.ftqPos = 0
	}

	// ---- Execute / memory ----
	execDone := dispatch + m.cfg.ExecLatency
	if in.LoadAddr != 0 {
		start := dispatch
		if in.DepLoad && t.lastLoadDone > start {
			// Pointer chase: the address comes from the previous load.
			start = t.lastLoadDone
		}
		loadDone := m.dataAccess(c, start, in.LoadAddr, in.PC, false, t.id)
		t.lastLoadDone = loadDone
		if loadDone > execDone {
			execDone = loadDone
		}
	}
	if in.StoreAddr != 0 {
		// Stores retire from the store buffer; the access updates cache
		// state but does not extend the critical path.
		m.dataAccess(c, dispatch, in.StoreAddr, in.PC, true, t.id)
	}

	if in.IsBranch {
		if m.chirp != nil && in.Taken {
			m.chirp.Observe(t.id, uint64(in.PC))
		}
		predictedRight := false
		if c.perceptron != nil {
			predictedRight = c.perceptron.Predict(in.PC) == in.Taken
			c.perceptron.Update(in.PC, in.Taken)
		} else {
			predictedRight = m.predictBranch(c)
		}
		if !predictedRight {
			m.metBranchMispred.Inc()
			// Mispredict: the front end redirects after resolution and
			// must refetch the target block, wherever it lives (an
			// address sentinel would miss targets in block 0).
			redirect := execDone + m.cfg.MispredictPen
			if t.fetchCycle < redirect {
				t.fetchCycle = redirect
			}
			t.refetch = true
		}
	}

	// ---- Retire (in order, bounded width) ----
	rt := execDone
	if rt < t.lastRetire {
		rt = t.lastRetire
	}
	if rt == t.lastRetire {
		t.retireSub++
		if t.retireSub >= m.cfg.RetireWidth {
			rt++
			t.retireSub = 0
		}
	} else {
		t.retireSub = 1
	}
	t.lastRetire = rt

	t.robRing[t.robPos] = rt
	if t.robPos++; t.robPos == len(t.robRing) {
		t.robPos = 0
	}
	if c := arch.Cycle(rt); c > m.maxRetireCycle {
		m.maxRetireCycle = c
	}

	t.retired++
	m.retiredLocal++
	rtot := m.retiredLocal
	// Publish progress for the watchdog in batches: a per-retire atomic
	// store costs measurable throughput, and the watchdog samples at
	// millisecond granularity, so sub-millisecond staleness is invisible.
	if rtot&retirePublishMask == 0 {
		m.retiredTotal.Store(rtot)
		if rtot&diagPublishMask == 0 {
			//itp:cold — diagnostic snapshot every 2^20 retires
			m.publishDiag()
		}
	}
	if m.ctrl != nil {
		m.ctrl.OnRetire(1)
	}
	// Close the metrics window after the controller has judged its own
	// window, so the record carries the decision that this boundary
	// produced (the windows are aligned when the sizes match).
	if m.met != nil && arch.Instr(rtot) >= m.met.next {
		//itp:cold — window close runs once per thousand retires, not per instruction
		m.closeMetricsWindow(arch.Instr(rtot))
	}
	// Beacon emission follows the window close so the fingerprint covers
	// the state the window's decision left behind (aligned intervals see
	// both fire at the same boundary).
	if m.beacons != nil && arch.Instr(rtot) >= m.beacons.next {
		//itp:cold — beacon emission runs once per interval, not per instruction
		m.emitBeacon(arch.Instr(rtot))
	}
	if m.auditor != nil && arch.Instr(rtot) >= m.auditNext {
		//itp:cold — structural audit runs once per interval, not per instruction
		m.runAudit(arch.Instr(rtot))
	}
	if t.retired >= t.budget {
		t.done = true
	}
}

// retirePublishMask batches retiredTotal stores (must divide the diag
// publish interval so the nested boundary check still fires).
const retirePublishMask = 1<<10 - 1

// fdipScan advances the FDIP cursor through the lookahead buffer,
// prefetching upcoming fetch blocks whose translations the ITLB already
// holds. The scan stops at the configured block distance — bounded by
// scanBudget lookahead instructions, the most FDIPDistance blocks can
// hold — or at the first block whose translation is unknown; the front
// end cannot prefetch past a pending instruction translation.
//
//itp:hotpath
func (m *Machine) fdipScan(t *threadCtx) {
	if !m.cfg.L1IFDIP {
		return
	}
	blocks := 0
	for i := t.fdipCursor; blocks < m.cfg.FDIPDistance && i < t.scanBudget; i++ {
		in := t.la.peek(i)
		if in == nil {
			break
		}
		blk := arch.BlockAddr(in.PC)
		if blk == t.fdipBlock {
			t.fdipCursor = i + 1
			continue
		}
		if !m.fdipPrefetch(t.core, t.fetchCycle, in.PC, t.id) {
			break // unknown translation: FDIP stalls here
		}
		t.fdipBlock = blk
		t.fdipCursor = i + 1
		blocks++
	}
}
