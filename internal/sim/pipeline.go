package sim

import (
	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/workload"
)

// lookahead buffers upcoming instructions so the decoupled front-end can
// prefetch future fetch blocks (FDIP) before fetch reaches them.
type lookahead struct {
	s     workload.Stream
	buf   []workload.Instr
	head  int
	size  int
	ended bool
}

func newLookahead(s workload.Stream, capacity int) *lookahead {
	return &lookahead{s: s, buf: make([]workload.Instr, capacity)}
}

// fill tops the buffer up to capacity.
func (l *lookahead) fill() {
	for !l.ended && l.size < len(l.buf) {
		idx := (l.head + l.size) % len(l.buf)
		if !l.s.Next(&l.buf[idx]) {
			l.ended = true
			return
		}
		l.size++
	}
}

// peek returns the i-th upcoming instruction (0 = next), or nil.
func (l *lookahead) peek(i int) *workload.Instr {
	if i >= l.size {
		l.fill()
	}
	if i >= l.size {
		return nil
	}
	return &l.buf[(l.head+i)%len(l.buf)]
}

// pop consumes the next instruction.
func (l *lookahead) pop(in *workload.Instr) bool {
	if l.size == 0 {
		l.fill()
		if l.size == 0 {
			return false
		}
	}
	*in = l.buf[l.head]
	l.head = (l.head + 1) % len(l.buf)
	l.size--
	return true
}

// threadCtx is the per-hardware-thread pipeline state.
type threadCtx struct {
	id uint8
	la *lookahead

	budget         uint64
	retired        uint64
	retiredAtReset uint64
	done           bool

	// Front end.
	fetchCycle uint64 // when the fetch unit may fetch the next instruction
	fetchStep  uint64 // cycles consumed per fetch group (2 under SMT)
	fetchSub   int    // instructions fetched in the current group
	fetchBlock arch.Addr
	fetchReady uint64 // when the current block's fetch completes
	fdipCursor int    // lookahead index the FDIP scan has reached
	fdipBlock  arch.Addr

	// Back end.
	robRing []uint64 // retire times of the last ROBSize instructions
	robPos  int
	ftqRing []uint64 // dispatch times for FTQ backpressure
	ftqPos  int

	lastRetire   uint64
	retireSub    int
	lastLoadDone uint64
}

func newThreadCtx(id uint8, s workload.Stream, cfg *config.SystemConfig, fetchStep uint64, budget uint64) *threadCtx {
	// The FTQ bounds how far fetch may run ahead of dispatch; beyond it
	// the decoupled front-end can no longer hide instruction-side misses.
	ftqCap := cfg.FTQDepth
	return &threadCtx{
		id:        id,
		la:        newLookahead(s, cfg.FDIPDistance*16+64),
		budget:    budget,
		fetchStep: fetchStep,
		robRing:   make([]uint64, cfg.ROBSize),
		ftqRing:   make([]uint64, ftqCap),
	}
}

// pipelineFillLatency is the constant decode/rename depth between fetch
// and dispatch.
const pipelineFillLatency = 8

// step simulates one instruction of thread t end to end.
func (m *Machine) step(t *threadCtx) {
	var in workload.Instr
	if t.retired >= t.budget || !t.la.pop(&in) {
		t.done = true
		return
	}
	if t.fdipCursor > 0 {
		t.fdipCursor--
	}

	// ---- Front end ----
	// FTQ backpressure: fetch may run at most ftqCap instructions ahead
	// of dispatch.
	if bp := t.ftqRing[t.ftqPos]; t.fetchCycle < bp {
		t.fetchCycle = bp
	}

	blk := arch.BlockAddr(in.PC)
	if blk != t.fetchBlock {
		t.fetchBlock = blk
		done := m.ifetch(t.fetchCycle, in.PC, t.id)
		if done > t.fetchReady {
			t.fetchReady = done
		}
		m.fdipScan(t)
	}
	fetchDone := t.fetchCycle
	if t.fetchReady > fetchDone {
		fetchDone = t.fetchReady
		t.fetchCycle = t.fetchReady // in-order front end
	}
	// Fetch bandwidth.
	t.fetchSub++
	if t.fetchSub >= m.cfg.FetchWidth {
		t.fetchSub = 0
		t.fetchCycle += t.fetchStep
	}

	// ---- Dispatch (ROB occupancy) ----
	dispatch := fetchDone + pipelineFillLatency
	if oldest := t.robRing[t.robPos]; dispatch < oldest {
		dispatch = oldest // ROB full: wait for the oldest to retire
		m.backBound++
	} else {
		m.frontBound++
	}
	t.ftqRing[t.ftqPos] = dispatch
	t.ftqPos = (t.ftqPos + 1) % len(t.ftqRing)

	// ---- Execute / memory ----
	execDone := dispatch + m.cfg.ExecLatency
	if in.LoadAddr != 0 {
		start := dispatch
		if in.DepLoad && t.lastLoadDone > start {
			// Pointer chase: the address comes from the previous load.
			start = t.lastLoadDone
		}
		loadDone := m.dataAccess(start, in.LoadAddr, in.PC, false, t.id)
		t.lastLoadDone = loadDone
		if loadDone > execDone {
			execDone = loadDone
		}
	}
	if in.StoreAddr != 0 {
		// Stores retire from the store buffer; the access updates cache
		// state but does not extend the critical path.
		m.dataAccess(dispatch, in.StoreAddr, in.PC, true, t.id)
	}

	if in.IsBranch {
		if m.chirp != nil && in.Taken {
			m.chirp.Observe(t.id, uint64(in.PC))
		}
		predictedRight := false
		if m.perceptron != nil {
			predictedRight = m.perceptron.Predict(in.PC) == in.Taken
			m.perceptron.Update(in.PC, in.Taken)
		} else {
			predictedRight = m.predictBranch()
		}
		if !predictedRight {
			// Mispredict: the front end redirects after resolution.
			redirect := execDone + m.cfg.MispredictPen
			if t.fetchCycle < redirect {
				t.fetchCycle = redirect
			}
			t.fetchBlock = 0 // refetch the target block
		}
	}

	// ---- Retire (in order, bounded width) ----
	rt := execDone
	if rt < t.lastRetire {
		rt = t.lastRetire
	}
	if rt == t.lastRetire {
		t.retireSub++
		if t.retireSub >= m.cfg.RetireWidth {
			rt++
			t.retireSub = 0
		}
	} else {
		t.retireSub = 1
	}
	t.lastRetire = rt

	t.robRing[t.robPos] = rt
	t.robPos = (t.robPos + 1) % len(t.robRing)
	if rt > m.maxRetireCycle {
		m.maxRetireCycle = rt
	}

	t.retired++
	rtot := m.retiredTotal.Add(1)
	if rtot&diagPublishMask == 0 {
		m.publishDiag()
	}
	if m.ctrl != nil {
		m.ctrl.OnRetire(1)
	}
	// Close the metrics window after the controller has judged its own
	// window, so the record carries the decision that this boundary
	// produced (the windows are aligned when the sizes match).
	if m.met != nil && rtot >= m.met.next {
		m.closeMetricsWindow(rtot)
	}
	if t.retired >= t.budget {
		t.done = true
	}
}

// fdipScan advances the FDIP cursor through the lookahead buffer,
// prefetching upcoming fetch blocks whose translations the ITLB already
// holds. The scan stops at the configured distance or at the first block
// whose translation is unknown — the front end cannot prefetch past a
// pending instruction translation.
func (m *Machine) fdipScan(t *threadCtx) {
	if !m.cfg.L1IFDIP {
		return
	}
	blocks := 0
	for i := t.fdipCursor; blocks < m.cfg.FDIPDistance; i++ {
		in := t.la.peek(i)
		if in == nil {
			break
		}
		blk := arch.BlockAddr(in.PC)
		if blk == t.fdipBlock {
			t.fdipCursor = i + 1
			continue
		}
		if !m.fdipPrefetch(t.fetchCycle, in.PC, t.id) {
			break // unknown translation: FDIP stalls here
		}
		t.fdipBlock = blk
		t.fdipCursor = i + 1
		blocks++
	}
}
