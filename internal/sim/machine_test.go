package sim

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// loopStream replays a tiny instruction loop: n distinct PCs in one page,
// optionally with a load per iteration.
func loopStream(pcs int, loadEvery int) workload.Stream {
	var instrs []workload.Instr
	for i := 0; i < pcs; i++ {
		in := workload.Instr{PC: 0x400000 + arch.Addr(i*4)}
		if loadEvery > 0 && i%loadEvery == 0 {
			in.LoadAddr = 0x10000000 + arch.Addr(i)*8
		}
		instrs = append(instrs, in)
	}
	return &workload.Replay{Instrs: instrs}
}

func testConfig() config.SystemConfig {
	return config.Default()
}

func TestNewMachineValidatesConfig(t *testing.T) {
	cfg := testConfig()
	cfg.ROBSize = 0
	if _, err := NewMachine(cfg); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestNewMachineUnknownPolicies(t *testing.T) {
	for _, mut := range []func(*config.SystemConfig){
		func(c *config.SystemConfig) { c.STLBPolicy = "bogus" },
		func(c *config.SystemConfig) { c.L2CPolicy = "bogus" },
		func(c *config.SystemConfig) { c.LLCPolicy = "bogus" },
	} {
		cfg := testConfig()
		mut(&cfg)
		if _, err := NewMachine(cfg); err == nil {
			t.Error("unknown policy should fail")
		}
	}
}

func TestAllPolicyCombinationsConstruct(t *testing.T) {
	stlbs := []string{"lru", "itp", "chirp", "problru"}
	l2cs := []string{"lru", "xptp", "xptp-static", "xptp-emissary", "ptp", "tdrrip", "tship", "emissary", "drrip", "srrip", "ship", "mockingjay"}
	llcs := []string{"lru", "ship", "mockingjay", "hawkeye", "tship"}
	for _, s := range stlbs {
		for _, l2 := range l2cs {
			for _, l3 := range llcs {
				cfg := testConfig()
				cfg.STLBPolicy, cfg.L2CPolicy, cfg.LLCPolicy = s, l2, l3
				if _, err := NewMachine(cfg); err != nil {
					t.Errorf("combo %s/%s/%s: %v", s, l2, l3, err)
				}
			}
		}
	}
}

func TestRunBasicAccounting(t *testing.T) {
	m, err := NewMachine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Run([]workload.Stream{loopStream(1000, 5)}, 1000)
	if got := res.Stats.TotalInstructions(); got != 1000 {
		t.Errorf("instructions = %d, want 1000", got)
	}
	if res.Stats.Cycles == 0 {
		t.Error("no cycles recorded")
	}
	if res.IPC <= 0 || res.IPC > float64(m.cfg.RetireWidth) {
		t.Errorf("IPC = %v out of plausible range", res.IPC)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_001")
	var cycles [2]uint64
	for i := range cycles {
		m, _ := NewMachine(testConfig())
		res, _ := m.Run([]workload.Stream{spec.NewStream()}, 50000)
		cycles[i] = uint64(res.Stats.Cycles)
	}
	if cycles[0] != cycles[1] {
		t.Errorf("two identical runs diverged: %d vs %d cycles", cycles[0], cycles[1])
	}
}

func TestStreamShorterThanBudget(t *testing.T) {
	m, _ := NewMachine(testConfig())
	res, _ := m.Run([]workload.Stream{loopStream(100, 0)}, 10000)
	if got := res.Stats.TotalInstructions(); got != 100 {
		t.Errorf("instructions = %d, want 100 (stream exhausted)", got)
	}
}

func TestTranslationPathCounts(t *testing.T) {
	m, _ := NewMachine(testConfig())
	// One page of code, loads spread over many pages: expect DTLB misses
	// and walks, ITLB near-perfect after first touch.
	var instrs []workload.Instr
	for i := 0; i < 5000; i++ {
		in := workload.Instr{PC: 0x400000 + arch.Addr((i%16)*4)}
		in.LoadAddr = 0x10000000000 + arch.Addr(i)*arch.PageSize4K
		instrs = append(instrs, in)
	}
	res, _ := m.Run([]workload.Stream{&workload.Replay{Instrs: instrs}}, 5000)
	s := res.Stats
	if s.PageWalks[arch.DataClass] < 4000 {
		t.Errorf("expected ~5000 data walks, got %d", s.PageWalks[arch.DataClass])
	}
	if s.ITLB.TotalMisses() > 5 {
		t.Errorf("ITLB misses = %d, want few (single code page)", s.ITLB.TotalMisses())
	}
	if s.DTLB.TotalMisses() < 4000 {
		t.Errorf("DTLB misses = %d, want ~5000", s.DTLB.TotalMisses())
	}
	// Every data walk inserts PTE blocks into L2C.
	_, pte, dataPTE := m.L2COccupancy()
	if pte == 0 || dataPTE == 0 {
		t.Error("walks should leave PTE blocks in the L2C")
	}
}

func TestInstrTransCyclesAccumulate(t *testing.T) {
	m, _ := NewMachine(testConfig())
	// Code spanning many pages: instruction translations must cost cycles.
	var instrs []workload.Instr
	for i := 0; i < 20000; i++ {
		instrs = append(instrs, workload.Instr{PC: 0x400000 + arch.Addr(i)*256})
	}
	res, _ := m.Run([]workload.Stream{&workload.Replay{Instrs: instrs}}, 20000)
	if res.Stats.InstrTransCycles == 0 {
		t.Error("instruction translation cycles not accounted")
	}
	if res.Stats.PageWalks[arch.InstrClass] == 0 {
		t.Error("expected instruction page walks")
	}
}

func TestSMTRunSharesStructures(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	a, _ := cat.Get("srv_000")
	b, _ := cat.Get("srv_001")
	m, _ := NewMachine(testConfig())
	res, _ := m.Run([]workload.Stream{a.NewStream(), b.NewStream()}, 20000)
	if res.Stats.Instructions[0] != 20000 || res.Stats.Instructions[1] != 20000 {
		t.Errorf("per-thread instructions = %v", res.Stats.Instructions)
	}
	if res.Stats.TotalInstructions() != 40000 {
		t.Error("total instructions wrong")
	}
	if res.IPC <= 0 {
		t.Error("SMT IPC not computed")
	}
}

func TestSMTContention(t *testing.T) {
	// Co-running two copies of a workload must be slower per thread than
	// running one alone (shared STLB/caches/DRAM contention).
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	solo, _ := NewMachine(testConfig())
	soloRes, _ := solo.Run([]workload.Stream{spec.NewStream()}, 50000)

	smt, _ := NewMachine(testConfig())
	smtRes, _ := smt.Run([]workload.Stream{spec.NewStream(), spec.NewStream()}, 50000)

	perThreadSMT := smtRes.IPC / 2
	if perThreadSMT >= soloRes.IPC {
		t.Errorf("SMT per-thread IPC %.4f >= solo %.4f; expected contention", perThreadSMT, soloRes.IPC)
	}
	// Memory-bound identical pairs can interfere destructively, but the
	// combined throughput must stay in a sane band of the solo run.
	if smtRes.IPC < 0.6*soloRes.IPC {
		t.Errorf("SMT total IPC %.4f implausibly low vs solo %.4f", smtRes.IPC, soloRes.IPC)
	}
}

func TestRunWarmupResetsStats(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	m, _ := NewMachine(testConfig())
	res, _ := m.RunWarmup([]workload.Stream{spec.NewStream()}, 30000, 30000)
	if got := res.Stats.TotalInstructions(); got != 30000 {
		t.Errorf("measured instructions = %d, want 30000 (warmup excluded)", got)
	}
	if res.Stats.Cycles == 0 {
		t.Error("cycles not measured")
	}
}

func TestWarmupImprovesMeasuredHitRates(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	cold, _ := NewMachine(testConfig())
	coldRes, _ := cold.Run([]workload.Stream{spec.NewStream()}, 50000)

	warm, _ := NewMachine(testConfig())
	warmRes, _ := warm.RunWarmup([]workload.Stream{spec.NewStream()}, 50000, 50000)

	if warmRes.Stats.STLB.HitRate() < coldRes.Stats.STLB.HitRate() {
		t.Errorf("warmed STLB hit rate %.3f < cold %.3f", warmRes.Stats.STLB.HitRate(), coldRes.Stats.STLB.HitRate())
	}
}

func TestITPReducesInstrSTLBMisses(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	run := func(pol string) float64 {
		cfg := testConfig()
		cfg.STLBPolicy = pol
		m, _ := NewMachine(cfg)
		res, _ := m.RunWarmup([]workload.Stream{spec.NewStream()}, 200000, 400000)
		ti := res.Stats.TotalInstructions()
		return float64(res.Stats.STLB.Misses[1]) / float64(ti) * 1000 // BInstr bucket
	}
	lru := run("lru")
	itp := run("itp")
	if itp >= lru {
		t.Errorf("iTP iMPKI %.3f >= LRU %.3f; iTP must protect instruction translations", itp, lru)
	}
}

func TestXPTPIncreasesL2CPTEOccupancy(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	occupancy := func(l2c string) int {
		cfg := testConfig()
		cfg.STLBPolicy = "itp"
		cfg.L2CPolicy = l2c
		m, _ := NewMachine(cfg)
		m.RunWarmup([]workload.Stream{spec.NewStream()}, 200000, 400000)
		_, _, dataPTE := m.L2COccupancy()
		return dataPTE
	}
	if lru, xptp := occupancy("lru"), occupancy("xptp-static"); xptp <= lru {
		t.Errorf("xPTP data-PTE occupancy %d <= LRU %d", xptp, lru)
	}
}

func TestSplitSTLBRuns(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	cfg := testConfig()
	cfg.SplitSTLB = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.STLBPolicyName() != "split" {
		t.Error("split STLB not constructed")
	}
	res, _ := m.Run([]workload.Stream{spec.NewStream()}, 30000)
	if res.IPC <= 0 {
		t.Error("split STLB run failed")
	}
}

func TestHugePagesReduceWalks(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	walks := func(frac float64) uint64 {
		cfg := testConfig()
		cfg.HugePageFraction = frac
		m, _ := NewMachine(cfg)
		res, _ := m.Run([]workload.Stream{spec.NewStream()}, 100000)
		return res.Stats.PageWalks[0] + res.Stats.PageWalks[1]
	}
	if w0, w100 := walks(0), walks(1.0); w100 >= w0 {
		t.Errorf("2MB pages should reduce walks: 4KB=%d, 2MB=%d", w0, w100)
	}
}

func TestHugePagesImproveIPC(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_003")

	ipc := func(frac float64) float64 {
		cfg := testConfig()
		cfg.HugePageFraction = frac
		m, _ := NewMachine(cfg)
		res, _ := m.RunWarmup([]workload.Stream{spec.NewStream()}, 100000, 200000)
		return res.IPC
	}
	if i0, i100 := ipc(0), ipc(1.0); i100 <= i0 {
		t.Errorf("full 2MB backing should improve IPC: %.4f vs %.4f", i100, i0)
	}
}

func TestControllerWiredThroughMachine(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	cfg := testConfig()
	cfg.L2CPolicy = "xptp"
	m, _ := NewMachine(cfg)
	if m.Controller() == nil {
		t.Fatal("xptp should create the adaptive controller")
	}
	res, _ := m.Run([]workload.Stream{spec.NewStream()}, 100000)
	if res.Stats.XPTPEnabledWindows+res.Stats.XPTPDisabledWindows == 0 {
		t.Error("controller windows not recorded")
	}
}

func TestBiggerITLBReducesInstrTransCycles(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	frac := func(entries int) float64 {
		cfg := testConfig().WithITLBEntries(entries)
		m, _ := NewMachine(cfg)
		res, _ := m.RunWarmup([]workload.Stream{spec.NewStream()}, 100000, 200000)
		return res.Stats.InstrTransFraction()
	}
	if small, big := frac(64), frac(1024); big >= small {
		t.Errorf("1024-entry ITLB should cut instruction translation overhead: %.4f vs %.4f", big, small)
	}
}

func TestFDIPReducesL1IMisses(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	l1iMPKI := func(fdip bool) float64 {
		cfg := testConfig()
		cfg.L1IFDIP = fdip
		m, _ := NewMachine(cfg)
		res, _ := m.RunWarmup([]workload.Stream{spec.NewStream()}, 100000, 200000)
		return res.Stats.L1I.MPKI(res.Stats.TotalInstructions())
	}
	if off, on := l1iMPKI(false), l1iMPKI(true); on >= off {
		t.Errorf("FDIP should reduce L1I MPKI: on=%.3f off=%.3f", on, off)
	}
}

func TestLookaheadBuffer(t *testing.T) {
	instrs := make([]workload.Instr, 50)
	for i := range instrs {
		instrs[i].PC = arch.Addr(i)
	}
	la := newLookahead(&workload.Replay{Instrs: instrs}, 16)
	if got := la.peek(0); got == nil || got.PC != 0 {
		t.Fatal("peek(0) wrong")
	}
	if got := la.peek(10); got == nil || got.PC != 10 {
		t.Fatal("peek(10) wrong")
	}
	var in workload.Instr
	for i := 0; i < 50; i++ {
		if !la.pop(&in) || in.PC != arch.Addr(i) {
			t.Fatalf("pop %d wrong: %+v", i, in)
		}
	}
	if la.pop(&in) {
		t.Error("exhausted lookahead should return false")
	}
	if la.peek(0) != nil {
		t.Error("peek past end should be nil")
	}
}

func TestSTLBPrefetchExtension(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")

	run := func(enable bool) *Machine {
		cfg := testConfig()
		cfg.STLBPrefetch = enable
		m, _ := NewMachine(cfg)
		m.RunWarmup([]workload.Stream{spec.NewStream()}, 100000, 200000)
		return m
	}
	off := run(false)
	on := run(true)
	if on.Stats.STLBPrefetches == 0 {
		t.Fatal("extension enabled but no prefetches issued")
	}
	if off.Stats.STLBPrefetches != 0 {
		t.Error("extension disabled but prefetches recorded")
	}
	// Sequential code-page prefetching should not increase instruction
	// STLB misses (it may reduce them).
	onMiss := on.Stats.STLB.Misses[stats.BInstr]
	offMiss := off.Stats.STLB.Misses[stats.BInstr]
	if float64(onMiss) > 1.05*float64(offMiss) {
		t.Errorf("prefetching raised instruction STLB misses: %d vs %d", onMiss, offMiss)
	}
}

func TestPerceptronPredictorOption(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	for _, bp := range []string{"fixed", "perceptron"} {
		cfg := testConfig()
		cfg.BranchPredictor = bp
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", bp, err)
		}
		res, _ := m.Run([]workload.Stream{spec.NewStream()}, 30000)
		if res.IPC <= 0 {
			t.Errorf("%s: no progress", bp)
		}
	}
	cfg := testConfig()
	cfg.BranchPredictor = "oracle"
	if _, err := NewMachine(cfg); err == nil {
		t.Error("unknown predictor should be rejected")
	}
}

func TestSTLBMSHRMergesConcurrentWalks(t *testing.T) {
	m, _ := NewMachine(testConfig())
	// Two independent (non-dependent) loads to the same cold page in
	// back-to-back instructions: the second must merge into the first
	// walk rather than starting its own.
	instrs := []workload.Instr{
		{PC: 0x400000, LoadAddr: 0x7000000000},
		{PC: 0x400004, LoadAddr: 0x7000000100},
	}
	res, _ := m.Run([]workload.Stream{&workload.Replay{Instrs: instrs}}, 2)
	if got := res.Stats.PageWalks[arch.DataClass]; got != 1 {
		t.Errorf("data walks = %d, want 1 (second miss merges)", got)
	}
	// Both accesses still count as STLB misses.
	if got := res.Stats.STLB.TotalMisses(); got != 2 {
		t.Errorf("STLB misses = %d, want 2", got)
	}
}

func TestSMTRunIsDeterministic(t *testing.T) {
	cat := workload.NewCatalog(4, 2)
	a, _ := cat.Get("srv_000")
	b, _ := cat.Get("srv_001")
	var cycles [2]uint64
	for i := range cycles {
		m, _ := NewMachine(testConfig())
		res, _ := m.Run([]workload.Stream{a.NewStream(), b.NewStream()}, 30000)
		cycles[i] = uint64(res.Stats.Cycles)
	}
	if cycles[0] != cycles[1] {
		t.Errorf("SMT runs diverged: %d vs %d", cycles[0], cycles[1])
	}
}

func TestHugePagesReachSTLBEntries(t *testing.T) {
	cfg := testConfig()
	cfg.HugePageFraction = 1.0
	m, _ := NewMachine(cfg)
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	m.Run([]workload.Stream{spec.NewStream()}, 50000)
	// With full 2MB backing the page walks must be 4-step (level-2 leaf),
	// observable as dramatically fewer distinct translations: the STLB
	// should be far from full.
	i, d := m.STLBOccupancy()
	if i+d == 0 {
		t.Fatal("no STLB entries at all")
	}
	if i+d > 1000 {
		t.Errorf("2MB backing should shrink the translation working set, got %d entries", i+d)
	}
}
