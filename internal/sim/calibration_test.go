package sim

import (
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// TestServerWorkloadsMatchPaperBands pins the synthetic server workloads
// to the paper's published characteristics (Section 5.2 and Figures 1-2):
//   - total STLB MPKI >= 1 (the paper's workload selection criterion),
//   - instruction STLB MPKI in a band around the paper's 0.1-0.9,
//   - a nontrivial share of cycles on instruction address translation.
//
// If a generator retune breaks these, every experiment's premise is off,
// so fail loudly here rather than in a figure.
func TestServerWorkloadsMatchPaperBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check needs a few hundred thousand instructions")
	}
	cat := workload.NewCatalog(120, 20)
	for _, name := range []string{"srv_000", "srv_003", "srv_007", "srv_013"} {
		spec, err := cat.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := NewMachine(config.Default())
		res, _ := m.RunWarmup([]workload.Stream{spec.NewStream()}, 200_000, 600_000)
		s := res.Stats
		ti := s.TotalInstructions()

		if mpki := s.STLB.MPKI(ti); mpki < 1.0 {
			t.Errorf("%s: STLB MPKI %.2f < 1.0 (paper's selection floor)", name, mpki)
		}
		// At this short scale cold-start misses inflate iMPKI ~3x over
		// the steady-state 0.3-0.9 band seen at the default 1M+3M scale,
		// so the guard band here is wider.
		if impki := s.STLB.BucketMPKI(stats.BInstr, ti); impki < 0.05 || impki > 3.5 {
			t.Errorf("%s: instruction STLB MPKI %.2f outside [0.05, 3.5]", name, impki)
		}
		if itc := s.InstrTransFraction(); itc < 0.01 || itc > 0.35 {
			t.Errorf("%s: instruction-translation share %.1f%% outside [1%%, 35%%]", name, 100*itc)
		}
		if ipc := res.IPC; ipc < 0.05 || ipc > 2.0 {
			t.Errorf("%s: baseline IPC %.3f implausible", name, ipc)
		}
	}
}

// TestSpecWorkloadsMatchPaperBands pins the SPEC-like suite: tiny
// instruction-side pressure.
func TestSpecWorkloadsMatchPaperBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check needs a few hundred thousand instructions")
	}
	cat := workload.NewCatalog(120, 20)
	for _, name := range []string{"spec_000", "spec_003"} {
		spec, err := cat.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := NewMachine(config.Default())
		res, _ := m.RunWarmup([]workload.Stream{spec.NewStream()}, 100_000, 300_000)
		s := res.Stats
		ti := s.TotalInstructions()
		if impki := s.STLB.BucketMPKI(stats.BInstr, ti); impki > 0.05 {
			t.Errorf("%s: instruction STLB MPKI %.3f should be negligible", name, impki)
		}
		if itc := s.InstrTransFraction(); itc > 0.02 {
			t.Errorf("%s: instruction-translation share %.2f%% should be tiny", name, 100*itc)
		}
	}
}
