package cache

import (
	"errors"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/audit"
	"itpsim/internal/replacement"
)

func cacheHash(c *Cache) uint64 {
	h := arch.NewStateHash()
	c.HashState(&h)
	return h.Sum()
}

func auditCache(t *testing.T, c *Cache, now uint64) []audit.Violation {
	t.Helper()
	a := &audit.Auditor{}
	a.Register(c.Name(), c)
	err := a.Run(0, now)
	if err == nil {
		return nil
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("audit returned %T: %v", err, err)
	}
	return ae.Violations
}

func trafficCache() *Cache {
	next := &fixedLevel{latency: 100}
	c := New("l2c", smallCfg(), replacement.NewLRU(), next, nil)
	for i := 0; i < 10; i++ {
		c.Access(uint64(i)*200, load(arch.Addr(0x1000+i*64)))
	}
	return c
}

func TestCacheHashStateDeterministic(t *testing.T) {
	a, b := trafficCache(), trafficCache()
	if cacheHash(a) != cacheHash(b) {
		t.Fatal("identical caches must hash equal")
	}
	if cacheHash(a) != cacheHash(a) {
		t.Fatal("hashing must not mutate state")
	}
	a.Access(10_000, load(0x9000))
	if cacheHash(a) == cacheHash(b) {
		t.Fatal("an extra access must change the hash")
	}
}

func TestCacheHashStateCoversMSHRs(t *testing.T) {
	a, b := trafficCache(), trafficCache()
	// An access whose MSHR is still in flight at hash time differs only
	// in the MSHR file and the filled line.
	a.Access(20_000, load(0xf000))
	if cacheHash(a) == cacheHash(b) {
		t.Fatal("an in-flight miss must change the hash")
	}
}

func TestCacheAuditCleanAfterTraffic(t *testing.T) {
	c := trafficCache()
	if v := auditCache(t, c, 100_000); v != nil {
		t.Fatalf("clean cache reported violations: %v", v)
	}
}

func TestCacheAuditDetectsStackCorruption(t *testing.T) {
	c := trafficCache()
	c.sets[0][0].Stack = 99
	found := false
	for _, v := range auditCache(t, c, 100_000) {
		if v.Rule == "stack-permutation" {
			found = true
		}
	}
	if !found {
		t.Fatal("corrupted stack position must be reported")
	}
}

func TestCacheAuditDetectsDuplicateBlock(t *testing.T) {
	c := trafficCache()
	// Force two valid ways of set 0 to the same (tag, thread).
	set := c.sets[0]
	set[0].Valid, set[1].Valid = true, true
	set[0].Tag, set[1].Tag = 0xabc, 0xabc
	set[0].Thread, set[1].Thread = 0, 0
	found := false
	for _, v := range auditCache(t, c, 100_000) {
		if v.Rule == "duplicate-block" {
			found = true
		}
	}
	if !found {
		t.Fatal("duplicate (tag, thread) in one set must be reported")
	}
}

func TestCacheAuditDetectsPTEBitViolations(t *testing.T) {
	c := trafficCache()
	set := c.sets[1]
	set[0].Valid = true
	set[0].IsDataPTE = true
	set[0].IsPTE = false
	set[1].Valid = true
	set[1].Tag = set[0].Tag + 1
	set[1].IsPTE = true
	set[1].STLBMiss = true
	rules := map[string]int{}
	for _, v := range auditCache(t, c, 100_000) {
		rules[v.Rule]++
	}
	if rules["pte-bits"] != 2 {
		t.Fatalf("want 2 pte-bits violations, got %v", rules)
	}
}

func TestCacheAuditDetectsMSHRLeak(t *testing.T) {
	c := trafficCache()
	now := uint64(100_000)
	c.mshrs[0] = mshrEntry{valid: true, block: 0x77, thread: 0, readyAt: now + mshrLeakHorizon + 1}
	found := false
	for _, v := range auditCache(t, c, now) {
		if v.Rule == "mshr-leak" {
			found = true
		}
	}
	if !found {
		t.Fatal("MSHR completing past the leak horizon must be reported")
	}
}

func TestCacheAuditDetectsDuplicateMSHR(t *testing.T) {
	c := trafficCache()
	now := uint64(100_000)
	c.mshrs[0] = mshrEntry{valid: true, block: 0x88, thread: 1, readyAt: now + 50}
	c.mshrs[1] = mshrEntry{valid: true, block: 0x88, thread: 1, readyAt: now + 80}
	found := false
	for _, v := range auditCache(t, c, now) {
		if v.Rule == "mshr-leak" {
			found = true
		}
	}
	if !found {
		t.Fatal("two in-flight MSHRs for one (block, thread) must be reported")
	}
}

func TestCacheAuditIgnoresRetiredMSHRs(t *testing.T) {
	c := trafficCache()
	now := uint64(100_000)
	// Entries whose readyAt has passed are dead capacity, not leaks,
	// even if stale duplicates remain in the file.
	c.mshrs[0] = mshrEntry{valid: true, block: 0x99, thread: 0, readyAt: now - 10}
	c.mshrs[1] = mshrEntry{valid: true, block: 0x99, thread: 0, readyAt: now - 5}
	if v := auditCache(t, c, now); v != nil {
		t.Fatalf("retired MSHR entries reported as violations: %v", v)
	}
}
