package cache

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/dram"
	"itpsim/internal/replacement"
	"itpsim/internal/stats"
)

// buildHierarchy wires L1D -> L2C -> LLC -> DRAM with the Table 1 sizes.
func buildHierarchy() (*Cache, *Cache, *Cache, *dram.DRAM, *stats.Sim) {
	cfg := config.Default()
	s := stats.NewSim()
	mem := dram.New(cfg.DRAM)
	llc := New("LLC", cfg.LLC, replacement.NewLRU(), levelFunc(mem.Access), &s.LLC)
	l2c := New("L2C", cfg.L2C, replacement.NewLRU(), llc, &s.L2C)
	l1d := New("L1D", cfg.L1D, replacement.NewLRU(), l2c, &s.L1D)
	return l1d, l2c, llc, mem, s
}

// levelFunc adapts a function to the Level interface.
type levelFunc func(uint64, *arch.Access) uint64

func (f levelFunc) Access(now uint64, acc *arch.Access) uint64 { return f(now, acc) }

func TestHierarchyColdMissFillsAllLevels(t *testing.T) {
	l1d, l2c, llc, mem, _ := buildHierarchy()
	acc := arch.Access{Addr: 0x123400, Kind: arch.Load, PC: 0x40}
	done := l1d.Access(0, &acc)
	// Cold miss traverses L1D(5) + L2C(5) + LLC(10) + DRAM(110).
	if done < 110 {
		t.Errorf("cold miss done=%d, expected DRAM-level latency", done)
	}
	for _, c := range []*Cache{l1d, l2c, llc} {
		if !c.Contains(0x123400, 0) {
			t.Errorf("%s missing block after fill", c.Name())
		}
	}
	if mem.Accesses != 1 {
		t.Errorf("DRAM accesses = %d, want 1", mem.Accesses)
	}
}

func TestHierarchySecondAccessHitsL1(t *testing.T) {
	l1d, _, _, mem, s := buildHierarchy()
	acc := arch.Access{Addr: 0x9000, Kind: arch.Load}
	l1d.Access(0, &acc)
	acc2 := arch.Access{Addr: 0x9008, Kind: arch.Load} // same block
	done := l1d.Access(1000, &acc2)
	if done != 1005 {
		t.Errorf("L1D hit done=%d, want 1005", done)
	}
	if mem.Accesses != 1 {
		t.Error("hit went to memory")
	}
	if s.L1D.TotalHits() != 1 {
		t.Error("hit not recorded")
	}
}

func TestHierarchyL1EvictionKeepsL2Copy(t *testing.T) {
	l1d, l2c, _, _, _ := buildHierarchy()
	cfg := config.Default()
	ways := cfg.L1D.Ways
	sets := cfg.L1D.Sets
	// Fill one L1D set beyond capacity; all blocks map to L1D set 0.
	for i := 0; i <= ways; i++ {
		acc := arch.Access{Addr: arch.Addr(i*sets) << arch.BlockBits, Kind: arch.Load}
		l1d.Access(uint64(i)*1000, &acc)
	}
	// The first block was evicted from L1D but must still be in L2C
	// (non-inclusive hierarchy fills every level on the way up).
	first := arch.Addr(0)
	if l1d.Contains(first, 0) {
		t.Skip("L1D did not evict; associativity larger than expected")
	}
	if !l2c.Contains(first, 0) {
		t.Error("L2C lost the block evicted from L1D")
	}
}

func TestHierarchyDirtyWritebackReachesDRAM(t *testing.T) {
	cfg := config.Default()
	s := stats.NewSim()
	mem := dram.New(cfg.DRAM)
	// Tiny L1D to force evictions quickly.
	small := config.CacheConfig{Sets: 2, Ways: 2, Latency: 1, MSHRs: 4}
	l1d := New("L1D", small, replacement.NewLRU(), levelFunc(mem.Access), &s.L1D)
	l1d.SetWriteback(mem.Writeback)

	for i := 0; i < 16; i++ {
		acc := arch.Access{Addr: arch.Addr(i) << arch.BlockBits, Kind: arch.Store}
		l1d.Access(uint64(i)*100, &acc)
	}
	if l1d.Writebacks == 0 {
		t.Fatal("no writebacks recorded")
	}
	// DRAM must have seen fills + writebacks.
	if mem.Accesses <= 16 {
		t.Errorf("DRAM accesses = %d, expected fills plus writebacks", mem.Accesses)
	}
}

func TestMPKIBucketsSeparateAtEachLevel(t *testing.T) {
	l1d, _, _, _, s := buildHierarchy()
	// Data load, then a PTW access for each class, far apart.
	l1d.Access(0, &arch.Access{Addr: 0x1000, Kind: arch.Load})
	l1d.Access(10, &arch.Access{Addr: 0x200000, Kind: arch.PTW, Class: arch.DataClass, IsPTE: true})
	l1d.Access(20, &arch.Access{Addr: 0x300000, Kind: arch.PTW, Class: arch.InstrClass, IsPTE: true})
	if s.L1D.Misses[stats.BData] != 1 || s.L1D.Misses[stats.BDataTrans] != 1 || s.L1D.Misses[stats.BInstrTrans] != 1 {
		t.Errorf("bucket separation wrong: %+v", s.L1D.Misses)
	}
}
