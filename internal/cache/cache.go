// Package cache implements the set-associative cache levels of the
// hierarchy: tag arrays with exact recency stacks, MSHRs that merge and
// bound outstanding misses, write-back of dirty victims, prefetch fills,
// and the PTE Type-bit propagation xPTP relies on (an access that misses
// carries its Type through the MSHR and writes it into the filled block,
// step 3.1 of the paper's Figure 7).
package cache

import (
	"fmt"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/prefetch"
	"itpsim/internal/replacement"
	"itpsim/internal/stats"
)

// Level is anything that can serve a block request and report when the
// data is available: a Cache or the DRAM terminal.
type Level interface {
	//itp:hotpath
	Access(now uint64, acc *arch.Access) (done uint64)
}

// mshrEntry tracks one outstanding miss.
type mshrEntry struct {
	block   uint64
	thread  uint8
	valid   bool
	readyAt uint64
}

// Cache is one set-associative cache level.
type Cache struct {
	name    string
	cfg     config.CacheConfig
	sets    [][]replacement.Line
	setMask uint64
	policy  replacement.Policy
	next    Level
	stats   *stats.Level
	mshrs   []mshrEntry

	prefetcher prefetch.Prefetcher
	// writebackFn lets dirty evictions consume downstream bandwidth
	// without the evicting access waiting on them.
	writebackFn func(now uint64, addr arch.Addr)

	// Writebacks counts dirty evictions; PrefetchIssued/PrefetchUseful
	// track prefetcher effectiveness.
	Writebacks     uint64
	PrefetchIssued uint64
	PrefetchUseful uint64

	// Observability counters (nil — and therefore free — until
	// Instrument attaches a registry). The PTE-eviction counters are the
	// signal xPTP's per-window telemetry is built from.
	evictionsCtr    *metrics.Counter
	evictPTECtr     *metrics.Counter
	evictDataPTECtr *metrics.Counter
	fillsCtr        *metrics.Counter
	writebacksCtr   *metrics.Counter
	demandMissCtr   *metrics.Counter

	// pfAcc is the scratch access train hands to the prefetch path. Safe
	// to reuse across the recursive Access call: prefetch-kind accesses
	// never re-enter train, and no level retains the pointer.
	pfAcc arch.Access
}

// New creates a cache level. next is the level misses go to; st is the
// statistics sink (may be nil for throwaway caches in tests).
func New(name string, cfg config.CacheConfig, pol replacement.Policy, next Level, st *stats.Level) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets must be a positive power of two, got %d", name, cfg.Sets))
	}
	c := &Cache{
		name:    name,
		cfg:     cfg,
		sets:    make([][]replacement.Line, cfg.Sets),
		setMask: uint64(cfg.Sets - 1),
		policy:  pol,
		next:    next,
		stats:   st,
		mshrs:   make([]mshrEntry, cfg.MSHRs),
	}
	for i := range c.sets {
		c.sets[i] = make([]replacement.Line, cfg.Ways)
		replacement.InitSet(c.sets[i])
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Policy returns the replacement policy in use.
func (c *Cache) Policy() replacement.Policy { return c.policy }

// SetPrefetcher attaches a prefetcher trained by demand accesses.
func (c *Cache) SetPrefetcher(p prefetch.Prefetcher) { c.prefetcher = p }

// SetWriteback attaches the dirty-eviction sink (normally DRAM bandwidth).
func (c *Cache) SetWriteback(fn func(now uint64, addr arch.Addr)) { c.writebackFn = fn }

// Instrument attaches observability counters from the registry under the
// given prefix (e.g. "l2c"): fills, evictions (total, PTE-holding, and
// data-PTE-holding — the blocks xPTP protects), writebacks, and demand
// misses (the per-window MPKI numerator the phase classifier clusters
// on). A nil registry leaves the counters nil and every update a no-op.
func (c *Cache) Instrument(reg *metrics.Registry, prefix string) {
	c.fillsCtr = reg.Counter(prefix + ".fills")
	c.evictionsCtr = reg.Counter(prefix + ".evictions")
	c.evictPTECtr = reg.Counter(prefix + ".evict.pte")
	c.evictDataPTECtr = reg.Counter(prefix + ".evict.data_pte")
	c.writebacksCtr = reg.Counter(prefix + ".writebacks")
	c.demandMissCtr = reg.Counter(prefix + ".demand_miss")
}

//itp:hotpath
func (c *Cache) setFor(block uint64) int { return int(block & c.setMask) }

// lookup returns (setIdx, way) with way == -1 on miss.
//
//itp:hotpath
func (c *Cache) lookup(block uint64, thread uint8) (int, int) {
	si := c.setFor(block)
	set := c.sets[si]
	for w := range set {
		// Tag first: it is the most discriminating field, so the common
		// non-matching way falls out after one compare.
		if set[w].Tag == block && set[w].Valid && set[w].Thread == thread {
			return si, w
		}
	}
	return si, -1
}

// Contains reports block residency without touching replacement state.
//
//itp:hotpath
func (c *Cache) Contains(addr arch.Addr, thread uint8) bool {
	_, w := c.lookup(arch.BlockNumber(addr), thread)
	return w >= 0
}

// record notes an access outcome in the statistics sink and, when
// instrumented, the demand-miss counter (same bucket definition as
// stats.Level.TotalMisses: demand and translation traffic, not
// prefetches or writebacks).
//
//itp:hotpath
func (c *Cache) record(acc *arch.Access, hit bool) {
	if c.stats != nil {
		c.stats.Record(stats.BucketFor(acc), hit)
	}
	if !hit && c.demandMissCtr != nil {
		switch acc.Kind {
		case arch.IFetch, arch.Load, arch.Store, arch.PTW:
			c.demandMissCtr.Inc()
		}
	}
}

// mshrLookup returns an in-flight entry for block, or nil.
//
//itp:hotpath
func (c *Cache) mshrLookup(now uint64, block uint64, thread uint8) *mshrEntry {
	for i := range c.mshrs {
		e := &c.mshrs[i]
		if e.block == block && e.valid && e.thread == thread && e.readyAt > now {
			return e
		}
	}
	return nil
}

// mshrAllocate finds a free MSHR; if all are busy the miss must wait
// until the earliest completes (the returned start time).
//
//itp:hotpath
func (c *Cache) mshrAllocate(now uint64) (*mshrEntry, uint64) {
	var victim *mshrEntry
	earliest := ^uint64(0)
	for i := range c.mshrs {
		e := &c.mshrs[i]
		if !e.valid || e.readyAt <= now {
			return e, now
		}
		if e.readyAt < earliest {
			victim, earliest = e, e.readyAt
		}
	}
	return victim, earliest
}

// fill installs a block, evicting a victim per policy; returns the way.
//
//itp:hotpath
func (c *Cache) fill(si int, acc *arch.Access) int {
	set := c.sets[si]
	way := c.policy.Victim(si, set, acc)
	if set[way].Valid {
		c.policy.OnEvict(si, set, way)
		c.evictionsCtr.Inc()
		if set[way].IsPTE {
			c.evictPTECtr.Inc()
		}
		if set[way].IsDataPTE {
			c.evictDataPTECtr.Inc()
		}
		if set[way].Dirty {
			c.Writebacks++
			c.writebacksCtr.Inc()
			if c.writebackFn != nil {
				//itp:nonalloc — bound at construction to DRAM.Writeback, which is allocation-free
				c.writebackFn(0, arch.Addr(set[way].Tag)<<arch.BlockBits)
			}
		}
	}
	c.fillsCtr.Inc()
	line := &set[way]
	stack := line.Stack // preserve the permutation invariant
	*line = replacement.Line{
		Valid:      true,
		Tag:        acc.Addr >> arch.BlockBits,
		PC:         acc.PC,
		Kind:       acc.Kind,
		IsPTE:      acc.IsPTE,
		IsDataPTE:  acc.IsPTE && acc.Class == arch.DataClass,
		STLBMiss:   acc.STLBMiss && !acc.IsPTE,
		Thread:     acc.Thread,
		Prefetched: acc.Kind == arch.Prefetch,
		Stack:      stack,
		Dirty:      acc.Kind == arch.Store,
	}
	c.policy.OnFill(si, set, way, acc)
	return way
}

// Access implements Level. It returns the cycle at which the block is
// available to the requester; demand misses are recorded with their
// observed latency.
//
//itp:hotpath
func (c *Cache) Access(now uint64, acc *arch.Access) uint64 {
	block := acc.Addr >> arch.BlockBits
	si, way := c.lookup(block, acc.Thread)
	hitTime := now + c.cfg.Latency

	if way >= 0 {
		set := c.sets[si]
		if acc.Kind == arch.Prefetch {
			// Prefetch into a resident block: nothing to do.
			return hitTime
		}
		// The block may be resident but still in flight (fills are
		// installed eagerly; the MSHR tracks when data actually
		// arrives). Such an access is a merged miss.
		if e := c.mshrLookup(now, block, acc.Thread); e != nil {
			c.record(acc, false)
			if c.stats != nil && acc.Kind.IsDemand() {
				c.stats.RecordMissLatency(e.readyAt - now)
			}
			if set[way].Prefetched {
				set[way].Prefetched = false
				c.PrefetchUseful++
			}
			if acc.Kind == arch.Store {
				set[way].Dirty = true
			}
			c.policy.OnHit(si, set, way, acc)
			if e.readyAt > hitTime {
				return e.readyAt
			}
			return hitTime
		}
		c.record(acc, true)
		if set[way].Prefetched {
			set[way].Prefetched = false
			c.PrefetchUseful++
		}
		if acc.Kind == arch.Store {
			set[way].Dirty = true
		}
		c.policy.OnHit(si, set, way, acc)
		c.train(now, acc)
		return hitTime
	}

	// Miss. Merge with an outstanding fill for the same block.
	if e := c.mshrLookup(now, block, acc.Thread); e != nil {
		if acc.Kind != arch.Prefetch {
			c.record(acc, false)
			if c.stats != nil && acc.Kind.IsDemand() {
				c.stats.RecordMissLatency(e.readyAt - now)
			}
		}
		if e.readyAt > hitTime {
			return e.readyAt
		}
		return hitTime
	}

	// Allocate an MSHR (possibly stalling until one frees up) and fetch
	// from the next level.
	entry, start := c.mshrAllocate(now)
	if acc.Kind != arch.Prefetch {
		c.record(acc, false)
	}
	done := c.next.Access(start+c.cfg.Latency, acc)
	entry.valid = true
	entry.block = block
	entry.thread = acc.Thread
	entry.readyAt = done

	c.fill(si, acc)
	if acc.Kind != arch.Prefetch && c.stats != nil && acc.Kind.IsDemand() {
		c.stats.RecordMissLatency(done - now)
	}
	c.train(now, acc)
	return done
}

// train feeds the prefetcher and issues its suggestions as Prefetch
// accesses into this cache (fills propagate from the next level).
//
//itp:hotpath
func (c *Cache) train(now uint64, acc *arch.Access) {
	if c.prefetcher == nil || acc.Kind == arch.Prefetch || acc.Kind == arch.PTW {
		return
	}
	for _, addr := range c.prefetcher.Train(acc) {
		if c.Contains(addr, acc.Thread) {
			continue
		}
		c.PrefetchIssued++
		pf := &c.pfAcc
		*pf = arch.Access{Addr: addr, PC: acc.PC, Kind: arch.Prefetch, Thread: acc.Thread}
		c.Access(now, pf)
	}
}

// Occupancy returns how many valid blocks currently hold PTE payload and
// how many of those serve data translations (debug/analysis aid).
func (c *Cache) Occupancy() (blocks, pte, dataPTE int) {
	for si := range c.sets {
		for w := range c.sets[si] {
			l := &c.sets[si][w]
			if !l.Valid {
				continue
			}
			blocks++
			if l.IsPTE {
				pte++
			}
			if l.IsDataPTE {
				dataPTE++
			}
		}
	}
	return
}
