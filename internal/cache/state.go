package cache

import (
	"itpsim/internal/arch"
	"itpsim/internal/audit"
	"itpsim/internal/replacement"
)

// HashState implements arch.StateHasher: the full tag/metadata array in
// set/way order plus the MSHR file, so two caches hash equal iff their
// contents, replacement state, and in-flight misses are identical.
func (c *Cache) HashState(h *arch.StateHash) {
	for si := range c.sets {
		for w := range c.sets[si] {
			l := &c.sets[si][w]
			h.Bool(l.Valid)
			h.Bool(l.Dirty)
			h.Word(l.Tag)
			h.Word(l.PC)
			h.Word(uint64(l.Kind))
			h.Bool(l.IsPTE)
			h.Bool(l.IsDataPTE)
			h.Bool(l.STLBMiss)
			h.Word(uint64(l.Thread))
			h.Bool(l.Prefetched)
			h.Word(uint64(l.Stack))
			h.Word(uint64(l.RRPV))
			h.Word(uint64(l.Sig))
			h.Bool(l.Reused)
			h.Word(l.ETA)
		}
	}
	for i := range c.mshrs {
		e := &c.mshrs[i]
		h.Bool(e.valid)
		h.Word(e.block)
		h.Word(uint64(e.thread))
		h.Word(e.readyAt)
	}
}

// mshrLeakHorizon is how far past the audit clock an in-flight MSHR's
// completion may sit before it is judged leaked. The deepest legal chain
// (every MSHR busy, DRAM row misses, walker queueing) resolves within
// thousands of cycles; an entry pointing 100M cycles out means latency
// arithmetic ran away or a completion was lost.
const mshrLeakHorizon = 100_000_000

// AuditState implements audit.Checkable. Invariants:
//
//   - stack-permutation: each set's Stack fields form a permutation;
//   - duplicate-block: no two valid ways of a set hold the same
//     (Tag, Thread);
//   - pte-bits: IsDataPTE implies IsPTE (xPTP's Type bit qualifies a PTE
//     block, it cannot exist without one), and PTE blocks never carry the
//     STLBMiss demand bit (the fill path strips it);
//   - mshr-leak: no in-flight entry completes beyond the leak horizon,
//     and no two live entries track the same (block, thread) — a
//     duplicate would double-fill.
func (c *Cache) AuditState(r *audit.Report) {
	for si := range c.sets {
		set := c.sets[si]
		if !replacement.CheckStackInvariant(set) {
			r.Violatef("stack-permutation", "%s set %d: stack positions are not a permutation", c.name, si)
		}
		for a := range set {
			if !set[a].Valid {
				continue
			}
			if set[a].IsDataPTE && !set[a].IsPTE {
				r.Violatef("pte-bits", "%s set %d way %d: IsDataPTE without IsPTE", c.name, si, a)
			}
			if set[a].IsPTE && set[a].STLBMiss {
				r.Violatef("pte-bits", "%s set %d way %d: PTE block carries the STLBMiss demand bit", c.name, si, a)
			}
			for b := a + 1; b < len(set); b++ {
				if set[b].Valid && set[a].Tag == set[b].Tag && set[a].Thread == set[b].Thread {
					r.Violatef("duplicate-block", "%s set %d: ways %d and %d both hold block %#x",
						c.name, si, a, b, set[a].Tag)
				}
			}
		}
	}
	for i := range c.mshrs {
		e := &c.mshrs[i]
		if !e.valid || e.readyAt <= r.Now {
			continue
		}
		if e.readyAt > r.Now+mshrLeakHorizon {
			r.Violatef("mshr-leak", "%s mshr %d: block %#x completes at %d, %d cycles past now=%d",
				c.name, i, e.block, e.readyAt, e.readyAt-r.Now, r.Now)
		}
		for j := i + 1; j < len(c.mshrs); j++ {
			o := &c.mshrs[j]
			if o.valid && o.readyAt > r.Now && o.block == e.block && o.thread == e.thread {
				r.Violatef("mshr-leak", "%s mshrs %d and %d both track block %#x in flight",
					c.name, i, j, e.block)
			}
		}
	}
}
