package cache

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/prefetch"
	"itpsim/internal/replacement"
	"itpsim/internal/stats"
)

// fixedLevel is a stub next level with constant latency.
type fixedLevel struct {
	latency  uint64
	accesses int
	last     arch.Access
}

func (f *fixedLevel) Access(now uint64, acc *arch.Access) uint64 {
	f.accesses++
	f.last = *acc
	return now + f.latency
}

func smallCfg() config.CacheConfig {
	return config.CacheConfig{Sets: 4, Ways: 2, Latency: 5, MSHRs: 4}
}

func load(addr arch.Addr) *arch.Access {
	return &arch.Access{Addr: addr, PC: 0x400000, Kind: arch.Load}
}

func TestMissThenHit(t *testing.T) {
	next := &fixedLevel{latency: 100}
	var lv stats.Level
	c := New("test", smallCfg(), replacement.NewLRU(), next, &lv)

	done := c.Access(0, load(0x1000))
	if done != 105 {
		t.Errorf("miss done = %d, want 105 (5 latency + 100 next)", done)
	}
	if next.accesses != 1 {
		t.Errorf("next accesses = %d, want 1", next.accesses)
	}
	done = c.Access(200, load(0x1000))
	if done != 205 {
		t.Errorf("hit done = %d, want 205", done)
	}
	if next.accesses != 1 {
		t.Error("hit should not touch next level")
	}
	if lv.TotalMisses() != 1 || lv.TotalHits() != 1 {
		t.Errorf("stats = %d misses / %d hits", lv.TotalMisses(), lv.TotalHits())
	}
}

func TestMissLatencyRecorded(t *testing.T) {
	next := &fixedLevel{latency: 95}
	var lv stats.Level
	c := New("test", smallCfg(), replacement.NewLRU(), next, &lv)
	c.Access(0, load(0x1000))
	if lv.MissLatCnt != 1 || lv.MissLatSum != 100 {
		t.Errorf("miss latency = %d/%d, want 100/1", lv.MissLatSum, lv.MissLatCnt)
	}
}

func TestEvictionLRU(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	// Three blocks mapping to set 0 in a 2-way cache (4 sets: block%4==0).
	a, b, d := arch.Addr(0<<6), arch.Addr(4<<6), arch.Addr(8<<6)
	c.Access(0, load(a))
	c.Access(0, load(b))
	c.Access(0, load(a)) // a is MRU
	c.Access(0, load(d)) // evicts b
	if !c.Contains(a, 0) || c.Contains(b, 0) || !c.Contains(d, 0) {
		t.Errorf("eviction wrong: a=%v b=%v d=%v", c.Contains(a, 0), c.Contains(b, 0), c.Contains(d, 0))
	}
}

func TestMSHRMerge(t *testing.T) {
	next := &fixedLevel{latency: 100}
	var lv stats.Level
	c := New("test", smallCfg(), replacement.NewLRU(), next, &lv)
	d1 := c.Access(0, load(0x1000))
	// A second access to the same block while the first is outstanding
	// merges: no extra next-level access, completes with the fill.
	d2 := c.Access(10, load(0x1008))
	if next.accesses != 1 {
		t.Errorf("merged miss hit next level (%d accesses)", next.accesses)
	}
	if d2 != d1 {
		t.Errorf("merged access done = %d, want fill time %d", d2, d1)
	}
	if lv.TotalMisses() != 2 {
		t.Errorf("both accesses should count as misses, got %d", lv.TotalMisses())
	}
}

func TestMSHROccupancyStalls(t *testing.T) {
	next := &fixedLevel{latency: 1000}
	cfg := smallCfg()
	cfg.MSHRs = 2
	c := New("test", cfg, replacement.NewLRU(), next, nil)
	c.Access(0, load(0x0<<6))
	c.Access(0, load(0x1<<6))
	// Third distinct miss at cycle 0 must wait for an MSHR (first frees
	// at 5+1000).
	done := c.Access(0, load(0x2<<6))
	if done <= 1005 {
		t.Errorf("third miss done = %d, should stall past 1005", done)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	wb := 0
	c.SetWriteback(func(now uint64, addr arch.Addr) { wb++ })
	st := &arch.Access{Addr: 0 << 6, Kind: arch.Store, PC: 1}
	c.Access(0, st)
	c.Access(0, load(4<<6))
	c.Access(0, load(8<<6)) // evicts the dirty store block
	if c.Writebacks != 1 || wb != 1 {
		t.Errorf("writebacks = %d (fn %d), want 1", c.Writebacks, wb)
	}
}

func TestStoreMarksDirtyOnHit(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	c.Access(0, load(0x1000))
	c.Access(0, &arch.Access{Addr: 0x1000, Kind: arch.Store})
	c.Access(0, load(4<<6|0x1000&0xfff)) // may or may not evict; force eviction:
	// Fill two more blocks into the same set to evict the dirty one.
	set := int(arch.BlockNumber(0x1000)) & 3
	_ = set
	c.Access(0, load(0x1000+4*64))
	c.Access(0, load(0x1000+8*64))
	if c.Writebacks == 0 {
		t.Error("dirty-on-hit block eviction should write back")
	}
}

func TestPTEMetadataPropagation(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	acc := &arch.Access{Addr: 0x2000, Kind: arch.PTW, Class: arch.DataClass, IsPTE: true}
	c.Access(0, acc)
	_, pte, dataPTE := c.Occupancy()
	if pte != 1 || dataPTE != 1 {
		t.Errorf("occupancy pte=%d dataPTE=%d, want 1/1", pte, dataPTE)
	}
	acc2 := &arch.Access{Addr: 0x3000, Kind: arch.PTW, Class: arch.InstrClass, IsPTE: true}
	c.Access(0, acc2)
	_, pte, dataPTE = c.Occupancy()
	if pte != 2 || dataPTE != 1 {
		t.Errorf("instr PTE should not be data PTE: pte=%d dataPTE=%d", pte, dataPTE)
	}
}

func TestSTLBMissBitNotOnPTE(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	acc := &arch.Access{Addr: 0x2000, Kind: arch.PTW, IsPTE: true, STLBMiss: true}
	c.Access(0, acc)
	si, w := c.lookup(arch.BlockNumber(0x2000), 0)
	if c.sets[si][w].STLBMiss {
		t.Error("PTE blocks must not carry the STLBMiss demand bit")
	}
}

func TestThreadTagging(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	c.Access(0, &arch.Access{Addr: 0x1000, Kind: arch.Load, Thread: 0})
	if c.Contains(0x1000, 1) {
		t.Error("thread 1 should not see thread 0's block")
	}
	if !c.Contains(0x1000, 0) {
		t.Error("thread 0 should see its block")
	}
}

func TestPrefetcherIntegration(t *testing.T) {
	next := &fixedLevel{latency: 10}
	var lv stats.Level
	c := New("test", config.CacheConfig{Sets: 64, Ways: 4, Latency: 5, MSHRs: 8},
		replacement.NewLRU(), next, &lv)
	c.SetPrefetcher(prefetch.NewNextLine())
	c.Access(0, load(0x1000))
	if c.PrefetchIssued != 1 {
		t.Fatalf("PrefetchIssued = %d, want 1", c.PrefetchIssued)
	}
	if !c.Contains(0x1040, 0) {
		t.Fatal("next-line block not prefetched")
	}
	// Demand access to the prefetched block: a hit, counted useful.
	c.Access(100, load(0x1040))
	if c.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d, want 1", c.PrefetchUseful)
	}
	// Prefetch traffic must not appear in demand stats.
	if lv.TotalMisses() != 1 || lv.TotalHits() != 1 {
		t.Errorf("demand stats polluted: %d misses, %d hits", lv.TotalMisses(), lv.TotalHits())
	}
}

func TestPrefetchDoesNotTrainPrefetcher(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", config.CacheConfig{Sets: 64, Ways: 4, Latency: 5, MSHRs: 8},
		replacement.NewLRU(), next, nil)
	c.SetPrefetcher(prefetch.NewNextLine())
	c.Access(0, load(0x1000))
	// Exactly one prefetch: the prefetch access itself must not recurse.
	if c.PrefetchIssued != 1 {
		t.Errorf("PrefetchIssued = %d, want 1 (no recursion)", c.PrefetchIssued)
	}
}

func TestXPTPInsideCache(t *testing.T) {
	// End-to-end: with xPTP, data-PTE blocks survive demand floods that
	// would evict them under LRU.
	mk := func(pol replacement.Policy) *Cache {
		return New("l2", config.CacheConfig{Sets: 1, Ways: 8, Latency: 5, MSHRs: 8},
			pol, &fixedLevel{latency: 100}, nil)
	}
	pteAcc := func() *arch.Access {
		return &arch.Access{Addr: 0x7000000, Kind: arch.PTW, Class: arch.DataClass, IsPTE: true}
	}

	lru := mk(replacement.NewLRU())
	lru.Access(0, pteAcc())
	for i := 1; i <= 8; i++ {
		lru.Access(0, load(arch.Addr(i)<<6))
	}
	if lru.Contains(0x7000000, 0) {
		t.Error("LRU should have evicted the PTE block")
	}

	// xPTP lives in internal/core; emulate its protecting victim here via
	// the PTP baseline to validate the cache-side plumbing.
	ptp := mk(replacement.NewPTP())
	ptp.Access(0, pteAcc())
	for i := 1; i <= 8; i++ {
		ptp.Access(0, load(arch.Addr(i)<<6))
	}
	if !ptp.Contains(0x7000000, 0) {
		t.Error("PTP should have protected the PTE block")
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New("bad", config.CacheConfig{Sets: 3, Ways: 2, Latency: 1, MSHRs: 1}, replacement.NewLRU(), &fixedLevel{}, nil)
}

func TestStackInvariantAfterTraffic(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	for i := 0; i < 1000; i++ {
		c.Access(uint64(i), load(arch.Addr(i%37)<<6))
	}
	for si := range c.sets {
		if !replacement.CheckStackInvariant(c.sets[si]) {
			t.Fatalf("set %d stack invariant broken", si)
		}
	}
}

func TestOccupancyCountsKinds(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", smallCfg(), replacement.NewLRU(), next, nil)
	c.Access(0, &arch.Access{Addr: 0x1000, Kind: arch.Load})
	c.Access(0, &arch.Access{Addr: 0x2000, Kind: arch.PTW, Class: arch.DataClass, IsPTE: true})
	blocks, pte, dataPTE := c.Occupancy()
	if blocks != 2 || pte != 1 || dataPTE != 1 {
		t.Errorf("occupancy = (%d,%d,%d), want (2,1,1)", blocks, pte, dataPTE)
	}
}

func TestPrefetchedBlockCountedUsefulOnce(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := New("test", config.CacheConfig{Sets: 64, Ways: 4, Latency: 5, MSHRs: 8},
		replacement.NewLRU(), next, nil)
	c.SetPrefetcher(prefetch.NewNextLine())
	c.Access(0, load(0x1000)) // prefetches 0x1040
	c.Access(100, load(0x1040))
	c.Access(200, load(0x1040))
	if c.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d, want exactly 1", c.PrefetchUseful)
	}
}

func TestMergedMissOnInFlightPrefetch(t *testing.T) {
	// A demand access to a block whose prefetch is still in flight merges
	// with it (counts as a miss, completes at the fill time).
	next := &fixedLevel{latency: 500}
	var lv stats.Level
	c := New("test", config.CacheConfig{Sets: 64, Ways: 4, Latency: 5, MSHRs: 8},
		replacement.NewLRU(), next, &lv)
	c.SetPrefetcher(prefetch.NewNextLine())
	c.Access(0, load(0x1000)) // issues prefetch of 0x1040 completing ~t=510
	done := c.Access(10, load(0x1040))
	if done < 500 {
		t.Errorf("demand on in-flight prefetch completed at %d, want >= fill time", done)
	}
	if lv.Misses[stats.BData] != 2 {
		t.Errorf("both demand accesses should count as misses, got %d", lv.Misses[stats.BData])
	}
}
