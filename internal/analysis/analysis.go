// Package analysis provides workload characterisation tools used to
// calibrate and explain the experiments: exact LRU reuse-distance
// profiling (the classic stack-distance algorithm on a Fenwick tree) and
// Belady's OPT miss bound (the metric Mockingjay-style policies chase).
// cmd/wlstat exposes both on the workload catalogue.
package analysis

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// fenwick is a binary indexed tree over access timestamps; it counts how
// many "live" (most recent per key) accesses fall in a time range.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// ReuseProfile is a histogram of LRU stack distances. Distance d means d
// distinct other keys were touched between consecutive accesses to the
// same key; cold (first-touch) accesses are counted separately.
type ReuseProfile struct {
	// Histogram buckets are powers of two: bucket i counts distances in
	// [2^i, 2^(i+1)).
	Buckets [32]uint64
	Cold    uint64
	Total   uint64
}

// Record adds one observed distance.
func (p *ReuseProfile) Record(distance int) {
	p.Total++
	if distance < 0 {
		p.Cold++
		return
	}
	b := 0
	if distance > 0 {
		b = int(math.Log2(float64(distance)))
	}
	if b >= len(p.Buckets) {
		b = len(p.Buckets) - 1
	}
	p.Buckets[b]++
}

// HitRatioAt returns the fraction of accesses whose reuse distance is
// below capacity — the hit ratio of a fully-associative LRU of that size.
func (p *ReuseProfile) HitRatioAt(capacity int) float64 {
	if p.Total == 0 {
		return 0
	}
	var hits uint64
	for b := range p.Buckets {
		lo := 1 << b
		if b == 0 {
			lo = 0
		}
		hi := 1<<(b+1) - 1
		switch {
		case hi < capacity:
			hits += p.Buckets[b]
		case lo >= capacity:
			// entire bucket misses
		default:
			// straddling bucket: assume uniform within the bucket
			frac := float64(capacity-lo) / float64(hi-lo+1)
			hits += uint64(frac * float64(p.Buckets[b]))
		}
	}
	return float64(hits) / float64(p.Total)
}

// String renders the histogram.
func (p *ReuseProfile) String() string {
	out := fmt.Sprintf("accesses=%d cold=%d (%.1f%%)\n", p.Total, p.Cold,
		100*float64(p.Cold)/float64(max64(p.Total, 1)))
	for b, c := range p.Buckets {
		if c == 0 {
			continue
		}
		out += fmt.Sprintf("  d in [%6d,%6d): %8d (%.1f%%)\n",
			1<<b, 1<<(b+1), c, 100*float64(c)/float64(p.Total))
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ReuseDistances computes the exact LRU stack-distance profile of a key
// sequence in O(n log n).
func ReuseDistances(keys []uint64) *ReuseProfile {
	p := &ReuseProfile{}
	last := make(map[uint64]int, 1024)
	f := newFenwick(len(keys))
	for t, k := range keys {
		if prev, ok := last[k]; ok {
			// Distinct keys touched in (prev, t) = live markers there.
			d := f.sum(t-1) - f.sum(prev)
			p.Record(d)
			f.add(prev, -1)
		} else {
			p.Record(-1)
		}
		f.add(t, 1)
		last[k] = t
	}
	return p
}

// nextUseHeap orders cached keys by their next use, farthest first.
type nextUseHeap []heapEntry

type heapEntry struct {
	key     uint64
	nextUse int
}

func (h nextUseHeap) Len() int            { return len(h) }
func (h nextUseHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h nextUseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nextUseHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *nextUseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// OPTMisses returns the miss count of Belady's optimal replacement for a
// fully-associative cache of the given capacity over the key sequence —
// the lower bound any replacement policy (including iTP and xPTP) is
// chasing. Lazy-deletion heap keyed by next use.
func OPTMisses(keys []uint64, capacity int) uint64 {
	if capacity <= 0 {
		return uint64(len(keys))
	}
	const inf = math.MaxInt64 / 2
	// Precompute next use of each position.
	next := make([]int, len(keys))
	lastSeen := make(map[uint64]int, 1024)
	for i := len(keys) - 1; i >= 0; i-- {
		if j, ok := lastSeen[keys[i]]; ok {
			next[i] = j
		} else {
			next[i] = inf
		}
		lastSeen[keys[i]] = i
	}

	cached := make(map[uint64]int, capacity) // key -> its current nextUse
	h := &nextUseHeap{}
	var misses uint64
	for i, k := range keys {
		if nu, ok := cached[k]; ok && nu == i {
			// Hit: refresh the key's next use.
			cached[k] = next[i]
			heap.Push(h, heapEntry{key: k, nextUse: next[i]})
			continue
		}
		misses++
		if len(cached) >= capacity {
			// Evict the key whose next use is farthest (lazy deletion:
			// skip stale heap entries).
			for h.Len() > 0 {
				e := heap.Pop(h).(heapEntry)
				if nu, ok := cached[e.key]; ok && nu == e.nextUse {
					delete(cached, e.key)
					break
				}
			}
		}
		cached[k] = next[i]
		heap.Push(h, heapEntry{key: k, nextUse: next[i]})
	}
	return misses
}

// LRUMisses returns the miss count of fully-associative LRU over the key
// sequence (for OPT-vs-LRU headroom comparisons).
func LRUMisses(keys []uint64, capacity int) uint64 {
	if capacity <= 0 {
		return uint64(len(keys))
	}
	type node struct {
		key        uint64
		prev, next *node
	}
	index := make(map[uint64]*node, capacity)
	var head, tail *node
	remove := func(n *node) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			tail = n.prev
		}
		n.prev, n.next = nil, nil
	}
	pushFront := func(n *node) {
		n.next = head
		if head != nil {
			head.prev = n
		}
		head = n
		if tail == nil {
			tail = n
		}
	}
	var misses uint64
	for _, k := range keys {
		if n, ok := index[k]; ok {
			remove(n)
			pushFront(n)
			continue
		}
		misses++
		if len(index) >= capacity {
			evict := tail
			remove(evict)
			delete(index, evict.key)
		}
		n := &node{key: k}
		index[k] = n
		pushFront(n)
	}
	return misses
}

// Footprint summarises the distinct keys of a sequence.
type Footprint struct {
	Accesses uint64
	Distinct uint64
	// Top lists the most popular keys with their access share.
	Top []KeyShare
}

// KeyShare is one key's share of accesses.
type KeyShare struct {
	Key   uint64
	Count uint64
}

// Footprints computes the footprint summary with the topN most popular
// keys.
func Footprints(keys []uint64, topN int) Footprint {
	counts := make(map[uint64]uint64, 1024)
	for _, k := range keys {
		counts[k]++
	}
	fp := Footprint{Accesses: uint64(len(keys)), Distinct: uint64(len(counts))}
	top := make([]KeyShare, 0, len(counts))
	for k, c := range counts {
		top = append(top, KeyShare{Key: k, Count: c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Count != top[j].Count {
			return top[i].Count > top[j].Count
		}
		return top[i].Key < top[j].Key
	})
	if topN < len(top) {
		top = top[:topN]
	}
	fp.Top = top
	return fp
}
