package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReuseDistancesSimple(t *testing.T) {
	// a b a: distance of the second 'a' is 1 (only b in between).
	p := ReuseDistances([]uint64{1, 2, 1})
	if p.Cold != 2 {
		t.Errorf("cold = %d, want 2", p.Cold)
	}
	if p.Buckets[0] != 1 { // distance 1 lands in bucket [1,2)
		t.Errorf("bucket0 = %d, want 1", p.Buckets[0])
	}
}

func TestReuseDistancesRepeatedKey(t *testing.T) {
	// a a a: distances 0,0 → bucket 0 (distance 0 in [0,2) via b=0).
	p := ReuseDistances([]uint64{7, 7, 7})
	if p.Cold != 1 || p.Total != 3 {
		t.Errorf("cold=%d total=%d", p.Cold, p.Total)
	}
	if p.Buckets[0] != 2 {
		t.Errorf("bucket0 = %d, want 2", p.Buckets[0])
	}
}

func TestReuseDistanceMatchesLRUSimulation(t *testing.T) {
	// The stack-distance profile predicts fully-associative LRU hit
	// ratios exactly (up to bucket quantisation); cross-check against
	// direct LRU simulation on random traffic.
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 30000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(400))
	}
	p := ReuseDistances(keys)
	for _, capacity := range []int{64, 128, 256, 512} {
		misses := LRUMisses(keys, capacity)
		simulated := 1 - float64(misses)/float64(len(keys))
		predicted := p.HitRatioAt(capacity)
		if diff := simulated - predicted; diff < -0.05 || diff > 0.05 {
			t.Errorf("capacity %d: simulated hit %.3f vs predicted %.3f", capacity, simulated, predicted)
		}
	}
}

func TestOPTSimple(t *testing.T) {
	// Classic example: with capacity 2, OPT on a b c a b misses a,b,c
	// (evicting c's slot victim optimally) then hits a and b... evaluate:
	// a(miss) b(miss) c(miss, evict one of a/b — OPT evicts b? next uses:
	// a at 3, b at 4 → evict b) a(hit) b(miss). Total 4.
	keys := []uint64{1, 2, 3, 1, 2}
	if got := OPTMisses(keys, 2); got != 4 {
		t.Errorf("OPT misses = %d, want 4", got)
	}
	// LRU on the same: a b c(evict a) a(evict b) b(miss) → 5 misses.
	if got := LRUMisses(keys, 2); got != 5 {
		t.Errorf("LRU misses = %d, want 5", got)
	}
}

func TestOPTNeverWorseThanLRU(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r % 32)
		}
		capacity := int(capRaw%16) + 1
		return OPTMisses(keys, capacity) <= LRUMisses(keys, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTColdMissesOnly(t *testing.T) {
	// Distinct keys: every access is a compulsory miss for any policy.
	keys := []uint64{1, 2, 3, 4, 5}
	if got := OPTMisses(keys, 3); got != 5 {
		t.Errorf("OPT misses = %d, want 5", got)
	}
}

func TestOPTCapacityCoversAll(t *testing.T) {
	keys := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	if got := OPTMisses(keys, 3); got != 3 {
		t.Errorf("OPT misses = %d, want 3 (compulsory only)", got)
	}
	if got := LRUMisses(keys, 3); got != 3 {
		t.Errorf("LRU misses = %d, want 3", got)
	}
}

func TestOPTBeatsLRUOnScans(t *testing.T) {
	// Cyclic scan over capacity+1 keys: LRU misses everything, OPT does
	// much better.
	var keys []uint64
	for r := 0; r < 20; r++ {
		for k := uint64(0); k < 9; k++ {
			keys = append(keys, k)
		}
	}
	lru := LRUMisses(keys, 8)
	opt := OPTMisses(keys, 8)
	if lru != uint64(len(keys)) {
		t.Errorf("LRU on cyclic scan should always miss: %d/%d", lru, len(keys))
	}
	if float64(opt) > 0.5*float64(lru) {
		t.Errorf("OPT (%d) should at least halve LRU misses (%d)", opt, lru)
	}
}

func TestZeroCapacity(t *testing.T) {
	keys := []uint64{1, 1, 1}
	if OPTMisses(keys, 0) != 3 || LRUMisses(keys, 0) != 3 {
		t.Error("zero capacity should miss everything")
	}
}

func TestFootprints(t *testing.T) {
	keys := []uint64{5, 5, 5, 7, 7, 9}
	fp := Footprints(keys, 2)
	if fp.Accesses != 6 || fp.Distinct != 3 {
		t.Errorf("footprint = %+v", fp)
	}
	if len(fp.Top) != 2 || fp.Top[0].Key != 5 || fp.Top[0].Count != 3 {
		t.Errorf("top keys wrong: %+v", fp.Top)
	}
	if fp.Top[1].Key != 7 {
		t.Errorf("second key wrong: %+v", fp.Top[1])
	}
}

func TestHitRatioAtBounds(t *testing.T) {
	p := ReuseDistances([]uint64{1, 2, 1, 2, 3, 1})
	if r := p.HitRatioAt(1 << 20); r <= 0 {
		t.Error("huge capacity should hit all reuses")
	}
	if r := p.HitRatioAt(0); r != 0 {
		t.Errorf("zero capacity hit ratio = %v", r)
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 1)
	f.add(7, 2)
	if f.sum(2) != 0 || f.sum(3) != 1 || f.sum(9) != 3 {
		t.Errorf("fenwick sums wrong: %d %d %d", f.sum(2), f.sum(3), f.sum(9))
	}
	f.add(3, -1)
	if f.sum(9) != 2 {
		t.Error("fenwick removal wrong")
	}
}

func TestReuseDistancesOnGeneratorStream(t *testing.T) {
	// End-to-end with the workload package's shape: data page streams
	// from a Zipf generator must show the hot/cold split — high hit ratio
	// at realistic capacities, nonzero cold tail.
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 50000)
	for i := range keys {
		// 80/20 mixture: hot 64 pages, cold 8192 pages.
		if rng.Float64() < 0.8 {
			keys[i] = uint64(rng.Intn(64))
		} else {
			keys[i] = 1000 + uint64(rng.Intn(8192))
		}
	}
	p := ReuseDistances(keys)
	if hr := p.HitRatioAt(128); hr < 0.6 {
		t.Errorf("hot mixture hit ratio at 128 = %.3f, want > 0.6", hr)
	}
	if p.Cold < 4000 {
		t.Errorf("cold tail accesses = %d, want thousands", p.Cold)
	}
	// OPT can't beat compulsory misses.
	if opt := OPTMisses(keys, 1<<20); opt != p.Cold {
		t.Errorf("OPT with infinite capacity (%d) should equal cold misses (%d)", opt, p.Cold)
	}
}
