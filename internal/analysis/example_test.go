package analysis_test

import (
	"fmt"

	"itpsim/internal/analysis"
)

// ExampleOPTMisses contrasts Belady's optimal replacement with LRU on a
// cyclic scan — the access pattern where LRU is pathological.
func ExampleOPTMisses() {
	var keys []uint64
	for round := 0; round < 10; round++ {
		for k := uint64(0); k < 5; k++ {
			keys = append(keys, k)
		}
	}
	fmt.Println("LRU misses:", analysis.LRUMisses(keys, 4))
	fmt.Println("OPT misses:", analysis.OPTMisses(keys, 4))
	// Output:
	// LRU misses: 50
	// OPT misses: 16
}

// ExampleReuseDistances profiles a short access stream and asks what hit
// ratio a fully-associative LRU of a given size would achieve on it.
func ExampleReuseDistances() {
	keys := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	p := analysis.ReuseDistances(keys)
	fmt.Printf("cold accesses: %d\n", p.Cold)
	fmt.Printf("hit ratio with capacity 4: %.2f\n", p.HitRatioAt(4))
	// Output:
	// cold accesses: 3
	// hit ratio with capacity 4: 0.67
}
