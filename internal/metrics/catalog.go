package metrics

// RequiredStats names every counter the paper's headline figures are
// derived from. The statregistry analyzer (cmd/itpvet) proves statically
// that the //itp:statwiring root — sim.(*Machine).InstrumentMetrics —
// registers each of these names, so a figure can never silently read a
// counter that was dropped in a refactor. Names follow the registry's
// dotted convention: <component>.<event>[.<class>].
var RequiredStats = []string{
	// Demand STLB misses by translation class: the inputs to the
	// adaptive xPTP controller and the per-window MPKI series (Figure 7).
	"stlb.demand_miss.instr",
	"stlb.demand_miss.data",

	// L2C PTE evictions, total and data-class: the eviction pressure
	// xPTP is designed to relieve (Section 4.3).
	"l2c.evict.pte",
	"l2c.evict.data_pte",

	// Completed page walks by class: the denominator of the walk-latency
	// figures and the itMPKI/dtMPKI accounting (Figure 4).
	"ptw.walk.instr",
	"ptw.walk.data",

	// Adaptive controller enable/disable flips (Section 4.3.1); only
	// registered when a run has an adaptive controller attached.
	"xptp.transitions",

	// Per-window phase-classification features (internal/sample): L1I and
	// L2C demand misses and branch mispredicts, tracked so the windowed
	// series carries the full SimPoint feature vector (IPC and STLB MPKI
	// come from the records themselves).
	"l1i.demand_miss",
	"l2c.demand_miss",
	"branch.mispredict",
}
