package metrics

import (
	"expvar"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatalf("nil counter Value = %d, want 0", c.Value())
	}

	var g *Gauge
	g.Set(9)
	if g.Value() != 0 {
		t.Fatalf("nil gauge Value = %d, want 0", g.Value())
	}

	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram not a no-op: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestNilRegistryReturnsNilMetrics(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry snapshot/names must be nil")
	}
	r.PublishExpvar("itpsim.test.nil") // must not panic
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("stlb.miss")
	b := r.Counter("stlb.miss")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("aliased counter = %d, want 1", b.Value())
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.gauge").Set(5)
	r.Histogram("c.hist").Observe(10)

	names := r.Names()
	want := []string{"a.gauge", "b.count", "c.hist"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}

	snap := r.Snapshot()
	if snap["b.count"] != uint64(3) {
		t.Fatalf("snapshot counter = %v, want 3", snap["b.count"])
	}
	if snap["a.gauge"] != uint64(5) {
		t.Fatalf("snapshot gauge = %v, want 5", snap["a.gauge"])
	}
	h, ok := snap["c.hist"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot histogram = %T, want map", snap["c.hist"])
	}
	if h["count"] != uint64(1) || h["sum"] != uint64(10) {
		t.Fatalf("snapshot histogram = %v", h)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1110 {
		t.Fatalf("sum = %d, want 1110", h.Sum())
	}
	if got, want := h.Mean(), 1110.0/7.0; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Median of {0,1,2,3,4,100,1000} is 3, whose bucket upper bound is 4.
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %d, want bucket bound 4", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d, want 0 (value 0 lands in bucket 0)", q)
	}
	if q := h.Quantile(1); q != 1024 {
		t.Fatalf("p100 = %d, want bucket bound 1024", q)
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	var h Histogram
	h.Observe(^uint64(0)) // tops out bucket 64
	if q := h.Quantile(0.5); q != ^uint64(0) {
		t.Fatalf("max-value quantile = %d, want MaxUint64", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.9); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	const name = "itpsim.test.registry"
	r.PublishExpvar(name)
	r.PublishExpvar(name) // second publish must not panic
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar not published")
	}
}

// TestConcurrentCounters exercises the hot path from many goroutines; run
// under -race this validates the atomic increment contract.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix registration (cold path) and increments (hot path).
			c := r.Counter("shared")
			h := r.Histogram("lat")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
		}()
	}
	// Concurrent reader: snapshots must be race-free while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("lat").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}
