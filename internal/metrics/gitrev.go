package metrics

import (
	"os"
	"os/exec"
	"runtime/debug"
	"strings"
)

// GitDescribe returns the VCS revision for export manifests, trying in
// order:
//
//  1. the revision the Go toolchain embedded at build time
//     (vcs.revision, with a "-dirty" suffix when the worktree was
//     modified) — present in installed binaries but NOT in `go test` or
//     `go run` builds;
//  2. `git describe --always --dirty` against the working tree — the
//     path test binaries and benchguard baselines actually take;
//  3. the same with GIT_DIR/GIT_WORK_TREE cleared, when a stale
//     environment (hook contexts, submodule operations) pointed git away
//     from the tree the process runs in;
//
// and "unknown" when all three fail.
func GitDescribe() string {
	if rev := buildInfoRevision(); rev != "" {
		return rev
	}
	if rev, err := gitDescribeRunner(false); err == nil && rev != "" {
		return rev
	}
	if os.Getenv("GIT_DIR") != "" || os.Getenv("GIT_WORK_TREE") != "" {
		if rev, err := gitDescribeRunner(true); err == nil && rev != "" {
			return rev
		}
	}
	return "unknown"
}

// buildInfoRevision extracts the toolchain-embedded revision, or "".
func buildInfoRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// gitDescribeRunner invokes git for the describe fallback; tests stub it
// to exercise the chain without a git binary or repository.
var gitDescribeRunner = runGitDescribe

func runGitDescribe(clearGitEnv bool) (string, error) {
	cmd := exec.Command("git", "describe", "--always", "--dirty")
	if clearGitEnv {
		env := make([]string, 0, len(os.Environ()))
		for _, kv := range os.Environ() {
			if strings.HasPrefix(kv, "GIT_DIR=") || strings.HasPrefix(kv, "GIT_WORK_TREE=") {
				continue
			}
			env = append(env, kv)
		}
		cmd.Env = env
	}
	out, err := cmd.Output()
	return strings.TrimSpace(string(out)), err
}
