package metrics

import "testing"

// TestSkipTo: after a functional fast-forward the sampler must resume in
// serial coordinates — the next Close gets the serial window index, spans
// only the post-skip region, and counter deltas exclude everything the
// skip accumulated.
func TestSkipTo(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	w := NewWindows(1000)
	w.Track("x", c)

	c.Add(77)          // accumulated during the skipped span
	w.SkipTo(5000, 42) // mid-window positions are rounded down by the caller's schedule, exact here

	c.Add(5)
	w.Close(6000, 142, nil)
	recs := w.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Window != 5 {
		t.Errorf("window index %d, want 5 (serial coordinate 6000/1000 - 1)", rec.Window)
	}
	if rec.Retired != 6000 || rec.Instr != 1000 {
		t.Errorf("retired %d instr %d, want 6000/1000", rec.Retired, rec.Instr)
	}
	if rec.Cycles != 100 {
		t.Errorf("cycles %d, want 100 (skip baseline 42)", rec.Cycles)
	}
	if got := rec.Counters["x"]; got != 5 {
		t.Errorf("counter delta %d, want 5 (77 pre-skip increments must be excluded)", got)
	}

	// The following window continues normally.
	c.Add(3)
	w.Close(7000, 150, nil)
	recs = w.Records()
	if got := recs[1]; got.Window != 6 || got.Counters["x"] != 3 || got.Instr != 1000 {
		t.Errorf("post-skip continuation wrong: %+v", got)
	}
	if w.Closed() != 7 {
		t.Errorf("Closed() = %d, want 7 (serial index past window 6)", w.Closed())
	}
}
