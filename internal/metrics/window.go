package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// WindowRecord is one closed instruction window of the time series. The
// generic part (retired/cycles/IPC plus tracked-counter deltas) is filled
// by Windows.Close; the simulator's annotate callback adds the derived
// headline series the paper's adaptive mechanism is driven by.
type WindowRecord struct {
	// Window is the zero-based window index.
	Window uint64 `json:"window"`
	// Retired is the cumulative retired-instruction count at close.
	Retired uint64 `json:"retired"`
	// Instr is the number of instructions retired inside this window.
	Instr uint64 `json:"instr"`
	// Cycles is the number of cycles elapsed inside this window.
	Cycles uint64 `json:"cycles"`
	// IPC is Instr/Cycles for this window alone.
	IPC float64 `json:"ipc"`
	// Counters holds the per-window delta of every tracked counter.
	Counters map[string]uint64 `json:"counters,omitempty"`

	// Derived headline series (set by the simulator's annotate hook).
	STLBMPKIInstr float64 `json:"stlb_mpki_instr"`
	STLBMPKIData  float64 `json:"stlb_mpki_data"`
	// XPTPEnabled mirrors the adaptive controller's status bit for the
	// window that just closed; nil when no controller is attached.
	XPTPEnabled *bool `json:"xptp_enabled,omitempty"`
}

// trackedCounter pairs a counter with its last-sampled value.
type trackedCounter struct {
	name string
	c    *Counter
	last uint64
}

// Windows samples tracked counters every Size retired instructions and
// turns the deltas into a WindowRecord series. Closing is the cold path
// (once per window) and is mutex-protected so a supervisor thread can
// read recent history race-free while the simulation runs; the per-retire
// boundary check stays on the caller's side (a single compare against
// NextBoundary).
type Windows struct {
	size uint64

	mu      sync.Mutex
	tracked []trackedCounter
	records []WindowRecord
	dropped uint64 // records discarded by the retention cap
	retain  int    // max records kept; <= 0 means unbounded
	sink    func(*WindowRecord)

	index       uint64
	lastRetired uint64
	lastCycles  uint64
}

// NewWindows returns a sampler with the given window size in retired
// instructions (0 selects DefaultWindow).
func NewWindows(size uint64) *Windows {
	if size == 0 {
		size = DefaultWindow
	}
	return &Windows{size: size}
}

// Size returns the window size in retired instructions.
func (w *Windows) Size() uint64 { return w.size }

// Track adds a counter to the per-window delta set. Call before the run
// starts.
func (w *Windows) Track(name string, c *Counter) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tracked = append(w.tracked, trackedCounter{name: name, c: c, last: c.Value()})
}

// SetSink streams every closed window to fn (e.g. a JSONL writer) and
// caps in-memory retention at a small recent-history ring; without a sink
// the full series is retained for the caller to read back.
func (w *Windows) SetSink(fn func(*WindowRecord)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sink = fn
	if w.retain == 0 {
		w.retain = 64
	}
}

// SetRetain bounds the in-memory record history to n entries (<= 0 means
// unbounded).
func (w *Windows) SetRetain(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.retain = n
}

// Close ends the current window at the given cumulative retired count and
// cycle, computing counter deltas; annotate (may be nil) can decorate the
// record before it is stored and streamed.
func (w *Windows) Close(retired, cycles uint64, annotate func(*WindowRecord)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := WindowRecord{
		Window:  w.index,
		Retired: retired,
		Instr:   retired - w.lastRetired,
		Cycles:  cycles - w.lastCycles,
	}
	if rec.Cycles > 0 {
		rec.IPC = float64(rec.Instr) / float64(rec.Cycles)
	}
	if len(w.tracked) > 0 {
		rec.Counters = make(map[string]uint64, len(w.tracked))
		for i := range w.tracked {
			t := &w.tracked[i]
			v := t.c.Value()
			rec.Counters[t.name] = v - t.last
			t.last = v
		}
	}
	if annotate != nil {
		annotate(&rec)
	}
	w.index++
	w.lastRetired = retired
	w.lastCycles = cycles
	w.records = append(w.records, rec)
	if w.retain > 0 && len(w.records) > w.retain {
		drop := len(w.records) - w.retain
		w.dropped += uint64(drop)
		w.records = append(w.records[:0], w.records[drop:]...)
	}
	if w.sink != nil {
		w.sink(&rec)
	}
}

// Records returns a copy of the retained window series.
func (w *Windows) Records() []WindowRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]WindowRecord, len(w.records))
	copy(out, w.records)
	return out
}

// Closed returns how many windows have been closed so far.
func (w *Windows) Closed() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.index
}

// Recent returns up to n of the most recently closed windows (oldest
// first). Safe to call from any goroutine while the run is in flight —
// this is what stall-diagnostic snapshots use.
func (w *Windows) Recent(n int) []WindowRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > len(w.records) {
		n = len(w.records)
	}
	out := make([]WindowRecord, n)
	copy(out, w.records[len(w.records)-n:])
	return out
}

// RecentString formats the last n windows compactly for diagnostic dumps.
func (w *Windows) RecentString(n int) string {
	recent := w.Recent(n)
	if len(recent) == 0 {
		return "(no windows closed yet)"
	}
	var b strings.Builder
	for i, rec := range recent {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "w%d{ipc=%.3f stlb-mpki=%.2f/%.2f", rec.Window, rec.IPC, rec.STLBMPKIInstr, rec.STLBMPKIData)
		if rec.XPTPEnabled != nil {
			fmt.Fprintf(&b, " xptp=%v", *rec.XPTPEnabled)
		}
		b.WriteByte('}')
	}
	return b.String()
}
