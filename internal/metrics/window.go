package metrics

import (
	"fmt"
	"strings"
	"sync"

	"itpsim/internal/arch"
)

// WindowRecord is one closed instruction window of the time series. The
// generic part (retired/cycles/IPC plus tracked-counter deltas) is filled
// by Windows.Close; the simulator's annotate callback adds the derived
// headline series the paper's adaptive mechanism is driven by.
type WindowRecord struct {
	// Window is the zero-based window index.
	Window uint64 `json:"window"`
	// Retired is the cumulative retired-instruction count at close. The
	// arch.Instr/arch.Cycle unit types marshal as plain JSON numbers, so
	// the export format is unchanged.
	Retired arch.Instr `json:"retired"`
	// Instr is the number of instructions retired inside this window.
	Instr arch.Instr `json:"instr"`
	// Cycles is the number of cycles elapsed inside this window.
	Cycles arch.Cycle `json:"cycles"`
	// IPC is Instr/Cycles for this window alone.
	IPC float64 `json:"ipc"`
	// Counters holds the per-window delta of every tracked counter.
	Counters map[string]uint64 `json:"counters,omitempty"`

	// Derived headline series (set by the simulator's annotate hook).
	STLBMPKIInstr float64 `json:"stlb_mpki_instr"`
	STLBMPKIData  float64 `json:"stlb_mpki_data"`
	// XPTPEnabled mirrors the adaptive controller's status bit for the
	// window that just closed; nil when no controller is attached. The
	// pointer is the JSON-facing presence flag; internally the state is a
	// value+valid pair — set it through SetXPTPEnabled, which points at
	// shared immutable values instead of boxing a bool per window.
	XPTPEnabled *bool `json:"xptp_enabled,omitempty"`
}

// xptpVals backs XPTPEnabled pointers; the values are never written, so
// every window record with the same status bit shares one pointer.
var xptpVals = [2]bool{false, true}

// SetXPTPEnabled records the adaptive controller's status bit without
// allocating.
func (r *WindowRecord) SetXPTPEnabled(enabled bool) {
	if enabled {
		r.XPTPEnabled = &xptpVals[1]
	} else {
		r.XPTPEnabled = &xptpVals[0]
	}
}

// trackedCounter pairs a counter with its last-sampled value.
type trackedCounter struct {
	name string
	c    *Counter
	last uint64
}

// Windows samples tracked counters every Size retired instructions and
// turns the deltas into a WindowRecord series. Closing is the cold path
// (once per window) and is mutex-protected so a supervisor thread can
// read recent history race-free while the simulation runs; the per-retire
// boundary check stays on the caller's side (a single compare against
// NextBoundary).
type Windows struct {
	size arch.Instr

	mu      sync.Mutex
	tracked []trackedCounter
	// records holds the retained series. Unbounded mode appends; with a
	// retention cap it is a fixed ring of retain slots addressed by
	// start/count, so closing a window at steady state overwrites the
	// oldest slot in place — recycling its Counters map — instead of
	// allocating a record plus map per window and memmoving the history.
	records []WindowRecord
	start   int    // ring read position (always 0 in unbounded mode)
	count   int    // live records
	dropped uint64 // records discarded by the retention cap
	retain  int    // max records kept; <= 0 means unbounded
	sink    func(*WindowRecord)

	index       uint64
	lastRetired arch.Instr
	lastCycles  arch.Cycle
}

// NewWindows returns a sampler with the given window size in retired
// instructions (0 selects DefaultWindow).
func NewWindows(size arch.Instr) *Windows {
	if size == 0 {
		size = DefaultWindow
	}
	return &Windows{size: size}
}

// Size returns the window size in retired instructions.
func (w *Windows) Size() arch.Instr { return w.size }

// Track adds a counter to the per-window delta set. Call before the run
// starts.
func (w *Windows) Track(name string, c *Counter) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tracked = append(w.tracked, trackedCounter{name: name, c: c, last: c.Value()})
}

// SetSink streams every closed window to fn (e.g. a JSONL writer) and
// caps in-memory retention at a small recent-history ring; without a sink
// the full series is retained for the caller to read back.
func (w *Windows) SetSink(fn func(*WindowRecord)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sink = fn
	if w.retain == 0 {
		w.retain = 64
	}
}

// SetRetain bounds the in-memory record history to n entries (<= 0 means
// unbounded). Call before the run for an allocation-free steady state;
// changing the cap mid-run linearizes the retained history once.
func (w *Windows) SetRetain(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n == w.retain {
		return
	}
	w.linearizeLocked()
	w.retain = n
}

// linearizeLocked rewrites the ring into plain append order (start 0), so
// a retention change can rebuild from a simple prefix.
func (w *Windows) linearizeLocked() {
	if w.start == 0 {
		w.records = w.records[:w.count]
		return
	}
	out := make([]WindowRecord, w.count)
	for i := 0; i < w.count; i++ {
		out[i] = *w.atLocked(i)
	}
	w.records = out
	w.start = 0
}

// atLocked returns the i-th retained record, oldest first.
func (w *Windows) atLocked(i int) *WindowRecord {
	idx := w.start + i
	if idx >= len(w.records) {
		idx -= len(w.records)
	}
	return &w.records[idx]
}

// slotLocked returns the record slot the closing window should fill,
// evicting (and recycling) the oldest slot when the ring is at its cap.
// The returned record's Counters map, if any, may be reused.
func (w *Windows) slotLocked() *WindowRecord {
	if w.retain <= 0 {
		w.records = append(w.records, WindowRecord{})
		w.count = len(w.records)
		return &w.records[w.count-1]
	}
	if len(w.records) != w.retain {
		// First closes after the cap was (re)set: grow the ring to its
		// final size once.
		w.linearizeLocked()
		ring := make([]WindowRecord, w.retain)
		keep := w.count
		if keep > w.retain {
			w.dropped += uint64(keep - w.retain)
			keep = w.retain
		}
		copy(ring, w.records[w.count-keep:])
		w.records = ring
		w.start, w.count = 0, keep
	}
	if w.count == w.retain {
		rec := &w.records[w.start]
		if w.start++; w.start == w.retain {
			w.start = 0
		}
		w.dropped++
		return rec
	}
	rec := w.atLocked(w.count)
	w.count++
	return rec
}

// Close ends the current window at the given cumulative retired count and
// cycle, computing counter deltas; annotate (may be nil) can decorate the
// record before it is stored and streamed. The sink, when set, must not
// retain the record past the call: with a retention cap its Counters map
// is recycled into a future window once the record ages out of the ring.
//
// The sink runs after w.mu is released: sinks do I/O (the JSONL
// exporter writes a file) and may legitimately re-enter the Windows
// (Recent, Closed) for context, so streaming under the lock would hold
// every concurrent stall-diagnostic reader hostage — or deadlock.
// Windows are closed by the single run-loop goroutine, so the sink
// still sees records in order, before the next Close can recycle them.
func (w *Windows) Close(retired arch.Instr, cycles arch.Cycle, annotate func(*WindowRecord)) {
	w.mu.Lock()
	rec := w.slotLocked()
	scratch := rec.Counters
	*rec = WindowRecord{
		Window:  w.index,
		Retired: retired,
		Instr:   retired - w.lastRetired,
		Cycles:  cycles - w.lastCycles,
	}
	if rec.Cycles > 0 {
		rec.IPC = float64(rec.Instr) / float64(rec.Cycles)
	}
	if len(w.tracked) > 0 {
		if scratch == nil {
			scratch = make(map[string]uint64, len(w.tracked))
		} else {
			clear(scratch)
		}
		rec.Counters = scratch
		for i := range w.tracked {
			t := &w.tracked[i]
			v := t.c.Value()
			rec.Counters[t.name] = v - t.last
			t.last = v
		}
	}
	if annotate != nil {
		// The annotation must land in the stored record before any
		// reader can observe the closed window, so it runs under the
		// lock; it is an in-memory decoration, not I/O.
		//itp:lock-io annotate decorates the ring slot before publication; sinks, which do I/O, run below after Unlock
		annotate(rec)
	}
	w.index++
	w.lastRetired = retired
	w.lastCycles = cycles
	sink := w.sink
	var out WindowRecord
	if sink != nil {
		// Shallow copy: the sink contract already forbids retaining the
		// record (its Counters map is ring-recycled), and the slot
		// itself cannot be rewritten before the sink returns — only a
		// later Close recycles slots, and Close is run-loop-only.
		out = *rec
	}
	w.mu.Unlock()
	if sink != nil {
		sink(&out)
	}
}

// SkipTo resynchronises the sampler after a functional fast-forward: the
// machine consumed instructions up to the cumulative retired count
// without closing windows, so the next window must start from this
// position — window index rebased to the serial coordinate, counter
// baselines re-sampled — instead of reporting the whole skipped span as
// one giant window. No record is emitted for the skipped region.
func (w *Windows) SkipTo(retired arch.Instr, cycles arch.Cycle) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.index = uint64(retired / w.size)
	w.lastRetired = retired
	w.lastCycles = cycles
	for i := range w.tracked {
		w.tracked[i].last = w.tracked[i].c.Value()
	}
}

// Records returns a copy of the retained window series. Counters maps are
// deep-copied: the retained originals are recycled as their records age
// out of a capped ring, so callers get stable snapshots.
func (w *Windows) Records() []WindowRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]WindowRecord, w.count)
	for i := range out {
		out[i] = *w.atLocked(i)
		out[i].Counters = cloneCounters(out[i].Counters)
	}
	return out
}

func cloneCounters(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[string]uint64, len(m))
	//itp:deterministic — whole-map copy; order cannot leak
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Closed returns how many windows have been closed so far.
func (w *Windows) Closed() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.index
}

// Recent returns up to n of the most recently closed windows (oldest
// first). Safe to call from any goroutine while the run is in flight —
// this is what stall-diagnostic snapshots use.
func (w *Windows) Recent(n int) []WindowRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > w.count {
		n = w.count
	}
	out := make([]WindowRecord, n)
	for i := range out {
		out[i] = *w.atLocked(w.count - n + i)
		out[i].Counters = cloneCounters(out[i].Counters)
	}
	return out
}

// RecentString formats the last n windows compactly for diagnostic dumps.
func (w *Windows) RecentString(n int) string {
	recent := w.Recent(n)
	if len(recent) == 0 {
		return "(no windows closed yet)"
	}
	var b strings.Builder
	for i, rec := range recent {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "w%d{ipc=%.3f stlb-mpki=%.2f/%.2f", rec.Window, rec.IPC, rec.STLBMPKIInstr, rec.STLBMPKIData)
		if rec.XPTPEnabled != nil {
			fmt.Fprintf(&b, " xptp=%v", *rec.XPTPEnabled)
		}
		b.WriteByte('}')
	}
	return b.String()
}
