package metrics

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
)

// Manifest is the self-describing header of an exported metrics series:
// everything needed to reproduce or audit the run the series came from.
type Manifest struct {
	Type string `json:"type"` // always "manifest"
	// Tool identifies the producing command (itpsim, itpsweep, ...).
	Tool string `json:"tool"`
	// Git is the VCS revision baked into the binary (via buildinfo), or
	// "unknown" for non-module builds and tests.
	Git string `json:"git"`
	// Time is the wall-clock start of the run (RFC3339); optional so
	// deterministic tests can omit it.
	Time string `json:"time,omitempty"`
	// ConfigHash is the SHA-256 of the effective machine configuration.
	ConfigHash string `json:"config_hash"`
	// WindowInstr is the sampler's window size in retired instructions.
	WindowInstr uint64 `json:"window_instr"`
	// Policies names the replacement policies in effect (stlb/l2c/llc).
	Policies map[string]string `json:"policies,omitempty"`
	// Workloads lists the workload labels the series covers.
	Workloads []string `json:"workloads,omitempty"`
	// Extra carries tool-specific fields (sweep parameter, seeds, ...).
	Extra map[string]string `json:"extra,omitempty"`
}

// ConfigHash hashes an effective configuration blob (normally the
// machine config's pretty JSON) into the manifest's hex digest.
func ConfigHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// windowLine is the on-disk shape of one window record: typed, and tagged
// with the job label so multi-job exports (sweeps, batches) share a file.
type windowLine struct {
	Type string `json:"type"` // always "window"
	Job  string `json:"job,omitempty"`
	*WindowRecord
}

// JSONL writes a metrics series as JSON lines: one manifest line per
// run, then one line per closed window. Safe for concurrent writers (a
// sweep's parallel jobs share one file).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL wraps w in a line-oriented exporter.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Manifest writes the run-describing header line.
func (j *JSONL) Manifest(m Manifest) error {
	m.Type = "manifest"
	j.mu.Lock()
	defer j.mu.Unlock()
	//itp:lock-io j.mu exists to serialise writers of the shared JSONL stream; whole lines must not interleave
	return j.enc.Encode(m)
}

// Window writes one window record tagged with the job label.
func (j *JSONL) Window(job string, rec *WindowRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	//itp:lock-io j.mu exists to serialise writers of the shared JSONL stream; whole lines must not interleave
	return j.enc.Encode(windowLine{Type: "window", Job: job, WindowRecord: rec})
}

// WindowSink adapts Window into the Windows.SetSink callback shape,
// discarding write errors after the first (the run should not die on a
// full disk mid-flight; the caller checks the writer on close).
func (j *JSONL) WindowSink(job string, onErr func(error)) func(*WindowRecord) {
	var failed bool
	return func(rec *WindowRecord) {
		if failed {
			return
		}
		if err := j.Window(job, rec); err != nil {
			failed = true
			if onErr != nil {
				onErr(err)
			}
		}
	}
}
