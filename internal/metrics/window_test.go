package metrics

import (
	"bytes"
	"encoding/json"
	"itpsim/internal/arch"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWindowsDefaultSize(t *testing.T) {
	if got := NewWindows(0).Size(); got != DefaultWindow {
		t.Fatalf("default size = %d, want %d", got, DefaultWindow)
	}
	if got := NewWindows(500).Size(); got != 500 {
		t.Fatalf("size = %d, want 500", got)
	}
}

func TestWindowsDeltasAndIPC(t *testing.T) {
	r := NewRegistry()
	miss := r.Counter("miss")
	miss.Add(5) // pre-run value must not leak into the first window

	w := NewWindows(1000)
	w.Track("miss", miss)

	miss.Add(7)
	w.Close(1000, 2000, nil)
	miss.Add(3)
	w.Close(2000, 2500, nil)

	recs := w.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	r0, r1 := recs[0], recs[1]
	if r0.Window != 0 || r0.Retired != 1000 || r0.Instr != 1000 || r0.Cycles != 2000 {
		t.Fatalf("window 0 = %+v", r0)
	}
	if r0.IPC != 0.5 {
		t.Fatalf("window 0 IPC = %v, want 0.5", r0.IPC)
	}
	if r0.Counters["miss"] != 7 {
		t.Fatalf("window 0 miss delta = %d, want 7 (pre-run value leaked)", r0.Counters["miss"])
	}
	if r1.Window != 1 || r1.Instr != 1000 || r1.Cycles != 500 || r1.IPC != 2.0 {
		t.Fatalf("window 1 = %+v", r1)
	}
	if r1.Counters["miss"] != 3 {
		t.Fatalf("window 1 miss delta = %d, want 3", r1.Counters["miss"])
	}
	if w.Closed() != 2 {
		t.Fatalf("Closed = %d, want 2", w.Closed())
	}
}

// TestWindowsSinkRunsOutsideLock is the regression test for streaming
// under w.mu: a sink that re-enters the Windows (Recent/Closed for
// context, as a stall diagnostic would) used to deadlock because Close
// called it with the lock held. It must also still observe the
// annotated record, and observe it before the next Close.
func TestWindowsSinkRunsOutsideLock(t *testing.T) {
	w := NewWindows(100)
	var got []WindowRecord
	var closedAt []uint64
	w.SetSink(func(rec *WindowRecord) {
		// Re-entering the Windows from the sink deadlocked before the
		// fix; Closed() already counts the window being streamed.
		closedAt = append(closedAt, w.Closed())
		if n := len(w.Recent(1)); n != 1 {
			t.Fatalf("Recent(1) from sink = %d records", n)
		}
		got = append(got, *rec)
	})
	annotate := func(rec *WindowRecord) { rec.STLBMPKIInstr = 7 }
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Close(100, 200, annotate)
		w.Close(200, 400, annotate)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked with a re-entrant sink")
	}
	if len(got) != 2 || got[0].Window != 0 || got[1].Window != 1 {
		t.Fatalf("sink saw %+v, want windows 0 and 1 in order", got)
	}
	for i, rec := range got {
		if rec.STLBMPKIInstr != 7 {
			t.Errorf("sink record %d missed the annotation: %+v", i, rec)
		}
	}
	if closedAt[0] != 1 || closedAt[1] != 2 {
		t.Errorf("Closed() from sink = %v, want [1 2] (record published before streaming)", closedAt)
	}
}

func TestWindowsAnnotate(t *testing.T) {
	w := NewWindows(100)
	enabled := true
	w.Close(100, 100, func(rec *WindowRecord) {
		rec.STLBMPKIInstr = 1.5
		rec.XPTPEnabled = &enabled
	})
	recs := w.Records()
	if recs[0].STLBMPKIInstr != 1.5 {
		t.Fatalf("annotate lost MPKI: %+v", recs[0])
	}
	if recs[0].XPTPEnabled == nil || !*recs[0].XPTPEnabled {
		t.Fatalf("annotate lost xPTP bit: %+v", recs[0])
	}
}

func TestWindowsRetentionAndSink(t *testing.T) {
	w := NewWindows(10)
	var streamed []uint64
	w.SetSink(func(rec *WindowRecord) { streamed = append(streamed, rec.Window) })
	w.SetRetain(3)
	for i := uint64(1); i <= 8; i++ {
		w.Close(arch.Instr(i*10), arch.Cycle(i*10), nil)
	}
	if len(streamed) != 8 {
		t.Fatalf("sink saw %d windows, want all 8", len(streamed))
	}
	recs := w.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	if recs[0].Window != 5 || recs[2].Window != 7 {
		t.Fatalf("retained windows %d..%d, want 5..7", recs[0].Window, recs[2].Window)
	}
	// Deltas must still chain correctly across dropped records.
	if recs[2].Retired != 80 || recs[2].Instr != 10 {
		t.Fatalf("window 7 = %+v", recs[2])
	}
}

func TestWindowsRecent(t *testing.T) {
	w := NewWindows(10)
	if got := w.RecentString(3); !strings.Contains(got, "no windows") {
		t.Fatalf("empty RecentString = %q", got)
	}
	for i := uint64(1); i <= 4; i++ {
		w.Close(arch.Instr(i*10), arch.Cycle(i*20), nil)
	}
	recent := w.Recent(2)
	if len(recent) != 2 || recent[0].Window != 2 || recent[1].Window != 3 {
		t.Fatalf("Recent(2) = %+v", recent)
	}
	if got := w.Recent(100); len(got) != 4 {
		t.Fatalf("Recent(100) = %d records, want 4", len(got))
	}
	s := w.RecentString(2)
	if !strings.Contains(s, "w2{") || !strings.Contains(s, "w3{") || !strings.Contains(s, " | ") {
		t.Fatalf("RecentString = %q", s)
	}
}

// TestWindowsConcurrentReaders mirrors the watchdog's access pattern: a
// supervisor goroutine reads recent history while the run loop closes
// windows. Meaningful under -race.
func TestWindowsConcurrentReaders(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	w := NewWindows(10)
	w.Track("x", c)
	w.SetRetain(8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = w.Recent(5)
				_ = w.RecentString(3)
				_ = w.Closed()
			}
		}
	}()
	for i := uint64(1); i <= 500; i++ {
		c.Add(2)
		w.Close(arch.Instr(i*10), arch.Cycle(i*12), nil)
	}
	close(stop)
	wg.Wait()
	if w.Closed() != 500 {
		t.Fatalf("Closed = %d, want 500", w.Closed())
	}
}

func TestJSONLExport(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	if err := j.Manifest(Manifest{
		Tool:        "itpsim",
		Git:         "deadbeef",
		ConfigHash:  ConfigHash([]byte("cfg")),
		WindowInstr: 1000,
		Policies:    map[string]string{"stlb": "itp"},
		Workloads:   []string{"srv_000"},
	}); err != nil {
		t.Fatal(err)
	}
	w := NewWindows(1000)
	w.SetSink(j.WindowSink("srv_000", nil))
	w.Close(1000, 4000, nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var man map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &man); err != nil {
		t.Fatal(err)
	}
	if man["type"] != "manifest" || man["tool"] != "itpsim" || man["window_instr"] != float64(1000) {
		t.Fatalf("manifest line = %v", man)
	}
	if len(man["config_hash"].(string)) != 64 {
		t.Fatalf("config hash = %v", man["config_hash"])
	}
	var win map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &win); err != nil {
		t.Fatal(err)
	}
	if win["type"] != "window" || win["job"] != "srv_000" || win["retired"] != float64(1000) || win["ipc"] != 0.25 {
		t.Fatalf("window line = %v", win)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errShort
	}
	f.budget -= len(p)
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "disk full" }

func TestWindowSinkStopsAfterError(t *testing.T) {
	j := NewJSONL(&failWriter{budget: 1})
	var calls int
	sink := j.WindowSink("job", func(error) { calls++ })
	rec := &WindowRecord{Window: 0}
	sink(rec)
	sink(rec)
	sink(rec)
	if calls != 1 {
		t.Fatalf("onErr called %d times, want exactly once", calls)
	}
}

func TestGitDescribeNeverEmpty(t *testing.T) {
	if GitDescribe() == "" {
		t.Fatal("GitDescribe must return a placeholder, not empty")
	}
}
