// Package metrics is the simulator's low-overhead observability layer: a
// registry of counters, gauges, and histograms with allocation-free
// hot-path updates, a windowed time-series sampler keyed to retired
// instructions (the paper's 1000-instruction adaptive window, Section
// 4.3.1), and a JSONL exporter that makes every emitted series
// self-describing via a run manifest.
//
// Design rules:
//
//   - Hot-path updates (Counter.Inc/Add, Histogram.Observe) are single
//     atomic operations on pre-resolved pointers — no map lookups, no
//     locks, no allocation.
//   - Every metric type is nil-safe: methods on a nil *Counter, *Gauge,
//     or *Histogram are no-ops, so instrumented components pay only an
//     inlined nil check when no registry is attached. This IS the no-op
//     registry the overhead budget is measured against.
//   - Registration (Registry.Counter et al.) is the cold path and may
//     lock; it is idempotent so concurrent components can share metrics
//     by name.
package metrics

import (
	"expvar"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultWindow is the windowed sampler's default size in retired
// instructions — the paper's 1000-instruction adaptive window.
const DefaultWindow = 1000

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//itp:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//itp:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
//
//itp:hotpath
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins uint64 metric. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Uint64
}

// Set stores v.
//
//itp:hotpath
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution in power-of-two buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Updates are lock-free; a nil *Histogram is a no-op.
type Histogram struct {
	buckets [65]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
//
//itp:hotpath
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound for the p-quantile (0..1) using the
// bucket boundaries: the smallest power of two below which at least a
// fraction p of observations fall.
func (h *Histogram) Quantile(p float64) uint64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	target := uint64(p * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > target {
			if i == 0 {
				return 0
			}
			if i >= 64 {
				return ^uint64(0)
			}
			return 1 << i
		}
	}
	return ^uint64(0) // unreachable
}

// Registry holds named metrics. Registration is idempotent and safe for
// concurrent use; the returned pointers are the hot-path handles. A nil
// *Registry returns nil metrics from every constructor, turning all
// downstream instrumentation into no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns a point-in-time copy of every metric's value:
// counters and gauges as raw values, histograms as {count, sum, mean}.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	//itp:deterministic — accumulates into a map keyed by name; order cannot leak
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	//itp:deterministic — accumulates into a map keyed by name; order cannot leak
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	//itp:deterministic — accumulates into a map keyed by name; order cannot leak
	for name, h := range r.histograms {
		out[name] = map[string]any{"count": h.Count(), "sum": h.Sum(), "mean": h.Mean()}
	}
	return out
}

// Names returns the sorted names of all registered metrics (test/report
// aid).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	//itp:deterministic — collected names are sorted below
	for n := range r.counters {
		names = append(names, n)
	}
	//itp:deterministic — collected names are sorted below
	for n := range r.gauges {
		names = append(names, n)
	}
	//itp:deterministic — collected names are sorted below
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PublishExpvar exposes the registry's snapshot as an expvar variable so
// long campaigns can be inspected over -pprof's debug endpoint
// (/debug/vars). Publishing the same name twice is a no-op rather than
// the expvar panic.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
