package metrics

import (
	"errors"
	"strings"
	"testing"
)

// stubGit swaps the describe runner for the test's lifetime, recording
// each call's clearGitEnv argument.
func stubGit(t *testing.T, fn func(clear bool) (string, error)) *[]bool {
	t.Helper()
	var calls []bool
	old := gitDescribeRunner
	gitDescribeRunner = func(clear bool) (string, error) {
		calls = append(calls, clear)
		return fn(clear)
	}
	t.Cleanup(func() { gitDescribeRunner = old })
	return &calls
}

// TestGitDescribeFallsBackToGit: test binaries carry no toolchain VCS
// stamp, so GitDescribe must reach the git-describe fallback and return
// its output instead of "unknown".
func TestGitDescribeFallsBackToGit(t *testing.T) {
	if rev := buildInfoRevision(); rev != "" {
		t.Skipf("test binary unexpectedly has a VCS stamp (%s); fallback not reachable", rev)
	}
	calls := stubGit(t, func(bool) (string, error) { return "abc1234-dirty", nil })
	if got := GitDescribe(); got != "abc1234-dirty" {
		t.Errorf("GitDescribe() = %q, want the stub's describe output", got)
	}
	if len(*calls) != 1 || (*calls)[0] {
		t.Errorf("runner calls %v, want one call without env clearing", *calls)
	}
}

// TestGitDescribeRetriesWithClearedGitDir: when the plain invocation
// fails and a GIT_DIR points git elsewhere, GitDescribe retries with the
// git environment cleared.
func TestGitDescribeRetriesWithClearedGitDir(t *testing.T) {
	if rev := buildInfoRevision(); rev != "" {
		t.Skipf("test binary unexpectedly has a VCS stamp (%s)", rev)
	}
	t.Setenv("GIT_DIR", "/nonexistent/elsewhere/.git")
	calls := stubGit(t, func(clear bool) (string, error) {
		if !clear {
			return "", errors.New("fatal: not a git repository")
		}
		return "def5678", nil
	})
	if got := GitDescribe(); got != "def5678" {
		t.Errorf("GitDescribe() = %q, want the cleared-env retry's output", got)
	}
	if want := []bool{false, true}; len(*calls) != 2 || (*calls)[0] != want[0] || (*calls)[1] != want[1] {
		t.Errorf("runner calls %v, want %v", *calls, want)
	}
}

// TestGitDescribeUnknown: with no VCS stamp, a failing git, and no GIT_DIR
// to clear, the manifest honestly says unknown.
func TestGitDescribeUnknown(t *testing.T) {
	if rev := buildInfoRevision(); rev != "" {
		t.Skipf("test binary unexpectedly has a VCS stamp (%s)", rev)
	}
	t.Setenv("GIT_DIR", "")
	t.Setenv("GIT_WORK_TREE", "")
	calls := stubGit(t, func(bool) (string, error) { return "", errors.New("no git") })
	if got := GitDescribe(); got != "unknown" {
		t.Errorf("GitDescribe() = %q, want unknown", got)
	}
	if len(*calls) != 1 {
		t.Errorf("runner called %d times, want 1 (empty GIT_DIR must not trigger the retry)", len(*calls))
	}
}

// TestGitDescribeReal exercises the unstubbed runner in this repository:
// the revision must look like a git object name, not "unknown".
func TestGitDescribeReal(t *testing.T) {
	rev, err := runGitDescribe(false)
	if err != nil {
		t.Skipf("git unavailable: %v", err)
	}
	if rev == "" || strings.ContainsAny(rev, " \n") {
		t.Errorf("runGitDescribe returned %q, want a single token", rev)
	}
	if got := GitDescribe(); got == "unknown" {
		t.Errorf("GitDescribe() = unknown inside a git worktree with git available")
	}
}
