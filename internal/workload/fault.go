// Fault-injection stream wrappers: deterministic failure modes layered
// over any Stream so the supervision/recovery paths of the experiment
// harness can be exercised in tests without flaky timing tricks. Each
// wrapper forwards instructions unchanged until a trigger point, then
// fails in its own way: returning a terminal error, panicking, or
// stalling (blocking in Next) like a hung trace source.
package workload

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrInjected is the terminal error an ErrorStream reports; tests match
// it with errors.Is.
var ErrInjected = errors.New("workload: injected stream fault")

// ErrorStream ends the stream after `after` instructions and reports a
// terminal error via Err, the same contract trace.Reader uses for corrupt
// input; the simulator surfaces it as a run error.
type ErrorStream struct {
	s     Stream
	after uint64
	n     uint64
	err   error
}

// NewErrorStream wraps s to fail with err (ErrInjected if nil) after
// `after` instructions.
func NewErrorStream(s Stream, after uint64, err error) *ErrorStream {
	if err == nil {
		err = ErrInjected
	}
	return &ErrorStream{s: s, after: after, err: err}
}

// Next implements Stream.
func (e *ErrorStream) Next(in *Instr) bool {
	if e.n >= e.after {
		return false
	}
	e.n++
	return e.s.Next(in)
}

// Err reports the injected error once the trigger point was reached.
func (e *ErrorStream) Err() error {
	if e.n >= e.after {
		return fmt.Errorf("after %d instructions: %w", e.n, e.err)
	}
	return nil
}

// PanicStream panics inside Next after `after` instructions — the
// deterministic stand-in for an unrecovered bug in a generator or
// decoder, used to exercise the harness's panic containment.
type PanicStream struct {
	s     Stream
	after uint64
	n     uint64
}

// NewPanicStream wraps s to panic after `after` instructions.
func NewPanicStream(s Stream, after uint64) *PanicStream {
	return &PanicStream{s: s, after: after}
}

// Next implements Stream.
func (p *PanicStream) Next(in *Instr) bool {
	if p.n >= p.after {
		panic(fmt.Sprintf("workload: injected panic after %d instructions", p.n))
	}
	p.n++
	return p.s.Next(in)
}

// StallStream blocks inside Next after `after` instructions, modelling a
// livelocked ingestion source (a hung pipe or network trace feed). The
// simulated machine stops retiring instructions, which is exactly the
// signature the harness watchdog detects. The stall ends when the bound
// context is cancelled, Release is called, or the optional auto-release
// timeout expires; the stream then ends and Err reports what happened.
type StallStream struct {
	s       Stream
	after   uint64
	n       uint64
	release chan struct{}
	done    <-chan struct{} // optional bound context
	timeout time.Duration   // optional auto-release (test leak bound)
	err     error
}

// NewStallStream wraps s to stall after `after` instructions. A non-zero
// autoRelease bounds how long the stall can hold a goroutine (tests use
// it so an abandoned run cannot leak forever).
func NewStallStream(s Stream, after uint64, autoRelease time.Duration) *StallStream {
	return &StallStream{s: s, after: after, release: make(chan struct{}), timeout: autoRelease}
}

// Bind ties the stall to ctx: cancelling the context unblocks Next, the
// cooperative-cancellation path a real ingestion source would implement.
func (ss *StallStream) Bind(ctx context.Context) { ss.done = ctx.Done() }

// Release unblocks a stalled Next (idempotent is not required; call once).
func (ss *StallStream) Release() { close(ss.release) }

// Next implements Stream.
func (ss *StallStream) Next(in *Instr) bool {
	if ss.n >= ss.after {
		var timeoutC <-chan time.Time
		if ss.timeout > 0 {
			timeoutC = time.After(ss.timeout)
		}
		select {
		case <-ss.release:
			ss.err = fmt.Errorf("workload: injected stall after %d instructions (released)", ss.n)
		case <-ss.done:
			ss.err = fmt.Errorf("workload: injected stall after %d instructions (cancelled)", ss.n)
		case <-timeoutC:
			ss.err = fmt.Errorf("workload: injected stall after %d instructions (auto-released)", ss.n)
		}
		return false
	}
	ss.n++
	return ss.s.Next(in)
}

// Err reports how the stall ended, nil while the stream is healthy.
func (ss *StallStream) Err() error { return ss.err }
