package workload

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"itpsim/internal/arch"
)

func testReplay(n int) Stream {
	instrs := make([]Instr, n)
	for i := range instrs {
		instrs[i].PC = 0x400000 + arch.Addr(i*4)
	}
	return &Replay{Instrs: instrs}
}

func TestErrorStreamEndsWithInjectedError(t *testing.T) {
	s := NewErrorStream(testReplay(100), 10, nil)
	var in Instr
	n := 0
	for s.Next(&in) {
		n++
	}
	if n != 10 {
		t.Errorf("stream fed %d instructions, want 10", n)
	}
	if err := s.Err(); !errors.Is(err, ErrInjected) {
		t.Errorf("Err = %v, want ErrInjected", err)
	}
}

func TestErrorStreamHealthyBeforeTrigger(t *testing.T) {
	s := NewErrorStream(testReplay(100), 50, nil)
	var in Instr
	s.Next(&in)
	if err := s.Err(); err != nil {
		t.Errorf("Err before the trigger = %v, want nil", err)
	}
}

func TestPanicStreamPanics(t *testing.T) {
	s := NewPanicStream(testReplay(100), 3)
	var in Instr
	defer func() {
		if r := recover(); r == nil {
			t.Error("PanicStream should panic at its trigger point")
		} else if !strings.Contains(r.(string), "injected panic") {
			t.Errorf("unexpected panic value: %v", r)
		}
	}()
	for s.Next(&in) {
	}
}

func TestStallStreamReleasedByContext(t *testing.T) {
	s := NewStallStream(testReplay(100), 5, 0)
	ctx, cancel := context.WithCancel(context.Background())
	s.Bind(ctx)
	time.AfterFunc(10*time.Millisecond, cancel)
	var in Instr
	n := 0
	for s.Next(&in) {
		n++
	}
	if n != 5 {
		t.Errorf("stream fed %d instructions, want 5", n)
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("Err = %v, want a cancelled stall", err)
	}
}

func TestStallStreamReleasedExplicitly(t *testing.T) {
	s := NewStallStream(testReplay(100), 2, 0)
	time.AfterFunc(10*time.Millisecond, s.Release)
	var in Instr
	for s.Next(&in) {
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "released") {
		t.Errorf("Err = %v, want a released stall", err)
	}
}
