package workload

import (
	"testing"

	"itpsim/internal/arch"
)

func defaultServer() ServerParams {
	return ServerParams{
		Seed:          1,
		HeadCodePages: 48,
		WarmCodePages: 768,
		ColdCodePages: 3072,
		WarmCodeFrac:  0.03,
		ColdCodeFrac:  0.003,
		CodeBurstLen:  12,
		CodeZipf:      1.2,
		FuncBytes:     256,
		HotDataPages:  384,
		HotDataZipf:   1.15,
		WarmDataPages: 8192,
		WarmFrac:      0.02,
		ColdDataPages: 32768,
		ColdFrac:      0.003,
		LoadFrac:      0.25,
		StoreFrac:     0.10,
		DepFrac:       0.20,
		ChaseRate:     0.0015,
		ChaseLen:      8,
		StreamFrac:    0.05,
		StackFrac:     0.30,
		ReuseFrac:     0.30,
	}
}

func defaultSpec() SpecParams {
	return SpecParams{
		Seed: 1, CodePages: 8, LoopLen: 64, LoopIters: 100,
		DataPages: 2048, DataZipf: 1.3,
		LoadFrac: 0.28, StoreFrac: 0.1, DepFrac: 0.15,
		StreamFrac: 0.25, ReuseFrac: 0.35,
	}
}

func (p ServerParams) totalCodePages() int {
	return p.HeadCodePages + p.WarmCodePages + p.ColdCodePages
}

func TestServerDeterminism(t *testing.T) {
	a := NewServer(defaultServer())
	b := NewServer(defaultServer())
	var ia, ib Instr
	for i := 0; i < 10000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("streams diverged at instruction %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestServerCodeFootprint(t *testing.T) {
	p := defaultServer()
	s := NewServer(p)
	var in Instr
	pages := map[arch.Addr]bool{}
	for i := 0; i < 500000; i++ {
		s.Next(&in)
		pages[arch.PageNumber4K(in.PC)] = true
	}
	// The three-tier footprint must put far more pages in play than any
	// ITLB holds...
	if len(pages) < 300 {
		t.Errorf("code touched only %d pages; want a big-code profile", len(pages))
	}
	// ... but never exceed the declared footprint.
	maxPages := p.totalCodePages() + 1
	if len(pages) > maxPages {
		t.Errorf("code touched %d pages, exceeding the declared footprint %d", len(pages), maxPages)
	}
}

func TestServerAddressRegionsDisjoint(t *testing.T) {
	s := NewServer(defaultServer())
	var in Instr
	for i := 0; i < 100000; i++ {
		s.Next(&in)
		if in.PC < codeBase || in.PC >= heapBase {
			t.Fatalf("PC %#x outside code region", in.PC)
		}
		for _, a := range [2]arch.Addr{in.LoadAddr, in.StoreAddr} {
			if a == 0 {
				continue
			}
			if a >= codeBase && a < heapBase {
				t.Fatalf("data access %#x inside code region", a)
			}
		}
	}
}

func TestServerMemoryMix(t *testing.T) {
	s := NewServer(defaultServer())
	var in Instr
	loads, stores := 0, 0
	const n = 200000
	for i := 0; i < n; i++ {
		s.Next(&in)
		if in.LoadAddr != 0 {
			loads++
		}
		if in.StoreAddr != 0 {
			stores++
		}
	}
	lf, sf := float64(loads)/n, float64(stores)/n
	// Chase episodes add loads on top of LoadFrac.
	if lf < 0.22 || lf > 0.34 {
		t.Errorf("load fraction = %.3f, want ~0.25-0.30", lf)
	}
	if sf < 0.07 || sf > 0.12 {
		t.Errorf("store fraction = %.3f, want ~0.10", sf)
	}
}

func TestServerChasesAreDependent(t *testing.T) {
	p := defaultServer()
	p.ChaseRate = 0.01 // frequent chases for the test
	s := NewServer(p)
	var in Instr
	depLoads, runLen, maxRun := 0, 0, 0
	for i := 0; i < 100000; i++ {
		s.Next(&in)
		if in.LoadAddr != 0 && in.DepLoad {
			depLoads++
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
		} else {
			runLen = 0
		}
	}
	if depLoads == 0 {
		t.Fatal("no dependent loads generated")
	}
	if maxRun < 4 {
		t.Errorf("longest dependent-load run = %d, want >= 4 (chase episodes)", maxRun)
	}
}

func TestServerChaseTargetsVastTier(t *testing.T) {
	p := defaultServer()
	p.ChaseRate = 0.01
	s := NewServer(p)
	var in Instr
	vastStart := arch.Addr(p.HotDataPages+p.WarmDataPages) * arch.PageSize4K
	vastEnd := vastStart + arch.Addr(p.ColdDataPages)*arch.PageSize4K
	vast := 0
	total := 0
	for i := 0; i < 100000; i++ {
		s.Next(&in)
		if in.LoadAddr != 0 && in.DepLoad {
			total++
			off := in.LoadAddr - heapBase
			if off >= vastStart && off < vastEnd {
				vast++
			}
		}
	}
	if total == 0 || float64(vast)/float64(total) < 0.5 {
		t.Errorf("chase loads in vast tier: %d/%d, want majority", vast, total)
	}
}

func TestServerBranchesPresent(t *testing.T) {
	s := NewServer(defaultServer())
	var in Instr
	branches := 0
	const n = 100000
	for i := 0; i < n; i++ {
		s.Next(&in)
		if in.IsBranch {
			branches++
		}
	}
	if branches < n/20 || branches > n/3 {
		t.Errorf("branch fraction = %.3f, implausible", float64(branches)/n)
	}
}

func TestSpecCodeFitsITLB(t *testing.T) {
	p := defaultSpec()
	s := NewSpec(p)
	var in Instr
	pages := map[arch.Addr]bool{}
	for i := 0; i < 300000; i++ {
		s.Next(&in)
		pages[arch.PageNumber4K(in.PC)] = true
	}
	if len(pages) > p.CodePages+1 {
		t.Errorf("spec code touched %d pages, want <= %d", len(pages), p.CodePages+1)
	}
	if len(pages) > 64 {
		t.Error("spec code must fit a 64-entry ITLB")
	}
}

func TestSpecDeterminism(t *testing.T) {
	a, b := NewSpec(defaultSpec()), NewSpec(defaultSpec())
	var ia, ib Instr
	for i := 0; i < 10000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("spec streams diverged at %d", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipf(10000, 0.9)
	r := newRNG(7)
	counts := make([]int, 10000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.sample(r)]++
	}
	if counts[0] < 10*counts[5000]+1 {
		t.Errorf("Zipf not skewed: rank0=%d rank5000=%d", counts[0], counts[5000])
	}
	tail := 0
	for _, c := range counts[5000:] {
		if c > 0 {
			tail++
		}
	}
	if tail < 100 {
		t.Errorf("Zipf tail unexercised: %d of 5000 tail ranks seen", tail)
	}
}

func TestZipfBounds(t *testing.T) {
	for _, s := range []float64{0.3, 0.7, 1.0, 1.3} {
		z := newZipf(100, s)
		r := newRNG(3)
		for i := 0; i < 10000; i++ {
			k := z.sample(r)
			if k < 0 || k >= 100 {
				t.Fatalf("s=%v: sample %d out of range", s, k)
			}
		}
	}
}

func TestLimit(t *testing.T) {
	s := Limit(NewSpec(defaultSpec()), 100)
	var in Instr
	n := 0
	for s.Next(&in) {
		n++
	}
	if n != 100 {
		t.Errorf("Limit yielded %d instructions, want 100", n)
	}
}

func TestReplay(t *testing.T) {
	orig := []Instr{{PC: 1}, {PC: 2, IsBranch: true}, {PC: 3, LoadAddr: 0x99}}
	r := &Replay{Instrs: orig}
	var in Instr
	for i := range orig {
		if !r.Next(&in) || in != orig[i] {
			t.Fatalf("replay wrong at %d", i)
		}
	}
	if r.Next(&in) {
		t.Error("replay should end")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog(120, 20)
	if got := len(c.ServerNames()); got != 120 {
		t.Errorf("server workloads = %d, want 120", got)
	}
	if got := len(c.SpecNames()); got != 20 {
		t.Errorf("spec workloads = %d, want 20", got)
	}
	s, err := c.Get("srv_000")
	if err != nil || s.Kind != "server" {
		t.Fatalf("Get(srv_000) = %+v, %v", s, err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("unknown workload should error")
	}
	var a, b Instr
	sa, _ := c.Get("srv_001")
	sb, _ := c.Get("srv_001")
	streamA, streamB := sa.NewStream(), sb.NewStream()
	for i := 0; i < 1000; i++ {
		streamA.Next(&a)
		streamB.Next(&b)
		if a != b {
			t.Fatal("catalogue streams not deterministic")
		}
	}
}

func TestCatalogParamsVary(t *testing.T) {
	c := NewCatalog(12, 0)
	seen := map[int]bool{}
	for _, n := range c.ServerNames() {
		s, _ := c.Get(n)
		seen[s.ServerParams().ColdCodePages] = true
	}
	if len(seen) < 3 {
		t.Errorf("parameter grid too uniform: %d distinct code sizes", len(seen))
	}
}

func TestSMTPairs(t *testing.T) {
	c := NewCatalog(40, 10)
	pairs := c.SMTPairs(5)
	cats := map[string]int{}
	for _, p := range pairs {
		cats[p.Category]++
		if _, err := c.Get(p.A); err != nil {
			t.Errorf("pair %s references unknown workload %s", p.Name, p.A)
		}
		if _, err := c.Get(p.B); err != nil {
			t.Errorf("pair %s references unknown workload %s", p.Name, p.B)
		}
	}
	for _, cat := range []string{"intense", "medium", "relaxed"} {
		if cats[cat] != 5 {
			t.Errorf("category %s has %d pairs, want 5", cat, cats[cat])
		}
	}
}

func TestValidateFracs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad fractions")
		}
	}()
	validateFracs("x", 0.9, 0.5)
}

func TestChaseSegmentDisabledCoversWholeTier(t *testing.T) {
	p := defaultServer()
	p.ChaseRate = 0.02
	p.ChaseSegPages = 0 // roam the whole vast tier (skewed, stationary)
	p.ChaseSegInstr = 0
	s := NewServer(p)
	var in Instr
	pages := map[arch.Addr]bool{}
	vastStart := arch.Addr(p.HotDataPages + p.WarmDataPages)
	for i := 0; i < 400000; i++ {
		s.Next(&in)
		if in.LoadAddr != 0 && in.DepLoad {
			page := arch.PageNumber4K(in.LoadAddr - heapBase)
			if page >= vastStart {
				pages[page] = true
			}
		}
	}
	// The Zipf head concentrates accesses but the roam must still cover
	// far more pages than any TLB holds.
	if len(pages) < 2000 {
		t.Errorf("chase roam covered only %d vast pages", len(pages))
	}
}

func TestChaseSegmentSlides(t *testing.T) {
	p := defaultServer()
	p.ChaseRate = 0.02
	p.ChaseSegPages = 256
	p.ChaseSegInstr = 50000
	s := NewServer(p)
	var in Instr
	// Record which vast pages each window of 50k instructions touches.
	window := map[arch.Addr]bool{}
	var firstWindow map[arch.Addr]bool
	for i := 0; i < 200000; i++ {
		s.Next(&in)
		if i == 50000 {
			firstWindow = window
			window = map[arch.Addr]bool{}
		}
		if in.LoadAddr != 0 && in.DepLoad {
			window[arch.PageNumber4K(in.LoadAddr-heapBase)] = true
		}
	}
	if firstWindow == nil || len(firstWindow) == 0 || len(window) == 0 {
		t.Skip("not enough chase traffic to compare windows")
	}
	overlap := 0
	for pg := range window {
		if firstWindow[pg] {
			overlap++
		}
	}
	// Sliding segments mean later windows touch mostly different pages.
	if float64(overlap) > 0.5*float64(len(window)) {
		t.Errorf("segments did not slide: %d/%d pages overlap", overlap, len(window))
	}
}
