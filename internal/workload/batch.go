// Decode-ahead ingestion: a background goroutine pulls instructions from
// any Stream (a gzip trace decoder, a synthetic generator) into recycled
// fixed-size batches that flow to the simulator through a channel ring, so
// decode/generation overlaps simulation and the consumer's refills are
// bulk copies instead of per-instruction virtual calls.
package workload

import (
	"sync"
)

// NextBatcher is the bulk-pull fast path next to Stream: NextBatch fills
// up to len(buf) instructions and returns how many it produced. A return
// of 0 means the stream has ended; a short non-zero count does NOT imply
// the end (a batched source returns whatever its current chunk holds).
// Consumers must keep calling until 0.
type NextBatcher interface {
	//itp:hotpath
	NextBatch(buf []Instr) int
}

// FillBatch pulls up to len(buf) instructions from s one at a time — the
// generic NextBatch for sources without a native bulk path.
//
//itp:hotpath
func FillBatch(s Stream, buf []Instr) int {
	for i := range buf {
		if !s.Next(&buf[i]) {
			return i
		}
	}
	return len(buf)
}

// Batch geometry: BatchSize instructions per chunk, PrefetchDepth chunks
// in flight. Sized so a run keeps a few hundred KB of decoded
// instructions buffered — enough to ride out decode jitter without
// letting the decoder race far past the simulator (watchdog
// forward-progress accounting stays meaningful).
const (
	BatchSize     = 1024
	PrefetchDepth = 4
)

// Prefetched runs its source stream on a background goroutine, feeding
// the consumer through a ring of recycled instruction batches. It
// implements Stream and NextBatcher; the consumer side is single-threaded
// (the simulator's run loop).
//
// Failure semantics mirror direct consumption:
//   - a source panic is captured and re-raised on the consumer goroutine
//     once everything decoded before it has been consumed (exactly at the
//     panicking instruction for plain Stream sources; a panic inside a
//     bulk NextBatch can lose at most its own partial batch);
//   - a source terminal error (errStream-style Err) surfaces via Err only
//     once the consumer has drained everything decoded before it;
//   - a source that blocks in Next (a hung trace pipe) blocks the
//     consumer once the buffered batches run dry — the same stalled-run
//     signature the harness watchdog detects.
type Prefetched struct {
	src  Stream
	bulk NextBatcher // non-nil when src has a native bulk path

	batches chan *instrBatch
	free    chan *instrBatch
	pool    sync.Pool
	stop    chan struct{}

	// Decoder-side state, published to the consumer by the close of
	// batches (channel close is the happens-before edge).
	srcErr   error
	panicVal any

	// Consumer-side state.
	cur      *instrBatch
	pos      int
	err      error
	stopOnce sync.Once
}

type instrBatch struct {
	buf []Instr
	n   int
}

// Prefetch wraps s in a decode-ahead pipeline and starts its background
// decoder. The caller owns the result and should Close it when the run is
// over (Close is cheap and idempotent); an already-prefetched stream is
// returned unchanged.
func Prefetch(s Stream) *Prefetched {
	if p, ok := s.(*Prefetched); ok {
		return p
	}
	p := &Prefetched{
		src:     s,
		batches: make(chan *instrBatch, PrefetchDepth),
		free:    make(chan *instrBatch, PrefetchDepth+1),
		stop:    make(chan struct{}),
	}
	p.pool.New = func() any { return &instrBatch{buf: make([]Instr, BatchSize)} }
	p.bulk, _ = s.(NextBatcher)
	// Ownership handoff: p's source and ring buffers transfer to the
	// decode goroutine here; the constructor's caller only ever touches
	// them again through Next/Stop, which synchronise on the channels.
	//itp:owner decode-ahead ring: src+buffers pass to the producer goroutine; consumer side only via batches/free channels
	go p.decode()
	return p
}

// decode is the background producer loop.
func (p *Prefetched) decode() {
	defer close(p.batches)
	for {
		b := p.getBatch()
		ended := p.fillBatch(b)
		if ended && p.panicVal == nil {
			// Record the source's terminal error before the channel close
			// publishes it to the consumer.
			if es, ok := p.src.(interface{ Err() error }); ok {
				p.srcErr = es.Err()
			}
		}
		if b.n > 0 {
			select {
			//itp:owner decode-ahead ring: a filled batch transfers to the consumer; the producer never touches b again
			case p.batches <- b:
			case <-p.stop:
				return
			}
		} else {
			p.putBatch(b)
		}
		if ended {
			return
		}
	}
}

// fillBatch decodes one batch, reporting whether the stream ended. The
// generic path records progress in b.n per instruction, so a source panic
// (captured here, re-raised on the consumer) still delivers everything
// decoded before it; a panic inside a bulk NextBatch can lose at most its
// own partial batch.
func (p *Prefetched) fillBatch(b *instrBatch) (ended bool) {
	defer func() {
		if r := recover(); r != nil {
			p.panicVal = r
			ended = true
		}
	}()
	if p.bulk != nil {
		// Per the NextBatcher contract only a zero batch ends the stream;
		// short non-zero batches flow through and the next call returns 0.
		b.n = p.bulk.NextBatch(b.buf)
		return b.n == 0
	}
	for i := range b.buf {
		if !p.src.Next(&b.buf[i]) {
			return true
		}
		b.n = i + 1
	}
	return false
}

// getBatch recycles a consumed chunk or falls back to the pool.
func (p *Prefetched) getBatch() *instrBatch {
	select {
	case b := <-p.free:
		return b
	default:
		return p.pool.Get().(*instrBatch)
	}
}

// putBatch returns a chunk to the recycle ring (pool when the ring is
// momentarily full).
func (p *Prefetched) putBatch(b *instrBatch) {
	b.n = 0
	select {
	//itp:owner decode-ahead ring: a drained batch recycles to the producer; the consumer has zeroed and dropped it
	case p.free <- b:
	default:
		p.pool.Put(b)
	}
}

// advance makes the next decoded batch current; it reports false at the
// end of the stream (after re-raising a captured source panic, if any).
func (p *Prefetched) advance() bool {
	if p.cur != nil {
		p.putBatch(p.cur)
		p.cur = nil
		p.pos = 0
	}
	b, ok := <-p.batches
	if !ok {
		if p.panicVal != nil {
			v := p.panicVal
			p.panicVal = nil
			panic(v)
		}
		p.err = p.srcErr
		return false
	}
	p.cur = b
	return true
}

// Next implements Stream.
func (p *Prefetched) Next(in *Instr) bool {
	for p.cur == nil || p.pos >= p.cur.n {
		if !p.advance() {
			return false
		}
	}
	*in = p.cur.buf[p.pos]
	p.pos++
	return true
}

// NextBatch implements NextBatcher: it copies out of the current decoded
// chunk (never blocking on more than one chunk boundary).
func (p *Prefetched) NextBatch(buf []Instr) int {
	for p.cur == nil || p.pos >= p.cur.n {
		if !p.advance() {
			return 0
		}
	}
	n := copy(buf, p.cur.buf[p.pos:p.cur.n])
	p.pos += n
	return n
}

// Err reports the source's terminal error once the consumer has drained
// the stream to that point; a consumer that stopped early (instruction
// budget reached) never observes errors beyond what it consumed, matching
// direct Stream use.
func (p *Prefetched) Err() error { return p.err }

// Close stops the background decoder. It does not wait for a decoder
// blocked inside the source's Next (a hung pipe keeps its goroutine, just
// as it would keep a direct consumer); in every other state the decoder
// exits promptly. Close is idempotent and safe after the consumer stops
// pulling.
func (p *Prefetched) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	return nil
}
