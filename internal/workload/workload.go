// Package workload provides deterministic synthetic instruction streams
// standing in for the paper's proprietary trace sets:
//
//   - "server" workloads model the Qualcomm Server traces (CVP-1/IPC-1):
//     multi-megabyte instruction footprints traversed through a
//     Zipf-weighted function call graph — far beyond ITLB reach, so the
//     STLB sees heavy instruction pressure — plus a large-heap data mix
//     that keeps total STLB MPKI above 1 (the paper's selection
//     criterion).
//   - "spec" workloads model SPEC CPU 2006/2017: a loop nest over a code
//     footprint that fits comfortably in a 64-entry ITLB, with
//     data-dominated memory behaviour.
//
// Every generator is seeded and fully deterministic, so experiments are
// reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math"

	"itpsim/internal/arch"
)

// Instr is one instruction of a stream. A zero Load/Store address means
// the instruction has no memory operand of that kind (address 0 is
// reserved and never generated).
type Instr struct {
	PC        arch.Addr
	IsBranch  bool
	Taken     bool
	LoadAddr  arch.Addr
	StoreAddr arch.Addr
	// DepLoad marks a load whose address depends on the previous load's
	// result (pointer chasing); the core cannot issue it until that load
	// completes, which is what exposes memory and page-walk latency in
	// server workloads.
	DepLoad bool
}

// Stream produces instructions. Next fills in and returns true while the
// stream has more instructions; generators are infinite and the simulator
// enforces the instruction budget.
type Stream interface {
	//itp:hotpath
	Next(*Instr) bool
}

// Virtual-address layout shared by the generators. Regions are far apart
// so they never alias.
const (
	codeBase   arch.Addr = 0x0000_0000_0040_0000
	heapBase   arch.Addr = 0x0000_1000_0000_0000
	streamBase arch.Addr = 0x0000_2000_0000_0000
	stackBase  arch.Addr = 0x0000_7ffe_0000_0000
)

// rng is a splitmix64 generator: tiny, fast, deterministic.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9e3779b97f4a7c15} }

//itp:hotpath
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

//itp:hotpath
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

//itp:hotpath
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// zipf samples ranks 0..n-1 from an approximate power-law distribution
// P(rank k) ∝ (k+1)^-s using the continuous inverse-CDF; cheap enough to
// call per memory access.
type zipf struct {
	n     float64
	s     float64
	inv   float64 // 1/(1-s)
	scale float64 // n^(1-s) - 1
}

func newZipf(n int, s float64) *zipf {
	if s == 1 { // avoid the singularity; indistinguishable in practice
		s = 0.9999
	}
	z := &zipf{n: float64(n), s: s}
	z.inv = 1 / (1 - s)
	z.scale = math.Pow(z.n, 1-s) - 1
	return z
}

//itp:hotpath
func (z *zipf) sample(r *rng) int {
	u := r.float()
	x := math.Pow(u*z.scale+1, z.inv) // in [1, n]
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= int(z.n) {
		k = int(z.n) - 1
	}
	return k
}

// ServerParams shape one synthetic server workload. The data side is a
// hot/cold mixture: most heap references go to a hot region sized between
// the L2C and the STLB's reach, while a small cold fraction sprays across
// a multi-hundred-MB footprint — that cold tail is what produces the
// paper's data STLB MPKI band (≈1–3) and the data page walks iTP trades
// against.
type ServerParams struct {
	Seed uint64
	// The instruction footprint is three-tiered, mirroring profiled
	// server binaries: a hot head (Zipf-skewed, ITLB-resident), a warm
	// band whose re-reference distance sits near STLB reach (the tier
	// instruction-aware replacement fights for), and a cold tail of
	// rarely revisited code. Sizes are in 4KB pages.
	HeadCodePages int
	WarmCodePages int
	ColdCodePages int
	// WarmCodeFrac/ColdCodeFrac are the per-call probabilities of
	// *starting a burst* of calls into the warm band or cold tail (a
	// request handler descending through a cold service path); the rest
	// hit the head. Bursts are what make instruction misses cluster and
	// defeat the decoupled front-end's run-ahead slack.
	WarmCodeFrac float64
	ColdCodeFrac float64
	// CodeBurstLen is the mean burst length in calls.
	CodeBurstLen int
	// CodeZipf is the popularity skew within the hot head.
	CodeZipf float64
	// FuncBytes is the average function size in bytes (instructions are
	// 4 bytes); functions are packed back to back across the footprint
	// in popularity order (a BOLT-style hot layout).
	FuncBytes int
	// HotDataPages/HotDataZipf describe the hot heap region (fits the
	// STLB and mostly the LLC).
	HotDataPages int
	HotDataZipf  float64
	// WarmDataPages is a uniformly accessed region whose reuse distance
	// sits near or beyond STLB reach — the capacity-pressure tier whose
	// page-table blocks xPTP keeps in the L2C. WarmFrac is the fraction
	// of heap accesses that go there.
	WarmDataPages int
	WarmFrac      float64
	// ColdDataPages extends the footprint with a vast tail (hundreds of
	// MB to GBs) whose accesses nearly always miss the STLB and whose
	// leaf-PTE working set exceeds the L2C — the regime where keeping
	// data PTEs cached (xPTP) decides whether a data page walk costs a
	// cache hit or a DRAM round trip. ColdFrac is the fraction of heap
	// accesses that go there; ColdZipf skews them (0 = uniform).
	ColdDataPages int
	ColdFrac      float64
	ColdZipf      float64
	// LoadFrac/StoreFrac are per-instruction memory-operand rates.
	LoadFrac, StoreFrac float64
	// DepFrac is the fraction of loads that are address-dependent on the
	// previous load (pointer chasing).
	DepFrac float64
	// ChaseRate starts a pointer-chase episode (hash-table or list walk
	// through the big heap) with this per-instruction probability; each
	// episode is ChaseLen consecutive dependent loads into the warm/vast
	// tiers. These chains are what expose data page-walk latency in
	// server workloads.
	ChaseRate float64
	ChaseLen  int
	// Chases traverse a request context: a ChaseSegPages-sized window of
	// the vast tier, Zipf-revisited (popular nodes reused across nearby
	// chases), that slides every ChaseSegInstr instructions. The revisits
	// give chase blocks and their PTEs L2C-distance reuse.
	ChaseSegPages int
	ChaseSegInstr uint64
	// StreamFrac is the fraction of data accesses that walk a sequential
	// array (prefetcher-friendly); StackFrac go to the hot call stack;
	// ReuseFrac re-touch a recently used address (short-range temporal
	// locality that keeps the L1D effective); the remainder hit the heap
	// mixture.
	StreamFrac, StackFrac, ReuseFrac float64
}

// reuseRing remembers recent data addresses for the temporal-locality
// component of the generators.
type reuseRing struct {
	buf  [64]arch.Addr
	n    int
	next int
}

//itp:hotpath
func (rr *reuseRing) push(a arch.Addr) {
	rr.buf[rr.next] = a
	rr.next = (rr.next + 1) % len(rr.buf)
	if rr.n < len(rr.buf) {
		rr.n++
	}
}

//itp:hotpath
func (rr *reuseRing) pick(r *rng) (arch.Addr, bool) {
	if rr.n == 0 {
		return 0, false
	}
	return rr.buf[r.intn(rr.n)], true
}

// server is the big-code workload generator.
type server struct {
	p     ServerParams
	r     *rng
	fZipf *zipf
	dZipf *zipf

	cZipf *zipf

	headFuncs int
	warmFuncs int
	coldFuncs int
	instrPerF int

	curFunc    int
	curInstr   int
	curFuncLen int
	callStack  []int
	streamPos  arch.Addr
	stackPtr   arch.Addr
	reuse      reuseRing
	chaseLeft  int

	codeBurstLeft int
	codeBurstCold bool

	segZipf    *zipf
	segStart   int
	segCounter uint64
	instrCount uint64
}

// NewServer builds a server workload stream.
func NewServer(p ServerParams) Stream {
	validateFracs("server", p.LoadFrac+p.StoreFrac)
	validateFracs("server", p.StreamFrac, p.StackFrac, p.ReuseFrac)
	validateFracs("server", p.ColdFrac, p.WarmFrac)
	validateFracs("server", p.WarmCodeFrac, p.ColdCodeFrac)
	instrPerF := p.FuncBytes / 4
	if instrPerF < 4 {
		instrPerF = 4
	}
	funcsPer := func(pages int) int {
		n := pages * arch.PageSize4K / p.FuncBytes
		if n < 4 {
			n = 4
		}
		return n
	}
	s := &server{
		p:         p,
		r:         newRNG(p.Seed),
		headFuncs: funcsPer(p.HeadCodePages),
		warmFuncs: funcsPer(p.WarmCodePages),
		coldFuncs: funcsPer(p.ColdCodePages),
		dZipf:     newZipf(p.HotDataPages, p.HotDataZipf),
		instrPerF: instrPerF,
		streamPos: streamBase,
		stackPtr:  stackBase,
		callStack: make([]int, 0, 64),
	}
	s.fZipf = newZipf(s.headFuncs, p.CodeZipf)
	if p.ColdZipf > 0 {
		s.cZipf = newZipf(p.ColdDataPages, p.ColdZipf)
	}
	s.curFunc = s.fZipf.sample(s.r)
	s.curFuncLen = s.instrPerF
	return s
}

// chaseAddr picks a pointer-chase target: mostly the current request
// context inside the vast tier (whose page walks miss the caches without
// xPTP), sometimes the warm tier.
//
//itp:hotpath
func (s *server) chaseAddr() arch.Addr {
	var page int
	if s.r.float() < 0.8 {
		seg := s.p.ChaseSegPages
		if seg <= 0 || seg > s.p.ColdDataPages {
			seg = s.p.ColdDataPages
		}
		if s.segZipf == nil {
			//itp:cold — one-time lazy construction on the first chase
			s.segZipf = newZipf(seg, 0.8)
			s.segStart = s.r.intn(s.p.ColdDataPages - seg + 1)
		}
		if s.p.ChaseSegInstr > 0 && s.instrCount-s.segCounter >= s.p.ChaseSegInstr {
			// A new request context arrives: slide the window.
			s.segStart = s.r.intn(s.p.ColdDataPages - seg + 1)
			s.segCounter = s.instrCount
		}
		page = s.p.HotDataPages + s.p.WarmDataPages + s.segStart + s.segZipf.sample(s.r)
	} else {
		page = s.p.HotDataPages + s.r.intn(s.p.WarmDataPages)
	}
	// Each page hosts one node whose header block is fixed: revisits to
	// the page touch the same cache block, so chase nodes have genuine
	// cache-level reuse even though each visit needs a translation.
	node := (uint64(page) * 0x9e3779b97f4a7c15 >> 52) << 8
	return heapBase + arch.Addr(page)*arch.PageSize4K + arch.Addr(node) + arch.Addr(s.r.intn(4)*8)
}

// nextFunc picks a call target from the three code tiers. Warm/cold
// targets come in bursts of consecutive calls.
//
//itp:hotpath
func (s *server) nextFunc() int {
	if s.codeBurstLeft > 0 {
		s.codeBurstLeft--
		if s.codeBurstCold {
			return s.headFuncs + s.warmFuncs + s.r.intn(s.coldFuncs)
		}
		return s.headFuncs + s.r.intn(s.warmFuncs)
	}
	switch u := s.r.float(); {
	case u < s.p.ColdCodeFrac:
		s.codeBurstCold = true
		s.codeBurstLeft = s.burstLen()
		return s.headFuncs + s.warmFuncs + s.r.intn(s.coldFuncs)
	case u < s.p.ColdCodeFrac+s.p.WarmCodeFrac:
		s.codeBurstCold = false
		s.codeBurstLeft = s.burstLen()
		return s.headFuncs + s.r.intn(s.warmFuncs)
	default:
		return s.fZipf.sample(s.r)
	}
}

// burstLen draws the length of a warm/cold call burst.
//
//itp:hotpath
func (s *server) burstLen() int {
	l := s.p.CodeBurstLen
	if l < 1 {
		l = 1
	}
	return l/2 + s.r.intn(l)
}

// funcPC returns the starting PC of function f. Functions are laid out in
// popularity order, so the Zipf rank order matches the address order.
//
//itp:hotpath
func (s *server) funcPC(f int) arch.Addr {
	return codeBase + arch.Addr(f)*arch.Addr(s.p.FuncBytes)
}

//itp:hotpath
func (s *server) dataAddr() arch.Addr {
	u := s.r.float()
	switch {
	case u < s.p.StackFrac:
		// Hot stack frame: a few cache blocks around the stack pointer.
		return s.stackPtr - arch.Addr(s.r.intn(256))
	case u < s.p.StackFrac+s.p.StreamFrac:
		// Streaming array: sequential blocks.
		s.streamPos += 8
		return s.streamPos
	case u < s.p.StackFrac+s.p.StreamFrac+s.p.ReuseFrac:
		if a, ok := s.reuse.pick(s.r); ok {
			return a
		}
		fallthrough
	default:
		// Heap tiers occupy disjoint page ranges so their page-table
		// leaf blocks are disjoint too.
		var page int
		switch u2 := s.r.float(); {
		case u2 < s.p.ColdFrac:
			if s.cZipf != nil {
				page = s.p.HotDataPages + s.p.WarmDataPages + s.cZipf.sample(s.r)
			} else {
				page = s.p.HotDataPages + s.p.WarmDataPages + s.r.intn(s.p.ColdDataPages)
			}
		case u2 < s.p.ColdFrac+s.p.WarmFrac:
			page = s.p.HotDataPages + s.r.intn(s.p.WarmDataPages)
		default:
			// Hot pages are touched with spatial locality: a handful
			// of active blocks per page, so the block working set fits
			// the L2C even though the page set stresses the DTLB.
			page = s.dZipf.sample(s.r)
			blk := arch.Addr(s.r.intn(8)) * arch.BlockSize
			a := heapBase + arch.Addr(page)*arch.PageSize4K + blk + arch.Addr(s.r.intn(8)*8)
			s.reuse.push(a)
			return a
		}
		a := heapBase + arch.Addr(page)*arch.PageSize4K + arch.Addr(s.r.intn(arch.PageSize4K/8)*8)
		s.reuse.push(a)
		return a
	}
}

// Next implements Stream.
//
//itp:hotpath
func (s *server) Next(in *Instr) bool {
	*in = Instr{}
	s.instrCount++
	in.PC = s.funcPC(s.curFunc) + arch.Addr(s.curInstr*4)

	switch {
	case s.chaseLeft > 0:
		// Pointer-chase step: a dependent load into the warm/vast heap.
		in.LoadAddr = s.chaseAddr()
		in.DepLoad = true
		s.chaseLeft--
	case s.p.ChaseRate > 0 && s.r.float() < s.p.ChaseRate:
		s.chaseLeft = s.p.ChaseLen/2 + s.r.intn(s.p.ChaseLen)
		in.LoadAddr = s.chaseAddr()
		in.DepLoad = true
	default:
		if u := s.r.float(); u < s.p.LoadFrac {
			in.LoadAddr = s.dataAddr()
			in.DepLoad = s.r.float() < s.p.DepFrac
		} else if u < s.p.LoadFrac+s.p.StoreFrac {
			in.StoreAddr = s.dataAddr()
		}
	}

	s.curInstr++
	// Basic blocks of ~8 instructions end in a branch.
	if s.curInstr%8 == 0 || s.curInstr >= s.curFuncLen {
		in.IsBranch = true
	}

	if s.curInstr >= s.curFuncLen {
		in.Taken = true
		// Function end: call deeper or return.
		if len(s.callStack) > 0 && (s.r.float() < 0.4 || len(s.callStack) > 32) {
			s.curFunc = s.callStack[len(s.callStack)-1]
			s.callStack = s.callStack[:len(s.callStack)-1]
			s.stackPtr += 256
		} else {
			//itp:nonalloc — depth capped at 32 by the return branch; cap 64 never grows
			s.callStack = append(s.callStack, s.curFunc)
			s.curFunc = s.nextFunc()
			s.stackPtr -= 256
		}
		// Burst calls run short helper functions (enter, do a little
		// work, call onward), so their instruction-page misses cluster
		// tightly enough to drain the decoupled front-end.
		if s.codeBurstLeft > 0 {
			s.curFuncLen = 8 + s.r.intn(8)
		} else {
			s.curFuncLen = s.instrPerF
		}
		s.curInstr = 0
	} else if in.IsBranch {
		// Intra-function branch: mostly not taken (fall through).
		in.Taken = s.r.float() < 0.3
	}
	return true
}

// NextBatch implements NextBatcher; server streams are infinite, so the
// batch is always full. The direct method call devirtualizes the
// per-instruction step relative to FillBatch's Stream.Next.
//
//itp:hotpath
func (s *server) NextBatch(buf []Instr) int {
	for i := range buf {
		s.Next(&buf[i])
	}
	return len(buf)
}

// SpecParams shape one synthetic SPEC-like workload.
type SpecParams struct {
	Seed uint64
	// CodePages is the (small) instruction footprint in 4KB pages.
	CodePages int
	// LoopLen is the number of instructions per inner loop body.
	LoopLen int
	// LoopIters is how many times a loop repeats before moving on.
	LoopIters int
	// DataPages and DataZipf describe the data footprint.
	DataPages int
	DataZipf  float64
	LoadFrac  float64
	StoreFrac float64
	// DepFrac is the fraction of loads address-dependent on the
	// previous load.
	DepFrac float64
	// StreamFrac is the fraction of data accesses walking sequential
	// arrays; ReuseFrac re-touch recent addresses.
	StreamFrac float64
	ReuseFrac  float64
}

// spec is the small-code loop-nest generator.
type spec struct {
	p     SpecParams
	r     *rng
	dZipf *zipf

	loopStart arch.Addr
	loopInstr int
	iter      int
	streamPos arch.Addr
	reuse     reuseRing
}

// NewSpec builds a SPEC-like workload stream.
func NewSpec(p SpecParams) Stream {
	validateFracs("spec", p.LoadFrac+p.StoreFrac)
	validateFracs("spec", p.StreamFrac, p.ReuseFrac)
	s := &spec{
		p:         p,
		r:         newRNG(p.Seed),
		dZipf:     newZipf(p.DataPages, p.DataZipf),
		streamPos: streamBase,
	}
	s.pickLoop()
	return s
}

//itp:hotpath
func (s *spec) pickLoop() {
	codeBytes := s.p.CodePages * arch.PageSize4K
	maxStart := codeBytes - s.p.LoopLen*4
	if maxStart < 1 {
		maxStart = 1
	}
	s.loopStart = codeBase + arch.Addr(s.r.intn(maxStart)&^3)
	s.loopInstr = 0
	s.iter = 0
}

//itp:hotpath
func (s *spec) dataAddr() arch.Addr {
	u := s.r.float()
	switch {
	case u < s.p.StreamFrac:
		s.streamPos += 8
		return s.streamPos
	case u < s.p.StreamFrac+s.p.ReuseFrac:
		if a, ok := s.reuse.pick(s.r); ok {
			return a
		}
		fallthrough
	default:
		page := s.dZipf.sample(s.r)
		a := heapBase + arch.Addr(page)*arch.PageSize4K + arch.Addr(s.r.intn(arch.PageSize4K/8)*8)
		s.reuse.push(a)
		return a
	}
}

// Next implements Stream.
//
//itp:hotpath
func (s *spec) Next(in *Instr) bool {
	*in = Instr{}
	in.PC = s.loopStart + arch.Addr(s.loopInstr*4)

	if u := s.r.float(); u < s.p.LoadFrac {
		in.LoadAddr = s.dataAddr()
		in.DepLoad = s.r.float() < s.p.DepFrac
	} else if u < s.p.LoadFrac+s.p.StoreFrac {
		in.StoreAddr = s.dataAddr()
	}

	s.loopInstr++
	if s.loopInstr >= s.p.LoopLen {
		in.IsBranch = true
		in.Taken = true
		s.loopInstr = 0
		s.iter++
		if s.iter >= s.p.LoopIters {
			s.pickLoop()
		}
	}
	return true
}

// NextBatch implements NextBatcher; spec streams are infinite, so the
// batch is always full.
//
//itp:hotpath
func (s *spec) NextBatch(buf []Instr) int {
	for i := range buf {
		s.Next(&buf[i])
	}
	return len(buf)
}

// Limit wraps a stream, ending it after n instructions; useful for
// examples and the trace writer.
func Limit(s Stream, n uint64) Stream { return &limited{s: s, left: n} }

type limited struct {
	s    Stream
	left uint64
}

//itp:hotpath
func (l *limited) Next(in *Instr) bool {
	if l.left == 0 {
		return false
	}
	l.left--
	return l.s.Next(in)
}

// NextBatch implements NextBatcher, capping the batch at the remaining
// budget and delegating to the source's bulk path when it has one.
//
//itp:hotpath
func (l *limited) NextBatch(buf []Instr) int {
	if l.left == 0 {
		return 0
	}
	if uint64(len(buf)) > l.left {
		buf = buf[:l.left]
	}
	var n int
	if b, ok := l.s.(NextBatcher); ok {
		n = b.NextBatch(buf)
	} else {
		n = FillBatch(l.s, buf)
	}
	l.left -= uint64(n)
	return n
}

// Replay replays a pre-recorded slice of instructions (tests, traces).
type Replay struct {
	Instrs []Instr
	pos    int
}

// Next implements Stream.
//
//itp:hotpath
func (r *Replay) Next(in *Instr) bool {
	if r.pos >= len(r.Instrs) {
		return false
	}
	*in = r.Instrs[r.pos]
	r.pos++
	return true
}

// NextBatch implements NextBatcher as a bulk copy of the recorded slice.
//
//itp:hotpath
func (r *Replay) NextBatch(buf []Instr) int {
	n := copy(buf, r.Instrs[r.pos:])
	r.pos += n
	return n
}

// validate panics early on nonsensical parameters so misconfigured
// experiments fail loudly.
func validateFracs(name string, fracs ...float64) {
	total := 0.0
	for _, f := range fracs {
		if f < 0 || f > 1 {
			panic(fmt.Sprintf("workload %s: fraction %v out of [0,1]", name, f))
		}
		total += f
	}
	if total > 1 {
		panic(fmt.Sprintf("workload %s: fractions sum to %v > 1", name, total))
	}
}
