package workload

import (
	"errors"
	"testing"

	"itpsim/internal/arch"
)

// replayN builds n distinguishable instructions.
func replayN(n int) []Instr {
	instrs := make([]Instr, n)
	for i := range instrs {
		instrs[i].PC = 0x400000 + arch.Addr(i)*4
	}
	return instrs
}

// TestPrefetchedMatchesDirect is the ingestion property: a stream pulled
// through the decode-ahead pipeline yields the identical instruction
// sequence as the same generator pulled directly — for both generator
// families, a finite Replay, and a Limit wrapper (whose NextBatch caps
// batches at the remaining budget, exercising the short-non-zero case).
func TestPrefetchedMatchesDirect(t *testing.T) {
	mk := map[string]func() Stream{
		"server": func() Stream {
			return NewServer(defaultServer())
		},
		"spec": func() Stream {
			return NewSpec(defaultSpec())
		},
		"replay": func() Stream {
			return &Replay{Instrs: replayN(5000)}
		},
		"limited": func() Stream {
			return Limit(NewServer(defaultServer()), 4321)
		},
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			direct := f()
			p := Prefetch(f())
			defer p.Close()
			var want, got Instr
			for i := 0; ; i++ {
				if i > 20_000 {
					return // infinite generator: 20k matched is enough
				}
				dOK := direct.Next(&want)
				pOK := p.Next(&got)
				if dOK != pOK {
					t.Fatalf("instr %d: direct ok=%v, prefetched ok=%v", i, dOK, pOK)
				}
				if !dOK {
					return
				}
				if got != want {
					t.Fatalf("instr %d diverged:\nprefetched %+v\ndirect     %+v", i, got, want)
				}
			}
		})
	}
}

// TestPrefetchedNextBatchContract checks the NextBatcher contract on the
// consumer side: short non-zero batches are legal mid-stream, 0 appears
// exactly at end of stream and stays 0.
func TestPrefetchedNextBatchContract(t *testing.T) {
	const total = 2500 // not a multiple of BatchSize: final chunk is short
	p := Prefetch(&Replay{Instrs: replayN(total)})
	defer p.Close()
	buf := make([]Instr, 700) // not a divisor of BatchSize: splits chunks
	got := 0
	for {
		n := p.NextBatch(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if want := 0x400000 + arch.Addr(got+i)*4; buf[i].PC != want {
				t.Fatalf("instr %d: PC %#x, want %#x", got+i, buf[i].PC, want)
			}
		}
		got += n
	}
	if got != total {
		t.Fatalf("drained %d instructions, want %d", got, total)
	}
	if n := p.NextBatch(buf); n != 0 {
		t.Fatalf("NextBatch after end = %d, want 0", n)
	}
}

// errAfter yields n instructions and then fails like a corrupt trace: Next
// returns false and Err reports the cause.
type errAfter struct {
	n   int
	err error
}

func (e *errAfter) Next(in *Instr) bool {
	if e.n == 0 {
		return false
	}
	e.n--
	in.PC = 0x400000
	return true
}

func (e *errAfter) Err() error { return e.err }

// TestPrefetchedErrAfterDrain checks terminal-error semantics: Err is nil
// while decoded instructions remain and reports the source error once the
// consumer drains past the failure point — matching direct Stream use.
func TestPrefetchedErrAfterDrain(t *testing.T) {
	boom := errors.New("trace corrupt at record 1500")
	p := Prefetch(&errAfter{n: 1500, err: boom})
	defer p.Close()
	var in Instr
	for i := 0; i < 1500; i++ {
		if !p.Next(&in) {
			t.Fatalf("stream ended early at %d", i)
		}
		if i < 1499 && p.Err() != nil {
			t.Fatalf("Err() = %v before the stream was drained", p.Err())
		}
	}
	if p.Next(&in) {
		t.Fatal("Next returned true past the failure point")
	}
	if !errors.Is(p.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", p.Err(), boom)
	}
}

// panicAfter yields n instructions then panics, like a decoder hitting a
// malformed record it cannot classify.
type panicAfter struct{ n int }

func (e *panicAfter) Next(in *Instr) bool {
	if e.n == 0 {
		panic("malformed trace record")
	}
	e.n--
	in.PC = 0x400000
	return true
}

// TestPrefetchedForwardsPanic checks a source panic is re-raised on the
// consumer goroutine — after every instruction decoded before it has been
// delivered — so the harness's panic containment sees the same failure it
// would under direct consumption.
func TestPrefetchedForwardsPanic(t *testing.T) {
	p := Prefetch(&panicAfter{n: 2100})
	defer p.Close()
	var in Instr
	delivered := 0
	defer func() {
		if r := recover(); r == nil {
			t.Error("source panic was not forwarded to the consumer")
		}
		if delivered != 2100 {
			t.Errorf("panic surfaced after %d instructions, want all 2100 first", delivered)
		}
	}()
	for p.Next(&in) {
		delivered++
	}
}

// TestPrefetchedCloseIdempotent checks Close can be called repeatedly and
// mid-stream, and that re-wrapping an already-prefetched stream is a no-op
// (no second decoder goroutine fighting over the source).
func TestPrefetchedCloseIdempotent(t *testing.T) {
	p := Prefetch(NewServer(defaultServer()))
	if again := Prefetch(p); again != p {
		t.Error("Prefetch of a *Prefetched must return it unchanged")
	}
	var in Instr
	for i := 0; i < 100; i++ {
		if !p.Next(&in) {
			t.Fatal("infinite stream ended")
		}
	}
	for i := 0; i < 3; i++ {
		if err := p.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
}
