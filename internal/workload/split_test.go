package workload

import "testing"

// collect drains n instructions from s.
func collect(s Stream, n int) []Instr {
	out := make([]Instr, n)
	got := FillBatch(s, out)
	return out[:got]
}

// splitStreams builds every stream kind the splitter must support.
func splitStreams() map[string]func() Stream {
	return map[string]func() Stream{
		"server": func() Stream { return NewServer(defaultServer()) },
		"spec":   func() Stream { return NewSpec(defaultSpec()) },
		"limited-server": func() Stream {
			return Limit(NewServer(defaultServer()), 1<<20)
		},
		"replay": func() Stream {
			src := NewSpec(defaultSpec())
			rec := make([]Instr, 8192)
			FillBatch(src, rec)
			return &Replay{Instrs: rec}
		},
	}
}

// TestSkipEquivalence: a substream positioned with Skip(off) reproduces
// the serial stream's suffix byte-for-byte, at offsets exercising batch
// boundaries and the lookahead-sized strides the simulator uses.
func TestSkipEquivalence(t *testing.T) {
	const m = 2048
	offsets := []uint64{0, 1, 7, BatchSize - 1, BatchSize, BatchSize + 1, 3*BatchSize + 17, 5000}
	for name, mk := range splitStreams() {
		t.Run(name, func(t *testing.T) {
			for _, off := range offsets {
				serial := collect(mk(), int(off)+m)
				if uint64(len(serial)) < off {
					t.Fatalf("offset %d beyond stream length %d", off, len(serial))
				}
				want := serial[off:]
				sub := mk()
				if got := Skip(sub, off); got != off {
					t.Fatalf("Skip(%d) consumed %d", off, got)
				}
				got := collect(sub, len(want))
				if len(got) != len(want) {
					t.Fatalf("offset %d: substream yielded %d instrs, want %d", off, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("offset %d: instr %d diverged: %+v vs %+v", off, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestCloneEquivalence: a clone taken mid-flight must (a) reproduce the
// source's future output exactly and (b) leave the source unperturbed
// while being consumed.
func TestCloneEquivalence(t *testing.T) {
	const off, m = 4097, 2048
	for name, mk := range splitStreams() {
		t.Run(name, func(t *testing.T) {
			want := collect(mk(), off+2*m)[off:]

			s := mk()
			Skip(s, off)
			c, ok := CloneStream(s)
			if !ok {
				t.Fatalf("%s stream is not clonable", name)
			}
			// Consume the clone fully before touching the source: any
			// state aliasing (shared rng, shared call stack) would make
			// one of the two sequences diverge.
			gotClone := collect(c, m)
			gotSrc := collect(s, 2*m)
			for i := range gotClone {
				if gotClone[i] != want[i] {
					t.Fatalf("clone diverged at instr %d: %+v vs %+v", i, gotClone[i], want[i])
				}
			}
			for i := range gotSrc {
				if gotSrc[i] != want[i] {
					t.Fatalf("source perturbed by clone at instr %d: %+v vs %+v", i, gotSrc[i], want[i])
				}
			}
		})
	}
}

// TestCloneOfClone: snapshot reuse (the shard split index clones cached
// clones per run) must compose.
func TestCloneOfClone(t *testing.T) {
	s := NewServer(defaultServer())
	Skip(s, 1000)
	c1, ok := CloneStream(s)
	if !ok {
		t.Fatal("server not clonable")
	}
	c2, ok := CloneStream(c1)
	if !ok {
		t.Fatal("clone not clonable")
	}
	a, b, c := collect(s, 512), collect(c1, 512), collect(c2, 512)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("clone-of-clone diverged at %d", i)
		}
	}
}

// TestCloneNonClonable: wrappers over non-clonable streams must report
// not-ok rather than return a broken clone.
func TestCloneNonClonable(t *testing.T) {
	opaque := funcStream(func(in *Instr) bool { in.PC = 4096; return true })
	if _, ok := CloneStream(opaque); ok {
		t.Fatal("bare func stream reported clonable")
	}
	if _, ok := CloneStream(Limit(opaque, 10)); ok {
		t.Fatal("limited over non-clonable stream reported clonable")
	}
}

type funcStream func(*Instr) bool

func (f funcStream) Next(in *Instr) bool { return f(in) }

// TestSkipShortStream: skipping past the end reports the true count.
func TestSkipShortStream(t *testing.T) {
	s := Limit(NewSpec(defaultSpec()), 100)
	if got := Skip(s, 250); got != 100 {
		t.Fatalf("Skip past end consumed %d, want 100", got)
	}
	var in Instr
	if s.Next(&in) {
		t.Fatal("stream still produced after exhaustion")
	}
}

// FuzzSplitEquivalence: for arbitrary seeds and offsets, the substream
// obtained by skipping (and cloning at) the offset reproduces the serial
// stream byte-for-byte.
func FuzzSplitEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(64), false)
	f.Add(uint64(42), uint16(1023), uint16(300), true)
	f.Add(uint64(7), uint16(1024), uint16(1), false)
	f.Add(uint64(99), uint16(4099), uint16(513), true)
	f.Fuzz(func(t *testing.T, seed uint64, off16 uint16, n16 uint16, useSpec bool) {
		off, n := uint64(off16), int(n16%2048)+1
		mk := func() Stream {
			if useSpec {
				p := defaultSpec()
				p.Seed = seed
				return NewSpec(p)
			}
			p := defaultServer()
			p.Seed = seed
			return NewServer(p)
		}
		want := collect(mk(), int(off)+n)[off:]

		sub := mk()
		if got := Skip(sub, off); got != off {
			t.Fatalf("Skip(%d) consumed %d", off, got)
		}
		c, ok := CloneStream(sub)
		if !ok {
			t.Fatal("generator not clonable")
		}
		gotClone := collect(c, n)
		gotSkip := collect(sub, n)
		for i := range want {
			if gotSkip[i] != want[i] {
				t.Fatalf("seed %d off %d: skip path diverged at %d", seed, off, i)
			}
			if gotClone[i] != want[i] {
				t.Fatalf("seed %d off %d: clone path diverged at %d", seed, off, i)
			}
		}
	})
}
