package workload

// Stream splitting: the substrate of sharded simulation (internal/shard).
// A sharded run positions K streams at staggered offsets of the same
// serial instruction sequence; the only sound way to do that for a
// stateful generator is to replay its state, not its output. Cloner
// deep-copies a generator mid-flight so one forward pass over the serial
// stream can snapshot every shard's start position; Skip is the
// advance-and-discard fallback (and the positioning primitive the pass
// itself uses). Both are cold paths — positioning happens once per shard,
// not per instruction.

// Cloner is implemented by streams whose complete generator state can be
// deep-copied. A clone must produce exactly the same future instruction
// sequence as its source, and consuming either stream must not perturb
// the other. Wrappers whose inner stream is not clonable return nil.
type Cloner interface {
	Clone() Stream
}

// CloneStream deep-copies s when it supports cloning; ok is false when it
// does not (including a wrapper over a non-clonable inner stream).
func CloneStream(s Stream) (Stream, bool) {
	c, isCloner := s.(Cloner)
	if !isCloner {
		return nil, false
	}
	out := c.Clone()
	return out, out != nil
}

// Skip advances s by n instructions, discarding them, and returns how
// many were actually consumed (short only when the stream ended). It uses
// the stream's bulk path when available, so skipping runs at generator
// speed, not at interface-call speed.
func Skip(s Stream, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	buf := make([]Instr, BatchSize)
	bulk, hasBulk := s.(NextBatcher)
	var skipped uint64
	for skipped < n {
		seg := buf
		if want := n - skipped; want < uint64(len(buf)) {
			seg = buf[:want]
		}
		var got int
		if hasBulk {
			got = bulk.NextBatch(seg)
		} else {
			got = FillBatch(s, seg)
		}
		skipped += uint64(got)
		if got < len(seg) {
			break
		}
	}
	return skipped
}

// Clone implements Cloner. The rng and the call stack are the only
// mutable pointer/slice state; the zipf samplers are immutable after
// construction and safely shared (segZipf is created lazily, but a nil
// copy re-creates it identically from the shared rng-derived state).
func (s *server) Clone() Stream {
	c := *s
	r := *s.r
	c.r = &r
	c.callStack = make([]int, len(s.callStack), cap(s.callStack))
	copy(c.callStack, s.callStack)
	return &c
}

// Clone implements Cloner; the dZipf sampler is immutable and shared.
func (s *spec) Clone() Stream {
	c := *s
	r := *s.r
	c.r = &r
	return &c
}

// Clone implements Cloner when the wrapped stream does.
func (l *limited) Clone() Stream {
	inner, ok := CloneStream(l.s)
	if !ok {
		return nil
	}
	return &limited{s: inner, left: l.left}
}

// Clone implements Cloner; the recorded instructions are read-only and
// shared between the copies.
func (r *Replay) Clone() Stream {
	c := *r
	return &c
}
