package workload

import (
	"fmt"
	"sort"
)

// PressureBand classifies a workload's STLB pressure, mirroring the
// paper's SMT pair construction (Section 5.2): Intense pairs combine two
// high-MPKI workloads, Medium pairs one high + one medium, Relaxed pairs
// one high + one low.
type PressureBand int

// Pressure bands.
const (
	LowPressure PressureBand = iota
	MediumPressure
	HighPressure
)

// String implements fmt.Stringer.
func (b PressureBand) String() string {
	switch b {
	case LowPressure:
		return "low"
	case MediumPressure:
		return "medium"
	case HighPressure:
		return "high"
	}
	return "unknown"
}

// Spec describes one named workload in the catalogue.
type Spec struct {
	Name string
	// Kind is "server" or "spec" (or "custom" for registered entries).
	Kind string
	Band PressureBand
	// exactly one of these is valid:
	server ServerParams
	spec   SpecParams
	// makeStream overrides the generator for registered entries
	// (fault-injection workloads, recorded traces).
	makeStream func() Stream
}

// NewStream instantiates the workload's instruction stream.
func (s Spec) NewStream() Stream {
	if s.makeStream != nil {
		return s.makeStream()
	}
	if s.Kind == "server" {
		return NewServer(s.server)
	}
	return NewSpec(s.spec)
}

// ServerParams returns the generator parameters (server workloads only).
func (s Spec) ServerParams() ServerParams { return s.server }

// serverSpec derives the i-th server workload. The parameter grid sweeps
// code footprint (4–32MB), call-target skew, and heap footprint so the
// set spans the paper's instruction-STLB-MPKI range (≈0.1–0.9) while all
// members keep total STLB MPKI ≥ 1.
func serverSpec(i int) Spec {
	warmCodePages := 512 + 256*(i%4)               // 2..5MB warm code band
	coldCodePages := 2048 + 1024*(i%5)             // 8..24MB cold code tail
	warmCodeFrac := 0.024 + 0.008*float64((i/3)%3) // burst-start probability
	hotDataPages := 256 + 96*(i%4)                 // 1..2.3MB hot heap
	warmPages := 8192 + 4096*((i/2)%3)             // 32..64MB capacity-pressure tier
	warmFrac := 0.010 + 0.005*float64((i/4)%4)
	coldFrac := 0.003
	chaseRate := 0.0014 + 0.0005*float64((i/6)%3)
	funcBytes := 256 + 128*(i%3)

	band := MediumPressure
	if chaseRate >= 0.0019 || warmFrac >= 0.02 {
		band = HighPressure
	}

	return Spec{
		Name: fmt.Sprintf("srv_%03d", i),
		Kind: "server",
		Band: band,
		server: ServerParams{
			Seed:          uint64(i)*0x51ed2701 + 17,
			HeadCodePages: 48,
			WarmCodePages: warmCodePages,
			ColdCodePages: coldCodePages,
			WarmCodeFrac:  warmCodeFrac,
			ColdCodeFrac:  0.003,
			CodeBurstLen:  12,
			CodeZipf:      1.2,
			FuncBytes:     funcBytes,
			HotDataPages:  hotDataPages,
			HotDataZipf:   1.15,
			WarmDataPages: warmPages,
			WarmFrac:      warmFrac,
			// 128MB vast tail: its 4096 leaf-PTE blocks (half an L2C of
			// page table) are re-referenced too rarely to survive LRU,
			// but xPTP pins them while leaving room for demand blocks.
			ColdDataPages: 32768,
			ColdFrac:      coldFrac,
			ColdZipf:      0,
			LoadFrac:      0.25,
			StoreFrac:     0.10,
			DepFrac:       0.20,
			ChaseRate:     chaseRate,
			ChaseLen:      8,
			ChaseSegPages: 0, // chases roam the whole vast tier
			ChaseSegInstr: 0,
			StreamFrac:    0.05,
			StackFrac:     0.30,
			ReuseFrac:     0.30,
		},
	}
}

// specSpec derives the i-th SPEC-like workload: tiny code footprints and
// data-dominated behaviour.
func specSpec(i int) Spec {
	return Spec{
		Name: fmt.Sprintf("spec_%03d", i),
		Kind: "spec",
		Band: LowPressure,
		spec: SpecParams{
			Seed:       uint64(i)*0xabcd1234 + 3,
			CodePages:  4 + i%8, // 16-44KB of code: fits the ITLB
			LoopLen:    64 + 32*(i%4),
			LoopIters:  200 + 100*(i%5),
			DataPages:  2048 + 1024*(i%3),
			DataZipf:   1.3 + 0.1*float64(i%3),
			LoadFrac:   0.28,
			StoreFrac:  0.10,
			DepFrac:    0.15,
			StreamFrac: 0.25,
			ReuseFrac:  0.35,
		},
	}
}

// Catalog is the full named-workload table.
type Catalog struct {
	specs map[string]Spec
	names []string
}

// NewCatalog builds the default catalogue: nServer server workloads and
// nSpec SPEC-like workloads (the paper uses 120 and the SPEC suites; the
// harness defaults to smaller subsets for runtime).
func NewCatalog(nServer, nSpec int) *Catalog {
	c := &Catalog{specs: make(map[string]Spec)}
	for i := 0; i < nServer; i++ {
		s := serverSpec(i)
		c.specs[s.Name] = s
		c.names = append(c.names, s.Name)
	}
	for i := 0; i < nSpec; i++ {
		s := specSpec(i)
		c.specs[s.Name] = s
		c.names = append(c.names, s.Name)
	}
	sort.Strings(c.names)
	return c
}

// Register adds (or replaces) a custom workload whose stream is produced
// by make — recorded traces or fault-injection wrappers join the same
// namespace the experiment sweeps draw from.
func (c *Catalog) Register(name string, band PressureBand, make func() Stream) {
	if _, exists := c.specs[name]; !exists {
		c.names = append(c.names, name)
		sort.Strings(c.names)
	}
	c.specs[name] = Spec{Name: name, Kind: "custom", Band: band, makeStream: make}
}

// Names lists all workload names.
func (c *Catalog) Names() []string { return append([]string(nil), c.names...) }

// ServerNames lists the server workloads.
func (c *Catalog) ServerNames() []string {
	var out []string
	for _, n := range c.names {
		if c.specs[n].Kind == "server" {
			out = append(out, n)
		}
	}
	return out
}

// SpecNames lists the SPEC-like workloads.
func (c *Catalog) SpecNames() []string {
	var out []string
	for _, n := range c.names {
		if c.specs[n].Kind == "spec" {
			out = append(out, n)
		}
	}
	return out
}

// Get returns the named workload.
func (c *Catalog) Get(name string) (Spec, error) {
	s, ok := c.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
	}
	return s, nil
}

// Pair is one SMT co-location: two workloads run on the two hardware
// threads.
type Pair struct {
	Name     string
	A, B     string
	Category string // "intense", "medium", "relaxed"
}

// SMTPairs builds n co-location pairs per category from the server
// workloads, mirroring Section 5.2: Intense = high+high, Medium =
// high+medium, Relaxed = high+low (the low partner comes from the
// SPEC-like set, whose STLB pressure is minimal).
func (c *Catalog) SMTPairs(nPerCategory int) []Pair {
	var high, med []string
	for _, n := range c.ServerNames() {
		switch c.specs[n].Band {
		case HighPressure:
			high = append(high, n)
		case MediumPressure:
			med = append(med, n)
		}
	}
	low := c.SpecNames()
	if len(high) == 0 {
		high = c.ServerNames()
	}
	if len(med) == 0 {
		med = high
	}
	if len(low) == 0 {
		low = med
	}
	if len(high) == 0 {
		return nil
	}
	var pairs []Pair
	pick := func(list []string, i int) string { return list[i%len(list)] }
	for i := 0; i < nPerCategory; i++ {
		if len(high) >= 2 {
			pairs = append(pairs, Pair{
				Name: fmt.Sprintf("intense_%02d", i), Category: "intense",
				A: pick(high, 2*i), B: pick(high, 2*i+1),
			})
		}
		pairs = append(pairs, Pair{
			Name: fmt.Sprintf("medium_%02d", i), Category: "medium",
			A: pick(high, i), B: pick(med, i+1),
		})
		pairs = append(pairs, Pair{
			Name: fmt.Sprintf("relaxed_%02d", i), Category: "relaxed",
			A: pick(high, i+2), B: pick(low, i),
		})
	}
	return pairs
}
