package dram

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
)

func cfg() config.DRAMConfig {
	return config.DRAMConfig{
		LatencyCycles:  110,
		TransferCycles: 20,
		RowBufferBonus: 45,
		RowBufferPages: 4,
	}
}

func TestColdAccessLatency(t *testing.T) {
	d := New(cfg())
	done := d.Access(100, &arch.Access{Addr: 0x10000, Kind: arch.Load})
	if done != 210 {
		t.Errorf("done = %d, want 210 (100+110)", done)
	}
	if d.Accesses != 1 {
		t.Error("access not counted")
	}
}

func TestRowBufferHit(t *testing.T) {
	d := New(cfg())
	d.Access(0, &arch.Access{Addr: 0x10000})
	// Second access to the same 8KB row, after the channel drains.
	done := d.Access(1000, &arch.Access{Addr: 0x10040})
	if done != 1000+110-45 {
		t.Errorf("row hit done = %d, want %d", done, 1000+110-45)
	}
	if d.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1", d.RowHits)
	}
}

func TestChannelContention(t *testing.T) {
	d := New(cfg())
	d.Access(0, &arch.Access{Addr: 0x10000})
	// Channel busy until cycle 20; a second concurrent access queues.
	done := d.Access(0, &arch.Access{Addr: 0x40000000})
	if done != 20+110 {
		t.Errorf("queued access done = %d, want 130", done)
	}
}

func TestWritebackConsumesBandwidthOnly(t *testing.T) {
	d := New(cfg())
	d.Writeback(0, 0x2000)
	if d.Accesses != 1 {
		t.Error("writeback should count as an access")
	}
	// The next read queues behind the writeback's transfer.
	done := d.Access(0, &arch.Access{Addr: 0x999000})
	if done != 20+110 {
		t.Errorf("read after writeback done = %d, want 130", done)
	}
}

func TestRowTrackerEviction(t *testing.T) {
	d := New(cfg())
	// Open 5 distinct rows in a 4-row tracker; the first should be gone.
	for i := 0; i < 5; i++ {
		d.Access(uint64(i)*1000, &arch.Access{Addr: arch.Addr(i) << 13})
	}
	done := d.Access(100000, &arch.Access{Addr: 0})
	if done != 100000+110 {
		t.Errorf("evicted row should be a full-latency access, got %d", done)
	}
}

func TestZeroRowPagesDefaultsSafe(t *testing.T) {
	c := cfg()
	c.RowBufferPages = 0
	d := New(c)
	d.Access(0, &arch.Access{Addr: 0x1000}) // must not panic
}
