package dram

import (
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
)

func dramHash(d *DRAM) uint64 {
	h := arch.NewStateHash()
	d.HashState(&h)
	return h.Sum()
}

func trafficDRAM() *DRAM {
	d := New(config.Default().DRAM)
	for i := 0; i < 8; i++ {
		d.Access(uint64(i)*100, &arch.Access{Addr: arch.Addr(uint64(i) << 14), Kind: arch.Load})
	}
	return d
}

func TestDRAMHashStateDeterministic(t *testing.T) {
	a, b := trafficDRAM(), trafficDRAM()
	if dramHash(a) != dramHash(b) {
		t.Fatal("identical DRAM models must hash equal")
	}
	if dramHash(a) != dramHash(a) {
		t.Fatal("hashing must not mutate state")
	}
}

func TestDRAMHashStateSeesAccess(t *testing.T) {
	a, b := trafficDRAM(), trafficDRAM()
	a.Access(5_000, &arch.Access{Addr: 0x123400, Kind: arch.Load})
	if dramHash(a) == dramHash(b) {
		t.Fatal("an extra access must change the hash")
	}
}

func TestDRAMHashStateSeesRowBuffer(t *testing.T) {
	a, b := trafficDRAM(), trafficDRAM()
	// A row hit leaves the open-row set unchanged but bumps the RowHits
	// tally and channel timing — the hash must still move.
	last := arch.Addr(7 << 14)
	a.Access(5_000, &arch.Access{Addr: last, Kind: arch.Load})
	if a.RowHits == 0 {
		t.Fatal("expected a row hit on the re-touched row")
	}
	if dramHash(a) == dramHash(b) {
		t.Fatal("a row hit must change the hash")
	}
}

func TestDRAMHashStateSeesWriteback(t *testing.T) {
	a, b := trafficDRAM(), trafficDRAM()
	a.Writeback(9_000, 0x777000)
	if dramHash(a) == dramHash(b) {
		t.Fatal("a writeback must change the hash")
	}
}
