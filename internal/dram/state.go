package dram

import "itpsim/internal/arch"

// HashState implements arch.StateHasher: channel timing and the open-row
// buffer, the only DRAM state that feeds back into access latency.
func (d *DRAM) HashState(h *arch.StateHash) {
	h.Word(d.channelFree)
	h.Word(uint64(d.nextRowSlot))
	for _, row := range d.openRows {
		h.Word(row)
	}
	h.Word(d.Accesses)
	h.Word(d.RowHits)
}
