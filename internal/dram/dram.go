// Package dram models main memory with the Table 1 parameters: a fixed
// access latency derived from tRP/tRCD/tCAS, a per-transfer channel
// occupancy derived from the 12.8 GB/s bandwidth, and a small open-row
// tracker that discounts row-buffer hits.
package dram

import (
	"itpsim/internal/arch"
	"itpsim/internal/config"
)

// rowBits: DRAM rows are 8KB in this model.
const rowBits = 13

// DRAM is the terminal level of the memory hierarchy.
type DRAM struct {
	cfg         config.DRAMConfig
	channelFree uint64
	openRows    []uint64
	nextRowSlot int
	// Accesses counts all transfers (reads and writebacks).
	Accesses uint64
	// RowHits counts accesses that hit an open row.
	RowHits uint64
}

// New builds the DRAM model.
func New(cfg config.DRAMConfig) *DRAM {
	n := cfg.RowBufferPages
	if n <= 0 {
		n = 1
	}
	rows := make([]uint64, n)
	for i := range rows {
		rows[i] = ^uint64(0)
	}
	return &DRAM{cfg: cfg, openRows: rows}
}

//itp:hotpath
func (d *DRAM) rowHit(row uint64) bool {
	for _, r := range d.openRows {
		if r == row {
			return true
		}
	}
	return false
}

//itp:hotpath
func (d *DRAM) openRow(row uint64) {
	if d.rowHit(row) {
		return
	}
	d.openRows[d.nextRowSlot] = row
	d.nextRowSlot = (d.nextRowSlot + 1) % len(d.openRows)
}

// Access implements the memory-level interface used by the cache
// hierarchy: it returns the cycle at which the requested block is
// available. The access occupies the channel for TransferCycles.
//
//itp:hotpath
func (d *DRAM) Access(now uint64, acc *arch.Access) uint64 {
	d.Accesses++
	start := now
	if d.channelFree > start {
		start = d.channelFree
	}
	lat := d.cfg.LatencyCycles
	row := acc.Addr >> rowBits
	if d.rowHit(row) {
		d.RowHits++
		if lat > d.cfg.RowBufferBonus {
			lat -= d.cfg.RowBufferBonus
		}
	}
	d.openRow(row)
	d.channelFree = start + d.cfg.TransferCycles
	return start + lat
}

// Writeback models a dirty eviction draining to memory: it consumes
// channel bandwidth but nothing waits for it.
//
//itp:hotpath
func (d *DRAM) Writeback(now uint64, addr arch.Addr) {
	d.Accesses++
	start := now
	if d.channelFree > start {
		start = d.channelFree
	}
	d.openRow(addr >> rowBits)
	d.channelFree = start + d.cfg.TransferCycles
}
