package config

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if c.ROBSize != 352 {
		t.Errorf("ROB = %d, want 352", c.ROBSize)
	}
	if c.FetchWidth != 6 {
		t.Errorf("fetch width = %d, want 6", c.FetchWidth)
	}
	if c.FTQDepth != 128 {
		t.Errorf("FTQ = %d, want 128", c.FTQDepth)
	}
	if got := c.ITLB.Entries(); got != 64 {
		t.Errorf("ITLB entries = %d, want 64", got)
	}
	if got := c.DTLB.Entries(); got != 64 {
		t.Errorf("DTLB entries = %d, want 64", got)
	}
	if got := c.STLB.Entries(); got != 1536 {
		t.Errorf("STLB entries = %d, want 1536", got)
	}
	if c.STLB.Ways != 12 || c.STLB.Latency != 8 {
		t.Errorf("STLB shape wrong: %+v", c.STLB)
	}
	if got := c.L2C.Entries() * 64; got != 512<<10 {
		t.Errorf("L2C size = %d, want 512KB", got)
	}
	if got := c.LLC.Entries() * 64; got != 2<<20 {
		t.Errorf("LLC size = %d, want 2MB", got)
	}
	if c.ITP.N != 4 || c.ITP.M != 8 || c.ITP.FreqBits != 3 {
		t.Errorf("iTP params wrong: %+v", c.ITP)
	}
	if c.XPTP.K != 8 {
		t.Errorf("xPTP K = %d, want 8", c.XPTP.K)
	}
	if c.PageWalkers != 4 {
		t.Errorf("page walkers = %d, want 4", c.PageWalkers)
	}
	// PSC shapes from Table 1.
	wantPSC := [4]PSCConfig{{2, 2}, {4, 4}, {8, 2}, {32, 4}}
	if c.PSC != wantPSC {
		t.Errorf("PSC = %+v, want %+v", c.PSC, wantPSC)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*SystemConfig)
		frag string
	}{
		{"zero sets", func(c *SystemConfig) { c.L2C.Sets = 0 }, "L2C"},
		{"non-pow2 sets", func(c *SystemConfig) { c.LLC.Sets = 1000 }, "power of two"},
		{"no mshrs", func(c *SystemConfig) { c.L1I.MSHRs = 0 }, "MSHR"},
		{"tlb zero ways", func(c *SystemConfig) { c.STLB.Ways = 0 }, "STLB"},
		{"bad rob", func(c *SystemConfig) { c.ROBSize = 0 }, "ROB"},
		{"no walkers", func(c *SystemConfig) { c.PageWalkers = 0 }, "walker"},
		{"itp n too big", func(c *SystemConfig) { c.ITP.N = 12 }, "iTP N"},
		{"itp m <= n", func(c *SystemConfig) { c.ITP.M = 4 }, "iTP M"},
		{"itp freq bits", func(c *SystemConfig) { c.ITP.FreqBits = 0 }, "FreqBits"},
		{"xptp k", func(c *SystemConfig) { c.XPTP.K = 9 }, "xPTP K"},
		{"huge frac", func(c *SystemConfig) { c.HugePageFraction = 1.5 }, "HugePageFraction"},
		{"prob", func(c *SystemConfig) { c.ProbKeepInstr = -0.1 }, "ProbKeepInstr"},
		{"bp accuracy", func(c *SystemConfig) { c.BranchPredAccuracy = 2 }, "BranchPredAccuracy"},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: expected validation error", m.name)
			continue
		}
		if m.frag != "" && !strings.Contains(err.Error(), m.frag) {
			t.Errorf("%s: error %q missing %q", m.name, err, m.frag)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Default()
	c.STLBPolicy = "itp"
	c.L2CPolicy = "xptp"
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.STLBPolicy != "itp" || back.L2CPolicy != "xptp" {
		t.Errorf("round trip lost policies: %+v", back)
	}
	if back.STLB.Entries() != c.STLB.Entries() {
		t.Error("round trip lost STLB size")
	}
}

func TestFromJSONInvalid(t *testing.T) {
	if _, err := FromJSON([]byte("{not json")); err == nil {
		t.Error("expected parse error")
	}
	if _, err := FromJSON([]byte(`{"rob_size": -1}`)); err == nil {
		t.Error("expected validation error")
	}
}

func TestMarshalPretty(t *testing.T) {
	data, err := Default().MarshalPretty()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\n  ") {
		t.Error("expected indented output")
	}
}

func TestWithITLBEntries(t *testing.T) {
	for _, n := range []int{8, 64, 128, 512, 1024} {
		c := Default().WithITLBEntries(n)
		if got := c.ITLB.Entries(); got != n {
			t.Errorf("WithITLBEntries(%d) -> %d entries", n, got)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("WithITLBEntries(%d) invalid: %v", n, err)
		}
	}
}

func TestWithSTLBEntries(t *testing.T) {
	for _, n := range []int{1536, 3072} {
		c := Default().WithSTLBEntries(n)
		if got := c.STLB.Entries(); got != n {
			t.Errorf("WithSTLBEntries(%d) -> %d", n, got)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("WithSTLBEntries(%d) invalid: %v", n, err)
		}
	}
}
