// Package config describes the simulated machine. Default() reproduces
// Table 1 of the paper; every experiment perturbs a copy of it.
package config

import (
	"encoding/json"
	"fmt"
)

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Sets      int    `json:"sets"`
	Ways      int    `json:"ways"`
	Latency   uint64 `json:"latency"` // hit/access latency in cycles
	MSHRs     int    `json:"mshrs"`
	SizeBytes int    `json:"size_bytes"` // informational: sets*ways*64
}

// Entries returns the total block capacity of the cache.
func (c CacheConfig) Entries() int { return c.Sets * c.Ways }

// TLBConfig sizes one TLB level.
type TLBConfig struct {
	Sets    int    `json:"sets"`
	Ways    int    `json:"ways"`
	Latency uint64 `json:"latency"`
	MSHRs   int    `json:"mshrs"`
}

// Entries returns the total entry capacity of the TLB.
func (c TLBConfig) Entries() int { return c.Sets * c.Ways }

// PSCConfig sizes one page structure cache level.
type PSCConfig struct {
	Entries int `json:"entries"`
	Ways    int `json:"ways"` // Ways == Entries means fully associative
}

// ITPParams are the iTP knobs of Section 4.1: insertion depth N, data
// promotion distance M (from the bottom of the stack), and the saturating
// frequency counter width in bits.
type ITPParams struct {
	N        int `json:"n"`
	M        int `json:"m"`
	FreqBits int `json:"freq_bits"`
}

// XPTPParams are the xPTP knobs of Section 4.2/4.3: the alternative-victim
// distance K and the adaptive controller's STLB-miss threshold T1 per
// 1000-instruction window (T1 <= 0 disables adaptivity, i.e. xPTP always on).
type XPTPParams struct {
	K           int    `json:"k"`
	T1          int    `json:"t1"`
	WindowInstr uint64 `json:"window_instr"`
}

// DRAMConfig is the simple main-memory timing model: a fixed access
// latency (tRP+tRCD+tCAS scaled to core cycles) plus per-transfer channel
// occupancy derived from the 12.8 GB/s bandwidth of Table 1.
type DRAMConfig struct {
	LatencyCycles  uint64 `json:"latency_cycles"`
	TransferCycles uint64 `json:"transfer_cycles"`
	RowBufferBonus uint64 `json:"row_buffer_bonus"` // cycles saved on row hit
	RowBufferPages int    `json:"row_buffer_pages"` // open rows tracked per bank group
}

// SystemConfig is the full machine description.
type SystemConfig struct {
	// Core.
	FetchWidth    int    `json:"fetch_width"`
	RetireWidth   int    `json:"retire_width"`
	ROBSize       int    `json:"rob_size"`
	FTQDepth      int    `json:"ftq_depth"`
	ExecLatency   uint64 `json:"exec_latency"`
	MispredictPen uint64 `json:"mispredict_penalty"`
	// BranchPredictor selects the direction predictor: "fixed" (default;
	// correct with probability BranchPredAccuracy) or "perceptron" (a
	// real hashed-perceptron model, Table 1's predictor).
	BranchPredictor string `json:"branch_predictor"`
	// BranchPredAccuracy approximates the hashed-perceptron predictor of
	// Table 1 (fraction of branches predicted correctly) when
	// BranchPredictor is "fixed".
	BranchPredAccuracy float64 `json:"branch_pred_accuracy"`

	// TLBs.
	ITLB TLBConfig `json:"itlb"`
	DTLB TLBConfig `json:"dtlb"`
	STLB TLBConfig `json:"stlb"`
	// SplitSTLB switches to separate instruction/data STLBs (Section
	// 6.6); each half receives STLB.Entries()/2 entries.
	SplitSTLB bool `json:"split_stlb"`

	// Page structure caches, indexed PSCL5, PSCL4, PSCL3, PSCL2.
	PSC        [4]PSCConfig `json:"psc"`
	PSCLatency uint64       `json:"psc_latency"`
	// PageWalkers bounds concurrent walks.
	PageWalkers int `json:"page_walkers"`

	// Caches.
	L1I CacheConfig `json:"l1i"`
	L1D CacheConfig `json:"l1d"`
	L2C CacheConfig `json:"l2c"`
	LLC CacheConfig `json:"llc"`

	DRAM DRAMConfig `json:"dram"`

	// Replacement policy selection by name (see internal/experiments
	// for the Table 2 combinations).
	STLBPolicy string `json:"stlb_policy"`
	L2CPolicy  string `json:"l2c_policy"`
	LLCPolicy  string `json:"llc_policy"`

	// Policy parameters.
	ITP  ITPParams  `json:"itp"`
	XPTP XPTPParams `json:"xptp"`
	// ProbKeepInstr is the probability P of the motivation-study LRU
	// variant (Figure 3) when STLBPolicy == "problru".
	ProbKeepInstr float64 `json:"prob_keep_instr"`

	// Prefetchers.
	L1DNextLine  bool `json:"l1d_next_line"`
	L2CStride    bool `json:"l2c_stride"`
	L1IFDIP      bool `json:"l1i_fdip"`
	FDIPDistance int  `json:"fdip_distance"`

	// STLBPrefetch enables the paper's future-work extension (Section 7,
	// "Translation Prefetching"): on an instruction STLB miss, the next
	// sequential code page's translation is prefetched into the STLB,
	// where iTP's insertion policy decides its priority.
	STLBPrefetch bool `json:"stlb_prefetch"`

	// HugePageFraction is the fraction of the code+data footprint backed
	// by 2MB pages (Section 6.5); 0 means the 4KB-only scenario.
	HugePageFraction float64 `json:"huge_page_fraction"`

	// SMT enables the two-hardware-thread core model.
	SMT bool `json:"smt"`

	// Cores selects the CMP width: N cores with private L1s, first-level
	// TLBs, and branch predictors contending on the shared STLB, L2C,
	// LLC, page-table walker, and DRAM. 0 and 1 both mean the classic
	// single-core machine (which still supports the 2-thread SMT mode);
	// Cores > 1 requires exactly one workload stream per core.
	Cores int `json:"cores"`
}

// MaxCores bounds the CMP width: tenant ids travel the hierarchy as
// uint8 thread tags and the CHiRP history file is sized to match.
const MaxCores = 64

// Default returns the Table 1 configuration.
func Default() SystemConfig {
	return SystemConfig{
		FetchWidth:         6,
		RetireWidth:        6,
		ROBSize:            352,
		FTQDepth:           128,
		ExecLatency:        1,
		MispredictPen:      14,
		BranchPredAccuracy: 0.97,

		ITLB: TLBConfig{Sets: 16, Ways: 4, Latency: 1, MSHRs: 8},
		DTLB: TLBConfig{Sets: 16, Ways: 4, Latency: 1, MSHRs: 8},
		STLB: TLBConfig{Sets: 128, Ways: 12, Latency: 8, MSHRs: 16},

		PSC: [4]PSCConfig{
			{Entries: 2, Ways: 2},  // PSCL5, fully associative
			{Entries: 4, Ways: 4},  // PSCL4, fully associative
			{Entries: 8, Ways: 2},  // PSCL3, 2-way
			{Entries: 32, Ways: 4}, // PSCL2, 4-way
		},
		PSCLatency:  2,
		PageWalkers: 4,

		L1I: CacheConfig{Sets: 64, Ways: 8, Latency: 4, MSHRs: 8, SizeBytes: 32 << 10},
		// Table 1 lists a 32KB 12-way L1D (42.7 sets); we round to the
		// nearest power-of-two set count the indexing supports.
		L1D: CacheConfig{Sets: 32, Ways: 12, Latency: 5, MSHRs: 8, SizeBytes: 24 << 10},
		L2C: CacheConfig{Sets: 1024, Ways: 8, Latency: 5, MSHRs: 32, SizeBytes: 512 << 10},
		LLC: CacheConfig{Sets: 2048, Ways: 16, Latency: 10, MSHRs: 64, SizeBytes: 2 << 20},

		DRAM: DRAMConfig{
			LatencyCycles:  110, // (tRP+tRCD+tCAS)=36 mem cycles scaled to 4GHz core
			TransferCycles: 20,  // 64B / 12.8GB/s at 4GHz
			RowBufferBonus: 45,
			RowBufferPages: 16,
		},

		STLBPolicy: "lru",
		L2CPolicy:  "lru",
		LLCPolicy:  "lru",

		ITP: ITPParams{N: 4, M: 8, FreqBits: 3},
		// T1/WindowInstr give the Section 4.3.1 controller: xPTP stays
		// enabled while STLB misses exceed 0.4 MPKI measured over 20k
		// retired instructions (the longer window keeps the bursty miss
		// arrivals of chase-heavy phases from flapping the policy).
		XPTP: XPTPParams{K: 8, T1: 8, WindowInstr: 20000},

		ProbKeepInstr: 0.8,

		L1DNextLine:  true,
		L2CStride:    true,
		L1IFDIP:      true,
		FDIPDistance: 24,
	}
}

// Validate checks structural invariants and returns a descriptive error
// for the first violation found.
func (c *SystemConfig) Validate() error {
	checkCache := func(name string, cc CacheConfig) error {
		if cc.Sets <= 0 || cc.Ways <= 0 {
			return fmt.Errorf("config: %s must have positive sets/ways (got %d/%d)", name, cc.Sets, cc.Ways)
		}
		if cc.Sets&(cc.Sets-1) != 0 {
			return fmt.Errorf("config: %s sets must be a power of two (got %d)", name, cc.Sets)
		}
		if cc.MSHRs <= 0 {
			return fmt.Errorf("config: %s needs MSHRs", name)
		}
		return nil
	}
	checkTLB := func(name string, tc TLBConfig) error {
		if tc.Sets <= 0 || tc.Ways <= 0 {
			return fmt.Errorf("config: %s must have positive sets/ways", name)
		}
		if tc.Sets&(tc.Sets-1) != 0 {
			return fmt.Errorf("config: %s sets must be a power of two (got %d)", name, tc.Sets)
		}
		return nil
	}
	for _, e := range []error{
		checkTLB("ITLB", c.ITLB), checkTLB("DTLB", c.DTLB), checkTLB("STLB", c.STLB),
		checkCache("L1I", c.L1I), checkCache("L1D", c.L1D),
		checkCache("L2C", c.L2C), checkCache("LLC", c.LLC),
	} {
		if e != nil {
			return e
		}
	}
	if c.FetchWidth <= 0 || c.RetireWidth <= 0 || c.ROBSize <= 0 {
		return fmt.Errorf("config: core widths and ROB must be positive")
	}
	if c.PageWalkers <= 0 {
		return fmt.Errorf("config: need at least one page walker")
	}
	if c.ITP.N < 0 || c.ITP.N >= c.STLB.Ways {
		return fmt.Errorf("config: iTP N=%d must be in [0, STLB ways)", c.ITP.N)
	}
	if c.ITP.M <= c.ITP.N || c.ITP.M >= c.STLB.Ways {
		return fmt.Errorf("config: iTP M=%d must satisfy N < M < STLB ways", c.ITP.M)
	}
	if c.ITP.FreqBits < 1 || c.ITP.FreqBits > 8 {
		return fmt.Errorf("config: iTP FreqBits=%d out of range [1,8]", c.ITP.FreqBits)
	}
	// K == ways is legal and means "always prefer the alternative victim"
	// (the inequality ALT_pos >= LRU_pos+K can then never hold).
	if c.XPTP.K < 0 || c.XPTP.K > c.L2C.Ways {
		return fmt.Errorf("config: xPTP K=%d must be in [0, L2C ways]", c.XPTP.K)
	}
	if c.HugePageFraction < 0 || c.HugePageFraction > 1 {
		return fmt.Errorf("config: HugePageFraction=%v out of [0,1]", c.HugePageFraction)
	}
	if c.ProbKeepInstr < 0 || c.ProbKeepInstr > 1 {
		return fmt.Errorf("config: ProbKeepInstr=%v out of [0,1]", c.ProbKeepInstr)
	}
	if c.BranchPredAccuracy < 0 || c.BranchPredAccuracy > 1 {
		return fmt.Errorf("config: BranchPredAccuracy out of [0,1]")
	}
	if c.BranchPredictor != "" && c.BranchPredictor != "fixed" && c.BranchPredictor != "perceptron" {
		return fmt.Errorf("config: unknown BranchPredictor %q", c.BranchPredictor)
	}
	if c.Cores < 0 || c.Cores > MaxCores {
		return fmt.Errorf("config: Cores=%d out of [0,%d]", c.Cores, MaxCores)
	}
	if c.SMT && c.Cores > 1 {
		return fmt.Errorf("config: SMT is a single-core mode; it cannot combine with Cores=%d", c.Cores)
	}
	return nil
}

// MarshalJSON pretty-prints; just delegates to a type alias to avoid
// recursion while still allowing json.Marshal(c).
func (c SystemConfig) MarshalPretty() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// FromJSON parses a SystemConfig and validates it.
func FromJSON(data []byte) (SystemConfig, error) {
	c := Default()
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("config: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// WithITLBEntries returns a copy with the ITLB resized to n entries
// (keeping 4-way associativity where possible); used by the Figure 1/12
// sweeps.
func (c SystemConfig) WithITLBEntries(n int) SystemConfig {
	ways := 4
	if n < ways {
		ways = n
	}
	c.ITLB = TLBConfig{Sets: n / ways, Ways: ways, Latency: c.ITLB.Latency, MSHRs: c.ITLB.MSHRs}
	return c
}

// WithSTLBEntries returns a copy with the STLB resized to n entries at
// 12-way associativity (Section 6.6's 1536/3072 designs).
func (c SystemConfig) WithSTLBEntries(n int) SystemConfig {
	ways := 12
	c.STLB = TLBConfig{Sets: n / ways, Ways: ways, Latency: c.STLB.Latency, MSHRs: c.STLB.MSHRs}
	return c
}
