package vm

import (
	"testing"
	"testing/quick"

	"itpsim/internal/arch"
)

func newPT(huge float64) *PageTable {
	return NewPageTable(NewPhysAlloc(8<<30), huge, 1)
}

func TestAllocAlignment(t *testing.T) {
	a := NewPhysAlloc(1 << 30)
	p1 := a.Alloc(arch.PageBits4K)
	if p1&(arch.PageSize4K-1) != 0 {
		t.Errorf("4K page not aligned: %#x", p1)
	}
	p2 := a.Alloc(arch.PageBits2M)
	if p2&(arch.PageSize2M-1) != 0 {
		t.Errorf("2M page not aligned: %#x", p2)
	}
	if p2 <= p1 {
		t.Error("bump allocator went backwards")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	a := NewPhysAlloc(4 << 20)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on exhaustion")
		}
	}()
	for i := 0; i < 10000; i++ {
		a.Alloc(arch.PageBits4K)
	}
}

func TestTranslateStable(t *testing.T) {
	pt := newPT(0)
	va := arch.Addr(0x7f0012345678)
	t1 := pt.Translate(va)
	t2 := pt.Translate(va)
	if t1.PPN != t2.PPN || t1.PageBits != t2.PageBits {
		t.Fatal("translation not stable across calls")
	}
	if t1.PageBits != arch.PageBits4K {
		t.Errorf("PageBits = %d, want 4K", t1.PageBits)
	}
	if t1.NumSteps != 5 {
		t.Errorf("NumSteps = %d, want 5 for 4KB page", t1.NumSteps)
	}
}

func TestTranslateWalkStructure(t *testing.T) {
	pt := newPT(0)
	tr := pt.Translate(0x12345678)
	// Levels descend 5..1.
	for i := 0; i < tr.NumSteps; i++ {
		if tr.Steps[i].Level != 5-i {
			t.Errorf("step %d at level %d, want %d", i, tr.Steps[i].Level, 5-i)
		}
		if tr.Steps[i].PTEAddr%8 != 0 {
			t.Errorf("PTE address %#x not 8-byte aligned", tr.Steps[i].PTEAddr)
		}
	}
}

func TestDistinctPagesGetDistinctFrames(t *testing.T) {
	pt := newPT(0)
	a := pt.Translate(0x1000)
	b := pt.Translate(0x2000)
	if a.PPN == b.PPN {
		t.Error("distinct virtual pages mapped to same frame")
	}
	p4k, p2m := pt.Pages()
	if p4k != 2 || p2m != 0 {
		t.Errorf("pages = (%d,%d), want (2,0)", p4k, p2m)
	}
}

func TestSamePageSharesWalkSteps(t *testing.T) {
	pt := newPT(0)
	a := pt.Translate(0x5000)
	b := pt.Translate(0x5800) // same 4KB page? no — 0x5800 is same page as 0x5000? 0x5000>>12=5, 0x5800>>12=5. yes.
	if a.PPN != b.PPN {
		t.Error("same page should share frame")
	}
	for i := 0; i < a.NumSteps; i++ {
		if a.Steps[i].PTEAddr != b.Steps[i].PTEAddr {
			t.Errorf("step %d PTE addresses differ within one page", i)
		}
	}
}

func TestNeighbourPTEsShareCacheBlock(t *testing.T) {
	pt := newPT(0)
	a := pt.Translate(0x0000) // vpn 0
	b := pt.Translate(0x1000) // vpn 1 — adjacent leaf PTEs
	la := a.Steps[a.NumSteps-1].PTEAddr
	lb := b.Steps[b.NumSteps-1].PTEAddr
	if arch.BlockAddr(la) != arch.BlockAddr(lb) {
		t.Errorf("adjacent leaf PTEs in different blocks: %#x vs %#x", la, lb)
	}
	if la == lb {
		t.Error("distinct pages share a PTE address")
	}
}

func TestHugePages(t *testing.T) {
	pt := newPT(1.0)
	tr := pt.Translate(0x40000000)
	if tr.PageBits != arch.PageBits2M {
		t.Fatalf("PageBits = %d, want 2M", tr.PageBits)
	}
	if tr.NumSteps != 4 {
		t.Errorf("2MB walk has %d steps, want 4", tr.NumSteps)
	}
	// Whole 2MB region shares the translation.
	tr2 := pt.Translate(0x40000000 + 1<<20)
	if tr2.PPN != tr.PPN {
		t.Error("2MB region not shared")
	}
	_, p2m := pt.Pages()
	if p2m != 1 {
		t.Errorf("p2m = %d, want 1", p2m)
	}
}

func TestHugeFractionDeterministic(t *testing.T) {
	a := NewPageTable(NewPhysAlloc(8<<30), 0.5, 7)
	b := NewPageTable(NewPhysAlloc(8<<30), 0.5, 7)
	for i := 0; i < 200; i++ {
		va := arch.Addr(i) << arch.PageBits2M
		if a.isHuge(va) != b.isHuge(va) {
			t.Fatal("huge-page layout not deterministic")
		}
	}
}

func TestHugeFractionRoughlyHonoured(t *testing.T) {
	pt := NewPageTable(NewPhysAlloc(32<<30), 0.5, 3)
	huge := 0
	const regions = 2000
	for i := 0; i < regions; i++ {
		if pt.isHuge(arch.Addr(i) << arch.PageBits2M) {
			huge++
		}
	}
	frac := float64(huge) / regions
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("huge fraction = %.3f, want ~0.5", frac)
	}
}

func TestPhysAddrReconstruction(t *testing.T) {
	pt := newPT(0)
	va := arch.Addr(0x7f00_1234_5678)
	tr := pt.Translate(va)
	pa := tr.PhysAddr(va)
	if pa&(arch.PageSize4K-1) != va&(arch.PageSize4K-1) {
		t.Error("page offset not preserved")
	}
	if pa>>arch.PageBits4K != tr.PPN {
		t.Error("frame number wrong in physical address")
	}
}

// Property: translations are functional (same VA → same PA) and injective
// per page across a random set of VAs.
func TestTranslationFunctionalProperty(t *testing.T) {
	pt := newPT(0.3)
	seen := map[uint64]arch.Addr{} // key: ppn<<8|bits → representative page
	f := func(raw uint32) bool {
		va := arch.Addr(raw) << 8 // spread over a 1TB range
		tr := pt.Translate(va)
		tr2 := pt.Translate(va)
		if tr != tr2 {
			return false
		}
		key := tr.PPN<<8 | uint64(tr.PageBits)
		pageBase := va >> tr.PageBits
		if prev, ok := seen[key]; ok && prev != pageBase {
			return false // two different virtual pages share a frame
		}
		seen[key] = pageBase
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPageTableNodesConsumePhysicalMemory(t *testing.T) {
	alloc := NewPhysAlloc(8 << 30)
	before := alloc.Allocated()
	pt := NewPageTable(alloc, 0, 1)
	pt.Translate(0x1000)
	if alloc.Allocated() <= before {
		t.Error("page-table nodes should consume physical memory")
	}
}
